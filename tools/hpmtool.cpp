// hpmtool: command-line front door to the library's offline tooling.
//
//   hpmtool ckpt-info <file>          checkpoint preamble (sequence, size, arch)
//   hpmtool ckpt-dump <file> [-v]     decode the embedded migration stream
//   hpmtool inc-dump <prefix> <last>  merge an incremental chain and dump the
//                                     synthesized migration stream
//   hpmtool precc <decls.h> [--strict] [--codegen]
//                                     migration-safety report / registration code
//   hpmtool archs                     list the built-in architecture models
//   hpmtool recover <journal-dir> [txn]
//                                     arbitrate a crashed handoff from its
//                                     intent journals (DESIGN.md §11); pass the
//                                     txn id to pick one of several multiplexed
//                                     sessions sharing the directory
//   hpmtool sessions <journal-dir> [--live <snapshot>]
//                                     list every transaction journaled in a
//                                     shared directory with its verdict; with
//                                     --live, merge the SessionSupervisor's
//                                     registry snapshot (heartbeat age, RTT
//                                     estimate, liveness state) per txn
//   hpmtool journal-gc <journal-dir>  unlink the journal pairs of completed
//                                     transactions (directory fsync'd)
//   hpmtool journal-dump <file>       print every intact record of one journal
//   hpmtool chunk-cache <dir> [--gc <bytes>]
//                                     stats for a dedup chunk cache (entries,
//                                     bytes, last run's hit ratio); with --gc,
//                                     evict LRU entries down to the byte budget
//                                     (directory fsync'd)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "hpm/hpm.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  hpmtool ckpt-info <file>\n"
               "  hpmtool ckpt-dump <file> [-v]\n"
               "  hpmtool inc-dump <prefix> <last-seq>\n"
               "  hpmtool precc <decls.h> [--strict] [--codegen]\n"
               "  hpmtool archs\n"
               "  hpmtool recover <journal-dir> [txn]\n"
               "  hpmtool sessions <journal-dir> [--live <snapshot>]\n"
               "  hpmtool journal-gc <journal-dir>\n"
               "  hpmtool journal-dump <file>\n"
               "  hpmtool chunk-cache <dir> [--gc <bytes>]\n");
  return 2;
}

hpm::Bytes read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw hpm::Error(std::string("cannot open ") + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string s = buf.str();
  return hpm::Bytes(s.begin(), s.end());
}

int cmd_ckpt_info(const char* path) {
  const hpm::ckpt::CheckpointInfo info = hpm::ckpt::inspect(path);
  std::printf("checkpoint   : %s\n", path);
  std::printf("sequence     : %llu\n", static_cast<unsigned long long>(info.sequence));
  std::printf("state bytes  : %llu\n", static_cast<unsigned long long>(info.state_bytes));
  std::printf("source arch  : %s\n", info.source_arch.c_str());
  return 0;
}

int cmd_ckpt_dump(const char* path, bool verbose) {
  const hpm::Bytes file = read_file(path);
  // Unwrap the checkpoint preamble by hand: magic, sequence, length.
  hpm::xdr::Decoder dec(file);
  if (dec.get_u32() != 0x48434B50) throw hpm::WireError("not a checkpoint file");
  dec.get_u64();  // sequence
  const std::uint32_t len = dec.get_u32();
  hpm::Bytes stream(len);
  dec.get_bytes(stream.data(), len);
  hpm::msrm::DumpOptions options;
  options.show_primitive_values = verbose;
  std::fputs(hpm::msrm::dump_stream(stream, options).c_str(), stdout);
  return 0;
}

int cmd_precc(const char* path, bool strict, bool codegen) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  hpm::ti::TypeTable table;
  hpm::precc::Parser parser(table, strict);
  const hpm::precc::ParseResult result = parser.parse(buf.str());
  if (codegen) {
    std::fputs(hpm::precc::generate_registration(table, result).c_str(), stdout);
  } else {
    std::fputs(hpm::precc::report(table, result).c_str(), stdout);
  }
  return result.clean() ? 0 : 1;
}

int cmd_recover(const char* dir, const char* txn_arg) {
  const hpm::mig::RecoveryVerdict v =
      txn_arg != nullptr
          ? hpm::mig::Coordinator::recover(dir, std::strtoull(txn_arg, nullptr, 10))
          : hpm::mig::Coordinator::recover(dir);
  std::printf("journal dir  : %s\n", dir);
  std::printf("transaction  : %llu\n", static_cast<unsigned long long>(v.txn_id));
  std::printf("owner        : %s\n", hpm::mig::txn_owner_name(v.owner));
  if (v.owner == hpm::mig::TxnOwner::Destination) {
    // A failed-over transaction may have touched several destinations;
    // the incarnation (fencing token) names the one that owns the commit.
    std::printf("incarnation  : %u%s\n", v.incarnation,
                v.incarnation <= 1 ? " (primary)" : " (failover standby)");
  }
  if (v.committed_destinations > 1) {
    std::printf("WARNING      : %d destinations logged Committed; the highest "
                "incarnation fences the rest\n",
                v.committed_destinations);
  }
  std::printf("completed    : %s\n", v.completed ? "yes" : "no");
  std::printf("reason       : %s\n", v.reason.c_str());
  // Foreign matter in the directory never poisons arbitration, but a human
  // running recovery should see what was stepped over: unrelated files and
  // torn zero-length journals are reported, not silently ignored.
  std::vector<std::string> skipped;
  hpm::mig::list_journaled_txns(dir, &skipped);
  for (const std::string& s : skipped) {
    std::printf("skipped      : %s\n", s.c_str());
  }
  // Exit status mirrors the verdict so scripts can branch on it:
  // 0 = source owns (resume/restart there), 3 = destination owns,
  // 4 = no such transaction in either journal (nothing to arbitrate —
  // distinct from "source owns" so automation never restarts a workload
  // it merely misspelled the txn id of).
  if (v.owner == hpm::mig::TxnOwner::None) return 4;
  return v.owner == hpm::mig::TxnOwner::Destination ? 3 : 0;
}

/// One parsed row of the SessionSupervisor's `#hpm-liveness-v1` snapshot.
struct LiveRow {
  std::uint32_t session = 0;
  double rtt_ms = 0;
  double deadline_ms = 0;
  double heartbeat_age_ms = -1;
  std::uint64_t progress = 0;
  int missed = 0;
  std::string state;  ///< "LIVE"/"WEDGED" plus the reason text
};

/// Snapshot rows keyed by txn id (the join key shared with the journals).
std::map<std::uint64_t, LiveRow> read_liveness_snapshot(const char* path) {
  std::map<std::uint64_t, LiveRow> rows;
  std::ifstream in(path);
  if (!in) throw hpm::Error(std::string("cannot open liveness snapshot ") + path);
  std::string line;
  if (!std::getline(in, line) || line != "#hpm-liveness-v1") {
    throw hpm::Error(std::string("not a liveness snapshot (bad header): ") + path);
  }
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    LiveRow row;
    std::uint64_t txn = 0;
    if (!(ls >> row.session >> txn >> row.rtt_ms >> row.deadline_ms >>
          row.heartbeat_age_ms >> row.progress >> row.missed)) {
      continue;  // torn or trailing line: skip, keep the intact rows
    }
    std::getline(ls, row.state);
    if (!row.state.empty() && row.state.front() == ' ') row.state.erase(0, 1);
    rows[txn] = row;
  }
  return rows;
}

int cmd_sessions(const char* dir, const char* live_path) {
  std::map<std::uint64_t, LiveRow> live;
  if (live_path != nullptr) live = read_liveness_snapshot(live_path);

  std::vector<std::uint64_t> txns = hpm::mig::list_journaled_txns(dir);
  // A supervised session may be live before its first journal append;
  // show those rows too instead of silently dropping them.
  for (const auto& [txn, row] : live) {
    if (std::find(txns.begin(), txns.end(), txn) == txns.end()) txns.push_back(txn);
  }
  std::sort(txns.begin(), txns.end());
  if (txns.empty()) {
    std::printf("no txn-keyed journals in %s\n", dir);
    return 0;
  }
  if (live_path != nullptr) {
    std::printf("%-22s %-12s %-9s %-9s %-9s %-8s %s\n", "txn", "owner", "completed",
                "hb-age", "rtt-ms", "missed", "liveness");
  } else {
    std::printf("%-22s %-12s %-9s reason\n", "txn", "owner", "completed");
  }
  for (const std::uint64_t txn : txns) {
    const hpm::mig::RecoveryVerdict v = hpm::mig::Coordinator::recover(dir, txn);
    if (live_path == nullptr) {
      std::printf("%-22llu %-12s %-9s %s\n", static_cast<unsigned long long>(txn),
                  hpm::mig::txn_owner_name(v.owner), v.completed ? "yes" : "no",
                  v.reason.c_str());
      continue;
    }
    const auto it = live.find(txn);
    if (it == live.end()) {
      std::printf("%-22llu %-12s %-9s %-9s %-9s %-8s %s\n",
                  static_cast<unsigned long long>(txn),
                  hpm::mig::txn_owner_name(v.owner), v.completed ? "yes" : "no", "-",
                  "-", "-", "(not supervised)");
      continue;
    }
    char hb[32];
    if (it->second.heartbeat_age_ms < 0) {
      std::snprintf(hb, sizeof hb, "-");
    } else {
      std::snprintf(hb, sizeof hb, "%.0fms", it->second.heartbeat_age_ms);
    }
    char rtt[32];
    std::snprintf(rtt, sizeof rtt, "%.2f", it->second.rtt_ms);
    std::printf("%-22llu %-12s %-9s %-9s %-9s %-8d %s\n",
                static_cast<unsigned long long>(txn),
                hpm::mig::txn_owner_name(v.owner), v.completed ? "yes" : "no", hb,
                rtt, it->second.missed, it->second.state.c_str());
  }
  return 0;
}

int cmd_journal_gc(const char* dir) {
  const std::vector<std::uint64_t> swept = hpm::mig::gc_completed_txn_journals(dir);
  for (const std::uint64_t txn : swept) {
    std::printf("swept txn %llu (completed)\n", static_cast<unsigned long long>(txn));
  }
  std::printf("%zu completed transaction(s) garbage-collected from %s\n", swept.size(),
              dir);
  return 0;
}

int cmd_journal_dump(const char* path) {
  for (const hpm::mig::JournalRecord& r : hpm::mig::Journal::replay(path)) {
    std::printf("%-9s txn=%llu digest=%016llx inc=%u%s%s\n",
                hpm::mig::journal_record_name(r.type),
                static_cast<unsigned long long>(r.txn_id),
                static_cast<unsigned long long>(r.digest), r.incarnation,
                r.note.empty() ? "" : "  ", r.note.c_str());
  }
  return 0;
}

int cmd_chunk_cache(const char* dir, const char* gc_budget) {
  hpm::mig::ChunkStore store(dir);
  store.open();  // unlinks torn entries, exactly like a migration would
  if (gc_budget != nullptr) {
    const std::uint64_t budget = std::strtoull(gc_budget, nullptr, 0);
    const std::size_t evicted = store.gc(budget);
    std::printf("evicted %zu entr%s to a %llu-byte budget\n", evicted,
                evicted == 1 ? "y" : "ies", static_cast<unsigned long long>(budget));
  }
  std::printf("cache dir    : %s\n", store.dir().c_str());
  std::printf("entries      : %zu\n", store.entries());
  std::printf("bytes        : %llu\n", static_cast<unsigned long long>(store.bytes()));
  const hpm::mig::ChunkStore::RunStats stats = hpm::mig::ChunkStore::read_run_stats(dir);
  if (stats.valid && stats.manifest_chunks > 0) {
    std::printf("last run     : %llu chunk(s) announced, %llu hit, %llu missed "
                "(hit ratio %.1f%%)\n",
                static_cast<unsigned long long>(stats.manifest_chunks),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                100.0 * static_cast<double>(stats.hits) /
                    static_cast<double>(stats.manifest_chunks));
  } else {
    std::printf("last run     : (no manifest negotiation recorded)\n");
  }
  return 0;
}

int cmd_archs() {
  std::printf("%-18s %-7s %5s %5s %5s %9s\n", "name", "order", "int", "long", "ptr",
              "dbl-align");
  for (const auto name : hpm::xdr::arch_names()) {
    const hpm::xdr::ArchDescriptor& a = hpm::xdr::arch_by_name(name);
    std::printf("%-18s %-7s %5u %5u %5u %9u\n", a.name.c_str(),
                a.is_big_endian() ? "big" : "little",
                a.layout(hpm::xdr::PrimKind::Int).size,
                a.layout(hpm::xdr::PrimKind::Long).size, a.pointer.size,
                a.layout(hpm::xdr::PrimKind::Double).align);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "ckpt-info") == 0 && argc >= 3) return cmd_ckpt_info(argv[2]);
    if (std::strcmp(argv[1], "ckpt-dump") == 0 && argc >= 3) {
      return cmd_ckpt_dump(argv[2], argc > 3 && std::strcmp(argv[3], "-v") == 0);
    }
    if (std::strcmp(argv[1], "inc-dump") == 0 && argc >= 4) {
      const hpm::Bytes stream =
          hpm::ckpt::synthesize_stream(argv[2], std::strtoull(argv[3], nullptr, 10));
      std::fputs(hpm::msrm::dump_stream(stream).c_str(), stdout);
      return 0;
    }
    if (std::strcmp(argv[1], "precc") == 0 && argc >= 3) {
      bool strict = false, codegen = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--strict") == 0) strict = true;
        if (std::strcmp(argv[i], "--codegen") == 0) codegen = true;
      }
      return cmd_precc(argv[2], strict, codegen);
    }
    if (std::strcmp(argv[1], "archs") == 0) return cmd_archs();
    if (std::strcmp(argv[1], "recover") == 0 && argc >= 3) {
      return cmd_recover(argv[2], argc > 3 ? argv[3] : nullptr);
    }
    if (std::strcmp(argv[1], "sessions") == 0 && argc >= 3) {
      const char* live = nullptr;
      if (argc >= 5 && std::strcmp(argv[3], "--live") == 0) live = argv[4];
      return cmd_sessions(argv[2], live);
    }
    if (std::strcmp(argv[1], "journal-gc") == 0 && argc >= 3) {
      return cmd_journal_gc(argv[2]);
    }
    if (std::strcmp(argv[1], "journal-dump") == 0 && argc >= 3) {
      return cmd_journal_dump(argv[2]);
    }
    if (std::strcmp(argv[1], "chunk-cache") == 0 && argc >= 3) {
      const char* budget = nullptr;
      if (argc >= 5 && std::strcmp(argv[3], "--gc") == 0) budget = argv[4];
      return cmd_chunk_cache(argv[2], budget);
    }
  } catch (const hpm::Error& e) {
    std::fprintf(stderr, "hpmtool: %s\n", e.what());
    return 1;
  }
  return usage();
}
