// Performance regression guard over BENCH_migration.json.
//
// The bench-smoke fixture runs table1_migration --smoke, then this tool
// checks the emitted hpm-bench-v1 rows against checked-in invariants:
//
//   1. msrlt.search_steps_per_search must be > 0 and <= the ceiling
//      (argv[2], default 32). The flat interval index keeps the
//      address->block search ~O(log n) with the lookup cache pulling the
//      mean toward 1; a regression to linear scanning blows past any
//      log-shaped ceiling immediately (the linear strategy measures in
//      the hundreds of steps per search on the same workload).
//   2. parcollect.bit_identical must be exactly 1: parallel collection
//      is only legal as a latency optimization, never a format change.
//   3. parcollect.thread_speedup must be present and > 0 (the bench
//      computed it from real runs). Magnitude is reported, not gated —
//      wall-clock ratios are too machine-dependent for a hard CI fail.
//   4. dedup.second_run.bytes_ratio must be <= the dedup ceiling
//      (argv[3], default 0.05): an identical rerun against a warm chunk
//      cache moves manifest frames plus noise, never the stream again.
//      Unlike wall-clock ratios this is a byte ratio — fully
//      deterministic, so a hard gate is safe.
//   5. dedup.bit_identical must be exactly 1: dedup'd transfer is only
//      legal as a byte-volume optimization, never a restore change.
//
// Exit 0 when every gate holds, 1 with a diagnostic otherwise.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "mini_json.hpp"

namespace {

using hpm::tools::json::Parser;
using hpm::tools::json::Value;
using hpm::tools::json::ValuePtr;

int complain(const std::string& path, const std::string& why) {
  std::fprintf(stderr, "perf_guard: %s: %s\n", path.c_str(), why.c_str());
  return 1;
}

/// The "results" row named `name`, or nullptr.
const Value* find_row(const Value& results, const std::string& name) {
  for (const ValuePtr& item : results.items) {
    const Value* n = item->get("name");
    if (n != nullptr && n->kind == Value::Kind::String && n->text == name) {
      return item->get("value");
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 4) {
    std::fprintf(stderr,
                 "usage: perf_guard <BENCH_migration.json> [steps_ceiling] [dedup_ceiling]\n");
    return 2;
  }
  const std::string path = argv[1];
  const double ceiling = argc >= 3 ? std::strtod(argv[2], nullptr) : 32.0;
  const double dedup_ceiling = argc >= 4 ? std::strtod(argv[3], nullptr) : 0.05;
  if (ceiling <= 0 || dedup_ceiling <= 0) {
    std::fprintf(stderr, "perf_guard: ceilings must be positive\n");
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) return complain(path, "cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  ValuePtr root;
  try {
    root = Parser(buf.str()).parse();
  } catch (const std::exception& e) {
    return complain(path, e.what());
  }
  if (root->kind != Value::Kind::Object) return complain(path, "top level is not an object");
  const Value* results = root->get("results");
  if (!results || results->kind != Value::Kind::Array) {
    return complain(path, "\"results\" must be an array");
  }

  const Value* steps = find_row(*results, "msrlt.search_steps_per_search");
  if (!steps || steps->kind != Value::Kind::Number) {
    return complain(path, "missing row msrlt.search_steps_per_search");
  }
  if (steps->number <= 0) {
    return complain(path, "msrlt.search_steps_per_search is 0 — no searches measured");
  }
  if (steps->number > ceiling) {
    std::ostringstream os;
    os << "msrlt.search_steps_per_search = " << steps->number << " exceeds ceiling "
       << ceiling << " (address index regressed toward linear scanning?)";
    return complain(path, os.str());
  }

  const Value* identical = find_row(*results, "parcollect.bit_identical");
  if (!identical || identical->kind != Value::Kind::Number) {
    return complain(path, "missing row parcollect.bit_identical");
  }
  if (identical->number != 1) {
    return complain(path, "parcollect.bit_identical != 1 — parallel stream diverged");
  }

  const Value* speedup = find_row(*results, "parcollect.thread_speedup");
  if (!speedup || speedup->kind != Value::Kind::Number || speedup->number <= 0) {
    return complain(path, "missing or non-positive row parcollect.thread_speedup");
  }

  const Value* dedup_ratio = find_row(*results, "dedup.second_run.bytes_ratio");
  if (!dedup_ratio || dedup_ratio->kind != Value::Kind::Number) {
    return complain(path, "missing row dedup.second_run.bytes_ratio");
  }
  if (dedup_ratio->number > dedup_ceiling) {
    std::ostringstream os;
    os << "dedup.second_run.bytes_ratio = " << dedup_ratio->number << " exceeds ceiling "
       << dedup_ceiling << " (identical rerun re-sent the stream — chunk cache regressed?)";
    return complain(path, os.str());
  }

  const Value* dedup_identical = find_row(*results, "dedup.bit_identical");
  if (!dedup_identical || dedup_identical->kind != Value::Kind::Number) {
    return complain(path, "missing row dedup.bit_identical");
  }
  if (dedup_identical->number != 1) {
    return complain(path, "dedup.bit_identical != 1 — dedup'd restore diverged");
  }

  // Destination failover: replaying to a warm standby must negotiate the
  // manifest against its chunk store, not blindly re-send the stream.
  // Shares the dedup ceiling — the mechanism is the same negotiation.
  const Value* failover_ratio = find_row(*results, "failover.warm_standby.bytes_ratio");
  if (!failover_ratio || failover_ratio->kind != Value::Kind::Number) {
    return complain(path, "missing row failover.warm_standby.bytes_ratio");
  }
  if (failover_ratio->number > dedup_ceiling) {
    std::ostringstream os;
    os << "failover.warm_standby.bytes_ratio = " << failover_ratio->number
       << " exceeds ceiling " << dedup_ceiling
       << " (failover replay re-sent the stream — manifest negotiation regressed?)";
    return complain(path, os.str());
  }

  const Value* failover_identical = find_row(*results, "failover.bit_identical");
  if (!failover_identical || failover_identical->kind != Value::Kind::Number) {
    return complain(path, "missing row failover.bit_identical");
  }
  if (failover_identical->number != 1) {
    return complain(path, "failover.bit_identical != 1 — failed-over restore diverged");
  }

  std::printf("perf_guard: %s: OK (%.2f steps/search <= %.2f, streams identical, "
              "%.2fx thread speedup, dedup rerun moved %.2f%% <= %.2f%%, "
              "warm-standby failover moved %.2f%% <= %.2f%%)\n",
              path.c_str(), steps->number, ceiling, speedup->number,
              dedup_ratio->number * 100, dedup_ceiling * 100,
              failover_ratio->number * 100, dedup_ceiling * 100);
  return 0;
}
