// Self-contained recursive-descent JSON parser for the repo's offline
// tools (bench_schema_check, perf_guard) — no third-party JSON
// dependency, so the tools build in every configuration. Accepts the
// subset the hpm-bench-v1 emitter produces; \u escapes beyond ASCII are
// accepted but replaced with '?', which the schema never needs.
#pragma once

#include <cctype>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hpm::tools::json {

struct Value;
using ValuePtr = std::unique_ptr<Value>;

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<ValuePtr> items;
  std::vector<std::pair<std::string, ValuePtr>> fields;

  const Value* get(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return v.get();
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& src) : src_(src) {}

  ValuePtr parse() {
    ValuePtr v = parse_value();
    skip_ws();
    if (pos_ != src_.size()) fail("trailing content after top-level value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    std::ostringstream os;
    os << "parse error at byte " << pos_ << ": " << why;
    throw std::runtime_error(os.str());
  }

  void skip_ws() {
    while (pos_ < src_.size() &&
           (src_[pos_] == ' ' || src_[pos_] == '\t' || src_[pos_] == '\n' || src_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= src_.size()) fail("unexpected end of input");
    return src_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  ValuePtr parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto v = std::make_unique<Value>();
        v->kind = Value::Kind::String;
        v->text = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= src_.size()) fail("unterminated string");
      char c = src_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= src_.size()) fail("unterminated escape");
        char e = src_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > src_.size()) fail("truncated \\u escape");
            pos_ += 4;
            out += '?';
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  ValuePtr parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '.' ||
            src_[pos_] == 'e' || src_[pos_] == 'E' || src_[pos_] == '+' || src_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::Number;
    char* end = nullptr;
    v->number = std::strtod(src_.c_str() + start, &end);
    if (end != src_.c_str() + pos_) fail("malformed number");
    return v;
  }

  ValuePtr parse_bool() {
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::Bool;
    if (src_.compare(pos_, 4, "true") == 0) {
      v->boolean = true;
      pos_ += 4;
    } else if (src_.compare(pos_, 5, "false") == 0) {
      v->boolean = false;
      pos_ += 5;
    } else {
      fail("expected true/false");
    }
    return v;
  }

  ValuePtr parse_null() {
    if (src_.compare(pos_, 4, "null") != 0) fail("expected null");
    pos_ += 4;
    return std::make_unique<Value>();
  }

  ValuePtr parse_array() {
    expect('[');
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v->items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
    return v;
  }

  ValuePtr parse_object() {
    expect('{');
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v->fields.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    return v;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
};

}  // namespace hpm::tools::json
