// Validates a BENCH_*.json file against the hpm-bench-v1 schema:
//
//   {
//     "schema":  "hpm-bench-v1",
//     "bench":   "<non-empty name>",
//     "smoke":   true|false,
//     "results": [ {"name": str, "value": num, "unit": str}, ... ]  (>= 1),
//     "metrics": { "counters": {...}, "gauges": {...}, "histograms": {...} }
//   }
//
// A report whose "bench" is "dedup" must additionally carry the
// dedup'd-transfer headline rows (first_run.stream_bytes,
// second_run.wire_bytes, second_run.bytes_ratio).
//
// Parsing lives in mini_json.hpp (shared with perf_guard). Exit 0 on a
// valid file, 1 with a diagnostic on stderr otherwise.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "mini_json.hpp"

namespace {

using hpm::tools::json::Parser;
using hpm::tools::json::Value;
using hpm::tools::json::ValuePtr;

int complain(const std::string& path, const std::string& why) {
  std::fprintf(stderr, "bench_schema_check: %s: %s\n", path.c_str(), why.c_str());
  return 1;
}

bool has_row(const Value& results, const std::string& name) {
  for (const ValuePtr& item : results.items) {
    const Value* n = item->get("name");
    if (n != nullptr && n->kind == Value::Kind::String && n->text == name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: bench_schema_check <BENCH_file.json>\n");
    return 2;
  }
  const std::string path = argv[1];
  std::ifstream in(path, std::ios::binary);
  if (!in) return complain(path, "cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string src = buf.str();
  if (src.empty()) return complain(path, "file is empty");

  ValuePtr root;
  try {
    root = Parser(src).parse();
  } catch (const std::exception& e) {
    return complain(path, e.what());
  }
  if (root->kind != Value::Kind::Object) return complain(path, "top level is not an object");

  const Value* schema = root->get("schema");
  if (!schema || schema->kind != Value::Kind::String || schema->text != "hpm-bench-v1") {
    return complain(path, "\"schema\" must be the string \"hpm-bench-v1\"");
  }
  const Value* bench = root->get("bench");
  if (!bench || bench->kind != Value::Kind::String || bench->text.empty()) {
    return complain(path, "\"bench\" must be a non-empty string");
  }
  const Value* smoke = root->get("smoke");
  if (!smoke || smoke->kind != Value::Kind::Bool) {
    return complain(path, "\"smoke\" must be a boolean");
  }
  const Value* results = root->get("results");
  if (!results || results->kind != Value::Kind::Array || results->items.empty()) {
    return complain(path, "\"results\" must be a non-empty array");
  }
  for (std::size_t i = 0; i < results->items.size(); ++i) {
    const Value& row = *results->items[i];
    const std::string where = "results[" + std::to_string(i) + "]";
    if (row.kind != Value::Kind::Object) return complain(path, where + " is not an object");
    const Value* name = row.get("name");
    if (!name || name->kind != Value::Kind::String || name->text.empty()) {
      return complain(path, where + ".name must be a non-empty string");
    }
    const Value* value = row.get("value");
    if (!value || value->kind != Value::Kind::Number) {
      return complain(path, where + ".value must be a number");
    }
    const Value* unit = row.get("unit");
    if (!unit || unit->kind != Value::Kind::String) {
      return complain(path, where + ".unit must be a string");
    }
  }
  const Value* metrics = root->get("metrics");
  if (!metrics || metrics->kind != Value::Kind::Object) {
    return complain(path, "\"metrics\" must be an object");
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const Value* s = metrics->get(section);
    if (!s || s->kind != Value::Kind::Object) {
      return complain(path, std::string("metrics.") + section + " must be an object");
    }
  }
  // The focused dedup report (written by table1_migration beside its main
  // JSON) must carry the headline rows the perf guard and the README
  // walkthrough rely on — a rename there would silently defang the gate.
  if (bench->text == "dedup") {
    for (const char* required :
         {"dedup.first_run.stream_bytes", "dedup.second_run.wire_bytes",
          "dedup.second_run.bytes_ratio"}) {
      if (!has_row(*results, required)) {
        return complain(path, std::string("dedup report is missing row ") + required);
      }
    }
  }

  std::printf("bench_schema_check: %s: OK (%zu result rows)\n", path.c_str(),
              results->items.size());
  return 0;
}
