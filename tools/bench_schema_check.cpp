// Validates a BENCH_*.json file against the hpm-bench-v1 schema:
//
//   {
//     "schema":  "hpm-bench-v1",
//     "bench":   "<non-empty name>",
//     "smoke":   true|false,
//     "results": [ {"name": str, "value": num, "unit": str}, ... ]  (>= 1),
//     "metrics": { "counters": {...}, "gauges": {...}, "histograms": {...} }
//   }
//
// Self-contained recursive-descent JSON parser — no third-party JSON
// dependency, so the check runs in every build configuration. Exit 0 on a
// valid file, 1 with a diagnostic on stderr otherwise.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Value;
using ValuePtr = std::unique_ptr<Value>;

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<ValuePtr> items;
  std::vector<std::pair<std::string, ValuePtr>> fields;

  const Value* get(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return v.get();
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& src) : src_(src) {}

  ValuePtr parse() {
    ValuePtr v = parse_value();
    skip_ws();
    if (pos_ != src_.size()) fail("trailing content after top-level value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    std::ostringstream os;
    os << "parse error at byte " << pos_ << ": " << why;
    throw std::runtime_error(os.str());
  }

  void skip_ws() {
    while (pos_ < src_.size() &&
           (src_[pos_] == ' ' || src_[pos_] == '\t' || src_[pos_] == '\n' || src_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= src_.size()) fail("unexpected end of input");
    return src_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  ValuePtr parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto v = std::make_unique<Value>();
        v->kind = Value::Kind::String;
        v->text = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= src_.size()) fail("unterminated string");
      char c = src_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= src_.size()) fail("unterminated escape");
        char e = src_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > src_.size()) fail("truncated \\u escape");
            pos_ += 4;     // code points beyond ASCII are accepted,
            out += '?';    // not reconstructed — the schema never needs them
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  ValuePtr parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '.' ||
            src_[pos_] == 'e' || src_[pos_] == 'E' || src_[pos_] == '+' || src_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::Number;
    char* end = nullptr;
    v->number = std::strtod(src_.c_str() + start, &end);
    if (end != src_.c_str() + pos_) fail("malformed number");
    return v;
  }

  ValuePtr parse_bool() {
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::Bool;
    if (src_.compare(pos_, 4, "true") == 0) {
      v->boolean = true;
      pos_ += 4;
    } else if (src_.compare(pos_, 5, "false") == 0) {
      v->boolean = false;
      pos_ += 5;
    } else {
      fail("expected true/false");
    }
    return v;
  }

  ValuePtr parse_null() {
    if (src_.compare(pos_, 4, "null") != 0) fail("expected null");
    pos_ += 4;
    return std::make_unique<Value>();
  }

  ValuePtr parse_array() {
    expect('[');
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v->items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
    return v;
  }

  ValuePtr parse_object() {
    expect('{');
    auto v = std::make_unique<Value>();
    v->kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v->fields.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    return v;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
};

int complain(const std::string& path, const std::string& why) {
  std::fprintf(stderr, "bench_schema_check: %s: %s\n", path.c_str(), why.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: bench_schema_check <BENCH_file.json>\n");
    return 2;
  }
  const std::string path = argv[1];
  std::ifstream in(path, std::ios::binary);
  if (!in) return complain(path, "cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string src = buf.str();
  if (src.empty()) return complain(path, "file is empty");

  ValuePtr root;
  try {
    root = Parser(src).parse();
  } catch (const std::exception& e) {
    return complain(path, e.what());
  }
  if (root->kind != Value::Kind::Object) return complain(path, "top level is not an object");

  const Value* schema = root->get("schema");
  if (!schema || schema->kind != Value::Kind::String || schema->text != "hpm-bench-v1") {
    return complain(path, "\"schema\" must be the string \"hpm-bench-v1\"");
  }
  const Value* bench = root->get("bench");
  if (!bench || bench->kind != Value::Kind::String || bench->text.empty()) {
    return complain(path, "\"bench\" must be a non-empty string");
  }
  const Value* smoke = root->get("smoke");
  if (!smoke || smoke->kind != Value::Kind::Bool) {
    return complain(path, "\"smoke\" must be a boolean");
  }
  const Value* results = root->get("results");
  if (!results || results->kind != Value::Kind::Array || results->items.empty()) {
    return complain(path, "\"results\" must be a non-empty array");
  }
  for (std::size_t i = 0; i < results->items.size(); ++i) {
    const Value& row = *results->items[i];
    const std::string where = "results[" + std::to_string(i) + "]";
    if (row.kind != Value::Kind::Object) return complain(path, where + " is not an object");
    const Value* name = row.get("name");
    if (!name || name->kind != Value::Kind::String || name->text.empty()) {
      return complain(path, where + ".name must be a non-empty string");
    }
    const Value* value = row.get("value");
    if (!value || value->kind != Value::Kind::Number) {
      return complain(path, where + ".value must be a number");
    }
    const Value* unit = row.get("unit");
    if (!unit || unit->kind != Value::Kind::String) {
      return complain(path, where + ".unit must be a string");
    }
  }
  const Value* metrics = root->get("metrics");
  if (!metrics || metrics->kind != Value::Kind::Object) {
    return complain(path, "\"metrics\" must be an object");
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const Value* s = metrics->get(section);
    if (!s || s->kind != Value::Kind::Object) {
      return complain(path, std::string("metrics.") + section + " must be an object");
    }
  }
  std::printf("bench_schema_check: %s: OK (%zu result rows)\n", path.c_str(),
              results->items.size());
  return 0;
}
