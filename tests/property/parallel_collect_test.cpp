// Property-based determinism of parallel collection: for random heap
// graphs (including heavily shared ones) rooted in several variables, the
// stream produced by msrm::collect_roots at 2 and 4 worker threads must
// be BIT-IDENTICAL to the serial stream, for every search strategy.
// Shared subgraphs are the hard case — the CAS-min ownership pass must
// assign every block to the first root that reaches it, exactly like the
// serial duplicate guard.
#include <gtest/gtest.h>

#include "apps/workload.hpp"
#include "msrm/collect.hpp"
#include "msrm/par_collect.hpp"
#include "obs/metrics.hpp"

namespace hpm {
namespace {

using apps::GraphShape;
using apps::RandNode;
using msr::Address;

struct Params {
  std::uint64_t seed;
  std::uint32_t nodes;
  double density;
  double share;
  msr::SearchStrategy strategy;
};

class ParallelCollectProperty : public ::testing::TestWithParam<Params> {};

TEST_P(ParallelCollectProperty, StreamsBitIdenticalToSerial) {
  const Params p = GetParam();
  ti::TypeTable table;
  apps::workload_register_types(table);
  mig::MigContext ctx(table, p.strategy);

  // Four root variables into one shared graph: spread the entry points so
  // ownership actually partitions, and point two roots at the same node
  // so a whole root record degenerates to a PREF.
  RandNode*& r0 = ctx.global<RandNode*>("r0");
  RandNode*& r1 = ctx.global<RandNode*>("r1");
  RandNode*& r2 = ctx.global<RandNode*>("r2");
  RandNode*& r3 = ctx.global<RandNode*>("r3");
  GraphShape shape;
  shape.nodes = p.nodes;
  shape.edge_density = p.density;
  shape.share_bias = p.share;
  const auto nodes = apps::build_random_graph(ctx, p.seed, shape);
  r0 = nodes[0];
  r1 = nodes[nodes.size() / 3];
  r2 = nodes[(2 * nodes.size()) / 3];
  r3 = r0;  // duplicate entry point

  const std::vector<Address> roots = {
      reinterpret_cast<Address>(&r0), reinterpret_cast<Address>(&r1),
      reinterpret_cast<Address>(&r2), reinterpret_cast<Address>(&r3)};

  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  xdr::Encoder serial_enc;
  msrm::collect_roots(ctx.space(), serial_enc, roots, 1);
  const obs::MetricsSnapshot serial_delta =
      obs::Registry::process().snapshot().delta_since(before);
  const Bytes serial = serial_enc.take();

  for (const unsigned threads : {2u, 4u}) {
    const obs::MetricsSnapshot par_before = obs::Registry::process().snapshot();
    xdr::Encoder par_enc;
    msrm::collect_roots(ctx.space(), par_enc, roots, threads);
    const obs::MetricsSnapshot par_delta =
        obs::Registry::process().snapshot().delta_since(par_before);
    const Bytes parallel = par_enc.take();
    ASSERT_EQ(serial.size(), parallel.size()) << "threads=" << threads;
    ASSERT_EQ(serial, parallel) << "threads=" << threads;
    // Identical traversal shape, not just identical bytes.
    EXPECT_EQ(serial_delta.counter("msrm.collect.blocks_saved"),
              par_delta.counter("msrm.collect.blocks_saved"));
    EXPECT_EQ(serial_delta.counter("msrm.collect.refs_saved"),
              par_delta.counter("msrm.collect.refs_saved"));
    EXPECT_EQ(serial_delta.counter("msrm.collect.nulls_saved"),
              par_delta.counter("msrm.collect.nulls_saved"));
    EXPECT_EQ(serial_delta.counter("msrm.collect.prim_leaves"),
              par_delta.counter("msrm.collect.prim_leaves"));
    EXPECT_EQ(par_delta.counter("msrm.collect.par.runs"), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelCollectProperty,
    ::testing::Values(
        Params{3, 64, 0.3, 0.0, msr::SearchStrategy::OrderedMap},
        Params{5, 500, 0.8, 0.5, msr::SearchStrategy::OrderedMap},
        Params{7, 500, 0.8, 0.5, msr::SearchStrategy::FlatArray},
        Params{11, 2000, 0.9, 0.9, msr::SearchStrategy::FlatArray},
        Params{13, 2000, 0.2, 0.95, msr::SearchStrategy::OrderedMap},
        Params{17, 1, 0.0, 0.0, msr::SearchStrategy::FlatArray}));

TEST(ParallelCollect, SingleRootFallsBackToSerial) {
  ti::TypeTable table;
  apps::workload_register_types(table);
  mig::MigContext ctx(table);
  RandNode*& root = ctx.global<RandNode*>("root");
  GraphShape shape;
  shape.nodes = 50;
  const auto nodes = apps::build_random_graph(ctx, 21, shape);
  root = nodes[0];
  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  xdr::Encoder enc;
  msrm::collect_roots(ctx.space(), enc, {reinterpret_cast<Address>(&root)}, 8);
  // One root cannot be partitioned: the serial path runs, no par metrics.
  EXPECT_EQ(obs::Registry::process().snapshot().delta_since(before).counter(
                "msrm.collect.par.runs"),
            0u);
  EXPECT_GT(enc.bytes().size(), 0u);
}

TEST(ParallelCollect, InvalidRootThrowsAtItsRank) {
  ti::TypeTable table;
  apps::workload_register_types(table);
  mig::MigContext ctx(table);
  RandNode*& r0 = ctx.global<RandNode*>("r0");
  RandNode*& r1 = ctx.global<RandNode*>("r1");
  GraphShape shape;
  shape.nodes = 40;
  const auto nodes = apps::build_random_graph(ctx, 31, shape);
  r0 = nodes[0];
  r1 = nodes[1];
  const std::vector<Address> roots = {reinterpret_cast<Address>(&r0), Address{0x10},
                                      reinterpret_cast<Address>(&r1)};
  xdr::Encoder serial_enc;
  EXPECT_THROW(msrm::collect_roots(ctx.space(), serial_enc, roots, 1), MsrError);
  xdr::Encoder par_enc;
  EXPECT_THROW(msrm::collect_roots(ctx.space(), par_enc, roots, 4), MsrError);
  // The prefix merged before the failing rank matches the serial prefix.
  const Bytes& s = serial_enc.bytes();
  const Bytes& q = par_enc.bytes();
  ASSERT_EQ(s.size(), q.size());
  EXPECT_EQ(s, q);
}

}  // namespace
}  // namespace hpm
