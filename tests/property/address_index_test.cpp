// Property-based equivalence of the AddressIndex implementations: the
// flat sorted interval array (branchless binary search, pending run,
// tombstoned erase) must be behavior-identical to the std::map reference
// across randomized insert/erase/lookup sequences — same accept/reject
// decisions, same containing-block answers (including misses and
// out-of-range probes), same address-order iteration, and equivalent
// frozen snapshots. Step counts are strategy-specific and not compared.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "common/error.hpp"
#include "msr/address_index.hpp"

namespace hpm {
namespace {

using msr::Address;
using msr::BlockId;
using msr::MemoryBlock;

MemoryBlock make_block(BlockId id, Address base, std::uint64_t size) {
  MemoryBlock b;
  b.id = id;
  b.segment = msr::Segment::Heap;
  b.base = base;
  b.size = size;
  b.type = 1;
  b.count = 1;
  return b;
}

class Harness {
 public:
  Harness()
      : ref_(msr::make_address_index(msr::SearchStrategy::OrderedMap)),
        flat_(msr::make_address_index(msr::SearchStrategy::FlatArray)) {}

  /// Insert into both; they must agree on accept vs MsrError.
  void insert(Address base, std::uint64_t size) {
    const BlockId id = msr::make_block_id(msr::Segment::Heap, next_seq_++);
    bool ref_ok = true, flat_ok = true;
    try {
      ref_->insert(make_block(id, base, size));
    } catch (const MsrError&) {
      ref_ok = false;
    }
    try {
      flat_->insert(make_block(id, base, size));
    } catch (const MsrError&) {
      flat_ok = false;
    }
    ASSERT_EQ(ref_ok, flat_ok) << "insert divergence at base=" << base << " size=" << size;
    if (ref_ok) live_.emplace(base, id);
  }

  void erase_random(std::mt19937_64& rng) {
    if (live_.empty()) return;
    auto it = live_.begin();
    std::advance(it, static_cast<long>(rng() % live_.size()));
    ref_->erase(it->first);
    flat_->erase(it->first);
    live_.erase(it);
  }

  void check_lookup(Address addr) {
    std::uint64_t s1 = 0, s2 = 0;
    const MemoryBlock* a = ref_->find_containing(addr, s1);
    const MemoryBlock* b = flat_->find_containing(addr, s2);
    ASSERT_EQ(a == nullptr, b == nullptr) << "hit/miss divergence at " << addr;
    if (a != nullptr) {
      EXPECT_EQ(a->id, b->id);
      EXPECT_EQ(a->base, b->base);
      EXPECT_EQ(a->size, b->size);
    }
    MemoryBlock* fb1 = ref_->find_base(addr);
    MemoryBlock* fb2 = flat_->find_base(addr);
    ASSERT_EQ(fb1 == nullptr, fb2 == nullptr);
    if (fb1 != nullptr) {
      EXPECT_EQ(fb1->id, fb2->id);
    }
  }

  void check_full_state() {
    ASSERT_EQ(ref_->size(), flat_->size());
    ASSERT_EQ(ref_->size(), live_.size());
    std::vector<std::pair<Address, BlockId>> ref_order, flat_order;
    ref_->for_each([&](const MemoryBlock& b) { ref_order.emplace_back(b.base, b.id); });
    flat_->for_each([&](const MemoryBlock& b) { flat_order.emplace_back(b.base, b.id); });
    EXPECT_EQ(ref_order, flat_order);

    const msr::FrozenIndex fz_ref = ref_->freeze();
    const msr::FrozenIndex fz_flat = flat_->freeze();
    ASSERT_EQ(fz_ref.size(), fz_flat.size());
    for (const auto& [base, id] : live_) {
      EXPECT_EQ(fz_ref.slot_of(id), fz_flat.slot_of(id));
      const MemoryBlock* fa = fz_ref.find_id(id);
      const MemoryBlock* fb = fz_flat.find_id(id);
      ASSERT_NE(fa, nullptr);
      ASSERT_NE(fb, nullptr);
      EXPECT_EQ(fa->base, base);
      EXPECT_EQ(fb->base, base);
      std::uint64_t s1 = 0, s2 = 0;
      EXPECT_EQ(fz_ref.find_containing(base, s1)->id, id);
      EXPECT_EQ(fz_flat.find_containing(base, s2)->id, id);
    }
  }

  [[nodiscard]] std::size_t live_count() const { return live_.size(); }

 private:
  std::unique_ptr<msr::AddressIndex> ref_;
  std::unique_ptr<msr::AddressIndex> flat_;
  std::map<Address, BlockId> live_;
  std::uint64_t next_seq_ = 1;
};

TEST(AddressIndexProperty, RandomizedOperationSequencesMatchReference) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    std::mt19937_64 rng(seed);
    Harness h;
    for (int round = 0; round < 6; ++round) {
      // Burst of inserts (some deliberately overlapping / zero-sized).
      for (int i = 0; i < 300; ++i) {
        const Address base = 64 + (rng() % 40000) * 8;
        const std::uint64_t size = (rng() % 10 == 0) ? 0 : 8 + rng() % 120;
        h.insert(base, size);
        if (::testing::Test::HasFatalFailure()) return;
      }
      // Mixed probes: interior hits, gaps, far out-of-range both sides.
      for (int i = 0; i < 800; ++i) {
        Address addr = rng() % 400000;
        if (i % 17 == 0) addr = 0;
        if (i % 23 == 0) addr = ~0ull - (rng() % 64);
        h.check_lookup(addr);
        if (::testing::Test::HasFatalFailure()) return;
      }
      // Erase a slice, then probe again (tombstone path).
      const std::size_t victims = h.live_count() / 3;
      for (std::size_t i = 0; i < victims; ++i) h.erase_random(rng);
      for (int i = 0; i < 400; ++i) h.check_lookup(rng() % 400000);
      h.check_full_state();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(AddressIndexProperty, MassEraseThenReinsert) {
  std::mt19937_64 rng(99);
  Harness h;
  for (int i = 0; i < 2000; ++i) h.insert(64 + (rng() % 100000) * 8, 8 + rng() % 56);
  while (h.live_count() > 10) h.erase_random(rng);  // compaction sweep
  h.check_full_state();
  for (int i = 0; i < 500; ++i) h.insert(64 + (rng() % 100000) * 8, 8 + rng() % 56);
  for (int i = 0; i < 1000; ++i) h.check_lookup(rng() % 900000);
  h.check_full_state();
}

}  // namespace
}  // namespace hpm
