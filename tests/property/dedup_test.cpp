// Property tests of the content-addressed dedup transfer (DESIGN.md §15).
//
// The central property: a dedup'd migration restores state BIT-IDENTICAL
// to a non-dedup migration of the same process — regardless of how much
// of the stream the destination's chunk cache already holds. The suite
// sweeps cache overlap from cold (0%) through partial (~50%, ~98%) to a
// full identical re-run (100%), asserting both the workload fingerprint
// and the end-to-end stream digest (which the destination verifies before
// voting, so equal digests certify equal restored streams). On top: the
// identical re-run must move almost nothing (< 5% of the stream's bytes),
// a corrupted cache entry must degrade to a re-requested miss inside the
// same negotiation, and the codec + resume paths must not disturb any of
// it. Labeled `dedup`; runs under the asan-dedup/tsan-dedup presets.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "apps/workload.hpp"
#include "ckpt/checkpoint.hpp"
#include "mig/annotate.hpp"
#include "mig/chunk_store.hpp"
#include "mig/coordinator.hpp"

namespace hpm::mig {
namespace {

namespace fs = std::filesystem;

struct GraphOutcome {
  std::uint64_t fingerprint = 0;
  bool done = false;
};

/// Two independently seeded graphs on the migratable heap: a STABLE one
/// whose seed is fixed across runs and a VARYING one whose seed the test
/// controls. Allocation order is deterministic, so the stable graph's
/// bytes occupy the same stream prefix in every run — the canonical
/// stream's chunks over that prefix are bit-identical and dedup against
/// the cache, while the varying suffix forces misses. The overlap knob is
/// simply the node-count split between the two graphs.
void two_graph_program(MigContext& ctx, std::uint64_t stable_seed,
                       std::uint32_t stable_nodes, std::uint64_t vary_seed,
                       std::uint32_t vary_nodes, GraphOutcome* out) {
  HPM_FUNCTION(ctx);
  apps::RandNode* stable_root;
  apps::RandNode* vary_root;
  int i;
  HPM_LOCAL(ctx, stable_root);
  HPM_LOCAL(ctx, vary_root);
  HPM_LOCAL(ctx, i);
  HPM_BODY(ctx);
  {
    apps::GraphShape shape;
    shape.edge_density = 0.7;
    shape.share_bias = 0.6;
    shape.nodes = stable_nodes;
    stable_root =
        stable_nodes > 0 ? apps::build_random_graph(ctx, stable_seed, shape)[0] : nullptr;
    shape.nodes = vary_nodes;
    vary_root = vary_nodes > 0 ? apps::build_random_graph(ctx, vary_seed, shape)[0] : nullptr;
  }
  for (i = 0; i < 6; ++i) {
    HPM_POLL(ctx, 1);
  }
  out->fingerprint = stable_root != nullptr ? apps::graph_fingerprint(stable_root) : 1;
  if (vary_root != nullptr) {
    out->fingerprint ^= apps::graph_fingerprint(vary_root) * 0x9E3779B97F4A7C15ull;
  }
  out->done = true;
  HPM_BODY_END(ctx);
}

MigrationReport run_two_graph(RunOptions& options, std::uint32_t stable_nodes,
                              std::uint64_t vary_seed, std::uint32_t vary_nodes,
                              GraphOutcome& out) {
  options.register_types = apps::workload_register_types;
  options.program = [&out, stable_nodes, vary_seed, vary_nodes](MigContext& ctx) {
    two_graph_program(ctx, /*stable_seed=*/17, stable_nodes, vary_seed, vary_nodes, &out);
  };
  options.pipeline = true;
  options.chunk_bytes = 512;
  options.migrate_at_poll = 3;
  return run_migration(options);
}

std::string fresh_cache_dir(const char* tag) {
  const std::string dir =
      (fs::temp_directory_path() /
       (std::string("hpm_dedup_") + tag + "_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  return dir;
}

struct OverlapCase {
  const char* tag;
  std::uint32_t stable_nodes;  ///< nodes shared between warm-up and test run
  std::uint32_t vary_nodes;    ///< nodes reseeded for the test run
};

std::string overlap_name(const ::testing::TestParamInfo<OverlapCase>& info) {
  return info.param.tag;
}

class DedupOverlap : public ::testing::TestWithParam<OverlapCase> {};

TEST_P(DedupOverlap, RestoredStateIsBitIdenticalToNonDedup) {
  const OverlapCase c = GetParam();
  const std::string cache = fresh_cache_dir(c.tag);

  // Ground truth: the test-run process migrated WITHOUT dedup.
  GraphOutcome plain_out;
  RunOptions plain;
  const MigrationReport plain_report =
      run_two_graph(plain, c.stable_nodes, /*vary_seed=*/23, c.vary_nodes, plain_out);
  ASSERT_EQ(plain_report.outcome, MigrationOutcome::Migrated);
  ASSERT_TRUE(plain_out.done);

  // Warm the cache with a migration whose varying graph is differently
  // seeded (vary_seed 41): only the stable prefix will match.
  GraphOutcome warm_out;
  RunOptions warm;
  warm.chunk_cache_dir = cache;
  const MigrationReport warm_report =
      run_two_graph(warm, c.stable_nodes, /*vary_seed=*/41, c.vary_nodes, warm_out);
  ASSERT_EQ(warm_report.outcome, MigrationOutcome::Migrated);
  ASSERT_TRUE(warm_out.done);
  EXPECT_EQ(warm_report.dedup_manifest_chunks,
            warm_report.dedup_hit_chunks + warm_report.dedup_miss_chunks);

  // The dedup'd test run against the warmed cache.
  GraphOutcome dedup_out;
  RunOptions dedup;
  dedup.chunk_cache_dir = cache;
  const MigrationReport dedup_report =
      run_two_graph(dedup, c.stable_nodes, /*vary_seed=*/23, c.vary_nodes, dedup_out);
  ASSERT_EQ(dedup_report.outcome, MigrationOutcome::Migrated);
  ASSERT_TRUE(dedup_out.done);

  // Bit-identical restored state: same workload fingerprint AND the same
  // end-to-end stream digest the destination verified before voting.
  EXPECT_EQ(dedup_out.fingerprint, plain_out.fingerprint);
  EXPECT_EQ(dedup_report.stream_digest, plain_report.stream_digest);
  EXPECT_EQ(dedup_report.stream_bytes, plain_report.stream_bytes)
      << "dedup altered the canonical stream itself";

  // The stable prefix must actually dedup (except in the cold 0% case).
  if (c.stable_nodes > 0) {
    EXPECT_GT(dedup_report.dedup_hit_chunks, 0u) << "shared prefix produced no hits";
  }
  fs::remove_all(cache);
}

INSTANTIATE_TEST_SUITE_P(
    Overlap, DedupOverlap,
    ::testing::Values(OverlapCase{"overlap0", 0, 120},    // cold: nothing shared
                      OverlapCase{"overlap50", 60, 60},   // ~half the stream shared
                      OverlapCase{"overlap98", 246, 4},   // ~98% shared
                      OverlapCase{"overlap100", 120, 0}),  // identical process
    overlap_name);

TEST(Dedup, IdenticalRerunMovesAlmostNothing) {
  // The headline property (README: "the second migration is (almost)
  // free"): re-migrating an identical process moves < 5% of the bytes the
  // first run moved.
  const std::string cache = fresh_cache_dir("rerun");
  GraphOutcome out1;
  RunOptions first;
  first.chunk_cache_dir = cache;
  const MigrationReport r1 = run_two_graph(first, 120, 23, 0, out1);
  ASSERT_EQ(r1.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(r1.dedup_hit_chunks, 0u) << "cold cache cannot hit";

  GraphOutcome out2;
  RunOptions second;
  second.chunk_cache_dir = cache;
  const MigrationReport r2 = run_two_graph(second, 120, 23, 0, out2);
  ASSERT_EQ(r2.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(r2.stream_digest, r1.stream_digest) << "the two processes must be identical";
  EXPECT_EQ(r2.dedup_miss_chunks, 0u) << "an identical stream must be all hits";
  EXPECT_EQ(r2.dedup_hit_chunks, r2.dedup_manifest_chunks);
  ASSERT_GT(r2.stream_bytes, 0u);
  const double ratio = static_cast<double>(r2.dedup_wire_bytes) /
                       static_cast<double>(r2.stream_bytes);
  EXPECT_LT(ratio, 0.05) << "wire " << r2.dedup_wire_bytes << " of " << r2.stream_bytes;
  EXPECT_EQ(out2.fingerprint, out1.fingerprint);

  // The stats surface behind `hpmtool chunk-cache` saw the negotiation.
  const ChunkStore::RunStats stats = ChunkStore::read_run_stats(cache);
  ASSERT_TRUE(stats.valid);
  EXPECT_EQ(stats.manifest_chunks, r2.dedup_manifest_chunks);
  EXPECT_EQ(stats.hits, r2.dedup_hit_chunks);
  EXPECT_EQ(stats.misses, 0u);
  fs::remove_all(cache);
}

TEST(Dedup, CorruptedCacheEntryIsReRequestedAndHealed) {
  // Damage one cached chunk between two identical runs. begin_manifest's
  // digest-verified load must turn it into a miss (re-requested within
  // the same negotiation), the migration must still land bit-identical,
  // and the re-received body must heal the cache.
  const std::string cache = fresh_cache_dir("heal");
  GraphOutcome out1;
  RunOptions first;
  first.chunk_cache_dir = cache;
  const MigrationReport r1 = run_two_graph(first, 120, 23, 0, out1);
  ASSERT_EQ(r1.outcome, MigrationOutcome::Migrated);

  // Flip a byte inside the body of one entry (file size unchanged).
  std::string victim;
  for (const fs::directory_entry& de : fs::directory_iterator(cache)) {
    if (de.path().extension() == ".chunk") {
      victim = de.path().string();
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  {
    std::FILE* f = std::fopen(victim.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 16 + 3, SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, 16 + 3, SEEK_SET), 0);
    std::fputc(c ^ 0x5A, f);
    std::fclose(f);
  }

  GraphOutcome out2;
  RunOptions second;
  second.chunk_cache_dir = cache;
  const MigrationReport r2 = run_two_graph(second, 120, 23, 0, out2);
  ASSERT_EQ(r2.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(r2.attempts, 1) << "a poisoned entry is a miss, never a failed attempt";
  EXPECT_EQ(r2.dedup_miss_chunks, 1u) << "exactly the damaged chunk re-requested";
  EXPECT_EQ(r2.stream_digest, r1.stream_digest);
  EXPECT_EQ(out2.fingerprint, out1.fingerprint);

  // Healed: a third run is all hits again.
  GraphOutcome out3;
  RunOptions third;
  third.chunk_cache_dir = cache;
  const MigrationReport r3 = run_two_graph(third, 120, 23, 0, out3);
  ASSERT_EQ(r3.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(r3.dedup_miss_chunks, 0u);
  fs::remove_all(cache);
}

TEST(Dedup, WireCodecPreservesBitIdenticalRestore) {
  // VarintDelta negotiated on both sides; cold cache, so every chunk is a
  // coded (or raw-fallback) miss. The restored state must be identical to
  // the raw-wire run's.
  const std::string cache = fresh_cache_dir("codec");
  GraphOutcome plain_out;
  RunOptions plain;
  const MigrationReport plain_report = run_two_graph(plain, 120, 23, 0, plain_out);
  ASSERT_EQ(plain_report.outcome, MigrationOutcome::Migrated);

  GraphOutcome coded_out;
  RunOptions coded;
  coded.chunk_cache_dir = cache;
  coded.wire_codec = WireCodec::VarintDelta;
  const MigrationReport coded_report = run_two_graph(coded, 120, 23, 0, coded_out);
  ASSERT_EQ(coded_report.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(coded_out.fingerprint, plain_out.fingerprint);
  EXPECT_EQ(coded_report.stream_digest, plain_report.stream_digest);
  fs::remove_all(cache);
}

TEST(Dedup, LinkFailureMidStreamResumesRaw) {
  // Corrupt the wire mid-transfer in a dedup run: the frame CRC turns it
  // into a link failure, the destination stops splice-ahead, and the
  // resume retransmits everything from the watermark raw — the migration
  // still lands bit-identical on attempt 2.
  const std::string cache = fresh_cache_dir("resume");
  GraphOutcome out;
  RunOptions options;
  options.chunk_cache_dir = cache;
  options.io_timeout_seconds = 0.25;
  options.retry_backoff_seconds = 0.005;
  options.fault_plan.kind = net::FaultKind::Corrupt;
  options.fault_plan.offset = 2000;  // past StateBegin + the manifest head
  options.fault_plan.length = 4;
  options.fault_plan.max_firings = 1;
  const MigrationReport report = run_two_graph(options, 120, 23, 0, out);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(report.attempts, 2) << "attempt 1 absorbs the corruption, attempt 2 lands";
  ASSERT_TRUE(out.done);

  GraphOutcome plain_out;
  RunOptions plain;
  const MigrationReport plain_report = run_two_graph(plain, 120, 23, 0, plain_out);
  ASSERT_EQ(plain_report.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(out.fingerprint, plain_out.fingerprint);
  EXPECT_EQ(report.stream_digest, plain_report.stream_digest);
  fs::remove_all(cache);
}

TEST(Dedup, CheckpointSeededCacheAnswersTheManifest) {
  // Checkpoint rounds and migrations hit the same cache (DESIGN.md §15):
  // seeding a store from a checkpoint's embedded stream — sliced at the
  // same chunk_bytes the migration will announce — makes a later
  // migration of that process an all-hit manifest.
  const std::string cache = fresh_cache_dir("ckptseed");
  const std::string ckpt_path = cache + ".ckpt";
  GraphOutcome ck_out;
  ckpt::checkpoint_run(
      apps::workload_register_types,
      [&ck_out](MigContext& ctx) { two_graph_program(ctx, 17, 120, 23, 0, &ck_out); },
      ckpt_path, /*at_poll=*/3);
  ASSERT_TRUE(ck_out.done);
  const std::size_t seeded = ckpt::seed_chunk_cache(ckpt_path, cache, /*chunk_bytes=*/512);
  ASSERT_GT(seeded, 0u);

  GraphOutcome out;
  RunOptions options;
  options.chunk_cache_dir = cache;
  const MigrationReport report = run_two_graph(options, 120, 23, 0, out);
  ASSERT_EQ(report.outcome, MigrationOutcome::Migrated);
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.fingerprint, ck_out.fingerprint);
  EXPECT_EQ(report.dedup_miss_chunks, 0u) << "checkpointed chunks must answer the manifest";
  EXPECT_EQ(report.dedup_hit_chunks, report.dedup_manifest_chunks);
  fs::remove_all(cache);
  fs::remove(ckpt_path);
}

}  // namespace
}  // namespace hpm::mig
