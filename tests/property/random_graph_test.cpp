// Property-based tests: random heap graphs of arbitrary topology must
// survive (a) host-to-host migration streams and (b) heterogeneous
// host -> foreign-image -> host round trips, with no block duplicated and
// no payload bit lost. Seeds and shapes are swept parametrically.
#include <gtest/gtest.h>

#include "apps/workload.hpp"
#include "memimg/image_space.hpp"
#include "msr/graph.hpp"
#include "msrm/collect.hpp"
#include "msrm/restore.hpp"
#include "obs/metrics.hpp"
#include "xdr/arch.hpp"

namespace hpm {
namespace {

using apps::GraphShape;
using apps::RandNode;
using msr::Address;
using msr::BlockId;

struct Params {
  std::uint64_t seed;
  std::uint32_t nodes;
  double density;
  double share;
};

class RandomGraphProperty : public ::testing::TestWithParam<Params> {};

TEST_P(RandomGraphProperty, HostToHostStreamPreservesFingerprint) {
  const Params p = GetParam();
  ti::TypeTable table;
  apps::workload_register_types(table);
  mig::MigContext src(table);
  RandNode*& root = src.global<RandNode*>("root");
  GraphShape shape;
  shape.nodes = p.nodes;
  shape.edge_density = p.density;
  shape.share_bias = p.share;
  const auto nodes = apps::build_random_graph(src, p.seed, shape);
  root = nodes[0];
  const std::uint64_t fp = apps::graph_fingerprint(root);

  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  xdr::Encoder enc;
  msrm::Collector collector(src.space(), enc);
  collector.save_variable(reinterpret_cast<Address>(&root));
  const Bytes stream = enc.take();
  const obs::MetricsSnapshot collect_delta =
      obs::Registry::process().snapshot().delta_since(before);

  // No duplication: PNEW count equals the number of *reachable* blocks
  // (the root variable + reachable graph nodes).
  const msr::MsrGraph g = msr::MsrGraph::snapshot(src.space());
  const BlockId root_block =
      src.space().msrlt().find_containing(reinterpret_cast<Address>(&root))->id;
  const auto reachable = g.reachable_from({root_block});
  EXPECT_EQ(collect_delta.counter("msrm.collect.blocks_saved"), reachable.size());

  msr::HostSpace dst(table);
  xdr::Decoder dec(stream);
  msrm::Restorer restorer(dst, dec);
  restorer.set_auto_bind(true);
  const BlockId out = restorer.restore_variable();
  RandNode* root2 = *reinterpret_cast<RandNode**>(dst.msrlt().find_id(out)->base);
  EXPECT_EQ(apps::graph_fingerprint(root2), fp) << "seed " << p.seed;
  EXPECT_TRUE(dec.at_end());
}

TEST_P(RandomGraphProperty, HeterogeneousRoundTripPreservesFingerprint) {
  const Params p = GetParam();
  ti::TypeTable table;
  apps::workload_register_types(table);
  mig::MigContext src(table);
  RandNode*& root = src.global<RandNode*>("root");
  GraphShape shape;
  shape.nodes = p.nodes;
  shape.edge_density = p.density;
  shape.share_bias = p.share;
  const auto nodes = apps::build_random_graph(src, p.seed, shape);
  root = nodes[0];
  const std::uint64_t fp = apps::graph_fingerprint(root);

  // host -> BE ILP32 image -> LE ILP32 image -> host: two genuinely
  // different foreign layouts chained.
  xdr::Encoder e1;
  msrm::Collector c1(src.space(), e1);
  c1.save_variable(reinterpret_cast<Address>(&root));
  memimg::ImageSpace sparc(table, xdr::sparc20_solaris());
  xdr::Decoder d1_dec(e1.bytes());
  msrm::Restorer r1(sparc, d1_dec, xdr::native_arch());
  r1.set_auto_bind(true);
  const BlockId sparc_root = r1.restore_variable();

  xdr::Encoder e2;
  msrm::Collector c2(sparc, e2);
  c2.save_variable(sparc.msrlt().find_id(sparc_root)->base);
  memimg::ImageSpace dec5k(table, xdr::dec5000_ultrix());
  xdr::Decoder d2_dec(e2.bytes());
  msrm::Restorer r2(dec5k, d2_dec, xdr::sparc20_solaris());
  r2.set_auto_bind(true);
  const BlockId dec_root = r2.restore_variable();

  xdr::Encoder e3;
  msrm::Collector c3(dec5k, e3);
  c3.save_variable(dec5k.msrlt().find_id(dec_root)->base);
  msr::HostSpace host2(table);
  xdr::Decoder d3_dec(e3.bytes());
  msrm::Restorer r3(host2, d3_dec, xdr::dec5000_ultrix());
  r3.set_auto_bind(true);
  const BlockId out = r3.restore_variable();
  RandNode* root2 = *reinterpret_cast<RandNode**>(host2.msrlt().find_id(out)->base);
  EXPECT_EQ(apps::graph_fingerprint(root2), fp) << "seed " << p.seed;

  // The canonical wire is layout-independent: all three hops carry the
  // same number of payload bytes.
  EXPECT_EQ(e1.size(), e2.size());
  EXPECT_EQ(e2.size(), e3.size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomGraphProperty,
    ::testing::Values(Params{1, 1, 0.0, 0.0},       // single node, no edges
                      Params{2, 2, 1.0, 1.0},       // tight pair, max sharing
                      Params{3, 10, 0.3, 0.2},      // sparse
                      Params{4, 50, 0.9, 0.9},      // dense, heavy sharing
                      Params{5, 100, 0.5, 0.5},     // balanced
                      Params{6, 100, 1.0, 0.0},     // dense, forward-biased
                      Params{7, 250, 0.2, 0.8},     // long chains w/ back edges
                      Params{8, 500, 0.6, 0.5},     // bigger balanced
                      Params{9, 64, 0.05, 0.0},     // mostly isolated islands
                      Params{10, 333, 0.75, 0.25}));

TEST(RandomGraphDeterminism, SameSeedSameFingerprint) {
  ti::TypeTable t1, t2;
  apps::workload_register_types(t1);
  apps::workload_register_types(t2);
  mig::MigContext a(t1), b(t2);
  GraphShape shape;
  shape.nodes = 40;
  const auto na = apps::build_random_graph(a, 123, shape);
  const auto nb = apps::build_random_graph(b, 123, shape);
  EXPECT_EQ(apps::graph_fingerprint(na[0]), apps::graph_fingerprint(nb[0]));
  const auto nc = apps::build_random_graph(a, 124, shape);
  EXPECT_NE(apps::graph_fingerprint(na[0]), apps::graph_fingerprint(nc[0]));
}

}  // namespace
}  // namespace hpm
