// Property test of the chunked pipeline: for random heap graphs, the
// destination state after a pipelined transfer is bit-identical to the
// serial transfer's — at every chunk size from the pathological (1-byte
// payloads, so every frame boundary splits a token) to the degenerate
// (one chunk holds the whole stream). A corrupted chunk must be caught
// by the per-chunk frame CRC and cost exactly one retryable attempt.
#include <gtest/gtest.h>

#include "apps/workload.hpp"
#include "mig/annotate.hpp"
#include "mig/coordinator.hpp"

namespace hpm::mig {
namespace {

struct GraphOutcome {
  std::uint64_t fingerprint = 0;
  bool done = false;
};

/// Builds a seeded random graph on the migratable heap (pre-trigger, so
/// the construction needs no annotation), polls through a short window
/// where migration can fire, then fingerprints whatever memory the
/// process ended up on. After a migration the fingerprint is computed
/// from the DESTINATION's restored heap.
void graph_program(MigContext& ctx, std::uint64_t seed, std::uint32_t node_count,
                   GraphOutcome* out) {
  HPM_FUNCTION(ctx);
  apps::RandNode* root;
  int i;
  HPM_LOCAL(ctx, root);
  HPM_LOCAL(ctx, i);
  HPM_BODY(ctx);
  {
    apps::GraphShape shape;
    shape.nodes = node_count;
    shape.edge_density = 0.7;
    shape.share_bias = 0.6;
    root = apps::build_random_graph(ctx, seed, shape)[0];
  }
  for (i = 0; i < 6; ++i) {
    HPM_POLL(ctx, 1);
  }
  out->fingerprint = apps::graph_fingerprint(root);
  out->done = true;
  HPM_BODY_END(ctx);
}

/// Fingerprint of the same (seed, size) graph with no migration at all —
/// the ground truth both transfer modes must reproduce.
std::uint64_t unmigrated_fingerprint(std::uint64_t seed, std::uint32_t node_count) {
  ti::TypeTable types;
  apps::workload_register_types(types);
  MigContext ctx(types);
  GraphOutcome out;
  graph_program(ctx, seed, node_count, &out);
  EXPECT_TRUE(out.done);
  return out.fingerprint;
}

MigrationReport run_graph(RunOptions& options, std::uint64_t seed,
                          std::uint32_t node_count, GraphOutcome& out) {
  options.register_types = apps::workload_register_types;
  options.program = [&out, seed, node_count](MigContext& ctx) {
    graph_program(ctx, seed, node_count, &out);
  };
  options.migrate_at_poll = 3;
  return run_migration(options);
}

struct ChunkCase {
  std::uint32_t chunk_bytes;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<ChunkCase>& info) {
  return "chunk" + std::to_string(info.param.chunk_bytes) + "_seed" +
         std::to_string(info.param.seed);
}

class ChunkSizes : public ::testing::TestWithParam<ChunkCase> {};

TEST_P(ChunkSizes, PipelinedRestoreIsBitIdenticalToSerial) {
  const ChunkCase c = GetParam();
  const std::uint32_t nodes = 120;
  const std::uint64_t expected = unmigrated_fingerprint(c.seed, nodes);

  GraphOutcome serial_out;
  RunOptions serial;
  const MigrationReport s = run_graph(serial, c.seed, nodes, serial_out);
  ASSERT_EQ(s.outcome, MigrationOutcome::Migrated);
  ASSERT_TRUE(serial_out.done);
  // The fingerprint hashes every payload bit (tags, double bit patterns,
  // flavors) plus the sharing structure, so equality here is the
  // "bit-identical restored state" property.
  EXPECT_EQ(serial_out.fingerprint, expected);

  GraphOutcome piped_out;
  RunOptions piped;
  piped.pipeline = true;
  piped.chunk_bytes = c.chunk_bytes;
  const MigrationReport p = run_graph(piped, c.seed, nodes, piped_out);
  ASSERT_EQ(p.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(p.attempts, 1);
  ASSERT_TRUE(piped_out.done);
  EXPECT_EQ(piped_out.fingerprint, expected);
  EXPECT_EQ(p.stream_bytes, s.stream_bytes) << "chunking altered the stream itself";
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ChunkSizes,
    ::testing::Values(ChunkCase{1, 11}, ChunkCase{7, 11}, ChunkCase{4096, 11},
                      ChunkCase{1u << 20, 11}, ChunkCase{1, 29}, ChunkCase{7, 42},
                      ChunkCase{4096, 42}, ChunkCase{1u << 20, 29}),
    case_name);

TEST(ChunkPipeline, CorruptedChunkIsOneRetryableFailure) {
  // Flip bytes inside chunk ~4 of the pipelined stream. The frame CRC on
  // that StateChunk must catch it and attempt 2 must land the retained
  // stream — since the transactional handoff, as a RESUME from the
  // destination's chunk watermark rather than a full serial replay —
  // deterministically two attempts, never a hang (the suite's ctest
  // TIMEOUT enforces that).
  GraphOutcome out;
  RunOptions options;
  options.pipeline = true;
  options.chunk_bytes = 512;
  options.io_timeout_seconds = 0.25;
  options.retry_backoff_seconds = 0.005;
  options.fault_plan.kind = net::FaultKind::Corrupt;
  options.fault_plan.offset = 2000;  // past StateBegin + a few chunk frames
  options.fault_plan.length = 4;
  options.fault_plan.max_firings = 1;  // attempt 1 corrupted, attempt 2 clean
  const MigrationReport report = run_graph(options, 11, 120, out);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(report.attempts, 2) << "attempt 1 absorbs the corruption, attempt 2 lands";
  ASSERT_EQ(report.failure_causes.size(), 1u);
  EXPECT_NE(report.failure_causes[0].find("attempt 1"), std::string::npos)
      << report.failure_causes[0];
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.fingerprint, unmigrated_fingerprint(11, 120));
}

TEST(ChunkPipeline, PersistentCorruptionDegradesToLocalCompletion) {
  // The fault never clears: the pipelined attempt and every serial retry
  // fail, and the source must still finish the workload locally.
  GraphOutcome out;
  RunOptions options;
  options.pipeline = true;
  options.chunk_bytes = 512;
  options.io_timeout_seconds = 0.25;
  options.max_retries = 1;
  options.retry_backoff_seconds = 0.005;
  options.fault_plan.kind = net::FaultKind::Corrupt;
  options.fault_plan.offset = 2000;
  options.fault_plan.max_firings = 1000;  // outlives the retry budget
  const MigrationReport report = run_graph(options, 11, 120, out);
  EXPECT_EQ(report.outcome, MigrationOutcome::AbortedContinuedLocally);
  EXPECT_FALSE(report.migrated);
  EXPECT_EQ(report.attempts, 2);  // pipelined attempt + 1 serial retry
  EXPECT_EQ(report.failure_causes.size(), 2u);
  ASSERT_TRUE(out.done) << "local continuation must still produce the result";
  EXPECT_EQ(out.fingerprint, unmigrated_fingerprint(11, 120));
}

}  // namespace
}  // namespace hpm::mig
