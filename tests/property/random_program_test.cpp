// Fuzz test of the resume machinery: seed-generated random call trees of
// migratable functions (random fan-out, depth, loop lengths, and local
// mutations), migrated at a pseudo-random poll each round. The migrated
// run's result must equal the unmigrated run's, for every seed.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mig/annotate.hpp"
#include "mig/context.hpp"

namespace hpm::mig {
namespace {

/// One node of the random program: loops `reps` times (polling), mixing
/// its accumulator, then recurses into `children` subtrees whose shapes
/// derive deterministically from (seed, depth, index).
struct ProgramShape {
  std::uint64_t seed = 1;
  int max_depth = 4;
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

void random_node(MigContext& ctx, std::uint64_t node_seed, int depth,
                 std::uint64_t* result) {
  HPM_FUNCTION(ctx);
  long acc;
  int i, reps, kids;
  std::uint64_t child_out;
  HPM_LOCAL(ctx, acc);
  HPM_LOCAL(ctx, i);
  HPM_LOCAL(ctx, reps);
  HPM_LOCAL(ctx, kids);
  HPM_LOCAL(ctx, child_out);
  HPM_LOCAL(ctx, node_seed);
  HPM_LOCAL(ctx, depth);
  HPM_LOCAL(ctx, result);  // points into the parent's frame (or a global)
  HPM_BODY(ctx);
  {
    Rng rng(node_seed);
    reps = rng.next_int(1, 6);
    kids = depth > 0 ? rng.next_int(0, 3) : 0;
  }
  acc = 0;
  for (i = 0; i < reps; ++i) {
    HPM_POLL(ctx, 1);
    acc = static_cast<long>(mix(static_cast<std::uint64_t>(acc), node_seed + i));
  }
  child_out = 0;
  // Up to three child call sites; each recursion is label-distinct.
  if (kids >= 1) {
    HPM_CALL(ctx, 2, random_node(ctx, HPM_ARG(ctx, node_seed * 7 + 1),
                                 HPM_ARG(ctx, depth - 1), HPM_ARG(ctx, &child_out)));
  }
  if (kids >= 2) {
    HPM_CALL(ctx, 3, random_node(ctx, HPM_ARG(ctx, node_seed * 7 + 2),
                                 HPM_ARG(ctx, depth - 1), HPM_ARG(ctx, &child_out)));
  }
  if (kids >= 3) {
    HPM_CALL(ctx, 4, random_node(ctx, HPM_ARG(ctx, node_seed * 7 + 3),
                                 HPM_ARG(ctx, depth - 1), HPM_ARG(ctx, &child_out)));
  }
  for (i = 0; i < reps; ++i) {
    HPM_POLL(ctx, 5);
    acc = static_cast<long>(mix(static_cast<std::uint64_t>(acc), child_out + i));
  }
  *result = mix(static_cast<std::uint64_t>(acc), child_out);
  HPM_BODY_END(ctx);
}

/// Driver: owns the tracked result sink (a per-context global) so the
/// root frame's `result` pointer resolves inside the MSR model.
std::uint64_t driver(MigContext& ctx, std::uint64_t seed) {
  std::uint64_t& out = ctx.global<std::uint64_t>("out");
  random_node(ctx, seed, 4, &out);
  return out;
}

std::uint64_t run_unmigrated(std::uint64_t seed) {
  ti::TypeTable t;
  MigContext ctx(t);
  return driver(ctx, seed);
}

class RandomProgram : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgram, MigratedResultMatchesUnmigrated) {
  const std::uint64_t seed = GetParam();
  const std::uint64_t expected = run_unmigrated(seed);

  // Count the program's polls, then migrate at several positions spread
  // through the run (including the very first and very last poll).
  std::uint64_t total_polls = 0;
  {
    ti::TypeTable t;
    MigContext probe(t);
    driver(probe, seed);
    total_polls = probe.poll_count();
  }
  ASSERT_GT(total_polls, 0u);
  const std::uint64_t positions[] = {1, total_polls / 3 + 1, (2 * total_polls) / 3 + 1,
                                     total_polls};
  for (const std::uint64_t at : positions) {
    ti::TypeTable t;
    MigContext src(t);
    src.set_migrate_at_poll(at);
    EXPECT_THROW(driver(src, seed), MigrationExit) << "at poll " << at;

    ti::TypeTable t2;
    MigContext dst(t2);
    dst.begin_restore(src.stream());
    const std::uint64_t out = driver(dst, seed);
    EXPECT_EQ(out, expected) << "seed " << seed << " migrated at poll " << at << "/"
                             << total_polls;
    EXPECT_EQ(dst.frame_depth(), 0u);
    // Only the result global remains tracked after the frames unwind.
    EXPECT_EQ(dst.space().msrlt().block_count(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

}  // namespace
}  // namespace hpm::mig
