// Parameterized end-to-end matrix: every workload correct when migrated
// at MANY different poll points (early, mid, late), which exercises
// different frame stacks, live-data shapes, and resume labels each time.
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "apps/linpack.hpp"
#include "apps/test_pointer.hpp"
#include "mig/coordinator.hpp"

namespace hpm {
namespace {

class LinpackSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinpackSweep, SolvesCorrectlyWhenMigratedAtPoll) {
  apps::LinpackResult result;
  mig::RunOptions options;
  options.register_types = apps::linpack_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::linpack_program(ctx, 60, 3, &result);
  };
  options.migrate_at_poll = GetParam();
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_TRUE(report.migrated);
  EXPECT_TRUE(result.ok()) << "normalized=" << result.normalized << " at poll " << GetParam();
  EXPECT_EQ(report.metrics.counter("msrm.collect.blocks_saved"),
            report.metrics.counter("msrm.restore.blocks_created") +
                report.metrics.counter("msrm.restore.blocks_bound"))
      << "every transferred block must be materialized exactly once";
}

// n=60: dgefa polls 59 times (labels 1), dgesl polls 59+60 more. Sweep
// covers dgefa early/mid/late, the dgefa->dgesl boundary, and dgesl's
// back-substitution loop.
INSTANTIATE_TEST_SUITE_P(PollPoints, LinpackSweep,
                         ::testing::Values(1, 2, 15, 30, 58, 59, 60, 90, 118, 150, 177));

class BitonicSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitonicSweep, SortsCorrectlyWhenMigratedAtPoll) {
  apps::BitonicResult result;
  mig::RunOptions options;
  options.register_types = apps::bitonic_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::bitonic_program(ctx, 5, 77, &result);
  };
  options.migrate_at_poll = GetParam();
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_TRUE(report.migrated);
  EXPECT_TRUE(result.ok()) << "at poll " << GetParam();
}

// 32 leaves -> 32*15/2 = 240 leaf compare polls; hit many recursion
// shapes including the first and the last.
INSTANTIATE_TEST_SUITE_P(PollPoints, BitonicSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 31, 32, 33, 64, 100, 151, 200, 239,
                                           240));

class TransportSweep : public ::testing::TestWithParam<mig::Transport> {};

TEST_P(TransportSweep, BitonicMigratesOverEveryTransport) {
  apps::BitonicResult result;
  mig::RunOptions options;
  options.register_types = apps::bitonic_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::bitonic_program(ctx, 4, 5, &result);
  };
  options.migrate_at_poll = 20;
  options.transport = GetParam();
  options.spool_path = "/tmp/hpm_matrix_spool.bin";
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_TRUE(report.migrated);
  EXPECT_TRUE(result.ok());
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportSweep,
                         ::testing::Values(mig::Transport::Memory, mig::Transport::Socket,
                                           mig::Transport::File));

TEST(MigrationMatrix, ThrottledLinkReportsWallClockTx) {
  apps::TestPointerResult result;
  mig::RunOptions options;
  options.register_types = apps::test_pointer_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::test_pointer_program(ctx, 1, &result);
  };
  options.migrate_at_poll = 1;
  options.throttle = true;
  options.link = net::SimulatedLink{50e6, 1e-3, 1500, 58};  // slow-ish, visible latency
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_TRUE(result.ok());
  EXPECT_GE(report.tx_seconds, 1e-3);  // at least the modeled latency
}

TEST(MigrationMatrix, LateTriggerAfterLastPollMeansNoMigration) {
  apps::BitonicResult result;
  mig::RunOptions options;
  options.register_types = apps::bitonic_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::bitonic_program(ctx, 3, 5, &result);
  };
  options.migrate_at_poll = 1000000;  // beyond the program's poll count
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_FALSE(report.migrated);
  EXPECT_TRUE(result.ok());
  EXPECT_GT(report.source_polls, 0u);
}

}  // namespace
}  // namespace hpm
