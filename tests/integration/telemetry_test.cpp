// End-to-end telemetry: a real migration must produce a MigrationReport
// whose metrics snapshot is internally consistent — in particular the
// frame-layer byte counter must equal the transport-layer byte counter
// for every transport, since all channel traffic flows through
// send_message()/recv_message().
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <vector>

#include "mig/annotate.hpp"
#include "mig/coordinator.hpp"
#include "net/factory.hpp"
#include "net/message.hpp"
#include "obs/span.hpp"

namespace hpm::mig {
namespace {

void counting_program(MigContext& ctx, int n, std::atomic<int>* completions) {
  HPM_FUNCTION(ctx);
  int i;
  double acc;
  HPM_LOCAL(ctx, i);
  HPM_LOCAL(ctx, n);
  HPM_LOCAL(ctx, acc);
  HPM_BODY(ctx);
  acc = 0;
  for (i = 0; i < n; ++i) {
    HPM_POLL(ctx, 1);
    acc += i;
  }
  completions->fetch_add(1);
  HPM_BODY_END(ctx);
}

MigrationReport migrate_over(Transport transport) {
  std::atomic<int> completions{0};
  RunOptions options;
  options.register_types = [](ti::TypeTable&) {};
  options.program = [&completions](MigContext& ctx) {
    counting_program(ctx, 10, &completions);
  };
  options.migrate_at_poll = 5;
  options.transport = transport;
  options.spool_path = std::string("/tmp/hpm_telemetry_") +
                       net::transport_name(transport) + ".bin";
  const MigrationReport report = run_migration(options);
  EXPECT_TRUE(report.migrated);
  EXPECT_EQ(completions.load(), 1);
  return report;
}

const char* channel_bytes_sent_metric(Transport transport) {
  switch (transport) {
    case Transport::Memory: return "net.mem.bytes_sent";
    case Transport::Socket: return "net.socket.bytes_sent";
    case Transport::File: return "net.file.bytes_sent";
  }
  return "?";
}

TEST(Telemetry, WireBytesMatchChannelBytesAcrossTransports) {
  for (const Transport transport :
       {Transport::Memory, Transport::Socket, Transport::File}) {
    SCOPED_TRACE(net::transport_name(transport));
    const MigrationReport report = migrate_over(transport);
    // The run's delta-snapshot: every byte the frame layer sent went
    // through exactly one channel, so the two layers must agree.
    const std::uint64_t frame_bytes = report.metrics.counter("net.frames.bytes_sent");
    const std::uint64_t channel_bytes =
        report.metrics.counter(channel_bytes_sent_metric(transport));
    EXPECT_GT(frame_bytes, 0u);
    EXPECT_EQ(frame_bytes, channel_bytes);
    // Frame bytes = payloads + 9 bytes framing (5-byte header + CRC32)
    // per frame; the State frame alone carries the whole migration stream.
    const std::uint64_t frames = report.metrics.counter("net.frames.sent");
    EXPECT_GT(frames, 0u);
    EXPECT_GE(frame_bytes, report.stream_bytes + frames * 9);
  }
}

TEST(Telemetry, ReportTimingsAreSpanDerived) {
  const MigrationReport report = migrate_over(Transport::Memory);
  // Phase timings come from the mig.collect / mig.tx / mig.restore spans;
  // their histograms must have recorded samples in this run's delta.
  EXPECT_GT(report.collect_seconds, 0.0);
  EXPECT_GT(report.restore_seconds, 0.0);
  ASSERT_NE(report.metrics.histogram("trace.mig.collect"), nullptr);
  ASSERT_NE(report.metrics.histogram("trace.mig.restore"), nullptr);
  ASSERT_NE(report.metrics.histogram("trace.mig.run"), nullptr);
  EXPECT_GE(report.metrics.histogram("trace.mig.collect")->count, 1u);
  // The pipeline counters rode along in the snapshot.
  EXPECT_GT(report.metrics.counter("msr.msrlt.searches"), 0u);
  EXPECT_GT(report.metrics.counter("mig.coordinator.attempts"), 0u);
  EXPECT_GT(report.metrics.counter("xdr.encode.streams"), 0u);
}

TEST(Telemetry, ChromeTraceExportsAfterMigration) {
  migrate_over(Transport::Memory);
  const std::string path = "/tmp/hpm_telemetry_trace.json";
  std::remove(path.c_str());
  ASSERT_TRUE(obs::Tracer::process().write_chrome_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 16, '\0');
  const std::size_t got = std::fread(content.data(), 1, content.size(), f);
  std::fclose(f);
  content.resize(got);
  EXPECT_NE(content.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"mig.collect\""), std::string::npos);
  EXPECT_NE(content.find("\"name\":\"mig.restore\""), std::string::npos);
}

TEST(Telemetry, FactoryPairsAreWiredBothWays) {
  // Satellite check for net::make_channel_pair: each transport yields a
  // usable source->destination path, and duplex() reports File correctly.
  for (const Transport transport :
       {Transport::Memory, Transport::Socket, Transport::File}) {
    SCOPED_TRACE(net::transport_name(transport));
    net::ChannelOptions channel_options;
    channel_options.spool_path = std::string("/tmp/hpm_factory_") +
                                 net::transport_name(transport) + ".bin";
    net::ChannelPair pair = net::make_channel_pair(transport, channel_options);
    ASSERT_NE(pair.source, nullptr);
    ASSERT_NE(pair.destination, nullptr);
    EXPECT_EQ(pair.duplex(), transport != Transport::File);
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    net::send_message(*pair.source, net::MsgType::State, payload);
    const net::Message msg = net::recv_message(*pair.destination);
    EXPECT_EQ(msg.type, net::MsgType::State);
    EXPECT_EQ(msg.payload, payload);
  }
}

}  // namespace
}  // namespace hpm::mig
