// Fault-tolerance matrix: every injected fault kind crossed with every
// transport must end in one of exactly two outcomes — the migration
// succeeds within the retry budget, or the source abandons it and finishes
// the computation locally. Never a hang (each attempt is deadline-bounded)
// and never a lost workload (the result always matches a no-migration run).
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <string>

#include "apps/bitonic.hpp"
#include "mig/coordinator.hpp"

namespace hpm {
namespace {

bool file_exists(const std::string& p) {
  struct stat st{};
  return ::stat(p.c_str(), &st) == 0;
}

const char* short_transport_name(mig::Transport t) {
  switch (t) {
    case mig::Transport::Memory: return "mem";
    case mig::Transport::Socket: return "sock";
    case mig::Transport::File: return "file";
  }
  return "?";
}

/// Bitonic sort migrated mid-recursion; result.ok() checks the final
/// sorted output, i.e. "identical to a no-migration run".
mig::MigrationReport run_bitonic(mig::RunOptions& options, apps::BitonicResult& result) {
  options.register_types = apps::bitonic_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::bitonic_program(ctx, 4, 5, &result);
  };
  options.migrate_at_poll = 20;
  return mig::run_migration(options);
}

struct FaultCase {
  net::FaultKind kind;
  mig::Transport transport;
};

std::string case_name(const ::testing::TestParamInfo<FaultCase>& info) {
  return std::string(net::fault_kind_name(info.param.kind)) + "_" +
         short_transport_name(info.param.transport);
}

class FaultMatrix : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultMatrix, OneFaultIsAbsorbedByRetry) {
  const FaultCase fc = GetParam();
  apps::BitonicResult result;
  mig::RunOptions options;
  options.transport = fc.transport;
  options.spool_path = std::string("/tmp/hpm_fault_spool_") +
                       net::fault_kind_name(fc.kind) + ".bin";
  options.io_timeout_seconds = 0.25;
  options.retry_backoff_seconds = 0.005;
  options.fault_plan.kind = fc.kind;
  options.fault_plan.offset = 64;  // inside the State frame payload
  options.fault_plan.length = 4;
  options.fault_plan.stall_seconds = 0.6;  // > io_timeout: the peer's deadline fires
  options.fault_plan.max_firings = 1;      // attempt 1 faulted, attempt 2 clean
  const mig::MigrationReport report = run_bitonic(options, result);
  EXPECT_TRUE(result.ok()) << "workload result must survive the fault";
  EXPECT_EQ(report.outcome, mig::MigrationOutcome::Migrated);
  EXPECT_TRUE(report.migrated);
  EXPECT_EQ(report.attempts, 2) << "attempt 1 absorbs the fault, attempt 2 lands";
  ASSERT_EQ(report.failure_causes.size(), 1u);
  EXPECT_NE(report.failure_causes[0].find("attempt 1"), std::string::npos)
      << report.failure_causes[0];
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsAllTransports, FaultMatrix,
    ::testing::Values(
        FaultCase{net::FaultKind::Truncate, mig::Transport::Memory},
        FaultCase{net::FaultKind::Truncate, mig::Transport::Socket},
        FaultCase{net::FaultKind::Truncate, mig::Transport::File},
        FaultCase{net::FaultKind::Corrupt, mig::Transport::Memory},
        FaultCase{net::FaultKind::Corrupt, mig::Transport::Socket},
        FaultCase{net::FaultKind::Corrupt, mig::Transport::File},
        FaultCase{net::FaultKind::Stall, mig::Transport::Memory},
        FaultCase{net::FaultKind::Stall, mig::Transport::Socket},
        FaultCase{net::FaultKind::Stall, mig::Transport::File},
        FaultCase{net::FaultKind::Disconnect, mig::Transport::Memory},
        FaultCase{net::FaultKind::Disconnect, mig::Transport::Socket},
        FaultCase{net::FaultKind::Disconnect, mig::Transport::File}),
    case_name);

class PersistentFault : public ::testing::TestWithParam<mig::Transport> {};

TEST_P(PersistentFault, DegradesToLocalCompletion) {
  // The fault never clears: every attempt fails, the retry budget runs
  // out, and the source must finish the computation locally instead of
  // losing it.
  apps::BitonicResult result;
  mig::RunOptions options;
  options.transport = GetParam();
  options.spool_path = "/tmp/hpm_fault_spool_persistent.bin";
  options.io_timeout_seconds = 0.25;
  options.max_retries = 2;
  options.retry_backoff_seconds = 0.005;
  options.fault_plan.kind = net::FaultKind::Corrupt;
  options.fault_plan.offset = 64;
  options.fault_plan.max_firings = 1000;  // outlives any retry budget
  const mig::MigrationReport report = run_bitonic(options, result);
  EXPECT_TRUE(result.ok()) << "local continuation must produce the no-migration result";
  EXPECT_EQ(report.outcome, mig::MigrationOutcome::AbortedContinuedLocally);
  EXPECT_FALSE(report.migrated);
  EXPECT_EQ(report.attempts, 3);  // 1 + max_retries
  EXPECT_EQ(report.failure_causes.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Transports, PersistentFault,
                         ::testing::Values(mig::Transport::Memory, mig::Transport::Socket,
                                           mig::Transport::File),
                         [](const ::testing::TestParamInfo<mig::Transport>& info) {
                           return short_transport_name(info.param);
                         });

TEST(FaultInjection, CorruptedStateFrameIsNackedAndRetransmitted) {
  // The acceptance path for the CRC trailer: a damaged State frame must be
  // detected, nacked, and retransmitted — visible as a second attempt —
  // and never silently restored into the destination.
  apps::BitonicResult result;
  mig::RunOptions options;
  options.io_timeout_seconds = 1.0;
  options.retry_backoff_seconds = 0.001;
  options.fault_plan.kind = net::FaultKind::Corrupt;
  options.fault_plan.offset = 100;
  options.fault_plan.length = 8;
  const mig::MigrationReport report = run_bitonic(options, result);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(report.outcome, mig::MigrationOutcome::Migrated);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.failure_causes.size(), 1u);
  EXPECT_NE(report.failure_causes[0].find("Nack"), std::string::npos)
      << report.failure_causes[0];
  EXPECT_NE(report.failure_causes[0].find("CRC"), std::string::npos)
      << report.failure_causes[0];
}

TEST(FaultInjection, SeededRandomPlansNeverLoseTheWorkload) {
  // Property sweep: whatever a seeded random plan throws at the protocol,
  // the run terminates in bounded time with the correct result.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    apps::BitonicResult result;
    mig::RunOptions options;
    options.io_timeout_seconds = 0.25;
    options.retry_backoff_seconds = 0.005;
    options.fault_plan = net::FaultPlan::random(seed);
    options.fault_plan.stall_seconds = 0.4;  // keep the sweep fast but past the deadline
    const mig::MigrationReport report = run_bitonic(options, result);
    EXPECT_TRUE(result.ok()) << "seed " << seed;
    EXPECT_NE(report.outcome, mig::MigrationOutcome::CompletedLocally) << "seed " << seed;
    EXPECT_GE(report.attempts, 1) << "seed " << seed;
  }
}

TEST(FaultInjection, NoTimeoutConfiguredStillBoundedUnderFaults) {
  // io_timeout_seconds = 0 normally means "block without bound"; with a
  // fault plan enabled the coordinator must impose its safety deadline so
  // an injected truncation cannot hang the run.
  apps::BitonicResult result;
  mig::RunOptions options;
  options.retry_backoff_seconds = 0.001;
  options.fault_plan.kind = net::FaultKind::Truncate;
  options.fault_plan.offset = 32;
  const mig::MigrationReport report = run_bitonic(options, result);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(report.outcome, mig::MigrationOutcome::Migrated);
  EXPECT_EQ(report.attempts, 2);
}

TEST(FaultInjection, BackToBackFileMigrationsLeaveNoSpoolBehind) {
  const std::string spool = "/tmp/hpm_fault_spool_reuse.bin";
  for (int round = 0; round < 2; ++round) {
    apps::BitonicResult result;
    mig::RunOptions options;
    options.transport = mig::Transport::File;
    options.spool_path = spool;
    const mig::MigrationReport report = run_bitonic(options, result);
    EXPECT_TRUE(result.ok()) << "round " << round;
    EXPECT_EQ(report.outcome, mig::MigrationOutcome::Migrated) << "round " << round;
    EXPECT_FALSE(file_exists(spool)) << "spool leaked after round " << round;
    EXPECT_FALSE(file_exists(spool + ".done")) << "marker leaked after round " << round;
  }
}

TEST(FaultInjection, AbortedFileMigrationCleansItsSpool) {
  const std::string spool = "/tmp/hpm_fault_spool_aborted.bin";
  apps::BitonicResult result;
  mig::RunOptions options;
  options.transport = mig::Transport::File;
  options.spool_path = spool;
  options.io_timeout_seconds = 0.25;
  options.max_retries = 1;
  options.retry_backoff_seconds = 0.001;
  options.fault_plan.kind = net::FaultKind::Truncate;
  options.fault_plan.offset = 16;
  options.fault_plan.max_firings = 1000;
  const mig::MigrationReport report = run_bitonic(options, result);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(report.outcome, mig::MigrationOutcome::AbortedContinuedLocally);
  EXPECT_FALSE(file_exists(spool));
  EXPECT_FALSE(file_exists(spool + ".done"));
}

}  // namespace
}  // namespace hpm
