// Concurrent multiplexed migrations: sched::migrate_many drives N full
// transactional sessions over ONE shared channel pair, and every session
// must be observationally identical to the same migration run alone on an
// exclusive channel — same workload result, same logical stream — even
// while one of the sessions is killed mid-stream and resumes from its
// acked watermark as the others proceed.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "apps/bitonic.hpp"
#include "mig/coordinator.hpp"
#include "sched/cluster.hpp"

namespace hpm::sched {
namespace {

using mig::MigrationOutcome;
using mig::MigrationReport;
using mig::RunOptions;
using net::Transport;

/// Seeds chosen per session so the four workloads carry distinct state.
constexpr int kSeeds[] = {9, 11, 13, 17};
constexpr int kSessions = 4;

RunOptions bitonic_options(Transport transport, int seed,
                           apps::BitonicResult* result) {
  RunOptions options;
  options.transport = transport;
  // ~47 chunks of the ~6 KB bitonic stream: SeveringPort tickets are spent
  // on sends AND recvs, so the cut point drifts with ack timing — far more
  // chunks than tickets pins every scripted cut mid-stream, never into the
  // prepare phase.
  options.pipeline = true;
  options.chunk_bytes = 128;
  options.register_types = apps::bitonic_register_types;
  options.program = [result, seed](mig::MigContext& ctx) {
    apps::bitonic_program(ctx, 6, static_cast<std::uint64_t>(seed), result);
  };
  options.migrate_at_poll = 50;
  return options;
}

class MigrateManyTransport : public ::testing::TestWithParam<Transport> {};

TEST_P(MigrateManyTransport, FourConcurrentSessionsMatchFourSerialRuns) {
  // --- baseline: the same four migrations, each alone on its own channel.
  std::vector<apps::BitonicResult> serial_results(kSessions);
  std::vector<MigrationReport> serial_reports;
  for (int i = 0; i < kSessions; ++i) {
    RunOptions options = bitonic_options(GetParam(), kSeeds[i], &serial_results[i]);
    serial_reports.push_back(mig::run_migration(options));
    ASSERT_EQ(serial_reports[i].outcome, MigrationOutcome::Migrated);
    ASSERT_TRUE(serial_results[i].ok());
  }

  // --- four sessions multiplexed over one shared channel; session 2 is
  // severed mid-stream on its first epoch and must resume while the other
  // three proceed untouched.
  const std::string journal_dir =
      std::string("/tmp/hpm_migrate_many_") + net::transport_name(GetParam());
  std::filesystem::remove_all(journal_dir);  // stale journals from prior runs
  std::vector<apps::BitonicResult> routed_results(kSessions);
  std::vector<SessionJob> jobs(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    jobs[i].options = bitonic_options(GetParam(), kSeeds[i], &routed_results[i]);
    jobs[i].options.journal_dir = journal_dir;
  }
  jobs[1].sever_after_frames = 16;

  const std::vector<SessionOutcome> outcomes = migrate_many(jobs, GetParam());
  ASSERT_EQ(outcomes.size(), static_cast<std::size_t>(kSessions));

  for (int i = 0; i < kSessions; ++i) {
    SCOPED_TRACE("session " + std::to_string(outcomes[i].session_id));
    const MigrationReport& r = outcomes[i].report;
    EXPECT_EQ(outcomes[i].session_id, static_cast<std::uint32_t>(i + 1));
    EXPECT_EQ(r.outcome, MigrationOutcome::Migrated);
    ASSERT_TRUE(routed_results[i].ok());
    // Bit-identical to the exclusive-channel run: same final workload
    // result from the same logical stream.
    EXPECT_EQ(routed_results[i].sum_after, serial_results[i].sum_after);
    EXPECT_EQ(r.stream_bytes, serial_reports[i].stream_bytes);
    // Per-session telemetry is labeled with the session id, so concurrent
    // sessions never share a counter.
    const std::string prefix =
        "mig.session." + std::to_string(outcomes[i].session_id) + ".";
    EXPECT_GT(r.metrics.counter(prefix + "source.frames"), 0u);
    EXPECT_GT(r.metrics.counter(prefix + "destination.frames"), 0u);
    // Each transaction journals under its own txn-keyed pair in the
    // SHARED journal directory, and recovers independently.
    ASSERT_NE(r.txn_id, 0u);
    const mig::RecoveryVerdict verdict =
        mig::Coordinator::recover(journal_dir, r.txn_id);
    EXPECT_EQ(verdict.owner, mig::TxnOwner::Destination);
    EXPECT_TRUE(verdict.completed);
  }

  // The severed session really did die and resume mid-stream...
  EXPECT_GE(outcomes[1].report.resumed_from_seq, 0);
  EXPECT_GE(outcomes[1].report.attempts, 2);
  // ...while the other sessions never had to.
  EXPECT_EQ(outcomes[0].report.resumed_from_seq, -1);
  EXPECT_EQ(outcomes[2].report.resumed_from_seq, -1);
  EXPECT_EQ(outcomes[3].report.resumed_from_seq, -1);

  // All four transactions are visible in the shared journal directory.
  EXPECT_EQ(mig::list_journaled_txns(journal_dir).size(),
            static_cast<std::size_t>(kSessions));
}

INSTANTIATE_TEST_SUITE_P(MemAndSocket, MigrateManyTransport,
                         ::testing::Values(Transport::Memory, Transport::Socket),
                         [](const ::testing::TestParamInfo<Transport>& p) {
                           return std::string(net::transport_name(p.param));
                         });

TEST(MigrateMany, SingleRoutedSessionMigrates) {
  // Degenerate multiplexing: one session alone on the shared channel
  // still speaks the tagged-frame protocol end to end.
  apps::BitonicResult result;
  std::vector<SessionJob> jobs(1);
  jobs[0].options = bitonic_options(Transport::Memory, 9, &result);
  const std::vector<SessionOutcome> outcomes = migrate_many(jobs, Transport::Memory);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].report.outcome, MigrationOutcome::Migrated);
  EXPECT_TRUE(result.ok());
}

TEST(MigrateMany, SingleRoutedSessionResumesAfterSeverance) {
  // One session, severed mid-stream: the resume epoch machinery must work
  // before concurrency is added on top of it.
  apps::BitonicResult result;
  std::vector<SessionJob> jobs(1);
  jobs[0].options = bitonic_options(Transport::Memory, 9, &result);
  jobs[0].sever_after_frames = 16;
  const std::vector<SessionOutcome> outcomes = migrate_many(jobs, Transport::Memory);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].report.outcome, MigrationOutcome::Migrated);
  EXPECT_GE(outcomes[0].report.resumed_from_seq, 0);
  EXPECT_TRUE(result.ok());
}

TEST(MigrateMany, FileTransportIsRejected) {
  EXPECT_THROW(migrate_many({SessionJob{}}, Transport::File), MigrationError);
}

TEST(MigrateMany, EmptyJobListIsANoOp) {
  EXPECT_TRUE(migrate_many({}, Transport::Memory).empty());
}

}  // namespace
}  // namespace hpm::sched
