// Coordinator protocol behavior: error propagation, async requests,
// option validation, and report consistency.
#include <gtest/gtest.h>

#include <atomic>

#include "apps/test_pointer.hpp"
#include "mig/coordinator.hpp"

namespace hpm::mig {
namespace {

void simple_program(MigContext& ctx, int n, std::atomic<int>* completions) {
  HPM_FUNCTION(ctx);
  int i;
  HPM_LOCAL(ctx, i);
  HPM_LOCAL(ctx, n);
  HPM_BODY(ctx);
  for (i = 0; i < n; ++i) {
    HPM_POLL(ctx, 1);
  }
  completions->fetch_add(1);
  HPM_BODY_END(ctx);
}

TEST(Coordinator, MissingCallbacksAreRejected) {
  RunOptions options;
  EXPECT_THROW(run_migration(options), MigrationError);
  options.register_types = [](ti::TypeTable&) {};
  EXPECT_THROW(run_migration(options), MigrationError);
}

TEST(Coordinator, NoMigrationShutdownIsClean) {
  std::atomic<int> completions{0};
  RunOptions options;
  options.register_types = [](ti::TypeTable&) {};
  options.program = [&completions](MigContext& ctx) {
    simple_program(ctx, 10, &completions);
  };
  const MigrationReport report = run_migration(options);
  EXPECT_FALSE(report.migrated);
  EXPECT_EQ(report.outcome, MigrationOutcome::CompletedLocally);
  EXPECT_EQ(report.attempts, 0);  // no transfer was ever started
  EXPECT_EQ(completions.load(), 1);  // only the source ran
  EXPECT_EQ(report.source_polls, 10u);
  EXPECT_EQ(report.stream_bytes, 0u);
}

TEST(Coordinator, MigrationRunsDestinationExactlyOnce) {
  std::atomic<int> completions{0};
  RunOptions options;
  options.register_types = [](ti::TypeTable&) {};
  options.program = [&completions](MigContext& ctx) {
    simple_program(ctx, 10, &completions);
  };
  options.migrate_at_poll = 5;
  const MigrationReport report = run_migration(options);
  EXPECT_TRUE(report.migrated);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(report.attempts, 1);  // a healthy channel needs exactly one
  EXPECT_TRUE(report.failure_causes.empty());
  EXPECT_EQ(completions.load(), 1);  // source unwound; destination finished
  EXPECT_GT(report.stream_bytes, 0u);
  EXPECT_GE(report.tx_seconds, 0.0);
}

TEST(Coordinator, DestinationFailureSurfacesToTheCaller) {
  // Source and destination run DIFFERENT programs (version skew): every
  // transfer attempt fails the same way, and the local continuation runs
  // the same wrong binary — so the failure must still propagate out of
  // run_migration instead of hanging or being swallowed.
  std::atomic<int> completions{0};
  std::atomic<bool> first{true};
  RunOptions options;
  options.register_types = [](ti::TypeTable&) {};
  options.program = [&completions, &first](MigContext& ctx) {
    const bool is_source = first.exchange(false);
    if (is_source) {
      simple_program(ctx, 10, &completions);
    } else {
      // "Wrong binary" on the destination: different frame shape.
      HPM_FUNCTION(ctx);
      double z;
      HPM_LOCAL(ctx, z);
      HPM_BODY(ctx);
      z = 0;
      HPM_POLL(ctx, 1);
      HPM_BODY_END(ctx);
    }
  };
  options.migrate_at_poll = 3;
  EXPECT_THROW(run_migration(options), Error);
}

TEST(Coordinator, SourceProgramExceptionPropagates) {
  RunOptions options;
  options.register_types = [](ti::TypeTable&) {};
  options.program = [](MigContext&) { throw std::runtime_error("app bug"); };
  EXPECT_THROW(run_migration(options), std::runtime_error);
}

TEST(Coordinator, AsyncRequestAfterCompletionIsHarmless) {
  std::atomic<int> completions{0};
  RunOptions options;
  options.register_types = [](ti::TypeTable&) {};
  options.program = [&completions](MigContext& ctx) {
    simple_program(ctx, 3, &completions);
  };
  options.request_after_seconds = 5.0;  // program finishes long before
  const MigrationReport report = run_migration(options);
  EXPECT_FALSE(report.migrated);
  EXPECT_EQ(completions.load(), 1);
}

TEST(Coordinator, AsyncRequestMidRunMigrates) {
  std::atomic<int> completions{0};
  RunOptions options;
  options.register_types = [](ti::TypeTable&) {};
  options.program = [&completions](MigContext& ctx) {
    // Enough polls that the 1 ms timer lands mid-run.
    simple_program(ctx, 50'000'000, &completions);
  };
  options.request_after_seconds = 0.001;
  const MigrationReport report = run_migration(options);
  EXPECT_TRUE(report.migrated);
  EXPECT_EQ(completions.load(), 1);
}

TEST(Coordinator, ReportBlockCountsBalance) {
  apps::TestPointerResult result;
  RunOptions options;
  options.register_types = apps::test_pointer_register_types;
  options.program = [&result](MigContext& ctx) {
    apps::test_pointer_program(ctx, 5, &result);
  };
  options.migrate_at_poll = 1;
  const MigrationReport report = run_migration(options);
  EXPECT_TRUE(result.ok());
  const obs::MetricsSnapshot& m = report.metrics;
  EXPECT_EQ(m.counter("msrm.collect.blocks_saved"),
            m.counter("msrm.restore.blocks_created") + m.counter("msrm.restore.blocks_bound"));
  EXPECT_EQ(m.counter("msrm.collect.refs_saved"), m.counter("msrm.restore.refs_resolved"));
  EXPECT_EQ(m.counter("msrm.collect.nulls_saved"), m.counter("msrm.restore.nulls_restored"));
  EXPECT_EQ(m.counter("msrm.collect.prim_leaves"), m.counter("msrm.restore.prim_leaves"));
  EXPECT_EQ(m.counter("msrm.collect.ptr_leaves"), m.counter("msrm.restore.ptr_leaves"));
  EXPECT_EQ(report.source_arch, "native");
}

}  // namespace
}  // namespace hpm::mig
