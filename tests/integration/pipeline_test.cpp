// Pipelined chunked transfer, end to end: the overlapped path must be
// observationally identical to the serial one — same workload result,
// same logical stream on the wire — while actually chunking (telemetry
// proves it) and while keeping the serial path's failure semantics:
// clean shutdown when no migration triggers, workload exceptions
// propagate, File transport quietly stays serial.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "apps/bitonic.hpp"
#include "mig/coordinator.hpp"

namespace hpm::mig {
namespace {

/// Bitonic sort migrated mid-recursion; result.ok() checks the final
/// sorted output, i.e. "identical to a no-migration run".
MigrationReport run_bitonic(RunOptions& options, apps::BitonicResult& result) {
  options.register_types = apps::bitonic_register_types;
  options.program = [&result](MigContext& ctx) {
    apps::bitonic_program(ctx, 6, 9, &result);
  };
  options.migrate_at_poll = 50;
  return run_migration(options);
}

class PipelineTransport : public ::testing::TestWithParam<Transport> {};

TEST_P(PipelineTransport, PipelinedRunMatchesTheSerialRun) {
  apps::BitonicResult serial_result;
  RunOptions serial;
  serial.transport = GetParam();
  const MigrationReport s = run_bitonic(serial, serial_result);
  ASSERT_EQ(s.outcome, MigrationOutcome::Migrated);
  ASSERT_TRUE(serial_result.ok());
  EXPECT_EQ(s.overlap_ratio, 0.0) << "serial phases are strictly sequential";

  apps::BitonicResult piped_result;
  RunOptions piped;
  piped.transport = GetParam();
  piped.pipeline = true;
  piped.chunk_bytes = 2048;  // small enough that the state spans many chunks
  const MigrationReport p = run_bitonic(piped, piped_result);
  EXPECT_EQ(p.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(p.attempts, 1);
  EXPECT_TRUE(p.failure_causes.empty());
  ASSERT_TRUE(piped_result.ok());
  EXPECT_EQ(piped_result.sum_after, serial_result.sum_after);
  // Chunking must not change what goes over the wire, only how.
  EXPECT_EQ(p.stream_bytes, s.stream_bytes);
  EXPECT_GT(p.metrics.counter("mig.pipeline.chunks"), 1u);
  EXPECT_GE(p.overlap_ratio, 0.0);
  EXPECT_LE(p.overlap_ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(MemAndSocket, PipelineTransport,
                         ::testing::Values(Transport::Memory, Transport::Socket),
                         [](const ::testing::TestParamInfo<Transport>& info) {
                           return std::string(net::transport_name(info.param));
                         });

TEST(Pipeline, NoMigrationShutsDownCleanly) {
  // The destination comes up before the program runs, so a run that never
  // triggers must tear the rendezvous down without counting an attempt.
  std::atomic<int> completions{0};
  RunOptions options;
  options.pipeline = true;
  options.register_types = apps::bitonic_register_types;
  apps::BitonicResult result;
  options.program = [&result, &completions](MigContext& ctx) {
    apps::bitonic_program(ctx, 4, 9, &result);
    completions.fetch_add(1);
  };
  options.migrate_at_poll = 0;  // never migrate
  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::CompletedLocally);
  EXPECT_FALSE(report.migrated);
  EXPECT_EQ(report.attempts, 0);
  EXPECT_EQ(completions.load(), 1) << "only the source ran the program";
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(report.metrics.counter("mig.pipeline.chunks"), 0u);
}

TEST(Pipeline, WorkloadExceptionPropagatesLikeTheSerialPath) {
  // A bug in the user's program is not a transport fault: it must surface
  // to the caller, not be retried or degraded into "completed locally".
  RunOptions options;
  options.pipeline = true;
  options.register_types = [](ti::TypeTable&) {};
  options.program = [](MigContext&) { throw std::runtime_error("workload bug"); };
  EXPECT_THROW(run_migration(options), std::runtime_error);
}

TEST(Pipeline, FileTransportStaysSerial) {
  // File has no duplex rendezvous; pipeline=true must quietly take the
  // serial path and still migrate correctly.
  apps::BitonicResult result;
  RunOptions options;
  options.transport = Transport::File;
  options.spool_path = "/tmp/hpm_pipeline_spool.bin";
  options.pipeline = true;
  const MigrationReport report = run_bitonic(options, result);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(report.overlap_ratio, 0.0);
  EXPECT_EQ(report.metrics.counter("mig.pipeline.chunks"), 0u);
}

TEST(Pipeline, SingleChunkStateStillRoundTrips) {
  // chunk_bytes far above the stream size: the degenerate one-chunk
  // pipeline (StateBegin, one StateChunk, StateEnd) must behave.
  apps::BitonicResult result;
  RunOptions options;
  options.pipeline = true;
  options.chunk_bytes = 1u << 20;
  const MigrationReport report = run_bitonic(options, result);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(report.metrics.counter("mig.pipeline.chunks"), 1u);
}

}  // namespace
}  // namespace hpm::mig
