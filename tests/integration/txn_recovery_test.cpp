// The transactional handoff, attacked at every phase boundary.
//
// Three suites:
//  - TxnRecovery: the crash matrix. An injected process death (KilledError)
//    at each protocol state — mid-chunk-stream, pre-Prepare, post-Commit,
//    dest post-Prepared, dest post-Committed — after which exactly one
//    endpoint owns the workload and Coordinator::recover() reaches the
//    same verdict from the journals alone.
//  - Resume: a mid-stream disconnect resumes from the acked chunk
//    watermark; the net.* byte counters prove only the tail was
//    retransmitted, and the restored state is identical to a clean run.
//  - Digest: a single-byte corruption of the canonical stream that passes
//    the frame CRC (CorruptMasked) is caught by the end-to-end digest
//    before the destination may vote, then degrades per the PR-1 failure
//    model (clean serial retry).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "apps/bitonic.hpp"
#include "mig/coordinator.hpp"
#include "mig/journal.hpp"

namespace hpm::mig {
namespace {

constexpr std::uint64_t kTxn = 77;

/// Wire framing constants of the message layer: type(1)+len(4) header,
/// crc(4) trailer; StateBegin payload is chunk_bytes(4)+txn(8)+incarnation(4).
constexpr std::uint64_t kFrameOverhead = 9;
constexpr std::uint64_t kStateBeginWire = kFrameOverhead + 16;

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hpm_txn_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Transactional pipelined bitonic run with the crash-matrix shape:
  /// one chunk, no watermark acks, no serial fallback — so every source
  /// frame index names one protocol state (0 StateBegin, 1 StateChunk,
  /// 2 StateEnd, 3 Prepare, 4 Commit) and every destination frame index
  /// too (0 Hello, 1 PrepareAck, 2 final Ack).
  RunOptions matrix_options(apps::BitonicResult& result) {
    RunOptions options;
    options.register_types = apps::bitonic_register_types;
    options.program = [&result](MigContext& ctx) {
      apps::bitonic_program(ctx, 6, 9, &result);
    };
    options.migrate_at_poll = 50;
    options.pipeline = true;
    options.chunk_bytes = 1u << 20;  // the whole stream in one chunk
    options.ack_every_chunks = 0;    // no StateAck frames
    options.max_retries = 0;         // the matrix studies the crash, not retries
    options.journal_dir = dir_.string();
    options.txn_id = kTxn;
    return options;
  }

  RecoveryVerdict recover() const { return Coordinator::recover(dir_.string()); }

  std::filesystem::path dir_;
};

using TxnRecovery = TxnTest;

TEST_F(TxnRecovery, SourceCrashMidChunkStream) {
  apps::BitonicResult result;
  RunOptions options = matrix_options(result);
  options.fault_plan = net::FaultPlan::kill_after(1);  // dies sending the chunk

  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::SourceCrashed);
  EXPECT_FALSE(report.migrated);
  EXPECT_FALSE(result.done) << "neither endpoint may have run the workload";
  EXPECT_EQ(report.txn_id, kTxn);

  const RecoveryVerdict v = recover();
  EXPECT_EQ(v.owner, TxnOwner::Source) << v.reason;
  EXPECT_EQ(v.txn_id, kTxn);
  EXPECT_FALSE(v.completed);
}

TEST_F(TxnRecovery, SourceCrashBeforePrepare) {
  apps::BitonicResult result;
  RunOptions options = matrix_options(result);
  options.fault_plan = net::FaultPlan::kill_after(3);  // dies sending Prepare

  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::SourceCrashed);
  EXPECT_FALSE(report.migrated) << "the destination restored but may not commit";
  EXPECT_FALSE(result.done);

  const RecoveryVerdict v = recover();
  EXPECT_EQ(v.owner, TxnOwner::Source) << v.reason;
  EXPECT_FALSE(v.completed);
}

TEST_F(TxnRecovery, SourceCrashAfterCommitRecord) {
  // The Commit record is fsync'd before the Commit frame is sent; the
  // crash eats the frame. The in-doubt destination must find the record
  // in the source's journal and finish the workload.
  apps::BitonicResult result;
  RunOptions options = matrix_options(result);
  options.fault_plan = net::FaultPlan::kill_after(4);  // dies sending Commit

  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::SourceCrashed);
  EXPECT_TRUE(report.migrated) << "the destination recovered the verdict and finished";
  EXPECT_TRUE(result.ok()) << "the workload ran exactly once, on the destination";
  EXPECT_GE(report.metrics.counter("mig.txn.indoubt_recoveries"), 1u);

  const RecoveryVerdict v = recover();
  EXPECT_EQ(v.owner, TxnOwner::Destination) << v.reason;
}

TEST_F(TxnRecovery, DestinationCrashAfterPrepared) {
  // The destination voted yes and died sending PrepareAck. The source
  // journals Abort and — no retry budget here — degrades to local
  // completion: it still owns the process.
  apps::BitonicResult result;
  RunOptions options = matrix_options(result);
  options.dest_fault_plan = net::FaultPlan::kill_after(1);

  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::AbortedContinuedLocally);
  EXPECT_FALSE(report.migrated);
  EXPECT_TRUE(result.ok()) << "the source finished the workload locally";

  const RecoveryVerdict v = recover();
  EXPECT_EQ(v.owner, TxnOwner::Source) << v.reason;
}

TEST_F(TxnRecovery, DestinationCrashAfterCommitted) {
  // Commit went through, Committed is journaled, the workload tail ran —
  // then the confirmation Ack died with the destination. The source must
  // NOT fall back to local completion.
  apps::BitonicResult result;
  RunOptions options = matrix_options(result);
  options.dest_fault_plan = net::FaultPlan::kill_after(2);

  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::CommittedUnconfirmed);
  EXPECT_TRUE(report.migrated);
  EXPECT_TRUE(result.ok()) << "the workload ran exactly once, on the destination";

  const RecoveryVerdict v = recover();
  EXPECT_EQ(v.owner, TxnOwner::Destination) << v.reason;
  EXPECT_FALSE(v.completed) << "Done was never confirmed to the source";
}

TEST_F(TxnRecovery, CleanRunClosesTheTransaction) {
  apps::BitonicResult result;
  RunOptions options = matrix_options(result);

  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(report.txn_id, kTxn);
  EXPECT_GE(report.metrics.counter("mig.txn.begins"), 1u);
  EXPECT_GE(report.metrics.counter("mig.txn.prepares"), 1u);
  EXPECT_GE(report.metrics.counter("mig.txn.commits"), 2u) << "both sides commit";
  EXPECT_EQ(report.metrics.counter("mig.txn.aborts"), 0u);

  const RecoveryVerdict v = recover();
  EXPECT_EQ(v.owner, TxnOwner::Destination);
  EXPECT_TRUE(v.completed) << "Done recorded: nothing to recover";
}

// --- resumable transfer ----------------------------------------------------

/// Small-chunk pipelined run used by the resume and digest suites.
RunOptions streaming_options(apps::BitonicResult& result) {
  RunOptions options;
  options.register_types = apps::bitonic_register_types;
  options.program = [&result](MigContext& ctx) {
    apps::bitonic_program(ctx, 6, 9, &result);
  };
  options.migrate_at_poll = 50;
  options.pipeline = true;
  options.chunk_bytes = 512;
  options.ack_every_chunks = 1;  // densest watermark
  return options;
}

constexpr std::uint64_t kChunkWire = 512 + 13;  // frame overhead + seq

TEST(Resume, MidStreamDisconnectResumesFromTheWatermark) {
  // Clean run: baseline for wire bytes and the workload fingerprint.
  apps::BitonicResult clean_result;
  RunOptions clean = streaming_options(clean_result);
  const MigrationReport c = run_migration(clean);
  ASSERT_EQ(c.outcome, MigrationOutcome::Migrated);
  ASSERT_TRUE(clean_result.ok());
  const std::uint64_t stream = c.stream_bytes;
  const std::uint64_t chunks = (stream + 511) / 512;
  ASSERT_GT(chunks, 4u) << "the stream must span enough chunks to resume inside";
  const std::uint64_t clean_wire = c.metrics.counter("net.frames.bytes_sent");

  // Faulty run: the link dies mid-stream, around chunk `chunks/2`.
  apps::BitonicResult result;
  RunOptions options = streaming_options(result);
  options.fault_plan.kind = net::FaultKind::Disconnect;
  options.fault_plan.offset = kStateBeginWire + (chunks / 2) * kChunkWire + 100;

  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(report.attempts, 2) << "one failure, one resume";
  ASSERT_EQ(report.failure_causes.size(), 1u);
  EXPECT_NE(report.failure_causes[0].find("attempt 1"), std::string::npos);
  EXPECT_GT(report.resumed_from_seq, 0) << "the resume must start past chunk 0";
  EXPECT_LT(report.resumed_from_seq, static_cast<std::int64_t>(chunks));
  EXPECT_GE(report.metrics.counter("mig.resume.attempts"), 1u);
  EXPECT_GE(report.metrics.counter("mig.resume.chunks_skipped"),
            static_cast<std::uint64_t>(report.resumed_from_seq));

  // Restored state identical to the clean run's.
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.sum_after, clean_result.sum_after);
  EXPECT_EQ(report.stream_bytes, stream);

  // The wire carried the stream ONCE plus only the resumed tail — not a
  // full retransmit. Acks, ResumeHello, and the second commit exchange
  // are small against 0.75x the stream.
  const std::uint64_t faulty_wire = report.metrics.counter("net.frames.bytes_sent");
  EXPECT_LT(faulty_wire, clean_wire + (stream * 3) / 4)
      << "a resume must not retransmit the acked prefix";
}

TEST(Resume, WatermarkSurvivesTwoDisconnects) {
  // Two mid-stream failures, two resumes: the watermark only moves
  // forward, so the third attempt still only carries the remaining tail.
  apps::BitonicResult probe_result;
  RunOptions probe = streaming_options(probe_result);
  const MigrationReport p = run_migration(probe);
  ASSERT_EQ(p.outcome, MigrationOutcome::Migrated);
  const std::uint64_t chunks = (p.stream_bytes + 511) / 512;
  ASSERT_GT(chunks, 6u);

  apps::BitonicResult result;
  RunOptions options = streaming_options(result);
  options.max_retries = 3;
  options.fault_plan.kind = net::FaultKind::Disconnect;
  options.fault_plan.offset = kStateBeginWire + (chunks / 3) * kChunkWire + 50;
  options.fault_plan.max_firings = 2;  // attempt 2's resume dies too

  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(report.failure_causes.size(), 2u);
  EXPECT_GT(report.resumed_from_seq, 0);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.sum_after, probe_result.sum_after);
  EXPECT_GE(report.metrics.counter("mig.resume.attempts"), 2u);
}

// --- end-to-end digest ------------------------------------------------------

TEST(Digest, MaskedCorruptionIsCaughtBeforeCommit) {
  // Probe run: learn the stream geometry so the corruption can be aimed
  // at the last bytes of the canonical stream — content the incremental
  // decoder never interprets, so ONLY the end-to-end digest can object.
  apps::BitonicResult probe_result;
  RunOptions probe = streaming_options(probe_result);
  const MigrationReport p = run_migration(probe);
  ASSERT_EQ(p.outcome, MigrationOutcome::Migrated);
  const std::uint64_t stream = p.stream_bytes;
  const std::uint64_t chunks = (stream + 511) / 512;
  const std::uint64_t last_len = stream - (chunks - 1) * 512;
  ASSERT_GT(last_len, 4u);

  apps::BitonicResult result;
  RunOptions options = streaming_options(result);
  options.fault_plan.kind = net::FaultKind::CorruptMasked;
  // Second-to-last byte of the stream, inside the last chunk's payload:
  // wire offset = StateBegin + full chunks + header(5) + seq(4) + index.
  options.fault_plan.offset =
      kStateBeginWire + (chunks - 1) * kChunkWire + 9 + (last_len - 2);

  const MigrationReport report = run_migration(options);
  // Attempt 1: every frame CRC passes, the destination assembles the full
  // stream, restores — and the digest comparison vetoes the handoff
  // before the destination may vote. Attempt 2 degrades to the serial
  // path per the PR-1 failure model and succeeds cleanly.
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.failure_causes.size(), 1u);
  EXPECT_NE(report.failure_causes[0].find("digest"), std::string::npos)
      << "caught by: " << report.failure_causes[0];
  EXPECT_EQ(report.metrics.counter("net.frames.crc_failures"), 0u)
      << "masked corruption must NOT be a frame-CRC catch";
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.sum_after, probe_result.sum_after);
}

TEST(Digest, CleanStreamsCarryTheDigestEndToEnd) {
  apps::BitonicResult result;
  RunOptions options = streaming_options(result);
  options.journal_dir = (std::filesystem::temp_directory_path() /
                         ("hpm_digest_clean_" + std::to_string(::getpid())))
                            .string();
  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_TRUE(result.ok());
  // The journals carry the digest the two ends agreed on.
  std::uint64_t src_digest = 0, dst_digest = 0;
  for (const JournalRecord& r :
       Journal::replay(options.journal_dir + "/" + kSourceJournalName)) {
    if (r.type == JournalRecordType::Commit) src_digest = r.digest;
  }
  for (const JournalRecord& r :
       Journal::replay(options.journal_dir + "/" + kDestJournalName)) {
    if (r.type == JournalRecordType::Committed) dst_digest = r.digest;
  }
  EXPECT_NE(src_digest, 0u);
  EXPECT_EQ(src_digest, dst_digest);
  std::filesystem::remove_all(options.journal_dir);
}

}  // namespace
}  // namespace hpm::mig
