// End-to-end smoke tests: the three paper workloads migrating across the
// coordinator on every transport. These are the "does the whole machine
// turn over" tests; exhaustive per-module coverage lives in the unit
// suites.
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "apps/linpack.hpp"
#include "apps/test_pointer.hpp"
#include "mig/coordinator.hpp"

namespace hpm {
namespace {

TEST(MigrationSmoke, TestPointerRunsToCompletionWithoutMigration) {
  apps::TestPointerResult result;
  mig::RunOptions options;
  options.register_types = apps::test_pointer_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::test_pointer_program(ctx, 7, &result);
  };
  options.migrate_at_poll = 0;
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_FALSE(report.migrated);
  EXPECT_TRUE(result.ok()) << "tree=" << result.tree_ok << " scalar=" << result.scalar_ptr_ok
                           << " arr=" << result.array_ptr_ok << " parr=" << result.ptr_array_ok
                           << " dag=" << result.dag_ok << " cycle=" << result.cycle_ok
                           << " interior=" << result.interior_ok;
}

TEST(MigrationSmoke, TestPointerMigratesAtThePollPoint) {
  apps::TestPointerResult result;
  mig::RunOptions options;
  options.register_types = apps::test_pointer_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::test_pointer_program(ctx, 7, &result);
  };
  options.migrate_at_poll = 1;
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_TRUE(report.migrated);
  EXPECT_GT(report.stream_bytes, 0u);
  EXPECT_TRUE(result.ok()) << "tree=" << result.tree_ok << " scalar=" << result.scalar_ptr_ok
                           << " arr=" << result.array_ptr_ok << " parr=" << result.ptr_array_ok
                           << " dag=" << result.dag_ok << " cycle=" << result.cycle_ok
                           << " interior=" << result.interior_ok;
}

TEST(MigrationSmoke, LinpackMigratesMidFactorization) {
  apps::LinpackResult result;
  mig::RunOptions options;
  options.register_types = apps::linpack_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::linpack_program(ctx, 80, 1, &result);
  };
  options.migrate_at_poll = 40;  // inside dgefa's column loop
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_TRUE(report.migrated);
  EXPECT_TRUE(result.ok()) << "n=" << result.n << " normalized=" << result.normalized;
}

TEST(MigrationSmoke, BitonicMigratesDeepInRecursion) {
  apps::BitonicResult result;
  mig::RunOptions options;
  options.register_types = apps::bitonic_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::bitonic_program(ctx, 6, 99, &result);
  };
  options.migrate_at_poll = 57;  // somewhere inside the sorting network
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_TRUE(report.migrated);
  EXPECT_TRUE(result.ok()) << "sorted=" << result.sorted << " before=" << result.sum_before
                           << " after=" << result.sum_after;
}

TEST(MigrationSmoke, SocketTransportCarriesAMigration) {
  apps::TestPointerResult result;
  mig::RunOptions options;
  options.register_types = apps::test_pointer_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::test_pointer_program(ctx, 3, &result);
  };
  options.migrate_at_poll = 1;
  options.transport = mig::Transport::Socket;
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_TRUE(report.migrated);
  EXPECT_TRUE(result.ok());
}

TEST(MigrationSmoke, FileTransportCarriesAMigration) {
  apps::TestPointerResult result;
  mig::RunOptions options;
  options.register_types = apps::test_pointer_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::test_pointer_program(ctx, 3, &result);
  };
  options.migrate_at_poll = 1;
  options.transport = mig::Transport::File;
  options.spool_path = "/tmp/hpm_smoke_spool.bin";
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_TRUE(report.migrated);
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace hpm
