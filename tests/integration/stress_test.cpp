// Medium-scale end-to-end soak: larger states, real transports, chained
// facilities — the flows a downstream user would actually run, at sizes
// big enough to shake out scaling bugs but bounded for CI.
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "apps/linpack.hpp"
#include "ckpt/checkpoint.hpp"
#include "mig/coordinator.hpp"
#include "msrm/dump.hpp"
#include "sched/live.hpp"

namespace hpm {
namespace {

TEST(Stress, LinpackOverSocketAtMegabyteScale) {
  apps::LinpackResult result;
  mig::RunOptions options;
  options.register_types = apps::linpack_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::linpack_program(ctx, 400, 11, &result);  // ~1.3 MB of live state
  };
  options.migrate_at_poll = 200;
  options.transport = mig::Transport::Socket;
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_TRUE(report.migrated);
  EXPECT_GT(report.stream_bytes, 1'000'000u);
  EXPECT_TRUE(result.ok()) << result.normalized;
}

TEST(Stress, BitonicOverFileWithTensOfThousandsOfBlocks) {
  apps::BitonicResult result;
  mig::RunOptions options;
  options.register_types = apps::bitonic_register_types;
  options.program = [&result](mig::MigContext& ctx) {
    apps::bitonic_program(ctx, 10, 77, &result);  // 2047 nodes, deep recursion
  };
  options.migrate_at_poll = 2500;
  options.transport = mig::Transport::File;
  options.spool_path = "/tmp/hpm_stress_spool.bin";
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_TRUE(report.migrated);
  EXPECT_TRUE(result.ok());
  EXPECT_GT(report.metrics.counter("msrm.collect.blocks_saved"), 2000u);
}

TEST(Stress, DumpValidatesALargeStreamUnderTruncationCap) {
  ti::TypeTable types;
  apps::bitonic_register_types(types);
  mig::MigContext ctx(types);
  ctx.set_migrate_at_poll(1);
  apps::BitonicResult result;
  EXPECT_THROW(apps::bitonic_program(ctx, 12, 5, &result), mig::MigrationExit);
  const std::uint64_t wire_blocks = ctx.metrics().collect.counter("msrm.collect.blocks_saved");
  ASSERT_GT(wire_blocks, 8000u);
  msrm::DumpOptions options;
  options.max_blocks = 50;  // keep the text small...
  const std::string text = msrm::dump_stream(ctx.stream(), options);
  // ...but the whole 8k-block stream must still decode and verify.
  EXPECT_NE(text.find("total blocks on wire: " + std::to_string(wire_blocks)),
            std::string::npos);
  EXPECT_LT(text.size(), 100'000u);
}

TEST(Stress, CheckpointRestartOfAMigratedWorkload) {
  // Chain facilities: checkpoint a bitonic run mid-sort, restart it, and
  // verify the restarted process still sorts correctly.
  const std::string path = "/tmp/hpm_stress_ckpt.ckpt";
  std::remove(path.c_str());
  apps::BitonicResult during;
  ckpt::checkpoint_run(
      apps::bitonic_register_types,
      [&during](mig::MigContext& ctx) { apps::bitonic_program(ctx, 8, 21, &during); },
      path, /*at_poll=*/700);
  EXPECT_TRUE(during.ok());
  apps::BitonicResult restarted;
  ckpt::restart_run(
      apps::bitonic_register_types,
      [&restarted](mig::MigContext& ctx) { apps::bitonic_program(ctx, 8, 21, &restarted); },
      path);
  EXPECT_TRUE(restarted.ok());
}

TEST(Stress, LiveClusterRunsRealWorkloadsWithBalancing) {
  sched::LiveCluster cluster(3, apps::bitonic_register_types);
  std::vector<std::unique_ptr<apps::BitonicResult>> results;
  for (int i = 0; i < 6; ++i) {
    results.push_back(std::make_unique<apps::BitonicResult>());
    auto* slot = results.back().get();
    cluster.submit(
        [slot, i](mig::MigContext& ctx) {
          apps::bitonic_program(ctx, 8, static_cast<std::uint64_t>(i), slot);
        },
        0);
  }
  cluster.enable_auto_balance(0.002);
  cluster.start();
  const auto reports = cluster.wait_all();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_TRUE(reports[i].done) << i;
    EXPECT_TRUE(results[i]->ok()) << i;
  }
}

}  // namespace
}  // namespace hpm
