// Validates the paper's §4.2 cost model using the MSRLT operation
// counters instead of wall-clock time (deterministic, CI-safe):
//
//   Collect = MSRLT_search (one address search per pointer followed,
//             O(log n) steps each)  +  Encode-and-copy O(sum Di)
//   Restore = MSRLT_update (one table append per block, never a search)
//             + Decode-and-copy O(sum Di)
#include <gtest/gtest.h>

#include "apps/workload.hpp"
#include "msr/host_space.hpp"
#include "msrm/collect.hpp"
#include "msrm/restore.hpp"
#include "obs/metrics.hpp"

namespace hpm {
namespace {

using apps::GraphShape;
using apps::RandNode;
using msr::Address;

struct Metrics {
  std::uint64_t searches = 0;
  std::uint64_t search_steps = 0;
  std::uint64_t restore_registrations = 0;
  std::uint64_t restore_searches = 0;
  std::uint64_t blocks = 0;
  std::uint64_t bytes = 0;
};

Metrics run_chain(std::uint32_t n) {
  ti::TypeTable table;
  apps::workload_register_types(table);
  mig::MigContext src(table);
  RandNode*& root = src.global<RandNode*>("root");
  GraphShape shape;
  shape.nodes = n;
  shape.edge_density = 0.75;
  shape.share_bias = 0.5;
  const auto nodes = apps::build_random_graph(src, 42, shape);
  root = nodes[0];

  // Per-phase registry deltas: the instruments are process-wide, so the
  // collect and restore windows are bracketed with snapshots.
  const obs::MetricsSnapshot pre_collect = obs::Registry::process().snapshot();
  xdr::Encoder enc;
  msrm::Collector collector(src.space(), enc);
  collector.save_variable(reinterpret_cast<Address>(&root));
  const obs::MetricsSnapshot post_collect = obs::Registry::process().snapshot();

  msr::HostSpace dst(table);
  xdr::Decoder dec(enc.bytes());
  msrm::Restorer restorer(dst, dec);
  restorer.set_auto_bind(true);
  restorer.restore_variable();
  const obs::MetricsSnapshot post_restore = obs::Registry::process().snapshot();

  const obs::MetricsSnapshot collect_delta = post_collect.delta_since(pre_collect);
  const obs::MetricsSnapshot restore_delta = post_restore.delta_since(post_collect);
  Metrics r;
  r.searches = collect_delta.counter("msr.msrlt.searches");
  r.search_steps = collect_delta.counter("msr.msrlt.search_steps");
  r.restore_registrations = restore_delta.counter("msr.msrlt.registrations");
  r.restore_searches = restore_delta.counter("msr.msrlt.searches");
  r.blocks = collect_delta.counter("msrm.collect.blocks_saved");
  r.bytes = enc.size();
  return r;
}

TEST(ComplexityModel, CollectionSearchesOncePerFollowedPointer) {
  const Metrics r = run_chain(200);
  // Each non-null pointer leaf triggers exactly one MSRLT search (the
  // resolve); blocks have 4 slots, so searches are bounded by 4 per node
  // plus the root variable.
  EXPECT_GE(r.searches, r.blocks - 1);  // at least one per discovered block
  EXPECT_LE(r.searches, r.blocks * 4 + 1);
}

TEST(ComplexityModel, SearchStepsGrowAsNLogN) {
  const Metrics small = run_chain(100);
  const Metrics large = run_chain(800);
  const double n_ratio =
      static_cast<double>(large.searches) / static_cast<double>(small.searches);
  const double step_ratio =
      static_cast<double>(large.search_steps) / static_cast<double>(small.search_steps);
  // steps/search ~ log n: the step ratio exceeds the pure count ratio but
  // stays well below quadratic growth.
  EXPECT_GT(step_ratio, n_ratio * 1.05);
  EXPECT_LT(step_ratio, n_ratio * 3.0);
}

TEST(ComplexityModel, RestorationNeverSearchesByAddress) {
  // "the data restoration algorithm only spends constant time to restore
  // the items according to the MSRLT" — per-BLOCK restoration performs no
  // address search at all; the only search is the single final validation
  // of each restore_variable() call (one here), constant in n.
  for (std::uint32_t n : {50u, 200u, 800u}) {
    const Metrics r = run_chain(n);
    EXPECT_EQ(r.restore_searches, 1u) << n;
    EXPECT_EQ(r.restore_registrations, r.blocks) << n;
  }
}

TEST(ComplexityModel, LinpackProfileKeepsSearchCountConstant) {
  // Few huge blocks: scaling the data 16x must not change the number of
  // MSRLT searches (the paper's "MSRLT search time held constant").
  auto run_linpack_like = [](std::uint32_t elems) {
    ti::TypeTable table;
    msr::HostSpace space(table);
    std::vector<double> a(elems, 1.0), b(elems / 10 + 1, 2.0);
    space.track_raw(msr::Segment::Heap, a.data(), table.primitive(xdr::PrimKind::Double),
                    elems, "a");
    space.track_raw(msr::Segment::Heap, b.data(), table.primitive(xdr::PrimKind::Double),
                    elems / 10 + 1, "b");
    double* pa = a.data();
    double* pb = b.data();
    space.track(msr::Segment::Global, pa, "pa", ti::native_type_id<double*>(table), 1);
    space.track(msr::Segment::Global, pb, "pb", ti::native_type_id<double*>(table), 1);
    const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
    xdr::Encoder enc;
    msrm::Collector collector(space, enc);
    collector.save_variable(reinterpret_cast<Address>(&pa));
    collector.save_variable(reinterpret_cast<Address>(&pb));
    const std::uint64_t searches =
        obs::Registry::process().snapshot().delta_since(before).counter("msr.msrlt.searches");
    return std::pair{searches, enc.size()};
  };
  const auto [s1, bytes1] = run_linpack_like(10000);
  const auto [s2, bytes2] = run_linpack_like(160000);
  EXPECT_EQ(s1, s2);               // search term constant
  EXPECT_GT(bytes2, bytes1 * 15);  // encode term linear in sum Di
}

TEST(ComplexityModel, StreamBytesScaleWithPayload) {
  const Metrics small = run_chain(100);
  const Metrics large = run_chain(800);
  const double blocks_ratio =
      static_cast<double>(large.blocks) / static_cast<double>(small.blocks);
  const double bytes_ratio =
      static_cast<double>(large.bytes) / static_cast<double>(small.bytes);
  EXPECT_NEAR(bytes_ratio, blocks_ratio, blocks_ratio * 0.5);
}

}  // namespace
}  // namespace hpm
