// Destination failover (DESIGN.md §16), attacked at every protocol state.
//
// Four suites:
//  - FailoverMatrix: the primary destination is killed at each protocol
//    state — before its Hello, streaming (early / mid / after its last
//    chunk ack), casting its vote, and mid-manifest-negotiation — and the
//    migration must complete on the standby under incarnation 2 with a
//    restored state bit-identical to a fault-free run, while journal
//    arbitration names exactly one committed owner. The post-commit kill
//    is the at-most-once counterexample: the primary already owns the
//    process, so failover must NOT fire.
//  - WarmStandby: a standby whose ChunkStore already holds the stream's
//    chunks receives only the manifest plus misses — the failover replay
//    puts well under 5% of the stream on the wire.
//  - Fencing: a revived stale-incarnation destination refuses Prepare and
//    Commit frames addressed to a newer incarnation (MigrationError, the
//    mig.failover.fenced counter moves), and a PrepareAck echoing a stale
//    incarnation is rejected by the source machine.
//  - SupervisorFailover: a wedged (blackholed) routed session is convicted
//    by the SessionSupervisor and, with a standby configured, re-targets
//    instead of degrading to local completion.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "apps/bitonic.hpp"
#include "mig/coordinator.hpp"
#include "mig/journal.hpp"
#include "mig/session.hpp"
#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "sched/cluster.hpp"

namespace hpm::mig {
namespace {

constexpr std::uint64_t kTxn = 91;
constexpr std::uint32_t kChunkBytes = 512;

/// Fault-free ground truth for the matrix workload, computed once per
/// process: the digest certifies bit-identical restored state, the sum is
/// the workload's answer, and the chunk count maps destination frame
/// indices onto protocol states.
struct Baseline {
  std::uint64_t digest = 0;
  std::uint64_t sum = 0;
  std::uint64_t stream_bytes = 0;
  std::uint64_t chunks = 0;
};

RunOptions base_options(apps::BitonicResult& result) {
  RunOptions options;
  options.register_types = apps::bitonic_register_types;
  options.program = [&result](MigContext& ctx) {
    apps::bitonic_program(ctx, 6, 9, &result);
  };
  options.migrate_at_poll = 50;
  options.pipeline = true;
  options.chunk_bytes = kChunkBytes;
  options.ack_every_chunks = 1;  // one StateAck per chunk: dense kill points
  options.io_timeout_seconds = 1.0;  // a dead primary is declared fast
  return options;
}

const Baseline& baseline() {
  static const Baseline b = [] {
    apps::BitonicResult result;
    RunOptions options = base_options(result);
    const MigrationReport report = run_migration(options);
    EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
    EXPECT_TRUE(result.ok());
    EXPECT_NE(report.stream_digest, 0u);
    Baseline bl;
    bl.digest = report.stream_digest;
    bl.sum = result.sum_after;
    bl.stream_bytes = report.stream_bytes;
    bl.chunks = (report.stream_bytes + kChunkBytes - 1) / kChunkBytes;
    EXPECT_GT(bl.chunks, 4u) << "the matrix needs a multi-chunk stream";
    return bl;
  }();
  return b;
}

class FailoverMatrix : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("hpm_failover_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  /// The matrix shape: the streaming transactional run of base_options()
  /// plus journals and ONE cold standby, no resume budget — a dead
  /// primary must fail over, not resume. The destination's frame schedule
  /// is fully determined: frame 0 Hello, frames 1..chunks StateAck,
  /// chunks+1 PrepareAck, chunks+2 final Ack — so kill_after(i) scripts
  /// the primary's death at an exact protocol state.
  RunOptions matrix_options(apps::BitonicResult& result) {
    RunOptions options = base_options(result);
    options.max_retries = 0;
    options.journal_dir = (root_ / "journals").string();
    options.txn_id = kTxn;
    DestinationCandidate standby;
    standby.name = "standby-a";
    options.failover.standbys.push_back(standby);
    options.failover.dial_attempts = 2;
    options.failover.dial_backoff_seconds = 0.001;
    return options;
  }

  /// Kill the primary at destination frame `dest_frame`; the standby must
  /// finish the migration with a bit-identical restore, and arbitration
  /// must name exactly one committed owner: incarnation 2.
  void run_killed_at(std::uint64_t dest_frame, const char* state_label) {
    SCOPED_TRACE(std::string("primary killed ") + state_label);
    apps::BitonicResult result;
    RunOptions options = matrix_options(result);
    options.dest_fault_plan = net::FaultPlan::kill_after(dest_frame);

    const MigrationReport report = run_migration(options);
    EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
    EXPECT_TRUE(report.migrated);
    EXPECT_EQ(report.failovers, 1);
    EXPECT_EQ(report.dest_incarnation, 2u);
    EXPECT_GT(report.failover_downtime_seconds, 0.0);
    EXPECT_GE(report.metrics.counter("mig.failover.triggered"), 1u);
    EXPECT_GE(report.metrics.counter("mig.failover.redirects"), 1u);

    // Bit-identical restore on exactly one host: the workload ran once,
    // on the standby, over the same canonical stream as a fault-free run.
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.sum_after, baseline().sum);
    EXPECT_EQ(report.stream_digest, baseline().digest)
        << "replayed stream diverged from the fault-free collection";

    const RecoveryVerdict v = Coordinator::recover(options.journal_dir);
    EXPECT_EQ(v.owner, TxnOwner::Destination) << v.reason;
    EXPECT_EQ(v.txn_id, kTxn);
    EXPECT_EQ(v.incarnation, 2u) << v.reason;
    EXPECT_EQ(v.committed_destinations, 1u)
        << "exactly one destination may hold a Committed record: " << v.reason;
    EXPECT_TRUE(v.completed) << v.reason;

    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "outcome " << outcome_name(report.outcome) << " after "
                    << report.attempts << " attempts; causes:\n  "
                    << [&] {
                         std::string all;
                         for (const std::string& c : report.failure_causes) {
                           all += c + "\n  ";
                         }
                         return all;
                       }();
    }
  }

  std::filesystem::path root_;
};

TEST_F(FailoverMatrix, PrimaryKilledBeforeHello) {
  // Frame 0 is the primary's Hello: the source never rendezvouses, runs
  // the program sink-less, and hands the retained stream to the standby.
  run_killed_at(0, "sending its Hello");
}

TEST_F(FailoverMatrix, PrimaryKilledStreamingEarly) {
  run_killed_at(1, "sending its first chunk ack (streaming, early)");
}

TEST_F(FailoverMatrix, PrimaryKilledStreamingMid) {
  run_killed_at(1 + baseline().chunks / 2, "mid chunk-stream");
}

TEST_F(FailoverMatrix, PrimaryKilledAfterItsLastChunkAck) {
  run_killed_at(baseline().chunks, "sending its final chunk ack");
}

TEST_F(FailoverMatrix, PrimaryKilledCastingItsVote) {
  // The primary journaled Prepared under incarnation 1 and died sending
  // PrepareAck; the standby's Committed(2) must win arbitration over the
  // stale prepared journal.
  run_killed_at(baseline().chunks + 1, "sending PrepareAck");
}

TEST_F(FailoverMatrix, ReplayFromTheDiskSpilledRetainedStream) {
  // Same mid-stream kill, but the retained stream lives in a spill file:
  // the failover replay must read [0, end) back off disk bit-identically.
  apps::BitonicResult result;
  RunOptions options = matrix_options(result);
  options.retain_dir = (root_ / "retain").string();
  options.dest_fault_plan =
      net::FaultPlan::kill_after(1 + baseline().chunks / 2);

  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(report.failovers, 1);
  EXPECT_EQ(report.dest_incarnation, 2u);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.sum_after, baseline().sum);
  EXPECT_EQ(report.stream_digest, baseline().digest);
}

TEST_F(FailoverMatrix, PostCommitDeathIsNotFailedOver) {
  // The primary received Commit, journaled Committed, ran the workload —
  // and died sending the confirmation Ack. At-most-once: the standby must
  // NOT be dialed; the primary owns the process.
  apps::BitonicResult result;
  RunOptions options = matrix_options(result);
  options.dest_fault_plan = net::FaultPlan::kill_after(baseline().chunks + 2);

  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::CommittedUnconfirmed);
  EXPECT_TRUE(report.migrated);
  EXPECT_EQ(report.failovers, 0);
  EXPECT_EQ(report.dest_incarnation, 1u);
  EXPECT_TRUE(result.ok()) << "the workload ran exactly once, on the primary";
  EXPECT_EQ(result.sum_after, baseline().sum);
  EXPECT_EQ(report.metrics.counter("mig.failover.redirects"), 0u);

  const RecoveryVerdict v = Coordinator::recover(options.journal_dir);
  EXPECT_EQ(v.owner, TxnOwner::Destination) << v.reason;
  EXPECT_EQ(v.incarnation, 1u) << v.reason;
  EXPECT_EQ(v.committed_destinations, 1u);
  EXPECT_FALSE(v.completed) << "Done was never confirmed to the source";
}

TEST_F(FailoverMatrix, PrimaryKilledMidManifestNegotiation) {
  // Dedup'd primary: frames are 0 Hello, 1 ManifestAck, 2 PrepareAck,
  // 3 Ack. Killing frame 1 leaves the source mid-negotiation; the cold
  // standby gets the raw [0, end) replay.
  apps::BitonicResult result;
  RunOptions options = matrix_options(result);
  options.chunk_cache_dir = (root_ / "primary_store").string();
  options.dest_fault_plan = net::FaultPlan::kill_after(1);

  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(report.failovers, 1);
  EXPECT_EQ(report.dest_incarnation, 2u);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.sum_after, baseline().sum);
  EXPECT_EQ(report.stream_digest, baseline().digest);

  const RecoveryVerdict v = Coordinator::recover(options.journal_dir);
  EXPECT_EQ(v.owner, TxnOwner::Destination) << v.reason;
  EXPECT_EQ(v.incarnation, 2u) << v.reason;
  EXPECT_EQ(v.committed_destinations, 1u);
}

TEST_F(FailoverMatrix, SecondStandbyWinsWhenTheFirstDiesToo) {
  // Chaos squared: the primary dies mid-stream, standby-a dies at its own
  // Hello, standby-b finishes. Three incarnations touched, one committed.
  apps::BitonicResult result;
  RunOptions options = matrix_options(result);
  options.failover.standbys[0].dest_fault_plan = net::FaultPlan::kill_after(0);
  DestinationCandidate second;
  second.name = "standby-b";
  options.failover.standbys.push_back(second);
  options.dest_fault_plan = net::FaultPlan::kill_after(1 + baseline().chunks / 2);

  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(report.failovers, 2);
  EXPECT_EQ(report.dest_incarnation, 3u);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.sum_after, baseline().sum);
  EXPECT_EQ(report.stream_digest, baseline().digest);

  const RecoveryVerdict v = Coordinator::recover(options.journal_dir);
  EXPECT_EQ(v.owner, TxnOwner::Destination) << v.reason;
  EXPECT_EQ(v.incarnation, 3u) << v.reason;
  EXPECT_EQ(v.committed_destinations, 1u);
}

// --- warm standby ----------------------------------------------------------

TEST_F(FailoverMatrix, WarmStandbyReceivesOnlyMisses) {
  // Warm the standby's store with a fault-free dedup migration of the
  // SAME workload — the canonical stream is deterministic, so every chunk
  // address recurs.
  const std::string standby_store = (root_ / "standby_store").string();
  {
    apps::BitonicResult warm_result;
    RunOptions warmup = base_options(warm_result);
    warmup.chunk_cache_dir = standby_store;
    const MigrationReport w = run_migration(warmup);
    ASSERT_EQ(w.outcome, MigrationOutcome::Migrated);
    ASSERT_TRUE(warm_result.ok());
    ASSERT_EQ(w.dedup_miss_chunks, w.dedup_manifest_chunks)
        << "a cold store misses everything";
  }

  // Kill the primary mid-stream; the standby negotiates the manifest
  // against its warm store, so only addresses + residual misses travel.
  apps::BitonicResult result;
  RunOptions options = matrix_options(result);
  options.failover.standbys[0].chunk_cache_dir = standby_store;
  options.dest_fault_plan =
      net::FaultPlan::kill_after(1 + baseline().chunks / 2);

  const MigrationReport report = run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_EQ(report.failovers, 1);
  EXPECT_EQ(report.dest_incarnation, 2u);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.sum_after, baseline().sum);
  EXPECT_EQ(report.stream_digest, baseline().digest);

  EXPECT_EQ(report.dedup_manifest_chunks, baseline().chunks);
  EXPECT_EQ(report.dedup_hit_chunks, baseline().chunks)
      << "every chunk of the deterministic stream must hit the warm store";
  EXPECT_EQ(report.dedup_miss_chunks, 0u);
  // The perf_guard gate (<5% re-send) in strict form: the failover replay
  // put only the manifest on the wire.
  EXPECT_LT(report.dedup_wire_bytes, report.stream_bytes / 20)
      << "warm-standby failover must re-send <5% of the stream bytes";
}

// --- fencing ---------------------------------------------------------------

net::Message hello_frame() {
  net::Message m;
  m.type = net::MsgType::Hello;
  m.payload = {net::kProtocolVersion};
  return m;
}

/// Drive a DestSession (the revived, presumed-dead primary: incarnation 1)
/// through a complete one-chunk stream, leaving it at the commit gate.
void drive_to_stream_complete(DestSession& d) {
  d.announce();
  net::Message begin;
  begin.type = net::MsgType::StateBegin;
  begin.payload = net::encode_state_begin(
      {.chunk_bytes = kChunkBytes, .txn_id = kTxn, .incarnation = 1});
  d.on_frame(begin);
  net::Message chunk;
  chunk.type = net::MsgType::StateChunk;
  const std::uint8_t body[] = {1, 2, 3};
  chunk.payload = net::encode_state_chunk(0, body);
  d.on_frame(chunk);
  net::Message end;
  end.type = net::MsgType::StateEnd;
  end.payload = net::encode_state_end(
      {.chunk_count = 1, .total_bytes = 3, .digest = 42});
  d.on_frame(end);
}

TEST(Fencing, StaleDestinationRefusesACommitForANewerIncarnation) {
  // The failover already moved the transaction to incarnation 2; a Commit
  // naming 2 that reaches the revived incarnation-1 destination must be
  // refused — this endpoint may not own the process.
  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  DestSession d(9301);
  drive_to_stream_complete(d);
  net::Message prepare;
  prepare.type = net::MsgType::Prepare;
  prepare.payload = net::encode_txn_token({kTxn, 1});
  d.on_frame(prepare);
  ASSERT_EQ(d.state(), SessionState::Prepared);

  net::Message stale_commit;
  stale_commit.type = net::MsgType::Commit;
  stale_commit.payload = net::encode_txn_token({kTxn, 2});
  EXPECT_THROW(d.on_frame(stale_commit), MigrationError);
  EXPECT_EQ(d.state(), SessionState::Aborted);
  EXPECT_NE(d.abort_reason().find("fenced"), std::string::npos)
      << d.abort_reason();
  const obs::MetricsSnapshot delta =
      obs::Registry::process().snapshot().delta_since(before);
  EXPECT_GE(delta.counter("mig.failover.fenced"), 1u);
}

TEST(Fencing, StaleDestinationRefusesAPrepareForANewerIncarnation) {
  DestSession d(9302);
  drive_to_stream_complete(d);
  net::Message stale_prepare;
  stale_prepare.type = net::MsgType::Prepare;
  stale_prepare.payload = net::encode_txn_token({kTxn, 2});
  EXPECT_THROW(d.on_frame(stale_prepare), MigrationError);
  EXPECT_EQ(d.state(), SessionState::Aborted);
  EXPECT_NE(d.abort_reason().find("fenced"), std::string::npos)
      << d.abort_reason();
}

TEST(Fencing, SourceRejectsAPrepareAckEchoingAStaleIncarnation) {
  // The source redirected to incarnation 2; a straggler PrepareAck from
  // the fenced incarnation-1 primary must be rejected, not mistaken for
  // the standby's vote.
  SourceSession s(9303, kTxn);
  s.on_frame(hello_frame());
  s.begin_streaming();
  s.set_stream(1, 42);
  s.redirect_decided(2);
  s.on_frame(hello_frame());  // the standby announces
  s.begin_streaming();
  s.prepare_sent();

  net::Message stale_vote;
  stale_vote.type = net::MsgType::PrepareAck;
  stale_vote.payload =
      net::encode_prepare_ack({.txn_id = kTxn, .digest = 42, .incarnation = 1});
  EXPECT_THROW(s.on_frame(stale_vote), MigrationError);
  EXPECT_NE(s.abort_reason().find("fenced"), std::string::npos)
      << s.abort_reason();
}

// --- supervisor-driven failover --------------------------------------------

TEST(SupervisorFailover, WedgedSessionFailsOverInsteadOfDegrading) {
  // Same wedge as the chaos soak's detection test — a blackholed source
  // port only the supervisor can convict — but with a standby configured:
  // the verdict must re-target the migration, not abandon it.
  namespace sched = hpm::sched;
  const std::string journal_dir =
      "/tmp/hpm_failover_wedge_" + std::to_string(::getpid());
  std::filesystem::remove_all(journal_dir);

  apps::BitonicResult result;
  std::vector<sched::SessionJob> jobs(1);
  jobs[0].options = base_options(result);
  jobs[0].options.journal_dir = journal_dir;
  jobs[0].options.txn_id = kTxn;
  DestinationCandidate standby;
  standby.name = "standby-a";
  jobs[0].options.failover.standbys.push_back(standby);
  jobs[0].options.failover.dial_attempts = 2;
  jobs[0].options.failover.dial_backoff_seconds = 0.001;
  jobs[0].stall_after_frames = 12;

  sched::FleetOptions fleet;
  fleet.supervise = true;
  fleet.liveness.heartbeat_interval_s = 0.03;
  fleet.liveness.max_missed_heartbeats = 4;
  // Pin the per-IO deadline at the 5 s ceiling so only the supervisor's
  // stall detector can break the wedge (mirrors the chaos soak's bound).
  fleet.liveness.stall_timeout_s = 2.0;
  fleet.liveness.rtt.floor_s = 5.0;
  fleet.liveness.rtt.ceiling_s = 5.0;

  const std::vector<sched::SessionOutcome> outcomes =
      sched::migrate_many(jobs, net::Transport::Memory, fleet);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, sched::SessionStatus::Completed);
  EXPECT_EQ(outcomes[0].report.outcome, MigrationOutcome::Migrated)
      << "a wedged primary with a standby must fail over, not degrade";
  EXPECT_GE(outcomes[0].report.failovers, 1);
  EXPECT_EQ(outcomes[0].report.dest_incarnation, 2u);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.sum_after, baseline().sum);
  EXPECT_EQ(outcomes[0].report.stream_digest, baseline().digest);

  const RecoveryVerdict v = Coordinator::recover(journal_dir, kTxn);
  EXPECT_EQ(v.owner, TxnOwner::Destination) << v.reason;
  EXPECT_EQ(v.incarnation, 2u) << v.reason;
  EXPECT_EQ(v.committed_destinations, 1u);
  std::filesystem::remove_all(journal_dir);
}

}  // namespace
}  // namespace hpm::mig
