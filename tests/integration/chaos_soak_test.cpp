// Chaos soak: rounds of randomized multiplexed migrations under seeded
// fault injection (kills, stalls) with the supervisor armed, asserting the
// liveness invariants the fleet layer promises:
//
//   * no hangs  — every round converges (ctest TIMEOUT is the backstop,
//     the wedge-detection bound below is the real assertion);
//   * no leaks  — the supervisor registry is empty after every round;
//   * exactly one owner — every journaled transaction recovers to a
//     single, unambiguous owner;
//   * sibling isolation — sessions sharing the wire with a victim finish
//     bit-identical to the same workload run alone on a private channel.
//
// The final test emits the hpm-bench-v1 fleet report (BENCH_fleet.json)
// with the p99 wedge-detection latency when HPM_CHAOS_JSON is set; ctest
// validates it with tools/bench_schema_check.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "apps/bitonic.hpp"
#include "bench/emit.hpp"
#include "mig/coordinator.hpp"
#include "mig/journal.hpp"
#include "obs/metrics.hpp"
#include "sched/cluster.hpp"

namespace hpm::sched {
namespace {

using mig::MigrationOutcome;
using net::Transport;

constexpr int kSessions = 6;
constexpr int kRounds = 3;
constexpr int kSeeds[kSessions] = {3, 5, 7, 9, 11, 13};

/// RNG seed driving the soak's randomized fault schedule. Overridable so a
/// CI failure is replayable: re-run with HPM_CHAOS_SEED=<seed from the
/// failure message or BENCH_fleet.json> to get the identical schedule.
std::uint32_t chaos_seed() {
  static const std::uint32_t seed = [] {
    if (const char* s = std::getenv("HPM_CHAOS_SEED"); s != nullptr && *s != '\0') {
      return static_cast<std::uint32_t>(std::strtoul(s, nullptr, 0));
    }
    return 0xC0FFEEu;
  }();
  return seed;
}

mig::RunOptions bitonic_options(int seed, apps::BitonicResult* result) {
  mig::RunOptions options;
  options.transport = Transport::Memory;
  options.pipeline = true;
  options.chunk_bytes = 128;  // ~47 chunks: faults always land mid-stream
  options.register_types = apps::bitonic_register_types;
  options.program = [result, seed](mig::MigContext& ctx) {
    apps::bitonic_program(ctx, 6, static_cast<std::uint64_t>(seed), result);
  };
  options.migrate_at_poll = 50;
  return options;
}

/// The workload's ground truth: the same program run alone, no faults, no
/// shared wire. Computed once per seed and cached — the soak compares
/// every routed session against this.
std::uint64_t serial_sum(int seed) {
  static std::map<int, std::uint64_t> cache;
  const auto it = cache.find(seed);
  if (it != cache.end()) return it->second;
  apps::BitonicResult result;
  mig::RunOptions options = bitonic_options(seed, &result);
  const mig::MigrationReport report = mig::run_migration(options);
  EXPECT_EQ(report.outcome, MigrationOutcome::Migrated);
  EXPECT_TRUE(result.ok());
  cache[seed] = result.sum_after;
  return result.sum_after;
}

/// Tight liveness so the soak converges fast: 30 ms probes, 4 misses or a
/// 3 s frozen watermark convicts. The deadline floor and the stall timeout
/// are deliberately generous relative to the probe cadence: under TSan the
/// whole process runs ~15x slower, and a healthy-but-instrumented session
/// must never trip a detector meant for a genuinely wedged peer.
mig::LivenessConfig soak_liveness() {
  mig::LivenessConfig liveness;
  liveness.heartbeat_interval_s = 0.03;
  liveness.max_missed_heartbeats = 4;
  liveness.stall_timeout_s = 3.0;
  liveness.rtt.floor_s = 1.0;
  return liveness;
}

TEST(ChaosSoak, RandomizedRoundsConvergeAndSiblingsMatch) {
  std::mt19937 rng(chaos_seed());  // seeded: every CI run replays this schedule
  // Every failure under this test names the seed, so the exact fault
  // schedule is one env var away from a local replay.
  SCOPED_TRACE("chaos seed " + std::to_string(chaos_seed()) +
               " (re-run with HPM_CHAOS_SEED=" + std::to_string(chaos_seed()) +
               " to replay this schedule)");
  // PID-keyed: the default/ASan/TSan trees may run their chaos suites
  // concurrently, and a shared scratch dir would let one instance's
  // remove_all/GC eat another's journals mid-round.
  const std::string journal_dir =
      "/tmp/hpm_chaos_soak_" + std::to_string(::getpid());
  std::filesystem::remove_all(journal_dir);

  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::string round_dir = journal_dir + "/round" + std::to_string(round);

    // Two distinct victims per round: one killed (severed mid-stream, must
    // resume), one stalled (blackholed mid-stream — the adaptive deadline
    // or the supervisor must break the wait; either way it converges).
    const int kill_victim = static_cast<int>(rng() % kSessions);
    int stall_victim = static_cast<int>(rng() % kSessions);
    while (stall_victim == kill_victim) stall_victim = static_cast<int>(rng() % kSessions);

    std::vector<apps::BitonicResult> results(kSessions);
    std::vector<SessionJob> jobs(kSessions);
    for (int i = 0; i < kSessions; ++i) {
      jobs[i].options = bitonic_options(kSeeds[i], &results[i]);
      jobs[i].options.journal_dir = round_dir;
    }
    jobs[kill_victim].sever_after_frames = 8 + static_cast<std::int64_t>(rng() % 16);
    jobs[stall_victim].stall_after_frames = 8 + static_cast<std::int64_t>(rng() % 16);

    FleetOptions fleet;
    fleet.supervise = true;
    fleet.liveness = soak_liveness();
    fleet.max_job_failures = 3;

    const std::vector<SessionOutcome> outcomes =
        migrate_many(jobs, Transport::Memory, fleet);
    ASSERT_EQ(outcomes.size(), static_cast<std::size_t>(kSessions));

    for (int i = 0; i < kSessions; ++i) {
      SCOPED_TRACE("session " + std::to_string(i + 1));
      EXPECT_EQ(outcomes[i].status, SessionStatus::Completed);
      const mig::MigrationReport& r = outcomes[i].report;
      if (i == stall_victim) {
        // A stalled stream may self-heal (adaptive deadline fires, the
        // session resumes on a fresh epoch) or be convicted by the
        // supervisor and degrade to local completion. Both preserve the
        // workload; a hang is the only unacceptable outcome.
        EXPECT_TRUE(r.outcome == MigrationOutcome::Migrated ||
                    r.outcome == MigrationOutcome::AbortedContinuedLocally)
            << "stall victim ended as " << mig::outcome_name(r.outcome);
      } else {
        EXPECT_EQ(r.outcome, MigrationOutcome::Migrated)
            << mig::outcome_name(r.outcome);
      }
      // Sibling isolation: bit-identical to the exclusive-channel run no
      // matter what happened to the victims sharing the wire.
      ASSERT_TRUE(results[i].ok());
      EXPECT_EQ(results[i].sum_after, serial_sum(kSeeds[i]));
    }
    // The killed session really died and resumed.
    EXPECT_GE(outcomes[kill_victim].report.attempts, 2);

    // No leaked sessions: every driver deregistered, the registry gauge
    // is back to zero.
    const obs::MetricsSnapshot snap = obs::Registry::process().snapshot();
    EXPECT_EQ(snap.gauge("mig.liveness.live_sessions"), 0);

    // Exactly one owner for every journaled transaction, then sweep the
    // completed ones and verify the sweep kept anything still in flight.
    const std::vector<std::uint64_t> txns = mig::list_journaled_txns(round_dir);
    EXPECT_GE(txns.size(), static_cast<std::size_t>(kSessions));
    for (int i = 0; i < kSessions; ++i) {
      const std::uint64_t txn = outcomes[i].report.txn_id;
      EXPECT_TRUE(std::find(txns.begin(), txns.end(), txn) != txns.end())
          << "session " << (i + 1) << " reported txn " << txn
          << " (outcome " << mig::outcome_name(outcomes[i].report.outcome)
          << ", attempts " << outcomes[i].report.attempts
          << ") but no journal file names it";
    }
    std::size_t expected_swept = 0;
    for (const std::uint64_t txn : txns) {
      const mig::RecoveryVerdict verdict = mig::Coordinator::recover(round_dir, txn);
      EXPECT_NE(verdict.owner, mig::TxnOwner::None) << "txn " << txn;
      if (verdict.completed) ++expected_swept;
    }
    const std::vector<std::uint64_t> swept = mig::gc_completed_txn_journals(round_dir);
    EXPECT_EQ(swept.size(), expected_swept);
    EXPECT_EQ(mig::list_journaled_txns(round_dir).size(), txns.size() - expected_swept);
  }

  // The probe machinery really ran across the soak.
  const obs::MetricsSnapshot snap = obs::Registry::process().snapshot();
  EXPECT_GT(snap.counter("mig.liveness.pings"), 0u);
  EXPECT_GT(snap.counter("mig.liveness.pongs"), 0u);
}

TEST(ChaosSoak, WedgedSessionIsDetectedWithinTheAdaptiveDeadline) {
  // Pin the per-IO deadline at the 5 s ceiling (floor == ceiling) so the
  // transfer layer CANNOT time its own way out of the blackhole: only the
  // supervisor's stall detector can break the wedge, and it must do so
  // well inside that deadline.
  const std::string journal_dir =
      "/tmp/hpm_chaos_wedge_" + std::to_string(::getpid());
  std::filesystem::remove_all(journal_dir);

  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();

  constexpr int kWedgeSessions = 4;
  constexpr int kVictim = 1;
  std::vector<apps::BitonicResult> results(kWedgeSessions);
  std::vector<SessionJob> jobs(kWedgeSessions);
  for (int i = 0; i < kWedgeSessions; ++i) {
    jobs[i].options = bitonic_options(kSeeds[i], &results[i]);
    jobs[i].options.journal_dir = journal_dir;
  }
  jobs[kVictim].stall_after_frames = 12;

  FleetOptions fleet;
  fleet.supervise = true;
  fleet.liveness = soak_liveness();
  // Tight enough to convict well inside the 5 s deadline, loose enough
  // that a healthy sibling slowed by a sanitizer build never freezes its
  // watermark past it.
  fleet.liveness.stall_timeout_s = 2.0;
  fleet.liveness.rtt.floor_s = 5.0;
  fleet.liveness.rtt.ceiling_s = 5.0;

  const std::vector<SessionOutcome> outcomes =
      migrate_many(jobs, Transport::Memory, fleet);
  ASSERT_EQ(outcomes.size(), static_cast<std::size_t>(kWedgeSessions));

  // The victim was convicted and degraded to local completion — with the
  // right answer. Siblings migrated untouched.
  EXPECT_EQ(outcomes[kVictim].report.outcome,
            MigrationOutcome::AbortedContinuedLocally);
  for (int i = 0; i < kWedgeSessions; ++i) {
    SCOPED_TRACE("session " + std::to_string(i + 1));
    if (i != kVictim) {
      EXPECT_EQ(outcomes[i].report.outcome, MigrationOutcome::Migrated);
    }
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].sum_after, serial_sum(kSeeds[i]));
  }

  // Detection happened, and fast: from the victim's last sign of life to
  // the wedge verdict is ~stall_timeout plus a sweep tick — an order of
  // magnitude inside the 5 s deadline the transfer itself was stuck on.
  const obs::MetricsSnapshot delta =
      obs::Registry::process().snapshot().delta_since(before);
  EXPECT_GE(delta.counter("mig.liveness.sessions_wedged"), 1u);
  EXPECT_GE(delta.counter("mig.liveness.cancels"), 1u);
  const obs::MetricsSnapshot full = obs::Registry::process().snapshot();
  const obs::HistogramSummary* detection =
      full.histogram("mig.liveness.detection_seconds");
  ASSERT_NE(detection, nullptr);
  ASSERT_GE(detection->count, 1u);
  EXPECT_LT(detection->max, 3.0);

  // The aborted transaction still has exactly one owner: the source.
  ASSERT_NE(outcomes[kVictim].report.txn_id, 0u);
  const mig::RecoveryVerdict verdict =
      mig::Coordinator::recover(journal_dir, outcomes[kVictim].report.txn_id);
  EXPECT_EQ(verdict.owner, mig::TxnOwner::Source);
  EXPECT_FALSE(verdict.completed);
}

TEST(ChaosSoak, AdmissionControlAnswersBusyInsteadOfQueueing) {
  std::vector<apps::BitonicResult> results(kSessions);
  std::vector<SessionJob> jobs(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    jobs[i].options = bitonic_options(kSeeds[i], &results[i]);
    jobs[i].est_state_bytes = 1000;
  }

  FleetOptions fleet;
  fleet.supervise = true;
  fleet.liveness = soak_liveness();
  fleet.max_sessions = 3;
  fleet.byte_budget = 10000;  // slots bind first here

  const std::vector<SessionOutcome> outcomes =
      migrate_many(jobs, Transport::Memory, fleet);
  ASSERT_EQ(outcomes.size(), static_cast<std::size_t>(kSessions));
  for (int i = 0; i < kSessions; ++i) {
    SCOPED_TRACE("session " + std::to_string(i + 1));
    EXPECT_EQ(outcomes[i].session_id, static_cast<std::uint32_t>(i + 1));
    if (i < 3) {
      EXPECT_EQ(outcomes[i].status, SessionStatus::Completed);
      EXPECT_EQ(outcomes[i].report.outcome, MigrationOutcome::Migrated);
      EXPECT_TRUE(results[i].ok());
    } else {
      EXPECT_EQ(outcomes[i].status, SessionStatus::Busy);
      // Never started: the workload closure was never invoked.
      EXPECT_FALSE(results[i].ok());
    }
  }

  // Byte budget binds independently of slots: 6 jobs of 1000 bytes
  // against a 2500-byte budget admits exactly the first two.
  std::vector<apps::BitonicResult> budget_results(kSessions);
  std::vector<SessionJob> budget_jobs(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    budget_jobs[i].options = bitonic_options(kSeeds[i], &budget_results[i]);
    budget_jobs[i].est_state_bytes = 1000;
  }
  FleetOptions tight;
  tight.byte_budget = 2500;
  const std::vector<SessionOutcome> budget_outcomes =
      migrate_many(budget_jobs, Transport::Memory, tight);
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(budget_outcomes[i].status,
              i < 2 ? SessionStatus::Completed : SessionStatus::Busy)
        << "session " << i + 1;
  }
}

TEST(ChaosSoak, RepeatOffenderIsQuarantinedNotRetriedForever) {
  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();

  apps::BitonicResult healthy_result;
  std::vector<SessionJob> jobs(2);
  jobs[0].options = bitonic_options(kSeeds[0], &healthy_result);
  jobs[1].options = bitonic_options(kSeeds[1], nullptr);
  jobs[1].options.program = [](mig::MigContext&) {
    throw std::runtime_error("chaos: this job always dies");
  };

  FleetOptions fleet;
  fleet.supervise = true;
  fleet.liveness = soak_liveness();
  fleet.max_job_failures = 2;

  const std::vector<SessionOutcome> outcomes =
      migrate_many(jobs, Transport::Memory, fleet);
  ASSERT_EQ(outcomes.size(), 2u);

  // The healthy sibling is untouched by its neighbor's quarantine.
  EXPECT_EQ(outcomes[0].status, SessionStatus::Completed);
  EXPECT_EQ(outcomes[0].report.outcome, MigrationOutcome::Migrated);
  EXPECT_TRUE(healthy_result.ok());

  // The offender got exactly max_job_failures attempts, each recorded,
  // then the Poisoned verdict instead of an infinite retry loop.
  EXPECT_EQ(outcomes[1].status, SessionStatus::Poisoned);
  ASSERT_EQ(outcomes[1].failure_causes.size(), 2u);
  EXPECT_NE(outcomes[1].failure_causes[0].find("always dies"), std::string::npos);

  const obs::MetricsSnapshot delta =
      obs::Registry::process().snapshot().delta_since(before);
  EXPECT_GE(delta.counter("sched.fleet.poisoned"), 1u);
  EXPECT_GE(delta.counter("sched.fleet.job_retries"), 1u);
}

TEST(ChaosSoak, LegacyContractStillRethrowsWithoutQuarantine) {
  std::vector<SessionJob> jobs(1);
  jobs[0].options = bitonic_options(kSeeds[0], nullptr);
  jobs[0].options.program = [](mig::MigContext&) {
    throw std::runtime_error("chaos: fatal");
  };
  // No FleetOptions: the pre-fleet overload must keep its throwing
  // contract bit-for-bit.
  EXPECT_THROW(migrate_many(jobs, Transport::Memory), std::runtime_error);
}

// --- journal GC vs live sessions -----------------------------------------
// gc_completed_txn_journals() shares a directory with sessions that are
// still streaming, disconnected, or in doubt. Its contract: a journal
// whose transaction has not logged completion is never collected, no
// matter how often the sweeper runs — a premature unlink would erase the
// watermark a resume (or a failover's arbitration) depends on.

TEST(JournalGc, ABeginOnlyJournalSurvivesEverySweep) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / ("hpm_gc_static_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Transaction A is mid-flight: intent opened, no decision yet. Its
  // Begin record IS the live watermark recovery replays from.
  constexpr std::uint64_t kLive = 7001;
  const std::string live_src = dir + "/" + mig::keyed_source_journal_name(kLive);
  {
    mig::Journal j(live_src);
    j.append({mig::JournalRecordType::Begin, kLive, 0, 1, "in flight"});
  }
  // Transaction B ran to completion on both sides.
  constexpr std::uint64_t kDone = 7002;
  {
    mig::Journal s(dir + "/" + mig::keyed_source_journal_name(kDone));
    s.append({mig::JournalRecordType::Begin, kDone, 9, 1, ""});
    s.append({mig::JournalRecordType::Commit, kDone, 9, 1, ""});
    s.append({mig::JournalRecordType::Done, kDone, 9, 1, ""});
    mig::Journal d(dir + "/" + mig::keyed_dest_journal_name(kDone));
    d.append({mig::JournalRecordType::Begin, kDone, 9, 1, ""});
    d.append({mig::JournalRecordType::Prepared, kDone, 9, 1, ""});
    d.append({mig::JournalRecordType::Committed, kDone, 9, 1, ""});
  }

  const std::vector<std::uint64_t> first = mig::gc_completed_txn_journals(dir);
  ASSERT_EQ(first, std::vector<std::uint64_t>{kDone});
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(mig::gc_completed_txn_journals(dir).empty())
        << "sweep " << i << " collected something with txn " << kLive
        << " still live (seed " << chaos_seed() << ")";
    EXPECT_TRUE(fs::exists(live_src));
  }

  // The moment A completes it becomes sweepable — and only then.
  {
    mig::Journal j(live_src);
    j.append({mig::JournalRecordType::Commit, kLive, 0, 1, ""});
    j.append({mig::JournalRecordType::Done, kLive, 0, 1, ""});
  }
  EXPECT_EQ(mig::gc_completed_txn_journals(dir), std::vector<std::uint64_t>{kLive});
  EXPECT_FALSE(fs::exists(live_src));
  fs::remove_all(dir);
}

TEST(JournalGc, RacingASweeperAgainstAResumableSessionLosesGracefully) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / ("hpm_gc_race_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);

  // A resumable routed migration that provably spends time with a live
  // watermark: its port is severed mid-stream, the session reconnects
  // and resumes from the acked chunk. Only the routed path writes the
  // keyed journal names ("source-<txn>.journal") the sweeper manages —
  // run_migration's exclusive pair is outside GC's jurisdiction by
  // design. The sweeper hammers the directory the whole time.
  constexpr std::uint64_t kTxn = 7100;
  apps::BitonicResult result;
  std::vector<SessionJob> jobs(1);
  jobs[0].options = bitonic_options(kSeeds[0], &result);
  jobs[0].options.journal_dir = dir;
  jobs[0].options.txn_id = kTxn;
  jobs[0].options.max_retries = 2;
  jobs[0].options.ack_every_chunks = 1;
  jobs[0].sever_after_frames = 12;  // mid-stream of ~47 chunks

  std::atomic<bool> done{false};
  std::atomic<int> swept_live{0};
  std::thread sweeper([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (const std::uint64_t txn : mig::gc_completed_txn_journals(dir)) {
        if (txn == kTxn) swept_live.fetch_add(1);
      }
    }
  });
  const std::vector<SessionOutcome> outcomes =
      migrate_many(jobs, Transport::Memory);
  done.store(true, std::memory_order_release);
  sweeper.join();

  // The sweeper never got in the way: the severance was resumed, the
  // handoff committed, and the restored state matches ground truth.
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, SessionStatus::Completed);
  EXPECT_EQ(outcomes[0].report.outcome, MigrationOutcome::Migrated)
      << "seed " << chaos_seed() << ": outcome "
      << mig::outcome_name(outcomes[0].report.outcome);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.sum_after, serial_sum(kSeeds[0]));

  // While the watermark was live the journal was untouchable; completion
  // is the only thing that makes it sweepable, and then exactly once —
  // either the hammer caught the completed pair, or our final sweep does.
  const std::vector<std::uint64_t> final_sweep = mig::gc_completed_txn_journals(dir);
  const int total =
      swept_live.load() + static_cast<int>(std::count(final_sweep.begin(),
                                                      final_sweep.end(), kTxn));
  EXPECT_EQ(total, 1) << "transaction swept " << total << " times";
  EXPECT_TRUE(mig::gc_completed_txn_journals(dir).empty());
  fs::remove_all(dir);
}

// Declared last on purpose: gtest runs suites in registration order, so
// every soak round above has already fed the process registry when this
// report snapshots it.
TEST(ChaosSoakReport, EmitsFleetBenchJson) {
  const char* path = std::getenv("HPM_CHAOS_JSON");
  if (path == nullptr || *path == '\0') {
    GTEST_SKIP() << "HPM_CHAOS_JSON not set; no report requested";
  }
  const obs::MetricsSnapshot snap = obs::Registry::process().snapshot();
  bench::BenchReport report("chaos_soak", /*smoke=*/false);
  // Reproducibility: the seed that drove this soak's fault schedule rides
  // along in the report, so a regression spotted in CI artifacts can be
  // replayed exactly (HPM_CHAOS_SEED).
  report.add("chaos.seed", static_cast<double>(chaos_seed()), "seed");
  report.add("liveness.pings", static_cast<double>(snap.counter("mig.liveness.pings")),
             "count");
  report.add("liveness.pongs", static_cast<double>(snap.counter("mig.liveness.pongs")),
             "count");
  report.add("liveness.sessions_wedged",
             static_cast<double>(snap.counter("mig.liveness.sessions_wedged")), "count");
  report.add("fleet.busy_rejections",
             static_cast<double>(snap.counter("sched.fleet.busy_rejections")), "count");
  report.add("fleet.poisoned", static_cast<double>(snap.counter("sched.fleet.poisoned")),
             "count");
  report.add("failover.triggered",
             static_cast<double>(snap.counter("mig.failover.triggered")), "count");
  report.add("failover.redirects",
             static_cast<double>(snap.counter("mig.failover.redirects")), "count");
  report.add("failover.fenced",
             static_cast<double>(snap.counter("mig.failover.fenced")), "count");
  report.add_percentiles("mig.liveness.detection_seconds");
  report.add_percentiles("mig.liveness.rtt_seconds");
  // Failover downtime (decision → standby streaming again). Rows appear
  // once any suite in this process exercised a redirect.
  report.add_percentiles("mig.failover.downtime_seconds");
  ASSERT_TRUE(report.write(path));
}

}  // namespace
}  // namespace hpm::sched
