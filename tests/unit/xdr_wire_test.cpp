// Canonical wire encoder/decoder: byte-level format, bounds, errors.
#include <gtest/gtest.h>

#include "xdr/wire.hpp"

namespace hpm::xdr {
namespace {

TEST(Encoder, IntegersAreBigEndian) {
  Encoder enc;
  enc.put_u16(0x1234);
  enc.put_u32(0xA1B2C3D4);
  enc.put_u64(0x0102030405060708ull);
  const Bytes& b = enc.bytes();
  ASSERT_EQ(b.size(), 14u);
  EXPECT_EQ(b[0], 0x12);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0xA1);
  EXPECT_EQ(b[5], 0xD4);
  EXPECT_EQ(b[6], 0x01);
  EXPECT_EQ(b[13], 0x08);
}

TEST(Encoder, SignedValuesRoundTripThroughTwosComplement) {
  Encoder enc;
  enc.put_i8(-1);
  enc.put_i16(-2);
  enc.put_i32(-3);
  enc.put_i64(-4);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_i8(), -1);
  EXPECT_EQ(dec.get_i16(), -2);
  EXPECT_EQ(dec.get_i32(), -3);
  EXPECT_EQ(dec.get_i64(), -4);
}

TEST(Encoder, FloatsUseIeeeBitImages) {
  Encoder enc;
  enc.put_f32(1.0f);
  const Bytes& b = enc.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x3F);  // 1.0f = 0x3F800000 big-endian
  EXPECT_EQ(b[1], 0x80);
  EXPECT_EQ(b[2], 0x00);
  EXPECT_EQ(b[3], 0x00);
}

TEST(Encoder, StringsAreLengthPrefixed) {
  Encoder enc;
  enc.put_string("hpm");
  const Bytes& b = enc.bytes();
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[3], 3u);
  EXPECT_EQ(b[4], 'h');
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "hpm");
}

TEST(Encoder, EmptyStringRoundTrips) {
  Encoder enc;
  enc.put_string("");
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_TRUE(dec.at_end());
}

TEST(Encoder, PatchU32RewritesInPlace) {
  Encoder enc;
  enc.put_u32(0);
  enc.put_u8(0xAA);
  enc.patch_u32(0, 0xDEADBEEF);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.get_u8(), 0xAA);
}

TEST(Encoder, PatchBeyondEndThrows) {
  Encoder enc;
  enc.put_u16(1);
  EXPECT_THROW(enc.patch_u32(0, 1), WireError);
}

TEST(Decoder, ReadPastEndThrowsWireError) {
  Encoder enc;
  enc.put_u16(7);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0u);
  EXPECT_EQ(dec.get_u8(), 7u);
  EXPECT_THROW(dec.get_u8(), WireError);
}

TEST(Decoder, TruncatedStringThrows) {
  Encoder enc;
  enc.put_u32(100);  // claims 100 bytes follow
  enc.put_u8('x');
  Decoder dec(enc.bytes());
  EXPECT_THROW(dec.get_string(), WireError);
}

TEST(Decoder, PeekDoesNotConsume) {
  Encoder enc;
  enc.put_u8(42);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.peek_u8(), 42u);
  EXPECT_EQ(dec.position(), 0u);
  EXPECT_EQ(dec.get_u8(), 42u);
  EXPECT_TRUE(dec.at_end());
  EXPECT_THROW(dec.peek_u8(), WireError);
}

TEST(Decoder, GetBytesIsExact) {
  Encoder enc;
  const char payload[] = "abcdef";
  enc.put_bytes(payload, 6);
  Decoder dec(enc.bytes());
  char out[6] = {};
  dec.get_bytes(out, 6);
  EXPECT_EQ(std::string(out, 6), "abcdef");
  EXPECT_THROW(dec.get_bytes(out, 1), WireError);
}

TEST(Decoder, RemainingTracksPosition) {
  Encoder enc;
  enc.put_u64(1);
  enc.put_u32(2);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.remaining(), 12u);
  dec.get_u64();
  EXPECT_EQ(dec.remaining(), 4u);
  dec.get_u32();
  EXPECT_EQ(dec.remaining(), 0u);
  EXPECT_TRUE(dec.at_end());
}

/// Round-trip sweep over interesting 64-bit values.
class WireValueSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireValueSweep, U64RoundTrips) {
  Encoder enc;
  enc.put_u64(GetParam());
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u64(), GetParam());
}

TEST_P(WireValueSweep, I64RoundTrips) {
  const auto v = static_cast<std::int64_t>(GetParam());
  Encoder enc;
  enc.put_i64(v);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_i64(), v);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, WireValueSweep,
                         ::testing::Values(0ull, 1ull, 0x7Full, 0x80ull, 0xFFull, 0x100ull,
                                           0x7FFFull, 0x8000ull, 0xFFFFFFFFull,
                                           0x100000000ull, 0x7FFFFFFFFFFFFFFFull,
                                           0x8000000000000000ull, 0xFFFFFFFFFFFFFFFFull));

}  // namespace
}  // namespace hpm::xdr
