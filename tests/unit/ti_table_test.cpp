// TypeTable: interning, struct lifecycle, signatures, serialization,
// table reconciliation (adopt_tail).
#include <gtest/gtest.h>

#include "ti/table.hpp"

namespace hpm::ti {
namespace {

using xdr::PrimKind;

TEST(TypeTable, PrimitivesArePreRegisteredWithStableIds) {
  TypeTable t;
  EXPECT_EQ(t.size(), xdr::kNumPrimKinds);
  EXPECT_EQ(t.at(t.primitive(PrimKind::Double)).prim, PrimKind::Double);
  EXPECT_EQ(t.at(t.primitive(PrimKind::Bool)).prim, PrimKind::Bool);
}

TEST(TypeTable, PointerInterningDeduplicates) {
  TypeTable t;
  const TypeId p1 = t.intern_pointer(t.primitive(PrimKind::Int));
  const TypeId p2 = t.intern_pointer(t.primitive(PrimKind::Int));
  const TypeId p3 = t.intern_pointer(t.primitive(PrimKind::Float));
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
  EXPECT_EQ(t.at(p1).kind, TypeKind::Pointer);
}

TEST(TypeTable, ArrayInterningKeysOnElementAndCount) {
  TypeTable t;
  const TypeId a1 = t.intern_array(t.primitive(PrimKind::Int), 10);
  const TypeId a2 = t.intern_array(t.primitive(PrimKind::Int), 10);
  const TypeId a3 = t.intern_array(t.primitive(PrimKind::Int), 11);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, a3);
  EXPECT_THROW(t.intern_array(t.primitive(PrimKind::Int), 0), TypeError);
}

TEST(TypeTable, InvalidIdsAreRejected) {
  TypeTable t;
  EXPECT_THROW(t.at(0), TypeError);
  EXPECT_THROW(t.at(9999), TypeError);
  EXPECT_THROW(t.intern_pointer(9999), TypeError);
}

TEST(TypeTable, StructDeclareDefineLifecycle) {
  TypeTable t;
  const TypeId id = t.declare_struct("node");
  EXPECT_EQ(t.declare_struct("node"), id);  // redeclaration is idempotent
  EXPECT_FALSE(t.at(id).defined);
  t.define_struct(id, {{"data", t.primitive(PrimKind::Float)},
                       {"link", t.intern_pointer(id)}});
  EXPECT_TRUE(t.at(id).defined);
  EXPECT_EQ(t.find_struct("node"), id);
  EXPECT_EQ(t.find_struct("missing"), kInvalidType);
  EXPECT_THROW(t.define_struct(id, {{"x", t.primitive(PrimKind::Int)}}), TypeError);
}

TEST(TypeTable, EmptyStructIsRejected) {
  TypeTable t;
  const TypeId id = t.declare_struct("empty");
  EXPECT_THROW(t.define_struct(id, {}), TypeError);
}

TEST(TypeTable, DirectValueSelfContainmentIsRejected) {
  TypeTable t;
  const TypeId id = t.declare_struct("inf");
  EXPECT_THROW(t.define_struct(id, {{"again", id}}), TypeError);
}

TEST(TypeTable, IndirectValueCycleIsRejected) {
  TypeTable t;
  const TypeId a = t.declare_struct("a");
  const TypeId b = t.declare_struct("b");
  t.define_struct(a, {{"inner", b}});  // b not yet defined: allowed
  EXPECT_THROW(t.define_struct(b, {{"back", a}}), TypeError);
}

TEST(TypeTable, ValueCycleThroughArrayIsRejected) {
  TypeTable t;
  const TypeId s = t.declare_struct("s");
  EXPECT_THROW(t.define_struct(s, {{"arr", t.intern_array(s, 3)}}), TypeError);
}

TEST(TypeTable, PointerBreaksTheCycleCheck) {
  TypeTable t;
  const TypeId a = t.declare_struct("pa");
  const TypeId b = t.declare_struct("pb");
  t.define_struct(a, {{"other", t.intern_pointer(b)}});
  EXPECT_NO_THROW(t.define_struct(b, {{"other", t.intern_pointer(a)}}));
}

TEST(TypeTable, SpellProducesCSpellings) {
  TypeTable t;
  const TypeId node = t.declare_struct("node");
  t.define_struct(node, {{"x", t.primitive(PrimKind::Int)}});
  EXPECT_EQ(t.spell(t.primitive(PrimKind::ULong)), "unsigned long");
  EXPECT_EQ(t.spell(t.intern_pointer(node)), "struct node *");
  EXPECT_EQ(t.spell(t.intern_array(t.primitive(PrimKind::Double), 5)), "double[5]");
  EXPECT_EQ(t.spell(t.intern_pointer(t.intern_array(t.primitive(PrimKind::Int), 10))),
            "int[10] *");
}

TEST(TypeTable, ContainsPointerSeesThroughNesting) {
  TypeTable t;
  EXPECT_FALSE(t.contains_pointer(t.primitive(PrimKind::Double)));
  EXPECT_TRUE(t.contains_pointer(t.intern_pointer(t.primitive(PrimKind::Int))));
  const TypeId plain = t.declare_struct("plain");
  t.define_struct(plain, {{"a", t.primitive(PrimKind::Int)},
                          {"b", t.intern_array(t.primitive(PrimKind::Double), 4)}});
  EXPECT_FALSE(t.contains_pointer(plain));
  const TypeId nested = t.declare_struct("nested");
  t.define_struct(nested, {{"inner", t.intern_array(plain, 2)},
                           {"p", t.intern_pointer(plain)}});
  EXPECT_TRUE(t.contains_pointer(nested));
  EXPECT_TRUE(t.contains_pointer(t.intern_array(nested, 7)));
}

TEST(TypeTable, SelfReferentialStructContainsPointer) {
  TypeTable t;
  const TypeId node = t.declare_struct("node");
  t.define_struct(node, {{"v", t.primitive(PrimKind::Int)},
                         {"next", t.intern_pointer(node)}});
  EXPECT_TRUE(t.contains_pointer(node));
}

TEST(TypeTable, SignatureIsStableAndSensitive) {
  TypeTable t1, t2;
  EXPECT_EQ(t1.signature(), t2.signature());
  const TypeId s1 = t1.declare_struct("s");
  t1.define_struct(s1, {{"x", t1.primitive(PrimKind::Int)}});
  EXPECT_NE(t1.signature(), t2.signature());
  const TypeId s2 = t2.declare_struct("s");
  t2.define_struct(s2, {{"x", t2.primitive(PrimKind::Int)}});
  EXPECT_EQ(t1.signature(), t2.signature());
  // A different field NAME alone must change the signature.
  TypeTable t3;
  const TypeId s3 = t3.declare_struct("s");
  t3.define_struct(s3, {{"y", t3.primitive(PrimKind::Int)}});
  EXPECT_NE(t1.signature(), t3.signature());
}

TEST(TypeTable, EncodeDecodeRoundTripsComplexTables) {
  TypeTable t;
  const TypeId node = t.declare_struct("node");
  t.define_struct(node, {{"data", t.primitive(PrimKind::Float)},
                         {"link", t.intern_pointer(node)}});
  t.intern_array(t.intern_pointer(t.primitive(PrimKind::Int)), 10);
  t.intern_pointer(t.intern_array(node, 3));
  xdr::Encoder enc;
  t.encode(enc);
  xdr::Decoder dec(enc.bytes());
  const TypeTable back = TypeTable::decode(dec);
  EXPECT_EQ(back.signature(), t.signature());
  EXPECT_EQ(back.spell(t.find_struct("node")), "struct node");
}

TEST(TypeTable, DecodeRejectsCorruptKindTag) {
  xdr::Encoder enc;
  enc.put_u32(xdr::kNumPrimKinds + 1);
  enc.put_u8(99);  // bogus TypeKind
  xdr::Decoder dec(enc.bytes());
  EXPECT_THROW(TypeTable::decode(dec), Error);
}

TEST(TypeTable, AdoptTailAppendsSourceExtras) {
  TypeTable src, dst;
  const TypeId s1 = src.declare_struct("s");
  src.define_struct(s1, {{"x", src.primitive(PrimKind::Int)}});
  const TypeId d1 = dst.declare_struct("s");
  dst.define_struct(d1, {{"x", dst.primitive(PrimKind::Int)}});
  // Source interned more types while running.
  src.intern_pointer(s1);
  src.intern_array(src.primitive(PrimKind::Double), 100);
  dst.adopt_tail(src);
  EXPECT_EQ(dst.signature(), src.signature());
}

TEST(TypeTable, AdoptTailRejectsDivergentPrefix) {
  TypeTable src, dst;
  const TypeId s1 = src.declare_struct("s");
  src.define_struct(s1, {{"x", src.primitive(PrimKind::Int)}});
  const TypeId d1 = dst.declare_struct("s");
  dst.define_struct(d1, {{"x", dst.primitive(PrimKind::Long)}});  // differs
  EXPECT_THROW(dst.adopt_tail(src), TypeError);
}

TEST(TypeTable, AdoptTailRejectsSmallerSource) {
  TypeTable src, dst;
  dst.intern_pointer(dst.primitive(PrimKind::Int));
  EXPECT_THROW(dst.adopt_tail(src), TypeError);
}

}  // namespace
}  // namespace hpm::ti
