// Layout engine: natural-alignment layouts across all architecture
// presets, including the padding differences heterogeneous migration
// must bridge.
#include <gtest/gtest.h>

#include "ti/layout.hpp"
#include "xdr/arch.hpp"

namespace hpm::ti {
namespace {

using xdr::PrimKind;

/// The paper's Figure 1 node: { float data; struct node* link; }.
TypeId make_fig1_node(TypeTable& t) {
  const TypeId node = t.declare_struct("node");
  t.define_struct(node, {{"data", t.primitive(PrimKind::Float)},
                         {"link", t.intern_pointer(node)}});
  return node;
}

TEST(Layout, Fig1NodeIs8BytesOnIlp32And16OnLp64) {
  TypeTable t;
  const TypeId node = make_fig1_node(t);
  const LayoutMap sparc(t, xdr::sparc20_solaris());
  EXPECT_EQ(sparc.of(node).size, 8u);
  EXPECT_EQ(sparc.of(node).field_offsets[1], 4u);
  const LayoutMap lp64(t, xdr::x86_64_linux());
  EXPECT_EQ(lp64.of(node).size, 16u);
  EXPECT_EQ(lp64.of(node).field_offsets[1], 8u);
}

TEST(Layout, DoublePaddingDiffersBetweenI386AndSparc) {
  TypeTable t;
  const TypeId s = t.declare_struct("mix");
  t.define_struct(s, {{"c", t.primitive(PrimKind::Char)},
                      {"d", t.primitive(PrimKind::Double)}});
  const LayoutMap i386(t, xdr::i386_linux());
  EXPECT_EQ(i386.of(s).field_offsets[1], 4u);  // double aligned to 4
  EXPECT_EQ(i386.of(s).size, 12u);
  const LayoutMap sparc(t, xdr::sparc20_solaris());
  EXPECT_EQ(sparc.of(s).field_offsets[1], 8u);  // double aligned to 8
  EXPECT_EQ(sparc.of(s).size, 16u);
}

TEST(Layout, TrailingPaddingRoundsToStructAlignment) {
  TypeTable t;
  const TypeId s = t.declare_struct("tail");
  t.define_struct(s, {{"d", t.primitive(PrimKind::Double)},
                      {"c", t.primitive(PrimKind::Char)}});
  const LayoutMap m(t, xdr::sparc20_solaris());
  EXPECT_EQ(m.of(s).size, 16u);
  EXPECT_EQ(m.of(s).align, 8u);
}

TEST(Layout, ArraysMultiplyAndInheritAlignment) {
  TypeTable t;
  const TypeId arr = t.intern_array(t.primitive(PrimKind::Double), 25);
  const LayoutMap m(t, xdr::dec5000_ultrix());
  EXPECT_EQ(m.of(arr).size, 200u);
  EXPECT_EQ(m.of(arr).align, 8u);
}

TEST(Layout, NestedStructsCompose) {
  TypeTable t;
  const TypeId inner = t.declare_struct("inner");
  t.define_struct(inner, {{"s", t.primitive(PrimKind::Short)},
                          {"l", t.primitive(PrimKind::Long)}});
  const TypeId outer = t.declare_struct("outer");
  t.define_struct(outer, {{"c", t.primitive(PrimKind::Char)},
                          {"pair", t.intern_array(inner, 2)},
                          {"p", t.intern_pointer(inner)}});
  const LayoutMap m(t, xdr::sparc20_solaris());  // long=4 align 4
  EXPECT_EQ(m.of(inner).size, 8u);
  EXPECT_EQ(m.of(outer).field_offsets[0], 0u);
  EXPECT_EQ(m.of(outer).field_offsets[1], 4u);
  EXPECT_EQ(m.of(outer).field_offsets[2], 20u);
  EXPECT_EQ(m.of(outer).size, 24u);
}

TEST(Layout, UndefinedStructThrows) {
  TypeTable t;
  const TypeId fwd = t.declare_struct("fwd");
  const LayoutMap m(t, xdr::native_arch());
  EXPECT_THROW(m.of(fwd), TypeError);
  EXPECT_NO_THROW(m.of(t.intern_pointer(fwd)));  // pointer to undefined is fine
}

TEST(Layout, AlignUpHelper) {
  EXPECT_EQ(align_up(0, 8), 0u);
  EXPECT_EQ(align_up(1, 8), 8u);
  EXPECT_EQ(align_up(8, 8), 8u);
  EXPECT_EQ(align_up(9, 4), 12u);
  EXPECT_EQ(align_up(5, 0), 5u);
}

/// Property sweep: on every preset, struct layouts obey the invariants of
/// natural alignment (monotone offsets, no overlap, aligned fields, size
/// multiple of alignment).
class LayoutInvariants : public ::testing::TestWithParam<std::string_view> {};

TEST_P(LayoutInvariants, NaturalAlignmentInvariantsHold) {
  const xdr::ArchDescriptor& arch = xdr::arch_by_name(GetParam());
  TypeTable t;
  const TypeId node = make_fig1_node(t);
  const TypeId s = t.declare_struct("zoo");
  t.define_struct(s, {{"a", t.primitive(PrimKind::Char)},
                      {"b", t.primitive(PrimKind::Double)},
                      {"c", t.primitive(PrimKind::Short)},
                      {"d", t.intern_pointer(node)},
                      {"e", t.intern_array(node, 3)},
                      {"f", t.primitive(PrimKind::LongLong)},
                      {"g", t.primitive(PrimKind::Bool)}});
  const LayoutMap m(t, arch);
  const TypeLayout& sl = m.of(s);
  const TypeInfo& info = t.at(s);
  std::uint64_t prev_end = 0;
  for (std::size_t i = 0; i < info.fields.size(); ++i) {
    const TypeLayout& fl = m.of(info.fields[i].type);
    EXPECT_GE(sl.field_offsets[i], prev_end) << "field " << i << " overlaps";
    EXPECT_EQ(sl.field_offsets[i] % fl.align, 0u) << "field " << i << " misaligned";
    prev_end = sl.field_offsets[i] + fl.size;
  }
  EXPECT_GE(sl.size, prev_end);
  EXPECT_EQ(sl.size % sl.align, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllArchs, LayoutInvariants,
                         ::testing::ValuesIn(xdr::arch_names()));

}  // namespace
}  // namespace hpm::ti
