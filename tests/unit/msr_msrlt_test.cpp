// MSRLT: block tracking, address search, logical ids, visit marking, and
// the statistics counters the complexity experiments rely on.
#include <gtest/gtest.h>

#include "msr/msrlt.hpp"
#include "obs/metrics.hpp"
#include "ti/table.hpp"

namespace hpm::msr {
namespace {

obs::MetricsSnapshot snap() { return obs::Registry::process().snapshot(); }

TEST(Msrlt, RegisterAssignsSegmentTaggedIds) {
  Msrlt t;
  const BlockId g = t.register_block(Segment::Global, 0x1000, 16, 1, 1, "g");
  const BlockId h = t.register_block(Segment::Heap, 0x2000, 16, 1, 1, "h");
  const BlockId s = t.register_block(Segment::Stack, 0x3000, 16, 1, 1, "s");
  EXPECT_EQ(block_segment(g), Segment::Global);
  EXPECT_EQ(block_segment(h), Segment::Heap);
  EXPECT_EQ(block_segment(s), Segment::Stack);
  EXPECT_EQ(t.block_count(), 3u);
  EXPECT_NE(g, h);
}

TEST(Msrlt, SequenceNumbersAreNeverReused) {
  Msrlt t;
  const BlockId first = t.register_block(Segment::Heap, 0x1000, 8, 1, 1, "");
  t.unregister(0x1000);
  const BlockId second = t.register_block(Segment::Heap, 0x1000, 8, 1, 1, "");
  EXPECT_NE(first, second);
  EXPECT_EQ(t.find_id(first), nullptr);
  EXPECT_NE(t.find_id(second), nullptr);
}

TEST(Msrlt, FindContainingHitsInteriorAddresses) {
  Msrlt t;
  const BlockId id = t.register_block(Segment::Heap, 0x1000, 64, 1, 1, "blk");
  EXPECT_EQ(t.find_containing(0x0FFF), nullptr);
  ASSERT_NE(t.find_containing(0x1000), nullptr);
  EXPECT_EQ(t.find_containing(0x1000)->id, id);
  EXPECT_EQ(t.find_containing(0x103F)->id, id);
  EXPECT_EQ(t.find_containing(0x1040), nullptr);
}

TEST(Msrlt, FindContainingAmongManyBlocks) {
  Msrlt t;
  for (int i = 0; i < 100; ++i) {
    t.register_block(Segment::Heap, 0x1000 + i * 0x100, 0x80, 1, 1, "");
  }
  const MemoryBlock* mid = t.find_containing(0x1000 + 57 * 0x100 + 0x7F);
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->base, 0x1000u + 57 * 0x100);
  EXPECT_EQ(t.find_containing(0x1000 + 57 * 0x100 + 0x80), nullptr);  // gap
}

TEST(Msrlt, OverlapsAreRejectedInBothDirections) {
  Msrlt t;
  t.register_block(Segment::Heap, 0x1000, 0x100, 1, 1, "a");
  EXPECT_THROW(t.register_block(Segment::Heap, 0x10FF, 8, 1, 1, "tail"), MsrError);
  EXPECT_THROW(t.register_block(Segment::Heap, 0x0FF9, 8, 1, 1, "head"), MsrError);
  EXPECT_THROW(t.register_block(Segment::Heap, 0x1050, 8, 1, 1, "inside"), MsrError);
  EXPECT_THROW(t.register_block(Segment::Heap, 0x0800, 0x1000, 1, 1, "around"), MsrError);
  EXPECT_NO_THROW(t.register_block(Segment::Heap, 0x1100, 8, 1, 1, "adjacent"));
}

TEST(Msrlt, ZeroSizedBlocksAreRejected) {
  Msrlt t;
  EXPECT_THROW(t.register_block(Segment::Heap, 0x1000, 0, 1, 1, ""), MsrError);
}

TEST(Msrlt, UnregisterUnknownBaseThrows) {
  Msrlt t;
  t.register_block(Segment::Heap, 0x1000, 16, 1, 1, "");
  EXPECT_THROW(t.unregister(0x1001), MsrError);  // interior, not base
  EXPECT_NO_THROW(t.unregister(0x1000));
  EXPECT_THROW(t.unregister(0x1000), MsrError);
}

TEST(Msrlt, RegisterWithIdDetectsCollisions) {
  Msrlt t;
  const BlockId id = make_block_id(Segment::Heap, 77);
  t.register_with_id(id, Segment::Heap, 0x1000, 16, 1, 1, "");
  EXPECT_THROW(t.register_with_id(id, Segment::Heap, 0x2000, 16, 1, 1, ""), MsrError);
  // Locally assigned ids skip past adopted ones.
  const BlockId next = t.register_block(Segment::Heap, 0x3000, 16, 1, 1, "");
  EXPECT_GT(block_seq(next), 77u);
}

TEST(Msrlt, VisitMarkingIsPerTraversal) {
  Msrlt t;
  const BlockId a = t.register_block(Segment::Heap, 0x1000, 16, 1, 1, "");
  const BlockId b = t.register_block(Segment::Heap, 0x2000, 16, 1, 1, "");
  t.begin_traversal();
  EXPECT_TRUE(t.try_mark(a));
  EXPECT_FALSE(t.try_mark(a));  // the duplicate guard
  EXPECT_TRUE(t.try_mark(b));
  t.begin_traversal();  // O(1) epoch bump clears all marks
  EXPECT_TRUE(t.try_mark(a));
  EXPECT_THROW(t.try_mark(make_block_id(Segment::Heap, 999)), MsrError);
}

TEST(Msrlt, RegistryCountsSearchesAndUpdates) {
  const obs::MetricsSnapshot before = snap();
  Msrlt t;
  t.register_block(Segment::Heap, 0x1000, 16, 1, 1, "");
  t.register_block(Segment::Heap, 0x2000, 16, 1, 1, "");
  t.find_containing(0x1008);
  t.find_containing(0x9999);
  const obs::MetricsSnapshot delta = snap().delta_since(before);
  EXPECT_EQ(delta.counter("msr.msrlt.registrations"), 2u);
  EXPECT_EQ(delta.counter("msr.msrlt.searches"), 2u);
  EXPECT_GT(delta.counter("msr.msrlt.search_steps"), 0u);
}

TEST(Msrlt, TrackedBytesFollowRegistrationAndRemoval) {
  Msrlt t;
  EXPECT_EQ(t.tracked_bytes(), 0u);
  t.register_block(Segment::Heap, 0x1000, 48, 1, 1, "");
  t.register_block(Segment::Heap, 0x2000, 16, 1, 1, "");
  EXPECT_EQ(t.tracked_bytes(), 64u);
  t.unregister(0x1000);
  EXPECT_EQ(t.tracked_bytes(), 16u);
}

TEST(Msrlt, MruCacheShortCircuitsRepeatedHits) {
  Msrlt t;
  for (int i = 0; i < 32; ++i) {
    t.register_block(Segment::Heap, 0x1000 + i * 0x100, 0x80, 1, 1, "");
  }
  const obs::MetricsSnapshot before = snap();
  // First probe fills the MRU slot; the rest of the block's interior
  // resolves from it with exactly one step per search.
  for (int i = 0; i < 16; ++i) {
    ASSERT_NE(t.find_containing(0x1500 + i), nullptr);
  }
  const obs::MetricsSnapshot delta = snap().delta_since(before);
  EXPECT_EQ(delta.counter("msr.msrlt.searches"), 16u);
  EXPECT_EQ(delta.counter("msr.msrlt.cache_hits"), 15u);

  // Unregistering any block drops the cached entry (map nodes are stable,
  // but a stale hit after removal would be a use-after-free).
  t.unregister(0x1500);
  const obs::MetricsSnapshot before2 = snap();
  EXPECT_EQ(t.find_containing(0x1500), nullptr);
  EXPECT_NE(t.find_containing(0x1600), nullptr);
  EXPECT_EQ(snap().delta_since(before2).counter("msr.msrlt.cache_hits"), 0u);
}

TEST(Msrlt, LinearScanStrategyGivesIdenticalAnswers) {
  Msrlt ordered(SearchStrategy::OrderedMap);
  Msrlt linear(SearchStrategy::LinearScan);
  for (int i = 0; i < 64; ++i) {
    ordered.register_block(Segment::Heap, 0x1000 + i * 0x40, 0x20, 1, 1, "");
    linear.register_block(Segment::Heap, 0x1000 + i * 0x40, 0x20, 1, 1, "");
  }
  const obs::MetricsSnapshot s0 = snap();
  for (Address a = 0xF00; a < 0x2100; a += 7) {
    const MemoryBlock* x = ordered.find_containing(a);
    ASSERT_EQ(x != nullptr, (a >= 0x1000 && a < 0x2000 && (a & 0x3F) < 0x20)) << a;
  }
  const obs::MetricsSnapshot s1 = snap();
  for (Address a = 0xF00; a < 0x2100; a += 7) {
    const MemoryBlock* x = ordered.find_containing(a);
    const MemoryBlock* y = linear.find_containing(a);
    ASSERT_EQ(x == nullptr, y == nullptr) << "addr " << a;
    if (x != nullptr) {
      EXPECT_EQ(x->id, y->id);
    }
  }
  const obs::MetricsSnapshot s2 = snap();
  // The linear strategy's step count is what the ablation bench plots:
  // the second loop ran BOTH strategies, so its step delta minus the
  // ordered-only baseline is the linear share — strictly larger.
  const std::uint64_t ordered_steps = s1.delta_since(s0).counter("msr.msrlt.search_steps");
  const std::uint64_t both_steps = s2.delta_since(s1).counter("msr.msrlt.search_steps");
  EXPECT_GT(both_steps - ordered_steps, ordered_steps);
}

}  // namespace
}  // namespace hpm::msr
