// MSRLT: block tracking, address search, logical ids, visit marking, and
// the statistics counters the complexity experiments rely on.
#include <gtest/gtest.h>

#include "msr/msrlt.hpp"
#include "ti/table.hpp"

namespace hpm::msr {
namespace {

TEST(Msrlt, RegisterAssignsSegmentTaggedIds) {
  Msrlt t;
  const BlockId g = t.register_block(Segment::Global, 0x1000, 16, 1, 1, "g");
  const BlockId h = t.register_block(Segment::Heap, 0x2000, 16, 1, 1, "h");
  const BlockId s = t.register_block(Segment::Stack, 0x3000, 16, 1, 1, "s");
  EXPECT_EQ(block_segment(g), Segment::Global);
  EXPECT_EQ(block_segment(h), Segment::Heap);
  EXPECT_EQ(block_segment(s), Segment::Stack);
  EXPECT_EQ(t.block_count(), 3u);
  EXPECT_NE(g, h);
}

TEST(Msrlt, SequenceNumbersAreNeverReused) {
  Msrlt t;
  const BlockId first = t.register_block(Segment::Heap, 0x1000, 8, 1, 1, "");
  t.unregister(0x1000);
  const BlockId second = t.register_block(Segment::Heap, 0x1000, 8, 1, 1, "");
  EXPECT_NE(first, second);
  EXPECT_EQ(t.find_id(first), nullptr);
  EXPECT_NE(t.find_id(second), nullptr);
}

TEST(Msrlt, FindContainingHitsInteriorAddresses) {
  Msrlt t;
  const BlockId id = t.register_block(Segment::Heap, 0x1000, 64, 1, 1, "blk");
  EXPECT_EQ(t.find_containing(0x0FFF), nullptr);
  ASSERT_NE(t.find_containing(0x1000), nullptr);
  EXPECT_EQ(t.find_containing(0x1000)->id, id);
  EXPECT_EQ(t.find_containing(0x103F)->id, id);
  EXPECT_EQ(t.find_containing(0x1040), nullptr);
}

TEST(Msrlt, FindContainingAmongManyBlocks) {
  Msrlt t;
  for (int i = 0; i < 100; ++i) {
    t.register_block(Segment::Heap, 0x1000 + i * 0x100, 0x80, 1, 1, "");
  }
  const MemoryBlock* mid = t.find_containing(0x1000 + 57 * 0x100 + 0x7F);
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->base, 0x1000u + 57 * 0x100);
  EXPECT_EQ(t.find_containing(0x1000 + 57 * 0x100 + 0x80), nullptr);  // gap
}

TEST(Msrlt, OverlapsAreRejectedInBothDirections) {
  Msrlt t;
  t.register_block(Segment::Heap, 0x1000, 0x100, 1, 1, "a");
  EXPECT_THROW(t.register_block(Segment::Heap, 0x10FF, 8, 1, 1, "tail"), MsrError);
  EXPECT_THROW(t.register_block(Segment::Heap, 0x0FF9, 8, 1, 1, "head"), MsrError);
  EXPECT_THROW(t.register_block(Segment::Heap, 0x1050, 8, 1, 1, "inside"), MsrError);
  EXPECT_THROW(t.register_block(Segment::Heap, 0x0800, 0x1000, 1, 1, "around"), MsrError);
  EXPECT_NO_THROW(t.register_block(Segment::Heap, 0x1100, 8, 1, 1, "adjacent"));
}

TEST(Msrlt, ZeroSizedBlocksAreRejected) {
  Msrlt t;
  EXPECT_THROW(t.register_block(Segment::Heap, 0x1000, 0, 1, 1, ""), MsrError);
}

TEST(Msrlt, UnregisterUnknownBaseThrows) {
  Msrlt t;
  t.register_block(Segment::Heap, 0x1000, 16, 1, 1, "");
  EXPECT_THROW(t.unregister(0x1001), MsrError);  // interior, not base
  EXPECT_NO_THROW(t.unregister(0x1000));
  EXPECT_THROW(t.unregister(0x1000), MsrError);
}

TEST(Msrlt, RegisterWithIdDetectsCollisions) {
  Msrlt t;
  const BlockId id = make_block_id(Segment::Heap, 77);
  t.register_with_id(id, Segment::Heap, 0x1000, 16, 1, 1, "");
  EXPECT_THROW(t.register_with_id(id, Segment::Heap, 0x2000, 16, 1, 1, ""), MsrError);
  // Locally assigned ids skip past adopted ones.
  const BlockId next = t.register_block(Segment::Heap, 0x3000, 16, 1, 1, "");
  EXPECT_GT(block_seq(next), 77u);
}

TEST(Msrlt, VisitMarkingIsPerTraversal) {
  Msrlt t;
  const BlockId a = t.register_block(Segment::Heap, 0x1000, 16, 1, 1, "");
  const BlockId b = t.register_block(Segment::Heap, 0x2000, 16, 1, 1, "");
  t.begin_traversal();
  EXPECT_TRUE(t.try_mark(a));
  EXPECT_FALSE(t.try_mark(a));  // the duplicate guard
  EXPECT_TRUE(t.try_mark(b));
  t.begin_traversal();  // O(1) epoch bump clears all marks
  EXPECT_TRUE(t.try_mark(a));
  EXPECT_THROW(t.try_mark(make_block_id(Segment::Heap, 999)), MsrError);
}

TEST(Msrlt, StatsCountSearchesAndUpdates) {
  Msrlt t;
  t.register_block(Segment::Heap, 0x1000, 16, 1, 1, "");
  t.register_block(Segment::Heap, 0x2000, 16, 1, 1, "");
  t.find_containing(0x1008);
  t.find_containing(0x9999);
  EXPECT_EQ(t.stats().registrations, 2u);
  EXPECT_EQ(t.stats().searches, 2u);
  EXPECT_GT(t.stats().search_steps, 0u);
  t.reset_stats();
  EXPECT_EQ(t.stats().searches, 0u);
}

TEST(Msrlt, LinearScanStrategyGivesIdenticalAnswers) {
  Msrlt ordered(SearchStrategy::OrderedMap);
  Msrlt linear(SearchStrategy::LinearScan);
  for (int i = 0; i < 64; ++i) {
    ordered.register_block(Segment::Heap, 0x1000 + i * 0x40, 0x20, 1, 1, "");
    linear.register_block(Segment::Heap, 0x1000 + i * 0x40, 0x20, 1, 1, "");
  }
  for (Address a = 0xF00; a < 0x2100; a += 7) {
    const MemoryBlock* x = ordered.find_containing(a);
    const MemoryBlock* y = linear.find_containing(a);
    ASSERT_EQ(x == nullptr, y == nullptr) << "addr " << a;
    if (x != nullptr) {
      EXPECT_EQ(x->id, y->id);
    }
  }
  // The linear strategy's step count is what the ablation bench plots.
  EXPECT_GT(linear.stats().search_steps, ordered.stats().search_steps);
}

}  // namespace
}  // namespace hpm::msr
