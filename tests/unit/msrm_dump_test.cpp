// msrm::dump_stream: the stream inspector/validator.
#include <gtest/gtest.h>

#include "apps/test_pointer.hpp"
#include "msrm/dump.hpp"
#include "msrm/execstate.hpp"

namespace hpm::msrm {
namespace {

Bytes collect_test_pointer_stream() {
  ti::TypeTable types;
  apps::test_pointer_register_types(types);
  mig::MigContext ctx(types);
  ctx.set_migrate_at_poll(1);
  apps::TestPointerResult result;
  try {
    apps::test_pointer_program(ctx, 5, &result);
  } catch (const mig::MigrationExit&) {
    return ctx.stream();
  }
  ADD_FAILURE() << "program did not migrate";
  return {};
}

TEST(DumpStream, RendersHeaderFramesAndRecords) {
  const Bytes stream = collect_test_pointer_stream();
  const std::string text = dump_stream(stream);
  EXPECT_NE(text.find("source arch native"), std::string::npos);
  EXPECT_NE(text.find("frame[0] tp_main resume@1"), std::string::npos);
  EXPECT_NE(text.find("global first : struct node *"), std::string::npos);
  EXPECT_NE(text.find("var parr10 : int[10] *"), std::string::npos);
  EXPECT_NE(text.find("new block="), std::string::npos);
  EXPECT_NE(text.find("ref block="), std::string::npos);
  EXPECT_NE(text.find("total blocks on wire:"), std::string::npos);
}

TEST(DumpStream, ShowValuesRendersLeaves) {
  const Bytes stream = collect_test_pointer_stream();
  DumpOptions options;
  options.show_primitive_values = true;
  const std::string text = dump_stream(stream, options);
  // pint holds 42 + 5 % 100 = 47.
  EXPECT_NE(text.find("int 47"), std::string::npos);
  EXPECT_NE(text.find("float"), std::string::npos);
}

TEST(DumpStream, CompactModeSummarizesPrimitiveRuns) {
  const Bytes stream = collect_test_pointer_stream();
  const std::string text = dump_stream(stream);
  EXPECT_NE(text.find("primitive leaves)"), std::string::npos);
}

TEST(DumpStream, TruncationCapBoundsOutputButStillValidates) {
  const Bytes stream = collect_test_pointer_stream();
  DumpOptions options;
  options.max_blocks = 3;
  const std::string text = dump_stream(stream, options);
  EXPECT_NE(text.find("truncated"), std::string::npos);
  EXPECT_LT(text.size(), dump_stream(stream).size());
  EXPECT_NE(text.find("total blocks on wire:"), std::string::npos);
}

TEST(DumpStream, RejectsCorruptStreams) {
  Bytes stream = collect_test_pointer_stream();
  stream[stream.size() / 2] ^= 0x5A;
  EXPECT_THROW(dump_stream(stream), WireError);
}

TEST(ExecState, EncodeDecodeRoundTrips) {
  ExecutionState state;
  state.frames.push_back(SavedFrame{"main", 7, {SavedVar{"x", 6, 1, 42}}});
  state.frames.push_back(
      SavedFrame{"leaf", 2, {SavedVar{"p", 15, 1, 43}, SavedVar{"arr", 3, 10, 44}}});
  state.globals.push_back(SavedVar{"g", 6, 1, 45});
  xdr::Encoder enc;
  state.encode(enc);
  xdr::Decoder dec(enc.bytes());
  const ExecutionState back = ExecutionState::decode(dec);
  ASSERT_EQ(back.frames.size(), 2u);
  EXPECT_EQ(back.frames[0].func, "main");
  EXPECT_EQ(back.frames[0].resume_point, 7u);
  EXPECT_EQ(back.frames[1].vars[1].name, "arr");
  EXPECT_EQ(back.frames[1].vars[1].count, 10u);
  ASSERT_EQ(back.globals.size(), 1u);
  EXPECT_EQ(back.globals[0].source_block, 45u);
  EXPECT_TRUE(dec.at_end());
}

TEST(ExecState, EmptyStateRoundTrips) {
  ExecutionState state;
  xdr::Encoder enc;
  state.encode(enc);
  xdr::Decoder dec(enc.bytes());
  const ExecutionState back = ExecutionState::decode(dec);
  EXPECT_TRUE(back.frames.empty());
  EXPECT_TRUE(back.globals.empty());
}

}  // namespace
}  // namespace hpm::msrm
