// Architecture-aware primitive conversion: machine-specific layouts,
// sign extension, overflow detection, float bit preservation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "xdr/value.hpp"

namespace hpm::xdr {
namespace {

TEST(ReadRaw, LittleEndianIntSignExtends) {
  const std::uint8_t bytes[4] = {0xFE, 0xFF, 0xFF, 0xFF};  // -2 LE
  const PrimValue v = read_raw(bytes, dec5000_ultrix(), PrimKind::Int);
  EXPECT_EQ(v.s, -2);
}

TEST(ReadRaw, BigEndianIntSignExtends) {
  const std::uint8_t bytes[4] = {0xFF, 0xFF, 0xFF, 0xFE};  // -2 BE
  const PrimValue v = read_raw(bytes, sparc20_solaris(), PrimKind::Int);
  EXPECT_EQ(v.s, -2);
}

TEST(ReadRaw, LongIs4BytesOnIlp32And8OnLp64) {
  std::uint8_t bytes[8] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  const PrimValue v32 = read_raw(bytes, sparc20_solaris(), PrimKind::Long);
  EXPECT_EQ(v32.s, 0x01020304);
  const PrimValue v64 = read_raw(bytes, generic_be64(), PrimKind::Long);
  EXPECT_EQ(v64.s, 0x0102030405060708);
}

TEST(WriteRaw, ByteOrderMatchesArch) {
  std::uint8_t le[4] = {};
  std::uint8_t be[4] = {};
  const PrimValue v = PrimValue::of_signed(PrimKind::Int, 0x11223344);
  write_raw(le, dec5000_ultrix(), PrimKind::Int, v);
  write_raw(be, sparc20_solaris(), PrimKind::Int, v);
  EXPECT_EQ(le[0], 0x44);
  EXPECT_EQ(le[3], 0x11);
  EXPECT_EQ(be[0], 0x11);
  EXPECT_EQ(be[3], 0x44);
}

TEST(WriteRaw, SignedOverflowOnNarrowLongThrows) {
  std::uint8_t buf[8] = {};
  const PrimValue big = PrimValue::of_signed(PrimKind::Long, 0x100000000ll);
  EXPECT_THROW(write_raw(buf, sparc20_solaris(), PrimKind::Long, big), ConversionError);
  EXPECT_NO_THROW(write_raw(buf, generic_be64(), PrimKind::Long, big));
}

TEST(WriteRaw, SignedUnderflowThrows) {
  std::uint8_t buf[8] = {};
  const PrimValue low = PrimValue::of_signed(PrimKind::Long, -0x80000001ll);
  EXPECT_THROW(write_raw(buf, dec5000_ultrix(), PrimKind::Long, low), ConversionError);
  const PrimValue min32 = PrimValue::of_signed(PrimKind::Long, -0x80000000ll);
  EXPECT_NO_THROW(write_raw(buf, dec5000_ultrix(), PrimKind::Long, min32));
}

TEST(WriteRaw, UnsignedOverflowThrows) {
  std::uint8_t buf[8] = {};
  const PrimValue big = PrimValue::of_unsigned(PrimKind::ULong, 0x100000000ull);
  EXPECT_THROW(write_raw(buf, ultra5_solaris(), PrimKind::ULong, big), ConversionError);
  const PrimValue max32 = PrimValue::of_unsigned(PrimKind::ULong, 0xFFFFFFFFull);
  EXPECT_NO_THROW(write_raw(buf, ultra5_solaris(), PrimKind::ULong, max32));
}

TEST(FloatConversion, NanPayloadSurvivesDoubleRoundTrip) {
  std::uint8_t buf[8] = {};
  double weird_nan;
  std::uint64_t nan_bits = 0x7FF8DEADBEEF0001ull;
  std::memcpy(&weird_nan, &nan_bits, 8);
  write_raw(buf, sparc20_solaris(), PrimKind::Double, PrimValue::of_float(PrimKind::Double, weird_nan));
  const PrimValue back = read_raw(buf, sparc20_solaris(), PrimKind::Double);
  std::uint64_t back_bits;
  std::memcpy(&back_bits, &back.f, 8);
  EXPECT_EQ(back_bits, nan_bits);
}

TEST(FloatConversion, InfinityAndNegativeZeroSurvive) {
  std::uint8_t buf[8] = {};
  for (double v : {std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(), -0.0,
                   std::numeric_limits<double>::denorm_min()}) {
    write_raw(buf, dec5000_ultrix(), PrimKind::Double, PrimValue::of_float(PrimKind::Double, v));
    const PrimValue back = read_raw(buf, dec5000_ultrix(), PrimKind::Double);
    EXPECT_EQ(std::signbit(back.f), std::signbit(v));
    if (std::isinf(v)) {
      EXPECT_TRUE(std::isinf(back.f));
    } else {
      EXPECT_EQ(back.f, v);
    }
  }
}

TEST(FloatConversion, FloatKeepsSinglePrecisionBits) {
  std::uint8_t buf[4] = {};
  const float f = 1.0f / 3.0f;
  write_raw(buf, sparc20_solaris(), PrimKind::Float, PrimValue::of_float(PrimKind::Float, f));
  const PrimValue back = read_raw(buf, sparc20_solaris(), PrimKind::Float);
  EXPECT_EQ(static_cast<float>(back.f), f);
}

TEST(PointerCell, WidthAndOrderFollowArch) {
  std::uint8_t buf[8] = {};
  write_pointer_cell(buf, sparc20_solaris(), 0x1234);
  EXPECT_EQ(buf[0], 0x00);
  EXPECT_EQ(buf[2], 0x12);
  EXPECT_EQ(buf[3], 0x34);
  EXPECT_EQ(read_pointer_cell(buf, sparc20_solaris()), 0x1234u);
  EXPECT_THROW(write_pointer_cell(buf, sparc20_solaris(), 0x100000000ull), ConversionError);
  EXPECT_NO_THROW(write_pointer_cell(buf, x86_64_linux(), 0x100000000ull));
}

/// Canonical codec round trip for every primitive kind.
class CanonicalSweep : public ::testing::TestWithParam<int> {};

TEST_P(CanonicalSweep, CanonicalRoundTripPreservesValue) {
  const auto kind = static_cast<PrimKind>(GetParam());
  PrimValue v;
  switch (prim_class(kind)) {
    case PrimClass::Floating:
      v = PrimValue::of_float(kind, kind == PrimKind::Float ? 2.5 : -1234.5678);
      break;
    case PrimClass::Unsigned:
      v = PrimValue::of_unsigned(kind, (1ull << (canonical_size(kind) * 8 - 1)) + 3);
      break;
    case PrimClass::Signed:
      v = PrimValue::of_signed(kind, -static_cast<std::int64_t>(canonical_size(kind)) * 7);
      break;
  }
  Encoder enc;
  encode_canonical(enc, v);
  EXPECT_EQ(enc.size(), canonical_size(kind));
  Decoder dec(enc.bytes());
  const PrimValue back = decode_canonical(dec, kind);
  EXPECT_TRUE(back.identical(v)) << prim_name(kind);
}

TEST_P(CanonicalSweep, MachineSpecificRoundTripAcrossEndianness) {
  // Write on "DEC", transport canonically, write on "SPARC", read back:
  // the value must be preserved through all three representations.
  const auto kind = static_cast<PrimKind>(GetParam());
  PrimValue v;
  switch (prim_class(kind)) {
    case PrimClass::Floating:
      v = PrimValue::of_float(kind, 3.140625);  // exact in float and double
      break;
    case PrimClass::Unsigned:
      v = PrimValue::of_unsigned(kind, 0x5Au);
      break;
    case PrimClass::Signed:
      v = PrimValue::of_signed(kind, -0x5A);
      break;
  }
  std::uint8_t dec_mem[8] = {};
  write_raw(dec_mem, dec5000_ultrix(), kind, v);
  const PrimValue from_dec = read_raw(dec_mem, dec5000_ultrix(), kind);
  Encoder enc;
  encode_canonical(enc, from_dec);
  Decoder dec(enc.bytes());
  const PrimValue wire = decode_canonical(dec, kind);
  std::uint8_t sparc_mem[8] = {};
  write_raw(sparc_mem, sparc20_solaris(), kind, wire);
  const PrimValue from_sparc = read_raw(sparc_mem, sparc20_solaris(), kind);
  EXPECT_TRUE(from_sparc.identical(v)) << prim_name(kind);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CanonicalSweep,
                         ::testing::Range(0, static_cast<int>(kNumPrimKinds)));

}  // namespace
}  // namespace hpm::xdr
