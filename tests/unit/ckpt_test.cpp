// Checkpoint/restart on top of the migration stream.
#include <gtest/gtest.h>

#include <cstdio>

#include "apps/bitonic.hpp"
#include "ckpt/checkpoint.hpp"

namespace hpm::ckpt {
namespace {

struct Accumulator {
  int completed = 0;
  long sum = 0;
};

/// Sums i*i for i in [0, n), polling every step.
void sum_program(mig::MigContext& ctx, int n, Accumulator* out) {
  HPM_FUNCTION(ctx);
  int i;
  long acc;
  HPM_LOCAL(ctx, i);
  HPM_LOCAL(ctx, acc);
  HPM_LOCAL(ctx, n);
  HPM_BODY(ctx);
  acc = 0;
  for (i = 0; i < n; ++i) {
    HPM_POLL(ctx, 1);
    acc += static_cast<long>(i) * i;
  }
  out->completed += 1;
  out->sum = acc;
  HPM_BODY_END(ctx);
}

long expected_sum(int n) {
  long s = 0;
  for (int i = 0; i < n; ++i) s += static_cast<long>(i) * i;
  return s;
}

TEST(Checkpoint, CheckpointAndContinueProducesTheFullResult) {
  const std::string path = "/tmp/hpm_ckpt_test1.ckpt";
  std::remove(path.c_str());
  Accumulator acc;
  const CheckpointInfo info = checkpoint_run(
      [](ti::TypeTable&) {},
      [&acc](mig::MigContext& ctx) { sum_program(ctx, 100, &acc); }, path,
      /*at_poll=*/40, /*sequence=*/7);
  EXPECT_EQ(acc.completed, 1);  // the continued run finished once
  EXPECT_EQ(acc.sum, expected_sum(100));
  EXPECT_EQ(info.sequence, 7u);
  EXPECT_GT(info.state_bytes, 0u);
}

TEST(Checkpoint, RestartResumesFromTheSavedPoint) {
  const std::string path = "/tmp/hpm_ckpt_test2.ckpt";
  std::remove(path.c_str());
  Accumulator first;
  checkpoint_run([](ti::TypeTable&) {},
                 [&first](mig::MigContext& ctx) { sum_program(ctx, 64, &first); }, path, 10);
  // Restart from the file as a separate "process".
  Accumulator second;
  const CheckpointInfo info = restart_run(
      [](ti::TypeTable&) {},
      [&second](mig::MigContext& ctx) { sum_program(ctx, 64, &second); }, path);
  EXPECT_EQ(second.completed, 1);
  EXPECT_EQ(second.sum, expected_sum(64));
  EXPECT_EQ(info.source_arch, "native");
}

TEST(Checkpoint, RestartIsRepeatable) {
  // A checkpoint is immutable: restarting twice yields the same result.
  const std::string path = "/tmp/hpm_ckpt_test3.ckpt";
  std::remove(path.c_str());
  Accumulator a;
  checkpoint_run([](ti::TypeTable&) {},
                 [&a](mig::MigContext& ctx) { sum_program(ctx, 30, &a); }, path, 5);
  for (int round = 0; round < 2; ++round) {
    Accumulator r;
    restart_run([](ti::TypeTable&) {},
                [&r](mig::MigContext& ctx) { sum_program(ctx, 30, &r); }, path);
    EXPECT_EQ(r.sum, expected_sum(30));
  }
}

TEST(Checkpoint, InspectReadsThePreambleOnly) {
  const std::string path = "/tmp/hpm_ckpt_test4.ckpt";
  std::remove(path.c_str());
  Accumulator acc;
  checkpoint_run([](ti::TypeTable&) {},
                 [&acc](mig::MigContext& ctx) { sum_program(ctx, 20, &acc); }, path, 3,
                 /*sequence=*/99);
  const CheckpointInfo info = inspect(path);
  EXPECT_EQ(info.sequence, 99u);
  EXPECT_GT(info.state_bytes, 0u);
  EXPECT_EQ(info.source_arch, "native");
}

TEST(Checkpoint, MissingAndCorruptFilesAreRejected) {
  EXPECT_THROW(inspect("/tmp/hpm_ckpt_does_not_exist.ckpt"), Error);

  const std::string path = "/tmp/hpm_ckpt_test5.ckpt";
  std::remove(path.c_str());
  Accumulator acc;
  checkpoint_run([](ti::TypeTable&) {},
                 [&acc](mig::MigContext& ctx) { sum_program(ctx, 20, &acc); }, path, 3);
  // Flip a byte inside the embedded stream: the seal must catch it.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 60, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 60, SEEK_SET);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);
  EXPECT_THROW(inspect(path), WireError);
  Accumulator r;
  EXPECT_THROW(restart_run([](ti::TypeTable&) {},
                           [&r](mig::MigContext& ctx) { sum_program(ctx, 20, &r); }, path),
               WireError);
}

TEST(Checkpoint, ProgramFinishingBeforeTheCheckpointIsAnError) {
  const std::string path = "/tmp/hpm_ckpt_test6.ckpt";
  Accumulator acc;
  EXPECT_THROW(
      checkpoint_run([](ti::TypeTable&) {},
                     [&acc](mig::MigContext& ctx) { sum_program(ctx, 3, &acc); }, path,
                     /*at_poll=*/1000),
      MigrationError);
}

TEST(Checkpoint, WorksForTheBitonicWorkload) {
  const std::string path = "/tmp/hpm_ckpt_bitonic.ckpt";
  std::remove(path.c_str());
  apps::BitonicResult during;
  checkpoint_run(apps::bitonic_register_types,
                 [&during](mig::MigContext& ctx) {
                   apps::bitonic_program(ctx, 5, 3, &during);
                 },
                 path, /*at_poll=*/100);
  EXPECT_TRUE(during.ok());
  apps::BitonicResult restarted;
  restart_run(apps::bitonic_register_types,
              [&restarted](mig::MigContext& ctx) {
                apps::bitonic_program(ctx, 5, 3, &restarted);
              },
              path);
  EXPECT_TRUE(restarted.ok());
}

}  // namespace
}  // namespace hpm::ckpt
