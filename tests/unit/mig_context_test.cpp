// MigContext: globals, migratable heap, poll triggers, collection
// metrics, and restoration error handling (the runtime half of the
// annotation contract).
#include <gtest/gtest.h>

#include "mig/annotate.hpp"
#include "mig/context.hpp"
#include "ti/describe.hpp"

namespace hpm::mig {
namespace {

struct Pair {
  int a;
  int b;
};

void register_pair(ti::TypeTable& t) {
  ti::StructBuilder<Pair> b(t, "pair");
  HPM_TI_FIELD(b, Pair, a);
  HPM_TI_FIELD(b, Pair, b);
  b.commit();
}

/// Minimal migratable program: loops `n` times, polling each iteration;
/// counts completed iterations into *out.
void counter_program(MigContext& ctx, int n, int* out) {
  HPM_FUNCTION(ctx);
  int i, done;
  HPM_LOCAL(ctx, i);
  HPM_LOCAL(ctx, done);
  HPM_LOCAL(ctx, n);
  HPM_BODY(ctx);
  done = 0;
  for (i = 0; i < n; ++i) {
    HPM_POLL(ctx, 1);
    ++done;
  }
  *out = done;
  HPM_BODY_END(ctx);
}

TEST(MigContext, GlobalsAreZeroInitializedAndTracked) {
  ti::TypeTable t;
  register_pair(t);
  MigContext ctx(t);
  Pair& p = ctx.global<Pair>("p");
  EXPECT_EQ(p.a, 0);
  EXPECT_EQ(p.b, 0);
  int* arr = ctx.global_array<int>("arr", 16);
  EXPECT_EQ(arr[15], 0);
  EXPECT_EQ(ctx.space().msrlt().block_count(), 2u);
}

TEST(MigContext, GlobalAfterFrameEntryIsRejected) {
  ti::TypeTable t;
  MigContext ctx(t);
  FrameGuard guard(ctx, "f");
  EXPECT_THROW(ctx.global<int>("late"), MigrationError);
}

TEST(MigContext, HeapAllocRegistersAndFreeUnregisters) {
  ti::TypeTable t;
  register_pair(t);
  MigContext ctx(t);
  Pair* p = ctx.heap_alloc<Pair>(3, "trio");
  EXPECT_EQ(ctx.space().msrlt().block_count(), 1u);
  EXPECT_EQ(ctx.live_heap_blocks(), 1u);
  EXPECT_EQ(p[2].b, 0);
  ctx.heap_free(p);
  EXPECT_EQ(ctx.space().msrlt().block_count(), 0u);
  EXPECT_EQ(ctx.live_heap_blocks(), 0u);
  int untracked = 0;
  EXPECT_THROW(ctx.heap_free(&untracked), MigrationError);
}

TEST(MigContext, ProgramRunsToCompletionWithoutTrigger) {
  ti::TypeTable t;
  MigContext ctx(t);
  int done = 0;
  counter_program(ctx, 10, &done);
  EXPECT_EQ(done, 10);
  EXPECT_EQ(ctx.poll_count(), 10u);
  EXPECT_EQ(ctx.frame_depth(), 0u);              // frame unwound
  EXPECT_EQ(ctx.space().msrlt().block_count(), 0u);  // locals unregistered
}

TEST(MigContext, PollTriggerCollectsAndThrowsMigrationExit) {
  ti::TypeTable t;
  MigContext ctx(t);
  ctx.set_migrate_at_poll(4);
  int done = 0;
  EXPECT_THROW(counter_program(ctx, 10, &done), MigrationExit);
  EXPECT_EQ(done, 0);  // never reached the write
  EXPECT_EQ(ctx.poll_count(), 4u);
  EXPECT_GT(ctx.stream().size(), 0u);
  EXPECT_GT(ctx.metrics().stream_bytes, 0u);
  EXPECT_EQ(ctx.metrics().collect.counter("msrm.collect.blocks_saved"), 3u);  // i, done, n
}

TEST(MigContext, AsyncRequestIsHonoredAtNextPoll) {
  ti::TypeTable t;
  MigContext ctx(t);
  ctx.request_migration();
  int done = 0;
  EXPECT_THROW(counter_program(ctx, 10, &done), MigrationExit);
  EXPECT_EQ(ctx.poll_count(), 1u);
}

TEST(MigContext, RestoreResumesTheLoopExactlyWhereItStopped) {
  ti::TypeTable t;
  MigContext src(t);
  src.set_migrate_at_poll(7);
  int src_done = 0;
  EXPECT_THROW(counter_program(src, 10, &src_done), MigrationExit);

  MigContext dst(t);
  dst.begin_restore(src.stream());
  int dst_done = 0;
  counter_program(dst, 10, &dst_done);
  // 6 iterations completed before migration (the 7th poll fired before
  // its ++done), so the destination finishes the remaining 4.
  EXPECT_EQ(dst_done, 10);
  EXPECT_EQ(dst.mode(), Mode::Normal);
  EXPECT_GT(dst.metrics().restore_seconds, 0.0);
}

TEST(MigContext, RestoreWithWrongProgramIsRejected) {
  ti::TypeTable t;
  MigContext src(t);
  src.set_migrate_at_poll(2);
  int x = 0;
  EXPECT_THROW(counter_program(src, 5, &x), MigrationExit);

  // "Different binary": a program whose frame is a different function.
  auto other_program = [](MigContext& ctx) {
    HPM_FUNCTION(ctx);
    int i;
    HPM_LOCAL(ctx, i);
    HPM_BODY(ctx);
    for (i = 0; i < 3; ++i) {
      HPM_POLL(ctx, 1);
    }
    HPM_BODY_END(ctx);
  };
  MigContext dst(t);
  dst.begin_restore(src.stream());
  EXPECT_THROW(other_program(dst), MigrationError);
}

TEST(MigContext, RestoreDetectsLocalListMismatch) {
  ti::TypeTable t;
  MigContext src(t);
  src.set_migrate_at_poll(1);
  int x = 0;
  EXPECT_THROW(counter_program(src, 5, &x), MigrationExit);

  // Same function name, fewer registered locals.
  auto stripped = [](MigContext& ctx) {
    FrameGuard guard(ctx, "counter_program");
    auto& hpm_frame_ = guard.frame();
    int i;
    HPM_LOCAL(ctx, i);
    switch (ctx.resume_point(hpm_frame_)) {
      case 0:
      case 1:
        ctx.poll(hpm_frame_, 1);
    }
  };
  MigContext dst(t);
  dst.begin_restore(src.stream());
  EXPECT_THROW(stripped(dst), MigrationError);
}

TEST(MigContext, RestoreRejectsCorruptedStream) {
  ti::TypeTable t;
  MigContext src(t);
  src.set_migrate_at_poll(1);
  int x = 0;
  EXPECT_THROW(counter_program(src, 5, &x), MigrationExit);
  Bytes bad = src.stream();
  bad[bad.size() / 2] ^= 0xFF;
  MigContext dst(t);
  EXPECT_THROW(dst.begin_restore(bad), WireError);
}

TEST(MigContext, RestoreRejectsTruncatedStream) {
  ti::TypeTable t;
  MigContext src(t);
  src.set_migrate_at_poll(1);
  int x = 0;
  EXPECT_THROW(counter_program(src, 5, &x), MigrationExit);
  Bytes cut = src.stream();
  cut.resize(cut.size() - 1);
  MigContext dst(t);
  EXPECT_THROW(dst.begin_restore(cut), WireError);
}

TEST(MigContext, RestoredHeapBlocksCanBeFreedNormally) {
  ti::TypeTable t;
  register_pair(t);
  auto program = [](MigContext& ctx, Pair** keep) {
    HPM_FUNCTION(ctx);
    Pair* p;
    HPM_LOCAL(ctx, p);
    HPM_BODY(ctx);
    p = ctx.heap_alloc<Pair>(1, "p");
    p->a = 4;
    p->b = 2;
    HPM_POLL(ctx, 1);
    *keep = p;
    HPM_BODY_END(ctx);
  };
  MigContext src(t);
  src.set_migrate_at_poll(1);
  Pair* out = nullptr;
  EXPECT_THROW(program(src, &out), MigrationExit);

  MigContext dst(t);
  dst.begin_restore(src.stream());
  program(dst, &out);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->a, 4);
  EXPECT_EQ(out->b, 2);
  EXPECT_EQ(dst.live_heap_blocks(), 1u);
  EXPECT_NO_THROW(dst.heap_free(out));
  EXPECT_EQ(dst.live_heap_blocks(), 0u);
}

TEST(MigContext, ChainMigrationHopsTwice) {
  // Migrate source -> B, then B -> C while B is still mid-loop.
  ti::TypeTable t;
  MigContext a(t);
  a.set_migrate_at_poll(3);
  int done = 0;
  EXPECT_THROW(counter_program(a, 12, &done), MigrationExit);

  MigContext b(t);
  b.begin_restore(a.stream());
  b.set_migrate_at_poll(4);  // four polls after restoration begins
  EXPECT_THROW(counter_program(b, 12, &done), MigrationExit);

  MigContext c(t);
  c.begin_restore(b.stream());
  counter_program(c, 12, &done);
  EXPECT_EQ(done, 12);
}

TEST(MigContext, BeginRestoreTwiceOrLateIsRejected) {
  ti::TypeTable t;
  MigContext src(t);
  src.set_migrate_at_poll(1);
  int x = 0;
  EXPECT_THROW(counter_program(src, 3, &x), MigrationExit);
  MigContext dst(t);
  {
    FrameGuard guard(dst, "f");
    EXPECT_THROW(dst.begin_restore(src.stream()), MigrationError);
  }
}

TEST(MigrationMetrics, CollectStatsMatchTheStreamedGraph) {
  ti::TypeTable t;
  register_pair(t);
  auto program = [](MigContext& ctx) {
    HPM_FUNCTION(ctx);
    Pair* x;
    Pair* also_x;
    HPM_LOCAL(ctx, x);
    HPM_LOCAL(ctx, also_x);
    HPM_BODY(ctx);
    x = ctx.heap_alloc<Pair>(1, "x");
    also_x = x;  // sharing: second edge to the same block
    HPM_POLL(ctx, 1);
    ctx.heap_free(x);
    (void)also_x;
    HPM_BODY_END(ctx);
  };
  MigContext src(t);
  src.set_migrate_at_poll(1);
  EXPECT_THROW(program(src), MigrationExit);
  // Blocks: x's var, also_x's var, the heap pair. One PREF for the share.
  EXPECT_EQ(src.metrics().collect.counter("msrm.collect.blocks_saved"), 3u);
  EXPECT_EQ(src.metrics().collect.counter("msrm.collect.refs_saved"), 1u);
}


TEST(MigrationMetrics, DeadBlocksStayBehind) {
  // A heap block unreachable from any live variable is dead data: the
  // collection (driven by live-variable analysis) must not ship it, and
  // the metric must account for it.
  ti::TypeTable t;
  register_pair(t);
  auto program = [](MigContext& ctx) {
    HPM_FUNCTION(ctx);
    Pair* kept;
    Pair* dropped;  // deliberately NOT registered: dead at the poll
    HPM_LOCAL(ctx, kept);
    HPM_BODY(ctx);
    kept = ctx.heap_alloc<Pair>(1, "kept");
    dropped = ctx.heap_alloc<Pair>(1, "dropped");
    dropped->a = 1;  // allocated but never referenced by a live var
    HPM_POLL(ctx, 1);
    ctx.heap_free(kept);
    HPM_BODY_END(ctx);
  };
  MigContext src(t);
  src.set_migrate_at_poll(1);
  EXPECT_THROW(program(src), MigrationExit);
  // Tracked: kept's var block, kept's heap block, dropped's heap block.
  EXPECT_EQ(src.metrics().tracked_blocks, 3u);
  EXPECT_EQ(src.metrics().collect.counter("msrm.collect.blocks_saved"), 2u);
  EXPECT_EQ(src.metrics().dead_blocks(), 1u);

  MigContext dst(t);
  dst.begin_restore(src.stream());
  dst.set_stop_after_restore(true);
  EXPECT_THROW(program(dst), MigrationExit);
  // The dead block did not cross: destination only holds what was live
  // (kept's heap block; the stack var was unwound with the frame).
  EXPECT_EQ(dst.live_heap_blocks(), 1u);
}

}  // namespace
}  // namespace hpm::mig
