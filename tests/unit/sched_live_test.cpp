// LiveCluster: real migrations between worker nodes.
#include <gtest/gtest.h>

#include <atomic>

#include "mig/annotate.hpp"
#include "sched/live.hpp"

namespace hpm::sched {
namespace {

void no_types(ti::TypeTable&) {}

/// Busy migratable loop; records which values it accumulated.
void spin_job(mig::MigContext& ctx, int iters, std::atomic<long>* sink) {
  HPM_FUNCTION(ctx);
  int i;
  long acc;
  HPM_LOCAL(ctx, i);
  HPM_LOCAL(ctx, acc);
  HPM_LOCAL(ctx, iters);
  HPM_BODY(ctx);
  acc = 0;
  for (i = 0; i < iters; ++i) {
    HPM_POLL(ctx, 1);
    acc += i;
  }
  sink->store(acc);
  HPM_BODY_END(ctx);
}

long expected_sum(int iters) {
  long acc = 0;
  for (int i = 0; i < iters; ++i) acc += i;
  return acc;
}

TEST(LiveCluster, JobsRunToCompletionWithoutOrders) {
  LiveCluster cluster(2, no_types);
  std::atomic<long> a{-1}, b{-1};
  cluster.submit([&a](mig::MigContext& ctx) { spin_job(ctx, 100, &a); }, 0);
  cluster.submit([&b](mig::MigContext& ctx) { spin_job(ctx, 50, &b); }, 1);
  cluster.start();
  const auto reports = cluster.wait_all();
  EXPECT_EQ(a.load(), expected_sum(100));
  EXPECT_EQ(b.load(), expected_sum(50));
  EXPECT_EQ(reports[0].finished_on, 0);
  EXPECT_EQ(reports[1].finished_on, 1);
  EXPECT_EQ(reports[0].migrations, 0u);
  EXPECT_TRUE(reports[0].done);
}

TEST(LiveCluster, QueuedJobMovesWithoutCollection) {
  // Node 0's worker is busy with a long job, so the second submission
  // sits queued; migrating it to node 1 is a free requeue.
  LiveCluster cluster(2, no_types);
  std::atomic<long> a{-1}, b{-1};
  const int long_job =
      cluster.submit([&a](mig::MigContext& ctx) { spin_job(ctx, 2000000, &a); }, 0);
  const int queued =
      cluster.submit([&b](mig::MigContext& ctx) { spin_job(ctx, 10, &b); }, 0);
  cluster.migrate(queued, 1);  // before start: definitely still queued
  cluster.start();
  const auto reports = cluster.wait_all();
  EXPECT_EQ(b.load(), expected_sum(10));
  EXPECT_EQ(reports[queued].finished_on, 1);
  EXPECT_EQ(reports[queued].migrations, 0u);  // moved while queued: no stream
  EXPECT_TRUE(reports[long_job].done);
}

TEST(LiveCluster, LiveJobMigratesMidLoopAndFinishesElsewhere) {
  LiveCluster cluster(2, no_types);
  std::atomic<long> sink{-1};
  const int job =
      cluster.submit([&sink](mig::MigContext& ctx) { spin_job(ctx, 30000000, &sink); }, 0);
  cluster.start();
  // Let it get going, then order the move.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  cluster.migrate(job, 1);
  const auto reports = cluster.wait_all();
  EXPECT_EQ(sink.load(), expected_sum(30000000));
  EXPECT_TRUE(reports[job].done);
  EXPECT_EQ(reports[job].finished_on, 1);
  EXPECT_EQ(reports[job].migrations, 1u);
  EXPECT_GT(reports[job].moved_bytes, 0u);
}

TEST(LiveCluster, ChainOfOrdersHopsAcrossNodes) {
  LiveCluster cluster(3, no_types);
  std::atomic<long> sink{-1};
  const int job =
      cluster.submit([&sink](mig::MigContext& ctx) { spin_job(ctx, 50000000, &sink); }, 0);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  cluster.migrate(job, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cluster.migrate(job, 2);
  const auto reports = cluster.wait_all();
  EXPECT_EQ(sink.load(), expected_sum(50000000));
  EXPECT_TRUE(reports[job].done);
  EXPECT_GE(reports[job].migrations, 1u);
}

TEST(LiveCluster, AutoBalancerSpreadsAHotNode) {
  LiveCluster cluster(4, no_types);
  std::vector<std::unique_ptr<std::atomic<long>>> sinks;
  for (int i = 0; i < 8; ++i) {
    sinks.push_back(std::make_unique<std::atomic<long>>(-1));
    auto* sink = sinks.back().get();
    cluster.submit([sink](mig::MigContext& ctx) { spin_job(ctx, 4000000, sink); }, 0);
  }
  cluster.enable_auto_balance(0.002);
  cluster.start();
  const auto reports = cluster.wait_all();
  int off_home = 0;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sinks[i]->load(), expected_sum(4000000)) << i;
    EXPECT_TRUE(reports[i].done);
    if (reports[i].finished_on != 0) ++off_home;
  }
  EXPECT_GT(off_home, 0) << "balancer never moved anything";
}

TEST(LiveCluster, FailingJobDoesNotHangTheCluster) {
  LiveCluster cluster(1, no_types);
  const int bad = cluster.submit([](mig::MigContext&) { throw std::runtime_error("boom"); }, 0);
  std::atomic<long> sink{-1};
  cluster.submit([&sink](mig::MigContext& ctx) { spin_job(ctx, 10, &sink); }, 0);
  cluster.start();
  const auto reports = cluster.wait_all();
  EXPECT_FALSE(reports[bad].done);
  EXPECT_EQ(sink.load(), expected_sum(10));
}

TEST(LiveCluster, InputValidation) {
  EXPECT_THROW(LiveCluster(0, no_types), Error);
  LiveCluster cluster(2, no_types);
  EXPECT_THROW(cluster.submit([](mig::MigContext&) {}, 9), Error);
  const int job = cluster.submit([](mig::MigContext&) {}, 0);
  EXPECT_THROW(cluster.migrate(job, 7), Error);
  EXPECT_THROW(cluster.migrate(42, 1), Error);
  cluster.start();
  cluster.wait_all();
}

}  // namespace
}  // namespace hpm::sched
