// Transport layer: channels, framing, and the Ethernet link model.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "net/faulty_channel.hpp"
#include "net/file_channel.hpp"
#include "net/mem_channel.hpp"
#include "net/message.hpp"
#include "net/simnet.hpp"
#include "net/socket_channel.hpp"
#include "obs/metrics.hpp"

namespace hpm::net {
namespace {

Bytes make_payload(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 7 + 1);
  return b;
}

TEST(MemChannel, BytesFlowBothDirections) {
  auto [a, b] = MemChannel::make_pair();
  const Bytes out = make_payload(1000);
  a->send(out);
  Bytes in(1000);
  b->recv(in);
  EXPECT_EQ(in, out);
  b->send(out);
  Bytes back(1000);
  a->recv(back);
  EXPECT_EQ(back, out);
}

TEST(MemChannel, RecvBlocksUntilDataArrives) {
  auto [a, b] = MemChannel::make_pair();
  Bytes in(4);
  std::thread reader([&] { b->recv(in); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const Bytes out = {1, 2, 3, 4};
  a->send(out);
  reader.join();
  EXPECT_EQ(in, out);
}

TEST(MemChannel, CloseWithPendingReadThrows) {
  auto [a, b] = MemChannel::make_pair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    a->close();
  });
  Bytes in(10);
  EXPECT_THROW(b->recv(in), NetError);
  closer.join();
}

TEST(SocketChannel, LoopbackRoundTrip) {
  SocketListener listener;
  std::unique_ptr<SocketChannel> server;
  std::thread acceptor([&] { server = listener.accept(); });
  auto client = connect_to(listener.port());
  acceptor.join();
  const Bytes out = make_payload(100000);
  std::thread sender([&] { client->send(out); });
  Bytes in(100000);
  server->recv(in);
  sender.join();
  EXPECT_EQ(in, out);
  client->close();
  Bytes more(1);
  EXPECT_THROW(server->recv(more), NetError);  // orderly EOF detected
}

TEST(MemChannel, RecvHonorsDeadline) {
  auto [a, b] = MemChannel::make_pair();
  b->set_timeout(std::chrono::milliseconds(30));
  Bytes in(4);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(b->recv(in), TimeoutError);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::seconds(5));  // bounded, not a hang
  // A TimeoutError is still a NetError for transport-boundary handlers.
  b->set_timeout(std::chrono::milliseconds(10));
  EXPECT_THROW(b->recv(in), NetError);
  (void)a;
}

TEST(SocketChannel, RecvHonorsDeadline) {
  SocketListener listener;
  std::unique_ptr<SocketChannel> server;
  std::thread acceptor([&] { server = listener.accept(); });
  auto client = connect_to(listener.port());
  acceptor.join();
  server->set_timeout(std::chrono::milliseconds(30));
  Bytes in(4);
  EXPECT_THROW(server->recv(in), TimeoutError);
  // The channel is still usable after a timeout: late data gets through.
  const Bytes out = {9, 8, 7, 6};
  client->send(out);
  server->recv(in);
  EXPECT_EQ(in, out);
}

TEST(SocketChannel, CloseIsIdempotentAndIoAfterCloseThrows) {
  SocketListener listener;
  std::unique_ptr<SocketChannel> server;
  std::thread acceptor([&] { server = listener.accept(); });
  auto client = connect_to(listener.port());
  acceptor.join();
  client->close();
  client->close();  // second close must be a no-op, not a double-close of the fd
  const Bytes out = {1};
  EXPECT_THROW(client->send(out), NetError);
  Bytes in(1);
  EXPECT_THROW(client->recv(in), NetError);
}

TEST(SocketChannel, ConnectToClosedPortFails) {
  std::uint16_t dead_port;
  {
    SocketListener listener;
    dead_port = listener.port();
  }
  EXPECT_THROW(connect_to(dead_port), NetError);
}

TEST(FileChannel, SpoolCarriesBytesAcross) {
  const std::string path = "/tmp/hpm_net_test_spool.bin";
  std::remove(path.c_str());
  std::remove((path + ".done").c_str());
  const Bytes out = make_payload(50000);
  FileWriterChannel writer(path);
  FileReaderChannel reader(path);
  std::thread producer([&] {
    writer.send(std::span<const std::uint8_t>(out.data(), 20000));
    writer.send(std::span<const std::uint8_t>(out.data() + 20000, 30000));
    writer.close();
  });
  Bytes in(50000);
  reader.recv(in);
  producer.join();
  EXPECT_EQ(in, out);
}

TEST(FileChannel, ShortSpoolIsDetected) {
  const std::string path = "/tmp/hpm_net_test_short.bin";
  std::remove(path.c_str());
  std::remove((path + ".done").c_str());
  {
    FileWriterChannel writer(path);
    const Bytes out = make_payload(10);
    writer.send(out);
    writer.close();
  }
  FileReaderChannel reader(path);
  Bytes in(20);  // wants more than was written
  EXPECT_THROW(reader.recv(in), NetError);
}

TEST(FileChannel, DirectionsAreEnforced) {
  const std::string path = "/tmp/hpm_net_test_dir.bin";
  std::remove(path.c_str());
  FileWriterChannel writer(path);
  Bytes buf(1);
  EXPECT_THROW(writer.recv(buf), NetError);
  FileReaderChannel reader(path);
  EXPECT_THROW(reader.send(buf), NetError);
}

TEST(FileChannel, ReaderRecvHonorsDeadline) {
  const std::string path = "/tmp/hpm_net_test_deadline.bin";
  std::remove(path.c_str());
  std::remove((path + ".done").c_str());
  FileReaderChannel reader(path);  // no writer will ever show up
  reader.set_timeout(std::chrono::milliseconds(30));
  Bytes in(8);
  EXPECT_THROW(reader.recv(in), TimeoutError);
}

TEST(FileChannel, AbortLeavesNoDoneMarker) {
  const std::string path = "/tmp/hpm_net_test_abort.bin";
  std::remove(path.c_str());
  std::remove((path + ".done").c_str());
  {
    FileWriterChannel writer(path);
    const Bytes out = make_payload(16);
    writer.send(out);
    writer.abort();  // crash-style teardown
  }  // destructor must not resurrect the marker
  FileReaderChannel reader(path);
  reader.set_timeout(std::chrono::milliseconds(30));
  Bytes in(32);
  EXPECT_THROW(reader.recv(in), TimeoutError);  // stream never completes
  std::remove(path.c_str());
}

TEST(Message, FramingRoundTrips) {
  auto [a, b] = MemChannel::make_pair();
  const Bytes payload = make_payload(333);
  send_message(*a, MsgType::State, payload);
  const Message msg = recv_message(*b);
  EXPECT_EQ(msg.type, MsgType::State);
  EXPECT_EQ(msg.payload, payload);
}

TEST(Message, EmptyPayloadIsLegal) {
  auto [a, b] = MemChannel::make_pair();
  send_message(*a, MsgType::Ack, {});
  const Message msg = recv_message(*b);
  EXPECT_EQ(msg.type, MsgType::Ack);
  EXPECT_TRUE(msg.payload.empty());
}

TEST(Message, UnknownTypeTagIsRejected) {
  auto [a, b] = MemChannel::make_pair();
  const Bytes junk = {0x7F, 0, 0, 0, 0};
  a->send(junk);
  EXPECT_THROW(recv_message(*b), NetError);
}

TEST(Message, OversizedFrameIsRejected) {
  auto [a, b] = MemChannel::make_pair();
  const Bytes header = {static_cast<std::uint8_t>(MsgType::State), 0x40, 0, 0, 0};
  a->send(header);
  EXPECT_THROW(recv_message(*b, /*max_payload=*/1 << 20), NetError);
}

TEST(Message, HostileLengthPrefixIsRejectedBeforeAllocation) {
  auto [a, b] = MemChannel::make_pair();
  // A 2 GiB - 1 length prefix: under the old 1ull << 31 default this
  // passed validation and attempted the allocation; the default cap must
  // reject it outright.
  const Bytes header = {static_cast<std::uint8_t>(MsgType::State), 0x7F, 0xFF, 0xFF, 0xFF};
  a->send(header);
  EXPECT_THROW(recv_message(*b), NetError);
}

TEST(Message, NackRoundTrips) {
  auto [a, b] = MemChannel::make_pair();
  const std::string reason = "frame CRC mismatch";
  send_message(*a, MsgType::Nack, Bytes(reason.begin(), reason.end()));
  const Message msg = recv_message(*b);
  EXPECT_EQ(msg.type, MsgType::Nack);
  EXPECT_EQ(std::string(msg.payload.begin(), msg.payload.end()), reason);
}

Bytes frame_bytes(MsgType type, const Bytes& payload) {
  Bytes frame;
  frame.push_back(static_cast<std::uint8_t>(type));
  const auto len = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFFu));
  frame.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFFu));
  frame.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFFu));
  frame.push_back(static_cast<std::uint8_t>(len & 0xFFu));
  frame.insert(frame.end(), payload.begin(), payload.end());
  const std::uint32_t crc = Crc32::of(frame.data(), frame.size());
  frame.push_back(static_cast<std::uint8_t>((crc >> 24) & 0xFFu));
  frame.push_back(static_cast<std::uint8_t>((crc >> 16) & 0xFFu));
  frame.push_back(static_cast<std::uint8_t>((crc >> 8) & 0xFFu));
  frame.push_back(static_cast<std::uint8_t>(crc & 0xFFu));
  return frame;
}

TEST(Message, CorruptedPayloadFailsTheCrcTrailer) {
  auto [a, b] = MemChannel::make_pair();
  Bytes frame = frame_bytes(MsgType::State, make_payload(100));
  frame[5 + 40] ^= 0x01u;  // flip one payload bit in transit
  a->send(frame);
  try {
    recv_message(*b);
    FAIL() << "damaged frame was accepted";
  } catch (const NetError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST(Message, IntactHandCraftedFramePassesTheCrcTrailer) {
  auto [a, b] = MemChannel::make_pair();
  const Bytes payload = make_payload(100);
  a->send(frame_bytes(MsgType::State, payload));
  const Message msg = recv_message(*b);
  EXPECT_EQ(msg.type, MsgType::State);
  EXPECT_EQ(msg.payload, payload);
}

TEST(FaultyChannel, CorruptFaultFiresOnceAtItsOffset) {
  FaultPlan plan;
  plan.kind = FaultKind::Corrupt;
  plan.offset = 10;
  plan.length = 2;
  plan.max_firings = 1;
  auto state = std::make_shared<FaultState>();
  auto [a, b] = MemChannel::make_pair();
  FaultyChannel faulty(std::move(a), plan, state);
  const Bytes out = make_payload(32);
  faulty.send(out);
  Bytes in(32);
  b->recv(in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (i == 10 || i == 11) {
      EXPECT_EQ(in[i], static_cast<std::uint8_t>(out[i] ^ 0xA5u)) << "at " << i;
    } else {
      EXPECT_EQ(in[i], out[i]) << "at " << i;
    }
  }
  EXPECT_EQ(state->firings, 1);
  faulty.send(out);  // budget exhausted: second pass is clean
  b->recv(in);
  EXPECT_EQ(in, out);
  EXPECT_EQ(state->firings, 1);
}

TEST(FaultyChannel, DisconnectFaultBreaksBothEnds) {
  FaultPlan plan;
  plan.kind = FaultKind::Disconnect;
  plan.offset = 8;
  auto [a, b] = MemChannel::make_pair();
  FaultyChannel faulty(std::move(a), plan);
  const Bytes out = make_payload(32);
  EXPECT_THROW(faulty.send(out), NetError);
  Bytes in(32);
  EXPECT_THROW(b->recv(in), NetError);  // only 8 bytes arrived, then EOF
  EXPECT_THROW(faulty.send(out), NetError);
  EXPECT_NO_THROW(faulty.close());  // dead channel: close is a quiet no-op
}

TEST(FaultyChannel, TruncateSwallowsTheTailThenClosesCleanly) {
  FaultPlan plan;
  plan.kind = FaultKind::Truncate;
  plan.offset = 12;
  auto [a, b] = MemChannel::make_pair();
  FaultyChannel faulty(std::move(a), plan);
  const Bytes out = make_payload(32);
  faulty.send(out);  // no error on the sender: the tail vanishes silently
  Bytes head(12);
  b->recv(head);
  EXPECT_TRUE(std::equal(head.begin(), head.end(), out.begin()));
  faulty.close();
  Bytes more(1);
  EXPECT_THROW(b->recv(more), NetError);  // clean EOF, short stream
}

TEST(FaultyChannel, StallPastTheDeadlineIsTaggedAndCounted) {
  FaultPlan plan;
  plan.kind = FaultKind::Stall;
  plan.offset = 8;
  plan.stall_seconds = 10.0;  // far past the deadline below
  auto [a, b] = MemChannel::make_pair();
  FaultyChannel faulty(std::move(a), plan);
  faulty.set_timeout(std::chrono::milliseconds(20));
  const std::uint64_t before =
      obs::Registry::process().snapshot().counter("net.faults.stalls_hit");
  const Bytes out = make_payload(32);
  try {
    faulty.send(out);
    FAIL() << "a stall past the send deadline must surface as TimeoutError";
  } catch (const TimeoutError& e) {
    // The tag lets a chaos harness tell an injected stall's timeout from
    // an organic one when asserting "no real hangs".
    EXPECT_NE(std::string(e.what()).find("[injected-stall]"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(obs::Registry::process().snapshot().counter("net.faults.stalls_hit"),
            before + 1);
}

TEST(FaultyChannel, ShortStallUnderTheDeadlineDelivers) {
  FaultPlan plan;
  plan.kind = FaultKind::Stall;
  plan.offset = 8;
  plan.stall_seconds = 0.01;
  auto [a, b] = MemChannel::make_pair();
  FaultyChannel faulty(std::move(a), plan);
  faulty.set_timeout(std::chrono::milliseconds(500));
  const std::uint64_t before =
      obs::Registry::process().snapshot().counter("net.faults.stalls_hit");
  const Bytes out = make_payload(32);
  faulty.send(out);  // sleeps ~10ms, then the bytes flow intact
  Bytes in(32);
  b->recv(in);
  EXPECT_EQ(in, out);
  EXPECT_EQ(obs::Registry::process().snapshot().counter("net.faults.stalls_hit"),
            before + 1);
}

TEST(FaultPlan, RandomPlansAreSeedDeterministic) {
  const FaultPlan p1 = FaultPlan::random(42);
  const FaultPlan p2 = FaultPlan::random(42);
  EXPECT_EQ(p1.kind, p2.kind);
  EXPECT_EQ(p1.offset, p2.offset);
  EXPECT_EQ(p1.length, p2.length);
  EXPECT_DOUBLE_EQ(p1.stall_seconds, p2.stall_seconds);
  EXPECT_TRUE(p1.enabled());
  // Different seeds explore different plans (not all identical).
  bool differs = false;
  for (std::uint64_t seed = 0; seed < 16 && !differs; ++seed) {
    const FaultPlan q = FaultPlan::random(seed);
    differs = q.kind != p1.kind || q.offset != p1.offset;
  }
  EXPECT_TRUE(differs);
}

TEST(SimulatedLink, TransferTimeScalesWithBytes) {
  const SimulatedLink fast = SimulatedLink::ethernet_100mbps();
  const SimulatedLink slow = SimulatedLink::ethernet_10mbps();
  const double t1 = fast.transfer_seconds(1'000'000);
  const double t8 = fast.transfer_seconds(8'000'000);
  EXPECT_NEAR(t8 / t1, 8.0, 0.1);                        // linear in bytes
  EXPECT_NEAR(slow.transfer_seconds(1'000'000) / t1, 10.0, 0.5);  // 10x slower wire
  EXPECT_EQ(fast.transfer_seconds(0), fast.latency_s);
}

TEST(SimulatedLink, PaperScaleSanity) {
  // ~8 MB of linpack state over 100 Mb/s took the paper ~0.8 s; the model
  // must land in that decade.
  const double t = SimulatedLink::ethernet_100mbps().transfer_seconds(8'000'000);
  EXPECT_GT(t, 0.3);
  EXPECT_LT(t, 2.0);
}

TEST(ThrottledChannel, AccountsModeledTime) {
  auto [a, b] = MemChannel::make_pair();
  SimulatedLink link;
  link.bandwidth_bps = 1e9;  // keep the real sleep tiny
  link.latency_s = 0;
  ThrottledChannel throttled(std::move(a), link);
  const Bytes payload = make_payload(10000);
  throttled.send(payload);
  EXPECT_GT(throttled.modeled_send_seconds(), 0.0);
  Bytes in(10000);
  b->recv(in);
  EXPECT_EQ(in, payload);
}

}  // namespace
}  // namespace hpm::net
