// Transport layer: channels, framing, and the Ethernet link model.
#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "common/error.hpp"
#include "net/file_channel.hpp"
#include "net/mem_channel.hpp"
#include "net/message.hpp"
#include "net/simnet.hpp"
#include "net/socket_channel.hpp"

namespace hpm::net {
namespace {

Bytes make_payload(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 7 + 1);
  return b;
}

TEST(MemChannel, BytesFlowBothDirections) {
  auto [a, b] = MemChannel::make_pair();
  const Bytes out = make_payload(1000);
  a->send(out);
  Bytes in(1000);
  b->recv(in);
  EXPECT_EQ(in, out);
  b->send(out);
  Bytes back(1000);
  a->recv(back);
  EXPECT_EQ(back, out);
}

TEST(MemChannel, RecvBlocksUntilDataArrives) {
  auto [a, b] = MemChannel::make_pair();
  Bytes in(4);
  std::thread reader([&] { b->recv(in); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const Bytes out = {1, 2, 3, 4};
  a->send(out);
  reader.join();
  EXPECT_EQ(in, out);
}

TEST(MemChannel, CloseWithPendingReadThrows) {
  auto [a, b] = MemChannel::make_pair();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    a->close();
  });
  Bytes in(10);
  EXPECT_THROW(b->recv(in), NetError);
  closer.join();
}

TEST(SocketChannel, LoopbackRoundTrip) {
  SocketListener listener;
  std::unique_ptr<SocketChannel> server;
  std::thread acceptor([&] { server = listener.accept(); });
  auto client = connect_to(listener.port());
  acceptor.join();
  const Bytes out = make_payload(100000);
  std::thread sender([&] { client->send(out); });
  Bytes in(100000);
  server->recv(in);
  sender.join();
  EXPECT_EQ(in, out);
  client->close();
  Bytes more(1);
  EXPECT_THROW(server->recv(more), NetError);  // orderly EOF detected
}

TEST(SocketChannel, ConnectToClosedPortFails) {
  std::uint16_t dead_port;
  {
    SocketListener listener;
    dead_port = listener.port();
  }
  EXPECT_THROW(connect_to(dead_port), NetError);
}

TEST(FileChannel, SpoolCarriesBytesAcross) {
  const std::string path = "/tmp/hpm_net_test_spool.bin";
  std::remove(path.c_str());
  std::remove((path + ".done").c_str());
  const Bytes out = make_payload(50000);
  FileWriterChannel writer(path);
  FileReaderChannel reader(path);
  std::thread producer([&] {
    writer.send(std::span<const std::uint8_t>(out.data(), 20000));
    writer.send(std::span<const std::uint8_t>(out.data() + 20000, 30000));
    writer.close();
  });
  Bytes in(50000);
  reader.recv(in);
  producer.join();
  EXPECT_EQ(in, out);
}

TEST(FileChannel, ShortSpoolIsDetected) {
  const std::string path = "/tmp/hpm_net_test_short.bin";
  std::remove(path.c_str());
  std::remove((path + ".done").c_str());
  {
    FileWriterChannel writer(path);
    const Bytes out = make_payload(10);
    writer.send(out);
    writer.close();
  }
  FileReaderChannel reader(path);
  Bytes in(20);  // wants more than was written
  EXPECT_THROW(reader.recv(in), NetError);
}

TEST(FileChannel, DirectionsAreEnforced) {
  const std::string path = "/tmp/hpm_net_test_dir.bin";
  std::remove(path.c_str());
  FileWriterChannel writer(path);
  Bytes buf(1);
  EXPECT_THROW(writer.recv(buf), NetError);
  FileReaderChannel reader(path);
  EXPECT_THROW(reader.send(buf), NetError);
}

TEST(Message, FramingRoundTrips) {
  auto [a, b] = MemChannel::make_pair();
  const Bytes payload = make_payload(333);
  send_message(*a, MsgType::State, payload);
  const Message msg = recv_message(*b);
  EXPECT_EQ(msg.type, MsgType::State);
  EXPECT_EQ(msg.payload, payload);
}

TEST(Message, EmptyPayloadIsLegal) {
  auto [a, b] = MemChannel::make_pair();
  send_message(*a, MsgType::Ack, {});
  const Message msg = recv_message(*b);
  EXPECT_EQ(msg.type, MsgType::Ack);
  EXPECT_TRUE(msg.payload.empty());
}

TEST(Message, UnknownTypeTagIsRejected) {
  auto [a, b] = MemChannel::make_pair();
  const Bytes junk = {0x7F, 0, 0, 0, 0};
  a->send(junk);
  EXPECT_THROW(recv_message(*b), NetError);
}

TEST(Message, OversizedFrameIsRejected) {
  auto [a, b] = MemChannel::make_pair();
  const Bytes header = {static_cast<std::uint8_t>(MsgType::State), 0x40, 0, 0, 0};
  a->send(header);
  EXPECT_THROW(recv_message(*b, /*max_payload=*/1 << 20), NetError);
}

TEST(SimulatedLink, TransferTimeScalesWithBytes) {
  const SimulatedLink fast = SimulatedLink::ethernet_100mbps();
  const SimulatedLink slow = SimulatedLink::ethernet_10mbps();
  const double t1 = fast.transfer_seconds(1'000'000);
  const double t8 = fast.transfer_seconds(8'000'000);
  EXPECT_NEAR(t8 / t1, 8.0, 0.1);                        // linear in bytes
  EXPECT_NEAR(slow.transfer_seconds(1'000'000) / t1, 10.0, 0.5);  // 10x slower wire
  EXPECT_EQ(fast.transfer_seconds(0), fast.latency_s);
}

TEST(SimulatedLink, PaperScaleSanity) {
  // ~8 MB of linpack state over 100 Mb/s took the paper ~0.8 s; the model
  // must land in that decade.
  const double t = SimulatedLink::ethernet_100mbps().transfer_seconds(8'000'000);
  EXPECT_GT(t, 0.3);
  EXPECT_LT(t, 2.0);
}

TEST(ThrottledChannel, AccountsModeledTime) {
  auto [a, b] = MemChannel::make_pair();
  SimulatedLink link;
  link.bandwidth_bps = 1e9;  // keep the real sleep tiny
  link.latency_s = 0;
  ThrottledChannel throttled(std::move(a), link);
  const Bytes payload = make_payload(10000);
  throttled.send(payload);
  EXPECT_GT(throttled.modeled_send_seconds(), 0.0);
  Bytes in(10000);
  b->recv(in);
  EXPECT_EQ(in, payload);
}

}  // namespace
}  // namespace hpm::net
