// Migration scheduler / cluster simulator: deterministic scenarios and
// policy behavior.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sched/cluster.hpp"

namespace hpm::sched {
namespace {

CostModel cheap_model() {
  CostModel m;
  m.collect_s_per_block = 0;
  m.collect_s_per_byte = 0;
  m.restore_s_per_block = 0;
  m.restore_s_per_byte = 0;
  m.link.latency_s = 0.01;
  m.link.bandwidth_bps = 1e12;
  return m;
}

TEST(CostModel, FreezeTimeTracksStateSize) {
  const CostModel m = CostModel::calibrated();
  JobSpec small{"s", 1, 0, 0, 1 << 16, 100};
  JobSpec large{"l", 1, 0, 0, 8 << 20, 100000};
  EXPECT_GT(m.freeze_seconds(large), m.freeze_seconds(small) * 10);
  EXPECT_GT(m.freeze_seconds(small), 0.0);
}

TEST(ClusterSim, SingleJobFinishesAtWorkOverSpeed) {
  ClusterSim sim({{"h0", 2.0}}, cheap_model());
  NeverMigrate policy;
  const SimResult r = sim.run({{"j", 10.0, 0.0, 0, 1, 1}}, policy);
  EXPECT_NEAR(r.makespan, 5.0, 0.02);
  EXPECT_EQ(r.migrations, 0u);
}

TEST(ClusterSim, ProcessorSharingSplitsAHost) {
  ClusterSim sim({{"h0", 1.0}}, cheap_model());
  NeverMigrate policy;
  const SimResult r = sim.run({{"a", 5.0, 0.0, 0, 1, 1}, {"b", 5.0, 0.0, 0, 1, 1}}, policy);
  EXPECT_NEAR(r.makespan, 10.0, 0.05);  // two equal jobs share the CPU
}

TEST(ClusterSim, ArrivalTimesAreRespected) {
  ClusterSim sim({{"h0", 1.0}}, cheap_model());
  NeverMigrate policy;
  const SimResult r = sim.run({{"late", 1.0, 5.0, 0, 1, 1}}, policy);
  EXPECT_NEAR(r.makespan, 6.0, 0.02);
  EXPECT_NEAR(r.mean_turnaround, 1.0, 0.02);
}

TEST(ClusterSim, LoadBalanceBeatsNeverMigrateOnSkewedLoad) {
  // Eight equal jobs all submitted to host 0 of a 4-host cluster.
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(JobSpec{"j" + std::to_string(i), 4.0, 0.0, 0, 1 << 20, 1000});
  }
  ClusterSim sim({{"h0"}, {"h1"}, {"h2"}, {"h3"}}, cheap_model());
  NeverMigrate never;
  LoadBalance balance;
  const SimResult r_never = sim.run(jobs, never);
  const SimResult r_bal = sim.run(jobs, balance);
  EXPECT_NEAR(r_never.makespan, 32.0, 0.2);  // 8 jobs x 4 s on one host
  EXPECT_LT(r_bal.makespan, r_never.makespan * 0.45);
  EXPECT_GE(r_bal.migrations, 6u);   // six jobs leave host 0
  EXPECT_LT(r_bal.mean_turnaround, r_never.mean_turnaround);
}

TEST(ClusterSim, ExpensiveStateSuppressesMigration) {
  // When the freeze cost rivals the remaining work, a sane policy stays.
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 4; ++i) {
    // Tiny jobs with enormous live state: migration can never pay off.
    jobs.push_back(JobSpec{"j" + std::to_string(i), 0.05, 0.0, 0, 800u << 20, 2000000});
  }
  ClusterSim sim({{"h0"}, {"h1"}}, CostModel::calibrated());
  LoadBalance balance;
  const SimResult r = sim.run(jobs, balance);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_EQ(r.total_frozen_seconds, 0.0);
}

TEST(ClusterSim, FrozenTimeIsAccounted) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(JobSpec{"j" + std::to_string(i), 3.0, 0.0, 0, 1 << 10, 10});
  }
  CostModel m = cheap_model();
  m.link.latency_s = 0.5;  // every migration freezes for exactly ~0.5 s
  ClusterSim sim({{"h0"}, {"h1"}}, m);
  LoadBalance balance;
  const SimResult r = sim.run(jobs, balance);
  EXPECT_GT(r.migrations, 0u);
  // Each freeze is the 0.5 s latency plus a sub-microsecond wire term.
  EXPECT_NEAR(r.total_frozen_seconds, 0.5 * r.migrations, 1e-5 * r.migrations);
}

TEST(ClusterSim, FasterHostAttractsWork) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(JobSpec{"j" + std::to_string(i), 2.0, 0.0, 0, 1 << 16, 50});
  }
  ClusterSim sim({{"slow", 1.0}, {"fast", 4.0}}, cheap_model());
  LoadBalance balance;
  const SimResult r = sim.run(jobs, balance);
  EXPECT_GT(r.migrations, 0u);
  EXPECT_GT(r.host_busy_seconds[1], 0.0);
  NeverMigrate never;
  const SimResult r_never = sim.run(jobs, never);
  EXPECT_LT(r.makespan, r_never.makespan);
}

TEST(ClusterSim, InputValidation) {
  ClusterSim empty({}, cheap_model());
  NeverMigrate policy;
  EXPECT_THROW(empty.run({{"j", 1.0, 0.0, 0, 1, 1}}, policy), Error);
  ClusterSim sim({{"h0"}}, cheap_model());
  EXPECT_THROW(sim.run({{"bad-host", 1.0, 0.0, 5, 1, 1}}, policy), Error);
  EXPECT_THROW(sim.run({{"no-work", 0.0, 0.0, 0, 1, 1}}, policy), Error);
}

TEST(ClusterSim, MisbehavedPolicyIsRejected) {
  class Rogue final : public Policy {
   public:
    [[nodiscard]] std::string name() const override { return "rogue"; }
    std::vector<MigrationOrder> decide(const ClusterView&) override {
      return {MigrationOrder{0, 99}};  // unknown host
    }
  };
  ClusterSim sim({{"h0"}, {"h1"}}, cheap_model());
  Rogue rogue;
  EXPECT_THROW(sim.run({{"j", 1.0, 0.0, 0, 1, 1}}, rogue), Error);
}

TEST(ClusterSim, DeterministicAcrossRuns) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(JobSpec{"j" + std::to_string(i), 1.0 + i * 0.3, i * 0.2, 0, 1 << 18, 500});
  }
  ClusterSim sim({{"h0"}, {"h1"}, {"h2"}}, CostModel::calibrated());
  LoadBalance balance;
  const SimResult a = sim.run(jobs, balance);
  const SimResult b = sim.run(jobs, balance);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.finish_times, b.finish_times);
}

}  // namespace
}  // namespace hpm::sched
