// The collection/restoration engine: host-to-host round trips over every
// pointer topology the MSR model supports, plus wire-level failure
// injection.
#include <gtest/gtest.h>

#include <vector>

#include "msr/host_space.hpp"
#include "msrm/collect.hpp"
#include "msrm/restore.hpp"
#include "msrm/stream.hpp"
#include "obs/metrics.hpp"
#include "ti/describe.hpp"

namespace hpm::msrm {
namespace {

using msr::Address;
using msr::BlockId;
using msr::HostSpace;
using msr::Segment;

struct Cell {
  long value;
  Cell* next;
};

class RoundTrip : public ::testing::Test {
 protected:
  RoundTrip() : src_(table_), dst_(table_) {
    ti::StructBuilder<Cell> b(table_, "cell");
    HPM_TI_FIELD(b, Cell, value);
    HPM_TI_FIELD(b, Cell, next);
    cell_type_ = b.commit();
  }

  /// Collect one variable from src_, restore into dst_, return the
  /// destination block's base address.
  Address round_trip(const void* var_addr) {
    const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
    xdr::Encoder enc;
    Collector collector(src_, enc);
    collector.save_variable(reinterpret_cast<Address>(var_addr));
    bytes_ = enc.take();
    collect_ = obs::Registry::process().snapshot().delta_since(before);
    dec_.emplace(bytes_);
    restorer_.emplace(dst_, *dec_);
    restorer_->set_auto_bind(true);
    const BlockId dest = restorer_->restore_variable();
    return dst_.msrlt().find_id(dest)->base;
  }

  ti::TypeTable table_;
  HostSpace src_;
  HostSpace dst_;
  ti::TypeId cell_type_ = ti::kInvalidType;
  Bytes bytes_;
  obs::MetricsSnapshot collect_;  ///< registry delta across the collect phase
  std::optional<xdr::Decoder> dec_;
  std::optional<Restorer> restorer_;
};

TEST_F(RoundTrip, ScalarVariable) {
  double pi = 3.14159265358979;
  src_.track(Segment::Global, pi, "pi", table_.primitive(xdr::PrimKind::Double), 1);
  const Address out = round_trip(&pi);
  EXPECT_EQ(*reinterpret_cast<double*>(out), pi);
  EXPECT_EQ(collect_.counter("msrm.collect.blocks_saved"), 1u);
  EXPECT_EQ(collect_.counter("msrm.collect.prim_leaves"), 1u);
}

TEST_F(RoundTrip, LargePrimitiveArrayTakesTheFlatPath) {
  std::vector<double> big(5000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * 0.25;
  src_.track_raw(Segment::Heap, big.data(), table_.primitive(xdr::PrimKind::Double),
                 static_cast<std::uint32_t>(big.size()), "big");
  const Address out = round_trip(big.data());
  const double* d = reinterpret_cast<double*>(out);
  for (std::size_t i = 0; i < big.size(); ++i) ASSERT_EQ(d[i], i * 0.25);
  EXPECT_EQ(collect_.counter("msrm.collect.prim_leaves"), 5000u);
  EXPECT_EQ(collect_.counter("msrm.collect.ptr_leaves"), 0u);
  // Pointer-free array of doubles: same-arch streams take the bulk body.
  EXPECT_EQ(collect_.counter("msrm.collect.bulk_bodies"), 1u);
  EXPECT_EQ(collect_.counter("msrm.collect.bulk_bytes"), 5000u * sizeof(double));
}

TEST_F(RoundTrip, MixedStructValues) {
  struct Mixed {
    bool flag;
    char letter;
    short small;
    int medium;
    long long big;
    float f;
    double d;
    unsigned long ul;
  };
  ti::StructBuilder<Mixed> b(table_, "mixed_struct");
  HPM_TI_FIELD(b, Mixed, flag);
  HPM_TI_FIELD(b, Mixed, letter);
  HPM_TI_FIELD(b, Mixed, small);
  HPM_TI_FIELD(b, Mixed, medium);
  HPM_TI_FIELD(b, Mixed, big);
  HPM_TI_FIELD(b, Mixed, f);
  HPM_TI_FIELD(b, Mixed, d);
  HPM_TI_FIELD(b, Mixed, ul);
  const ti::TypeId id = b.commit();
  Mixed m{true, 'Q', -77, 123456, -98765432101234ll, 2.5f, -0.125, 4000000000ul};
  src_.track(Segment::Global, m, "m", id, 1);
  const Address out = round_trip(&m);
  const Mixed& r = *reinterpret_cast<Mixed*>(out);
  EXPECT_EQ(r.flag, m.flag);
  EXPECT_EQ(r.letter, m.letter);
  EXPECT_EQ(r.small, m.small);
  EXPECT_EQ(r.medium, m.medium);
  EXPECT_EQ(r.big, m.big);
  EXPECT_EQ(r.f, m.f);
  EXPECT_EQ(r.d, m.d);
  EXPECT_EQ(r.ul, m.ul);
}

TEST_F(RoundTrip, DeepListDoesNotOverflowTheCallStack) {
  constexpr int kDepth = 200000;
  std::vector<Cell> cells(kDepth);
  for (int i = 0; i < kDepth; ++i) {
    cells[i].value = i;
    cells[i].next = (i + 1 < kDepth) ? &cells[i + 1] : nullptr;
    src_.track(Segment::Heap, cells[i], "", cell_type_, 1);
  }
  Cell* head = &cells[0];
  src_.track(Segment::Global, head, "head", table_.native(typeid(Cell*)) != 0
                                                ? table_.native(typeid(Cell*))
                                                : ti::native_type_id<Cell*>(table_),
             1);
  const Address out = round_trip(&head);
  Cell* walk = *reinterpret_cast<Cell**>(out);
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_NE(walk, nullptr) << "list truncated at " << i;
    ASSERT_EQ(walk->value, i);
    walk = walk->next;
  }
  EXPECT_EQ(walk, nullptr);
  EXPECT_EQ(collect_.counter("msrm.collect.blocks_saved"), kDepth + 1u);
}

TEST_F(RoundTrip, SharedTargetIsTransferredOnce) {
  Cell shared{42, nullptr};
  Cell* fans[8];
  for (auto& f : fans) f = &shared;
  src_.track(Segment::Heap, shared, "shared", cell_type_, 1);
  src_.track(Segment::Global, fans, "fans", ti::native_type_id<Cell*>(table_), 8);
  const Address out = round_trip(fans);
  Cell* const* restored = reinterpret_cast<Cell* const*>(out);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(restored[i], restored[0]);  // still shared
  EXPECT_EQ(restored[0]->value, 42);
  EXPECT_EQ(collect_.counter("msrm.collect.blocks_saved"), 2u);  // fans + shared, once each
  EXPECT_EQ(collect_.counter("msrm.collect.refs_saved"), 7u);    // seven duplicate guards hit
}

TEST_F(RoundTrip, SelfCycleIsClosed) {
  Cell loop{7, nullptr};
  loop.next = &loop;
  src_.track(Segment::Heap, loop, "loop", cell_type_, 1);
  Cell* entry = &loop;
  src_.track(Segment::Global, entry, "entry", ti::native_type_id<Cell*>(table_), 1);
  const Address out = round_trip(&entry);
  Cell* r = *reinterpret_cast<Cell**>(out);
  EXPECT_EQ(r->value, 7);
  EXPECT_EQ(r->next, r);
  EXPECT_EQ(collect_.counter("msrm.collect.refs_saved"), 1u);
}

TEST_F(RoundTrip, InteriorPointerKeepsItsElementOffset) {
  long arr[10];
  for (int i = 0; i < 10; ++i) arr[i] = i * 100;
  long* mid = &arr[6];
  src_.track(Segment::Global, arr, "arr", table_.primitive(xdr::PrimKind::Long), 10);
  src_.track(Segment::Global, mid, "mid", ti::native_type_id<long*>(table_), 1);

  // Collect both; mid must point at element 6 of the restored array.
  xdr::Encoder enc;
  Collector collector(src_, enc);
  collector.save_variable(reinterpret_cast<Address>(&mid));
  collector.save_variable(reinterpret_cast<Address>(arr));
  const Bytes bytes = enc.take();
  xdr::Decoder dec(bytes);
  Restorer restorer(dst_, dec);
  restorer.set_auto_bind(true);
  const BlockId mid_id = restorer.restore_variable();
  const BlockId arr_id = restorer.restore_variable();
  long** mid_out = reinterpret_cast<long**>(dst_.msrlt().find_id(mid_id)->base);
  long* arr_out = reinterpret_cast<long*>(dst_.msrlt().find_id(arr_id)->base);
  EXPECT_EQ(*mid_out, arr_out + 6);
  EXPECT_EQ(**mid_out, 600);
}

TEST_F(RoundTrip, SecondVariableBecomesAReference) {
  // The paper's first/last example: collecting `first` after the list was
  // already saved emits only the edge (a PREF), never the blocks again.
  Cell a{1, nullptr}, z{2, nullptr};
  a.next = &z;
  z.next = &a;
  src_.track(Segment::Heap, a, "a", cell_type_, 1);
  src_.track(Segment::Heap, z, "z", cell_type_, 1);
  Cell* first = &a;
  Cell* last = &z;
  src_.track(Segment::Global, first, "first", ti::native_type_id<Cell*>(table_), 1);
  src_.track(Segment::Global, last, "last", ti::native_type_id<Cell*>(table_), 1);

  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  xdr::Encoder enc;
  Collector collector(src_, enc);
  collector.save_variable(reinterpret_cast<Address>(&first));
  const std::size_t after_first = enc.size();
  collector.save_variable(reinterpret_cast<Address>(&last));
  const std::size_t after_last = enc.size();
  // `last` record: PNEW header of the variable block + one PREF. Far
  // smaller than the first record which carried both cells.
  EXPECT_LT(after_last - after_first, after_first);
  EXPECT_EQ(obs::Registry::process().snapshot().delta_since(before).counter(
                "msrm.collect.blocks_saved"),
            4u);

  const Bytes bytes = enc.take();
  xdr::Decoder dec(bytes);
  Restorer restorer(dst_, dec);
  restorer.set_auto_bind(true);
  const BlockId first_id = restorer.restore_variable();
  const BlockId last_id = restorer.restore_variable();
  Cell* rf = *reinterpret_cast<Cell**>(dst_.msrlt().find_id(first_id)->base);
  Cell* rl = *reinterpret_cast<Cell**>(dst_.msrlt().find_id(last_id)->base);
  EXPECT_EQ(rf->next, rl);
  EXPECT_EQ(rl->next, rf);
}

TEST_F(RoundTrip, NullPointersStayNull) {
  Cell lonely{5, nullptr};
  src_.track(Segment::Global, lonely, "lonely", cell_type_, 1);
  const Address out = round_trip(&lonely);
  const Cell& r = *reinterpret_cast<Cell*>(out);
  EXPECT_EQ(r.value, 5);
  EXPECT_EQ(r.next, nullptr);
  EXPECT_EQ(collect_.counter("msrm.collect.nulls_saved"), 1u);
}

TEST_F(RoundTrip, SavePointerMirrorsRestorePointer) {
  Cell c{11, nullptr};
  src_.track(Segment::Heap, c, "c", cell_type_, 1);
  Cell* p = &c;
  // Paper idiom: Save_pointer(p) at the source, p = Restore_pointer() at
  // the destination — no variable block for p itself.
  xdr::Encoder enc;
  Collector collector(src_, enc);
  collector.save_pointer(reinterpret_cast<Address>(&p));
  const Bytes bytes = enc.take();
  xdr::Decoder dec(bytes);
  Restorer restorer(dst_, dec);
  restorer.set_auto_bind(true);
  Cell* restored = reinterpret_cast<Cell*>(restorer.restore_pointer());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->value, 11);
}

TEST_F(RoundTrip, SaveVariableRejectsNonBaseAddresses) {
  long arr[4] = {};
  src_.track(Segment::Global, arr, "arr", table_.primitive(xdr::PrimKind::Long), 4);
  xdr::Encoder enc;
  Collector collector(src_, enc);
  EXPECT_THROW(collector.save_variable(reinterpret_cast<Address>(&arr[1])), MsrError);
  EXPECT_THROW(collector.save_variable(reinterpret_cast<Address>(&collector)), MsrError);
}

TEST_F(RoundTrip, DanglingPointerIsDetectedAtCollection) {
  Cell c{1, nullptr};
  int stray;
  c.next = reinterpret_cast<Cell*>(&stray);  // points into untracked memory
  src_.track(Segment::Global, c, "c", cell_type_, 1);
  xdr::Encoder enc;
  Collector collector(src_, enc);
  EXPECT_THROW(collector.save_variable(reinterpret_cast<Address>(&c)), MsrError);
}

/// --- wire-level failure injection ----------------------------------------

TEST_F(RoundTrip, CorruptTagIsRejected) {
  xdr::Encoder enc;
  enc.put_u8(0x55);  // not a PtrVal tag
  const Bytes bytes = enc.take();
  xdr::Decoder dec(bytes);
  Restorer restorer(dst_, dec);
  restorer.set_auto_bind(true);
  EXPECT_THROW(restorer.restore_pointer(), WireError);
}

TEST_F(RoundTrip, TruncatedStreamIsRejected) {
  Cell c{9, nullptr};
  src_.track(Segment::Global, c, "c", cell_type_, 1);
  xdr::Encoder enc;
  Collector collector(src_, enc);
  collector.save_variable(reinterpret_cast<Address>(&c));
  Bytes bytes = enc.take();
  bytes.resize(bytes.size() / 2);
  xdr::Decoder dec(bytes);
  Restorer restorer(dst_, dec);
  restorer.set_auto_bind(true);
  EXPECT_THROW(restorer.restore_variable(), WireError);
}

TEST_F(RoundTrip, RefToUntransferredBlockIsRejected) {
  xdr::Encoder enc;
  enc.put_u8(kPtrRef);
  enc.put_u64(msr::make_block_id(Segment::Heap, 123));
  enc.put_u64(0);
  const Bytes bytes = enc.take();
  xdr::Decoder dec(bytes);
  Restorer restorer(dst_, dec);
  EXPECT_THROW(restorer.restore_pointer(), WireError);
}

TEST_F(RoundTrip, BadSegmentTagIsRejected) {
  xdr::Encoder enc;
  enc.put_u8(kPtrNew);
  enc.put_u64(msr::make_block_id(Segment::Heap, 1));
  enc.put_u64(0);
  enc.put_u8(7);  // bogus segment
  enc.put_u32(table_.primitive(xdr::PrimKind::Int));
  enc.put_u32(1);
  const Bytes bytes = enc.take();
  xdr::Decoder dec(bytes);
  Restorer restorer(dst_, dec);
  restorer.set_auto_bind(true);
  EXPECT_THROW(restorer.restore_pointer(), WireError);
}

TEST_F(RoundTrip, UnknownTypeIdIsRejected) {
  xdr::Encoder enc;
  enc.put_u8(kPtrNew);
  enc.put_u64(msr::make_block_id(Segment::Heap, 1));
  enc.put_u64(0);
  enc.put_u8(2);      // heap
  enc.put_u32(9999);  // no such type
  enc.put_u32(1);
  const Bytes bytes = enc.take();
  xdr::Decoder dec(bytes);
  Restorer restorer(dst_, dec);
  restorer.set_auto_bind(true);
  EXPECT_THROW(restorer.restore_pointer(), TypeError);
}

TEST_F(RoundTrip, BoundBlockShapeMismatchIsRejected) {
  // Destination pre-binds a variable of one shape; the stream claims
  // another: restoration must refuse rather than corrupt memory.
  Cell c{1, nullptr};
  src_.track(Segment::Stack, c, "c", cell_type_, 1);
  xdr::Encoder enc;
  Collector collector(src_, enc);
  collector.save_variable(reinterpret_cast<Address>(&c));
  const Bytes bytes = enc.take();

  long wrong = 0;
  const BlockId dest_id =
      dst_.track(Segment::Stack, wrong, "c", table_.primitive(xdr::PrimKind::Long), 1);
  xdr::Decoder dec(bytes);
  Restorer restorer(dst_, dec);
  const BlockId src_id = src_.msrlt().find_containing(reinterpret_cast<Address>(&c))->id;
  EXPECT_THROW(restorer.bind(src_id, dest_id, cell_type_, 1), MsrError);
}

TEST_F(RoundTrip, StreamSealDetectsCorruptionAndTruncation) {
  xdr::Encoder enc;
  write_header(enc, {"native", 42});
  enc.put_u32(0xABCD);
  finish_stream(enc);
  Bytes good = enc.take();
  EXPECT_NO_THROW(check_stream(good));

  Bytes flipped = good;
  flipped[8] ^= 0x01;
  EXPECT_THROW(check_stream(flipped), WireError);

  Bytes truncated(good.begin(), good.end() - 3);
  EXPECT_THROW(check_stream(truncated), WireError);

  Bytes tiny{1, 2, 3};
  EXPECT_THROW(check_stream(tiny), WireError);
}

TEST_F(RoundTrip, HeaderMagicAndVersionAreEnforced) {
  xdr::Encoder enc;
  enc.put_u32(0x12345678);
  xdr::Decoder dec(enc.bytes());
  EXPECT_THROW(read_header(dec), WireError);

  xdr::Encoder enc2;
  enc2.put_u32(kMagic);
  enc2.put_u16(99);
  xdr::Decoder dec2(enc2.bytes());
  EXPECT_THROW(read_header(dec2), WireError);
}

}  // namespace
}  // namespace hpm::msrm
