// RttEstimator / DeadlinePolicy: the adaptive-deadline math as a pure
// unit — deterministic sample sequences in, exact EWMA/deviation/RTO
// values out, clamps at both ends, and the cold-start contract.
#include <gtest/gtest.h>

#include <chrono>

#include "net/deadline.hpp"

namespace hpm::net {
namespace {

using std::chrono::milliseconds;

TEST(RttEstimator, ColdStartIsTheCeiling) {
  RttEstimator est({.floor_s = 0.25, .ceiling_s = 5.0, .multiplier = 8.0});
  EXPECT_FALSE(est.warm());
  EXPECT_EQ(est.sample_count(), 0u);
  // No sample yet: the most conservative deadline the config allows.
  EXPECT_DOUBLE_EQ(est.rto_s(), 5.0);
  EXPECT_DOUBLE_EQ(est.deadline_s(), 5.0);
}

TEST(RttEstimator, FirstSampleSeedsPerRfc6298) {
  RttEstimator est({.floor_s = 0.0, .ceiling_s = 100.0, .multiplier = 1.0});
  est.sample(0.1);
  // srtt = r, rttvar = r/2, rto = srtt + 4*rttvar = 3r.
  EXPECT_TRUE(est.warm());
  EXPECT_DOUBLE_EQ(est.srtt_s(), 0.1);
  EXPECT_DOUBLE_EQ(est.rttvar_s(), 0.05);
  EXPECT_NEAR(est.rto_s(), 0.3, 1e-12);
}

TEST(RttEstimator, SteadySamplesConvergeAndVarianceDies) {
  RttEstimator est({.floor_s = 0.0, .ceiling_s = 100.0, .multiplier = 1.0});
  for (int i = 0; i < 200; ++i) est.sample(0.1);
  // A perfectly steady link: srtt is the RTT, the deviation term decays
  // toward zero, so the RTO tightens toward the RTT itself.
  EXPECT_NEAR(est.srtt_s(), 0.1, 1e-9);
  EXPECT_NEAR(est.rttvar_s(), 0.0, 1e-6);
  EXPECT_NEAR(est.rto_s(), 0.1, 1e-5);
}

TEST(RttEstimator, ExactTwoSampleSequence) {
  RttEstimator est({.floor_s = 0.0, .ceiling_s = 100.0, .multiplier = 1.0});
  est.sample(0.100);
  est.sample(0.200);
  // Deviation first, against the OLD srtt (0.1): rttvar = 0.05 + (|0.1 -
  // 0.2| - 0.05)/4 = 0.0625; then srtt = 0.1 + (0.2 - 0.1)/8 = 0.1125.
  EXPECT_NEAR(est.rttvar_s(), 0.0625, 1e-12);
  EXPECT_NEAR(est.srtt_s(), 0.1125, 1e-12);
  EXPECT_NEAR(est.rto_s(), 0.1125 + 4 * 0.0625, 1e-12);
}

TEST(RttEstimator, JitterWidensTheBound) {
  RttEstimator steady({.floor_s = 0.0, .ceiling_s = 100.0, .multiplier = 1.0});
  RttEstimator jittery({.floor_s = 0.0, .ceiling_s = 100.0, .multiplier = 1.0});
  for (int i = 0; i < 100; ++i) {
    steady.sample(0.1);
    jittery.sample(i % 2 == 0 ? 0.05 : 0.15);  // same mean, high deviation
  }
  EXPECT_NEAR(steady.srtt_s(), jittery.srtt_s(), 0.02);
  EXPECT_GT(jittery.rto_s(), steady.rto_s() + 0.1);
}

TEST(RttEstimator, FloorAndCeilingClamp) {
  RttEstimator est({.floor_s = 0.25, .ceiling_s = 5.0, .multiplier = 8.0});
  for (int i = 0; i < 50; ++i) est.sample(0.001);  // sub-ms LAN
  // 8 * rto would be ~8ms; the floor keeps the deadline sane.
  EXPECT_DOUBLE_EQ(est.rto_s(), 0.25);
  EXPECT_DOUBLE_EQ(est.deadline_s(), 0.25);

  RttEstimator slow({.floor_s = 0.25, .ceiling_s = 5.0, .multiplier = 8.0});
  for (int i = 0; i < 50; ++i) slow.sample(30.0);  // absurd samples
  EXPECT_DOUBLE_EQ(slow.rto_s(), 5.0);
  EXPECT_DOUBLE_EQ(slow.deadline_s(), 5.0);
}

TEST(RttEstimator, NegativeSamplesAreClampedToZero) {
  RttEstimator est({.floor_s = 0.0, .ceiling_s = 100.0, .multiplier = 1.0});
  est.sample(-3.0);  // clock skew artifact must not poison the estimate
  EXPECT_DOUBLE_EQ(est.srtt_s(), 0.0);
  EXPECT_DOUBLE_EQ(est.rttvar_s(), 0.0);
}

TEST(DeadlinePolicy, FixedReproducesTheLegacyTimeout) {
  const auto policy = DeadlinePolicy::fixed(milliseconds(1500));
  EXPECT_FALSE(policy->is_adaptive());
  EXPECT_EQ(policy->current(), milliseconds(1500));
  policy->observe_rtt(0.001);  // no-op on a fixed policy
  EXPECT_EQ(policy->current(), milliseconds(1500));
  EXPECT_DOUBLE_EQ(policy->srtt_ms(), 0.0);
}

TEST(DeadlinePolicy, FixedZeroMeansUnbounded) {
  const auto policy = DeadlinePolicy::fixed(milliseconds(0));
  EXPECT_EQ(policy->current(), milliseconds(0));
}

TEST(DeadlinePolicy, AdaptiveStartsAtCeilingThenTracksRtt) {
  const auto policy =
      DeadlinePolicy::adaptive({.floor_s = 0.25, .ceiling_s = 5.0, .multiplier = 8.0});
  EXPECT_TRUE(policy->is_adaptive());
  EXPECT_EQ(policy->current(), milliseconds(5000));  // cold start = ceiling

  for (int i = 0; i < 100; ++i) policy->observe_rtt(0.010);
  // srtt -> 10ms; rto -> ~10ms; deadline = clamp(8 * rto) -> well under
  // the ceiling but never under the floor.
  EXPECT_NEAR(policy->srtt_ms(), 10.0, 1.0);
  EXPECT_GE(policy->current(), milliseconds(250));
  EXPECT_LT(policy->current(), milliseconds(1000));
}

TEST(DeadlinePolicy, AdaptiveNeverHandsOutZero) {
  const auto policy =
      DeadlinePolicy::adaptive({.floor_s = 0.05, .ceiling_s = 5.0, .multiplier = 1.0});
  for (int i = 0; i < 20; ++i) policy->observe_rtt(0.0);
  // Even a pathological all-zero RTT stream clamps at the floor: an
  // adaptive policy must never silently turn deadlines OFF.
  EXPECT_GE(policy->current(), milliseconds(50));
}

}  // namespace
}  // namespace hpm::net
