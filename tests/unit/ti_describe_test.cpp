// Native registration (StructBuilder / HPM_TI_FIELD): the hand-written
// stand-in for pre-compiler output, with layout cross-validation.
#include <gtest/gtest.h>

#include "ti/describe.hpp"

namespace hpm::ti {
namespace {

using xdr::PrimKind;

struct Simple {
  int a;
  double b;
};

struct SelfRef {
  float data;
  SelfRef* link;
};

struct WithArrays {
  short tag;
  long values[6];
  SelfRef* links[2];
};

TEST(NativeTypeId, MapsEveryPrimitive) {
  TypeTable t;
  EXPECT_EQ(native_type_id<int>(t), t.primitive(PrimKind::Int));
  EXPECT_EQ(native_type_id<unsigned long long>(t), t.primitive(PrimKind::ULongLong));
  EXPECT_EQ(native_type_id<signed char>(t), t.primitive(PrimKind::SChar));
  EXPECT_EQ(native_type_id<bool>(t), t.primitive(PrimKind::Bool));
  EXPECT_EQ(native_type_id<const double>(t), t.primitive(PrimKind::Double));
}

TEST(NativeTypeId, BuildsPointerAndArrayShells) {
  TypeTable t;
  const TypeId p = native_type_id<int*>(t);
  EXPECT_EQ(t.at(p).kind, TypeKind::Pointer);
  const TypeId pp = native_type_id<int**>(t);
  EXPECT_EQ(t.at(pp).pointee, p);
  const TypeId arr = native_type_id<double[7]>(t);
  EXPECT_EQ(t.at(arr).kind, TypeKind::Array);
  EXPECT_EQ(t.at(arr).count, 7u);
  const TypeId pa = native_type_id<int(*)[10]>(t);
  EXPECT_EQ(t.spell(pa), "int[10] *");
}

TEST(NativeTypeId, UnregisteredClassThrows) {
  TypeTable t;
  EXPECT_THROW(native_type_id<Simple>(t), TypeError);
}

TEST(StructBuilder, RegistersAndValidatesAgainstCompilerLayout) {
  TypeTable t;
  StructBuilder<Simple> b(t, "simple");
  HPM_TI_FIELD(b, Simple, a);
  HPM_TI_FIELD(b, Simple, b);
  const TypeId id = b.commit();
  EXPECT_EQ(t.find_struct("simple"), id);
  EXPECT_EQ(native_type_id<Simple>(t), id);
  const LayoutMap native(t, xdr::native_arch());
  EXPECT_EQ(native.of(id).size, sizeof(Simple));
  EXPECT_EQ(native.of(id).field_offsets[1], offsetof(Simple, b));
}

TEST(StructBuilder, SelfReferentialStructWorks) {
  TypeTable t;
  StructBuilder<SelfRef> b(t, "self");
  HPM_TI_FIELD(b, SelfRef, data);
  HPM_TI_FIELD(b, SelfRef, link);
  const TypeId id = b.commit();
  EXPECT_EQ(t.at(t.at(id).fields[1].type).pointee, id);
}

TEST(StructBuilder, ArrayFieldsWork) {
  TypeTable t;
  {
    StructBuilder<SelfRef> b(t, "self");
    HPM_TI_FIELD(b, SelfRef, data);
    HPM_TI_FIELD(b, SelfRef, link);
    b.commit();
  }
  StructBuilder<WithArrays> b(t, "with_arrays");
  HPM_TI_FIELD(b, WithArrays, tag);
  HPM_TI_FIELD(b, WithArrays, values);
  HPM_TI_FIELD(b, WithArrays, links);
  const TypeId id = b.commit();
  const LayoutMap native(t, xdr::native_arch());
  EXPECT_EQ(native.of(id).size, sizeof(WithArrays));
  EXPECT_EQ(native.of(id).field_offsets[2], offsetof(WithArrays, links));
}

TEST(StructBuilder, MissingFieldIsCaughtBySizeCheck) {
  TypeTable t;
  StructBuilder<Simple> b(t, "broken");
  HPM_TI_FIELD(b, Simple, a);  // forgot `b`
  EXPECT_THROW(b.commit(), TypeError);
}

TEST(StructBuilder, WrongOffsetIsCaught) {
  TypeTable t;
  StructBuilder<Simple> b(t, "shifted");
  b.field<int>("a", 0);
  b.field<double>("b", 4);  // real offset is 8 on every 8-aligned host
  if (alignof(double) == 8) {
    EXPECT_THROW(b.commit(), TypeError);
  }
}

TEST(StructBuilder, DoubleRegistrationOfSameNativeTypeThrows) {
  TypeTable t;
  {
    StructBuilder<Simple> b(t, "one");
    HPM_TI_FIELD(b, Simple, a);
    HPM_TI_FIELD(b, Simple, b);
    b.commit();
  }
  EXPECT_THROW((StructBuilder<Simple>(t, "two")), TypeError);
}

}  // namespace
}  // namespace hpm::ti
