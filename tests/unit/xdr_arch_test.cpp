// Architecture descriptor presets and the common/crc/rng plumbing.
#include <gtest/gtest.h>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/hexdump.hpp"
#include "common/rng.hpp"
#include "xdr/arch.hpp"

namespace hpm {
namespace {

using xdr::ArchDescriptor;
using xdr::PrimKind;

TEST(Arch, PaperTestbedPairIsTrulyHeterogeneous) {
  // DEC 5000/120 vs SPARC 20: "truly heterogeneous because both systems
  // use different endianness" (paper §4.1).
  EXPECT_EQ(xdr::dec5000_ultrix().order, xdr::ByteOrder::Little);
  EXPECT_EQ(xdr::sparc20_solaris().order, xdr::ByteOrder::Big);
  EXPECT_FALSE(xdr::dec5000_ultrix().same_data_model(xdr::sparc20_solaris()));
}

TEST(Arch, Ilp32PresetsHave4ByteLongsAndPointers) {
  for (const auto* a : {&xdr::dec5000_ultrix(), &xdr::sparc20_solaris(),
                        &xdr::ultra5_solaris(), &xdr::arm32_linux(), &xdr::i386_linux()}) {
    EXPECT_EQ(a->layout(PrimKind::Long).size, 4u) << a->name;
    EXPECT_EQ(a->pointer.size, 4u) << a->name;
    EXPECT_EQ(a->layout(PrimKind::LongLong).size, 8u) << a->name;
  }
}

TEST(Arch, I386AlignsDoubleTo4Bytes) {
  EXPECT_EQ(xdr::i386_linux().layout(PrimKind::Double).align, 4u);
  EXPECT_EQ(xdr::sparc20_solaris().layout(PrimKind::Double).align, 8u);
}

TEST(Arch, Ultra5AndSparc20ShareADataModel) {
  EXPECT_TRUE(xdr::ultra5_solaris().same_data_model(xdr::sparc20_solaris()));
}

TEST(Arch, ByNameResolvesEveryPresetAndRejectsUnknown) {
  for (const auto name : xdr::arch_names()) {
    EXPECT_EQ(xdr::arch_by_name(name).name, name);
  }
  EXPECT_THROW(xdr::arch_by_name("vax_vms"), TypeError);
}

TEST(Arch, NativeMatchesCompilerLayout) {
  const ArchDescriptor& n = xdr::native_arch();
  EXPECT_EQ(n.layout(PrimKind::Int).size, sizeof(int));
  EXPECT_EQ(n.layout(PrimKind::Long).size, sizeof(long));
  EXPECT_EQ(n.layout(PrimKind::Double).align, alignof(double));
  EXPECT_EQ(n.pointer.size, sizeof(void*));
}

TEST(Arch, CanonicalSizesCoverWidestModel) {
  for (std::size_t i = 0; i < xdr::kNumPrimKinds; ++i) {
    const auto kind = static_cast<PrimKind>(i);
    for (const auto name : xdr::arch_names()) {
      EXPECT_GE(xdr::canonical_size(kind), xdr::arch_by_name(name).layout(kind).size)
          << prim_name(kind) << " on " << name;
    }
  }
}

TEST(Crc32, MatchesKnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (standard check value).
  EXPECT_EQ(Crc32::of("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  Crc32 inc;
  inc.update("12345", 5);
  inc.update("6789", 4);
  EXPECT_EQ(inc.value(), Crc32::of("123456789", 9));
}

TEST(Crc32, EmptyInputHasDefinedValue) { EXPECT_EQ(Crc32::of("", 0), 0u); }

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BoundsAreRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const int v = rng.next_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Hexdump, RendersOffsetsHexAndAscii) {
  const std::string s = hexdump("AB\x01", 3);
  EXPECT_NE(s.find("41 42 01"), std::string::npos);
  EXPECT_NE(s.find("|AB.|"), std::string::npos);
}

TEST(Hexdump, TruncatesLongBuffers) {
  std::vector<std::uint8_t> big(1000, 0x42);
  const std::string s = hexdump(big.data(), big.size(), 64);
  EXPECT_NE(s.find("more bytes"), std::string::npos);
}

}  // namespace
}  // namespace hpm
