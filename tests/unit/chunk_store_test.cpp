// Unit tests of the content-addressed chunk store (DESIGN.md §15):
// address stability, the CRC + digest verification that turns damaged or
// poisoned entries into plain misses, torn-entry tolerance at open(), LRU
// eviction to the byte budget, and the last-run stats surface behind
// `hpmtool chunk-cache`.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>

#include "common/crc32.hpp"
#include "mig/chunk_store.hpp"
#include "msrm/stream.hpp"

namespace hpm::mig {
namespace {

namespace fs = std::filesystem;

class ChunkStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("hpm_chunk_store_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static Bytes body_of(std::uint64_t seed, std::size_t n) {
    std::mt19937_64 rng(seed);
    Bytes b(n);
    for (std::uint8_t& x : b) x = static_cast<std::uint8_t>(rng());
    return b;
  }

  std::string dir_;
};

TEST_F(ChunkStoreTest, AddressIsStableAndLengthQualified) {
  const Bytes a = body_of(1, 100);
  EXPECT_EQ(ChunkStore::address_of(a), ChunkStore::address_of(a));
  EXPECT_EQ(ChunkStore::address_of(a).digest, msrm::StreamDigest::of(a));
  EXPECT_EQ(ChunkStore::address_of(a).length, 100u);
  const Bytes b = body_of(2, 100);
  EXPECT_NE(ChunkStore::address_of(a), ChunkStore::address_of(b));
}

TEST_F(ChunkStoreTest, PutLoadRoundTrip) {
  ChunkStore store(dir_);
  store.open();
  const Bytes body = body_of(7, 777);
  const ChunkAddr addr = ChunkStore::address_of(body);
  EXPECT_FALSE(store.contains(addr));
  store.put(body);
  EXPECT_TRUE(store.contains(addr));
  EXPECT_EQ(store.entries(), 1u);
  Bytes out;
  ASSERT_TRUE(store.load(addr, out));
  EXPECT_EQ(out, body);
  // A second put of the same body is an LRU touch, not a new entry.
  store.put(body);
  EXPECT_EQ(store.entries(), 1u);
}

TEST_F(ChunkStoreTest, SurvivesReopen) {
  {
    ChunkStore store(dir_);
    store.open();
    store.put(body_of(1, 64));
    store.put(body_of(2, 256));
    store.sync_dir();
  }
  ChunkStore reopened(dir_);
  reopened.open();
  EXPECT_EQ(reopened.entries(), 2u);
  Bytes out;
  EXPECT_TRUE(reopened.load(ChunkStore::address_of(body_of(1, 64)), out));
  EXPECT_EQ(out, body_of(1, 64));
}

TEST_F(ChunkStoreTest, TornEntryIsDroppedAtOpen) {
  const Bytes body = body_of(3, 512);
  const ChunkAddr addr = ChunkStore::address_of(body);
  {
    ChunkStore store(dir_);
    store.open();
    store.put(body);
  }
  // Truncate the entry file mid-body: a crashed run's torn write.
  std::string victim;
  for (const fs::directory_entry& de : fs::directory_iterator(dir_)) {
    if (de.path().extension() == ".chunk") victim = de.path().string();
  }
  ASSERT_FALSE(victim.empty());
  fs::resize_file(victim, 100);
  ChunkStore reopened(dir_);
  reopened.open();
  EXPECT_EQ(reopened.entries(), 0u);
  EXPECT_FALSE(fs::exists(victim)) << "torn entry must be unlinked, not kept";
  EXPECT_FALSE(reopened.contains(addr));
}

TEST_F(ChunkStoreTest, CorruptedBodyIsAMissAndUnlinked) {
  const Bytes body = body_of(4, 512);
  const ChunkAddr addr = ChunkStore::address_of(body);
  ChunkStore store(dir_);
  store.open();
  store.put(body);
  // Flip one body byte (size unchanged, so open()-style checks pass; only
  // load()'s CRC/digest verification can catch it).
  std::string victim;
  for (const fs::directory_entry& de : fs::directory_iterator(dir_)) {
    if (de.path().extension() == ".chunk") victim = de.path().string();
  }
  ASSERT_FALSE(victim.empty());
  {
    std::FILE* f = std::fopen(victim.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 16 + 40, SEEK_SET), 0);  // header + 40 into the body
    const int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, 16 + 40, SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  Bytes out;
  EXPECT_FALSE(store.load(addr, out)) << "damage must degrade to a miss";
  EXPECT_FALSE(store.contains(addr));
  EXPECT_FALSE(fs::exists(victim));
  // The miss is re-fillable: a fresh put restores service.
  store.put(body);
  EXPECT_TRUE(store.load(addr, out));
  EXPECT_EQ(out, body);
}

TEST_F(ChunkStoreTest, PoisonedEntryWithForgedCrcStillMisses) {
  // Forge an entry whose header and CRC are fully self-consistent — the
  // claimed address in both name and header, a CRC computed over the
  // forged record — but whose BODY does not hash to that address: a
  // deliberately poisoned cache. Only load()'s digest recomputation can
  // catch this, and it must turn the entry into a miss.
  const Bytes real = body_of(5, 128);
  const ChunkAddr addr = ChunkStore::address_of(real);
  const Bytes lie = body_of(6, 128);
  fs::create_directories(dir_);
  {
    Bytes record(20 + lie.size());
    record[0] = 0x48;  // 'H'  (kEntryMagic, big-endian)
    record[1] = 0x50;  // 'P'
    record[2] = 0x4D;  // 'M'
    record[3] = 0x43;  // 'C'
    for (int i = 0; i < 8; ++i) {
      record[4 + i] = static_cast<std::uint8_t>(addr.digest >> (8 * (7 - i)));
    }
    for (int i = 0; i < 4; ++i) {
      record[12 + i] = static_cast<std::uint8_t>(addr.length >> (8 * (3 - i)));
    }
    std::copy(lie.begin(), lie.end(), record.begin() + 16);
    const std::uint32_t crc = Crc32::of(record.data(), 16 + lie.size());
    for (int i = 0; i < 4; ++i) {
      record[16 + lie.size() + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(crc >> (8 * (3 - i)));
    }
    char forged[64];
    std::snprintf(forged, sizeof(forged), "%016llx-%lu.chunk",
                  static_cast<unsigned long long>(addr.digest),
                  static_cast<unsigned long>(addr.length));
    std::FILE* f = std::fopen((fs::path(dir_) / forged).string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(record.data(), 1, record.size(), f), record.size());
    std::fclose(f);
  }
  ChunkStore store(dir_);
  store.open();
  EXPECT_TRUE(store.contains(addr)) << "the forgery is indexed until load proves it wrong";
  Bytes out;
  EXPECT_FALSE(store.load(addr, out));
  EXPECT_FALSE(store.contains(addr));
}

TEST_F(ChunkStoreTest, EvictsLeastRecentlyUsedToBudget) {
  // Each entry is 100 body bytes + 20 overhead = 120 on disk. A 400-byte
  // budget holds three entries.
  ChunkStore store(dir_, 400);
  store.open();
  store.put(body_of(10, 100));
  store.put(body_of(11, 100));
  store.put(body_of(12, 100));
  EXPECT_EQ(store.entries(), 3u);
  // Touch the oldest so it is MRU, then overflow: the eviction must take
  // entry 11 (now least recent), not 10.
  Bytes out;
  ASSERT_TRUE(store.load(ChunkStore::address_of(body_of(10, 100)), out));
  store.put(body_of(13, 100));
  EXPECT_EQ(store.entries(), 3u);
  EXPECT_LE(store.bytes(), 400u);
  EXPECT_TRUE(store.contains(ChunkStore::address_of(body_of(10, 100))));
  EXPECT_FALSE(store.contains(ChunkStore::address_of(body_of(11, 100))));
  EXPECT_TRUE(store.contains(ChunkStore::address_of(body_of(13, 100))));
}

TEST_F(ChunkStoreTest, GcShrinksToBudget) {
  ChunkStore store(dir_);
  store.open();
  for (std::uint64_t s = 0; s < 8; ++s) store.put(body_of(s, 100));
  EXPECT_EQ(store.entries(), 8u);
  const std::size_t evicted = store.gc(3 * 120);
  EXPECT_EQ(evicted, 5u);
  EXPECT_EQ(store.entries(), 3u);
  EXPECT_LE(store.bytes(), 3u * 120u);
  // gc(0) may empty the store entirely (unlike put's keep-one eviction).
  EXPECT_EQ(store.gc(0), 3u);
  EXPECT_EQ(store.entries(), 0u);
}

TEST_F(ChunkStoreTest, RunStatsRoundTripAndToleratesDamage) {
  ChunkStore store(dir_);
  store.open();
  EXPECT_FALSE(ChunkStore::read_run_stats(dir_).valid);
  store.note_run(100, 98, 2);
  const ChunkStore::RunStats stats = ChunkStore::read_run_stats(dir_);
  ASSERT_TRUE(stats.valid);
  EXPECT_EQ(stats.manifest_chunks, 100u);
  EXPECT_EQ(stats.hits, 98u);
  EXPECT_EQ(stats.misses, 2u);
  // A damaged stats file is invalid, never an exception.
  std::FILE* f = std::fopen((dir_ + "/last-run.stats").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not-a-stats-file", f);
  std::fclose(f);
  EXPECT_FALSE(ChunkStore::read_run_stats(dir_).valid);
}

TEST_F(ChunkStoreTest, DirectoryLockExcludesASecondProcess) {
  // Two PROCESSES sharing one store directory (a warm standby and its
  // host's own migrations) must serialize their scans and GC sweeps on
  // the advisory flock of <dir>/.lock. Holding the lock here and fork()ing
  // a child that open()s the same store proves the child actually blocks
  // on the kernel lock — a thread mutex cannot provide that.
  {
    ChunkStore store(dir_);
    store.open();
    store.put(body_of(1, 512));
    store.put(body_of(2, 512));
    store.sync_dir();
  }
  const int lock_fd = ::open((dir_ + "/.lock").c_str(), O_CREAT | O_RDWR, 0644);
  ASSERT_GE(lock_fd, 0);
  ASSERT_EQ(::flock(lock_fd, LOCK_EX), 0);

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: the open() scan and the gc() sweep both take the directory
    // lock, so this blocks until the parent releases it. No gtest in the
    // child — it reports through the pipe + exit status only.
    ::close(pipe_fds[0]);
    ChunkStore peer(dir_);
    peer.open();
    peer.gc(1ull << 20);
    const char ok = peer.entries() == 2 ? '1' : '0';
    (void)!::write(pipe_fds[1], &ok, 1);
    ::_exit(0);
  }
  ::close(pipe_fds[1]);

  // While the lock is held the child must NOT complete its open().
  struct pollfd pfd{pipe_fds[0], POLLIN, 0};
  EXPECT_EQ(::poll(&pfd, 1, 300), 0)
      << "the child finished open()/gc() while the directory lock was held";

  ASSERT_EQ(::flock(lock_fd, LOCK_UN), 0);
  // Released: the child acquires the lock, finishes, and reports.
  ASSERT_EQ(::poll(&pfd, 1, 10'000), 1) << "child never finished after unlock";
  char verdict = '?';
  ASSERT_EQ(::read(pipe_fds[0], &verdict, 1), 1);
  EXPECT_EQ(verdict, '1') << "child saw a wrong entry count through the lock";
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ::close(pipe_fds[0]);
  ::close(lock_fd);

  // Both processes' views stay coherent: everything still loads.
  ChunkStore after(dir_);
  after.open();
  EXPECT_EQ(after.entries(), 2u);
  Bytes out;
  EXPECT_TRUE(after.load(ChunkStore::address_of(body_of(1, 512)), out));
  EXPECT_EQ(out, body_of(1, 512));
}

TEST_F(ChunkStoreTest, ForeignFilesAreIgnoredAtOpen) {
  fs::create_directories(dir_);
  std::FILE* f = std::fopen((dir_ + "/README.txt").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("hello", f);
  std::fclose(f);
  ChunkStore store(dir_);
  store.open();
  EXPECT_EQ(store.entries(), 0u);
  EXPECT_TRUE(fs::exists(dir_ + "/README.txt")) << "only .chunk entries are managed";
}

}  // namespace
}  // namespace hpm::mig
