// Workload-level unit tests: the three paper programs behave correctly
// WITHOUT migration (algorithmic baselines) and leak nothing.
#include <gtest/gtest.h>

#include "apps/bitonic.hpp"
#include "apps/linpack.hpp"
#include "apps/test_pointer.hpp"
#include "apps/workload.hpp"

namespace hpm::apps {
namespace {

TEST(LinpackApp, SolvesAccuratelyAcrossSizes) {
  for (int n : {5, 17, 64, 150}) {
    ti::TypeTable t;
    linpack_register_types(t);
    mig::MigContext ctx(t);
    LinpackResult result;
    linpack_program(ctx, n, 1, &result);
    EXPECT_TRUE(result.ok()) << "n=" << n << " normalized=" << result.normalized;
    EXPECT_EQ(ctx.live_heap_blocks(), 0u) << "leaked blocks at n=" << n;
  }
}

TEST(LinpackApp, DifferentSeedsGiveDifferentSystemsButBothSolve) {
  ti::TypeTable t;
  linpack_register_types(t);
  mig::MigContext ctx(t);
  LinpackResult r1, r2;
  linpack_program(ctx, 40, 1, &r1);
  linpack_program(ctx, 40, 2, &r2);
  EXPECT_TRUE(r1.ok());
  EXPECT_TRUE(r2.ok());
  EXPECT_NE(r1.residual, r2.residual);
}

TEST(LinpackApp, LiveBytesFormulaMatchesReality) {
  // The Figure 2(a) x-axis helper must track the real stream volume to
  // within the small fixed overhead (headers, ids, small locals).
  ti::TypeTable t;
  linpack_register_types(t);
  mig::MigContext ctx(t);
  ctx.set_migrate_at_poll(1);
  LinpackResult result;
  EXPECT_THROW(linpack_program(ctx, 100, 1, &result), mig::MigrationExit);
  const std::uint64_t predicted = linpack_live_bytes(100);
  EXPECT_GT(ctx.stream().size(), predicted);
  EXPECT_LT(ctx.stream().size(), predicted + 4096);
}

TEST(BitonicApp, SortsPowerOfTwoSizes) {
  for (int log2_leaves : {0, 1, 3, 6, 9}) {
    ti::TypeTable t;
    bitonic_register_types(t);
    mig::MigContext ctx(t);
    BitonicResult result;
    bitonic_program(ctx, log2_leaves, 123, &result);
    EXPECT_TRUE(result.ok()) << "leaves=" << (1 << log2_leaves);
    EXPECT_EQ(result.leaves, 1u << log2_leaves);
    EXPECT_EQ(ctx.live_heap_blocks(), 0u);
  }
}

TEST(BitonicApp, BlockCountFormulaIsExact) {
  ti::TypeTable t;
  bitonic_register_types(t);
  mig::MigContext ctx(t);
  ctx.set_migrate_at_poll(1);
  BitonicResult result;
  EXPECT_THROW(bitonic_program(ctx, 4, 1, &result), mig::MigrationExit);
  // Heap nodes = 2^(d+1)-1; plus a handful of stack/global var blocks.
  const std::uint64_t saved = ctx.metrics().collect.counter("msrm.collect.blocks_saved");
  EXPECT_GE(saved, bitonic_block_count(4));
  EXPECT_LE(saved, bitonic_block_count(4) + 32);
}

TEST(TestPointerApp, AllInvariantsHoldWithoutMigration) {
  ti::TypeTable t;
  test_pointer_register_types(t);
  mig::MigContext ctx(t);
  TestPointerResult result;
  test_pointer_program(ctx, 9, &result);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(ctx.live_heap_blocks(), 0u);
}

TEST(TestPointerApp, SeedParameterizesTheScalarTarget) {
  ti::TypeTable t;
  test_pointer_register_types(t);
  mig::MigContext ctx(t);
  TestPointerResult result;
  test_pointer_program(ctx, 55, &result);  // 42 + 55 = 97
  EXPECT_TRUE(result.ok());
}

TEST(Workload, GraphShapeControlsMatter) {
  ti::TypeTable t;
  workload_register_types(t);
  mig::MigContext ctx(t);
  GraphShape sparse;
  sparse.nodes = 100;
  sparse.edge_density = 0.0;
  const auto isolated = build_random_graph(ctx, 1, sparse);
  for (const RandNode* n : isolated) {
    for (const RandNode* e : n->out) EXPECT_EQ(e, nullptr);
  }
  GraphShape dense;
  dense.nodes = 100;
  dense.edge_density = 1.0;
  const auto connected = build_random_graph(ctx, 1, dense);
  int edges = 0;
  for (const RandNode* n : connected) {
    for (const RandNode* e : n->out) edges += (e != nullptr);
  }
  EXPECT_EQ(edges, 400);
}

TEST(Workload, FingerprintDetectsPayloadCorruption) {
  ti::TypeTable t;
  workload_register_types(t);
  mig::MigContext ctx(t);
  GraphShape shape;
  shape.nodes = 30;
  const auto nodes = build_random_graph(ctx, 5, shape);
  const std::uint64_t before = graph_fingerprint(nodes[0]);
  nodes[0]->weight += 1.0;
  EXPECT_NE(graph_fingerprint(nodes[0]), before);
}

TEST(Workload, FingerprintDetectsLostSharing) {
  ti::TypeTable t;
  workload_register_types(t);
  mig::MigContext ctx(t);
  // a -> {b, b}: shared. Duplicating b changes the fingerprint even
  // though all payloads match — the duplication detector.
  RandNode* a = ctx.heap_alloc<RandNode>(1, "a");
  RandNode* b = ctx.heap_alloc<RandNode>(1, "b");
  RandNode* b2 = ctx.heap_alloc<RandNode>(1, "b2");
  a->tag = 1;
  b->tag = 2;
  b2->tag = 2;
  b->weight = b2->weight = 0.5;
  b->flavor = b2->flavor = 3;
  a->out[0] = b;
  a->out[1] = b;
  const std::uint64_t shared = graph_fingerprint(a);
  a->out[1] = b2;  // same payload, sharing broken
  EXPECT_NE(graph_fingerprint(a), shared);
}

}  // namespace
}  // namespace hpm::apps
