// ChunkAssembler under attack: a hostile or buggy peer sending duplicate
// or out-of-order sequence numbers, chunks after the end of stream, or a
// StateEnd whose totals contradict what actually arrived. Every violation
// must surface as the typed hpm::ProtocolError (producer side) and poison
// the assembler so the consumer fails instead of decoding garbage.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "mig/chunk_assembler.hpp"

namespace hpm::mig {
namespace {

Bytes bytes_of(std::initializer_list<std::uint8_t> init) { return Bytes(init); }

net::StateEndInfo end_info(std::uint32_t chunks, std::uint64_t total,
                           std::uint64_t digest = 0) {
  net::StateEndInfo info;
  info.chunk_count = chunks;
  info.total_bytes = total;
  info.digest = digest;
  return info;
}

TEST(ChunkAssembler, OrderedChunksRoundTrip) {
  ChunkAssembler a;
  a.append(0, bytes_of({1, 2, 3}));
  a.append(1, bytes_of({4, 5}));
  a.finish(end_info(2, 5, 0x1234));
  EXPECT_EQ(a.await_complete(), 5u);
  EXPECT_EQ(a.chunks_received(), 2u);
  EXPECT_EQ(a.end_info().digest, 0x1234u);

  Bytes out;
  EXPECT_TRUE(a.fetch(out, 5));
  EXPECT_EQ(out, bytes_of({1, 2, 3, 4, 5}));
  EXPECT_FALSE(a.fetch(out, 5)) << "stream complete and exhausted";
}

TEST(ChunkAssembler, DuplicateSequenceIsAProtocolError) {
  ChunkAssembler a;
  a.append(0, bytes_of({1}));
  EXPECT_THROW(a.append(0, bytes_of({1})), ProtocolError);
  // Poisoned: the consumer sees the failure, not a partial stream.
  Bytes out;
  EXPECT_THROW(a.fetch(out, 1), NetError);
}

TEST(ChunkAssembler, SequenceGapIsAProtocolError) {
  ChunkAssembler a;
  a.append(0, bytes_of({1}));
  EXPECT_THROW(a.append(2, bytes_of({2})), ProtocolError);
  EXPECT_THROW(a.await_complete(), NetError);
}

TEST(ChunkAssembler, OutOfOrderFirstChunkIsAProtocolError) {
  ChunkAssembler a;
  EXPECT_THROW(a.append(3, bytes_of({1})), ProtocolError);
}

TEST(ChunkAssembler, ChunkAfterStateEndIsAProtocolError) {
  ChunkAssembler a;
  a.append(0, bytes_of({1}));
  a.finish(end_info(1, 1));
  EXPECT_THROW(a.append(1, bytes_of({2})), ProtocolError);
}

TEST(ChunkAssembler, SecondStateEndIsAProtocolError) {
  ChunkAssembler a;
  a.append(0, bytes_of({1}));
  a.finish(end_info(1, 1));
  EXPECT_THROW(a.finish(end_info(1, 1)), ProtocolError);
}

TEST(ChunkAssembler, HostileChunkCountPoisons) {
  // StateEnd claims more chunks than arrived: the stream must not be
  // treated as complete.
  ChunkAssembler a;
  a.append(0, bytes_of({1, 2}));
  a.finish(end_info(7, 2));
  EXPECT_THROW(a.await_complete(), NetError);
}

TEST(ChunkAssembler, HostileByteTotalPoisons) {
  ChunkAssembler a;
  a.append(0, bytes_of({1, 2}));
  a.finish(end_info(1, 9999));
  Bytes out;
  EXPECT_THROW(a.fetch(out, 1), NetError);
}

TEST(ChunkAssembler, ScratchBufferIsReusedAcrossChunks) {
  // The assembly buffer must grow geometrically (seeded by the chunk-size
  // hint from StateBegin), not reallocate per chunk: appending N chunks
  // may cost at most O(log N) growths, and the reassembled stream is
  // byte-identical regardless.
  constexpr std::uint32_t kChunk = 64;
  constexpr std::uint32_t kChunks = 256;
  ChunkAssembler a(kChunk);
  Bytes chunk(kChunk);
  std::uint64_t total = 0;
  for (std::uint32_t seq = 0; seq < kChunks; ++seq) {
    for (std::uint32_t i = 0; i < kChunk; ++i) {
      chunk[i] = static_cast<std::uint8_t>(seq + i);
    }
    a.append(seq, chunk);
    total += kChunk;
  }
  a.finish(end_info(kChunks, total));
  EXPECT_EQ(a.await_complete(), total);
  // The invariant: far fewer allocations than chunks (geometric growth).
  EXPECT_LT(a.alloc_growths(), 10u);
  EXPECT_LT(a.alloc_growths(), kChunks / 8);

  Bytes out;
  ASSERT_TRUE(a.fetch(out, total));
  ASSERT_EQ(out.size(), total);
  for (std::uint32_t seq = 0; seq < kChunks; ++seq) {
    for (std::uint32_t i = 0; i < kChunk; ++i) {
      ASSERT_EQ(out[seq * kChunk + i], static_cast<std::uint8_t>(seq + i));
    }
  }
}

TEST(ChunkAssembler, FailUnblocksAWaitingConsumer) {
  ChunkAssembler a;
  std::thread consumer([&] {
    Bytes out;
    EXPECT_THROW(a.fetch(out, 100), NetError);  // blocks until poisoned
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  a.fail("link died");
  consumer.join();
}

TEST(ChunkAssembler, AppendAfterFailIsSilent) {
  // The rx loop may race one more frame in after a failure; it must not
  // throw from the already-poisoned assembler.
  ChunkAssembler a;
  a.fail("poisoned first");
  a.append(0, bytes_of({1}));  // no throw
  EXPECT_THROW(a.await_complete(), NetError);
}

}  // namespace
}  // namespace hpm::mig
