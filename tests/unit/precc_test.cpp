// precc front-end: lexing, full C declarator parsing, migration-unsafe
// detection, and code generation.
#include <gtest/gtest.h>

#include "precc/codegen.hpp"
#include "precc/lexer.hpp"
#include "precc/parser.hpp"

namespace hpm::precc {
namespace {

ParseResult parse_ok(ti::TypeTable& t, std::string_view src, bool strict = false) {
  Parser p(t, strict);
  return p.parse(src);
}

TEST(Lexer, TokenizesDeclarationSyntax) {
  const auto toks = tokenize("struct n { int x[10]; };");
  ASSERT_GE(toks.size(), 11u);
  EXPECT_EQ(toks[0].kind, Tok::KwStruct);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[1].text, "n");
  EXPECT_EQ(toks[5].kind, Tok::LBracket);
  EXPECT_EQ(toks[6].value, 10u);
}

TEST(Lexer, CommentsAndHexLiterals) {
  const auto toks = tokenize("// line\nint /* block\nspanning */ x[0x1F];");
  EXPECT_EQ(toks[0].kind, Tok::KwTypeWord);
  bool found = false;
  for (const auto& t : toks) {
    if (t.kind == Tok::Integer) {
      EXPECT_EQ(t.value, 0x1Fu);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lexer, TracksLineNumbers) {
  const auto toks = tokenize("int a;\nint b;\n\nint c;");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[3].line, 2);
  EXPECT_EQ(toks[6].line, 4);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW(tokenize("int a @ 5;"), ParseError);
  EXPECT_THROW(tokenize("int $x;"), ParseError);
  EXPECT_THROW(tokenize("/* unterminated"), ParseError);
}

TEST(Parser, Figure1Declarations) {
  ti::TypeTable t;
  const auto r = parse_ok(t, R"(
    struct node { float data; struct node *link; };
    struct node *first, *last;
  )");
  EXPECT_TRUE(r.clean());
  ASSERT_EQ(r.struct_names.size(), 1u);
  const ti::TypeId node = t.find_struct("node");
  ASSERT_NE(node, ti::kInvalidType);
  EXPECT_EQ(t.at(node).fields.size(), 2u);
  EXPECT_EQ(t.spell(t.at(node).fields[1].type), "struct node *");
  ASSERT_EQ(r.globals.size(), 2u);
  EXPECT_EQ(r.globals[0].name, "first");
  EXPECT_EQ(t.spell(r.globals[0].type), "struct node *");
}

TEST(Parser, PrimitiveWordCombinations) {
  ti::TypeTable t;
  const auto r = parse_ok(t, R"(
    unsigned long long a;
    long int b;
    unsigned c;
    signed char d;
    short int e;
    unsigned short f;
    double g;
    _Bool h;
    const unsigned long i;
  )");
  EXPECT_TRUE(r.clean());
  using xdr::PrimKind;
  EXPECT_EQ(r.globals[0].type, t.primitive(PrimKind::ULongLong));
  EXPECT_EQ(r.globals[1].type, t.primitive(PrimKind::Long));
  EXPECT_EQ(r.globals[2].type, t.primitive(PrimKind::UInt));
  EXPECT_EQ(r.globals[3].type, t.primitive(PrimKind::SChar));
  EXPECT_EQ(r.globals[4].type, t.primitive(PrimKind::Short));
  EXPECT_EQ(r.globals[5].type, t.primitive(PrimKind::UShort));
  EXPECT_EQ(r.globals[6].type, t.primitive(PrimKind::Double));
  EXPECT_EQ(r.globals[7].type, t.primitive(PrimKind::Bool));
  EXPECT_EQ(r.globals[8].type, t.primitive(PrimKind::ULong));
}

TEST(Parser, DeclaratorShapes) {
  ti::TypeTable t;
  const auto r = parse_ok(t, R"(
    int *a[10];
    int (*b)[10];
    int **c;
    double m[3][4];
    int *(*d)[10];
  )");
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(t.spell(r.globals[0].type), "int *[10]");    // array of pointers
  EXPECT_EQ(t.spell(r.globals[1].type), "int[10] *");    // pointer to array
  EXPECT_EQ(t.spell(r.globals[2].type), "int * *");
  EXPECT_EQ(t.spell(r.globals[3].type), "double[4][3]");
  EXPECT_EQ(t.spell(r.globals[4].type), "int *[10] *");  // paper's test_pointer shape
}

TEST(Parser, MultiDimArrayOrder) {
  // double m[3][4] = array of 3 arrays of 4 doubles.
  ti::TypeTable t;
  const auto r = parse_ok(t, "double m[3][4];");
  const ti::TypeInfo& outer = t.at(r.globals[0].type);
  EXPECT_EQ(outer.count, 3u);
  EXPECT_EQ(t.at(outer.elem).count, 4u);
}

TEST(Parser, TypedefsResolve) {
  ti::TypeTable t;
  const auto r = parse_ok(t, R"(
    typedef unsigned long size_type;
    typedef int row[10];
    size_type n;
    row *prow;
  )");
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.globals[0].type, t.primitive(xdr::PrimKind::ULong));
  EXPECT_EQ(t.spell(r.globals[1].type), "int[10] *");
}

TEST(Parser, ForwardStructReferencesWork) {
  ti::TypeTable t;
  const auto r = parse_ok(t, R"(
    struct a { struct b *peer; int x; };
    struct b { struct a *peer; double y; };
  )");
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.struct_names.size(), 2u);
  EXPECT_TRUE(t.at(t.find_struct("b")).defined);
}

TEST(Parser, UnsafeFeaturesAreFlagged) {
  ti::TypeTable t;
  const auto r = parse_ok(t, R"(
    union u { int a; float b; };
    void *p;
    int (*fn)(int);
    long double x;
    struct ok { int y; };
  )");
  ASSERT_EQ(r.findings.size(), 4u);
  EXPECT_EQ(r.findings[0].feature, "union");
  EXPECT_EQ(r.findings[1].feature, "void pointer");
  EXPECT_EQ(r.findings[2].feature, "function declarator");
  EXPECT_EQ(r.findings[3].feature, "long double");
  // Safe declarations around the unsafe ones still parse.
  EXPECT_NE(t.find_struct("ok"), ti::kInvalidType);
}

TEST(Parser, UnionInsideStructIsFlaggedAndFieldSkipped) {
  ti::TypeTable t;
  const auto r = parse_ok(t, R"(
    struct holder {
      int before;
      union { int a; float b; } overlay;
      int after;
    };
  )");
  EXPECT_FALSE(r.clean());
  const ti::TypeInfo& holder = t.at(t.find_struct("holder"));
  ASSERT_EQ(holder.fields.size(), 2u);  // union member skipped
  EXPECT_EQ(holder.fields[0].name, "before");
  EXPECT_EQ(holder.fields[1].name, "after");
}

TEST(Parser, StrictModeThrowsOnFirstUnsafeFeature) {
  ti::TypeTable t;
  Parser p(t, /*strict=*/true);
  EXPECT_THROW(p.parse("void *p;"), UnsafeFeatureError);
}

TEST(Parser, SyntaxErrorsCarryLineNumbers) {
  ti::TypeTable t;
  Parser p(t);
  try {
    p.parse("int a;\nstruct { int x; };");  // missing tag
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, UnknownTypeNameFails) {
  ti::TypeTable t;
  Parser p(t);
  EXPECT_THROW(p.parse("mystery x;"), ParseError);
}

TEST(Parser, VoidVariableFails) {
  ti::TypeTable t;
  Parser p(t);
  EXPECT_THROW(p.parse("void v;"), ParseError);
  EXPECT_THROW(p.parse("void a[3];"), ParseError);
}

TEST(Parser, ZeroLengthArrayFails) {
  ti::TypeTable t;
  Parser p(t);
  EXPECT_THROW(p.parse("int a[0];"), ParseError);
}

TEST(Codegen, EmitsBuilderCodeForEveryStruct) {
  ti::TypeTable t;
  const auto r = parse_ok(t, R"(
    struct node { float data; struct node *link; };
  )");
  const std::string code = generate_registration(t, r);
  EXPECT_NE(code.find("StructBuilder<node> b(table, \"node\");"), std::string::npos);
  EXPECT_NE(code.find("HPM_TI_FIELD(b, node, data);"), std::string::npos);
  EXPECT_NE(code.find("HPM_TI_FIELD(b, node, link);"), std::string::npos);
  EXPECT_NE(code.find("b.commit();"), std::string::npos);
}

TEST(Codegen, ReportListsFindingsAndGlobals) {
  ti::TypeTable t;
  const auto r = parse_ok(t, R"(
    struct node { float data; struct node *link; };
    struct node *first;
    void *bad;
  )");
  const std::string rep = report(t, r);
  EXPECT_NE(rep.find("struct node * first"), std::string::npos);
  EXPECT_NE(rep.find("void pointer"), std::string::npos);
}

TEST(Codegen, CleanReportSaysSo) {
  ti::TypeTable t;
  const auto r = parse_ok(t, "int x;");
  EXPECT_NE(report(t, r).find("migration-safe"), std::string::npos);
}


TEST(Parser, EnumsAreMigrationSafeInts) {
  ti::TypeTable t;
  const auto r = parse_ok(t, R"(
    enum color { RED, GREEN = 5, BLUE, DARK = -2 };
    enum color paint;
    struct pixel { enum color c; int x; };
    typedef enum { LOW, HIGH } level;
    level threshold;
  )");
  EXPECT_TRUE(r.clean());
  ASSERT_EQ(r.enum_names.size(), 1u);
  EXPECT_EQ(r.enum_names[0], "color");
  ASSERT_EQ(r.enum_constants.size(), 6u);
  EXPECT_EQ(r.enum_constants[0].value, 0);
  EXPECT_EQ(r.enum_constants[1].value, 5);
  EXPECT_EQ(r.enum_constants[2].value, 6);
  EXPECT_EQ(r.enum_constants[3].value, -2);
  EXPECT_EQ(r.enum_constants[4].name, "LOW");
  EXPECT_EQ(r.globals[0].type, t.primitive(xdr::PrimKind::Int));
  EXPECT_EQ(r.globals[1].type, t.primitive(xdr::PrimKind::Int));
  const ti::TypeInfo& pixel = t.at(t.find_struct("pixel"));
  EXPECT_EQ(pixel.fields[0].type, t.primitive(xdr::PrimKind::Int));
}

TEST(Parser, EnumDefinitionWithDeclaratorList) {
  ti::TypeTable t;
  const auto r = parse_ok(t, "enum state { OFF, ON } power, *ptr;");
  EXPECT_TRUE(r.clean());
  ASSERT_EQ(r.globals.size(), 2u);
  EXPECT_EQ(t.spell(r.globals[1].type), "int *");
}

TEST(Parser, UnknownEnumTagFails) {
  ti::TypeTable t;
  Parser p(t);
  EXPECT_THROW(p.parse("enum missing x;"), ParseError);
}

}  // namespace
}  // namespace hpm::precc
