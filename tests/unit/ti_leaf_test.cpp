// Leaf model: flattening, ordinal <-> offset translation, and the
// property that they are exact inverses on every architecture.
#include <gtest/gtest.h>

#include "ti/leaf.hpp"
#include "xdr/arch.hpp"

namespace hpm::ti {
namespace {

using xdr::PrimKind;

struct Fixture {
  TypeTable t;
  TypeId node;   // { float data; node* link; }
  TypeId mixed;  // { char c; node inner; int arr[3]; node* p; }
  Fixture() {
    node = t.declare_struct("node");
    t.define_struct(node, {{"data", t.primitive(PrimKind::Float)},
                           {"link", t.intern_pointer(node)}});
    mixed = t.declare_struct("mixed");
    t.define_struct(mixed, {{"c", t.primitive(PrimKind::Char)},
                            {"inner", node},
                            {"arr", t.intern_array(t.primitive(PrimKind::Int), 3)},
                            {"p", t.intern_pointer(node)}});
  }
};

TEST(LeafCount, CountsPrimitivesAndPointers) {
  Fixture f;
  LeafIndex leaves(f.t);
  EXPECT_EQ(leaves.count(f.t.primitive(PrimKind::Int)), 1u);
  EXPECT_EQ(leaves.count(f.t.intern_pointer(f.node)), 1u);
  EXPECT_EQ(leaves.count(f.node), 2u);
  EXPECT_EQ(leaves.count(f.mixed), 1 + 2 + 3 + 1u);
  EXPECT_EQ(leaves.count(f.t.intern_array(f.mixed, 4)), 28u);
}

TEST(LeafCount, UndefinedStructThrows) {
  TypeTable t;
  const TypeId fwd = t.declare_struct("fwd");
  LeafIndex leaves(t);
  EXPECT_THROW(leaves.count(fwd), TypeError);
}

TEST(LeafAt, ResolvesKindsAndOffsets) {
  Fixture f;
  LeafIndex leaves(f.t);
  const LayoutMap m(f.t, xdr::sparc20_solaris());
  // mixed on sparc: c@0, inner@4 (float@4, link@8), arr@12..23, p@24.
  const LeafRef c = leaf_at(leaves, m, f.mixed, 0);
  EXPECT_FALSE(c.is_pointer);
  EXPECT_EQ(c.prim, PrimKind::Char);
  EXPECT_EQ(c.byte_offset, 0u);
  const LeafRef data = leaf_at(leaves, m, f.mixed, 1);
  EXPECT_EQ(data.prim, PrimKind::Float);
  EXPECT_EQ(data.byte_offset, 4u);
  const LeafRef link = leaf_at(leaves, m, f.mixed, 2);
  EXPECT_TRUE(link.is_pointer);
  EXPECT_EQ(link.byte_offset, 8u);
  const LeafRef arr1 = leaf_at(leaves, m, f.mixed, 4);
  EXPECT_EQ(arr1.prim, PrimKind::Int);
  EXPECT_EQ(arr1.byte_offset, 16u);
  const LeafRef p = leaf_at(leaves, m, f.mixed, 6);
  EXPECT_TRUE(p.is_pointer);
  EXPECT_EQ(p.byte_offset, 24u);
  EXPECT_THROW(leaf_at(leaves, m, f.mixed, 7), TypeError);
}

TEST(OrdinalOf, RejectsPaddingAndMidLeafAddresses) {
  Fixture f;
  LeafIndex leaves(f.t);
  const LayoutMap m(f.t, xdr::sparc20_solaris());
  EXPECT_EQ(ordinal_of(leaves, m, f.mixed, 0), 0u);
  EXPECT_EQ(ordinal_of(leaves, m, f.mixed, 4), 1u);
  EXPECT_EQ(ordinal_of(leaves, m, f.mixed, 24), 6u);
  EXPECT_THROW(ordinal_of(leaves, m, f.mixed, 1), TypeError);   // padding after c
  EXPECT_THROW(ordinal_of(leaves, m, f.mixed, 5), TypeError);   // mid-float
  EXPECT_THROW(ordinal_of(leaves, m, f.mixed, 200), TypeError); // beyond end
}

TEST(ForEachLeaf, VisitsInOrdinalOrder) {
  Fixture f;
  LeafIndex leaves(f.t);
  const LayoutMap m(f.t, xdr::x86_64_linux());
  std::vector<std::uint64_t> offsets;
  std::vector<bool> pointers;
  for_each_leaf(leaves, m, f.mixed, [&](const LeafRef& ref) {
    offsets.push_back(ref.byte_offset);
    pointers.push_back(ref.is_pointer);
  });
  ASSERT_EQ(offsets.size(), 7u);
  EXPECT_TRUE(std::is_sorted(offsets.begin(), offsets.end()));
  EXPECT_EQ(pointers, (std::vector<bool>{false, false, true, false, false, false, true}));
  // Cross-check against leaf_at for every ordinal.
  for (std::uint64_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(leaf_at(leaves, m, f.mixed, i).byte_offset, offsets[i]);
  }
}

/// Property: ordinal_of(leaf_at(i).offset) == i for every leaf of a
/// deeply nested type, on every architecture.
class LeafInverse : public ::testing::TestWithParam<std::string_view> {};

TEST_P(LeafInverse, OrdinalAndOffsetAreInverse) {
  Fixture f;
  const TypeId deep = f.t.intern_array(f.mixed, 5);
  LeafIndex leaves(f.t);
  const LayoutMap m(f.t, xdr::arch_by_name(GetParam()));
  const std::uint64_t n = leaves.count(deep);
  ASSERT_EQ(n, 35u);
  for (std::uint64_t i = 0; i < n; ++i) {
    const LeafRef ref = leaf_at(leaves, m, deep, i);
    EXPECT_EQ(ordinal_of(leaves, m, deep, ref.byte_offset), i) << "arch " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchs, LeafInverse, ::testing::ValuesIn(xdr::arch_names()));

}  // namespace
}  // namespace hpm::ti
