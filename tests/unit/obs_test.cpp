// Unit tests for the observability layer: histogram percentile math at
// bucket boundaries, span nesting and thread attribution, and the
// registry snapshot/delta plumbing the MigrationReport relies on.
#include <gtest/gtest.h>

#include <thread>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace {

using namespace hpm::obs;

TEST(ObsCounter, MonotonicAndResettable) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, MovesBothWays) {
  Gauge g;
  g.add(10);
  g.sub(3);
  EXPECT_EQ(g.value(), 7);
  g.set(-2);
  EXPECT_EQ(g.value(), -2);
}

TEST(ObsHistogram, SingleValueReportsItselfAtEveryPercentile) {
  // The clamp-to-[min,max] rule makes one distinct value exact no matter
  // which log bucket it lands in.
  Histogram h(Unit::None);
  h.record(3.5);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.p50, 3.5);
  EXPECT_DOUBLE_EQ(s.p95, 3.5);
  EXPECT_DOUBLE_EQ(s.p99, 3.5);
}

TEST(ObsHistogram, PercentileAtBucketBoundaries) {
  // Unit::None buckets: [1,2) [2,4) [4,8) [8,16) — each sample sits
  // exactly on a lower bucket boundary, one per bucket.
  Histogram h(Unit::None);
  for (double v : {1.0, 2.0, 4.0, 8.0}) h.record(v);
  // p50 rank = ceil(0.5 * 4) = 2 -> the [2,4) bucket, interpolated to its
  // upper edge (the bucket's only sample), giving exactly 4.
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 4.0);
  // p95/p99 rank = 4 -> the [8,16) bucket, clamped to the observed max.
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 8.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 8.0);
  // p0 clamps its rank to 1 -> the [1,2) bucket, upper edge 2.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 2.0);
}

TEST(ObsHistogram, RepeatedBoundaryValueStaysExact) {
  Histogram h(Unit::Bytes);
  for (int i = 0; i < 100; ++i) h.record(1024.0);
  const HistogramSummary s = h.summary();
  // Interpolation alone would report positions inside [1024, 2048); the
  // [min,max] clamp pins every percentile to the real value.
  EXPECT_DOUBLE_EQ(s.p50, 1024.0);
  EXPECT_DOUBLE_EQ(s.p95, 1024.0);
  EXPECT_DOUBLE_EQ(s.p99, 1024.0);
  EXPECT_DOUBLE_EQ(s.sum, 102400.0);
}

TEST(ObsHistogram, BucketBoundsMatchDocumentedScheme) {
  Histogram none(Unit::None);
  EXPECT_EQ(none.bucket_bounds(0.5), (std::pair<double, double>{0.0, 1.0}));
  EXPECT_EQ(none.bucket_bounds(1.0), (std::pair<double, double>{1.0, 2.0}));
  EXPECT_EQ(none.bucket_bounds(4.0), (std::pair<double, double>{4.0, 8.0}));
  EXPECT_EQ(none.bucket_bounds(7.9), (std::pair<double, double>{4.0, 8.0}));
  // Seconds histograms base their buckets at 1 ns.
  Histogram secs(Unit::Seconds);
  const auto [lo, hi] = secs.bucket_bounds(1e-9);
  EXPECT_DOUBLE_EQ(lo, 1e-9);
  EXPECT_DOUBLE_EQ(hi, 2e-9);
}

TEST(ObsHistogram, EmptyAndReset) {
  Histogram h(Unit::Seconds);
  EXPECT_EQ(h.summary().count, 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  h.record(0.25);
  EXPECT_EQ(h.summary().count, 1u);
  h.reset();
  EXPECT_EQ(h.summary().count, 0u);
}

TEST(ObsRegistry, InternsByNameAndSnapshots) {
  Registry reg;
  Counter& a = reg.counter("x.searches");
  Counter& b = reg.counter("x.searches");
  EXPECT_EQ(&a, &b);
  a.add(5);
  reg.gauge("x.level").set(-3);
  reg.histogram("x.lat", Unit::Seconds).record(0.5);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("x.searches"), 5u);
  EXPECT_EQ(snap.counter("never.touched"), 0u);
  EXPECT_EQ(snap.gauge("x.level"), -3);
  ASSERT_NE(snap.histogram("x.lat"), nullptr);
  EXPECT_EQ(snap.histogram("x.lat")->count, 1u);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(ObsRegistry, DeltaSubtractsCounters) {
  Registry reg;
  reg.counter("d.events").add(10);
  const MetricsSnapshot before = reg.snapshot();
  reg.counter("d.events").add(7);
  reg.counter("d.fresh").add(2);
  const MetricsSnapshot delta = reg.snapshot().delta_since(before);
  EXPECT_EQ(delta.counter("d.events"), 7u);
  EXPECT_EQ(delta.counter("d.fresh"), 2u);
}

TEST(ObsRegistry, LocalCounterMirrorsShared) {
  Registry reg;
  LocalCounter local(reg.counter("l.bumps"));
  local.bump();
  local.bump(4);
  EXPECT_EQ(local.value(), 5u);
  EXPECT_EQ(reg.counter("l.bumps").value(), 5u);
  local.reset_local();
  EXPECT_EQ(local.value(), 0u);
  // The registry total is monotonic: reset_local never rewinds it.
  EXPECT_EQ(reg.counter("l.bumps").value(), 5u);
}

TEST(ObsSpan, NestingRecordsParentAndDepth) {
  Tracer tracer(nullptr);
  {
    Span outer("phase.outer", tracer);
    {
      Span inner("phase.inner", tracer);
    }
  }
  const std::vector<SpanRecord> spans = tracer.finished();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first.
  const SpanRecord& inner = spans[0];
  const SpanRecord& outer = spans[1];
  EXPECT_EQ(inner.name, "phase.inner");
  EXPECT_EQ(outer.name, "phase.outer");
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(outer.dur_us, inner.dur_us);
}

TEST(ObsSpan, SiblingsShareAParentSequentially) {
  Tracer tracer(nullptr);
  {
    Span root("r", tracer);
    { Span a("a", tracer); }
    { Span b("b", tracer); }
  }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent, spans[2].id);  // a under r
  EXPECT_EQ(spans[1].parent, spans[2].id);  // b under r, not under a
  EXPECT_EQ(spans[1].depth, 1u);
}

TEST(ObsSpan, ThreadsGetDistinctAttribution) {
  Tracer tracer(nullptr);
  {
    Span main_span("on.main", tracer);
    std::thread worker([&tracer] { Span s("on.worker", tracer); });
    worker.join();
  }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& worker = spans[0];
  const SpanRecord& main_span = spans[1];
  EXPECT_EQ(worker.name, "on.worker");
  EXPECT_NE(worker.tid, main_span.tid);
  // The open-span stack is per-thread: the worker span is a root even
  // though "on.main" was live when it opened.
  EXPECT_EQ(worker.parent, 0u);
  EXPECT_EQ(worker.depth, 0u);
}

TEST(ObsSpan, FinishIsIdempotentAndMirrorsToRegistry) {
  Registry reg;
  Tracer tracer(&reg);
  Span span("mig.collect", tracer);
  span.arg("stream_bytes", std::uint64_t{128});
  const double d1 = span.finish();
  const double d2 = span.finish();  // no second record
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_EQ(tracer.finished_count(), 1u);
  EXPECT_GE(d1, 0.0);
  EXPECT_DOUBLE_EQ(tracer.last_duration_seconds("mig.collect"), d1);
  EXPECT_DOUBLE_EQ(tracer.total_seconds("mig.collect"), d1);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.histogram("trace.mig.collect"), nullptr);
  EXPECT_EQ(snap.histogram("trace.mig.collect")->count, 1u);
}

TEST(ObsSpan, ChromeTraceExportCarriesSpansAndArgs) {
  Tracer tracer(nullptr);
  {
    Span span("export.me", tracer);
    span.arg("transport", std::string("memory"));
  }
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"export.me\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"transport\":\"memory\""), std::string::npos);
  tracer.clear();
  EXPECT_EQ(tracer.finished_count(), 0u);
}

}  // namespace
