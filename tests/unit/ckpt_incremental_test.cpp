// Incremental checkpointing: delta capture, chain merge, stream
// synthesis, restart.
#include <gtest/gtest.h>

#include <cstdio>

#include "ckpt/incremental.hpp"
#include "mig/annotate.hpp"
#include "ti/describe.hpp"

namespace hpm::ckpt {
namespace {

struct Cell {
  long value;
  Cell* next;
};

void register_cell(ti::TypeTable& t) {
  ti::StructBuilder<Cell> b(t, "cell");
  HPM_TI_FIELD(b, Cell, value);
  HPM_TI_FIELD(b, Cell, next);
  b.commit();
}

void wipe_chain(const std::string& prefix, int up_to = 64) {
  for (int i = 0; i <= up_to; ++i) {
    std::remove((prefix + "." + std::to_string(i)).c_str());
  }
}

/// Mutates one element of a large array per iteration and grows a small
/// list every 8th iteration — most blocks are unchanged between polls.
void mutating_program(mig::MigContext& ctx, int steps, long* out) {
  HPM_FUNCTION(ctx);
  double* big;
  Cell* head;
  int i;
  long acc;
  HPM_LOCAL(ctx, big);
  HPM_LOCAL(ctx, head);
  HPM_LOCAL(ctx, i);
  HPM_LOCAL(ctx, acc);
  HPM_LOCAL(ctx, steps);
  HPM_BODY(ctx);
  big = ctx.heap_alloc<double>(1000, "big");
  head = nullptr;
  acc = 0;
  for (i = 0; i < steps; ++i) {
    HPM_POLL(ctx, 1);
    big[i % 1000] += 1.0;
    acc += static_cast<long>(big[i % 1000]);
    if (i % 8 == 7) {
      Cell* c = ctx.heap_alloc<Cell>(1, "cell");
      c->value = i;
      c->next = head;
      head = c;
    }
  }
  while (head != nullptr) {
    acc += head->value;
    Cell* dead = head;
    head = head->next;
    ctx.heap_free(dead);
  }
  *out = acc;
  HPM_BODY_END(ctx);
}

long run_reference(int steps) {
  ti::TypeTable t;
  register_cell(t);
  mig::MigContext ctx(t);
  long out = 0;
  mutating_program(ctx, steps, &out);
  return out;
}

TEST(Incremental, ColdDataIsNotRewrittenInDeltas) {
  // Three large arrays; only the first is ever touched after
  // initialization. Deltas must carry the hot array and the mutating
  // locals but none of the cold arrays.
  const std::string prefix = "/tmp/hpm_inc_small";
  wipe_chain(prefix);
  ti::TypeTable t;
  register_cell(t);
  mig::MigContext ctx(t);
  IncrementalCheckpointer checkpointer(prefix);
  std::vector<IncrementalStats> captures;
  ctx.set_poll_observer([&](mig::MigContext& c) {
    if (c.poll_count() % 8 == 1) captures.push_back(checkpointer.capture(c));
  });

  auto program = [](mig::MigContext& c, int steps) {
    HPM_FUNCTION(c);
    double *hot, *cold1, *cold2;
    int i;
    HPM_LOCAL(c, hot);
    HPM_LOCAL(c, cold1);
    HPM_LOCAL(c, cold2);
    HPM_LOCAL(c, i);
    HPM_LOCAL(c, steps);
    HPM_BODY(c);
    hot = c.heap_alloc<double>(2000, "hot");
    cold1 = c.heap_alloc<double>(2000, "cold1");
    cold2 = c.heap_alloc<double>(2000, "cold2");
    for (i = 0; i < 2000; ++i) cold1[i] = cold2[i] = i;
    for (i = 0; i < steps; ++i) {
      HPM_POLL(c, 1);
      hot[i % 2000] += 1.0;
    }
    c.heap_free(hot);
    c.heap_free(cold1);
    c.heap_free(cold2);
    HPM_BODY_END(c);
  };
  program(ctx, 32);

  ASSERT_GE(captures.size(), 3u);
  const IncrementalStats& base = captures[0];
  EXPECT_EQ(base.sequence, 0u);
  EXPECT_EQ(base.written_blocks, base.total_blocks);  // full base
  for (std::size_t i = 1; i < captures.size(); ++i) {
    // Delta: hot array + the two changing scalars (i and possibly loop
    // label side effects) — the two cold 16 KB arrays stay home.
    EXPECT_LT(captures[i].written_blocks, base.written_blocks) << "delta " << i;
    EXPECT_LT(captures[i].file_bytes, base.file_bytes - 2 * 16000) << "delta " << i;
    EXPECT_EQ(captures[i].freed_blocks, 0u);
  }
}

TEST(Incremental, RestartFromEachCaptureResumesCorrectly) {
  const std::string prefix = "/tmp/hpm_inc_restart";
  wipe_chain(prefix);
  const long expected = run_reference(50);

  ti::TypeTable t;
  register_cell(t);
  mig::MigContext ctx(t);
  IncrementalCheckpointer checkpointer(prefix);
  std::uint64_t captures = 0;
  ctx.set_poll_observer([&](mig::MigContext& c) {
    if (c.poll_count() % 10 == 5) {
      checkpointer.capture(c);
      ++captures;
    }
  });
  long out = 0;
  mutating_program(ctx, 50, &out);
  EXPECT_EQ(out, expected);
  ASSERT_GE(captures, 3u);

  // Restart from the base alone and from every prefix of the chain: each
  // resumes mid-loop and must converge to the same final result.
  for (std::uint64_t last = 0; last < captures; ++last) {
    long revived = 0;
    restart_incremental(register_cell,
                        [&revived](mig::MigContext& c) { mutating_program(c, 50, &revived); },
                        prefix, last);
    EXPECT_EQ(revived, expected) << "restart from seq " << last;
  }
}

TEST(Incremental, FreedBlocksDisappearFromTheChain) {
  const std::string prefix = "/tmp/hpm_inc_freed";
  wipe_chain(prefix);
  ti::TypeTable t;
  register_cell(t);
  mig::MigContext ctx(t);
  IncrementalCheckpointer checkpointer(prefix);

  auto program = [&checkpointer](mig::MigContext& c, int* phase) {
    HPM_FUNCTION(c);
    Cell* keep;
    Cell* temp;
    HPM_LOCAL(c, keep);
    HPM_LOCAL(c, temp);
    HPM_BODY(c);
    keep = c.heap_alloc<Cell>(1, "keep");
    keep->value = 1;
    keep->next = nullptr;
    temp = c.heap_alloc<Cell>(1, "temp");
    temp->value = 2;
    temp->next = nullptr;
    HPM_POLL(c, 1);  // capture 0: both alive
    *phase = 1;
    c.heap_free(temp);
    temp = nullptr;
    HPM_POLL(c, 2);  // capture 1: temp freed
    *phase = 2;
    c.heap_free(keep);
    HPM_BODY_END(c);
  };
  int phase = 0;
  ctx.set_poll_observer([&](mig::MigContext& c) { checkpointer.capture(c); });
  program(ctx, &phase);
  EXPECT_EQ(phase, 2);

  // The merged chain at seq 1 must not contain the freed block: restart
  // succeeds and the revived process only frees `keep`.
  int revived_phase = 0;
  restart_incremental(register_cell,
                      [&](mig::MigContext& c) { program(c, &revived_phase); }, prefix, 1);
  EXPECT_EQ(revived_phase, 2);
}

TEST(Incremental, SynthesizedStreamIsAValidMigrationStream) {
  const std::string prefix = "/tmp/hpm_inc_synth";
  wipe_chain(prefix);
  ti::TypeTable t;
  register_cell(t);
  mig::MigContext ctx(t);
  IncrementalCheckpointer checkpointer(prefix);
  ctx.set_poll_observer([&](mig::MigContext& c) {
    if (c.poll_count() == 7) checkpointer.capture(c);
  });
  long out = 0;
  mutating_program(ctx, 20, &out);
  const Bytes stream = synthesize_stream(prefix, 0);
  EXPECT_GT(stream.size(), 0u);
  // It must decode through the ordinary restoration machinery.
  ti::TypeTable t2;
  register_cell(t2);
  mig::MigContext dst(t2);
  EXPECT_NO_THROW(dst.begin_restore(stream));
}

TEST(Incremental, ChainOrderIsEnforced) {
  const std::string prefix = "/tmp/hpm_inc_order";
  wipe_chain(prefix);
  ti::TypeTable t;
  register_cell(t);
  mig::MigContext ctx(t);
  IncrementalCheckpointer checkpointer(prefix);
  ctx.set_poll_observer([&](mig::MigContext& c) {
    if (c.poll_count() <= 2) checkpointer.capture(c);
  });
  long out = 0;
  mutating_program(ctx, 10, &out);
  // Swap the two files: seq validation must reject the chain.
  std::rename((prefix + ".0").c_str(), (prefix + ".tmp").c_str());
  std::rename((prefix + ".1").c_str(), (prefix + ".0").c_str());
  std::rename((prefix + ".tmp").c_str(), (prefix + ".1").c_str());
  EXPECT_THROW(synthesize_stream(prefix, 1), WireError);
}

TEST(Incremental, MissingChainFileIsReported) {
  EXPECT_THROW(synthesize_stream("/tmp/hpm_inc_missing", 0), Error);
}

}  // namespace
}  // namespace hpm::ckpt
