// ImageSpace: foreign-architecture memory images — layout, byte order,
// bounds, and full cross-architecture migration round trips.
#include <gtest/gtest.h>

#include "memimg/image_space.hpp"
#include "msr/host_space.hpp"
#include "msrm/collect.hpp"
#include "msrm/restore.hpp"
#include "ti/describe.hpp"

namespace hpm::memimg {
namespace {

using msr::Address;
using msr::BlockId;
using msr::Segment;
using xdr::PrimKind;

struct Node {
  float data;
  Node* link;
};

ti::TypeId register_node(ti::TypeTable& t) {
  ti::StructBuilder<Node> b(t, "node");
  HPM_TI_FIELD(b, Node, data);
  HPM_TI_FIELD(b, Node, link);
  return b.commit();
}

TEST(ImageSpace, AllocationsAreAlignedAndDisjoint) {
  ti::TypeTable t;
  ImageSpace img(t, xdr::sparc20_solaris());
  const Address a = img.allocate(3);
  const Address b = img.allocate(100);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 16, 0u);
  EXPECT_GE(b, a + 3);
  EXPECT_GT(img.bytes_in_use(), 0u);
}

TEST(ImageSpace, OutOfBoundsAccessThrows) {
  ti::TypeTable t;
  ImageSpace img(t, xdr::sparc20_solaris());
  const Address a = img.allocate(4);
  EXPECT_NO_THROW(img.read_prim(a, PrimKind::Int));
  EXPECT_THROW(img.read_prim(a + 100, PrimKind::Int), MsrError);
  EXPECT_THROW(img.read_prim(0x10, PrimKind::Int), MsrError);  // below base
}

TEST(ImageSpace, PrimitiveCellsUseForeignLayout) {
  ti::TypeTable t;
  ImageSpace be(t, xdr::sparc20_solaris());
  const BlockId id = be.create_block(Segment::Global, t.primitive(PrimKind::Int), 1, "x");
  be.write_leaf(id, 0, xdr::PrimValue::of_signed(PrimKind::Int, 0x01020304));
  const auto bytes = be.block_bytes(id);
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x01);  // big-endian storage
  EXPECT_EQ(bytes[3], 0x04);

  ImageSpace le(t, xdr::dec5000_ultrix());
  const BlockId id2 = le.create_block(Segment::Global, t.primitive(PrimKind::Int), 1, "x");
  le.write_leaf(id2, 0, xdr::PrimValue::of_signed(PrimKind::Int, 0x01020304));
  const auto bytes2 = le.block_bytes(id2);
  EXPECT_EQ(bytes2[0], 0x04);  // little-endian storage
  EXPECT_EQ(bytes2[3], 0x01);
}

TEST(ImageSpace, StructBlocksUseForeignSizes) {
  ti::TypeTable t;
  const ti::TypeId node = register_node(t);
  ImageSpace ilp32(t, xdr::sparc20_solaris());
  const BlockId id = ilp32.create_block(Segment::Heap, node, 1, "n");
  EXPECT_EQ(ilp32.block_bytes(id).size(), 8u);  // float(4) + 4-byte pointer
}

TEST(ImageSpace, PointerCellsHoldImageAddresses) {
  ti::TypeTable t;
  const ti::TypeId node = register_node(t);
  ImageSpace img(t, xdr::sparc20_solaris());
  const BlockId a = img.create_block(Segment::Heap, node, 1, "a");
  const BlockId b = img.create_block(Segment::Heap, node, 1, "b");
  const Address b_base = img.msrlt().find_id(b)->base;
  img.write_leaf(a, 1, xdr::PrimValue::of_unsigned(PrimKind::ULongLong, b_base));
  EXPECT_EQ(img.read_leaf(a, 1).u, b_base);
  const msr::LogicalPointer lp =
      msr::resolve_pointer(img, img.read_pointer(img.msrlt().find_id(a)->base + 4));
  EXPECT_EQ(lp.block, b);
}

/// Full heterogeneous migration: host -> image(arch) -> host, for every
/// architecture pair the library ships. The graph must survive exactly.
class CrossArch : public ::testing::TestWithParam<std::string_view> {};

TEST_P(CrossArch, HostToImageToHostPreservesTheGraph) {
  ti::TypeTable t;
  const ti::TypeId node = register_node(t);
  const ti::TypeId node_ptr = ti::native_type_id<Node*>(t);

  // Source: a small shared/cyclic structure in host memory.
  msr::HostSpace host(t);
  Node a{1.5f, nullptr}, b{2.5f, nullptr}, c{-3.25f, nullptr};
  a.link = &b;
  b.link = &c;
  c.link = &b;  // cycle + sharing
  Node* root = &a;
  host.track(Segment::Heap, a, "a", node, 1);
  host.track(Segment::Heap, b, "b", node, 1);
  host.track(Segment::Heap, c, "c", node, 1);
  host.track(Segment::Global, root, "root", node_ptr, 1);

  // Host -> image.
  xdr::Encoder enc1;
  msrm::Collector c1(host, enc1);
  c1.save_variable(reinterpret_cast<Address>(&root));
  const Bytes s1 = enc1.take();
  ImageSpace img(t, xdr::arch_by_name(GetParam()));
  xdr::Decoder d1(s1);
  msrm::Restorer r1(img, d1, xdr::native_arch());
  r1.set_auto_bind(true);
  const BlockId img_root = r1.restore_variable();

  // Image -> second host.
  xdr::Encoder enc2;
  msrm::Collector c2(img, enc2);
  c2.save_variable(img.msrlt().find_id(img_root)->base);
  const Bytes s2 = enc2.take();
  msr::HostSpace host2(t);
  xdr::Decoder d2(s2);
  msrm::Restorer r2(host2, d2, xdr::arch_by_name(GetParam()));
  r2.set_auto_bind(true);
  const BlockId out = r2.restore_variable();

  Node* ra = *reinterpret_cast<Node**>(host2.msrlt().find_id(out)->base);
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(ra->data, 1.5f);
  ASSERT_NE(ra->link, nullptr);
  EXPECT_EQ(ra->link->data, 2.5f);
  EXPECT_EQ(ra->link->link->data, -3.25f);
  EXPECT_EQ(ra->link->link->link, ra->link);  // cycle/sharing preserved
  // Both streams describe the same logical payload.
  EXPECT_EQ(s1.size(), s2.size());
}

INSTANTIATE_TEST_SUITE_P(AllArchs, CrossArch, ::testing::ValuesIn(xdr::arch_names()));

TEST(ImageSpace, LongOverflowIsDetectedWhenNarrowing) {
  // A 64-bit host long that does not fit a 32-bit image long must fail
  // loudly during restoration, not wrap silently.
  if (sizeof(long) != 8) GTEST_SKIP() << "needs an LP64 host";
  ti::TypeTable t;
  msr::HostSpace host(t);
  long big = 0x123456789ll;
  host.track(Segment::Global, big, "big", t.primitive(PrimKind::Long), 1);
  xdr::Encoder enc;
  msrm::Collector col(host, enc);
  col.save_variable(reinterpret_cast<Address>(&big));
  const Bytes s = enc.take();
  ImageSpace img(t, xdr::sparc20_solaris());
  xdr::Decoder dec(s);
  msrm::Restorer res(img, dec, xdr::native_arch());
  res.set_auto_bind(true);
  EXPECT_THROW(res.restore_variable(), ConversionError);
}

TEST(ImageSpace, InteriorPointersSurviveLayoutChanges) {
  // &arr[6] must land on element 6 in a layout where elements have a
  // different byte size (long: 8 bytes native vs 4 bytes ILP32).
  if (sizeof(long) != 8) GTEST_SKIP() << "needs an LP64 host";
  ti::TypeTable t;
  msr::HostSpace host(t);
  long arr[10];
  for (int i = 0; i < 10; ++i) arr[i] = i;
  long* mid = &arr[6];
  host.track(Segment::Global, arr, "arr", t.primitive(PrimKind::Long), 10);
  host.track(Segment::Global, mid, "mid", ti::native_type_id<long*>(t), 1);
  xdr::Encoder enc;
  msrm::Collector col(host, enc);
  col.save_variable(reinterpret_cast<Address>(&mid));
  const Bytes s = enc.take();
  ImageSpace img(t, xdr::sparc20_solaris());
  xdr::Decoder dec(s);
  msrm::Restorer res(img, dec, xdr::native_arch());
  res.set_auto_bind(true);
  const BlockId mid_img = res.restore_variable();
  const Address cell = img.msrlt().find_id(mid_img)->base;
  const Address target = img.read_pointer(cell);
  const msr::LogicalPointer lp = msr::resolve_pointer(img, target);
  EXPECT_EQ(lp.leaf, 6u);
  EXPECT_EQ(img.read_leaf(lp.block, 6).s, 6);
  // The image block is 40 bytes (4-byte longs), not 80.
  EXPECT_EQ(img.block_bytes(lp.block).size(), 40u);
}

}  // namespace
}  // namespace hpm::memimg
