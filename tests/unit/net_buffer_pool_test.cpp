// BufferPool: capacity reuse and thread-safety.
//
// The reuse test reads the pool's own `net.pool.*` counters (registry
// deltas) rather than poking internals; the hammer test exists for the
// TSan preset — a dozen threads acquiring and releasing through one pool
// must be race-free by locking, not by luck.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/buffer_pool.hpp"
#include "obs/metrics.hpp"

namespace hpm::net {
namespace {

std::uint64_t counter_delta(const obs::MetricsSnapshot& before, const char* name) {
  return obs::Registry::process().snapshot().delta_since(before).counter(name);
}

TEST(BufferPool, ReleasedCapacityIsReused) {
  BufferPool pool;
  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();

  Bytes buf = pool.acquire(4096);
  const std::uint8_t* data = buf.data();
  buf[0] = 0xAB;
  pool.release(std::move(buf));

  // Same or smaller size: the pooled buffer's capacity must satisfy it
  // without a fresh allocation.
  Bytes again = pool.acquire(1024);
  EXPECT_EQ(again.data(), data) << "steady-state acquire must reuse the freed buffer";
  EXPECT_EQ(counter_delta(before, "net.pool.reuses"), 1u);
  EXPECT_EQ(counter_delta(before, "net.pool.acquires"), 2u);
  EXPECT_EQ(counter_delta(before, "net.pool.releases"), 1u);
}

TEST(BufferPool, AcquireResizesToRequest) {
  BufferPool pool;
  pool.release(Bytes(64, 0xFF));
  Bytes buf = pool.acquire(128);
  EXPECT_EQ(buf.size(), 128u);
  pool.release(std::move(buf));
  EXPECT_EQ(pool.acquire(16).size(), 16u);
}

TEST(BufferPool, RetentionIsCapped) {
  BufferPool pool;
  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  // Overfill the free list, then drain: only kMaxRetained can be reuses.
  for (std::size_t i = 0; i < BufferPool::kMaxRetained + 8; ++i) {
    pool.release(Bytes(32, 0));
  }
  for (std::size_t i = 0; i < BufferPool::kMaxRetained + 8; ++i) {
    (void)pool.acquire(32);
  }
  EXPECT_EQ(counter_delta(before, "net.pool.reuses"), BufferPool::kMaxRetained);
}

TEST(BufferPool, ConcurrentAcquireReleaseIsRaceFree) {
  // Exercised under -fsanitize=thread by the tsan preset: every transition
  // of a buffer between threads goes through the pool's lock.
  BufferPool pool;
  constexpr int kThreads = 12;
  constexpr int kIterations = 400;
  std::atomic<std::uint64_t> touched{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool, &touched, t] {
      for (int i = 0; i < kIterations; ++i) {
        Bytes buf = pool.acquire(static_cast<std::size_t>(64 + (i % 7) * 128));
        buf[0] = static_cast<std::uint8_t>(t);
        buf[buf.size() - 1] = static_cast<std::uint8_t>(i);
        touched.fetch_add(buf[0] + buf[buf.size() - 1], std::memory_order_relaxed);
        pool.release(std::move(buf));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_GT(touched.load(), 0u);
}

TEST(BufferPool, ProcessPoolIsASingleton) {
  EXPECT_EQ(&BufferPool::process(), &BufferPool::process());
}

}  // namespace
}  // namespace hpm::net
