// SessionSupervisor: timer wheel determinism, heartbeat wedge detection
// over a real routed channel pair, targeted poison semantics, and the
// registry snapshot file.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "mig/frame_router.hpp"
#include "mig/supervisor.hpp"
#include "net/factory.hpp"

namespace hpm::mig {
namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

/// Shared routed channel pair: src/dst FrameRouters over one Memory wire.
struct RouterPair {
  std::shared_ptr<FrameRouter> src;
  std::shared_ptr<FrameRouter> dst;

  RouterPair() {
    net::ChannelPair channels = net::make_channel_pair(net::Transport::Memory, {});
    src = std::make_shared<FrameRouter>(std::move(channels.source));
    dst = std::make_shared<FrameRouter>(std::move(channels.destination));
  }
  ~RouterPair() {
    src->shutdown();
    dst->shutdown();
  }
};

bool wait_until(const std::function<bool()>& done, milliseconds budget) {
  const auto deadline = Clock::now() + budget;
  while (Clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return done();
}

// ---------------------------------------------------------------- TimerWheel

TEST(TimerWheel, FiresAtTheDueTickNotBefore) {
  TimerWheel wheel(milliseconds(10));
  const auto t0 = Clock::now();
  wheel.schedule(1, t0 + milliseconds(50));
  EXPECT_EQ(wheel.armed(), 1u);
  EXPECT_TRUE(wheel.advance(t0 + milliseconds(20)).empty());
  const auto due = wheel.advance(t0 + milliseconds(70));
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 1u);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, FarFutureEntrySurvivesWheelWraparound) {
  // 10ms * 64 slots = one revolution per 640ms; an entry a full lap out
  // hashes onto a bucket the sweep passes once before it is due.
  TimerWheel wheel(milliseconds(10), 64);
  const auto t0 = Clock::now();
  wheel.schedule(7, t0 + milliseconds(1000));
  EXPECT_TRUE(wheel.advance(t0 + milliseconds(700)).empty());
  EXPECT_EQ(wheel.armed(), 1u);  // re-filed, not dropped
  const auto due = wheel.advance(t0 + milliseconds(1100));
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 7u);
}

TEST(TimerWheel, RescheduleMovesCancelRemoves) {
  TimerWheel wheel(milliseconds(10));
  const auto t0 = Clock::now();
  wheel.schedule(1, t0 + milliseconds(30));
  wheel.schedule(1, t0 + milliseconds(200));  // re-arm supersedes
  EXPECT_EQ(wheel.armed(), 1u);
  EXPECT_TRUE(wheel.advance(t0 + milliseconds(100)).empty());
  wheel.cancel(1);
  EXPECT_EQ(wheel.armed(), 0u);
  EXPECT_TRUE(wheel.advance(t0 + milliseconds(400)).empty());
}

TEST(TimerWheel, PastDueFiresOnNextAdvance) {
  TimerWheel wheel(milliseconds(10));
  const auto t0 = Clock::now();
  auto ignored = wheel.advance(t0 + milliseconds(100));  // sweep well past t0
  wheel.schedule(3, t0 + milliseconds(20));              // due in a swept tick
  const auto due = wheel.advance(t0 + milliseconds(120));
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 3u);
}

// --------------------------------------------------------------- CancelToken

TEST(CancelToken, FirstReasonWinsAndLatches) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel("first");
  token.cancel("second");
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "first");
}

// --------------------------------------------------------- SessionSupervisor

LivenessConfig fast_config() {
  LivenessConfig config;
  config.heartbeat_interval_s = 0.02;
  config.max_missed_heartbeats = 3;
  config.stall_timeout_s = 0;  // isolate the heartbeat detector
  return config;
}

TEST(SessionSupervisor, HealthySessionStaysLiveAndWarmsTheDeadline) {
  RouterPair net;
  auto src_port = net.src->open(1);
  auto dst_port = net.dst->open(1);

  SessionSupervisor sup(fast_config());
  sup.attach(net.src, net.dst);
  SessionHooks hooks;
  hooks.txn_id = 42;
  hooks.deadline = net::DeadlinePolicy::adaptive({.floor_s = 0.05, .ceiling_s = 5.0});
  hooks.token = std::make_shared<CancelToken>();
  sup.register_session(1, hooks);

  // Pongs flow: the deadline policy leaves its cold-start ceiling.
  EXPECT_TRUE(wait_until([&] { return hooks.deadline->srtt_ms() > 0; },
                         milliseconds(5000)));
  EXPECT_LT(hooks.deadline->current(), milliseconds(5000));
  EXPECT_FALSE(hooks.token->cancelled());

  const auto rows = sup.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].session_id, 1u);
  EXPECT_EQ(rows[0].txn_id, 42u);
  EXPECT_FALSE(rows[0].wedged);
  EXPECT_GE(rows[0].heartbeat_age_ms, 0.0);

  sup.deregister(1);
  EXPECT_EQ(sup.live_sessions(), 0u);
}

TEST(SessionSupervisor, SilentPeerIsWedgedAfterKMissesAndCancelled) {
  RouterPair net;
  auto src_port = net.src->open(1);
  auto dst_port = net.dst->open(1);

  SessionSupervisor sup(fast_config());
  sup.attach(net.src, net.dst);
  SessionHooks hooks;
  hooks.deadline = net::DeadlinePolicy::adaptive();
  hooks.token = std::make_shared<CancelToken>();
  sup.register_session(1, hooks);

  EXPECT_TRUE(wait_until([&] { return hooks.deadline->srtt_ms() > 0; },
                         milliseconds(5000)));

  // Kill the destination binding: the dst pump stops answering this
  // session's pings (closed bindings are silent) while the wire lives.
  dst_port->close();
  EXPECT_TRUE(wait_until([&] { return hooks.token->cancelled(); },
                         milliseconds(10000)));

  // Targeted containment: session 1 is poisoned on both routers...
  EXPECT_THROW(net.src->open(1), CancelledError);
  EXPECT_THROW(net.dst->open(1), CancelledError);
  EXPECT_THROW(src_port->recv(), CancelledError);
  // ...but a sibling session is untouched.
  auto sib_src = net.src->open(2);
  auto sib_dst = net.dst->open(2);
  sib_src->send(net::MsgType::Hello, {});
  const net::Message m = sib_dst->recv();
  EXPECT_EQ(m.type, net::MsgType::Hello);

  const auto rows = sup.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].wedged);
  EXPECT_NE(rows[0].state.find("heartbeats"), std::string::npos);
}

TEST(SessionSupervisor, FrozenProgressWatermarkIsWedged) {
  RouterPair net;
  auto src_port = net.src->open(1);
  auto dst_port = net.dst->open(1);

  LivenessConfig config;
  config.heartbeat_interval_s = 0.02;
  config.max_missed_heartbeats = 0;  // heartbeats observe but never convict
  config.stall_timeout_s = 0.15;
  SessionSupervisor sup(config);
  sup.attach(net.src, net.dst);
  SessionHooks hooks;
  hooks.token = std::make_shared<CancelToken>();
  hooks.progress = [] { return std::uint64_t{7}; };  // forever stuck
  sup.register_session(1, hooks);

  // The channel is healthy (pongs flow), yet the watermark never moves:
  // only the stall detector can catch this — and it must.
  EXPECT_TRUE(wait_until([&] { return hooks.token->cancelled(); },
                         milliseconds(10000)));
  EXPECT_NE(hooks.token->reason().find("progress watermark"), std::string::npos);
}

TEST(SessionSupervisor, ManualCancelPoisonsExactlyOneSession) {
  RouterPair net;
  auto src1 = net.src->open(1);
  auto dst1 = net.dst->open(1);
  auto src2 = net.src->open(2);
  auto dst2 = net.dst->open(2);

  SessionSupervisor sup(fast_config());
  sup.attach(net.src, net.dst);
  SessionHooks hooks;
  hooks.token = std::make_shared<CancelToken>();
  sup.register_session(1, hooks);

  sup.cancel(1, "operator kill");
  EXPECT_TRUE(hooks.token->cancelled());
  EXPECT_EQ(hooks.token->reason(), "operator kill");
  EXPECT_THROW(src1->recv(), CancelledError);
  EXPECT_THROW(src1->send(net::MsgType::Hello, {}), CancelledError);

  src2->send(net::MsgType::Hello, {});
  EXPECT_EQ(dst2->recv().type, net::MsgType::Hello);
}

TEST(SessionSupervisor, SnapshotFileRoundTrips) {
  RouterPair net;
  auto src_port = net.src->open(1);
  auto dst_port = net.dst->open(1);

  SessionSupervisor sup(fast_config());
  sup.attach(net.src, net.dst);
  SessionHooks hooks;
  hooks.txn_id = 7777;
  hooks.deadline = net::DeadlinePolicy::adaptive();
  hooks.token = std::make_shared<CancelToken>();
  hooks.state = [] { return std::string("streaming chunk 12"); };
  sup.register_session(1, hooks);

  const std::string path = ::testing::TempDir() + "hpm_liveness_snapshot_test.txt";
  ASSERT_TRUE(sup.write_snapshot(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "#hpm-liveness-v1");
  std::string row;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, row)));
  std::istringstream rs(row);
  std::uint32_t session = 0;
  std::uint64_t txn = 0;
  rs >> session >> txn;
  EXPECT_EQ(session, 1u);
  EXPECT_EQ(txn, 7777u);
  EXPECT_NE(row.find("LIVE"), std::string::npos);
  EXPECT_NE(row.find("streaming chunk 12"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SessionSupervisor, StopLeavesWatchedSessionsUncancelled) {
  RouterPair net;
  auto src_port = net.src->open(1);
  auto dst_port = net.dst->open(1);

  SessionSupervisor sup(fast_config());
  sup.attach(net.src, net.dst);
  SessionHooks hooks;
  hooks.token = std::make_shared<CancelToken>();
  sup.register_session(1, hooks);
  sup.stop();
  // Stopping the watcher is not killing the watched.
  EXPECT_FALSE(hooks.token->cancelled());
  src_port->send(net::MsgType::Hello, {});
  EXPECT_EQ(dst_port->recv().type, net::MsgType::Hello);
}

}  // namespace
}  // namespace hpm::mig
