// HostSpace + logical pointer resolution (resolve_pointer / address_of)
// + MSR graph snapshots.
#include <gtest/gtest.h>

#include "msr/graph.hpp"
#include "msr/host_space.hpp"
#include "msr/resolve.hpp"
#include "ti/describe.hpp"

namespace hpm::msr {
namespace {

struct Node {
  float data;
  Node* link;
};

class HostSpaceTest : public ::testing::Test {
 protected:
  HostSpaceTest() : space_(table_) {
    ti::StructBuilder<Node> b(table_, "node");
    HPM_TI_FIELD(b, Node, data);
    HPM_TI_FIELD(b, Node, link);
    node_type_ = b.commit();
  }
  ti::TypeTable table_;
  HostSpace space_;
  ti::TypeId node_type_ = ti::kInvalidType;
};

TEST_F(HostSpaceTest, ReadWritePrimThroughRawMemory) {
  double d = 0;
  const Address addr = reinterpret_cast<Address>(&d);
  space_.write_prim(addr, xdr::PrimKind::Double,
                    xdr::PrimValue::of_float(xdr::PrimKind::Double, -2.75));
  EXPECT_EQ(d, -2.75);
  EXPECT_EQ(space_.read_prim(addr, xdr::PrimKind::Double).f, -2.75);
}

TEST_F(HostSpaceTest, ReadWritePointerCells) {
  int target = 0;
  int* cell = nullptr;
  space_.write_pointer(reinterpret_cast<Address>(&cell), reinterpret_cast<Address>(&target));
  EXPECT_EQ(cell, &target);
  EXPECT_EQ(space_.read_pointer(reinterpret_cast<Address>(&cell)),
            reinterpret_cast<Address>(&target));
}

TEST_F(HostSpaceTest, ResolveAndAddressOfAreInverse) {
  Node nodes[4] = {};
  const BlockId id = space_.track(Segment::Stack, nodes, "nodes", node_type_, 4);
  // Element 2's link cell:
  const Address cell = reinterpret_cast<Address>(&nodes[2].link);
  const LogicalPointer lp = resolve_pointer(space_, cell);
  EXPECT_EQ(lp.block, id);
  EXPECT_EQ(lp.leaf, 2 * 2 + 1u);
  EXPECT_EQ(address_of(space_, lp), cell);
}

TEST_F(HostSpaceTest, UntrackedPointerIsAHardError) {
  int stray = 0;
  EXPECT_THROW(resolve_pointer(space_, reinterpret_cast<Address>(&stray)), MsrError);
  EXPECT_THROW(address_of(space_, LogicalPointer{make_block_id(Segment::Heap, 5), 0}),
               MsrError);
}

TEST_F(HostSpaceTest, AddressOfBeyondBlockEndThrows) {
  Node n{};
  const BlockId id = space_.track(Segment::Stack, n, "n", node_type_, 1);
  EXPECT_THROW(address_of(space_, LogicalPointer{id, 2}), Error);
}

TEST_F(HostSpaceTest, AllocateOwnsAndReleases) {
  const Address a = space_.allocate(64);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(space_.owned_allocations(), 1u);
  space_.release_ownership(a);
  EXPECT_EQ(space_.owned_allocations(), 0u);
  HostSpace::free_raw(reinterpret_cast<void*>(a));
  EXPECT_THROW(space_.release_ownership(a), MsrError);
}

TEST_F(HostSpaceTest, GraphSnapshotCapturesEdgesAndSharing) {
  Node a{1.0f, nullptr}, b{2.0f, nullptr}, c{3.0f, nullptr};
  a.link = &b;
  b.link = &c;
  c.link = &a;  // cycle
  const BlockId ia = space_.track(Segment::Global, a, "a", node_type_, 1);
  const BlockId ib = space_.track(Segment::Heap, b, "b", node_type_, 1);
  const BlockId ic = space_.track(Segment::Heap, c, "c", node_type_, 1);
  const MsrGraph g = MsrGraph::snapshot(space_);
  EXPECT_EQ(g.nodes().size(), 3u);
  EXPECT_EQ(g.edges().size(), 3u);
  const auto reach = g.reachable_from({ia});
  EXPECT_EQ(reach.size(), 3u);
  const auto reach_c = g.reachable_from({ic});
  EXPECT_TRUE(reach_c.count(ia) == 1);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("Heap Data Segment"), std::string::npos);
  EXPECT_NE(dot.find("Global Data Segment"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  (void)ib;
}

TEST_F(HostSpaceTest, GraphSnapshotFlagsDanglingPointers) {
  Node tracked{1.0f, nullptr};
  Node untracked{2.0f, nullptr};
  tracked.link = &untracked;
  space_.track(Segment::Global, tracked, "t", node_type_, 1);
  EXPECT_THROW(MsrGraph::snapshot(space_), MsrError);
}

TEST_F(HostSpaceTest, ReachabilityIgnoresUnconnectedIslands) {
  Node a{1.0f, nullptr}, island{9.0f, nullptr};
  const BlockId ia = space_.track(Segment::Global, a, "a", node_type_, 1);
  const BlockId ii = space_.track(Segment::Heap, island, "island", node_type_, 1);
  const MsrGraph g = MsrGraph::snapshot(space_);
  const auto reach = g.reachable_from({ia});
  EXPECT_EQ(reach.count(ii), 0u);
  EXPECT_EQ(reach.size(), 1u);
}

}  // namespace
}  // namespace hpm::msr
