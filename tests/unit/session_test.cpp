// Table-driven exhaustive check of the session state machines: every
// (state, frame) pair of both machines is enumerated against the
// transition tables in session.cpp. The error taxonomy is the contract:
// an illegal pair poisons the session into Aborted and raises
// hpm::ProtocolError; a protocol-legal failure (Nack/Error frames, txn or
// digest or version mismatch) aborts with hpm::MigrationError instead.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "mig/session.hpp"
#include "net/message.hpp"

namespace hpm::mig {
namespace {

constexpr std::uint64_t kTxn = 0xABCDEF01u;

/// Distinct ids per machine instance so per-session counters never mix
/// with other tests running in the same process.
std::uint32_t next_session_id() {
  static std::atomic<std::uint32_t> next{9000};
  return next.fetch_add(1);
}

net::Message make_frame(net::MsgType type) {
  net::Message m;
  m.type = type;
  switch (type) {
    case net::MsgType::Hello: m.payload = {net::kProtocolVersion}; break;
    case net::MsgType::State: m.payload = {1, 2, 3}; break;
    case net::MsgType::Nack:
    case net::MsgType::Error: m.payload = {'x'}; break;
    case net::MsgType::StateBegin:
      m.payload = net::encode_state_begin({.chunk_bytes = 1024, .txn_id = kTxn});
      break;
    case net::MsgType::StateChunk: {
      const std::uint8_t body[] = {7, 7};
      m.payload = net::encode_state_chunk(0, body);
      break;
    }
    case net::MsgType::StateEnd:
      m.payload = net::encode_state_end({.chunk_count = 1, .total_bytes = 2, .digest = 5});
      break;
    case net::MsgType::StateAck: m.payload = net::encode_state_ack(5); break;
    case net::MsgType::Prepare:
    case net::MsgType::Commit:
    case net::MsgType::Abort: m.payload = net::encode_txn(kTxn); break;
    case net::MsgType::PrepareAck:
      m.payload = net::encode_prepare_ack({.txn_id = kTxn, .digest = 0});
      break;
    case net::MsgType::ResumeHello:
      m.payload = net::encode_resume_hello({.txn_id = kTxn, .next_seq = 3});
      break;
    default: break;
  }
  return m;
}

const net::MsgType kAllTypes[] = {
    net::MsgType::Hello,     net::MsgType::State,    net::MsgType::Ack,
    net::MsgType::Error,     net::MsgType::Shutdown, net::MsgType::Nack,
    net::MsgType::StateBegin, net::MsgType::StateChunk, net::MsgType::StateEnd,
    net::MsgType::StateAck,  net::MsgType::Prepare,  net::MsgType::PrepareAck,
    net::MsgType::Commit,    net::MsgType::Abort,    net::MsgType::ResumeHello,
};

/// What a (state, frame) cell expects.
enum class Want {
  Legal,         ///< accepted; machine lands in `to`
  ProtocolErr,   ///< illegal pair: Aborted + ProtocolError
  MigrationErr,  ///< legal-but-failed: Aborted + MigrationError
};

struct Cell {
  SessionState from;
  net::MsgType frame;
  Want want;
  SessionState to;  ///< meaningful for Want::Legal only
};

/// ---- SourceSession --------------------------------------------------------

/// Drive a fresh source machine into `state` through legal moves only.
void drive_source(SourceSession& s, SessionState state) {
  if (state == SessionState::Idle) return;
  if (state == SessionState::Aborted) {
    s.abort_decided("driven for test");
    return;
  }
  s.on_frame(make_frame(net::MsgType::Hello));
  if (state == SessionState::Hello) return;
  s.begin_streaming();
  if (state == SessionState::Streaming) return;
  if (state == SessionState::Resuming) {
    s.link_lost();
    return;
  }
  s.prepare_sent();
  if (state == SessionState::Prepared) return;
  s.on_frame(make_frame(net::MsgType::PrepareAck));
  s.commit_decided();
  ASSERT_EQ(s.state(), SessionState::Committed);
}

std::vector<Cell> source_table() {
  const SessionState all[] = {
      SessionState::Idle,     SessionState::Hello,    SessionState::Streaming,
      SessionState::Resuming, SessionState::Prepared, SessionState::Committed,
      SessionState::Aborted,
  };
  std::vector<Cell> table;
  for (SessionState from : all) {
    const bool terminal =
        from == SessionState::Committed || from == SessionState::Aborted;
    for (net::MsgType t : kAllTypes) {
      Cell cell{from, t, Want::ProtocolErr, from};
      switch (t) {
        case net::MsgType::Hello:
          if (from == SessionState::Idle) cell = {from, t, Want::Legal, SessionState::Hello};
          break;
        case net::MsgType::ResumeHello:
          if (from == SessionState::Resuming) {
            cell = {from, t, Want::Legal, SessionState::Streaming};
          }
          break;
        case net::MsgType::StateAck:
          // Watermark folding while live, straggler no-op after the verdict;
          // only the pre-stream states treat it as hostile.
          if (from != SessionState::Idle && from != SessionState::Hello) {
            cell = {from, t, Want::Legal, from};
          }
          break;
        case net::MsgType::PrepareAck:
          if (from == SessionState::Prepared) cell = {from, t, Want::Legal, from};
          break;
        case net::MsgType::Ack:
          if (from == SessionState::Committed) cell = {from, t, Want::Legal, from};
          break;
        case net::MsgType::Nack:
        case net::MsgType::Error:
          // A failure report is part of the protocol anywhere before the
          // verdict — the handoff failed, the protocol did not.
          if (!terminal) cell = {from, t, Want::MigrationErr, SessionState::Aborted};
          break;
        default:
          break;  // the destination-direction frames are never legal here
      }
      table.push_back(cell);
    }
  }
  return table;
}

TEST(SourceSessionTable, EveryStateFramePairBehavesPerTheTable) {
  for (const Cell& cell : source_table()) {
    SCOPED_TRACE(std::string(session_state_name(cell.from)) + " + frame " +
                 std::to_string(static_cast<int>(cell.frame)));
    SourceSession s(next_session_id(), kTxn);
    drive_source(s, cell.from);
    ASSERT_EQ(s.state(), cell.from);
    switch (cell.want) {
      case Want::Legal:
        EXPECT_EQ(s.on_frame(make_frame(cell.frame)), cell.to);
        break;
      case Want::ProtocolErr:
        EXPECT_THROW(s.on_frame(make_frame(cell.frame)), ProtocolError);
        EXPECT_EQ(s.state(), SessionState::Aborted) << "illegal frames poison";
        EXPECT_FALSE(s.abort_reason().empty());
        break;
      case Want::MigrationErr:
        EXPECT_THROW(s.on_frame(make_frame(cell.frame)), MigrationError);
        EXPECT_EQ(s.state(), SessionState::Aborted);
        break;
    }
  }
}

TEST(SourceSessionTable, SemanticChecksRejectWithMigrationError) {
  {  // version skew in Hello
    SourceSession s(next_session_id(), kTxn);
    net::Message hello = make_frame(net::MsgType::Hello);
    hello.payload[0] = net::kProtocolVersion - 1;
    EXPECT_THROW(s.on_frame(hello), MigrationError);
    EXPECT_EQ(s.state(), SessionState::Aborted);
  }
  {  // ResumeHello for a foreign transaction
    SourceSession s(next_session_id(), kTxn);
    drive_source(s, SessionState::Resuming);
    net::Message resume;
    resume.type = net::MsgType::ResumeHello;
    resume.payload = net::encode_resume_hello({.txn_id = kTxn + 1, .next_seq = 0});
    EXPECT_THROW(s.on_frame(resume), MigrationError);
  }
  {  // ResumeHello claiming more chunks than the retained stream holds
    SourceSession s(next_session_id(), kTxn);
    drive_source(s, SessionState::Resuming);
    s.set_stream(2, 99);
    net::Message resume;
    resume.type = net::MsgType::ResumeHello;
    resume.payload = net::encode_resume_hello({.txn_id = kTxn, .next_seq = 3});
    EXPECT_THROW(s.on_frame(resume), MigrationError);
  }
  {  // end-to-end digest mismatch at Prepare
    SourceSession s(next_session_id(), kTxn);
    drive_source(s, SessionState::Prepared);
    s.set_stream(4, 0xAAAA);
    net::Message ack;
    ack.type = net::MsgType::PrepareAck;
    ack.payload = net::encode_prepare_ack({.txn_id = kTxn, .digest = 0xBBBB});
    EXPECT_THROW(s.on_frame(ack), MigrationError);
    EXPECT_NE(s.abort_reason().find("digest mismatch"), std::string::npos);
  }
}

TEST(SourceSessionTable, StateAckFoldsTheWatermarkMonotonically) {
  SourceSession s(next_session_id(), kTxn);
  drive_source(s, SessionState::Streaming);
  net::Message ack;
  ack.type = net::MsgType::StateAck;
  ack.payload = net::encode_state_ack(8);
  s.on_frame(ack);
  EXPECT_EQ(s.acked_watermark(), 8u);
  ack.payload = net::encode_state_ack(4);  // late, lower: must not regress
  s.on_frame(ack);
  EXPECT_EQ(s.acked_watermark(), 8u);
}

TEST(SourceSessionTable, OutOfOrderLocalEventsAreProtocolErrors) {
  SourceSession s(next_session_id(), kTxn);
  EXPECT_THROW(s.begin_streaming(), ProtocolError);  // no Hello yet
  EXPECT_EQ(s.state(), SessionState::Aborted);

  SourceSession s2(next_session_id(), kTxn);
  drive_source(s2, SessionState::Hello);
  EXPECT_THROW(s2.commit_decided(), ProtocolError);  // no Prepare yet
}

/// ---- DestSession ----------------------------------------------------------

/// Destination driver states: SessionState plus the "stream fully
/// received" refinement of Streaming that gates Prepare.
struct DestFrom {
  SessionState state;
  bool stream_done;
};

void drive_dest(DestSession& d, const DestFrom& from) {
  if (from.state == SessionState::Idle) return;
  if (from.state == SessionState::Aborted) {
    d.abort_decided("driven for test");
    return;
  }
  d.announce();
  if (from.state == SessionState::Hello) return;
  d.on_frame(make_frame(net::MsgType::StateBegin));
  if (from.state == SessionState::Resuming) {
    d.park();
    return;
  }
  if (from.state == SessionState::Streaming) {
    if (from.stream_done) d.on_frame(make_frame(net::MsgType::StateEnd));
    return;
  }
  d.on_frame(make_frame(net::MsgType::StateEnd));
  d.on_frame(make_frame(net::MsgType::Prepare));
  if (from.state == SessionState::Prepared) return;
  d.on_frame(make_frame(net::MsgType::Commit));
  ASSERT_EQ(d.state(), SessionState::Committed);
}

std::vector<std::pair<DestFrom, std::vector<Cell>>> dest_table() {
  const DestFrom froms[] = {
      {SessionState::Idle, false},      {SessionState::Hello, false},
      {SessionState::Streaming, false}, {SessionState::Streaming, true},
      {SessionState::Resuming, false},  {SessionState::Prepared, false},
      {SessionState::Committed, false}, {SessionState::Aborted, false},
  };
  std::vector<std::pair<DestFrom, std::vector<Cell>>> table;
  for (const DestFrom& from : froms) {
    std::vector<Cell> cells;
    for (net::MsgType t : kAllTypes) {
      Cell cell{from.state, t, Want::ProtocolErr, from.state};
      switch (t) {
        case net::MsgType::StateBegin:
          if (from.state == SessionState::Hello) {
            cell = {from.state, t, Want::Legal, SessionState::Streaming};
          }
          break;
        case net::MsgType::Shutdown:
          // Orderly no-migration teardown: lands in Aborted WITHOUT a
          // throw; asserted separately below (not a Want::Legal cell
          // because `to` differs from a failure-free continuation).
          if (from.state == SessionState::Hello) {
            cell = {from.state, t, Want::Legal, SessionState::Aborted};
          }
          break;
        case net::MsgType::StateChunk:
        case net::MsgType::StateEnd:
          if (from.state == SessionState::Streaming && !from.stream_done) {
            cell = {from.state, t, Want::Legal, SessionState::Streaming};
          }
          break;
        case net::MsgType::Prepare:
          if (from.state == SessionState::Streaming && from.stream_done) {
            cell = {from.state, t, Want::Legal, SessionState::Prepared};
          }
          break;
        case net::MsgType::Commit:
          if (from.state == SessionState::Prepared) {
            cell = {from.state, t, Want::Legal, SessionState::Committed};
          }
          break;
        case net::MsgType::Abort:
          if (from.state == SessionState::Prepared) {
            cell = {from.state, t, Want::MigrationErr, SessionState::Aborted};
          }
          break;
        default:
          break;  // the source-direction frames are never legal here
      }
      cells.push_back(cell);
    }
    table.emplace_back(from, std::move(cells));
  }
  return table;
}

TEST(DestSessionTable, EveryStateFramePairBehavesPerTheTable) {
  for (const auto& [from, cells] : dest_table()) {
    for (const Cell& cell : cells) {
      SCOPED_TRACE(std::string(session_state_name(from.state)) +
                   (from.stream_done ? "(stream-done)" : "") + " + frame " +
                   std::to_string(static_cast<int>(cell.frame)));
      DestSession d(next_session_id());
      drive_dest(d, from);
      ASSERT_EQ(d.state(), from.state);
      switch (cell.want) {
        case Want::Legal:
          EXPECT_EQ(d.on_frame(make_frame(cell.frame)), cell.to);
          break;
        case Want::ProtocolErr:
          EXPECT_THROW(d.on_frame(make_frame(cell.frame)), ProtocolError);
          EXPECT_EQ(d.state(), SessionState::Aborted) << "illegal frames poison";
          EXPECT_FALSE(d.abort_reason().empty());
          break;
        case Want::MigrationErr:
          EXPECT_THROW(d.on_frame(make_frame(cell.frame)), MigrationError);
          EXPECT_EQ(d.state(), SessionState::Aborted);
          break;
      }
    }
  }
}

TEST(DestSessionTable, ShutdownInHelloIsOrderlyNotAFailure) {
  DestSession d(next_session_id());
  d.announce();
  EXPECT_EQ(d.on_frame(make_frame(net::MsgType::Shutdown)), SessionState::Aborted);
  EXPECT_TRUE(d.orderly_shutdown());

  DestSession late(next_session_id());
  drive_dest(late, {SessionState::Streaming, false});
  EXPECT_THROW(late.on_frame(make_frame(net::MsgType::Shutdown)), ProtocolError);
  EXPECT_FALSE(late.orderly_shutdown());
}

TEST(DestSessionTable, LearnsTheTransactionFromStateBeginAndEnforcesIt) {
  DestSession d(next_session_id());
  d.announce();
  d.on_frame(make_frame(net::MsgType::StateBegin));
  EXPECT_EQ(d.txn_id(), kTxn);
  d.on_frame(make_frame(net::MsgType::StateEnd));
  net::Message prepare;
  prepare.type = net::MsgType::Prepare;
  prepare.payload = net::encode_txn(kTxn + 7);
  EXPECT_THROW(d.on_frame(prepare), MigrationError);
  EXPECT_EQ(d.state(), SessionState::Aborted);
}

TEST(DestSessionTable, CountsChunksAndRefinesStreamingWithStateEnd) {
  DestSession d(next_session_id());
  drive_dest(d, {SessionState::Streaming, false});
  d.on_frame(make_frame(net::MsgType::StateChunk));
  d.on_frame(make_frame(net::MsgType::StateChunk));
  EXPECT_EQ(d.chunks_seen(), 2u);
  d.on_frame(make_frame(net::MsgType::StateEnd));
  // After StateEnd the stream is sealed: more chunks are hostile.
  EXPECT_THROW(d.on_frame(make_frame(net::MsgType::StateChunk)), ProtocolError);
}

TEST(SessionMachines, PerSessionInstrumentsAreLabeledByIdAndRole) {
  const std::uint32_t id = next_session_id();
  SourceSession s(id, kTxn);
  s.on_frame(make_frame(net::MsgType::Hello));
  const std::string prefix = "mig.session." + std::to_string(id) + ".";
  obs::MetricsSnapshot snap = obs::Registry::process().snapshot();
  EXPECT_EQ(snap.counter(prefix + "source.frames"), 1u);
  EXPECT_EQ(snap.gauge(prefix + "source.state"),
            static_cast<std::int64_t>(SessionState::Hello));
  // The destination half of the same session id keeps separate books.
  EXPECT_EQ(snap.counter(prefix + "destination.frames"), 0u);
}

}  // namespace
}  // namespace hpm::mig
