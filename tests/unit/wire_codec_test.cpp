// Unit tests of the dedup wire codec (DESIGN.md §15): varint + delta over
// the canonical chunk body. The decoder is the security boundary — coded
// bytes arrive from the network — so beyond round-trip fidelity the suite
// feeds it hostile inputs: truncated and overlong varints, wrong tails,
// and length mismatches, all of which must throw hpm::NetError and never
// produce a byte.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "common/error.hpp"
#include "mig/wire_codec.hpp"

namespace hpm::mig {
namespace {

Bytes roundtrip(const Bytes& body) {
  const Bytes coded = codec_encode(body);
  return codec_decode(coded, body.size());
}

TEST(WireCodec, EmptyBodyRoundTrips) {
  const Bytes body;
  EXPECT_EQ(roundtrip(body), body);
  EXPECT_TRUE(codec_encode(body).empty());
}

TEST(WireCodec, SubWordTailRidesRaw) {
  // Bodies shorter than one u64 word are all tail: the encoding is the
  // identity, byte for byte.
  for (std::size_t n = 1; n < 8; ++n) {
    Bytes body(n);
    for (std::size_t i = 0; i < n; ++i) body[i] = static_cast<std::uint8_t>(0xA0 + i);
    EXPECT_EQ(codec_encode(body), body);
    EXPECT_EQ(roundtrip(body), body);
  }
}

TEST(WireCodec, ZeroRunsCompressHard) {
  // The canonical stream's padding case: all-zero words delta to zero and
  // cost one varint byte each.
  const Bytes body(4096, 0);
  const Bytes coded = codec_encode(body);
  EXPECT_EQ(coded.size(), body.size() / 8);
  EXPECT_EQ(codec_decode(coded, body.size()), body);
}

TEST(WireCodec, MonotoneWordsCompress) {
  // Block-id / ordinal-like content: consecutive u64s with small deltas.
  Bytes body;
  body.reserve(256 * 8);
  for (std::uint64_t v = 1000; v < 1256; ++v) {
    for (int b = 7; b >= 0; --b) {
      body.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
  }
  const Bytes coded = codec_encode(body);
  EXPECT_LT(coded.size(), body.size() / 2) << "small deltas must shrink";
  EXPECT_EQ(codec_decode(coded, body.size()), body);
}

TEST(WireCodec, RandomBodiesRoundTrip) {
  std::mt19937_64 rng(0xC0DECu);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng() % 3000);
    Bytes body(n);
    for (std::uint8_t& b : body) b = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(roundtrip(body), body) << "trial " << trial << " size " << n;
  }
}

TEST(WireCodec, HighEntropyMayExpandButStaysCorrect) {
  // Worst case: every delta is huge, each word costs up to 10 varint
  // bytes. The sender handles this with the per-chunk raw fallback; the
  // codec itself must still round-trip.
  std::mt19937_64 rng(7);
  Bytes body(512 * 8);
  for (std::uint8_t& b : body) b = static_cast<std::uint8_t>(rng());
  const Bytes coded = codec_encode(body);
  EXPECT_LE(coded.size(), body.size() * 10 / 8 + 8);
  EXPECT_EQ(codec_decode(coded, body.size()), body);
}

TEST(WireCodec, TruncatedVarintThrows) {
  Bytes body(64, 0x55);
  Bytes coded = codec_encode(body);
  ASSERT_GT(coded.size(), 1u);
  coded.pop_back();
  EXPECT_THROW((void)codec_decode(coded, body.size()), NetError);
}

TEST(WireCodec, ContinuationBitRunoffThrows) {
  // Every byte claims a continuation: the varint never terminates inside
  // the buffer. Must be "truncated", not a buffer overrun.
  const Bytes hostile(16, 0x80);
  EXPECT_THROW((void)codec_decode(hostile, 8), NetError);
}

TEST(WireCodec, OverlongVarintThrows) {
  // 10 continuation bytes then a terminator whose payload bits overflow
  // 64 bits of zigzag value.
  Bytes hostile(9, 0xFF);
  hostile.push_back(0x7F);
  EXPECT_THROW((void)codec_decode(hostile, 8), NetError);
}

TEST(WireCodec, TrailingGarbageThrows) {
  Bytes body(64, 1);
  Bytes coded = codec_encode(body);
  coded.push_back(0x00);  // one byte past the expected tail
  EXPECT_THROW((void)codec_decode(coded, body.size()), NetError);
}

TEST(WireCodec, ShortTailThrows) {
  // expected_len promises 4 tail bytes after the words; deliver 3.
  Bytes body(12, 0x10);  // one word + 4-byte tail
  Bytes coded = codec_encode(body);
  ASSERT_GE(coded.size(), 1u);
  coded.pop_back();
  EXPECT_THROW((void)codec_decode(coded, body.size()), NetError);
}

TEST(WireCodec, WrongExpectedLenThrows) {
  // A lying manifest: the coded body decodes fine at its true length but
  // must be rejected against any other expectation.
  Bytes body(64, 3);
  const Bytes coded = codec_encode(body);
  EXPECT_THROW((void)codec_decode(coded, body.size() + 8), NetError);
  EXPECT_THROW((void)codec_decode(coded, body.size() - 8), NetError);
}

TEST(WireCodec, CapsAndNegotiation) {
  EXPECT_EQ(codec_caps_of(WireCodec::None), 0);
  EXPECT_EQ(codec_caps_of(WireCodec::VarintDelta), kCodecCapVarintDelta);
  // Both sides must want it; either side alone falls back to raw.
  EXPECT_EQ(negotiate_codec(kCodecCapVarintDelta, WireCodec::VarintDelta),
            WireCodec::VarintDelta);
  EXPECT_EQ(negotiate_codec(0, WireCodec::VarintDelta), WireCodec::None);
  EXPECT_EQ(negotiate_codec(kCodecCapVarintDelta, WireCodec::None), WireCodec::None);
  EXPECT_EQ(negotiate_codec(0, WireCodec::None), WireCodec::None);
}

}  // namespace
}  // namespace hpm::mig
