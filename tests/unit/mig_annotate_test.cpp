// Annotation-macro edge cases: struct/array locals, HPM_LOCAL_ARRAY,
// multiple call sites, migration at every structural position, and
// frame-lifecycle invariants.
#include <gtest/gtest.h>

#include "mig/annotate.hpp"
#include "mig/context.hpp"
#include "ti/describe.hpp"

namespace hpm::mig {
namespace {

struct Vec3 {
  double x, y, z;
};

void register_vec3(ti::TypeTable& t) {
  ti::StructBuilder<Vec3> b(t, "vec3");
  HPM_TI_FIELD(b, Vec3, x);
  HPM_TI_FIELD(b, Vec3, y);
  HPM_TI_FIELD(b, Vec3, z);
  b.commit();
}

/// A frame holding a struct local, a fixed array local, and a
/// dynamically sized HPM_LOCAL_ARRAY region.
void shapes_program(MigContext& ctx, int n, double* out) {
  HPM_FUNCTION(ctx);
  Vec3 acc;
  double ring[8];
  double* dyn;
  int i;
  HPM_LOCAL(ctx, acc);
  HPM_LOCAL(ctx, ring);
  HPM_LOCAL(ctx, i);
  HPM_LOCAL(ctx, n);
  dyn = static_cast<double*>(::operator new(sizeof(double) * n, std::align_val_t{16}));
  // Free on every exit path: MigrationExit unwinds past HPM_BODY_END, and the
  // stream holds its own copy of the region by then.
  struct Guard {
    double* p;
    ~Guard() { ::operator delete(p, std::align_val_t{16}); }
  } dyn_guard{dyn};
  HPM_LOCAL_ARRAY(ctx, dyn, static_cast<std::uint32_t>(n));
  HPM_BODY(ctx);
  acc.x = acc.y = acc.z = 0;
  for (i = 0; i < 8; ++i) ring[i] = i * 1.5;
  for (i = 0; i < n; ++i) dyn[i] = i;
  for (i = 0; i < n; ++i) {
    HPM_POLL(ctx, 1);
    acc.x += dyn[i];
    acc.y += ring[i % 8];
    acc.z += 1.0;
  }
  *out = acc.x + acc.y + acc.z;
  HPM_BODY_END(ctx);
}

double shapes_expected(int n) {
  double x = 0, y = 0;
  for (int i = 0; i < n; ++i) {
    x += i;
    y += (i % 8) * 1.5;
  }
  return x + y + n;
}

class ShapesSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShapesSweep, StructAndArrayLocalsSurviveMigrationAtAnyPoll) {
  ti::TypeTable t;
  register_vec3(t);
  MigContext src(t);
  src.set_migrate_at_poll(GetParam());
  double out = 0;
  EXPECT_THROW(shapes_program(src, 20, &out), MigrationExit);

  ti::TypeTable t2;
  register_vec3(t2);
  MigContext dst(t2);
  dst.begin_restore(src.stream());
  shapes_program(dst, 20, &out);
  EXPECT_EQ(out, shapes_expected(20));
}

INSTANTIATE_TEST_SUITE_P(PollPoints, ShapesSweep, ::testing::Values(1, 5, 10, 19, 20));

/// Two call sites into the same callee: the resume label must select the
/// correct one.
void callee(MigContext& ctx, int reps, long* acc) {
  HPM_FUNCTION(ctx);
  int i;
  HPM_LOCAL(ctx, i);
  HPM_LOCAL(ctx, reps);
  HPM_LOCAL(ctx, acc);
  HPM_BODY(ctx);
  for (i = 0; i < reps; ++i) {
    HPM_POLL(ctx, 1);
    *acc += 1;
  }
  HPM_BODY_END(ctx);
}

void two_sites(MigContext& ctx, long* first_acc, long* second_acc) {
  HPM_FUNCTION(ctx);
  long a, b;
  HPM_LOCAL(ctx, a);
  HPM_LOCAL(ctx, b);
  HPM_BODY(ctx);
  a = 0;
  b = 0;
  HPM_CALL(ctx, 1, callee(ctx, 5, HPM_ARG(ctx, &a)));
  HPM_CALL(ctx, 2, callee(ctx, 7, HPM_ARG(ctx, &b)));
  *first_acc = a;
  *second_acc = b;
  HPM_BODY_END(ctx);
}

class CallSiteSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CallSiteSweep, ResumeSelectsTheRightCallSite) {
  ti::TypeTable t;
  MigContext src(t);
  src.set_migrate_at_poll(GetParam());
  long a = -1, b = -1;
  EXPECT_THROW(two_sites(src, &a, &b), MigrationExit);

  ti::TypeTable t2;
  MigContext dst(t2);
  dst.begin_restore(src.stream());
  dst.set_migrate_at_poll(0);
  a = -1;
  b = -1;
  two_sites(dst, &a, &b);
  EXPECT_EQ(a, 5);
  EXPECT_EQ(b, 7);
}

// Polls 1..5 are inside the first call, 6..12 inside the second.
INSTANTIATE_TEST_SUITE_P(PollPoints, CallSiteSweep,
                         ::testing::Values(1, 3, 5, 6, 9, 12));

TEST(Annotation, PointerBetweenSiblingLocalsSurvives) {
  // A pointer local that points into a sibling array local: interior
  // stack-to-stack edges must re-resolve to the destination's storage.
  auto program = [](MigContext& ctx, double* value, std::ptrdiff_t* offset) {
    HPM_FUNCTION(ctx);
    double grid[16];
    double* cursor;
    int i;
    HPM_LOCAL(ctx, grid);
    HPM_LOCAL(ctx, cursor);
    HPM_LOCAL(ctx, i);
    HPM_BODY(ctx);
    for (i = 0; i < 16; ++i) grid[i] = i * 2.0;
    cursor = &grid[11];
    HPM_POLL(ctx, 1);
    // Observed while the frame is still alive: the pointer must target
    // element 11 of THIS side's grid storage, with the migrated value.
    *value = *cursor;
    *offset = cursor - grid;
    HPM_BODY_END(ctx);
  };
  ti::TypeTable t;
  MigContext src(t);
  src.set_migrate_at_poll(1);
  double value = 0;
  std::ptrdiff_t offset = -1;
  EXPECT_THROW(program(src, &value, &offset), MigrationExit);

  ti::TypeTable t2;
  MigContext dst(t2);
  dst.begin_restore(src.stream());
  program(dst, &value, &offset);
  EXPECT_EQ(offset, 11);
  EXPECT_EQ(value, 22.0);
}

TEST(Annotation, RegistrationOrderMismatchIsDetected) {
  auto source_program = [](MigContext& ctx) {
    HPM_FUNCTION(ctx);
    int a;
    double b;
    HPM_LOCAL(ctx, a);
    HPM_LOCAL(ctx, b);
    HPM_BODY(ctx);
    a = 1;
    b = 2;
    HPM_POLL(ctx, 1);
    HPM_BODY_END(ctx);
  };
  // Destination registers the same names in a different order.
  auto swapped_program = [](MigContext& ctx) {
    FrameGuard guard(ctx, "operator()");  // match the lambda's __func__
    auto& hpm_frame_ = guard.frame();
    int a;
    double b;
    ctx.local(hpm_frame_, "b", b);
    ctx.local(hpm_frame_, "a", a);
    switch (ctx.resume_point(hpm_frame_)) {
      case 0:
      case 1:
        ctx.poll(hpm_frame_, 1);
    }
  };
  ti::TypeTable t;
  MigContext src(t);
  src.set_migrate_at_poll(1);
  EXPECT_THROW(source_program(src), MigrationExit);
  ti::TypeTable t2;
  MigContext dst(t2);
  dst.begin_restore(src.stream());
  EXPECT_THROW(swapped_program(dst), MigrationError);
}

TEST(Annotation, FrameDepthIsVisibleDuringExecution) {
  ti::TypeTable t;
  MigContext ctx(t);
  EXPECT_EQ(ctx.frame_depth(), 0u);
  {
    FrameGuard outer(ctx, "outer");
    EXPECT_EQ(ctx.frame_depth(), 1u);
    {
      FrameGuard inner(ctx, "inner");
      EXPECT_EQ(ctx.frame_depth(), 2u);
    }
    EXPECT_EQ(ctx.frame_depth(), 1u);
  }
  EXPECT_EQ(ctx.frame_depth(), 0u);
}

TEST(Annotation, LocalsUnregisterEvenWhenMigrationUnwinds) {
  ti::TypeTable t;
  MigContext ctx(t);
  ctx.set_migrate_at_poll(1);
  auto program = [](MigContext& c) {
    HPM_FUNCTION(c);
    int x;
    HPM_LOCAL(c, x);
    HPM_BODY(c);
    x = 0;
    HPM_POLL(c, 1);
    HPM_BODY_END(c);
  };
  EXPECT_THROW(program(ctx), MigrationExit);
  EXPECT_EQ(ctx.space().msrlt().block_count(), 0u);  // unwound cleanly
}

}  // namespace
}  // namespace hpm::mig
