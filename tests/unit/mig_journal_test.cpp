// Intent journal: durability format and crash arbitration.
//
// The journal is the ground truth of the transactional handoff, so these
// tests attack exactly what a crash attacks: records cut short mid-append,
// CRC damage, missing files — and then the full verdict table of
// recover_from_journals(), which must name exactly one owner from any
// journal state the protocol can leave behind.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "mig/journal.hpp"

namespace hpm::mig {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hpm_journal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  /// Write `records` to a fresh journal file and return its path.
  std::string write(const char* name, const std::vector<JournalRecord>& records) {
    const std::string p = path(name);
    Journal j(p);
    for (const JournalRecord& r : records) j.append(r);
    return p;
  }

  std::filesystem::path dir_;
};

TEST_F(JournalTest, AppendReplayRoundTrip) {
  const std::vector<JournalRecord> written = {
      {JournalRecordType::Begin, 42, 0, 1, "source"},
      {JournalRecordType::Commit, 42, 0xDEADBEEFCAFEF00Du, 1, ""},
      {JournalRecordType::Done, 42, 0xDEADBEEFCAFEF00Du, 1, "confirmed by destination"},
  };
  const std::string p = write("roundtrip.journal", written);

  const std::vector<JournalRecord> read = Journal::replay(p);
  ASSERT_EQ(read.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(read[i].type, written[i].type);
    EXPECT_EQ(read[i].txn_id, written[i].txn_id);
    EXPECT_EQ(read[i].digest, written[i].digest);
    EXPECT_EQ(read[i].note, written[i].note);
  }
}

TEST_F(JournalTest, MissingFileReplaysEmpty) {
  EXPECT_TRUE(Journal::replay(path("never_written.journal")).empty());
}

TEST_F(JournalTest, NullJournalRecordsNothing) {
  Journal null_journal;
  EXPECT_FALSE(null_journal.durable());
  null_journal.append({JournalRecordType::Commit, 1, 0, 1, ""});  // must not throw
}

TEST_F(JournalTest, UnwritablePathThrows) {
  Journal j("/nonexistent-dir/j.journal");
  EXPECT_THROW(j.append({JournalRecordType::Begin, 1, 0, 1, ""}), MigrationError);
}

TEST_F(JournalTest, TornTailRecordIsDropped) {
  const std::string p = write("torn.journal", {
      {JournalRecordType::Begin, 7, 0, 1, "source"},
      {JournalRecordType::Commit, 7, 99, 1, "about to be torn"},
  });
  // Crash mid-append: cut the last record short by a few bytes.
  const auto full = std::filesystem::file_size(p);
  std::filesystem::resize_file(p, full - 5);

  const std::vector<JournalRecord> read = Journal::replay(p);
  ASSERT_EQ(read.size(), 1u) << "the torn Commit must not replay";
  EXPECT_EQ(read[0].type, JournalRecordType::Begin);
}

TEST_F(JournalTest, CrcDamageDropsTheRecordAndEverythingAfter) {
  const std::string p = write("crc.journal", {
      {JournalRecordType::Begin, 7, 0, 1, ""},
      {JournalRecordType::Prepared, 7, 1, 1, ""},
      {JournalRecordType::Committed, 7, 1, 1, ""},
  });
  // Flip one byte inside the SECOND record's txn field.
  std::fstream f(p, std::ios::binary | std::ios::in | std::ios::out);
  const std::size_t record_size = 4 + 1 + 8 + 8 + 4 + 4 + 0 + 4;  // v2, no note
  f.seekp(static_cast<std::streamoff>(record_size + 8));
  char b = 0;
  f.read(&b, 1);
  f.seekp(static_cast<std::streamoff>(record_size + 8));
  b = static_cast<char>(b ^ 0x5A);
  f.write(&b, 1);
  f.close();

  const std::vector<JournalRecord> read = Journal::replay(p);
  ASSERT_EQ(read.size(), 1u) << "damage must drop the record AND its successors";
  EXPECT_EQ(read[0].type, JournalRecordType::Begin);
}

// --- the arbitration table: every protocol-reachable journal state names
// exactly one owner.

TEST_F(JournalTest, VerdictEmptyJournalsNameNoOwner) {
  const RecoveryVerdict v =
      recover_from_journals(path("none_src"), path("none_dst"));
  EXPECT_EQ(v.owner, TxnOwner::None);
  EXPECT_FALSE(v.completed);
}

TEST_F(JournalTest, VerdictBeginOnlyIsPresumedAbort) {
  // Crash pre-Prepare: both sides opened the transaction, nobody decided.
  const std::string src = write("s1", {{JournalRecordType::Begin, 5, 0, 1, "source"}});
  const std::string dst = write("d1", {{JournalRecordType::Begin, 5, 0, 1, "destination"}});
  const RecoveryVerdict v = recover_from_journals(src, dst);
  EXPECT_EQ(v.owner, TxnOwner::Source);
  EXPECT_EQ(v.txn_id, 5u);
  EXPECT_FALSE(v.completed);
}

TEST_F(JournalTest, VerdictPreparedWithoutCommitIsPresumedAbort) {
  // Crash post-Prepare, pre-Commit: the destination voted yes but the
  // source never made the decision durable — source still owns.
  const std::string src = write("s2", {{JournalRecordType::Begin, 5, 0, 1, ""}});
  const std::string dst = write("d2", {{JournalRecordType::Begin, 5, 0, 1, ""},
                                       {JournalRecordType::Prepared, 5, 9, 1, ""}});
  const RecoveryVerdict v = recover_from_journals(src, dst);
  EXPECT_EQ(v.owner, TxnOwner::Source);
}

TEST_F(JournalTest, VerdictSourceCommitHandsOwnershipToDestination) {
  // Crash post-Commit: the source relinquished; it does not matter whether
  // the Commit frame ever reached the destination.
  const std::string src = write("s3", {{JournalRecordType::Begin, 5, 0, 1, ""},
                                       {JournalRecordType::Commit, 5, 9, 1, ""}});
  const std::string dst = write("d3", {{JournalRecordType::Begin, 5, 0, 1, ""},
                                       {JournalRecordType::Prepared, 5, 9, 1, ""}});
  const RecoveryVerdict v = recover_from_journals(src, dst);
  EXPECT_EQ(v.owner, TxnOwner::Destination);
  EXPECT_FALSE(v.completed);
}

TEST_F(JournalTest, VerdictDoneMarksTheHandoffComplete) {
  const std::string src = write("s4", {{JournalRecordType::Begin, 5, 0, 1, ""},
                                       {JournalRecordType::Commit, 5, 9, 1, ""},
                                       {JournalRecordType::Done, 5, 9, 1, ""}});
  const RecoveryVerdict v = recover_from_journals(src, path("d4_missing"));
  EXPECT_EQ(v.owner, TxnOwner::Destination);
  EXPECT_TRUE(v.completed);
}

TEST_F(JournalTest, VerdictAbortThenCommitLastDecisionWins) {
  // The pipelined leg aborted, a serial retry of the SAME transaction
  // committed: the last decisive record governs.
  const std::string src = write("s5", {{JournalRecordType::Begin, 5, 0, 1, ""},
                                       {JournalRecordType::Abort, 5, 0, 1, "pipelined leg"},
                                       {JournalRecordType::Commit, 5, 9, 1, "serial retry"}});
  const RecoveryVerdict v = recover_from_journals(src, path("d5_missing"));
  EXPECT_EQ(v.owner, TxnOwner::Destination);
}

TEST_F(JournalTest, VerdictAbortAfterCommitNeverHappensButResolvesToSource) {
  const std::string src = write("s6", {{JournalRecordType::Commit, 5, 9, 1, ""},
                                       {JournalRecordType::Abort, 5, 0, 1, ""}});
  const RecoveryVerdict v = recover_from_journals(src, path("d6_missing"));
  EXPECT_EQ(v.owner, TxnOwner::Source);
}

TEST_F(JournalTest, VerdictDestCommittedAloneStillNamesDestination) {
  // The source journal was lost entirely; the destination's Committed is
  // only reachable after a durable source Commit, so it decides.
  const std::string dst = write("d7", {{JournalRecordType::Begin, 5, 0, 1, ""},
                                       {JournalRecordType::Prepared, 5, 9, 1, ""},
                                       {JournalRecordType::Committed, 5, 9, 1, ""}});
  const RecoveryVerdict v = recover_from_journals(path("s7_missing"), dst);
  EXPECT_EQ(v.owner, TxnOwner::Destination);
}

TEST_F(JournalTest, VerdictConsidersOnlyTheLatestTransaction) {
  // txn 5 committed long ago; txn 8 is the interrupted one.
  const std::string src = write("s8", {{JournalRecordType::Begin, 5, 0, 1, ""},
                                       {JournalRecordType::Commit, 5, 1, 1, ""},
                                       {JournalRecordType::Done, 5, 1, 1, ""},
                                       {JournalRecordType::Begin, 8, 0, 1, ""}});
  const RecoveryVerdict v = recover_from_journals(src, path("d8_missing"));
  EXPECT_EQ(v.txn_id, 8u);
  EXPECT_EQ(v.owner, TxnOwner::Source) << "txn 8 never committed";
}

TEST_F(JournalTest, GcSweepsCompletedPairsAndKeepsEverythingElse) {
  // txn 10: completed (source logged Done) — sweepable.
  write(keyed_source_journal_name(10).c_str(),
        {{JournalRecordType::Begin, 10, 0, 1, ""},
         {JournalRecordType::Commit, 10, 7, 1, ""},
         {JournalRecordType::Done, 10, 7, 1, ""}});
  write(keyed_dest_journal_name(10).c_str(),
        {{JournalRecordType::Begin, 10, 0, 1, ""},
         {JournalRecordType::Committed, 10, 7, 1, ""}});
  // txn 11: in doubt (Commit without Done) — recovery still needs it.
  write(keyed_source_journal_name(11).c_str(),
        {{JournalRecordType::Begin, 11, 0, 1, ""},
         {JournalRecordType::Commit, 11, 9, 1, ""}});
  // txn 12: aborted — the source still owns; the record stays.
  write(keyed_source_journal_name(12).c_str(),
        {{JournalRecordType::Begin, 12, 0, 1, ""},
         {JournalRecordType::Abort, 12, 0, 1, ""}});

  const std::vector<std::uint64_t> swept = gc_completed_txn_journals(dir_.string());
  ASSERT_EQ(swept.size(), 1u);
  EXPECT_EQ(swept[0], 10u);

  // Both of the completed pair's files are gone; the others survive.
  EXPECT_FALSE(std::filesystem::exists(dir_ / keyed_source_journal_name(10)));
  EXPECT_FALSE(std::filesystem::exists(dir_ / keyed_dest_journal_name(10)));
  EXPECT_TRUE(std::filesystem::exists(dir_ / keyed_source_journal_name(11)));
  EXPECT_TRUE(std::filesystem::exists(dir_ / keyed_source_journal_name(12)));

  const std::vector<std::uint64_t> remaining = list_journaled_txns(dir_.string());
  EXPECT_EQ(remaining, (std::vector<std::uint64_t>{11, 12}));

  // Idempotent: a second sweep finds nothing completed.
  EXPECT_TRUE(gc_completed_txn_journals(dir_.string()).empty());
}

TEST_F(JournalTest, GcOfMissingOrEmptyDirectoryIsANoOp) {
  EXPECT_TRUE(gc_completed_txn_journals((dir_ / "nope").string()).empty());
  EXPECT_TRUE(gc_completed_txn_journals(dir_.string()).empty());
}

}  // namespace
}  // namespace hpm::mig
