// RetainedStream: the immutable replay source behind resume and failover.
// Memory mode and spilled mode must serve bit-identical bytes for every
// read shape the senders use (whole-stream materialize, chunk-at-a-time,
// resume tails), out-of-range reads must fail loudly, and release() must
// unlink the spill file — a terminal transaction leaves nothing behind.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "mig/retained_stream.hpp"

namespace hpm::mig {
namespace {

Bytes pattern_stream(std::size_t n) {
  Bytes b(n);
  // Position-dependent, non-repeating within a 256*251 window, so a read
  // served from the wrong offset can never match.
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + i / 251) & 0xFF);
  }
  return b;
}

std::string temp_spill_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("hpm_retained_" + std::string(tag) + "_" + std::to_string(::getpid()) +
           ".stream"))
      .string();
}

TEST(RetainedStream, MemoryModeServesEveryReadShape) {
  const Bytes stream = pattern_stream(10'000);
  RetainedStream r;
  r.set(Bytes(stream));
  EXPECT_EQ(r.size(), stream.size());
  EXPECT_FALSE(r.empty());
  EXPECT_FALSE(r.spilled());

  EXPECT_EQ(r.materialize(), stream);

  // Chunk-at-a-time, including the short tail (the sender's loop).
  constexpr std::size_t kChunk = 512;
  for (std::size_t off = 0; off < stream.size(); off += kChunk) {
    const std::size_t n = std::min(kChunk, stream.size() - off);
    Bytes out(n);
    r.read(off, out);
    EXPECT_EQ(0, std::memcmp(out.data(), stream.data() + off, n)) << "offset " << off;
  }

  // A resume tail from an unaligned watermark.
  Bytes tail(stream.size() - 777);
  r.read(777, tail);
  EXPECT_EQ(0, std::memcmp(tail.data(), stream.data() + 777, tail.size()));
}

TEST(RetainedStream, SpillPreservesBytesAndFreesNothingVisible) {
  const Bytes stream = pattern_stream(65'536 + 37);  // unaligned size
  const std::string path = temp_spill_path("roundtrip");
  RetainedStream r;
  r.set(Bytes(stream));
  r.spill(path);
  EXPECT_TRUE(r.spilled());
  EXPECT_EQ(r.spill_path(), path);
  EXPECT_EQ(r.size(), stream.size());
  ASSERT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(std::filesystem::file_size(path), stream.size());

  // Every read shape again, now served by pread.
  EXPECT_EQ(r.materialize(), stream);
  constexpr std::size_t kChunk = 4096;
  for (std::size_t off = 0; off < stream.size(); off += kChunk) {
    const std::size_t n = std::min(kChunk, stream.size() - off);
    Bytes out(n);
    r.read(off, out);
    EXPECT_EQ(0, std::memcmp(out.data(), stream.data() + off, n)) << "offset " << off;
  }
  Bytes tail(stream.size() - 12'345);
  r.read(12'345, tail);
  EXPECT_EQ(0, std::memcmp(tail.data(), stream.data() + 12'345, tail.size()));

  // Spilling again is a no-op, not a rewrite.
  r.spill(path);
  EXPECT_EQ(r.materialize(), stream);

  r.release();
  EXPECT_FALSE(std::filesystem::exists(path))
      << "release() must unlink the spill file";
}

TEST(RetainedStream, OutOfRangeReadsFailLoudly) {
  const Bytes stream = pattern_stream(1000);
  RetainedStream r;
  r.set(Bytes(stream));
  Bytes out(8);
  EXPECT_THROW(r.read(1000 - 4, out), MigrationError);  // tail overrun
  EXPECT_THROW(r.read(1'000'000, out), MigrationError);  // far past the end

  const std::string path = temp_spill_path("range");
  r.spill(path);
  EXPECT_THROW(r.read(1000 - 4, out), MigrationError);
  EXPECT_THROW(r.read(1'000'000, out), MigrationError);
  r.release();
}

TEST(RetainedStream, ATruncatedSpillFileFailsTheReadNotTheRestore) {
  const Bytes stream = pattern_stream(8192);
  const std::string path = temp_spill_path("truncated");
  RetainedStream r;
  r.set(Bytes(stream));
  r.spill(path);
  // Simulate on-disk damage: the replay source lost its tail. A read into
  // the missing region must throw, never hand back short or stale bytes.
  std::filesystem::resize_file(path, 4096);
  Bytes out(1024);
  r.read(0, out);  // intact prefix still serves
  EXPECT_EQ(0, std::memcmp(out.data(), stream.data(), out.size()));
  Bytes tail(1024);
  EXPECT_THROW(r.read(8192 - 1024, tail), MigrationError);
  r.release();
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(RetainedStream, ReleaseIsIdempotentAndEmptyStreamsAreNoops) {
  RetainedStream r;
  EXPECT_TRUE(r.empty());
  r.spill(temp_spill_path("empty"));  // no-op on an empty stream
  EXPECT_FALSE(r.spilled());
  r.release();
  r.release();

  RetainedStream m;
  m.set(pattern_stream(64));
  const std::string path = temp_spill_path("idem");
  m.spill(path);
  m.release();
  m.release();  // must be safe after the file is already gone
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace hpm::mig
