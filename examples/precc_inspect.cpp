// precc_inspect: run the pre-compiler front-end over a C declaration file
// and print the migration-safety report plus generated registration code.
//
//   $ ./examples/precc_inspect [file.h]
//
// Without an argument, analyzes a built-in sample containing both the
// paper's Figure 1 declarations and several migration-unsafe constructs.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "hpm/hpm.hpp"

namespace {

const char* kSample = R"(
/* The paper's Figure 1 example program declarations. */
struct node {
    float data;
    struct node *link;
};
struct node *first, *last;

/* Shapes from the test_pointer program. */
typedef int row10[10];
row10 *matrix_row;            /* pointer to array of 10 ints   */
int *(*indirections)[10];     /* pointer to array of 10 int*   */
struct tree {
    double weight;
    long depth_tag;
    struct tree *left, *right;
};

/* Migration-unsafe constructs the checker must flag. */
union overlay { int as_int; float as_float; };
void *opaque;                 /* untypable referent            */
int (*callback)(int, int);    /* function pointer              */
long double extended;         /* no portable representation    */
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kSample;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  hpm::ti::TypeTable table;
  hpm::precc::Parser parser(table, /*strict=*/false);
  const hpm::precc::ParseResult result = parser.parse(source);

  std::printf("%s\n", hpm::precc::report(table, result).c_str());
  std::printf("generated registration code:\n----\n%s----\n",
              hpm::precc::generate_registration(table, result).c_str());
  return 0;
}
