// nbody_migrate: a realistic long-running scientific workload — direct
// N-body gravity with leapfrog integration — migrated mid-simulation.
//
//   $ ./examples/nbody_migrate [bodies] [steps]
//
// Determinism makes the correctness check airtight: the run that
// migrates halfway must produce BIT-IDENTICAL final state to a run that
// never migrates, because collection/restoration preserves every double
// exactly (§4.1's "high-order floating point accuracy").
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "hpm/hpm.hpp"

namespace {

struct Body {
  double x, y, z;
  double vx, vy, vz;
  double mass;
};

void register_types(hpm::ti::TypeTable& table) {
  hpm::ti::StructBuilder<Body> b(table, "body");
  HPM_TI_FIELD(b, Body, x);
  HPM_TI_FIELD(b, Body, y);
  HPM_TI_FIELD(b, Body, z);
  HPM_TI_FIELD(b, Body, vx);
  HPM_TI_FIELD(b, Body, vy);
  HPM_TI_FIELD(b, Body, vz);
  HPM_TI_FIELD(b, Body, mass);
  b.commit();
}

void init_bodies(Body* bodies, int n, hpm::Rng& rng) {
  for (int i = 0; i < n; ++i) {
    bodies[i].x = rng.next_double() * 10 - 5;
    bodies[i].y = rng.next_double() * 10 - 5;
    bodies[i].z = rng.next_double() * 10 - 5;
    bodies[i].vx = rng.next_double() * 0.1 - 0.05;
    bodies[i].vy = rng.next_double() * 0.1 - 0.05;
    bodies[i].vz = rng.next_double() * 0.1 - 0.05;
    bodies[i].mass = 0.5 + rng.next_double();
  }
}

void kick_drift(Body* bodies, int n, double dt) {
  constexpr double kSoftening = 1e-2;
  for (int i = 0; i < n; ++i) {
    double ax = 0, ay = 0, az = 0;
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dx = bodies[j].x - bodies[i].x;
      const double dy = bodies[j].y - bodies[i].y;
      const double dz = bodies[j].z - bodies[i].z;
      const double r2 = dx * dx + dy * dy + dz * dz + kSoftening;
      const double inv_r3 = 1.0 / (r2 * std::sqrt(r2));
      ax += bodies[j].mass * dx * inv_r3;
      ay += bodies[j].mass * dy * inv_r3;
      az += bodies[j].mass * dz * inv_r3;
    }
    bodies[i].vx += ax * dt;
    bodies[i].vy += ay * dt;
    bodies[i].vz += az * dt;
  }
  for (int i = 0; i < n; ++i) {
    bodies[i].x += bodies[i].vx * dt;
    bodies[i].y += bodies[i].vy * dt;
    bodies[i].z += bodies[i].vz * dt;
  }
}

void nbody_program(hpm::mig::MigContext& ctx, int n, int steps,
                   std::vector<Body>* final_state) {
  HPM_FUNCTION(ctx);
  Body* bodies;
  int step;
  HPM_LOCAL(ctx, bodies);
  HPM_LOCAL(ctx, step);
  HPM_LOCAL(ctx, n);
  HPM_BODY(ctx);
  bodies = ctx.heap_alloc<Body>(static_cast<std::uint32_t>(n), "bodies");
  {
    hpm::Rng rng(4242);
    init_bodies(bodies, n, rng);
  }
  for (step = 0; step < steps; ++step) {
    HPM_POLL(ctx, 1);  // one legal migration point per timestep
    kick_drift(bodies, n, 1e-3);
  }
  final_state->assign(bodies, bodies + n);
  ctx.heap_free(bodies);
  HPM_BODY_END(ctx);
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 128;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 200;

  // Reference: no migration.
  std::vector<Body> reference;
  {
    hpm::mig::RunOptions options;
    options.register_types = register_types;
    options.program = [&reference, n, steps](hpm::mig::MigContext& ctx) {
      nbody_program(ctx, n, steps, &reference);
    };
    hpm::mig::run_migration(options);
  }

  // Migrated halfway through the integration.
  std::vector<Body> migrated;
  hpm::mig::RunOptions options;
  options.register_types = register_types;
  options.program = [&migrated, n, steps](hpm::mig::MigContext& ctx) {
    nbody_program(ctx, n, steps, &migrated);
  };
  options.migrate_at_poll = static_cast<std::uint64_t>(steps) / 2;
  const hpm::mig::MigrationReport report = hpm::mig::run_migration(options);

  const bool identical =
      reference.size() == migrated.size() &&
      std::memcmp(reference.data(), migrated.data(), reference.size() * sizeof(Body)) == 0;
  std::printf("nbody: %d bodies x %d steps, migrated at step %d (%llu bytes of state)\n", n,
              steps, steps / 2, static_cast<unsigned long long>(report.stream_bytes));
  std::printf("final state bit-identical to the unmigrated run: %s\n",
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
