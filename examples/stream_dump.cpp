// stream_dump: inspect what actually goes over the wire.
//
//   $ ./examples/stream_dump [-v]
//
// Collects the test_pointer program's state at its migration point and
// prints the decoded stream: header, TI table size, execution state
// (frames, resume labels, live variables), and every block record with
// its NEW/REF/NULL pointer structure — the tool to reach for when a
// destination rejects a stream.
#include <cstdio>
#include <cstring>

#include "apps/test_pointer.hpp"
#include "hpm/hpm.hpp"

int main(int argc, char** argv) {
  hpm::ti::TypeTable types;
  hpm::apps::test_pointer_register_types(types);
  hpm::mig::MigContext ctx(types);
  ctx.set_migrate_at_poll(1);
  hpm::apps::TestPointerResult result;
  try {
    hpm::apps::test_pointer_program(ctx, 5, &result);
  } catch (const hpm::mig::MigrationExit&) {
    // Collected; the stream is ready.
  }

  hpm::msrm::DumpOptions options;
  options.show_primitive_values = argc > 1 && std::strcmp(argv[1], "-v") == 0;
  std::fputs(hpm::msrm::dump_stream(ctx.stream(), options).c_str(), stdout);
  return 0;
}
