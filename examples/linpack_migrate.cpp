// linpack_migrate: the paper's computation-intensive workload, migrated
// mid-factorization over a chosen transport.
//
//   $ ./examples/linpack_migrate [n] [migrate_at_poll] [mem|socket|file]
//       ... [--pipeline] [--trace <out.json>]
//
// Solves Ax = b for an n x n system; a migration request lands while
// dgefa is eliminating columns, the process moves, and the destination
// finishes the solve and verifies the residual of the migrated solution.
// With --pipeline, the transfer is chunked and Collect / Tx / Restore
// overlap (DESIGN.md §10); the report then shows the achieved overlap.
// With --trace, the run's spans (mig.run > mig.collect / mig.tx, and
// mig.restore on the destination thread) are exported as Chrome
// trace_event JSON — load the file in chrome://tracing or ui.perfetto.dev.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/linpack.hpp"
#include "hpm/hpm.hpp"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 300;
  const std::uint64_t at_poll = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                         : static_cast<std::uint64_t>(n) / 2;
  hpm::mig::Transport transport = hpm::mig::Transport::Memory;
  if (argc > 3 && std::strcmp(argv[3], "socket") == 0) transport = hpm::mig::Transport::Socket;
  if (argc > 3 && std::strcmp(argv[3], "file") == 0) transport = hpm::mig::Transport::File;
  const char* trace_path = nullptr;
  bool pipeline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) trace_path = argv[i + 1];
    if (std::strcmp(argv[i], "--pipeline") == 0) pipeline = true;
  }

  hpm::apps::LinpackResult result;
  hpm::mig::RunOptions options;
  options.register_types = hpm::apps::linpack_register_types;
  options.program = [&result, n](hpm::mig::MigContext& ctx) {
    hpm::apps::linpack_program(ctx, n, /*seed=*/1, &result);
  };
  options.migrate_at_poll = at_poll;
  options.transport = transport;
  options.spool_path = "/tmp/hpm_linpack_spool.bin";
  options.pipeline = pipeline;

  const hpm::mig::MigrationReport report = hpm::mig::run_migration(options);

  std::printf("linpack %dx%d: migrated=%s after %llu polls\n", n, n,
              report.migrated ? "yes" : "no",
              static_cast<unsigned long long>(options.migrate_at_poll));
  std::printf("  live data     : %llu bytes in %llu blocks\n",
              static_cast<unsigned long long>(report.stream_bytes),
              static_cast<unsigned long long>(
                  report.metrics.counter("msrm.collect.blocks_saved")));
  std::printf("  collect/tx/restore: %.4f / %.4f / %.4f s (Tx on 100 Mb/s model)\n",
              report.collect_seconds, report.tx_seconds, report.restore_seconds);
  if (pipeline) {
    std::printf("  pipeline      : %llu chunks, overlap_ratio=%.2f\n",
                static_cast<unsigned long long>(
                    report.metrics.counter("mig.pipeline.chunks")),
                report.overlap_ratio);
  }
  std::printf("  solution      : residual=%.3e normalized=%.3f -> %s\n", result.residual,
              result.normalized, result.ok() ? "PASS" : "FAIL");
  if (trace_path != nullptr) {
    if (hpm::obs::Tracer::process().write_chrome_trace(trace_path)) {
      std::printf("  trace         : %zu spans -> %s (open in chrome://tracing)\n",
                  hpm::obs::Tracer::process().finished_count(), trace_path);
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path);
    }
  }
  return result.ok() ? 0 : 1;
}
