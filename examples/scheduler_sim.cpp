// scheduler_sim: the §5 "scheduler which can make optimal decisions on
// when and where to migrate", in two parts:
//
//  1. A LIVE asynchronous migration: a scheduler thread delivers a
//     migration request to a running linpack solve, which honors it at
//     its next poll-point (the paper's §2 protocol).
//  2. A cluster-scale policy study on the simulator: load balancing via
//     migration versus staying put, under the calibrated cost model.
//
//   $ ./examples/scheduler_sim
#include <cstdio>

#include <atomic>

#include "apps/linpack.hpp"
#include "hpm/hpm.hpp"
#include "sched/cluster.hpp"
#include "sched/live.hpp"

int main() {
  // --- part 1: asynchronous scheduler-driven migration -------------------
  hpm::apps::LinpackResult result;
  hpm::RunOptions options;
  options.register_types = hpm::apps::linpack_register_types;
  options.program = [&result](hpm::MigContext& ctx) {
    hpm::apps::linpack_program(ctx, 900, 2, &result);
  };
  options.request_after_seconds = 0.01;  // the scheduler decides mid-solve
  const hpm::MigrationReport report = hpm::run_migration(options);
  std::printf("live run: scheduler requested migration asynchronously -> migrated=%s "
              "after %llu polls, solution %s\n",
              report.migrated ? "yes" : "no",
              static_cast<unsigned long long>(report.source_polls),
              result.ok() ? "PASS" : "FAIL");

  // --- part 2: when/where policy study on the simulator -------------------
  using namespace hpm::sched;
  ClusterSim sim({{"h0", 1.0}, {"h1", 1.0}, {"h2", 2.0}}, CostModel::calibrated());
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 9; ++i) {
    jobs.push_back(JobSpec{"job" + std::to_string(i), 3.0, i * 0.1, 0, 4u << 20, 5000});
  }
  NeverMigrate never;
  LoadBalance balance;
  const SimResult r0 = sim.run(jobs, never);
  const SimResult r1 = sim.run(jobs, balance);
  std::printf("\ncluster study (9 jobs submitted to h0; h2 is 2x fast):\n");
  std::printf("  %-14s makespan %7.2f s, mean turnaround %7.2f s\n", never.name().c_str(),
              r0.makespan, r0.mean_turnaround);
  std::printf("  %-14s makespan %7.2f s, mean turnaround %7.2f s, %u migrations "
              "(%.3f s frozen)\n",
              balance.name().c_str(), r1.makespan, r1.mean_turnaround, r1.migrations,
              r1.total_frozen_seconds);
  std::printf("  migration speedup: %.2fx\n", r0.makespan / r1.makespan);

  // --- part 3: a LIVE cluster with auto-balancing --------------------------
  // Six real linpack jobs all land on node 0 of a 3-node LiveCluster; the
  // balancer spreads them by actually migrating process state.
  hpm::sched::LiveCluster live(3, hpm::apps::linpack_register_types);
  std::vector<std::unique_ptr<hpm::apps::LinpackResult>> results;
  for (int i = 0; i < 6; ++i) {
    results.push_back(std::make_unique<hpm::apps::LinpackResult>());
    auto* slot = results.back().get();
    live.submit([slot, i](hpm::MigContext& ctx) {
      hpm::apps::linpack_program(ctx, 160, static_cast<std::uint64_t>(i), slot);
    }, 0);
  }
  live.enable_auto_balance(0.002);
  live.start();
  const auto reports = live.wait_all();
  int moved = 0;
  bool all_ok = true;
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    all_ok = all_ok && reports[i].done && results[i]->ok();
    moved += reports[i].finished_on != 0 ? 1 : 0;
    bytes += reports[i].moved_bytes;
  }
  std::printf("\nlive cluster: 6 linpack jobs submitted to node 0 of 3; balancer moved %d "
              "off-node\n  (%llu bytes of process state shipped), all solutions %s\n",
              moved, static_cast<unsigned long long>(bytes), all_ok ? "PASS" : "FAIL");
  return result.ok() && r1.makespan < r0.makespan && all_ok ? 0 : 1;
}
