// heterogeneous_image: truly heterogeneous data transfer on one machine.
//
//   $ ./examples/heterogeneous_image [nodes]
//
// Builds a random pointer graph in native (e.g. x86-64 little-endian)
// memory, collects it, restores it into a byte-exact SPARCstation-20
// memory image (big-endian, ILP32 — the paper's destination machine),
// shows the byte-level layout difference, then collects it back OUT of
// the SPARC image and restores to native memory. The final graph must be
// fingerprint-identical to the original: every endianness, width, and
// alignment conversion round-tripped exactly.
#include <cstdio>

#include "apps/workload.hpp"
#include "hpm/hpm.hpp"

using namespace hpm;

int main(int argc, char** argv) {
  const std::uint32_t nodes = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;

  ti::TypeTable table;
  apps::workload_register_types(table);

  // --- source: native host memory ----------------------------------------
  mig::MigContext src(table);
  apps::RandNode*& root = src.global<apps::RandNode*>("root");
  apps::GraphShape shape;
  shape.nodes = nodes;
  auto all = apps::build_random_graph(src, /*seed=*/7, shape);
  root = all[0];
  const std::uint64_t fp_before = apps::graph_fingerprint(root);

  const obs::MetricsSnapshot before_collect = obs::Registry::process().snapshot();
  xdr::Encoder enc;
  msrm::Collector collect_host(src.space(), enc);
  collect_host.save_variable(reinterpret_cast<msr::Address>(&root));
  const Bytes stream1 = enc.take();
  const obs::MetricsSnapshot host_collect =
      obs::Registry::process().snapshot().delta_since(before_collect);
  std::printf("host -> wire : %zu bytes, %llu blocks, %llu shared refs\n", stream1.size(),
              static_cast<unsigned long long>(host_collect.counter("msrm.collect.blocks_saved")),
              static_cast<unsigned long long>(host_collect.counter("msrm.collect.refs_saved")));

  // --- restore into the SPARC 20 image (big-endian, ILP32) ----------------
  memimg::ImageSpace sparc(table, xdr::sparc20_solaris());
  xdr::Decoder dec1(stream1);
  msrm::Restorer into_sparc(sparc, dec1, xdr::native_arch());
  into_sparc.set_auto_bind(true);
  const msr::Address sparc_root_var = into_sparc.restore_variable();
  std::printf("wire -> sparc: image holds %llu bytes under %s layout\n",
              static_cast<unsigned long long>(sparc.bytes_in_use()),
              sparc.arch().name.c_str());

  // Show the conversion: the first node's `long tag` occupies 4 big-endian
  // bytes in the image versus 8 little-endian bytes natively.
  {
    const msr::MemoryBlock* rv = sparc.msrlt().find_id(sparc_root_var);
    const msr::Address first_node = sparc.read_pointer(rv->base);
    const msr::LogicalPointer lp = msr::resolve_pointer(sparc, first_node);
    const auto bytes = sparc.block_bytes(lp.block);
    std::printf("first node in the image (%zu bytes, struct rand_node as ILP32/BE):\n%s",
                bytes.size(), hexdump(bytes).c_str());
    std::printf("native long tag of the same node: %ld (sizeof(long)=%zu here)\n",
                all[0]->tag, sizeof(long));
  }

  // --- collect back out of the image ---------------------------------------
  xdr::Encoder enc2;
  msrm::Collector collect_sparc(sparc, enc2);
  const msr::MemoryBlock* sparc_root_block = sparc.msrlt().find_id(sparc_root_var);
  collect_sparc.save_variable(sparc_root_block->base);
  const Bytes stream2 = enc2.take();
  std::printf("sparc -> wire: %zu bytes (identical payload semantics)\n", stream2.size());

  // --- restore to a second native host -------------------------------------
  msr::HostSpace host2(table);
  xdr::Decoder dec2(stream2);
  msrm::Restorer into_host(host2, dec2, xdr::sparc20_solaris());
  into_host.set_auto_bind(true);
  const msr::Address root_var2 = into_host.restore_variable();
  const msr::MemoryBlock* rv2 = host2.msrlt().find_id(root_var2);
  const auto* root2 = reinterpret_cast<apps::RandNode* const*>(rv2->base);
  const std::uint64_t fp_after = apps::graph_fingerprint(*root2);

  std::printf("fingerprint before: %016llx\n", static_cast<unsigned long long>(fp_before));
  std::printf("fingerprint after : %016llx\n", static_cast<unsigned long long>(fp_after));
  std::printf("heterogeneous round trip: %s\n", fp_before == fp_after ? "PASS" : "FAIL");
  return fp_before == fp_after ? 0 : 1;
}
