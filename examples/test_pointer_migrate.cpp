// test_pointer_migrate: the paper's synthetic pointer-shape program —
// trees, interior pointers, shared targets, and the Figure 1 cycle —
// migrated at its poll-point, then structurally verified.
//
//   $ ./examples/test_pointer_migrate
//
// Also dumps the MSR graph of the source right before migration as
// Graphviz DOT (stdout), mirroring Figure 1(b) of the paper.
#include <cstdio>

#include "apps/test_pointer.hpp"
#include "hpm/hpm.hpp"

int main() {
  hpm::apps::TestPointerResult result;
  hpm::mig::RunOptions options;
  options.register_types = hpm::apps::test_pointer_register_types;
  options.program = [&result](hpm::mig::MigContext& ctx) {
    hpm::apps::test_pointer_program(ctx, /*seed=*/5, &result);
  };
  options.migrate_at_poll = 1;

  const hpm::mig::MigrationReport report = hpm::mig::run_migration(options);

  std::printf("test_pointer: migrated=%s, %llu blocks / %llu refs / %llu bytes\n",
              report.migrated ? "yes" : "no",
              static_cast<unsigned long long>(
                  report.metrics.counter("msrm.collect.blocks_saved")),
              static_cast<unsigned long long>(
                  report.metrics.counter("msrm.collect.refs_saved")),
              static_cast<unsigned long long>(report.stream_bytes));
  std::printf("  tree=%d scalar=%d array=%d ptr_array=%d dag=%d cycle=%d interior=%d\n",
              result.tree_ok, result.scalar_ptr_ok, result.array_ptr_ok,
              result.ptr_array_ok, result.dag_ok, result.cycle_ok, result.interior_ok);
  std::printf("  overall: %s\n", result.ok() ? "PASS" : "FAIL");

  // Reproduce the Figure 1(b) style rendering: snapshot the MSR graph at
  // the poll-point, while every structure is live.
  hpm::ti::TypeTable table;
  hpm::apps::test_pointer_register_types(table);
  hpm::mig::MigContext ctx(table);
  std::string dot;
  ctx.set_poll_observer([&dot](hpm::mig::MigContext& c) {
    if (dot.empty()) dot = hpm::msr::MsrGraph::snapshot(c.space()).to_dot();
  });
  hpm::apps::TestPointerResult scratch;
  hpm::apps::test_pointer_program(ctx, 5, &scratch);  // completes in place
  std::printf("\nMSR graph (Graphviz DOT) at the migration point, cf. Figure 1(b):\n%s\n",
              dot.c_str());
  return result.ok() && scratch.ok() ? 0 : 1;
}
