// Quickstart: migrate a small pointer-rich program between two "hosts"
// (threads) in one process, and watch what moved.
//
//   $ ./examples/quickstart
//
// Walks through the full API surface a user needs: type registration,
// the annotation macros, the migratable heap, a migration trigger, and
// the Collect/Tx/Restore report.
#include <cstdio>

#include "hpm/hpm.hpp"

namespace {

// 1. Describe your data types once (the paper's TI table). The same
//    registration runs on the source and the destination.
struct Point {
  double x;
  double y;
  Point* next;  // intrusive list
};

void register_types(hpm::ti::TypeTable& table) {
  hpm::ti::StructBuilder<Point> b(table, "point");
  HPM_TI_FIELD(b, Point, x);
  HPM_TI_FIELD(b, Point, y);
  HPM_TI_FIELD(b, Point, next);
  b.commit();
}

// 2. Write the program with the annotation macros: declare + register
//    live locals, wrap the body in HPM_BODY, and place poll-points where
//    migration is allowed to happen.
void walk_points(hpm::mig::MigContext& ctx, int n, double* result_sum) {
  HPM_FUNCTION(ctx);
  Point* head;
  Point* cursor;
  double sum;
  int i;
  HPM_LOCAL(ctx, head);
  HPM_LOCAL(ctx, cursor);
  HPM_LOCAL(ctx, sum);
  HPM_LOCAL(ctx, i);
  HPM_BODY(ctx);

  // Build a short cyclic list on the migratable heap.
  head = nullptr;
  for (i = 0; i < n; ++i) {
    Point* p = ctx.heap_alloc<Point>(1, "point");
    p->x = i;
    p->y = i * 0.5;
    p->next = head;
    head = p;
  }

  // Walk it; the poll-point makes every step a legal migration point.
  sum = 0;
  cursor = head;
  for (i = 0; i < n; ++i) {
    HPM_POLL(ctx, 1);
    sum += cursor->x + cursor->y;
    cursor = cursor->next;
  }
  *result_sum = sum;

  while (head != nullptr) {
    Point* dead = head;
    head = head->next;
    ctx.heap_free(dead);
  }
  HPM_BODY_END(ctx);
}

}  // namespace

int main() {
  // 3. Run with a migration triggered at the 50th poll (mid-walk).
  double sum = 0;
  hpm::mig::RunOptions options;
  options.register_types = register_types;
  options.program = [&sum](hpm::mig::MigContext& ctx) { walk_points(ctx, 100, &sum); };
  options.migrate_at_poll = 50;
  options.link = hpm::net::SimulatedLink::ethernet_100mbps();

  const hpm::mig::MigrationReport report = hpm::mig::run_migration(options);

  std::printf("quickstart: sum = %.1f (expect %.1f)\n", sum, 100 * 99 / 2 * 1.5);
  std::printf("migrated:   %s\n", report.migrated ? "yes" : "no");
  std::printf("stream:     %llu bytes, %llu blocks, %llu shared refs\n",
              static_cast<unsigned long long>(report.stream_bytes),
              static_cast<unsigned long long>(
                  report.metrics.counter("msrm.collect.blocks_saved")),
              static_cast<unsigned long long>(
                  report.metrics.counter("msrm.collect.refs_saved")));
  std::printf("collect:    %.6f s\n", report.collect_seconds);
  std::printf("tx (model): %.6f s on 100 Mb/s Ethernet\n", report.tx_seconds);
  std::printf("restore:    %.6f s\n", report.restore_seconds);
  return sum == 100 * 99 / 2 * 1.5 ? 0 : 1;
}
