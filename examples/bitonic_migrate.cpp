// bitonic_migrate: the paper's allocation-heavy workload — a binary tree
// of random integers sorted by a recursive bitonic network — migrated
// while the recursion is many frames deep.
//
//   $ ./examples/bitonic_migrate [log2_leaves] [migrate_at_poll]
//
// Demonstrates (1) migration from inside nested/recursive calls, and
// (2) the many-small-blocks MSR profile: thousands of heap nodes each
// become one MSR graph vertex.
#include <cstdio>
#include <cstdlib>

#include "apps/bitonic.hpp"
#include "hpm/hpm.hpp"

int main(int argc, char** argv) {
  const int log2_leaves = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::uint64_t at_poll =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : (1ull << log2_leaves);

  hpm::apps::BitonicResult result;
  hpm::mig::RunOptions options;
  options.register_types = hpm::apps::bitonic_register_types;
  options.program = [&result, log2_leaves](hpm::mig::MigContext& ctx) {
    hpm::apps::bitonic_program(ctx, log2_leaves, /*seed=*/2024, &result);
  };
  options.migrate_at_poll = at_poll;

  const hpm::mig::MigrationReport report = hpm::mig::run_migration(options);

  std::printf("bitonic sort of %u numbers: migrated=%s\n", 1u << log2_leaves,
              report.migrated ? "yes" : "no");
  std::printf("  MSR nodes moved : %llu blocks (+%llu shared refs), %llu bytes\n",
              static_cast<unsigned long long>(
                  report.metrics.counter("msrm.collect.blocks_saved")),
              static_cast<unsigned long long>(
                  report.metrics.counter("msrm.collect.refs_saved")),
              static_cast<unsigned long long>(report.stream_bytes));
  std::printf("  collect/tx/restore: %.4f / %.4f / %.4f s\n", report.collect_seconds,
              report.tx_seconds, report.restore_seconds);
  std::printf("  sorted=%s multiset-preserved=%s -> %s\n", result.sorted ? "yes" : "no",
              result.sum_before == result.sum_after ? "yes" : "no",
              result.ok() ? "PASS" : "FAIL");
  return result.ok() ? 0 : 1;
}
