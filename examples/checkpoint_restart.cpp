// checkpoint_restart: heterogeneous checkpointing with the migration
// stream — run a computation, checkpoint it mid-flight to a file,
// "crash", and restart from the file.
//
//   $ ./examples/checkpoint_restart [n] [checkpoint_at]
#include <cstdio>
#include <cstdlib>

#include "ckpt/checkpoint.hpp"
#include "hpm/hpm.hpp"

namespace {

struct Result {
  double pi_estimate = 0;
  int completed = 0;
};

/// Leibniz series for pi — a long-running loop with one poll per term.
void pi_program(hpm::mig::MigContext& ctx, int n, Result* out) {
  HPM_FUNCTION(ctx);
  int i;
  double acc;
  HPM_LOCAL(ctx, i);
  HPM_LOCAL(ctx, acc);
  HPM_LOCAL(ctx, n);
  HPM_BODY(ctx);
  acc = 0;
  for (i = 0; i < n; ++i) {
    HPM_POLL(ctx, 1);
    acc += (i % 2 == 0 ? 4.0 : -4.0) / (2.0 * i + 1.0);
  }
  out->pi_estimate = acc;
  out->completed += 1;
  HPM_BODY_END(ctx);
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 2000000;
  const std::uint64_t at = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                    : static_cast<std::uint64_t>(n) / 2;
  const std::string path = "/tmp/hpm_pi.ckpt";

  Result live;
  const hpm::ckpt::CheckpointInfo info = hpm::ckpt::checkpoint_run(
      [](hpm::ti::TypeTable&) {},
      [&live, n](hpm::mig::MigContext& ctx) { pi_program(ctx, n, &live); }, path, at);
  std::printf("checkpointed at term %llu into %s (%llu state bytes, arch %s)\n",
              static_cast<unsigned long long>(at), path.c_str(),
              static_cast<unsigned long long>(info.state_bytes), info.source_arch.c_str());
  std::printf("continued run finished: pi ~= %.9f\n", live.pi_estimate);

  // "Crash" and restart from the file in a brand-new context.
  Result revived;
  hpm::ckpt::restart_run([](hpm::ti::TypeTable&) {},
                         [&revived, n](hpm::mig::MigContext& ctx) {
                           pi_program(ctx, n, &revived);
                         },
                         path);
  std::printf("restarted run finished:  pi ~= %.9f\n", revived.pi_estimate);
  const bool match = revived.pi_estimate == live.pi_estimate;
  std::printf("bitwise identical results: %s\n", match ? "yes" : "NO");
  return match ? 0 : 1;
}
