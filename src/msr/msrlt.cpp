#include "msr/msrlt.hpp"

namespace hpm::msr {

Msrlt::Msrlt(SearchStrategy strategy)
    : strategy_(strategy),
      registrations_(obs::Registry::process().counter("msr.msrlt.registrations")),
      removals_(obs::Registry::process().counter("msr.msrlt.removals")),
      searches_(obs::Registry::process().counter("msr.msrlt.searches")),
      search_steps_(obs::Registry::process().counter("msr.msrlt.search_steps")),
      cache_hits_(obs::Registry::process().counter("msr.msrlt.cache_hits")),
      id_lookups_(obs::Registry::process().counter("msr.msrlt.id_lookups")),
      marks_(obs::Registry::process().counter("msr.msrlt.marks")),
      blocks_gauge_(obs::Registry::process().gauge("msr.msrlt.blocks")) {}

void Msrlt::insert_checked(MemoryBlock block) {
  if (block.size == 0) throw MsrError("cannot register zero-sized block");
  // Overlap check against the nearest neighbours in address order.
  auto next = by_addr_.lower_bound(block.base);
  if (next != by_addr_.end() && next->first < block.base + block.size) {
    throw MsrError("block [" + std::to_string(block.base) + ", +" +
                   std::to_string(block.size) + ") overlaps existing block '" +
                   next->second.name + "'");
  }
  if (next != by_addr_.begin()) {
    auto prev = std::prev(next);
    if (prev->second.base + prev->second.size > block.base) {
      throw MsrError("block [" + std::to_string(block.base) + ", +" +
                     std::to_string(block.size) + ") overlaps existing block '" +
                     prev->second.name + "'");
    }
  }
  if (!by_id_.emplace(block.id, block.base).second) {
    throw MsrError("duplicate block id " + std::to_string(block.id));
  }
  tracked_bytes_ += block.size;
  by_addr_.emplace(block.base, std::move(block));
  registrations_.add(1);
  blocks_gauge_.add(1);
}

BlockId Msrlt::register_block(Segment seg, Address base, std::uint64_t size, ti::TypeId type,
                              std::uint32_t count, std::string name) {
  const BlockId id = make_block_id(seg, next_seq_[static_cast<int>(seg)]++);
  MemoryBlock block;
  block.id = id;
  block.segment = seg;
  block.base = base;
  block.size = size;
  block.type = type;
  block.count = count;
  block.name = std::move(name);
  insert_checked(std::move(block));
  return id;
}

void Msrlt::register_with_id(BlockId id, Segment seg, Address base, std::uint64_t size,
                             ti::TypeId type, std::uint32_t count, std::string name) {
  if (id == kInvalidBlock) throw MsrError("register_with_id: invalid id");
  MemoryBlock block;
  block.id = id;
  block.segment = seg;
  block.base = base;
  block.size = size;
  block.type = type;
  block.count = count;
  block.name = std::move(name);
  insert_checked(std::move(block));
  // Keep locally assigned ids ahead of any adopted id so the two streams
  // of ids can never collide.
  const auto seg_idx = static_cast<int>(block_segment(id));
  if (seg_idx >= 0 && seg_idx < 3 && block_seq(id) >= next_seq_[seg_idx]) {
    next_seq_[seg_idx] = block_seq(id) + 1;
  }
}

void Msrlt::unregister(Address base) {
  auto it = by_addr_.find(base);
  if (it == by_addr_.end()) {
    throw MsrError("unregister: no block based at " + std::to_string(base));
  }
  by_id_.erase(it->second.id);
  tracked_bytes_ -= it->second.size;
  mru_ = nullptr;  // may point at the erased node
  by_addr_.erase(it);
  removals_.add(1);
  blocks_gauge_.sub(1);
}

const MemoryBlock* Msrlt::find_containing(Address addr) const {
  searches_.add(1);
  // One-entry MRU cache: consecutive pointer leaves usually land in the
  // block the previous search found, so this answers in one comparison.
  if (mru_ != nullptr && addr >= mru_->base && addr < mru_->base + mru_->size) {
    cache_hits_.add(1);
    search_steps_.add(1);
    return mru_;
  }
  if (strategy_ == SearchStrategy::LinearScan) {
    for (const auto& [base, block] : by_addr_) {
      search_steps_.add(1);
      if (addr >= base && addr < base + block.size) {
        mru_ = &block;
        return &block;
      }
    }
    return nullptr;
  }
  // OrderedMap: the candidate is the last block whose base <= addr.
  auto it = by_addr_.upper_bound(addr);
  // ~log2(n) comparisons; recorded so benches can confirm the O(n log n)
  // aggregate search term without a profiler.
  std::uint64_t n = by_addr_.size();
  std::uint64_t steps = 1;
  while (n > 1) {
    n >>= 1;
    ++steps;
  }
  search_steps_.add(steps);
  if (it == by_addr_.begin()) return nullptr;
  --it;
  const MemoryBlock& block = it->second;
  if (addr >= block.base + block.size) return nullptr;
  mru_ = &block;
  return &block;
}

const MemoryBlock* Msrlt::find_id(BlockId id) const {
  id_lookups_.add(1);
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return nullptr;
  const auto addr_it = by_addr_.find(it->second);
  return addr_it == by_addr_.end() ? nullptr : &addr_it->second;
}

bool Msrlt::try_mark(BlockId id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) throw MsrError("try_mark: unknown block id");
  auto addr_it = by_addr_.find(it->second);
  if (addr_it == by_addr_.end()) throw MsrError("try_mark: id table out of sync");
  marks_.add(1);
  if (addr_it->second.visit_epoch == epoch_) return false;
  addr_it->second.visit_epoch = epoch_;
  return true;
}

}  // namespace hpm::msr
