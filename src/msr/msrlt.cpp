#include "msr/msrlt.hpp"

namespace hpm::msr {

Msrlt::Msrlt(SearchStrategy strategy)
    : strategy_(strategy),
      index_(make_address_index(strategy)),
      registrations_(obs::Registry::process().counter("msr.msrlt.registrations")),
      removals_(obs::Registry::process().counter("msr.msrlt.removals")),
      searches_(obs::Registry::process().counter("msr.msrlt.searches")),
      search_steps_(obs::Registry::process().counter("msr.msrlt.search_steps")),
      cache_hits_(obs::Registry::process().counter("msr.msrlt.cache_hits")),
      id_lookups_(obs::Registry::process().counter("msr.msrlt.id_lookups")),
      marks_(obs::Registry::process().counter("msr.msrlt.marks")),
      blocks_gauge_(obs::Registry::process().gauge("msr.msrlt.blocks")) {}

MemoryBlock* Msrlt::insert_checked(MemoryBlock block) {
  const auto id_it = by_id_.find(block.id);
  if (id_it != by_id_.end()) {
    throw MsrError("duplicate block id " + std::to_string(block.id));
  }
  const std::uint64_t size = block.size;
  MemoryBlock* stored = index_->insert(std::move(block));  // throws on overlap
  by_id_.emplace(stored->id, stored);
  tracked_bytes_ += size;
  registrations_.add(1);
  blocks_gauge_.add(1);
  return stored;
}

BlockId Msrlt::register_block(Segment seg, Address base, std::uint64_t size, ti::TypeId type,
                              std::uint32_t count, std::string name) {
  const BlockId id = make_block_id(seg, next_seq_[static_cast<int>(seg)]++);
  MemoryBlock block;
  block.id = id;
  block.segment = seg;
  block.base = base;
  block.size = size;
  block.type = type;
  block.count = count;
  block.name = std::move(name);
  insert_checked(std::move(block));
  return id;
}

void Msrlt::register_with_id(BlockId id, Segment seg, Address base, std::uint64_t size,
                             ti::TypeId type, std::uint32_t count, std::string name) {
  if (id == kInvalidBlock) throw MsrError("register_with_id: invalid id");
  MemoryBlock block;
  block.id = id;
  block.segment = seg;
  block.base = base;
  block.size = size;
  block.type = type;
  block.count = count;
  block.name = std::move(name);
  insert_checked(std::move(block));
  // Keep locally assigned ids ahead of any adopted id so the two streams
  // of ids can never collide.
  const auto seg_idx = static_cast<int>(block_segment(id));
  if (seg_idx >= 0 && seg_idx < 3 && block_seq(id) >= next_seq_[seg_idx]) {
    next_seq_[seg_idx] = block_seq(id) + 1;
  }
}

void Msrlt::unregister(Address base) {
  MemoryBlock* block = index_->find_base(base);
  if (block == nullptr) {
    throw MsrError("unregister: no block based at " + std::to_string(base));
  }
  by_id_.erase(block->id);
  tracked_bytes_ -= block->size;
  ++cache_epoch_;  // some cached entry may point at the erased block
  index_->erase(base);
  removals_.add(1);
  blocks_gauge_.sub(1);
}

const MemoryBlock* Msrlt::find_containing(Address addr) const {
  searches_.add(1);
  // Set-associative cache: consecutive pointer leaves usually land in a
  // recently found block, so most searches answer in a few comparisons
  // against one cache set.
  CacheEntry* set = cache_.data() + cache_set(addr) * kCacheWays;
  for (std::size_t way = 0; way < kCacheWays; ++way) {
    const CacheEntry& e = set[way];
    if (e.epoch == cache_epoch_ && addr - e.block->base < e.block->size) {
      cache_hits_.add(1);
      search_steps_.add(1);
      return e.block;
    }
  }
  std::uint64_t steps = 0;
  const MemoryBlock* block = index_->find_containing(addr, steps);
  search_steps_.add(steps);
  if (block != nullptr) {
    std::uint8_t& cursor = cache_cursor_[static_cast<std::size_t>(set - cache_.data()) / kCacheWays];
    set[cursor] = CacheEntry{cache_epoch_, block};
    cursor = static_cast<std::uint8_t>((cursor + 1) % kCacheWays);
  }
  return block;
}

const MemoryBlock* Msrlt::find_id(BlockId id) const {
  id_lookups_.add(1);
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

bool Msrlt::try_mark(BlockId id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) throw MsrError("try_mark: unknown block id");
  marks_.add(1);
  if (it->second->visit_epoch == epoch_) return false;
  it->second->visit_epoch = epoch_;
  return true;
}

}  // namespace hpm::msr
