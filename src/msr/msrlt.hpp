// The MSR Lookup Table (MSRLT).
//
// Created in the process memory space at runtime to keep track of memory
// blocks, provide machine-independent identification, and support the
// address searches of data collection. It is the mapping table that
// translates between machine-specific addresses and machine-independent
// (block id, offset) pairs.
//
// Complexity contract (paper §4.2): with n tracked blocks, one address
// search costs O(log n) (ordered-map and flat-array strategies), so
// collecting n blocks costs O(n log n) in search time; restoration never
// searches — migrated blocks arrive with their logical id attached — so
// MSRLT updates during restore are O(1) amortized each, O(n) total.
// Statistics counters expose both terms so benchmarks can validate the
// model directly.
//
// Storage and search are delegated to an AddressIndex
// (msr/address_index.hpp) selected by SearchStrategy; the MSRLT itself
// owns the id table, the visit-epoch marking, the statistics counters,
// and a small set-associative lookup cache consulted before any strategy.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/error.hpp"
#include "msr/address_index.hpp"
#include "msr/block.hpp"
#include "obs/metrics.hpp"

namespace hpm::msr {

class Msrlt {
 public:
  explicit Msrlt(SearchStrategy strategy = SearchStrategy::OrderedMap);

  Msrlt(const Msrlt&) = delete;
  Msrlt& operator=(const Msrlt&) = delete;

  /// Track a new block with a freshly assigned id. Throws hpm::MsrError if
  /// the byte range overlaps an existing block or size is zero.
  BlockId register_block(Segment seg, Address base, std::uint64_t size, ti::TypeId type,
                         std::uint32_t count, std::string name = {});

  /// Track a new block under an externally chosen id (restoration binds
  /// the *source's* id to destination storage). Throws on id collision or
  /// range overlap.
  void register_with_id(BlockId id, Segment seg, Address base, std::uint64_t size,
                        ti::TypeId type, std::uint32_t count, std::string name = {});

  /// Stop tracking the block based at `base` (e.g. scope exit, free()).
  /// Throws hpm::MsrError if no block starts there.
  void unregister(Address base);

  /// Find the block containing `addr` (base <= addr < base + size).
  /// Returns nullptr for untracked addresses. Counts a search.
  ///
  /// Pointer collection has strong block locality (consecutive leaves of
  /// one block resolve into the same few blocks), so a small
  /// set-associative cache of recent containing blocks is consulted
  /// before the strategy's search; hits count one search step under
  /// `msr.msrlt.cache_hits`.
  const MemoryBlock* find_containing(Address addr) const;

  /// Find a block by logical id; nullptr if unknown.
  const MemoryBlock* find_id(BlockId id) const;

  /// Begin a new depth-first traversal: invalidates all previous marks in
  /// O(1) by bumping the epoch.
  void begin_traversal() noexcept { ++epoch_; }

  /// Mark the block visited in the current traversal; returns true the
  /// first time, false if already visited (the paper's duplicate guard).
  bool try_mark(BlockId id);

  [[nodiscard]] std::size_t block_count() const noexcept { return index_->size(); }

  /// Sum of the byte sizes of all tracked blocks. Collection pre-sizes
  /// its encoder from this total, so large heaps stream without
  /// reallocation churn.
  [[nodiscard]] std::uint64_t tracked_bytes() const noexcept { return tracked_bytes_; }

  [[nodiscard]] SearchStrategy strategy() const noexcept { return strategy_; }

  /// Immutable snapshot of the current block set for concurrent readers
  /// (parallel collection). Blocks stay pointer-stable while the snapshot
  /// is in use as long as no block is unregistered.
  [[nodiscard]] FrozenIndex freeze() const { return index_->freeze(); }

  /// Visit every tracked block in ascending base order (graph building,
  /// leak checks).
  template <typename Fn>
  void for_each_block(Fn&& fn) const {
    index_->for_each([&fn](const MemoryBlock& block) { fn(block); });
  }

 private:
  MemoryBlock* insert_checked(MemoryBlock block);

  SearchStrategy strategy_;
  std::unique_ptr<AddressIndex> index_;
  std::unordered_map<BlockId, MemoryBlock*> by_id_;
  std::uint64_t next_seq_[3] = {1, 1, 1};  // per segment
  std::uint64_t epoch_ = 1;
  std::uint64_t tracked_bytes_ = 0;

  // Set-associative lookup cache for find_containing (the widened
  // successor of the seed's one-entry MRU). Entries hold positive results
  // only; unregistering any block invalidates the whole cache in O(1) by
  // bumping the cache epoch (block pointers are stable across inserts,
  // so inserts need no invalidation).
  static constexpr std::size_t kCacheWays = 4;
  static constexpr std::size_t kCacheSets = 64;
  struct CacheEntry {
    std::uint64_t epoch = 0;
    const MemoryBlock* block = nullptr;
  };
  static std::size_t cache_set(Address addr) noexcept {
    // 64-byte granules; fold high bits in so strided probes spread out.
    std::uint64_t g = addr >> 6;
    g ^= g >> 12;
    return static_cast<std::size_t>(g) & (kCacheSets - 1);
  }
  mutable std::array<CacheEntry, kCacheSets * kCacheWays> cache_{};
  mutable std::array<std::uint8_t, kCacheSets> cache_cursor_{};  // round-robin fill
  mutable std::uint64_t cache_epoch_ = 1;

  // `msr.msrlt.*` instruments (process-wide registry).
  obs::Counter& registrations_;
  obs::Counter& removals_;
  obs::Counter& searches_;
  obs::Counter& search_steps_;
  obs::Counter& cache_hits_;
  obs::Counter& id_lookups_;
  obs::Counter& marks_;
  obs::Gauge& blocks_gauge_;  ///< `msr.msrlt.blocks`, process-wide level
};

}  // namespace hpm::msr
