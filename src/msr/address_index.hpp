// AddressIndex: the MSRLT's address→block lookup behind a small seam.
//
// The MSRLT's collection-side cost is the address search (paper §4.2: the
// O(log n) term of data collection). This interface isolates the search
// structure so strategies can be swapped and benchmarked without touching
// the engines: Collector/Restorer/ckpt reach blocks only through Msrlt,
// and Msrlt reaches storage only through an AddressIndex.
//
// Implementations:
//  * OrderedMap / LinearScan — the reference `std::map` structure (and its
//    deliberately degraded linear ablation), exactly the seed behavior.
//  * FlatArray — a flat sorted interval array searched with a branchless
//    binary search. Inserts append to a small unsorted pending run and are
//    merged amortized; erases tombstone in place and are compacted
//    amortized, so mass registration (restore) and mass free (teardown)
//    both stay O(n log n) total while searches touch one contiguous array.
//
// All implementations guarantee:
//  * MemoryBlock storage is pointer-stable until the block is erased
//    (engines hold MemoryBlock* across subsequent inserts).
//  * for_each visits blocks in ascending base-address order.
//  * insert rejects zero-sized blocks and byte-range overlaps with
//    hpm::MsrError.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "msr/block.hpp"

namespace hpm::msr {

/// Search-strategy ablation knob (bench/ablation_msrlt): the paper's
/// design implies an ordered structure; LinearScan shows what the
/// collection term degrades to without one; FlatArray is the
/// hardware-bound replacement (flat sorted interval array, branchless
/// binary search).
enum class SearchStrategy : std::uint8_t { OrderedMap, LinearScan, FlatArray };

const char* search_strategy_name(SearchStrategy s) noexcept;

/// Immutable snapshot of an AddressIndex: a dense, sorted interval array
/// safe for concurrent lookups from many threads (parallel collection).
/// Every block gets a dense *slot* in [0, size()) in base-address order —
/// the natural key for visited/ownership bitmaps.
class FrozenIndex {
 public:
  struct Entry {
    Address base = 0;
    std::uint64_t size = 0;
    const MemoryBlock* block = nullptr;
  };

  FrozenIndex() = default;
  /// `entries` must be sorted by base and non-overlapping.
  explicit FrozenIndex(std::vector<Entry> entries);

  /// Containing-block search (branchless binary search); adds the number
  /// of probe steps to `steps`. nullptr for untracked addresses.
  const MemoryBlock* find_containing(Address addr, std::uint64_t& steps) const noexcept;

  /// Block by logical id; nullptr if unknown.
  const MemoryBlock* find_id(BlockId id) const noexcept;

  /// Dense slot of a block id (base-address order). Returns size() if the
  /// id is unknown.
  std::uint32_t slot_of(BlockId id) const noexcept;

  const MemoryBlock* block_at(std::uint32_t slot) const noexcept {
    return entries_[slot].block;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::vector<Entry> entries_;  // sorted by base
  std::unordered_map<BlockId, std::uint32_t> slots_;
};

class AddressIndex {
 public:
  virtual ~AddressIndex() = default;

  /// Store a block; returns its stable home. Throws hpm::MsrError on a
  /// zero size or byte-range overlap with a live block (duplicate-id
  /// checks are the caller's business — Msrlt owns the id table).
  virtual MemoryBlock* insert(MemoryBlock block) = 0;

  /// Remove the block based exactly at `base`; throws hpm::MsrError if no
  /// live block starts there.
  virtual void erase(Address base) = 0;

  /// Block based exactly at `base`; nullptr if none. Not step-counted
  /// (it serves registration bookkeeping, not collection searches).
  virtual MemoryBlock* find_base(Address base) noexcept = 0;

  /// Containing-block search (base <= addr < base + size); adds the
  /// comparisons performed to `steps`. nullptr for untracked addresses.
  virtual const MemoryBlock* find_containing(Address addr,
                                             std::uint64_t& steps) const noexcept = 0;

  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Visit every live block in ascending base order.
  virtual void for_each(const std::function<void(const MemoryBlock&)>& fn) const = 0;

  /// Compact into an immutable snapshot for concurrent readers.
  virtual FrozenIndex freeze() const = 0;
};

/// Factory for the strategy knob.
std::unique_ptr<AddressIndex> make_address_index(SearchStrategy strategy);

}  // namespace hpm::msr
