// HostSpace: the real memory of this process as a MemorySpace.
//
// Addresses are uintptr_t values of live objects; reads and writes go
// straight to memory using the native architecture descriptor (which
// mirrors the compiler's own layout, validated at registration time by
// ti::StructBuilder::commit).
#pragma once

#include <memory>
#include <unordered_set>

#include "msr/space.hpp"

namespace hpm::msr {

class HostSpace final : public MemorySpace {
 public:
  explicit HostSpace(const ti::TypeTable& types,
                     SearchStrategy strategy = SearchStrategy::OrderedMap)
      : types_(&types),
        layouts_(types, xdr::native_arch()),
        leaves_(types),
        msrlt_(strategy) {}

  ~HostSpace() override;

  HostSpace(const HostSpace&) = delete;
  HostSpace& operator=(const HostSpace&) = delete;

  const xdr::ArchDescriptor& arch() const noexcept override { return xdr::native_arch(); }
  const ti::TypeTable& types() const noexcept override { return *types_; }
  const ti::LayoutMap& layouts() const noexcept override { return layouts_; }
  const ti::LeafIndex& leaves() const noexcept override { return leaves_; }
  Msrlt& msrlt() noexcept override { return msrlt_; }
  const Msrlt& msrlt() const noexcept override { return msrlt_; }

  xdr::PrimValue read_prim(Address addr, xdr::PrimKind k) const override;
  void write_prim(Address addr, xdr::PrimKind k, const xdr::PrimValue& v) override;
  Address read_pointer(Address addr) const override;
  void write_pointer(Address addr, Address value) override;

  /// Host memory is already contiguous raw storage in native layout.
  const std::uint8_t* raw_view(Address addr, std::uint64_t) const noexcept override {
    return reinterpret_cast<const std::uint8_t*>(addr);
  }
  std::uint8_t* raw_mut(Address addr, std::uint64_t) noexcept override {
    return reinterpret_cast<std::uint8_t*>(addr);
  }

  Address allocate(std::uint64_t size) override;

  /// Track an existing host object. Returns its new block id.
  template <typename T>
  BlockId track(Segment seg, T& obj, std::string name, ti::TypeId type,
                std::uint32_t count = 1) {
    return msrlt_.register_block(seg, reinterpret_cast<Address>(&obj),
                                 block_size(type, count), type, count, std::move(name));
  }

  /// Track raw storage (mig heap, arrays).
  BlockId track_raw(Segment seg, void* base, ti::TypeId type, std::uint32_t count,
                    std::string name) {
    return msrlt_.register_block(seg, reinterpret_cast<Address>(base),
                                 block_size(type, count), type, count, std::move(name));
  }

  /// Hand ownership of storage obtained via allocate() to the caller
  /// (e.g. the migratable heap adopting a restored block). The pointer
  /// must later be released with HostSpace::free_raw.
  void release_ownership(Address base);

  /// Free storage previously obtained from allocate().
  static void free_raw(void* p) { ::operator delete(p, std::align_val_t{16}); }

  /// Transfer ownership of every allocation at once (the migratable heap
  /// adopting all restored blocks) — O(1), unlike per-block release.
  std::unordered_set<void*> take_all_owned() noexcept { return std::move(owned_); }

  /// Number of allocations still owned by the space (leak checking).
  [[nodiscard]] std::size_t owned_allocations() const noexcept { return owned_.size(); }

 private:
  const ti::TypeTable* types_;
  ti::LayoutMap layouts_;
  ti::LeafIndex leaves_;
  Msrlt msrlt_;
  std::unordered_set<void*> owned_;
};

}  // namespace hpm::msr
