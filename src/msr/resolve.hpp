// Address <-> (block id, leaf ordinal) translation.
//
// This is the machine-independent pointer format of the paper: the
// "pointer header" is the logical block id from the MSRLT and the offset
// is the ordering number of the data element the pointer refers to.
#pragma once

#include "common/error.hpp"
#include "msr/space.hpp"

namespace hpm::msr {

/// Machine-independent pointer value.
struct LogicalPointer {
  BlockId block = kInvalidBlock;  ///< pointer header
  std::uint64_t leaf = 0;         ///< element ordinal inside the block
};

/// Translate a space address to its logical form. The address must fall
/// exactly on a data element of a tracked block; pointers into untracked
/// memory or into padding are hard errors (the MSR model has no meaning
/// for them).
inline LogicalPointer resolve_pointer(const MemorySpace& space, Address addr) {
  const MemoryBlock* block = space.msrlt().find_containing(addr);
  if (block == nullptr) {
    throw MsrError("pointer " + std::to_string(addr) +
                   " does not refer to any tracked memory block");
  }
  const std::uint64_t elem_size = space.layouts().of(block->type).size;
  const std::uint64_t byte_off = addr - block->base;
  const std::uint64_t elem_idx = byte_off / elem_size;
  const std::uint64_t per_elem = space.leaves().count(block->type);
  const std::uint64_t inner =
      ti::ordinal_of(space.leaves(), space.layouts(), block->type, byte_off - elem_idx * elem_size);
  return LogicalPointer{block->id, elem_idx * per_elem + inner};
}

/// Translate a logical pointer back to a space address (plus the leaf's
/// shape, which restoration uses for validation).
inline Address address_of(const MemorySpace& space, const LogicalPointer& lp) {
  const MemoryBlock* block = space.msrlt().find_id(lp.block);
  if (block == nullptr) {
    throw MsrError("logical pointer refers to unknown block id " + std::to_string(lp.block));
  }
  const std::uint64_t per_elem = space.leaves().count(block->type);
  const std::uint64_t elem_idx = lp.leaf / per_elem;
  if (elem_idx >= block->count) {
    throw MsrError("logical pointer leaf ordinal beyond end of block '" + block->name + "'");
  }
  const ti::LeafRef ref =
      ti::leaf_at(space.leaves(), space.layouts(), block->type, lp.leaf % per_elem);
  const std::uint64_t elem_size = space.layouts().of(block->type).size;
  return block->base + elem_idx * elem_size + ref.byte_offset;
}

}  // namespace hpm::msr
