// Memory blocks — the vertices of the MSR graph.
//
// A memory block is one contiguous, typed region the process can point
// into: a global variable, a stack local, or one heap allocation. Each
// block carries a machine-independent identification (BlockId) so a
// pointer can be transferred as (block id, element ordinal) rather than a
// raw address.
#pragma once

#include <cstdint>
#include <string>

#include "ti/type.hpp"

namespace hpm::msr {

/// Where the block lives in the program memory space; part of the block's
/// logical identity and useful for diagnostics and graph rendering.
enum class Segment : std::uint8_t { Global = 0, Stack = 1, Heap = 2 };

inline const char* segment_name(Segment s) noexcept {
  switch (s) {
    case Segment::Global: return "global";
    case Segment::Stack: return "stack";
    case Segment::Heap: return "heap";
  }
  return "?";
}

/// Machine-independent block identification: segment tag in the top byte,
/// a per-space sequence number below. Sequence numbers are never reused,
/// so a stale id can be detected instead of silently re-resolving.
using BlockId = std::uint64_t;
inline constexpr BlockId kInvalidBlock = 0;

constexpr BlockId make_block_id(Segment seg, std::uint64_t seq) noexcept {
  return (static_cast<std::uint64_t>(seg) << 56) | (seq & 0x00FFFFFFFFFFFFFFull);
}
constexpr Segment block_segment(BlockId id) noexcept {
  return static_cast<Segment>((id >> 56) & 0xFFu);
}
constexpr std::uint64_t block_seq(BlockId id) noexcept {
  return id & 0x00FFFFFFFFFFFFFFull;
}

/// Address within a memory space: a real host address (HostSpace) or an
/// arena offset (memimg::ImageSpace). 0 is the null pointer in any space.
using Address = std::uint64_t;

/// One tracked memory block.
struct MemoryBlock {
  BlockId id = kInvalidBlock;
  Segment segment = Segment::Heap;
  Address base = 0;          ///< first byte, in the owning space's addressing
  std::uint64_t size = 0;    ///< total bytes under the owning space's layout
  ti::TypeId type = ti::kInvalidType;  ///< element type
  std::uint32_t count = 1;   ///< number of elements ("array-of-type" block)
  std::string name;          ///< associated variable name, if any (debugging)
  std::uint64_t visit_epoch = 0;  ///< DFS mark (see Msrlt::begin_traversal)
};

}  // namespace hpm::msr
