#include "msr/graph.hpp"

#include <map>

#include "msr/resolve.hpp"

namespace hpm::msr {

MsrGraph MsrGraph::snapshot(const MemorySpace& space) {
  MsrGraph g;
  const ti::LeafIndex& leaves = space.leaves();
  const ti::LayoutMap& layouts = space.layouts();

  space.msrlt().for_each_block([&](const MemoryBlock& block) {
    GraphNode node;
    node.id = block.id;
    node.segment = block.segment;
    node.name = block.name;
    node.type = space.types().spell(block.type);
    node.count = block.count;
    node.size = block.size;
    g.nodes_.push_back(std::move(node));

    if (!space.types().contains_pointer(block.type)) return;
    const std::uint64_t elem_size = layouts.of(block.type).size;
    const std::uint64_t per_elem = leaves.count(block.type);
    for (std::uint32_t e = 0; e < block.count; ++e) {
      std::uint64_t ordinal_base = e * per_elem;
      std::uint64_t seen = 0;
      ti::for_each_leaf(leaves, layouts, block.type, [&](const ti::LeafRef& ref) {
        const std::uint64_t ordinal = ordinal_base + seen;
        ++seen;
        if (!ref.is_pointer) return;
        const Address cell = block.base + e * elem_size + ref.byte_offset;
        const Address value = space.read_pointer(cell);
        if (value == 0) return;
        const LogicalPointer lp = resolve_pointer(space, value);
        g.edges_.push_back(GraphEdge{block.id, ordinal, lp.block, lp.leaf});
      });
    }
  });
  return g;
}

std::set<BlockId> MsrGraph::reachable_from(const std::vector<BlockId>& roots) const {
  std::multimap<BlockId, BlockId> adj;
  for (const GraphEdge& e : edges_) adj.emplace(e.from, e.to);
  std::set<BlockId> seen;
  std::vector<BlockId> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    const BlockId id = stack.back();
    stack.pop_back();
    if (!seen.insert(id).second) continue;
    auto [lo, hi] = adj.equal_range(id);
    for (auto it = lo; it != hi; ++it) stack.push_back(it->second);
  }
  return seen;
}

std::string MsrGraph::to_dot() const {
  std::string out = "digraph msr {\n  rankdir=LR;\n  node [shape=record];\n";
  const char* cluster_names[3] = {"Global Data Segment", "Stack Data Segment",
                                  "Heap Data Segment"};
  for (int seg = 0; seg < 3; ++seg) {
    out += "  subgraph cluster_" + std::to_string(seg) + " {\n    label=\"" +
           cluster_names[seg] + "\";\n";
    for (const GraphNode& n : nodes_) {
      if (static_cast<int>(n.segment) != seg) continue;
      out += "    b" + std::to_string(n.id) + " [label=\"" +
             (n.name.empty() ? ("#" + std::to_string(block_seq(n.id))) : n.name) + "\\n" +
             n.type + (n.count > 1 ? "[" + std::to_string(n.count) + "]" : "") + "\"];\n";
    }
    out += "  }\n";
  }
  for (const GraphEdge& e : edges_) {
    out += "  b" + std::to_string(e.from) + " -> b" + std::to_string(e.to) + " [label=\"" +
           std::to_string(e.from_leaf) + "->" + std::to_string(e.to_leaf) + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace hpm::msr
