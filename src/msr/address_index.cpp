#include "msr/address_index.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "common/error.hpp"

namespace hpm::msr {

namespace {

[[noreturn]] void throw_overlap(const MemoryBlock& incoming, const MemoryBlock& existing) {
  throw MsrError("block [" + std::to_string(incoming.base) + ", +" +
                 std::to_string(incoming.size) + ") overlaps existing block '" +
                 existing.name + "'");
}

void check_size(const MemoryBlock& block) {
  if (block.size == 0) throw MsrError("cannot register zero-sized block");
}

/// The seed's reference structure: a std::map keyed by base address.
/// Doubles as the LinearScan ablation (same storage, degraded search).
class MapIndex final : public AddressIndex {
 public:
  explicit MapIndex(bool linear_scan) : linear_scan_(linear_scan) {}

  MemoryBlock* insert(MemoryBlock block) override {
    check_size(block);
    auto next = by_addr_.lower_bound(block.base);
    if (next != by_addr_.end() && next->first < block.base + block.size) {
      throw_overlap(block, next->second);
    }
    if (next != by_addr_.begin()) {
      auto prev = std::prev(next);
      if (prev->second.base + prev->second.size > block.base) {
        throw_overlap(block, prev->second);
      }
    }
    const Address base = block.base;
    return &by_addr_.emplace_hint(next, base, std::move(block))->second;
  }

  void erase(Address base) override {
    auto it = by_addr_.find(base);
    if (it == by_addr_.end()) {
      throw MsrError("unregister: no block based at " + std::to_string(base));
    }
    by_addr_.erase(it);
  }

  MemoryBlock* find_base(Address base) noexcept override {
    auto it = by_addr_.find(base);
    return it == by_addr_.end() ? nullptr : &it->second;
  }

  const MemoryBlock* find_containing(Address addr, std::uint64_t& steps) const noexcept override {
    if (linear_scan_) {
      for (const auto& [base, block] : by_addr_) {
        ++steps;
        if (addr >= base && addr < base + block.size) return &block;
      }
      return nullptr;
    }
    // OrderedMap: the candidate is the last block whose base <= addr.
    auto it = by_addr_.upper_bound(addr);
    // ~log2(n) comparisons; recorded so benches can confirm the
    // O(n log n) aggregate search term without a profiler.
    std::uint64_t n = by_addr_.size();
    std::uint64_t s = 1;
    while (n > 1) {
      n >>= 1;
      ++s;
    }
    steps += s;
    if (it == by_addr_.begin()) return nullptr;
    --it;
    const MemoryBlock& block = it->second;
    if (addr >= block.base + block.size) return nullptr;
    return &block;
  }

  [[nodiscard]] std::size_t size() const noexcept override { return by_addr_.size(); }

  void for_each(const std::function<void(const MemoryBlock&)>& fn) const override {
    for (const auto& [base, block] : by_addr_) fn(block);
  }

  FrozenIndex freeze() const override {
    std::vector<FrozenIndex::Entry> entries;
    entries.reserve(by_addr_.size());
    for (const auto& [base, block] : by_addr_) {
      entries.push_back({base, block.size, &block});
    }
    return FrozenIndex(std::move(entries));
  }

 private:
  bool linear_scan_;
  std::map<Address, MemoryBlock> by_addr_;
};

/// Flat sorted interval array with a branchless binary search.
///
/// Mutation model: inserts append to a small unsorted `pending_` run;
/// erases of merged entries tombstone in place (entry.block = nullptr)
/// after deleting the block. Searches linear-scan the pending run (kept
/// small) and binary-search the merged array; `settle()` sorts and folds
/// the pending run in — and drops tombstones — whenever it outgrows an
/// adaptive threshold, so bulk registration phases (restore) pay O(1)
/// amortized per insert and search phases (collect) see one contiguous
/// sorted array.
///
/// Tombstone correctness: entries of `main_` were all live simultaneously
/// at the last settle, hence pairwise disjoint. If the binary search's
/// candidate (last base <= addr) is a tombstone, every earlier entry ends
/// at or before the tombstone's base <= addr, so no earlier entry can
/// contain addr either — a dead candidate means "not in main_".
class FlatIndex final : public AddressIndex {
 public:
  FlatIndex() = default;

  ~FlatIndex() override {
    for (const Slot& s : main_) delete s.block;
    for (const Slot& s : pending_) delete s.block;
  }

  FlatIndex(const FlatIndex&) = delete;
  FlatIndex& operator=(const FlatIndex&) = delete;

  MemoryBlock* insert(MemoryBlock block) override {
    check_size(block);
    check_overlap(block);
    MemoryBlock* stored = new MemoryBlock(std::move(block));
    pending_.push_back({stored->base, stored->size, stored});
    ++live_;
    if (pending_.size() > pending_limit()) settle();
    return stored;
  }

  void erase(Address base) override {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].base == base && pending_[i].block != nullptr) {
        delete pending_[i].block;
        pending_[i] = pending_.back();
        pending_.pop_back();
        --live_;
        return;
      }
    }
    Slot* slot = lower_slot(base);
    if (slot != nullptr && slot->base == base && slot->block != nullptr) {
      delete slot->block;
      slot->block = nullptr;  // tombstone
      ++dead_;
      --live_;
      if (dead_ > 64 && dead_ * 4 > main_.size()) settle();
      return;
    }
    throw MsrError("unregister: no block based at " + std::to_string(base));
  }

  MemoryBlock* find_base(Address base) noexcept override {
    for (const Slot& s : pending_) {
      if (s.base == base) return s.block;
    }
    Slot* slot = lower_slot(base);
    if (slot != nullptr && slot->base == base) return slot->block;
    return nullptr;
  }

  const MemoryBlock* find_containing(Address addr, std::uint64_t& steps) const noexcept override {
    // A search-heavy phase should not keep paying the pending scan: fold
    // a grown run in first (collection never inserts, so this settles at
    // most once per registration burst).
    if (pending_.size() > 16) settle();
    for (const Slot& s : pending_) {
      ++steps;
      if (addr - s.base < s.size) return s.block;
    }
    const Slot* slot = lower_slot(addr, &steps);
    ++steps;  // the candidate's containment check
    if (slot == nullptr || slot->block == nullptr) return nullptr;
    return addr - slot->base < slot->size ? slot->block : nullptr;
  }

  [[nodiscard]] std::size_t size() const noexcept override { return live_; }

  void for_each(const std::function<void(const MemoryBlock&)>& fn) const override {
    settle();
    for (const Slot& s : main_) {
      if (s.block != nullptr) fn(*s.block);
    }
  }

  FrozenIndex freeze() const override {
    settle();
    std::vector<FrozenIndex::Entry> entries;
    entries.reserve(live_);
    for (const Slot& s : main_) {
      if (s.block != nullptr) entries.push_back({s.base, s.size, s.block});
    }
    return FrozenIndex(std::move(entries));
  }

 private:
  struct Slot {
    Address base = 0;
    std::uint64_t size = 0;
    MemoryBlock* block = nullptr;  // nullptr = tombstone (main_ only)
  };

  /// Pending run cap: constant for the interleaved case, proportional for
  /// bulk registration so settles stay geometric (O(log n) amortized per
  /// insert instead of O(n) per fixed-size batch).
  [[nodiscard]] std::size_t pending_limit() const noexcept {
    return 64 + main_.size() / 8;
  }

  /// Last main_ slot (live or dead) with slot.base <= key; nullptr if none.
  /// The loop body compiles to a conditional move — no branch mispredicts
  /// on random probe sequences.
  Slot* lower_slot(Address key, std::uint64_t* steps = nullptr) const noexcept {
    const std::size_t n = main_.size();
    if (n == 0) return nullptr;
    const Slot* lo = main_.data();
    std::size_t len = n;
    std::uint64_t s = 0;
    while (len > 1) {
      const std::size_t half = len >> 1;
      lo += (lo[half - 1].base <= key) ? half : 0;
      len -= half;
      ++s;
    }
    if (steps != nullptr) *steps += s;
    // `lo` converged on the first slot with base > key (or the last slot
    // when every base <= key); step back over the boundary.
    if (lo->base <= key) {
      // last slot — or the candidate itself.
    } else if (lo == main_.data()) {
      return nullptr;
    } else {
      --lo;
    }
    return const_cast<Slot*>(lo);
  }

  void check_overlap(const MemoryBlock& block) const {
    for (const Slot& s : pending_) {
      if (block.base < s.base + s.size && s.base < block.base + block.size) {
        throw_overlap(block, *s.block);
      }
    }
    if (main_.empty()) return;
    // Nearest live neighbours in the merged array (tombstones are
    // range-irrelevant: anything erased cannot overlap anything live).
    const Slot* cand = lower_slot(block.base);
    const Slot* begin = main_.data();
    const Slot* end = begin + main_.size();
    if (cand != nullptr) {
      for (const Slot* p = cand; p >= begin; --p) {
        if (p->block == nullptr) continue;
        if (p->base + p->size > block.base) throw_overlap(block, *p->block);
        break;
      }
    }
    for (const Slot* p = (cand == nullptr ? begin : cand + 1); p < end; ++p) {
      if (p->block == nullptr) continue;
      if (p->base < block.base + block.size) throw_overlap(block, *p->block);
      break;
    }
  }

  /// Fold the pending run into the sorted array and drop tombstones.
  void settle() const {
    if (pending_.empty() && dead_ == 0) return;
    std::sort(pending_.begin(), pending_.end(),
              [](const Slot& a, const Slot& b) { return a.base < b.base; });
    std::vector<Slot> merged;
    merged.reserve(live_);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < main_.size() || j < pending_.size()) {
      const bool take_main =
          j >= pending_.size() || (i < main_.size() && main_[i].base < pending_[j].base);
      const Slot& s = take_main ? main_[i++] : pending_[j++];
      if (s.block != nullptr) merged.push_back(s);
    }
    main_ = std::move(merged);
    pending_.clear();
    dead_ = 0;
  }

  // The settle is a representation change, not an observable mutation;
  // const searches and freezes trigger it, hence the mutable storage.
  mutable std::vector<Slot> main_;     // sorted by base; may hold tombstones
  mutable std::vector<Slot> pending_;  // unsorted recent inserts, all live
  mutable std::size_t dead_ = 0;       // tombstones in main_
  std::size_t live_ = 0;
};

}  // namespace

const char* search_strategy_name(SearchStrategy s) noexcept {
  switch (s) {
    case SearchStrategy::OrderedMap: return "ordered_map";
    case SearchStrategy::LinearScan: return "linear_scan";
    case SearchStrategy::FlatArray: return "flat_array";
  }
  return "?";
}

FrozenIndex::FrozenIndex(std::vector<Entry> entries) : entries_(std::move(entries)) {
  slots_.reserve(entries_.size());
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    slots_.emplace(entries_[i].block->id, i);
  }
}

const MemoryBlock* FrozenIndex::find_containing(Address addr, std::uint64_t& steps) const noexcept {
  const std::size_t n = entries_.size();
  if (n == 0) return nullptr;
  const Entry* lo = entries_.data();
  std::size_t len = n;
  std::uint64_t s = 1;
  while (len > 1) {
    const std::size_t half = len >> 1;
    lo += (lo[half - 1].base <= addr) ? half : 0;
    len -= half;
    ++s;
  }
  steps += s;
  if (lo->base > addr) {
    if (lo == entries_.data()) return nullptr;
    --lo;
  }
  return addr - lo->base < lo->size ? lo->block : nullptr;
}

const MemoryBlock* FrozenIndex::find_id(BlockId id) const noexcept {
  const auto it = slots_.find(id);
  return it == slots_.end() ? nullptr : entries_[it->second].block;
}

std::uint32_t FrozenIndex::slot_of(BlockId id) const noexcept {
  const auto it = slots_.find(id);
  return it == slots_.end() ? static_cast<std::uint32_t>(entries_.size()) : it->second;
}

std::unique_ptr<AddressIndex> make_address_index(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::OrderedMap: return std::make_unique<MapIndex>(false);
    case SearchStrategy::LinearScan: return std::make_unique<MapIndex>(true);
    case SearchStrategy::FlatArray: return std::make_unique<FlatIndex>();
  }
  return std::make_unique<MapIndex>(false);
}

}  // namespace hpm::msr
