// MemorySpace: one process memory space the MSR machinery can operate on.
//
// The collection/restoration engine (src/msrm) is written against this
// interface so the *same* depth-first traversal serves two concrete
// spaces: HostSpace (the real memory of this process, native layout) and
// memimg::ImageSpace (a byte-exact simulation of a foreign architecture's
// memory). That guarantee — one engine, two layouts — is how the library
// demonstrates heterogeneous migration on a single physical machine.
#pragma once

#include "msr/block.hpp"
#include "msr/msrlt.hpp"
#include "ti/layout.hpp"
#include "ti/leaf.hpp"
#include "ti/table.hpp"
#include "xdr/arch.hpp"
#include "xdr/value.hpp"

namespace hpm::msr {

class MemorySpace {
 public:
  virtual ~MemorySpace() = default;

  /// Data model of this space.
  virtual const xdr::ArchDescriptor& arch() const noexcept = 0;

  /// Shared type table (source and destination must agree; enforced via
  /// the stream signature).
  virtual const ti::TypeTable& types() const noexcept = 0;

  /// Layouts of types under this space's architecture.
  virtual const ti::LayoutMap& layouts() const noexcept = 0;

  /// Leaf counts (arch independent, but kept per space for locality).
  virtual const ti::LeafIndex& leaves() const noexcept = 0;

  virtual Msrlt& msrlt() noexcept = 0;
  virtual const Msrlt& msrlt() const noexcept = 0;

  /// --- leaf cell access --------------------------------------------------
  virtual xdr::PrimValue read_prim(Address addr, xdr::PrimKind k) const = 0;
  virtual void write_prim(Address addr, xdr::PrimKind k, const xdr::PrimValue& v) = 0;

  /// Read/write a pointer cell as a space address (0 = null).
  virtual Address read_pointer(Address addr) const = 0;
  virtual void write_pointer(Address addr, Address value) = 0;

  /// --- bulk fast path ------------------------------------------------------
  /// Borrow `len` contiguous raw bytes at `addr` (this space's layout).
  /// Spaces that cannot expose contiguous storage return nullptr and the
  /// caller falls back to per-leaf access. The default declines.
  virtual const std::uint8_t* raw_view(Address addr, std::uint64_t len) const noexcept {
    (void)addr;
    (void)len;
    return nullptr;
  }
  virtual std::uint8_t* raw_mut(Address addr, std::uint64_t len) noexcept {
    (void)addr;
    (void)len;
    return nullptr;
  }

  /// --- restoration support ------------------------------------------------
  /// Obtain `size` bytes of fresh storage in this space (not yet
  /// registered in the MSRLT; the caller registers under the incoming id).
  virtual Address allocate(std::uint64_t size) = 0;

  /// Total bytes of one block of `count` elements of `type` in this space.
  std::uint64_t block_size(ti::TypeId type, std::uint32_t count) const {
    return layouts().of(type).size * count;
  }
};

}  // namespace hpm::msr
