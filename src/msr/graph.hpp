// Explicit MSR graph snapshots: G = (V, E).
//
// The MSRLT plus the TI table already *imply* the MSR graph; this module
// materializes it for analysis, testing (reachability, duplicate-transfer
// checks), and visualization (Graphviz DOT), mirroring Figure 1(b) of the
// paper.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "msr/space.hpp"

namespace hpm::msr {

struct GraphNode {
  BlockId id = kInvalidBlock;
  Segment segment = Segment::Heap;
  std::string name;
  std::string type;       ///< spelled element type
  std::uint32_t count = 1;
  std::uint64_t size = 0;
};

struct GraphEdge {
  BlockId from = kInvalidBlock;
  std::uint64_t from_leaf = 0;  ///< which pointer cell of `from`
  BlockId to = kInvalidBlock;
  std::uint64_t to_leaf = 0;    ///< which element of `to` it refers to
};

class MsrGraph {
 public:
  /// Materialize the MSR graph of `space`: every tracked block becomes a
  /// vertex; every non-null pointer cell becomes an edge. Pointers into
  /// untracked memory throw hpm::MsrError (they are migration-unsafe).
  static MsrGraph snapshot(const MemorySpace& space);

  [[nodiscard]] const std::vector<GraphNode>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<GraphEdge>& edges() const noexcept { return edges_; }

  /// Block ids reachable from `roots` by following edges (the paper's
  /// "connected components" the DFS collects).
  [[nodiscard]] std::set<BlockId> reachable_from(const std::vector<BlockId>& roots) const;

  /// Graphviz rendering (one cluster per segment, like Figure 1(b)).
  [[nodiscard]] std::string to_dot() const;

 private:
  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
};

}  // namespace hpm::msr
