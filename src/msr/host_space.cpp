#include "msr/host_space.hpp"

#include <algorithm>
#include <cstring>
#include <new>

namespace hpm::msr {

HostSpace::~HostSpace() {
  for (void* p : owned_) free_raw(p);
}

xdr::PrimValue HostSpace::read_prim(Address addr, xdr::PrimKind k) const {
  return xdr::read_raw(reinterpret_cast<const std::uint8_t*>(addr), arch(), k);
}

void HostSpace::write_prim(Address addr, xdr::PrimKind k, const xdr::PrimValue& v) {
  xdr::write_raw(reinterpret_cast<std::uint8_t*>(addr), arch(), k, v);
}

Address HostSpace::read_pointer(Address addr) const {
  // Host pointers are stored as real machine pointers; read them as such.
  void* value = nullptr;
  std::memcpy(&value, reinterpret_cast<const void*>(addr), sizeof(void*));
  return reinterpret_cast<Address>(value);
}

void HostSpace::write_pointer(Address addr, Address value) {
  void* p = reinterpret_cast<void*>(value);
  std::memcpy(reinterpret_cast<void*>(addr), &p, sizeof(void*));
}

Address HostSpace::allocate(std::uint64_t size) {
  // No zero-fill: allocate() only feeds restoration, which decodes every
  // data leaf of the block; padding bytes stay unspecified, as in any
  // locally constructed C object.
  void* p = ::operator new(size, std::align_val_t{16});
  owned_.insert(p);
  return reinterpret_cast<Address>(p);
}

void HostSpace::release_ownership(Address base) {
  void* p = reinterpret_cast<void*>(base);
  const auto it = owned_.find(p);
  if (it == owned_.end()) throw MsrError("release_ownership: storage not owned by space");
  owned_.erase(it);
}

}  // namespace hpm::msr
