#include "msrm/stream.hpp"

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace hpm::msrm {

void write_header(xdr::Encoder& enc, const StreamHeader& header) {
  enc.put_u32(kMagic);
  enc.put_u16(kVersion);
  enc.put_string(header.source_arch);
  enc.put_u64(header.ti_signature);
}

StreamHeader read_header(xdr::Decoder& dec) {
  const std::uint32_t magic = dec.get_u32();
  if (magic != kMagic) throw WireError("not a migration stream (bad magic)");
  const std::uint16_t version = dec.get_u16();
  if (version != kVersion) {
    throw WireError("unsupported stream version " + std::to_string(version));
  }
  StreamHeader header;
  header.source_arch = dec.get_string();
  header.ti_signature = dec.get_u64();
  return header;
}

void finish_stream(xdr::Encoder& enc) {
  const std::uint32_t crc = Crc32::of(enc.bytes().data(), enc.bytes().size());
  enc.put_u8(kTrailerTag);
  enc.put_u32(crc);
}

std::span<const std::uint8_t> check_stream(std::span<const std::uint8_t> stream) {
  if (stream.size() < 5) throw WireError("stream too short to contain a trailer");
  const std::size_t payload_len = stream.size() - 5;
  if (stream[payload_len] != kTrailerTag) {
    throw WireError("stream trailer tag missing (truncated transfer?)");
  }
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) stored = (stored << 8) | stream[payload_len + 1 + i];
  const std::uint32_t computed = Crc32::of(stream.data(), payload_len);
  if (stored != computed) {
    throw WireError("stream checksum mismatch: transfer corrupted");
  }
  return stream.subspan(0, payload_len);
}

void StreamDigest::update(std::span<const std::uint8_t> bytes) noexcept {
  for (const std::uint8_t b : bytes) {
    fnv_ ^= b;
    fnv_ *= 0x100000001b3ull;  // FNV-1a 64 prime
  }
  crc_.update(bytes.data(), bytes.size());
}

std::uint64_t StreamDigest::value() const noexcept {
  // Fold the CRC into the FNV state through a golden-ratio multiply so
  // the two codes cannot cancel byte-for-byte.
  return fnv_ ^ (static_cast<std::uint64_t>(crc_.value()) * 0x9E3779B97F4A7C15ull);
}

}  // namespace hpm::msrm
