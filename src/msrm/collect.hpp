// Data collection: Save_variable / Save_pointer.
//
// A Collector owns one migration's depth-first traversal over the MSR
// graph of a MemorySpace. Visited blocks are marked in the MSRLT so each
// block is transferred exactly once (the paper's duplicate guard); the
// traversal uses an explicit work stack, so arbitrarily deep structures
// (long linked lists) cannot overflow the call stack even though the wire
// format is recursively nested.
//
// The traversal/encoding engine lives in CollectorBase with three policy
// hooks — visited marking, address resolution, and id lookup — so the
// serial Collector (live MSRLT) and the parallel per-root collectors
// (frozen index + ownership table, msrm/par_collect.hpp) emit
// bit-identical streams from one engine.
#pragma once

#include <vector>

#include "msr/resolve.hpp"
#include "msr/space.hpp"
#include "msrm/leaf_cache.hpp"
#include "msrm/stream.hpp"
#include "obs/metrics.hpp"
#include "xdr/wire.hpp"

namespace hpm::msrm {

class CollectorBase {
 public:
  virtual ~CollectorBase() { flush_instruments(); }

  /// Collect a whole live variable: the tracked block based at
  /// `block_base` and everything reachable from it. (Paper:
  /// `Save_variable(&var)`.) Emits one PtrVal record.
  void save_variable(msr::Address block_base);

  /// Collect the pointer stored in the cell at `cell_addr` and everything
  /// reachable through it. (Paper: `Save_pointer(p)` where the cell holds
  /// p's value.) Emits one PtrVal record.
  void save_pointer(msr::Address cell_addr);

 protected:
  /// `leaves` outlives the collector; sharing one prewarmed cache across
  /// parallel per-root collectors keeps the hot loop allocation-free.
  CollectorBase(msr::MemorySpace& space, xdr::Encoder& enc, LeafCache& leaves);

  /// --- policy hooks --------------------------------------------------------
  /// First visit of `id` in this traversal? (true exactly once per block.)
  virtual bool visit(msr::BlockId id) = 0;
  /// Address -> (block, leaf ordinal); throws MsrError off the data model.
  virtual msr::LogicalPointer resolve(msr::Address addr) const = 0;
  /// Block by id (known-present after resolve).
  virtual const msr::MemoryBlock* block_of(msr::BlockId id) const = 0;
  /// Containing-block lookup for root validation.
  virtual const msr::MemoryBlock* containing(msr::Address addr) const = 0;

  msr::MemorySpace& space_;

 private:
  struct Pending {
    const msr::MemoryBlock* block;
    const std::vector<ti::LeafRef>* leaf_list;  // null for pointer-free blocks
    std::uint64_t elem_size;
    std::uint32_t elem_idx;
    std::uint64_t leaf_idx;
  };

  /// Emit a PtrVal for a target address; pushes a Pending when the target
  /// block is seen for the first time.
  void encode_ptr_value(msr::Address target);

  /// Encode a pointer-free block's FlatBody: BODY_RAW (one put_bytes of
  /// the source-layout image) when the space exposes raw storage, else
  /// BODY_CANON via per-element canonical conversion.
  void encode_flat(const msr::MemoryBlock& block);
  void encode_flat_type(msr::Address base, ti::TypeId type);

  /// Run the DFS until the work stack is empty.
  void drain();

  /// Push the local tallies into the process registry and zero them.
  /// Called at the end of each save_*; the destructor flushes whatever an
  /// exception left behind. Buffering matters for parallel collection:
  /// the registry counters are shared atomics (and the depth histogram a
  /// shared mutex) — per-event updates from four workers turn into
  /// cache-line ping-pong that erases the parallel speedup.
  void flush_instruments() noexcept;

  xdr::Encoder& enc_;
  LeafCache& leaves_;
  std::vector<Pending> stack_;

  // `msrm.collect.*` instruments (process-wide registry) and the
  // traversal-depth histogram, fed from the per-collector tallies below.
  obs::Counter& blocks_saved_;
  obs::Counter& refs_saved_;
  obs::Counter& nulls_saved_;
  obs::Counter& prim_leaves_;
  obs::Counter& ptr_leaves_;
  obs::Counter& bulk_bodies_;   ///< BODY_RAW bodies emitted
  obs::Counter& bulk_bytes_;    ///< raw bytes those bodies carried
  obs::Histogram& depth_hist_;  ///< `msrm.collect.depth`

  std::uint64_t tally_blocks_ = 0;
  std::uint64_t tally_refs_ = 0;
  std::uint64_t tally_nulls_ = 0;
  std::uint64_t tally_prim_ = 0;
  std::uint64_t tally_ptr_ = 0;
  std::uint64_t tally_bulk_bodies_ = 0;
  std::uint64_t tally_bulk_bytes_ = 0;
  std::vector<double> tally_depths_;
};

namespace detail {
/// Base-before-base holder so the serial Collector can own the LeafCache
/// it hands CollectorBase (members would be constructed too late).
struct OwnedLeafCache {
  explicit OwnedLeafCache(const msr::MemorySpace& space) : cache(space) {}
  LeafCache cache;
};
}  // namespace detail

/// The serial collector: duplicate guard and address resolution against
/// the live MSRLT, exactly the paper's single-threaded traversal.
class Collector final : private detail::OwnedLeafCache, public CollectorBase {
 public:
  /// Starts a fresh traversal (bumps the MSRLT visit epoch).
  Collector(msr::MemorySpace& space, xdr::Encoder& enc);

 protected:
  bool visit(msr::BlockId id) override { return space_.msrlt().try_mark(id); }
  msr::LogicalPointer resolve(msr::Address addr) const override {
    return msr::resolve_pointer(space_, addr);
  }
  const msr::MemoryBlock* block_of(msr::BlockId id) const override {
    return space_.msrlt().find_id(id);
  }
  const msr::MemoryBlock* containing(msr::Address addr) const override {
    return space_.msrlt().find_containing(addr);
  }
};

}  // namespace hpm::msrm
