// Data collection: Save_variable / Save_pointer.
//
// A Collector owns one migration's depth-first traversal over the MSR
// graph of a MemorySpace. Visited blocks are marked in the MSRLT so each
// block is transferred exactly once (the paper's duplicate guard); the
// traversal uses an explicit work stack, so arbitrarily deep structures
// (long linked lists) cannot overflow the call stack even though the wire
// format is recursively nested.
#pragma once

#include <vector>

#include "msr/resolve.hpp"
#include "msr/space.hpp"
#include "msrm/leaf_cache.hpp"
#include "msrm/stream.hpp"
#include "obs/metrics.hpp"
#include "xdr/wire.hpp"

namespace hpm::msrm {

class Collector {
 public:
  /// Starts a fresh traversal (bumps the MSRLT visit epoch).
  Collector(msr::MemorySpace& space, xdr::Encoder& enc);

  /// Collect a whole live variable: the tracked block based at
  /// `block_base` and everything reachable from it. (Paper:
  /// `Save_variable(&var)`.) Emits one PtrVal record.
  void save_variable(msr::Address block_base);

  /// Collect the pointer stored in the cell at `cell_addr` and everything
  /// reachable through it. (Paper: `Save_pointer(p)` where the cell holds
  /// p's value.) Emits one PtrVal record.
  void save_pointer(msr::Address cell_addr);

 private:
  struct Pending {
    const msr::MemoryBlock* block;
    const std::vector<ti::LeafRef>* leaf_list;  // null for pointer-free blocks
    std::uint64_t elem_size;
    std::uint32_t elem_idx;
    std::uint64_t leaf_idx;
  };

  /// Emit a PtrVal for a target address; pushes a Pending when the target
  /// block is seen for the first time.
  void encode_ptr_value(msr::Address target);

  /// Encode a pointer-free block's FlatBody: BODY_RAW (one put_bytes of
  /// the source-layout image) when the space exposes raw storage, else
  /// BODY_CANON via per-element canonical conversion.
  void encode_flat(const msr::MemoryBlock& block);
  void encode_flat_type(msr::Address base, ti::TypeId type);

  /// Run the DFS until the work stack is empty.
  void drain();

  msr::MemorySpace& space_;
  xdr::Encoder& enc_;
  LeafCache leaves_;
  std::vector<Pending> stack_;

  // `msrm.collect.*` instruments (process-wide registry) and the
  // traversal-depth histogram.
  obs::Counter& blocks_saved_;
  obs::Counter& refs_saved_;
  obs::Counter& nulls_saved_;
  obs::Counter& prim_leaves_;
  obs::Counter& ptr_leaves_;
  obs::Counter& bulk_bodies_;   ///< BODY_RAW bodies emitted
  obs::Counter& bulk_bytes_;    ///< raw bytes those bodies carried
  obs::Histogram& depth_hist_;  ///< `msrm.collect.depth`
};

}  // namespace hpm::msrm
