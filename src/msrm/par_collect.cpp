#include "msrm/par_collect.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "msr/address_index.hpp"
#include "msr/resolve.hpp"
#include "msrm/collect.hpp"
#include "obs/metrics.hpp"
#include "ti/leaf.hpp"

namespace hpm::msrm {

namespace {

constexpr std::uint32_t kUnowned = 0xFFFFFFFFu;

/// Per-thread memo over FrozenIndex::find_containing — the same
/// set-associative shape as the live MSRLT's search cache (64 sets x 4
/// ways, block-granule bits folded into the set index), but with no epoch
/// column: the snapshot is immutable, so a filled way stays valid for the
/// whole collection. Each worker owns one memo (no sharing, no locks,
/// clean under TSan by construction); its hit count is flushed once per
/// worker into `msrm.collect.par.memo_hits`. Pointer-chasing workloads
/// revisit the same few blocks in bursts, so the memo turns the O(log n)
/// binary search into an O(1) probe for the common repeats.
class FrozenMemo {
 public:
  explicit FrozenMemo(const msr::FrozenIndex& fz) : fz_(fz) {}

  const msr::MemoryBlock* find(msr::Address addr) {
    const std::size_t set = set_of(addr);
    for (std::size_t w = 0; w < kWays; ++w) {
      const msr::MemoryBlock* b = ways_[set][w];
      if (b != nullptr && addr - b->base < b->size) {
        ++hits_;
        return b;
      }
    }
    std::uint64_t steps = 0;
    const msr::MemoryBlock* b = fz_.find_containing(addr, steps);
    if (b != nullptr) {
      ways_[set][cursor_[set]] = b;
      cursor_[set] = static_cast<std::uint8_t>((cursor_[set] + 1) % kWays);
    }
    return b;
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }

 private:
  static constexpr std::size_t kSets = 64;
  static constexpr std::size_t kWays = 4;

  static std::size_t set_of(msr::Address addr) {
    std::uint64_t g = addr >> 6;
    g ^= g >> 12;
    return static_cast<std::size_t>(g & (kSets - 1));
  }

  const msr::FrozenIndex& fz_;
  const msr::MemoryBlock* ways_[kSets][kWays] = {};
  std::uint8_t cursor_[kSets] = {};
  std::uint64_t hits_ = 0;
};

/// resolve_pointer against the frozen snapshot instead of the live MSRLT
/// (same math, same error text; skips the msr.msrlt.* search instruments,
/// whose cache is single-threaded).
msr::LogicalPointer frozen_resolve(const msr::MemorySpace& space, FrozenMemo& memo,
                                   msr::Address addr) {
  const msr::MemoryBlock* block = memo.find(addr);
  if (block == nullptr) {
    throw MsrError("pointer " + std::to_string(addr) +
                   " does not refer to any tracked memory block");
  }
  const std::uint64_t elem_size = space.layouts().of(block->type).size;
  const std::uint64_t byte_off = addr - block->base;
  const std::uint64_t elem_idx = byte_off / elem_size;
  const std::uint64_t per_elem = space.leaves().count(block->type);
  const std::uint64_t inner = ti::ordinal_of(space.leaves(), space.layouts(), block->type,
                                             byte_off - elem_idx * elem_size);
  return msr::LogicalPointer{block->id, elem_idx * per_elem + inner};
}

/// CAS-min claim. True iff `rank` lowered the cell — the caller must then
/// (re-)descend into the block, because everything below it may now be
/// claimable at the lower rank. Values only decrease, so re-descents
/// terminate.
bool claim(std::atomic<std::uint32_t>& cell, std::uint32_t rank) {
  std::uint32_t cur = cell.load(std::memory_order_relaxed);
  while (rank < cur) {
    if (cell.compare_exchange_weak(cur, rank, std::memory_order_relaxed)) return true;
  }
  return false;
}

/// Phase 1 worker body: claim owner[slot] = min rank over roots reaching
/// the block, walking only pointer leaves. Invalid roots and dangling
/// pointers are skipped here — phase 2 reaches them in serial stream
/// order and throws the serial path's exact error.
void ownership_from_root(const msr::MemorySpace& space, const msr::FrozenIndex& fz,
                         FrozenMemo& memo,
                         const std::vector<std::vector<ti::LeafRef>>& ptr_leaves,
                         std::atomic<std::uint32_t>* owner, std::uint32_t rank,
                         msr::Address root, std::vector<std::uint32_t>& stack) {
  const msr::MemoryBlock* rb = memo.find(root);
  if (rb == nullptr || rb->base != root) return;
  const std::uint32_t rslot = fz.slot_of(rb->id);
  if (claim(owner[rslot], rank)) stack.push_back(rslot);
  while (!stack.empty()) {
    const std::uint32_t slot = stack.back();
    stack.pop_back();
    const msr::MemoryBlock* block = fz.block_at(slot);
    const std::vector<ti::LeafRef>& leaves = ptr_leaves[block->type];
    if (leaves.empty()) continue;
    const std::uint64_t elem_size = space.layouts().of(block->type).size;
    for (std::uint32_t e = 0; e < block->count; ++e) {
      const msr::Address elem_base = block->base + e * elem_size;
      for (const ti::LeafRef& ref : leaves) {
        const msr::Address value = space.read_pointer(elem_base + ref.byte_offset);
        if (value == 0) continue;
        const msr::MemoryBlock* tgt = memo.find(value);
        if (tgt == nullptr) continue;
        const std::uint32_t tslot = fz.slot_of(tgt->id);
        if (claim(owner[tslot], rank)) stack.push_back(tslot);
      }
    }
  }
}

/// Phase 2 collector: one per root, replaying the serial DFS against the
/// precomputed ownership. A block is NEW for rank r iff owner == r and it
/// is r's first local encounter — exactly the serial first-global-visit
/// criterion (see par_collect.hpp).
class RootCollector final : public CollectorBase {
 public:
  RootCollector(msr::MemorySpace& space, xdr::Encoder& enc, LeafCache& leaves,
                const msr::FrozenIndex& fz, FrozenMemo& memo,
                const std::atomic<std::uint32_t>* owner, std::vector<std::uint32_t>& seen,
                std::uint32_t rank)
      : CollectorBase(space, enc, leaves),
        fz_(fz),
        memo_(memo),
        owner_(owner),
        seen_(seen),
        rank_(rank) {}

 protected:
  bool visit(msr::BlockId id) override {
    const std::uint32_t slot = fz_.slot_of(id);
    if (owner_[slot].load(std::memory_order_relaxed) != rank_) return false;
    if (seen_[slot] == rank_ + 1) return false;  // per-worker array, per-root epoch
    seen_[slot] = rank_ + 1;
    return true;
  }
  msr::LogicalPointer resolve(msr::Address addr) const override {
    return frozen_resolve(space_, memo_, addr);
  }
  const msr::MemoryBlock* block_of(msr::BlockId id) const override { return fz_.find_id(id); }
  const msr::MemoryBlock* containing(msr::Address addr) const override {
    return memo_.find(addr);
  }

 private:
  const msr::FrozenIndex& fz_;
  FrozenMemo& memo_;  ///< worker-owned; outlives every per-root collector
  const std::atomic<std::uint32_t>* owner_;
  std::vector<std::uint32_t>& seen_;
  std::uint32_t rank_;
};

}  // namespace

void collect_roots(msr::MemorySpace& space, xdr::Encoder& enc,
                   const std::vector<msr::Address>& roots, unsigned threads) {
  if (threads <= 1 || roots.size() < 2) {
    Collector collector(space, enc);
    for (const msr::Address root : roots) collector.save_variable(root);
    return;
  }

  auto& reg = obs::Registry::process();
  obs::Counter& par_runs = reg.counter("msrm.collect.par.runs");
  obs::Counter& par_roots = reg.counter("msrm.collect.par.roots");
  obs::Counter& par_workers = reg.counter("msrm.collect.par.workers");
  obs::Counter& par_bytes = reg.counter("msrm.collect.par.bytes_merged");
  obs::Counter& memo_hits = reg.counter("msrm.collect.par.memo_hits");
  obs::Histogram& root_bytes_hist = reg.histogram("msrm.collect.par.root_bytes");

  const unsigned k = static_cast<unsigned>(
      std::min<std::size_t>(threads, roots.size()));

  // Prewarm every lazy type-metadata memo (layouts, leaf counts, flat
  // leaf lists, pointer/bulk classification): the hot phases below read
  // this state from many threads and must never be first to fill it.
  const std::size_t ntypes = space.types().size();
  LeafCache shared_leaves(space);
  std::vector<std::vector<ti::LeafRef>> ptr_leaves(ntypes + 1);
  for (ti::TypeId t = 1; t <= ntypes; ++t) {
    space.layouts().of(t);
    space.leaves().count(t);
    const bool has_ptr = space.types().contains_pointer(t);
    if (!space.types().bulk_eligible(t)) shared_leaves.of(t);
    if (has_ptr) {
      ti::for_each_leaf(space.leaves(), space.layouts(), t, [&](const ti::LeafRef& ref) {
        if (ref.is_pointer) ptr_leaves[t].push_back(ref);
      });
    }
  }

  space.msrlt().begin_traversal();  // parity with the serial collector
  const msr::FrozenIndex fz = space.msrlt().freeze();
  const std::uint32_t n = static_cast<std::uint32_t>(fz.size());

  std::vector<std::atomic<std::uint32_t>> owner(n);
  for (auto& cell : owner) cell.store(kUnowned, std::memory_order_relaxed);

  // Phase 1: parallel CAS-min ownership (static root -> worker stripes).
  {
    std::vector<std::exception_ptr> oerr(k);
    std::vector<std::uint64_t> whits(k, 0);
    std::vector<std::thread> pool;
    pool.reserve(k);
    for (unsigned w = 0; w < k; ++w) {
      pool.emplace_back([&, w] {
        std::vector<std::uint32_t> stack;
        FrozenMemo memo(fz);
        try {
          for (std::size_t r = w; r < roots.size(); r += k) {
            ownership_from_root(space, fz, memo, ptr_leaves, owner.data(),
                                static_cast<std::uint32_t>(r), roots[r], stack);
          }
        } catch (...) {
          oerr[w] = std::current_exception();
        }
        whits[w] = memo.hits();  // flushed once per worker, summed below
      });
    }
    for (std::thread& t : pool) t.join();
    for (const std::uint64_t h : whits) memo_hits.add(h);
    for (const std::exception_ptr& e : oerr) {
      if (e) std::rethrow_exception(e);
    }
  }

  // Phase 2: per-root encode into local buffers, merged into `enc` in
  // rank order as soon as each prefix completes (the sink, if armed,
  // streams incrementally). Errors surface at their serial rank: ranks
  // before the first failing root are merged, then its exception is
  // rethrown — same stream prefix and exception the serial path gives.
  struct RootResult {
    Bytes bytes;
    std::exception_ptr error;
    bool done = false;
  };
  std::vector<RootResult> results(roots.size());
  std::mutex mu;
  std::condition_variable cv;

  std::vector<std::uint64_t> whits2(k, 0);
  std::vector<std::thread> pool;
  pool.reserve(k);
  for (unsigned w = 0; w < k; ++w) {
    pool.emplace_back([&, w] {
      std::vector<std::uint32_t> seen(n, 0);
      FrozenMemo memo(fz);
      for (std::size_t r = w; r < roots.size(); r += k) {
        xdr::Encoder local;
        std::exception_ptr err;
        try {
          RootCollector rc(space, local, shared_leaves, fz, memo, owner.data(), seen,
                           static_cast<std::uint32_t>(r));
          rc.save_variable(roots[r]);
        } catch (...) {
          err = std::current_exception();
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          // bytes(), not take(): take() would count a phantom stream in
          // the xdr.encode.* instruments.
          results[r].bytes = local.bytes();
          results[r].error = std::move(err);
          results[r].done = true;
        }
        cv.notify_all();
      }
      whits2[w] = memo.hits();
    });
  }

  std::exception_ptr first_error;
  std::uint64_t merged = 0;
  for (std::size_t r = 0; r < roots.size(); ++r) {
    Bytes bytes;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return results[r].done; });
      if (results[r].error) {
        first_error = results[r].error;
        break;
      }
      bytes = std::move(results[r].bytes);
    }
    enc.put_bytes(bytes.data(), bytes.size());
    merged += bytes.size();
    root_bytes_hist.record(static_cast<double>(bytes.size()));
  }
  for (std::thread& t : pool) t.join();
  for (const std::uint64_t h : whits2) memo_hits.add(h);
  if (first_error) std::rethrow_exception(first_error);

  par_runs.add(1);
  par_roots.add(roots.size());
  par_workers.add(k);
  par_bytes.add(merged);
}

}  // namespace hpm::msrm
