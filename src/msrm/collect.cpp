#include "msrm/collect.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "xdr/value.hpp"

namespace hpm::msrm {

namespace {

std::string hex_addr(msr::Address addr) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(addr));
  return buf;
}

}  // namespace

CollectorBase::CollectorBase(msr::MemorySpace& space, xdr::Encoder& enc, LeafCache& leaves)
    : space_(space),
      enc_(enc),
      leaves_(leaves),
      blocks_saved_(obs::Registry::process().counter("msrm.collect.blocks_saved")),
      refs_saved_(obs::Registry::process().counter("msrm.collect.refs_saved")),
      nulls_saved_(obs::Registry::process().counter("msrm.collect.nulls_saved")),
      prim_leaves_(obs::Registry::process().counter("msrm.collect.prim_leaves")),
      ptr_leaves_(obs::Registry::process().counter("msrm.collect.ptr_leaves")),
      bulk_bodies_(obs::Registry::process().counter("msrm.collect.bulk_bodies")),
      bulk_bytes_(obs::Registry::process().counter("msrm.collect.bulk_bytes")),
      depth_hist_(obs::Registry::process().histogram("msrm.collect.depth")) {}

void CollectorBase::flush_instruments() noexcept {
  if (tally_blocks_ != 0) blocks_saved_.add(tally_blocks_);
  if (tally_refs_ != 0) refs_saved_.add(tally_refs_);
  if (tally_nulls_ != 0) nulls_saved_.add(tally_nulls_);
  if (tally_prim_ != 0) prim_leaves_.add(tally_prim_);
  if (tally_ptr_ != 0) ptr_leaves_.add(tally_ptr_);
  if (tally_bulk_bodies_ != 0) bulk_bodies_.add(tally_bulk_bodies_);
  if (tally_bulk_bytes_ != 0) bulk_bytes_.add(tally_bulk_bytes_);
  depth_hist_.record_batch(tally_depths_.data(), tally_depths_.size());
  tally_blocks_ = tally_refs_ = tally_nulls_ = 0;
  tally_prim_ = tally_ptr_ = tally_bulk_bodies_ = tally_bulk_bytes_ = 0;
  tally_depths_.clear();
}

Collector::Collector(msr::MemorySpace& space, xdr::Encoder& enc)
    : detail::OwnedLeafCache(space), CollectorBase(space, enc, cache) {
  space_.msrlt().begin_traversal();
}

void CollectorBase::save_variable(msr::Address block_base) {
  const msr::MemoryBlock* block = containing(block_base);
  if (block == nullptr) {
    throw MsrError("save_variable: address " + hex_addr(block_base) +
                   " is not inside any tracked block");
  }
  if (block->base != block_base) {
    throw MsrError("save_variable: address " + hex_addr(block_base) +
                   " lies inside block '" + block->name + "' [" + hex_addr(block->base) +
                   ", +" + std::to_string(block->size) + ") but is not its base");
  }
  encode_ptr_value(block_base);
  drain();
  flush_instruments();
}

void CollectorBase::save_pointer(msr::Address cell_addr) {
  encode_ptr_value(space_.read_pointer(cell_addr));
  drain();
  flush_instruments();
}

void CollectorBase::encode_ptr_value(msr::Address target) {
  if (target == 0) {
    enc_.put_u8(kPtrNull);
    ++tally_nulls_;
    return;
  }
  const msr::LogicalPointer lp = resolve(target);
  if (!visit(lp.block)) {
    enc_.put_u8(kPtrRef);
    enc_.put_u64(lp.block);
    enc_.put_u64(lp.leaf);
    ++tally_refs_;
    return;
  }
  const msr::MemoryBlock* block = block_of(lp.block);
  enc_.put_u8(kPtrNew);
  enc_.put_u64(lp.block);
  enc_.put_u64(lp.leaf);
  enc_.put_u8(static_cast<std::uint8_t>(block->segment));
  enc_.put_u32(block->type);
  enc_.put_u32(block->count);
  ++tally_blocks_;

  if (space_.types().bulk_eligible(block->type)) {
    encode_flat(*block);  // pure-XDR fast path, nothing to push
    return;
  }
  Pending p;
  p.block = block;
  p.leaf_list = &leaves_.of(block->type);
  p.elem_size = space_.layouts().of(block->type).size;
  p.elem_idx = 0;
  p.leaf_idx = 0;
  stack_.push_back(p);
  tally_depths_.push_back(static_cast<double>(stack_.size()));
}

void CollectorBase::encode_flat(const msr::MemoryBlock& block) {
  // Bulk fast path: the block's raw source-layout image in one put_bytes.
  // The decoder memcpy's it under a matching data model and converts it
  // leaf-by-leaf (source-arch layout walk) otherwise.
  if (const std::uint8_t* raw = space_.raw_view(block.base, block.size)) {
    enc_.put_u8(kBodyRaw);
    enc_.put_u64(block.size);
    enc_.put_bytes(raw, block.size);
    ++tally_bulk_bodies_;
    tally_bulk_bytes_ += block.size;
    tally_prim_ += space_.leaves().count(block.type) * block.count;
    return;
  }
  enc_.put_u8(kBodyCanonical);
  const std::uint64_t elem_size = space_.layouts().of(block.type).size;
  for (std::uint32_t e = 0; e < block.count; ++e) {
    encode_flat_type(block.base + e * elem_size, block.type);
  }
}

void CollectorBase::encode_flat_type(msr::Address base, ti::TypeId type) {
  const ti::TypeInfo& info = space_.types().at(type);
  switch (info.kind) {
    case ti::TypeKind::Primitive:
      xdr::encode_canonical(enc_, space_.read_prim(base, info.prim));
      ++tally_prim_;
      return;
    case ti::TypeKind::Pointer:
      throw MsrError("encode_flat_type reached a pointer (contains_pointer lied)");
    case ti::TypeKind::Array: {
      const std::uint64_t elem_size = space_.layouts().of(info.elem).size;
      for (std::uint32_t i = 0; i < info.count; ++i) {
        encode_flat_type(base + i * elem_size, info.elem);
      }
      return;
    }
    case ti::TypeKind::Struct: {
      const ti::TypeLayout& sl = space_.layouts().of(type);
      for (std::size_t i = 0; i < info.fields.size(); ++i) {
        encode_flat_type(base + sl.field_offsets[i], info.fields[i].type);
      }
      return;
    }
  }
}

void CollectorBase::drain() {
  while (!stack_.empty()) {
    const std::size_t my_index = stack_.size() - 1;
    bool suspended = false;
    for (;;) {
      Pending cur = stack_[my_index];
      if (cur.elem_idx >= cur.block->count) break;  // this block is finished
      if (cur.leaf_idx >= cur.leaf_list->size()) {
        stack_[my_index].elem_idx = cur.elem_idx + 1;
        stack_[my_index].leaf_idx = 0;
        continue;
      }
      const ti::LeafRef& ref = (*cur.leaf_list)[cur.leaf_idx];
      const msr::Address cell =
          cur.block->base + cur.elem_idx * cur.elem_size + ref.byte_offset;
      stack_[my_index].leaf_idx = cur.leaf_idx + 1;
      if (!ref.is_pointer) {
        xdr::encode_canonical(enc_, space_.read_prim(cell, ref.prim));
        ++tally_prim_;
      } else {
        ++tally_ptr_;
        const msr::Address value = space_.read_pointer(cell);
        encode_ptr_value(value);
        if (stack_.size() > my_index + 1) {
          // A new block was pushed: descend (depth-first) before the rest
          // of this block's leaves.
          suspended = true;
          break;
        }
      }
    }
    if (!suspended) stack_.pop_back();
  }
}

}  // namespace hpm::msrm
