// Data restoration: Restore_variable / Restore_pointer.
//
// A Restorer rebuilds memory blocks in a destination MemorySpace from the
// PtrVal grammar. Because every migrated block carries its logical id,
// restoration never searches the MSRLT by address — it binds the source
// id to destination storage in O(1) and decodes contents in place. That
// is the paper's O(n) MSRLT-update term, versus the O(n log n) search
// term on the collection side.
//
// Binding rules:
//  * Stack and Global blocks exist on the destination a priori (the
//    re-executed program prologues and startup registration create them);
//    they must be bound with bind() before their contents arrive, unless
//    auto-bind mode is enabled (used by tests and image round trips).
//  * Heap blocks are created on demand when their PNEW header is read —
//    before the body is decoded, so back/cross references always resolve.
#pragma once

#include <unordered_map>
#include <vector>

#include "msr/resolve.hpp"
#include "msr/space.hpp"
#include "msrm/leaf_cache.hpp"
#include "msrm/stream.hpp"
#include "obs/metrics.hpp"
#include "xdr/wire.hpp"

namespace hpm::msrm {

class Restorer {
 public:
  /// Restore a stream whose source shares this space's architecture.
  Restorer(msr::MemorySpace& space, xdr::Decoder& dec);

  /// Restore a stream collected under `source_arch` (the stream header
  /// names it). Raw (BODY_RAW) bodies are memcpy'd when the source's
  /// data model matches this space's, and converted leaf-by-leaf under
  /// the source-arch layout otherwise — so heterogeneous callers MUST
  /// pass the real source architecture.
  Restorer(msr::MemorySpace& space, xdr::Decoder& dec,
           const xdr::ArchDescriptor& source_arch);

  /// Pre-bind a source block id to existing destination storage (a
  /// re-registered stack local or global). Validates element type and
  /// count against the destination block.
  void bind(msr::BlockId source_id, msr::BlockId dest_id, ti::TypeId type,
            std::uint32_t count);

  /// Auto-bind mode: PNEW for an unbound Stack/Global block allocates
  /// fresh storage (registered under the original segment) instead of
  /// failing. Default off.
  void set_auto_bind(bool enabled) noexcept { auto_bind_ = enabled; }

  /// Decode one variable record (must be PNEW or PREF of the variable's
  /// own block, at leaf 0). Returns the destination block id. (Paper:
  /// `Restore_variable(&var)`.)
  msr::BlockId restore_variable();

  /// Decode one PtrVal and return the destination address it denotes
  /// (0 for null). (Paper: `p = Restore_pointer()`.)
  msr::Address restore_pointer();

  /// Destination id bound to `source_id`; kInvalidBlock if none.
  [[nodiscard]] msr::BlockId dest_of(msr::BlockId source_id) const;

 private:
  struct Pending {
    const msr::MemoryBlock* block;  // destination block
    const std::vector<ti::LeafRef>* leaf_list;
    std::uint64_t elem_size;
    std::uint32_t elem_idx;
    std::uint64_t leaf_idx;
  };

  /// Decode a PtrVal; may push a Pending; returns the destination address.
  msr::Address decode_ptr_value();

  void decode_flat(const msr::MemoryBlock& block);
  void decode_flat_type(msr::Address base, ti::TypeId type);
  void drain();

  /// Flat leaf list of `type` under the *source* architecture's layout.
  const std::vector<ti::LeafRef>& src_leaves_of(ti::TypeId type);

  /// One step of the staged heterogeneous conversion. count > 0 is a
  /// *run*: `count` leaves contiguous in both layouts, executed as one
  /// memcpy (swap == false, `bytes` long, widths may mix) or one
  /// fixed-`width` byteswap sweep. count == 0 falls back to the scalar
  /// read_raw/write_prim round trip for leaf `first` (width-changing
  /// leaves, Bool normalization, overflow detection).
  struct StagedOp {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    std::uint8_t width = 0;
    bool swap = false;
    std::uint64_t src_off = 0;
    std::uint64_t dst_off = 0;
    std::uint64_t bytes = 0;
  };
  /// Per-element conversion recipe for one TypeId (both layouts fixed for
  /// the stream's lifetime, so built once and replayed per element).
  struct StagedPlan {
    std::vector<StagedOp> ops;
    std::uint64_t run_bytes = 0;     ///< bytes moved by runs, per element
    std::uint32_t run_ops = 0;       ///< run ops per element
    std::uint32_t scalar_ops = 0;    ///< scalar ops per element
  };
  const StagedPlan& staged_plan_of(ti::TypeId type);

  const msr::MemoryBlock& materialize_pnew(msr::BlockId src_id, std::uint8_t segment,
                                           ti::TypeId type, std::uint32_t count);

  msr::MemorySpace& space_;
  xdr::Decoder& dec_;
  LeafCache leaves_;
  std::unordered_map<msr::BlockId, msr::BlockId> binding_;
  std::vector<Pending> stack_;
  bool auto_bind_ = false;

  // Source architecture (for BODY_RAW bodies): layouts under the source
  // arch, a flat-leaf cache per type, and a staging buffer for the
  // heterogeneous conversion path.
  const xdr::ArchDescriptor* src_arch_;
  ti::LayoutMap src_layouts_;
  bool same_model_;
  std::unordered_map<ti::TypeId, std::vector<ti::LeafRef>> src_leaf_cache_;
  std::unordered_map<ti::TypeId, StagedPlan> staged_plans_;
  std::vector<std::uint8_t> raw_buf_;

  // `msrm.restore.*` instruments (process-wide registry) and the
  // traversal-depth histogram.
  obs::Counter& blocks_created_;
  obs::Counter& blocks_bound_;
  obs::Counter& refs_resolved_;
  obs::Counter& nulls_restored_;
  obs::Counter& prim_leaves_;
  obs::Counter& ptr_leaves_;
  obs::Counter& bulk_bodies_;   ///< BODY_RAW bodies memcpy'd
  obs::Counter& bulk_bytes_;    ///< bytes those bodies carried
  obs::Counter& staged_runs_;          ///< batched run ops executed
  obs::Counter& staged_run_bytes_;     ///< bytes those runs converted
  obs::Counter& staged_scalar_leaves_; ///< leaves that stayed scalar
  obs::Histogram& depth_hist_;  ///< `msrm.restore.depth`
};

}  // namespace hpm::msrm
