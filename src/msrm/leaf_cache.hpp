// Shared flattened-leaf cache for the collection/restoration hot loops.
//
// leaf_at()/for_each_leaf() walk the type structure on every call; the
// engines instead flatten each pointer-containing type once per (table,
// arch) into a vector of LeafRefs and then iterate that flat list per
// element. Pointer-free types never get a list — they take the bulk
// encode/decode path — so a `double[1000000]` matrix costs no cache
// memory.
#pragma once

#include <unordered_map>
#include <vector>

#include "msr/space.hpp"

namespace hpm::msrm {

class LeafCache {
 public:
  explicit LeafCache(const msr::MemorySpace& space) : space_(&space) {}

  /// Flat leaf list for one element of `type` under the space's layout.
  const std::vector<ti::LeafRef>& of(ti::TypeId type) {
    const auto it = cache_.find(type);
    if (it != cache_.end()) return it->second;
    std::vector<ti::LeafRef> list;
    ti::for_each_leaf(space_->leaves(), space_->layouts(), type,
                      [&list](const ti::LeafRef& ref) { list.push_back(ref); });
    return cache_.emplace(type, std::move(list)).first->second;
  }

 private:
  const msr::MemorySpace* space_;
  std::unordered_map<ti::TypeId, std::vector<ti::LeafRef>> cache_;
};

}  // namespace hpm::msrm
