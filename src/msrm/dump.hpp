// Human-readable migration-stream dumps.
//
// Walks the full stream grammar (header, embedded TI table, execution
// state, PtrVal records, trailer) and renders it as indented text — the
// tool you want when a destination rejects a stream and you need to see
// exactly what the source put on the wire.
#pragma once

#include <string>

#include "xdr/wire.hpp"

namespace hpm::msrm {

struct DumpOptions {
  bool show_primitive_values = false;  ///< print every leaf (verbose)
  std::size_t max_blocks = 10000;      ///< stop expanding after this many PNEWs
};

/// Render a complete migration stream (as produced by MigContext
/// collection). Throws hpm::WireError on corrupt streams — the dump is
/// also a validator.
std::string dump_stream(std::span<const std::uint8_t> stream, const DumpOptions& options = {});

}  // namespace hpm::msrm
