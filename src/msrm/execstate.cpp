#include "msrm/execstate.hpp"

namespace hpm::msrm {

void ExecutionState::encode(xdr::Encoder& enc) const {
  auto put_vars = [&enc](const std::vector<SavedVar>& vars) {
    enc.put_u32(static_cast<std::uint32_t>(vars.size()));
    for (const SavedVar& v : vars) {
      enc.put_string(v.name);
      enc.put_u32(v.type);
      enc.put_u32(v.count);
      enc.put_u64(v.source_block);
    }
  };
  enc.put_u32(static_cast<std::uint32_t>(frames.size()));
  for (const SavedFrame& f : frames) {
    enc.put_string(f.func);
    enc.put_u32(f.resume_point);
    put_vars(f.vars);
  }
  put_vars(globals);
}

ExecutionState ExecutionState::decode(xdr::Decoder& dec) {
  auto get_vars = [&dec]() {
    const std::uint32_t n = dec.get_u32();
    std::vector<SavedVar> vars;
    vars.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      SavedVar v;
      v.name = dec.get_string();
      v.type = dec.get_u32();
      v.count = dec.get_u32();
      v.source_block = dec.get_u64();
      vars.push_back(std::move(v));
    }
    return vars;
  };
  ExecutionState state;
  const std::uint32_t nframes = dec.get_u32();
  state.frames.reserve(nframes);
  for (std::uint32_t i = 0; i < nframes; ++i) {
    SavedFrame f;
    f.func = dec.get_string();
    f.resume_point = dec.get_u32();
    f.vars = get_vars();
    state.frames.push_back(std::move(f));
  }
  state.globals = get_vars();
  return state;
}

}  // namespace hpm::msrm
