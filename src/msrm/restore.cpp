#include "msrm/restore.hpp"

#include <cstring>

#include "common/error.hpp"
#include "xdr/batch.hpp"
#include "xdr/value.hpp"

namespace hpm::msrm {

Restorer::Restorer(msr::MemorySpace& space, xdr::Decoder& dec)
    : Restorer(space, dec, space.arch()) {}

Restorer::Restorer(msr::MemorySpace& space, xdr::Decoder& dec,
                   const xdr::ArchDescriptor& source_arch)
    : space_(space),
      dec_(dec),
      leaves_(space),
      src_arch_(&source_arch),
      src_layouts_(space.types(), source_arch),
      same_model_(source_arch.same_data_model(space.arch())),
      blocks_created_(obs::Registry::process().counter("msrm.restore.blocks_created")),
      blocks_bound_(obs::Registry::process().counter("msrm.restore.blocks_bound")),
      refs_resolved_(obs::Registry::process().counter("msrm.restore.refs_resolved")),
      nulls_restored_(obs::Registry::process().counter("msrm.restore.nulls_restored")),
      prim_leaves_(obs::Registry::process().counter("msrm.restore.prim_leaves")),
      ptr_leaves_(obs::Registry::process().counter("msrm.restore.ptr_leaves")),
      bulk_bodies_(obs::Registry::process().counter("msrm.restore.bulk_bodies")),
      bulk_bytes_(obs::Registry::process().counter("msrm.restore.bulk_bytes")),
      staged_runs_(obs::Registry::process().counter("msrm.restore.staged_runs")),
      staged_run_bytes_(obs::Registry::process().counter("msrm.restore.staged_run_bytes")),
      staged_scalar_leaves_(obs::Registry::process().counter("msrm.restore.staged_scalar_leaves")),
      depth_hist_(obs::Registry::process().histogram("msrm.restore.depth")) {}

void Restorer::bind(msr::BlockId source_id, msr::BlockId dest_id, ti::TypeId type,
                    std::uint32_t count) {
  const msr::MemoryBlock* dest = space_.msrlt().find_id(dest_id);
  if (dest == nullptr) throw MsrError("bind: destination block does not exist");
  if (dest->type != type || dest->count != count) {
    throw MsrError("bind: destination block '" + dest->name +
                   "' does not match the migrated variable's type/count");
  }
  if (!binding_.emplace(source_id, dest_id).second) {
    throw MsrError("bind: source id already bound");
  }
}

msr::BlockId Restorer::dest_of(msr::BlockId source_id) const {
  const auto it = binding_.find(source_id);
  return it == binding_.end() ? msr::kInvalidBlock : it->second;
}

msr::BlockId Restorer::restore_variable() {
  const msr::Address addr = restore_pointer();
  if (addr == 0) throw WireError("variable record decoded to a null pointer");
  const msr::MemoryBlock* block = space_.msrlt().find_containing(addr);
  if (block == nullptr || block->base != addr) {
    throw WireError("variable record does not denote a block base");
  }
  return block->id;
}

msr::Address Restorer::restore_pointer() {
  const msr::Address addr = decode_ptr_value();
  drain();
  return addr;
}

const msr::MemoryBlock& Restorer::materialize_pnew(msr::BlockId src_id, std::uint8_t segment,
                                                   ti::TypeId type, std::uint32_t count) {
  const auto seg = static_cast<msr::Segment>(segment);
  if (segment > 2) throw WireError("corrupt stream: bad segment tag");
  const auto it = binding_.find(src_id);
  if (it != binding_.end()) {
    const msr::MemoryBlock* dest = space_.msrlt().find_id(it->second);
    if (dest == nullptr) throw MsrError("bound destination block vanished");
    if (dest->type != type || dest->count != count) {
      throw WireError("PNEW type/count disagrees with bound destination block '" +
                      dest->name + "'");
    }
    blocks_bound_.add(1);
    return *dest;
  }
  if (seg != msr::Segment::Heap && !auto_bind_) {
    throw MsrError("PNEW for unbound " + std::string(msr::segment_name(seg)) +
                   " block: the destination frame/global was not re-registered");
  }
  const std::uint64_t size = space_.block_size(type, count);
  const msr::Address base = space_.allocate(size);
  const msr::BlockId dest_id =
      space_.msrlt().register_block(seg, base, size, type, count, std::string{});
  binding_.emplace(src_id, dest_id);
  blocks_created_.add(1);
  return *space_.msrlt().find_id(dest_id);
}

msr::Address Restorer::decode_ptr_value() {
  const std::uint8_t tag = dec_.get_u8();
  switch (tag) {
    case kPtrNull:
      nulls_restored_.add(1);
      return 0;
    case kPtrRef: {
      const msr::BlockId src_id = dec_.get_u64();
      const std::uint64_t leaf = dec_.get_u64();
      const msr::BlockId dest = dest_of(src_id);
      if (dest == msr::kInvalidBlock) {
        throw WireError("PREF to a block that was never transferred (corrupt stream)");
      }
      refs_resolved_.add(1);
      return msr::address_of(space_, msr::LogicalPointer{dest, leaf});
    }
    case kPtrNew: {
      const msr::BlockId src_id = dec_.get_u64();
      const std::uint64_t leaf = dec_.get_u64();
      const std::uint8_t segment = dec_.get_u8();
      const ti::TypeId type = dec_.get_u32();
      const std::uint32_t count = dec_.get_u32();
      space_.types().at(type);  // validate id against the shared TI table
      const msr::MemoryBlock& dest = materialize_pnew(src_id, segment, type, count);
      const msr::Address target = msr::address_of(space_, msr::LogicalPointer{dest.id, leaf});
      if (space_.types().bulk_eligible(type)) {
        decode_flat(dest);
      } else {
        Pending p;
        p.block = &dest;
        p.leaf_list = &leaves_.of(type);
        p.elem_size = space_.layouts().of(type).size;
        p.elem_idx = 0;
        p.leaf_idx = 0;
        stack_.push_back(p);
        depth_hist_.record(static_cast<double>(stack_.size()));
      }
      return target;
    }
    default:
      throw WireError("corrupt stream: expected a pointer-value tag, got " +
                      std::to_string(tag));
  }
}

const std::vector<ti::LeafRef>& Restorer::src_leaves_of(ti::TypeId type) {
  const auto it = src_leaf_cache_.find(type);
  if (it != src_leaf_cache_.end()) return it->second;
  std::vector<ti::LeafRef> list;
  ti::for_each_leaf(space_.leaves(), src_layouts_, type,
                    [&list](const ti::LeafRef& ref) { list.push_back(ref); });
  return src_leaf_cache_.emplace(type, std::move(list)).first->second;
}

const Restorer::StagedPlan& Restorer::staged_plan_of(ti::TypeId type) {
  const auto it = staged_plans_.find(type);
  if (it != staged_plans_.end()) return it->second;

  // Fuse the per-element leaf walk into runs. A leaf joins a run when it
  // has the same width on both architectures (so its conversion is a pure
  // byte move / lane reverse), that width is a power of two the kernels
  // handle, it is not a Bool (write_prim normalizes those), and it abuts
  // the previous leaf in BOTH layouts. Copy-class runs (matching byte
  // orders, or 1-byte lanes) may mix widths; byteswap runs must keep one
  // lane width. Everything else stays on the scalar read_raw/write_prim
  // path, which keeps narrowing overflow detection.
  const std::vector<ti::LeafRef>& src_list = src_leaves_of(type);
  const std::vector<ti::LeafRef>& dst_list = leaves_.of(type);
  const bool order_differs = src_arch_->order != space_.arch().order;

  StagedPlan plan;
  for (std::uint32_t i = 0; i < src_list.size(); ++i) {
    const ti::LeafRef& src = src_list[i];
    const ti::LeafRef& dst = dst_list[i];
    const std::uint8_t w = src_arch_->layout(src.prim).size;
    const bool batchable = src.prim != xdr::PrimKind::Bool &&
                           w == space_.arch().layout(dst.prim).size &&
                           (w == 1 || w == 2 || w == 4 || w == 8);
    if (!batchable) {
      StagedOp op;
      op.first = i;
      plan.ops.push_back(op);
      ++plan.scalar_ops;
      continue;
    }
    const bool swap = order_differs && w > 1;
    StagedOp* prev = plan.ops.empty() ? nullptr : &plan.ops.back();
    const bool extends = prev != nullptr && prev->count > 0 && prev->swap == swap &&
                         (!swap || prev->width == w) &&
                         src.byte_offset == prev->src_off + prev->bytes &&
                         dst.byte_offset == prev->dst_off + prev->bytes;
    if (extends) {
      prev->count += 1;
      prev->bytes += w;
      plan.run_bytes += w;
      continue;
    }
    StagedOp op;
    op.first = i;
    op.count = 1;
    op.width = w;
    op.swap = swap;
    op.src_off = src.byte_offset;
    op.dst_off = dst.byte_offset;
    op.bytes = w;
    plan.ops.push_back(op);
    ++plan.run_ops;
    plan.run_bytes += w;
  }
  return staged_plans_.emplace(type, std::move(plan)).first->second;
}

void Restorer::decode_flat(const msr::MemoryBlock& block) {
  const std::uint8_t body = dec_.get_u8();
  if (body == kBodyCanonical) {
    const std::uint64_t elem_size = space_.layouts().of(block.type).size;
    for (std::uint32_t e = 0; e < block.count; ++e) {
      decode_flat_type(block.base + e * elem_size, block.type);
    }
    return;
  }
  if (body != kBodyRaw) {
    throw WireError("corrupt stream: expected a flat-body tag, got " + std::to_string(body));
  }
  const std::uint64_t nbytes = dec_.get_u64();
  const std::uint64_t leaf_total = space_.leaves().count(block.type) * block.count;
  if (same_model_) {
    // Same data model: the raw image IS the destination layout.
    if (nbytes != block.size) {
      throw WireError("raw body size disagrees with the destination block");
    }
    if (std::uint8_t* out = space_.raw_mut(block.base, block.size)) {
      dec_.get_bytes(out, block.size);
      bulk_bodies_.add(1);
      bulk_bytes_.add(nbytes);
      prim_leaves_.add(leaf_total);
      return;
    }
  }
  // Heterogeneous source (or no contiguous destination storage): stage
  // the source image and convert leaf-by-leaf under the source layout.
  // Leaf enumeration order is arch-independent, so the source and
  // destination offset walks zip ordinal-for-ordinal.
  const std::uint64_t src_elem = src_layouts_.of(block.type).size;
  if (nbytes != src_elem * block.count) {
    throw WireError("raw body size disagrees with the source layout");
  }
  raw_buf_.resize(nbytes);
  dec_.get_bytes(raw_buf_.data(), nbytes);
  const std::vector<ti::LeafRef>& src_list = src_leaves_of(block.type);
  const std::vector<ti::LeafRef>& dst_list = leaves_.of(block.type);
  const std::uint64_t dst_elem = space_.layouts().of(block.type).size;
  std::uint8_t* raw_out = space_.raw_mut(block.base, block.size);
  if (raw_out != nullptr) {
    // Batched conversion: replay the fused per-element plan, one memcpy /
    // byteswap sweep per run instead of one scalar round trip per leaf.
    const StagedPlan& plan = staged_plan_of(block.type);
    for (std::uint32_t e = 0; e < block.count; ++e) {
      const std::uint8_t* in = raw_buf_.data() + e * src_elem;
      std::uint8_t* out = raw_out + e * dst_elem;
      for (const StagedOp& op : plan.ops) {
        if (op.count == 0) {
          space_.write_prim(block.base + e * dst_elem + dst_list[op.first].byte_offset,
                            dst_list[op.first].prim,
                            xdr::read_raw(in + src_list[op.first].byte_offset, *src_arch_,
                                          src_list[op.first].prim));
        } else if (!op.swap) {
          std::memcpy(out + op.dst_off, in + op.src_off, op.bytes);
        } else {
          xdr::bswap_run(out + op.dst_off, in + op.src_off, op.count, op.width);
        }
      }
    }
    staged_runs_.add(std::uint64_t{plan.run_ops} * block.count);
    staged_run_bytes_.add(plan.run_bytes * block.count);
    staged_scalar_leaves_.add(std::uint64_t{plan.scalar_ops} * block.count);
  } else {
    // No contiguous destination storage: scalar conversion per leaf.
    for (std::uint32_t e = 0; e < block.count; ++e) {
      const std::uint8_t* in = raw_buf_.data() + e * src_elem;
      const msr::Address out = block.base + e * dst_elem;
      for (std::size_t i = 0; i < src_list.size(); ++i) {
        space_.write_prim(out + dst_list[i].byte_offset, dst_list[i].prim,
                          xdr::read_raw(in + src_list[i].byte_offset, *src_arch_,
                                        src_list[i].prim));
      }
    }
    staged_scalar_leaves_.add(leaf_total);
  }
  prim_leaves_.add(leaf_total);
}

void Restorer::decode_flat_type(msr::Address base, ti::TypeId type) {
  const ti::TypeInfo& info = space_.types().at(type);
  switch (info.kind) {
    case ti::TypeKind::Primitive:
      space_.write_prim(base, info.prim, xdr::decode_canonical(dec_, info.prim));
      prim_leaves_.add(1);
      return;
    case ti::TypeKind::Pointer:
      throw MsrError("decode_flat_type reached a pointer (contains_pointer lied)");
    case ti::TypeKind::Array: {
      const std::uint64_t elem_size = space_.layouts().of(info.elem).size;
      for (std::uint32_t i = 0; i < info.count; ++i) {
        decode_flat_type(base + i * elem_size, info.elem);
      }
      return;
    }
    case ti::TypeKind::Struct: {
      const ti::TypeLayout& sl = space_.layouts().of(type);
      for (std::size_t i = 0; i < info.fields.size(); ++i) {
        decode_flat_type(base + sl.field_offsets[i], info.fields[i].type);
      }
      return;
    }
  }
}

void Restorer::drain() {
  while (!stack_.empty()) {
    const std::size_t my_index = stack_.size() - 1;
    bool suspended = false;
    for (;;) {
      Pending cur = stack_[my_index];
      if (cur.elem_idx >= cur.block->count) break;
      if (cur.leaf_idx >= cur.leaf_list->size()) {
        stack_[my_index].elem_idx = cur.elem_idx + 1;
        stack_[my_index].leaf_idx = 0;
        continue;
      }
      const ti::LeafRef& ref = (*cur.leaf_list)[cur.leaf_idx];
      const msr::Address cell =
          cur.block->base + cur.elem_idx * cur.elem_size + ref.byte_offset;
      stack_[my_index].leaf_idx = cur.leaf_idx + 1;
      if (!ref.is_pointer) {
        space_.write_prim(cell, ref.prim, xdr::decode_canonical(dec_, ref.prim));
        prim_leaves_.add(1);
      } else {
        ptr_leaves_.add(1);
        const msr::Address value = decode_ptr_value();
        space_.write_pointer(cell, value);
        if (stack_.size() > my_index + 1) {
          suspended = true;
          break;
        }
      }
    }
    if (!suspended) stack_.pop_back();
  }
}

}  // namespace hpm::msrm
