// Parallel data collection: partition the root set across a small worker
// pool so independent subgraphs are collected concurrently, while the
// merged stream stays bit-identical to the serial Collector's.
//
// Determinism argument (DESIGN.md §14): in the serial traversal, a block
// is emitted as PNEW by the FIRST root (in root order) that reaches it,
// and as PREF everywhere else. Equivalently, ownership(block) = min rank
// over roots that reach it. The parallel path computes exactly that
// min-rank relation with a lock-free CAS-min ownership pass over a frozen
// index, then replays each root's DFS against the precomputed ownership:
// a block is NEW for root r iff owner == r and it is r's own first
// encounter (per-root visited epoch), which is precisely the serial
// criterion. Per-root streams are therefore byte-identical to the serial
// stream's per-root segments, and the rank-ordered merge reproduces the
// serial stream exactly — chunking sinks, digests, and the destination
// decoder cannot tell the difference.
//
// The space's read paths (read_prim/read_pointer/raw_view) must be safe
// for concurrent readers; HostSpace qualifies (plain loads). All lazy
// type-metadata memos (layouts, leaf counts, flat leaf lists) are
// prewarmed before workers start so the hot phase is read-only.
#pragma once

#include <vector>

#include "msr/space.hpp"
#include "xdr/wire.hpp"

namespace hpm::msrm {

/// Collect every root (a tracked block base, in the paper's
/// innermost-frame-first order) and all state reachable from it into
/// `enc`, one PtrVal record per root. `threads <= 1` runs the serial
/// Collector — today's behavior, bit for bit; `threads > 1` runs the
/// ownership-partitioned parallel path described above, which emits the
/// same bytes. `msrm.collect.par.*` metrics cover the parallel path.
void collect_roots(msr::MemorySpace& space, xdr::Encoder& enc,
                   const std::vector<msr::Address>& roots, unsigned threads);

}  // namespace hpm::msrm
