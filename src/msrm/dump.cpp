#include "msrm/dump.hpp"

#include "common/error.hpp"
#include "msrm/execstate.hpp"
#include "msrm/stream.hpp"
#include "ti/leaf.hpp"
#include "xdr/value.hpp"

namespace hpm::msrm {

namespace {

/// Stateful walker over the data section: mirrors the decoder's grammar
/// without materializing any memory.
class Dumper {
 public:
  Dumper(const ti::TypeTable& table, const xdr::ArchDescriptor& source_arch,
         xdr::Decoder& dec, const DumpOptions& options, std::string& out)
      : table_(table),
        src_arch_(source_arch),
        src_layouts_(table, source_arch),
        leaves_(table),
        dec_(dec),
        options_(options),
        out_(out) {}

  void ptr_value(int indent) {
    const std::uint8_t tag = dec_.get_u8();
    switch (tag) {
      case kPtrNull:
        line(indent, "null");
        return;
      case kPtrRef: {
        const std::uint64_t id = dec_.get_u64();
        const std::uint64_t leaf = dec_.get_u64();
        line(indent, "ref block=" + block_name(id) + " leaf=" + std::to_string(leaf));
        return;
      }
      case kPtrNew: {
        const std::uint64_t id = dec_.get_u64();
        const std::uint64_t leaf = dec_.get_u64();
        const std::uint8_t seg = dec_.get_u8();
        const ti::TypeId type = dec_.get_u32();
        const std::uint32_t count = dec_.get_u32();
        ++blocks_seen_;
        line(indent, "new block=" + block_name(id) + " leaf=" + std::to_string(leaf) +
                         " seg=" + std::string(msr::segment_name(
                                       static_cast<msr::Segment>(seg))) +
                         " type=" + table_.spell(type) +
                         (count > 1 ? "[" + std::to_string(count) + "]" : ""));
        body(type, count, indent + 1);
        return;
      }
      default:
        throw WireError("dump: unexpected tag " + std::to_string(tag));
    }
  }

  [[nodiscard]] std::uint64_t blocks_seen() const noexcept { return blocks_seen_; }

 private:
  static std::string block_name(std::uint64_t id) {
    return std::string(msr::segment_name(msr::block_segment(id))) + "#" +
           std::to_string(msr::block_seq(id));
  }

  void line(int indent, const std::string& text) {
    if (suppressed_) return;
    out_.append(static_cast<std::size_t>(indent) * 2, ' ');
    out_ += text;
    out_ += '\n';
  }

  void body(ti::TypeId type, std::uint32_t count, int indent) {
    const bool deep = blocks_seen_ > options_.max_blocks;
    if (deep && !suppressed_) {
      line(indent, "... (output truncated; stream still being validated)");
      suppressed_ = true;
    }
    // Pointer-free bodies are self-describing (FlatBody tag).
    if (table_.bulk_eligible(type)) {
      const std::uint8_t body_tag = dec_.get_u8();
      if (body_tag == kBodyRaw) {
        raw_body(type, count, indent);
        return;
      }
      if (body_tag != kBodyCanonical) {
        throw WireError("dump: unexpected flat-body tag " + std::to_string(body_tag));
      }
    }
    std::uint64_t prim_run = 0;
    for (std::uint32_t e = 0; e < count; ++e) {
      ti::for_each_leaf(leaves_, layouts_, type, [&](const ti::LeafRef& ref) {
        if (ref.is_pointer) {
          flush_run(indent, prim_run);
          ptr_value(indent);
          return;
        }
        const xdr::PrimValue v = xdr::decode_canonical(dec_, ref.prim);
        if (options_.show_primitive_values) {
          line(indent, prim_text(v));
        } else {
          ++prim_run;
        }
      });
    }
    flush_run(indent, prim_run);
  }

  /// A BODY_RAW body: source-layout bytes. Values are read back through
  /// the source architecture descriptor the header named.
  void raw_body(ti::TypeId type, std::uint32_t count, int indent) {
    const std::uint64_t nbytes = dec_.get_u64();
    if (nbytes > dec_.remaining()) {
      throw WireError("dump: raw body larger than the remaining stream");
    }
    std::vector<std::uint8_t> raw(static_cast<std::size_t>(nbytes));
    dec_.get_bytes(raw.data(), raw.size());
    const std::uint64_t elem_size = src_layouts_.of(type).size;
    if (nbytes != elem_size * count) {
      throw WireError("dump: raw body size disagrees with the source layout");
    }
    if (!options_.show_primitive_values) {
      line(indent, "(raw body, " + std::to_string(nbytes) + " source-layout bytes, " +
                       std::to_string(leaves_.count(type) * count) + " leaves)");
      return;
    }
    for (std::uint32_t e = 0; e < count; ++e) {
      const std::uint8_t* base = raw.data() + e * elem_size;
      ti::for_each_leaf(leaves_, src_layouts_, type, [&](const ti::LeafRef& ref) {
        line(indent, prim_text(xdr::read_raw(base + ref.byte_offset, src_arch_, ref.prim)));
      });
    }
  }

  void flush_run(int indent, std::uint64_t& run) {
    if (run > 0) {
      line(indent, "(" + std::to_string(run) + " primitive leaves)");
      run = 0;
    }
  }

  static std::string prim_text(const xdr::PrimValue& v) {
    switch (xdr::prim_class(v.kind)) {
      case xdr::PrimClass::Floating:
        return std::string(xdr::prim_name(v.kind)) + " " + std::to_string(v.f);
      case xdr::PrimClass::Unsigned:
        return std::string(xdr::prim_name(v.kind)) + " " + std::to_string(v.u);
      case xdr::PrimClass::Signed:
        return std::string(xdr::prim_name(v.kind)) + " " + std::to_string(v.s);
    }
    return "?";
  }

  const ti::TypeTable& table_;
  const xdr::ArchDescriptor& src_arch_;
  ti::LayoutMap src_layouts_;
  ti::LayoutMap layouts_{table_, xdr::native_arch()};  // offsets unused; leaves only
  ti::LeafIndex leaves_;
  xdr::Decoder& dec_;
  const DumpOptions& options_;
  std::string& out_;
  std::uint64_t blocks_seen_ = 0;
  bool suppressed_ = false;
};

}  // namespace

std::string dump_stream(std::span<const std::uint8_t> stream, const DumpOptions& options) {
  std::string out;
  const auto payload = check_stream(stream);
  xdr::Decoder dec(payload);
  const StreamHeader header = read_header(dec);
  out += "migration stream: " + std::to_string(stream.size()) + " bytes, source arch " +
         header.source_arch + ", ti signature " + std::to_string(header.ti_signature) +
         "\n";
  const ti::TypeTable table = ti::TypeTable::decode(dec);
  out += "type table: " + std::to_string(table.size()) + " types\n";
  const ExecutionState state = ExecutionState::decode(dec);
  out += "execution state: " + std::to_string(state.frames.size()) + " frames, " +
         std::to_string(state.globals.size()) + " globals\n";
  for (std::size_t i = 0; i < state.frames.size(); ++i) {
    const SavedFrame& f = state.frames[i];
    out += "  frame[" + std::to_string(i) + "] " + f.func + " resume@" +
           std::to_string(f.resume_point) + "\n";
    for (const SavedVar& v : f.vars) {
      out += "    var " + v.name + " : " + table.spell(v.type) +
             (v.count > 1 ? "[" + std::to_string(v.count) + "]" : "") + "\n";
    }
  }
  for (const SavedVar& v : state.globals) {
    out += "  global " + v.name + " : " + table.spell(v.type) +
           (v.count > 1 ? "[" + std::to_string(v.count) + "]" : "") + "\n";
  }

  out += "data section:\n";
  Dumper dumper(table, xdr::arch_by_name(header.source_arch), dec, options, out);
  // Collection order: frames innermost-first, then globals.
  for (std::size_t i = state.frames.size(); i-- > 0;) {
    for (const SavedVar& v : state.frames[i].vars) {
      out += " record (frame " + state.frames[i].func + ", var " + v.name + "):\n";
      dumper.ptr_value(2);
    }
  }
  for (const SavedVar& v : state.globals) {
    out += " record (global " + v.name + "):\n";
    dumper.ptr_value(2);
  }
  if (!dec.at_end()) {
    throw WireError("dump: " + std::to_string(dec.remaining()) +
                    " unexpected trailing bytes");
  }
  out += "total blocks on wire: " + std::to_string(dumper.blocks_seen()) + "\n";
  return out;
}

}  // namespace hpm::msrm
