// Migration stream framing: header, trailer, and the pointer-value tags.
//
// Grammar (canonical encoding throughout):
//
//   Stream  := Header ...payload... Trailer
//   Header  := u32 'HPMG' | u16 version | str source-arch | u64 ti-signature
//   Trailer := u8 0x7E | u32 crc32(everything before the trailer)
//
//   PtrVal  := u8 PNULL
//            | u8 PREF  u64 block-id u64 leaf-ordinal
//            | u8 PNEW  u64 block-id u64 leaf-ordinal
//                       u8 segment u32 type-id u32 elem-count  Body
//   Body    := elem-count * leaves(type)   -- primitives canonical;
//                                          -- pointer leaves are PtrVals,
//                                          -- nested depth-first
//
// PNEW appears exactly once per memory block per migration (the paper's
// visited marking); every later reference is a PREF. The decoder creates
// or binds a block the moment it reads a PNEW header, before descending
// into the body, so all back and cross edges resolve immediately.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "xdr/wire.hpp"

namespace hpm::msrm {

inline constexpr std::uint32_t kMagic = 0x48504D47;  // "HPMG"
inline constexpr std::uint16_t kVersion = 1;

/// Pointer-value tags.
enum : std::uint8_t {
  kPtrNull = 0x10,
  kPtrRef = 0x11,
  kPtrNew = 0x12,
};

inline constexpr std::uint8_t kTrailerTag = 0x7E;

struct StreamHeader {
  std::string source_arch;
  std::uint64_t ti_signature = 0;
};

void write_header(xdr::Encoder& enc, const StreamHeader& header);

/// Reads and validates magic + version; throws hpm::WireError on mismatch.
StreamHeader read_header(xdr::Decoder& dec);

/// Append the CRC trailer; call once, after all payload.
void finish_stream(xdr::Encoder& enc);

/// Validate the trailer and return the payload span (header included,
/// trailer excluded). Throws hpm::WireError on corruption or truncation.
std::span<const std::uint8_t> check_stream(std::span<const std::uint8_t> stream);

}  // namespace hpm::msrm
