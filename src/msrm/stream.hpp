// Migration stream framing: header, trailer, and the pointer-value tags.
//
// Grammar (canonical encoding throughout):
//
//   Stream  := Header ...payload... Trailer
//   Header  := u32 'HPMG' | u16 version | str source-arch | u64 ti-signature
//   Trailer := u8 0x7E | u32 crc32(everything before the trailer)
//
//   PtrVal  := u8 PNULL
//            | u8 PREF  u64 block-id u64 leaf-ordinal
//            | u8 PNEW  u64 block-id u64 leaf-ordinal
//                       u8 segment u32 type-id u32 elem-count  Body
//   Body    := FlatBody                    -- pointer-free types
//            | elem-count * leaves(type)   -- primitives canonical;
//                                          -- pointer leaves are PtrVals,
//                                          -- nested depth-first
//   FlatBody := u8 BODY_CANON  elem-count * leaves(type)  (canonical)
//             | u8 BODY_RAW    u64 nbytes  raw source-layout bytes
//
// PNEW appears exactly once per memory block per migration (the paper's
// visited marking); every later reference is a PREF. The decoder creates
// or binds a block the moment it reads a PNEW header, before descending
// into the body, so all back and cross edges resolve immediately.
//
// Pointer-free bodies are self-describing (FlatBody tag): BODY_RAW is
// the same-architecture bulk fast path — the block's bytes verbatim in
// the *source's* layout, memcpy'd when source and destination share a
// data model and converted leaf-by-leaf (source-arch layout walk)
// otherwise. BODY_CANON is the per-element canonical encoding used when
// the source space cannot expose contiguous raw storage.
//
// Because every construct is emitted depth-first with PNEW preceding any
// reference to its block, every prefix of the payload is decodable — the
// property the chunked/pipelined transfer of src/mig relies on to start
// restoration before the stream ends. The chunking itself lives in the
// message layer (net::MsgType::StateBegin/StateChunk/StateEnd); chunk
// boundaries are byte-positional and carry no grammar significance.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/crc32.hpp"
#include "xdr/wire.hpp"

namespace hpm::msrm {

inline constexpr std::uint32_t kMagic = 0x48504D47;  // "HPMG"
// v2 added the self-describing FlatBody tag for pointer-free PNEW bodies.
inline constexpr std::uint16_t kVersion = 2;

/// Pointer-value tags.
enum : std::uint8_t {
  kPtrNull = 0x10,
  kPtrRef = 0x11,
  kPtrNew = 0x12,
};

/// FlatBody tags (pointer-free PNEW bodies only).
enum : std::uint8_t {
  kBodyCanonical = 0x20,  ///< per-element canonical primitives
  kBodyRaw = 0x21,        ///< u64 nbytes + raw source-layout bytes
};

inline constexpr std::uint8_t kTrailerTag = 0x7E;

struct StreamHeader {
  std::string source_arch;
  std::uint64_t ti_signature = 0;
};

void write_header(xdr::Encoder& enc, const StreamHeader& header);

/// Reads and validates magic + version; throws hpm::WireError on mismatch.
StreamHeader read_header(xdr::Decoder& dec);

/// Append the CRC trailer; call once, after all payload.
void finish_stream(xdr::Encoder& enc);

/// Validate the trailer and return the payload span (header included,
/// trailer excluded). Throws hpm::WireError on corruption or truncation.
std::span<const std::uint8_t> check_stream(std::span<const std::uint8_t> stream);

/// Running end-to-end digest over the canonical stream: FNV-1a 64 composed
/// with a CRC-32, folded into one u64. The two mix functions have
/// independent failure modes — FNV-1a is order-sensitive byte hashing,
/// CRC-32 is a polynomial code — so a corruption crafted to pass one
/// (e.g. a frame whose trailing CRC was recomputed in flight) still trips
/// the other. The source taps collection chunk by chunk; the destination
/// recomputes over the reassembled stream and compares before Commit.
///
/// Also the content address of the dedup'd transfer: a chunk's
/// mig::ChunkAddr is `of(body)` plus the body length (DESIGN.md §15),
/// which is why the canonical stream must stay deterministic for a given
/// process state — addresses are only stable because the bytes are.
class StreamDigest {
 public:
  void update(std::span<const std::uint8_t> bytes) noexcept;
  /// Digest of everything fed so far. Stable across update() granularity:
  /// one call over the whole stream equals many calls over its chunks.
  [[nodiscard]] std::uint64_t value() const noexcept;

  static std::uint64_t of(std::span<const std::uint8_t> bytes) noexcept {
    StreamDigest d;
    d.update(bytes);
    return d.value();
  }

 private:
  std::uint64_t fnv_ = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  Crc32 crc_;
};

}  // namespace hpm::msrm
