// Wire-side execution-state model: which functions were active, where
// each resumes, and which live variables each carried.
//
// This lives in the msrm layer (not the mig runtime) because it is part
// of the stream format: the same records are consumed by the restoration
// runtime and by stream tooling (msrm::dump_stream).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "msr/block.hpp"
#include "ti/type.hpp"
#include "xdr/wire.hpp"

namespace hpm::msrm {

struct SavedVar {
  std::string name;
  ti::TypeId type = ti::kInvalidType;
  std::uint32_t count = 1;
  msr::BlockId source_block = msr::kInvalidBlock;
};

/// One frame of the saved call stack (outermost first on the wire).
struct SavedFrame {
  std::string func;
  std::uint32_t resume_point = 0;  ///< poll-point / call-site label to jump to
  std::vector<SavedVar> vars;
};

/// The saved execution state: active frames plus the program's globals.
struct ExecutionState {
  std::vector<SavedFrame> frames;  ///< outermost first
  std::vector<SavedVar> globals;

  void encode(xdr::Encoder& enc) const;
  static ExecutionState decode(xdr::Decoder& dec);
};

}  // namespace hpm::msrm
