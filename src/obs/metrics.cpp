#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/json.hpp"

namespace hpm::obs {

namespace {

double unit_base(Unit unit) noexcept {
  switch (unit) {
    case Unit::Seconds: return 1e-9;  // 1 ns
    case Unit::Bytes:
    case Unit::None: return 1.0;
  }
  return 1.0;
}

}  // namespace

const char* unit_name(Unit unit) noexcept {
  switch (unit) {
    case Unit::None: return "none";
    case Unit::Seconds: return "seconds";
    case Unit::Bytes: return "bytes";
  }
  return "?";
}

Histogram::Histogram(Unit unit) : unit_(unit), base_(unit_base(unit)) {}

int Histogram::bucket_index(double value) const noexcept {
  if (!(value >= base_)) return 0;  // also catches NaN and negatives
  const int idx = 1 + static_cast<int>(std::floor(std::log2(value / base_)));
  return std::clamp(idx, 1, kBuckets - 1);
}

std::pair<double, double> Histogram::bucket_bounds(double value) const noexcept {
  const int idx = bucket_index(value);
  const double lo = idx == 0 ? 0.0 : base_ * std::ldexp(1.0, idx - 1);
  const double hi = base_ * std::ldexp(1.0, idx);
  return {lo, hi};
}

void Histogram::record(double value) noexcept {
  if (std::isnan(value)) return;
  std::lock_guard lk(mu_);
  ++buckets_[bucket_index(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::record_batch(const double* values, std::size_t n) noexcept {
  if (n == 0) return;
  std::lock_guard lk(mu_);
  for (std::size_t i = 0; i < n; ++i) {
    const double value = values[i];
    if (std::isnan(value)) continue;
    ++buckets_[bucket_index(value)];
    if (count_ == 0) {
      min_ = max_ = value;
    } else {
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
  }
}

double Histogram::percentile_locked(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (cum + buckets_[i] >= rank) {
      const double lo = i == 0 ? 0.0 : base_ * std::ldexp(1.0, i - 1);
      const double hi = base_ * std::ldexp(1.0, i);
      const double pos =
          static_cast<double>(rank - cum) / static_cast<double>(buckets_[i]);
      return std::clamp(lo + pos * (hi - lo), min_, max_);
    }
    cum += buckets_[i];
  }
  return max_;
}

double Histogram::percentile(double q) const {
  std::lock_guard lk(mu_);
  return percentile_locked(q);
}

HistogramSummary Histogram::summary() const {
  std::lock_guard lk(mu_);
  HistogramSummary s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.p50 = percentile_locked(0.50);
  s.p95 = percentile_locked(0.95);
  s.p99 = percentile_locked(0.99);
  return s;
}

void Histogram::reset() {
  std::lock_guard lk(mu_);
  for (auto& b : buckets_) b = 0;
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(std::string(name));
  return it == gauges.end() ? 0 : it->second;
}

const HistogramSummary* MetricsSnapshot::histogram(std::string_view name) const {
  const auto it = histograms.find(std::string(name));
  return it == histograms.end() ? nullptr : &it->second;
}

MetricsSnapshot MetricsSnapshot::delta_since(const MetricsSnapshot& earlier) const {
  MetricsSnapshot d = *this;
  for (auto& [name, value] : d.counters) {
    const auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) value -= std::min(value, it->second);
  }
  return d;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + json_number(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + json_number(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":{\"count\":" + json_number(h.count) +
           ",\"sum\":" + json_number(h.sum) + ",\"min\":" + json_number(h.min) +
           ",\"max\":" + json_number(h.max) + ",\"p50\":" + json_number(h.p50) +
           ",\"p95\":" + json_number(h.p95) + ",\"p99\":" + json_number(h.p99) + '}';
  }
  out += "}}";
  return out;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>()).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first->second;
}

Histogram& Registry::histogram(std::string_view name, Unit unit) {
  std::lock_guard lk(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>(unit))
              .first->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard lk(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) snap.histograms.emplace(name, h->summary());
  return snap;
}

void Registry::reset_all() {
  std::lock_guard lk(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::process() {
  // Leaked intentionally: instruments are referenced from destructors of
  // static-lifetime objects; the registry must outlive them all.
  static Registry* instance = new Registry();
  return *instance;
}

}  // namespace hpm::obs
