#include "obs/span.hpp"

#include <atomic>
#include <cstdio>

#include "obs/json.hpp"

namespace hpm::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// Per-thread stack of open spans. Entries carry their tracer so
/// independent tracers interleaved on one thread keep separate nesting.
struct OpenEntry {
  const Tracer* tracer;
  std::uint64_t id;
};

std::vector<OpenEntry>& open_stack() {
  thread_local std::vector<OpenEntry> stack;
  return stack;
}

}  // namespace

Tracer::Tracer(Registry* registry) : registry_(registry), epoch_(Clock::now()) {}

Tracer& Tracer::process() {
  // Leaked for the same reason as Registry::process(): spans may finish
  // inside static-lifetime destructors.
  static Tracer* instance = new Tracer(&Registry::process());
  return *instance;
}

std::uint64_t Tracer::open_span(std::string_view /*name*/, std::uint32_t* depth,
                                std::uint64_t* parent) {
  auto& stack = open_stack();
  std::uint32_t d = 0;
  std::uint64_t p = 0;
  for (const OpenEntry& e : stack) {
    if (e.tracer == this) {
      ++d;
      p = e.id;
    }
  }
  *depth = d;
  *parent = p;
  std::uint64_t id;
  {
    std::lock_guard lk(mu_);
    id = next_id_++;
  }
  stack.push_back(OpenEntry{this, id});
  return id;
}

void Tracer::close_span(SpanRecord record) {
  auto& stack = open_stack();
  for (std::size_t i = stack.size(); i-- > 0;) {
    if (stack[i].tracer == this && stack[i].id == record.id) {
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (registry_ != nullptr) {
    registry_->histogram("trace." + record.name, Unit::Seconds)
        .record(record.dur_us * 1e-6);
  }
  std::lock_guard lk(mu_);
  if (records_.size() >= kMaxRecords) {
    ++dropped_;
    return;
  }
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::finished() const {
  std::lock_guard lk(mu_);
  return records_;
}

std::size_t Tracer::finished_count() const {
  std::lock_guard lk(mu_);
  return records_.size();
}

std::uint64_t Tracer::dropped_count() const {
  std::lock_guard lk(mu_);
  return dropped_;
}

double Tracer::last_duration_seconds(std::string_view name) const {
  std::lock_guard lk(mu_);
  for (std::size_t i = records_.size(); i-- > 0;) {
    if (records_[i].name == name) return records_[i].dur_us * 1e-6;
  }
  return 0;
}

double Tracer::total_seconds(std::string_view name) const {
  std::lock_guard lk(mu_);
  double total = 0;
  for (const SpanRecord& r : records_) {
    if (r.name == name) total += r.dur_us * 1e-6;
  }
  return total;
}

std::string Tracer::chrome_trace_json() const {
  std::lock_guard lk(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& r : records_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(r.name) +
           "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + json_number(std::uint64_t{r.tid}) +
           ",\"ts\":" + json_number(r.start_us) + ",\"dur\":" + json_number(r.dur_us) +
           ",\"args\":{\"span_id\":" + json_number(r.id) +
           ",\"parent\":" + json_number(r.parent) +
           ",\"depth\":" + json_number(std::uint64_t{r.depth});
    for (const auto& [key, value] : r.args) {
      out += ",\"" + json_escape(key) + "\":\"" + json_escape(value) + '"';
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

void Tracer::clear() {
  std::lock_guard lk(mu_);
  records_.clear();
  dropped_ = 0;
}

Span::Span(std::string_view name, Tracer& tracer) : tracer_(&tracer), t0_(Clock::now()) {
  record_.name = name;
  record_.tid = this_thread_tid();
  record_.start_us =
      std::chrono::duration<double, std::micro>(t0_ - tracer.epoch_).count();
  record_.id = tracer.open_span(name, &record_.depth, &record_.parent);
}

Span::~Span() { finish(); }

void Span::arg(std::string_view key, std::string value) {
  record_.args.emplace_back(std::string(key), std::move(value));
}

void Span::arg(std::string_view key, std::uint64_t value) {
  record_.args.emplace_back(std::string(key), std::to_string(value));
}

double Span::elapsed_seconds() const {
  if (finished_) return duration_s_;
  return std::chrono::duration<double>(Clock::now() - t0_).count();
}

double Span::finish() {
  if (finished_) return duration_s_;
  finished_ = true;
  duration_s_ = std::chrono::duration<double>(Clock::now() - t0_).count();
  record_.dur_us = duration_s_ * 1e6;
  tracer_->close_span(std::move(record_));
  return duration_s_;
}

}  // namespace hpm::obs
