// Observability layer, part 2: scoped trace spans.
//
// An obs::Span marks one timed region (a migration phase, one transfer
// attempt, a bench iteration). Spans nest per thread — a span opened while
// another is live on the same thread becomes its child — and every
// finished span records: name, thread id, wall-clock interval, depth, and
// parent linkage. The Tracer buffers finished spans and exports them in
// Chrome trace_event format ("catapult" JSON: load in chrome://tracing or
// https://ui.perfetto.dev), and mirrors every span's duration into the
// linked metrics registry as a `trace.<name>` latency histogram — so the
// paper's Collect/Tx/Restore split is derived from spans, with p50/p95/p99
// over repeated runs for free.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace hpm::obs {

/// One finished span, in tracer-epoch-relative time.
struct SpanRecord {
  std::uint64_t id = 0;        ///< 1-based, unique per tracer
  std::uint64_t parent = 0;    ///< id of the enclosing span on this thread; 0 = root
  std::uint32_t tid = 0;       ///< small stable per-thread index (not the OS tid)
  std::uint32_t depth = 0;     ///< nesting depth at open (root = 0)
  std::string name;
  double start_us = 0;         ///< microseconds since the tracer epoch
  double dur_us = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

class Span;

/// Collects finished spans. Thread-safe; one process-wide instance is
/// linked to Registry::process(), and tests may build isolated tracers.
class Tracer {
 public:
  /// `registry` receives a `trace.<name>` Unit::Seconds histogram sample
  /// per finished span; pass nullptr to trace without metrics mirroring.
  explicit Tracer(Registry* registry);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer (linked to Registry::process()).
  static Tracer& process();

  [[nodiscard]] std::vector<SpanRecord> finished() const;
  [[nodiscard]] std::size_t finished_count() const;
  /// Spans discarded after the buffer cap was reached (their histogram
  /// samples are still recorded).
  [[nodiscard]] std::uint64_t dropped_count() const;

  /// Duration of the most recently finished span with this name; 0 if none.
  [[nodiscard]] double last_duration_seconds(std::string_view name) const;
  /// Sum over all finished spans with this name.
  [[nodiscard]] double total_seconds(std::string_view name) const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}; "X" complete events).
  [[nodiscard]] std::string chrome_trace_json() const;
  /// Write chrome_trace_json() to `path`; returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  void clear();

  static constexpr std::size_t kMaxRecords = 1 << 20;

 private:
  friend class Span;
  std::uint64_t open_span(std::string_view name, std::uint32_t* depth,
                          std::uint64_t* parent);
  void close_span(SpanRecord record);

  Registry* registry_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
};

/// RAII scoped span: opens on construction, records on finish() or
/// destruction. Create on the stack around the region to time.
class Span {
 public:
  explicit Span(std::string_view name, Tracer& tracer = Tracer::process());
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a key/value annotation (exported under "args" in the trace).
  void arg(std::string_view key, std::string value);
  void arg(std::string_view key, std::uint64_t value);

  /// Seconds since the span opened; usable while still running.
  [[nodiscard]] double elapsed_seconds() const;

  /// Close the span now and return its duration in seconds. Idempotent —
  /// later calls (and the destructor) return/record nothing new.
  double finish();

 private:
  Tracer* tracer_;
  SpanRecord record_;
  std::chrono::steady_clock::time_point t0_;
  bool finished_ = false;
  double duration_s_ = 0;
};

}  // namespace hpm::obs
