// Observability layer, part 1: the metrics registry.
//
// One process-wide registry names every telemetry instrument the library
// emits — monotonic counters, gauges, and log-scale histograms with
// p50/p95/p99 snapshots — so the paper's evaluation quantities (Table 1's
// Collect/Tx/Restore split, MSRLT search counts, PNEW/PREF/PNULL mix,
// wire bytes per transport) all flow through one API instead of the
// per-component stats structs they replace. Naming scheme (DESIGN.md §9):
// `<layer>.<component>.<quantity>`, e.g. `msr.msrlt.searches`,
// `net.socket.bytes_sent`, `trace.mig.collect`.
//
// Instruments are created on first use and live for the process lifetime,
// so handles returned by Registry::counter()/gauge()/histogram() never
// dangle. All instruments are thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace hpm::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (may go up and down): tracked blocks, queue depth.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n) noexcept { v_.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// What a histogram's samples measure; selects the log-bucket base so
/// latencies (nanoseconds up) and sizes (single bytes up) both resolve.
enum class Unit : std::uint8_t {
  None,     ///< dimensionless (depths, counts); buckets start at 1
  Seconds,  ///< latencies; buckets start at 1 ns
  Bytes,    ///< sizes; buckets start at 1 byte
};

const char* unit_name(Unit unit) noexcept;

/// Point-in-time digest of one histogram.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Log-scale (power-of-two buckets) histogram.
///
/// Bucket 0 holds samples below the unit base b; bucket i >= 1 holds
/// [b*2^(i-1), b*2^i). Percentile semantics are deterministic and exact at
/// bucket boundaries: the q-quantile is taken at rank ceil(q*count),
/// linearly interpolated inside its bucket by rank position, then clamped
/// to the observed [min, max] — so a histogram holding one distinct value
/// reports that value for every percentile.
class Histogram {
 public:
  explicit Histogram(Unit unit = Unit::None);

  void record(double value) noexcept;
  /// One lock for the whole batch — for hot paths that buffer samples
  /// locally (the collector's depth instrument) instead of taking the
  /// histogram mutex per event.
  void record_batch(const double* values, std::size_t n) noexcept;
  [[nodiscard]] HistogramSummary summary() const;
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] Unit unit() const noexcept { return unit_; }
  void reset();

  /// Bucket bounds for `value` under this histogram's unit base —
  /// exposed so tests can pin the boundary semantics.
  [[nodiscard]] std::pair<double, double> bucket_bounds(double value) const noexcept;

  static constexpr int kBuckets = 64;

 private:
  [[nodiscard]] int bucket_index(double value) const noexcept;
  [[nodiscard]] double percentile_locked(double q) const;

  Unit unit_;
  double base_;
  mutable std::mutex mu_;
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Immutable copy of every instrument's value at one instant. Counters
/// subtract cleanly across snapshots; histograms and gauges are reported
/// as-is (cumulative / instantaneous).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// Counter value by name; 0 when absent (a never-touched instrument and
  /// a missing one are indistinguishable by design).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] std::int64_t gauge(std::string_view name) const;
  /// nullptr when absent.
  [[nodiscard]] const HistogramSummary* histogram(std::string_view name) const;

  /// Counters become this-minus-earlier (clamped at 0); gauges and
  /// histograms keep their current (end-of-interval) values.
  [[nodiscard]] MetricsSnapshot delta_since(const MetricsSnapshot& earlier) const;

  [[nodiscard]] std::string to_json() const;
};

/// Named-instrument registry. Lookups intern the name; repeated lookups
/// return the same instrument, so hot paths should cache the reference.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, Unit unit = Unit::None);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every instrument (benchmark harnesses isolating runs).
  /// Instruments stay registered; handles stay valid.
  void reset_all();

  /// The process-wide registry every hpm component records into.
  static Registry& process();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Per-instance mirror of a shared registry counter: bumps both an
/// instance-local reading and the process-wide instrument in one call,
/// for components that report a per-object count alongside the global
/// telemetry.
class LocalCounter {
 public:
  LocalCounter() = default;
  explicit LocalCounter(Counter& shared) noexcept : shared_(&shared) {}

  void bump(std::uint64_t n = 1) noexcept {
    local_ += n;
    if (shared_ != nullptr) shared_->add(n);
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return local_; }
  /// Clears the instance-local reading only; the registry total is
  /// monotonic and unaffected.
  void reset_local() noexcept { local_ = 0; }

 private:
  std::uint64_t local_ = 0;
  Counter* shared_ = nullptr;
};

}  // namespace hpm::obs
