// Minimal JSON writer shared by the telemetry exporters (metrics
// snapshots, Chrome traces, BENCH_*.json). Writing only — the schema
// validator in tools/ carries its own reader so the library stays free of
// parsing code it never needs at runtime.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hpm::obs {

/// RFC 8259 string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// Shortest round-trippable rendering; non-finite values (which JSON
/// cannot carry) degrade to 0.
std::string json_number(double v);
std::string json_number(std::uint64_t v);
std::string json_number(std::int64_t v);

}  // namespace hpm::obs
