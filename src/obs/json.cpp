#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace hpm::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_number(std::uint64_t v) { return std::to_string(v); }
std::string json_number(std::int64_t v) { return std::to_string(v); }

}  // namespace hpm::obs
