// Deterministic fault injection for the migration transport.
//
// FaultyChannel decorates a ByteChannel's send path and injects exactly
// the failures a real network produces — disconnects, corruption, stalls,
// truncated frames — at a byte offset fixed by a FaultPlan, so every
// failure mode the coordinator must survive is reproducible in CI. A plan
// fires a bounded number of times (shared across reconnect attempts via
// FaultState), which lets tests script "attempt 1 fails, attempt 2 is
// clean" and observe the retry machinery succeed.
#pragma once

#include <cstdint>
#include <memory>

#include "net/channel.hpp"

namespace hpm::net {

enum class FaultKind : std::uint8_t {
  None = 0,
  Disconnect,  ///< deliver `offset` bytes, then tear the channel down mid-send
  Corrupt,     ///< flip `length` bytes starting at `offset`, keep delivering
  Stall,       ///< sleep `stall_seconds` when `offset` is reached (peer deadline fires)
  Truncate,    ///< deliver `offset` bytes, silently discard the rest, close cleanly
  /// Flip one payload byte at `offset` and RECOMPUTE the frame's trailing
  /// CRC-32 so the framing layer accepts the damaged frame. Models
  /// corruption below the checksum (bad RAM, a buggy conversion layer):
  /// only an end-to-end digest can catch it. Relies on the message layer
  /// shipping one whole frame per send() call.
  CorruptMasked,
  /// Process death: after `frame_offset` successful send() calls, the
  /// next send throws hpm::KilledError and tears the channel down. The
  /// "crashed" endpoint runs no recovery code of its own — arbitration
  /// falls to the intent journals. One send() is one protocol frame, so
  /// frame_offset scripts a crash at an exact protocol state.
  Kill,
};

/// Human-readable fault name ("disconnect", "corrupt", ...).
const char* fault_kind_name(FaultKind kind) noexcept;

struct FaultPlan {
  FaultKind kind = FaultKind::None;
  std::uint64_t offset = 0;   ///< sent-byte offset (per attempt) where the fault triggers
  std::uint64_t length = 1;   ///< corrupted span for Corrupt
  double stall_seconds = 0.5; ///< sleep duration for Stall
  /// Kill only: frames (send() calls) delivered intact before the crash.
  std::uint64_t frame_offset = 0;
  /// Attempts that experience the fault; later attempts see a clean
  /// channel. Set above the coordinator's retry budget to script
  /// unrecoverable outages.
  int max_firings = 1;

  [[nodiscard]] bool enabled() const noexcept { return kind != FaultKind::None; }

  /// Crash this endpoint when it tries to send its (n+1)-th frame —
  /// deterministic kill-points for the journal-recovery matrix.
  static FaultPlan kill_after(std::uint64_t n_frames) {
    FaultPlan plan;
    plan.kind = FaultKind::Kill;
    plan.frame_offset = n_frames;
    return plan;
  }

  /// Seedable plan generator: the same seed always yields the same plan,
  /// so a failing fuzz case is reproducible from its seed alone.
  static FaultPlan random(std::uint64_t seed);
};

/// Firing counter shared by the FaultyChannel instances of successive
/// connection attempts (each attempt gets a fresh channel; the plan's
/// firing budget spans them).
struct FaultState {
  int firings = 0;
};

class FaultyChannel final : public ByteChannel {
 public:
  FaultyChannel(std::unique_ptr<ByteChannel> inner, FaultPlan plan,
                std::shared_ptr<FaultState> state = nullptr)
      : inner_(std::move(inner)),
        plan_(plan),
        state_(state ? std::move(state) : std::make_shared<FaultState>()) {}

  void send(std::span<const std::uint8_t> data) override;
  void recv(std::span<std::uint8_t> out) override { inner_->recv(out); }
  void set_timeout(std::chrono::milliseconds timeout) override {
    timeout_ = timeout;
    inner_->set_timeout(timeout);
  }
  void close() override;
  void abort() override;

  [[nodiscard]] const std::shared_ptr<FaultState>& state() const noexcept { return state_; }

 private:
  [[nodiscard]] bool armed() const noexcept {
    return plan_.enabled() && state_->firings < plan_.max_firings;
  }

  std::unique_ptr<ByteChannel> inner_;
  FaultPlan plan_;
  std::shared_ptr<FaultState> state_;
  std::uint64_t sent_ = 0;     ///< bytes pushed through this channel instance
  std::uint64_t frames_ = 0;   ///< send() calls completed on this instance
  std::chrono::milliseconds timeout_{0};  ///< mirror of the configured deadline
  bool fired_ = false;         ///< this instance already applied its fault
  bool dead_ = false;          ///< post-Disconnect: swallow I/O, skip orderly close
  bool truncating_ = false;    ///< post-Truncate: discard the rest of the stream
};

}  // namespace hpm::net
