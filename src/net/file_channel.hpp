// Shared-file-system transport (the paper's second transfer option).
//
// The sender appends to a spool file; the receiver tails it. A sidecar
// ".done" marker communicates end-of-stream, so the two processes only
// need a shared directory — no sockets.
#pragma once

#include <cstdio>
#include <string>

#include "net/channel.hpp"

namespace hpm::net {

/// Write endpoint: appends bytes to `path`, creates `path + ".done"` on
/// close().
class FileWriterChannel final : public ByteChannel {
 public:
  explicit FileWriterChannel(std::string path);
  ~FileWriterChannel() override;

  void send(std::span<const std::uint8_t> data) override;
  void recv(std::span<std::uint8_t> out) override;  // always throws
  void set_timeout(std::chrono::milliseconds) override {}  // writes never block
  void close() override;
  /// Crash-style teardown: the spool is left WITHOUT its ".done" marker,
  /// so the reader sees a stream that never completes instead of a clean
  /// (possibly short) end-of-stream.
  void abort() override;

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Read endpoint: blocks (with a short poll interval) until enough bytes
/// are available in `path`, treating `path + ".done"` as end-of-stream.
class FileReaderChannel final : public ByteChannel {
 public:
  explicit FileReaderChannel(std::string path);
  ~FileReaderChannel() override;

  void send(std::span<const std::uint8_t> data) override;  // always throws
  void recv(std::span<std::uint8_t> out) override;
  void set_timeout(std::chrono::milliseconds timeout) override { timeout_ = timeout; }
  void close() override;

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t pos_ = 0;
  std::chrono::milliseconds timeout_{0};
};

}  // namespace hpm::net
