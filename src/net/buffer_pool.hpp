// Reused frame-assembly buffers for the message layer.
//
// Every framed send used to allocate (and immediately free) a scratch
// buffer; with the pipelined transfer sending thousands of StateChunk
// frames per migration, that churn shows up in the tx span. The pool
// keeps a small free list of Bytes buffers whose capacity survives
// release, so steady-state chunk traffic allocates nothing.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "common/hexdump.hpp"

namespace hpm::net {

class BufferPool {
 public:
  /// A buffer resized to `size` (contents unspecified). Reuses a pooled
  /// buffer's capacity when one is available.
  Bytes acquire(std::size_t size);

  /// Return a buffer to the pool. Beyond the retention cap the buffer is
  /// simply freed.
  void release(Bytes&& buf);

  /// The process-wide pool the message layer uses.
  static BufferPool& process();

  static constexpr std::size_t kMaxRetained = 16;

 private:
  std::mutex mu_;
  std::vector<Bytes> free_;
};

}  // namespace hpm::net
