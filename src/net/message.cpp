#include "net/message.hpp"

#include <array>

#include "common/error.hpp"

namespace hpm::net {

void send_message(ByteChannel& ch, MsgType type, std::span<const std::uint8_t> payload) {
  std::array<std::uint8_t, 5> header{};
  header[0] = static_cast<std::uint8_t>(type);
  const auto len = static_cast<std::uint32_t>(payload.size());
  header[1] = static_cast<std::uint8_t>((len >> 24) & 0xFFu);
  header[2] = static_cast<std::uint8_t>((len >> 16) & 0xFFu);
  header[3] = static_cast<std::uint8_t>((len >> 8) & 0xFFu);
  header[4] = static_cast<std::uint8_t>(len & 0xFFu);
  ch.send(header);
  if (!payload.empty()) ch.send(payload);
}

Message recv_message(ByteChannel& ch, std::size_t max_payload) {
  std::array<std::uint8_t, 5> header{};
  ch.recv(header);
  const auto raw_type = header[0];
  if (raw_type < 1 || raw_type > 5) {
    throw NetError("malformed frame: unknown message type " + std::to_string(raw_type));
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(header[1]) << 24) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 8) |
                            static_cast<std::uint32_t>(header[4]);
  if (len > max_payload) {
    throw NetError("frame payload of " + std::to_string(len) + " bytes exceeds limit");
  }
  Message msg;
  msg.type = static_cast<MsgType>(raw_type);
  msg.payload.resize(len);
  if (len > 0) ch.recv(msg.payload);
  return msg;
}

}  // namespace hpm::net
