#include "net/message.hpp"

#include <array>
#include <cstring>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "net/buffer_pool.hpp"
#include "obs/metrics.hpp"

namespace hpm::net {

namespace {

/// `net.frames.*` framing-layer counters. Frame byte totals include the
/// 5-byte header and 4-byte CRC trailer, so for a healthy run they equal
/// the underlying channel's byte counters exactly.
struct FrameMetrics {
  obs::Counter& sent = obs::Registry::process().counter("net.frames.sent");
  obs::Counter& recv = obs::Registry::process().counter("net.frames.recv");
  obs::Counter& bytes_sent = obs::Registry::process().counter("net.frames.bytes_sent");
  obs::Counter& bytes_recv = obs::Registry::process().counter("net.frames.bytes_recv");
  obs::Counter& crc_failures = obs::Registry::process().counter("net.frames.crc_failures");

  static FrameMetrics& get() {
    static FrameMetrics m;
    return m;
  }
};

void put_u32_be(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>((v >> 24) & 0xFFu);
  out[1] = static_cast<std::uint8_t>((v >> 16) & 0xFFu);
  out[2] = static_cast<std::uint8_t>((v >> 8) & 0xFFu);
  out[3] = static_cast<std::uint8_t>(v & 0xFFu);
}

std::uint32_t get_u32_be(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) | static_cast<std::uint32_t>(in[3]);
}

void put_u16_be(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>((v >> 8) & 0xFFu);
  out[1] = static_cast<std::uint8_t>(v & 0xFFu);
}

std::uint16_t get_u16_be(const std::uint8_t* in) {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(in[0]) << 8) | in[1]);
}

/// Assemble one frame — `tag_bytes` of routing tag (empty for a plain
/// frame) followed by the classic type/len/payload layout — in a pooled
/// buffer and ship it with a single channel send: chunked transfers emit
/// thousands of frames per migration, so per-frame allocation and triple
/// syscalls both matter. The CRC trailer covers tag + header + payload.
void send_frame(ByteChannel& ch, std::span<const std::uint8_t> tag_bytes, MsgType type,
                std::span<const std::uint8_t> payload) {
  const std::size_t header_at = tag_bytes.size();
  const std::size_t total = header_at + 5 + payload.size() + 4;
  BufferPool& pool = BufferPool::process();
  Bytes frame = pool.acquire(total);
  if (!tag_bytes.empty()) std::memcpy(frame.data(), tag_bytes.data(), tag_bytes.size());
  frame[header_at] = static_cast<std::uint8_t>(type);
  put_u32_be(frame.data() + header_at + 1, static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty()) {
    std::memcpy(frame.data() + header_at + 5, payload.data(), payload.size());
  }
  Crc32 crc;
  crc.update(frame.data(), total - 4);
  put_u32_be(frame.data() + total - 4, crc.value());
  ch.send(frame);
  pool.release(std::move(frame));
  FrameMetrics& m = FrameMetrics::get();
  m.sent.add(1);
  m.bytes_sent.add(total);
}

/// Read the type/len/payload/CRC tail of a frame whose leading
/// `consumed` bytes (routing tag, and possibly the type byte itself)
/// were already pulled off the channel and folded into `crc`.
Message recv_frame_rest(ByteChannel& ch, Crc32& crc, std::size_t consumed,
                        std::uint8_t raw_type, std::size_t max_payload) {
  if (raw_type < 1 || raw_type > kMaxMsgType) {
    throw NetError("malformed frame: unknown message type " + std::to_string(raw_type));
  }
  std::array<std::uint8_t, 4> len_be{};
  ch.recv(len_be);
  crc.update(len_be.data(), len_be.size());
  const std::uint32_t len = get_u32_be(len_be.data());
  // Validate the (possibly hostile or corrupted) length prefix before a
  // single byte is allocated for it.
  if (len > max_payload) {
    throw NetError("frame payload of " + std::to_string(len) + " bytes exceeds the " +
                   std::to_string(max_payload) + "-byte limit");
  }
  Message msg;
  msg.type = static_cast<MsgType>(raw_type);
  msg.payload.resize(len);
  if (len > 0) ch.recv(msg.payload);
  crc.update(msg.payload.data(), msg.payload.size());
  std::array<std::uint8_t, 4> trailer{};
  ch.recv(trailer);
  if (get_u32_be(trailer.data()) != crc.value()) {
    FrameMetrics::get().crc_failures.add(1);
    throw NetError("frame CRC mismatch: " + std::to_string(len) +
                   "-byte payload damaged in transit");
  }
  FrameMetrics& m = FrameMetrics::get();
  m.recv.add(1);
  m.bytes_recv.add(consumed + len_be.size() + msg.payload.size() + trailer.size());
  return msg;
}

}  // namespace

void send_message(ByteChannel& ch, MsgType type, std::span<const std::uint8_t> payload) {
  send_frame(ch, {}, type, payload);
}

Message recv_message(ByteChannel& ch, std::size_t max_payload) {
  std::array<std::uint8_t, 1> first{};
  ch.recv(first);
  Crc32 crc;
  crc.update(first.data(), first.size());
  return recv_frame_rest(ch, crc, first.size(), first[0], max_payload);
}

void send_tagged_message(ByteChannel& ch, std::uint32_t session_id, std::uint16_t epoch,
                         MsgType type, std::span<const std::uint8_t> payload) {
  std::array<std::uint8_t, 7> tag{};
  tag[0] = kTaggedFrameMagic;
  put_u32_be(tag.data() + 1, session_id);
  put_u16_be(tag.data() + 5, epoch);
  send_frame(ch, tag, type, payload);
}

TaggedMessage recv_any_message(ByteChannel& ch, std::size_t max_payload) {
  std::array<std::uint8_t, 1> first{};
  ch.recv(first);
  Crc32 crc;
  crc.update(first.data(), first.size());
  TaggedMessage out;
  std::uint8_t raw_type = first[0];
  std::size_t consumed = first.size();
  if (first[0] == kTaggedFrameMagic) {
    std::array<std::uint8_t, 7> rest{};  // u32 session, u16 epoch, u8 type
    ch.recv(rest);
    crc.update(rest.data(), rest.size());
    out.tagged = true;
    out.session_id = get_u32_be(rest.data());
    out.epoch = get_u16_be(rest.data() + 4);
    raw_type = rest[6];
    consumed += rest.size();
  }
  out.msg = recv_frame_rest(ch, crc, consumed, raw_type, max_payload);
  return out;
}

namespace {

void put_u64_be(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>((v >> (8 * (7 - i))) & 0xFFu);
  }
}

std::uint64_t get_u64_be(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[i];
  return v;
}

}  // namespace

Bytes encode_state_begin(const StateBeginInfo& info) {
  Bytes payload(16);
  put_u32_be(payload.data(), info.chunk_bytes);
  put_u64_be(payload.data() + 4, info.txn_id);
  put_u32_be(payload.data() + 12, info.incarnation);
  return payload;
}

Bytes encode_state_chunk(std::uint32_t seq, std::span<const std::uint8_t> bytes) {
  Bytes payload(4 + bytes.size());
  put_u32_be(payload.data(), seq);
  if (!bytes.empty()) std::memcpy(payload.data() + 4, bytes.data(), bytes.size());
  return payload;
}

Bytes encode_state_end(const StateEndInfo& info) {
  Bytes payload(20);
  put_u32_be(payload.data(), info.chunk_count);
  put_u64_be(payload.data() + 4, info.total_bytes);
  put_u64_be(payload.data() + 12, info.digest);
  return payload;
}

StateBeginInfo decode_state_begin(const Bytes& payload) {
  // 12 bytes is the v4 layout (no incarnation field): decode it as the
  // primary so a v4 sender interoperates with a v5 receiver.
  if (payload.size() != 12 && payload.size() != 16) {
    throw NetError("malformed StateBegin payload");
  }
  StateBeginInfo info;
  info.chunk_bytes = get_u32_be(payload.data());
  info.txn_id = get_u64_be(payload.data() + 4);
  info.incarnation = payload.size() == 16 ? get_u32_be(payload.data() + 12) : 1;
  return info;
}

std::uint32_t decode_state_chunk_seq(const Bytes& payload) {
  if (payload.size() < 4) throw NetError("malformed StateChunk payload");
  return get_u32_be(payload.data());
}

StateEndInfo decode_state_end(const Bytes& payload) {
  if (payload.size() != 20) throw NetError("malformed StateEnd payload");
  StateEndInfo info;
  info.chunk_count = get_u32_be(payload.data());
  info.total_bytes = get_u64_be(payload.data() + 4);
  info.digest = get_u64_be(payload.data() + 12);
  return info;
}

Bytes encode_ping(const PingInfo& info) {
  Bytes payload(12);
  put_u32_be(payload.data(), info.seq);
  put_u64_be(payload.data() + 4, info.stamp_ns);
  return payload;
}

PingInfo decode_ping(const Bytes& payload) {
  if (payload.size() != 12) throw NetError("malformed Ping payload");
  PingInfo info;
  info.seq = get_u32_be(payload.data());
  info.stamp_ns = get_u64_be(payload.data() + 4);
  return info;
}

Bytes encode_state_ack(std::uint32_t next_seq) {
  Bytes payload(4);
  put_u32_be(payload.data(), next_seq);
  return payload;
}

std::uint32_t decode_state_ack(const Bytes& payload) {
  if (payload.size() != 4) throw NetError("malformed StateAck payload");
  return get_u32_be(payload.data());
}

Bytes encode_txn(std::uint64_t txn_id) {
  Bytes payload(8);
  put_u64_be(payload.data(), txn_id);
  return payload;
}

std::uint64_t decode_txn(const Bytes& payload) {
  if (payload.size() != 8) throw NetError("malformed transaction payload");
  return get_u64_be(payload.data());
}

Bytes encode_txn_token(const TxnTokenInfo& info) {
  Bytes payload(12);
  put_u64_be(payload.data(), info.txn_id);
  put_u32_be(payload.data() + 8, info.incarnation);
  return payload;
}

TxnTokenInfo decode_txn_token(const Bytes& payload) {
  // 8 bytes is the v4 layout (bare txn id): incarnation 1.
  if (payload.size() != 8 && payload.size() != 12) {
    throw NetError("malformed transaction-token payload");
  }
  TxnTokenInfo info;
  info.txn_id = get_u64_be(payload.data());
  info.incarnation = payload.size() == 12 ? get_u32_be(payload.data() + 8) : 1;
  return info;
}

Bytes encode_prepare_ack(const PrepareAckInfo& info) {
  Bytes payload(20);
  put_u64_be(payload.data(), info.txn_id);
  put_u64_be(payload.data() + 8, info.digest);
  put_u32_be(payload.data() + 16, info.incarnation);
  return payload;
}

PrepareAckInfo decode_prepare_ack(const Bytes& payload) {
  // 16 bytes is the v4 layout (no incarnation echo): incarnation 1.
  if (payload.size() != 16 && payload.size() != 20) {
    throw NetError("malformed PrepareAck payload");
  }
  PrepareAckInfo info;
  info.txn_id = get_u64_be(payload.data());
  info.digest = get_u64_be(payload.data() + 8);
  info.incarnation = payload.size() == 20 ? get_u32_be(payload.data() + 16) : 1;
  return info;
}

Bytes encode_resume_hello(const ResumeHelloInfo& info) {
  Bytes payload(13);
  payload[0] = info.version;
  put_u64_be(payload.data() + 1, info.txn_id);
  put_u32_be(payload.data() + 9, info.next_seq);
  return payload;
}

ResumeHelloInfo decode_resume_hello(const Bytes& payload) {
  if (payload.size() != 13) throw NetError("malformed ResumeHello payload");
  ResumeHelloInfo info;
  info.version = payload[0];
  info.txn_id = get_u64_be(payload.data() + 1);
  info.next_seq = get_u32_be(payload.data() + 9);
  return info;
}

Bytes encode_manifest_begin(const ManifestBeginInfo& info) {
  Bytes payload(17);
  put_u64_be(payload.data(), info.txn_id);
  put_u32_be(payload.data() + 8, info.chunk_count);
  put_u32_be(payload.data() + 12, info.chunk_bytes);
  payload[16] = info.codec_caps;
  return payload;
}

ManifestBeginInfo decode_manifest_begin(const Bytes& payload) {
  if (payload.size() != 17) throw NetError("malformed ManifestBegin payload");
  ManifestBeginInfo info;
  info.txn_id = get_u64_be(payload.data());
  info.chunk_count = get_u32_be(payload.data() + 8);
  info.chunk_bytes = get_u32_be(payload.data() + 12);
  info.codec_caps = payload[16];
  return info;
}

Bytes encode_manifest_chunk(std::uint32_t first_index, std::span<const ManifestEntry> entries) {
  Bytes payload(8 + entries.size() * 12);
  put_u32_be(payload.data(), first_index);
  put_u32_be(payload.data() + 4, static_cast<std::uint32_t>(entries.size()));
  std::uint8_t* out = payload.data() + 8;
  for (const ManifestEntry& e : entries) {
    put_u64_be(out, e.digest);
    put_u32_be(out + 8, e.length);
    out += 12;
  }
  return payload;
}

ManifestChunkInfo decode_manifest_chunk(const Bytes& payload) {
  if (payload.size() < 8) throw NetError("malformed ManifestChunk payload");
  ManifestChunkInfo info;
  info.first_index = get_u32_be(payload.data());
  const std::uint32_t count = get_u32_be(payload.data() + 4);
  // The declared count must match the byte length exactly: a hostile
  // count can neither over-read the payload nor drive the reserve below
  // past what actually arrived (the frame layer already bounded that).
  if (payload.size() != 8 + static_cast<std::size_t>(count) * 12) {
    throw NetError("malformed ManifestChunk payload: " + std::to_string(count) +
                   " entries declared in " + std::to_string(payload.size()) + " bytes");
  }
  info.entries.reserve(count);
  const std::uint8_t* in = payload.data() + 8;
  for (std::uint32_t i = 0; i < count; ++i) {
    ManifestEntry e;
    e.digest = get_u64_be(in);
    e.length = get_u32_be(in + 8);
    info.entries.push_back(e);
    in += 12;
  }
  return info;
}

Bytes encode_manifest_ack(const ManifestAckInfo& info) {
  Bytes payload(5 + info.misses.size() * 4);
  payload[0] = info.codec;
  put_u32_be(payload.data() + 1, static_cast<std::uint32_t>(info.misses.size()));
  std::uint8_t* out = payload.data() + 5;
  for (const std::uint32_t idx : info.misses) {
    put_u32_be(out, idx);
    out += 4;
  }
  return payload;
}

ManifestAckInfo decode_manifest_ack(const Bytes& payload) {
  if (payload.size() < 5) throw NetError("malformed ManifestAck payload");
  ManifestAckInfo info;
  info.codec = payload[0];
  const std::uint32_t count = get_u32_be(payload.data() + 1);
  if (payload.size() != 5 + static_cast<std::size_t>(count) * 4) {
    throw NetError("malformed ManifestAck payload: " + std::to_string(count) +
                   " misses declared in " + std::to_string(payload.size()) + " bytes");
  }
  info.misses.reserve(count);
  const std::uint8_t* in = payload.data() + 5;
  for (std::uint32_t i = 0; i < count; ++i) {
    info.misses.push_back(get_u32_be(in));
    in += 4;
  }
  return info;
}

Bytes encode_state_chunk_coded(std::uint32_t seq, std::uint8_t codec_tag,
                               std::span<const std::uint8_t> body) {
  Bytes payload(5 + body.size());
  put_u32_be(payload.data(), seq);
  payload[4] = codec_tag;
  if (!body.empty()) std::memcpy(payload.data() + 5, body.data(), body.size());
  return payload;
}

}  // namespace hpm::net
