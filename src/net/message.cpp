#include "net/message.hpp"

#include <array>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace hpm::net {

namespace {

void put_u32_be(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>((v >> 24) & 0xFFu);
  out[1] = static_cast<std::uint8_t>((v >> 16) & 0xFFu);
  out[2] = static_cast<std::uint8_t>((v >> 8) & 0xFFu);
  out[3] = static_cast<std::uint8_t>(v & 0xFFu);
}

std::uint32_t get_u32_be(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) | static_cast<std::uint32_t>(in[3]);
}

}  // namespace

void send_message(ByteChannel& ch, MsgType type, std::span<const std::uint8_t> payload) {
  std::array<std::uint8_t, 5> header{};
  header[0] = static_cast<std::uint8_t>(type);
  put_u32_be(header.data() + 1, static_cast<std::uint32_t>(payload.size()));
  Crc32 crc;
  crc.update(header.data(), header.size());
  crc.update(payload.data(), payload.size());
  std::array<std::uint8_t, 4> trailer{};
  put_u32_be(trailer.data(), crc.value());
  ch.send(header);
  if (!payload.empty()) ch.send(payload);
  ch.send(trailer);
}

Message recv_message(ByteChannel& ch, std::size_t max_payload) {
  std::array<std::uint8_t, 5> header{};
  ch.recv(header);
  const auto raw_type = header[0];
  if (raw_type < 1 || raw_type > 6) {
    throw NetError("malformed frame: unknown message type " + std::to_string(raw_type));
  }
  const std::uint32_t len = get_u32_be(header.data() + 1);
  // Validate the (possibly hostile or corrupted) length prefix before a
  // single byte is allocated for it.
  if (len > max_payload) {
    throw NetError("frame payload of " + std::to_string(len) + " bytes exceeds the " +
                   std::to_string(max_payload) + "-byte limit");
  }
  Message msg;
  msg.type = static_cast<MsgType>(raw_type);
  msg.payload.resize(len);
  if (len > 0) ch.recv(msg.payload);
  std::array<std::uint8_t, 4> trailer{};
  ch.recv(trailer);
  Crc32 crc;
  crc.update(header.data(), header.size());
  crc.update(msg.payload.data(), msg.payload.size());
  if (get_u32_be(trailer.data()) != crc.value()) {
    throw NetError("frame CRC mismatch: " + std::to_string(len) +
                   "-byte payload damaged in transit");
  }
  return msg;
}

}  // namespace hpm::net
