#include "net/message.hpp"

#include <array>
#include <cstring>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "net/buffer_pool.hpp"
#include "obs/metrics.hpp"

namespace hpm::net {

namespace {

/// `net.frames.*` framing-layer counters. Frame byte totals include the
/// 5-byte header and 4-byte CRC trailer, so for a healthy run they equal
/// the underlying channel's byte counters exactly.
struct FrameMetrics {
  obs::Counter& sent = obs::Registry::process().counter("net.frames.sent");
  obs::Counter& recv = obs::Registry::process().counter("net.frames.recv");
  obs::Counter& bytes_sent = obs::Registry::process().counter("net.frames.bytes_sent");
  obs::Counter& bytes_recv = obs::Registry::process().counter("net.frames.bytes_recv");
  obs::Counter& crc_failures = obs::Registry::process().counter("net.frames.crc_failures");

  static FrameMetrics& get() {
    static FrameMetrics m;
    return m;
  }
};

void put_u32_be(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>((v >> 24) & 0xFFu);
  out[1] = static_cast<std::uint8_t>((v >> 16) & 0xFFu);
  out[2] = static_cast<std::uint8_t>((v >> 8) & 0xFFu);
  out[3] = static_cast<std::uint8_t>(v & 0xFFu);
}

std::uint32_t get_u32_be(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) | static_cast<std::uint32_t>(in[3]);
}

}  // namespace

void send_message(ByteChannel& ch, MsgType type, std::span<const std::uint8_t> payload) {
  // Assemble header + payload + CRC trailer in one pooled buffer and ship
  // it with a single channel send: chunked transfers emit thousands of
  // frames per migration, so per-frame allocation and triple syscalls
  // both matter. Byte-positional fault-injection offsets are unaffected —
  // the channel sees the same bytes in the same order.
  BufferPool& pool = BufferPool::process();
  Bytes frame = pool.acquire(5 + payload.size() + 4);
  frame[0] = static_cast<std::uint8_t>(type);
  put_u32_be(frame.data() + 1, static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty()) std::memcpy(frame.data() + 5, payload.data(), payload.size());
  Crc32 crc;
  crc.update(frame.data(), 5 + payload.size());
  put_u32_be(frame.data() + 5 + payload.size(), crc.value());
  ch.send(frame);
  pool.release(std::move(frame));
  FrameMetrics& m = FrameMetrics::get();
  m.sent.add(1);
  m.bytes_sent.add(5 + payload.size() + 4);
}

Message recv_message(ByteChannel& ch, std::size_t max_payload) {
  std::array<std::uint8_t, 5> header{};
  ch.recv(header);
  const auto raw_type = header[0];
  if (raw_type < 1 || raw_type > kMaxMsgType) {
    throw NetError("malformed frame: unknown message type " + std::to_string(raw_type));
  }
  const std::uint32_t len = get_u32_be(header.data() + 1);
  // Validate the (possibly hostile or corrupted) length prefix before a
  // single byte is allocated for it.
  if (len > max_payload) {
    throw NetError("frame payload of " + std::to_string(len) + " bytes exceeds the " +
                   std::to_string(max_payload) + "-byte limit");
  }
  Message msg;
  msg.type = static_cast<MsgType>(raw_type);
  msg.payload.resize(len);
  if (len > 0) ch.recv(msg.payload);
  std::array<std::uint8_t, 4> trailer{};
  ch.recv(trailer);
  Crc32 crc;
  crc.update(header.data(), header.size());
  crc.update(msg.payload.data(), msg.payload.size());
  if (get_u32_be(trailer.data()) != crc.value()) {
    FrameMetrics::get().crc_failures.add(1);
    throw NetError("frame CRC mismatch: " + std::to_string(len) +
                   "-byte payload damaged in transit");
  }
  FrameMetrics& m = FrameMetrics::get();
  m.recv.add(1);
  m.bytes_recv.add(header.size() + msg.payload.size() + trailer.size());
  return msg;
}

namespace {

void put_u64_be(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>((v >> (8 * (7 - i))) & 0xFFu);
  }
}

std::uint64_t get_u64_be(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[i];
  return v;
}

}  // namespace

Bytes encode_state_begin(const StateBeginInfo& info) {
  Bytes payload(12);
  put_u32_be(payload.data(), info.chunk_bytes);
  put_u64_be(payload.data() + 4, info.txn_id);
  return payload;
}

Bytes encode_state_chunk(std::uint32_t seq, std::span<const std::uint8_t> bytes) {
  Bytes payload(4 + bytes.size());
  put_u32_be(payload.data(), seq);
  if (!bytes.empty()) std::memcpy(payload.data() + 4, bytes.data(), bytes.size());
  return payload;
}

Bytes encode_state_end(const StateEndInfo& info) {
  Bytes payload(20);
  put_u32_be(payload.data(), info.chunk_count);
  put_u64_be(payload.data() + 4, info.total_bytes);
  put_u64_be(payload.data() + 12, info.digest);
  return payload;
}

StateBeginInfo decode_state_begin(const Bytes& payload) {
  if (payload.size() != 12) throw NetError("malformed StateBegin payload");
  StateBeginInfo info;
  info.chunk_bytes = get_u32_be(payload.data());
  info.txn_id = get_u64_be(payload.data() + 4);
  return info;
}

std::uint32_t decode_state_chunk_seq(const Bytes& payload) {
  if (payload.size() < 4) throw NetError("malformed StateChunk payload");
  return get_u32_be(payload.data());
}

StateEndInfo decode_state_end(const Bytes& payload) {
  if (payload.size() != 20) throw NetError("malformed StateEnd payload");
  StateEndInfo info;
  info.chunk_count = get_u32_be(payload.data());
  info.total_bytes = get_u64_be(payload.data() + 4);
  info.digest = get_u64_be(payload.data() + 12);
  return info;
}

Bytes encode_state_ack(std::uint32_t next_seq) {
  Bytes payload(4);
  put_u32_be(payload.data(), next_seq);
  return payload;
}

std::uint32_t decode_state_ack(const Bytes& payload) {
  if (payload.size() != 4) throw NetError("malformed StateAck payload");
  return get_u32_be(payload.data());
}

Bytes encode_txn(std::uint64_t txn_id) {
  Bytes payload(8);
  put_u64_be(payload.data(), txn_id);
  return payload;
}

std::uint64_t decode_txn(const Bytes& payload) {
  if (payload.size() != 8) throw NetError("malformed transaction payload");
  return get_u64_be(payload.data());
}

Bytes encode_prepare_ack(const PrepareAckInfo& info) {
  Bytes payload(16);
  put_u64_be(payload.data(), info.txn_id);
  put_u64_be(payload.data() + 8, info.digest);
  return payload;
}

PrepareAckInfo decode_prepare_ack(const Bytes& payload) {
  if (payload.size() != 16) throw NetError("malformed PrepareAck payload");
  PrepareAckInfo info;
  info.txn_id = get_u64_be(payload.data());
  info.digest = get_u64_be(payload.data() + 8);
  return info;
}

Bytes encode_resume_hello(const ResumeHelloInfo& info) {
  Bytes payload(13);
  payload[0] = info.version;
  put_u64_be(payload.data() + 1, info.txn_id);
  put_u32_be(payload.data() + 9, info.next_seq);
  return payload;
}

ResumeHelloInfo decode_resume_hello(const Bytes& payload) {
  if (payload.size() != 13) throw NetError("malformed ResumeHello payload");
  ResumeHelloInfo info;
  info.version = payload[0];
  info.txn_id = get_u64_be(payload.data() + 1);
  info.next_seq = get_u32_be(payload.data() + 9);
  return info;
}

}  // namespace hpm::net
