#include "net/faulty_channel.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpm::net {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::Disconnect: return "disconnect";
    case FaultKind::Corrupt: return "corrupt";
    case FaultKind::Stall: return "stall";
    case FaultKind::Truncate: return "truncate";
  }
  return "?";
}

FaultPlan FaultPlan::random(std::uint64_t seed) {
  Rng rng(seed);
  FaultPlan plan;
  // None is excluded: a random plan is always a real fault.
  plan.kind = static_cast<FaultKind>(1 + rng.next_below(4));
  // Past the 5-byte frame header, inside a typical State payload.
  plan.offset = 6 + rng.next_below(512);
  plan.length = 1 + rng.next_below(16);
  plan.stall_seconds = 0.05 + 0.25 * rng.next_double();
  return plan;
}

void FaultyChannel::send(std::span<const std::uint8_t> data) {
  if (dead_) throw NetError("send on disconnected FaultyChannel");
  if (truncating_) {
    sent_ += data.size();
    return;  // the fault already swallowed the tail of the stream
  }
  const std::uint64_t begin = sent_;
  const std::uint64_t end = begin + data.size();
  if (!armed() || fired_ || end <= plan_.offset) {
    sent_ = end;
    inner_->send(data);
    return;
  }

  // The fault offset lies inside (or at the end of) this send.
  fired_ = true;
  state_->firings += 1;
  const std::size_t clean = static_cast<std::size_t>(plan_.offset - begin);
  switch (plan_.kind) {
    case FaultKind::Disconnect:
      if (clean > 0) inner_->send(data.first(clean));
      dead_ = true;
      inner_->abort();
      throw NetError("injected fault: disconnect after " + std::to_string(plan_.offset) +
                     " bytes");
    case FaultKind::Truncate:
      if (clean > 0) inner_->send(data.first(clean));
      truncating_ = true;
      sent_ = end;
      return;
    case FaultKind::Stall:
      std::this_thread::sleep_for(std::chrono::duration<double>(plan_.stall_seconds));
      sent_ = end;
      inner_->send(data);
      return;
    case FaultKind::Corrupt: {
      std::vector<std::uint8_t> mangled(data.begin(), data.end());
      const std::size_t stop =
          std::min<std::uint64_t>(clean + plan_.length, mangled.size());
      for (std::size_t i = clean; i < stop; ++i) mangled[i] ^= 0xA5u;
      sent_ = end;
      inner_->send(mangled);
      return;
    }
    case FaultKind::None: break;  // unreachable: armed() excludes None
  }
  sent_ = end;
  inner_->send(data);
}

void FaultyChannel::close() {
  if (dead_) return;  // a disconnected channel cannot signal orderly EOF
  inner_->close();
}

void FaultyChannel::abort() {
  if (dead_) return;
  dead_ = true;
  inner_->abort();
}

}  // namespace hpm::net
