#include "net/faulty_channel.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace hpm::net {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::Disconnect: return "disconnect";
    case FaultKind::Corrupt: return "corrupt";
    case FaultKind::Stall: return "stall";
    case FaultKind::Truncate: return "truncate";
    case FaultKind::CorruptMasked: return "corrupt-masked";
    case FaultKind::Kill: return "kill";
  }
  return "?";
}

FaultPlan FaultPlan::random(std::uint64_t seed) {
  Rng rng(seed);
  FaultPlan plan;
  // None is excluded: a random plan is always a real fault.
  plan.kind = static_cast<FaultKind>(1 + rng.next_below(4));
  // Past the 5-byte frame header, inside a typical State payload.
  plan.offset = 6 + rng.next_below(512);
  plan.length = 1 + rng.next_below(16);
  plan.stall_seconds = 0.05 + 0.25 * rng.next_double();
  return plan;
}

void FaultyChannel::send(std::span<const std::uint8_t> data) {
  if (dead_) throw NetError("send on disconnected FaultyChannel");
  if (truncating_) {
    sent_ += data.size();
    ++frames_;
    return;  // the fault already swallowed the tail of the stream
  }
  // Kill triggers on frame count, not byte offset: one send() is one
  // protocol frame, so frame_offset pins the crash to a protocol state.
  if (plan_.kind == FaultKind::Kill && armed() && !fired_ && frames_ >= plan_.frame_offset) {
    fired_ = true;
    state_->firings += 1;
    dead_ = true;
    inner_->abort();
    throw KilledError("injected crash: endpoint killed before frame " +
                      std::to_string(frames_ + 1));
  }
  const std::uint64_t begin = sent_;
  const std::uint64_t end = begin + data.size();
  if (plan_.kind == FaultKind::Kill || !armed() || fired_ || end <= plan_.offset) {
    sent_ = end;
    inner_->send(data);
    ++frames_;
    return;
  }

  // The fault offset lies inside (or at the end of) this send.
  fired_ = true;
  state_->firings += 1;
  const std::size_t clean = static_cast<std::size_t>(plan_.offset - begin);
  switch (plan_.kind) {
    case FaultKind::Disconnect:
      if (clean > 0) inner_->send(data.first(clean));
      dead_ = true;
      inner_->abort();
      throw NetError("injected fault: disconnect after " + std::to_string(plan_.offset) +
                     " bytes");
    case FaultKind::Truncate:
      if (clean > 0) inner_->send(data.first(clean));
      truncating_ = true;
      sent_ = end;
      ++frames_;
      return;
    case FaultKind::Stall:
      // An injected stall must respect the channel deadline: with a
      // pipelined sender thread behind this channel, sleeping past the
      // deadline and then delivering would hide the stall from the
      // sender (only the peer's recv would time out) — or hang outright
      // when no peer is reading. Sleep up to the deadline, then surface
      // the overrun as the TimeoutError a real deadlined send would give.
      // Tag the overrun and count every firing in net.faults.stalls_hit:
      // a chaos harness asserting "no real hangs" must be able to tell an
      // injected stall's timeout from an organic one.
      obs::Registry::process().counter("net.faults.stalls_hit").add(1);
      if (timeout_.count() > 0 &&
          std::chrono::duration<double>(plan_.stall_seconds) >= timeout_) {
        std::this_thread::sleep_for(timeout_);
        throw TimeoutError("[injected-stall] injected stall exceeded the " +
                           std::to_string(timeout_.count()) + " ms send deadline");
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(plan_.stall_seconds));
      sent_ = end;
      inner_->send(data);
      ++frames_;
      return;
    case FaultKind::Corrupt: {
      std::vector<std::uint8_t> mangled(data.begin(), data.end());
      const std::size_t stop =
          std::min<std::uint64_t>(clean + plan_.length, mangled.size());
      for (std::size_t i = clean; i < stop; ++i) mangled[i] ^= 0xA5u;
      sent_ = end;
      inner_->send(mangled);
      ++frames_;
      return;
    }
    case FaultKind::CorruptMasked: {
      // Flip the payload byte, then recompute the frame's trailing CRC-32
      // so the framing layer accepts the damage. Valid because the
      // message layer ships exactly one frame per send().
      std::vector<std::uint8_t> mangled(data.begin(), data.end());
      if (mangled.size() >= 10 && clean >= 5 && clean < mangled.size() - 4) {
        mangled[clean] ^= 0xA5u;
        const std::uint32_t crc = Crc32::of(mangled.data(), mangled.size() - 4);
        const std::size_t t = mangled.size() - 4;
        mangled[t] = static_cast<std::uint8_t>((crc >> 24) & 0xFFu);
        mangled[t + 1] = static_cast<std::uint8_t>((crc >> 16) & 0xFFu);
        mangled[t + 2] = static_cast<std::uint8_t>((crc >> 8) & 0xFFu);
        mangled[t + 3] = static_cast<std::uint8_t>(crc & 0xFFu);
      }
      sent_ = end;
      inner_->send(mangled);
      ++frames_;
      return;
    }
    case FaultKind::Kill:  // handled above (frame-counted, not byte-counted)
    case FaultKind::None:  // unreachable: armed() excludes None
      break;
  }
  sent_ = end;
  inner_->send(data);
  ++frames_;
}

void FaultyChannel::close() {
  if (dead_) return;  // a disconnected channel cannot signal orderly EOF
  inner_->close();
}

void FaultyChannel::abort() {
  if (dead_) return;
  dead_ = true;
  inner_->abort();
}

}  // namespace hpm::net
