#include "net/mem_channel.hpp"

#include <cstring>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace hpm::net {

namespace {

/// `net.mem.*` transport counters, shared by every MemChannel endpoint.
struct MemMetrics {
  obs::Counter& bytes_sent = obs::Registry::process().counter("net.mem.bytes_sent");
  obs::Counter& bytes_recv = obs::Registry::process().counter("net.mem.bytes_recv");
  obs::Counter& timeouts = obs::Registry::process().counter("net.mem.timeouts");

  static MemMetrics& get() {
    static MemMetrics m;
    return m;
  }
};

}  // namespace

namespace detail {

void MemPipe::write(std::span<const std::uint8_t> data) {
  std::lock_guard lk(mu_);
  if (closed_) throw NetError("write on closed MemPipe");
  buf_.insert(buf_.end(), data.begin(), data.end());
  cv_.notify_all();
}

void MemPipe::read(std::span<std::uint8_t> out, std::chrono::milliseconds timeout) {
  const bool bounded = timeout.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::size_t got = 0;
  std::unique_lock lk(mu_);
  while (got < out.size()) {
    const auto ready = [this] { return head_ < buf_.size() || closed_; };
    if (bounded) {
      if (!cv_.wait_until(lk, deadline, ready)) {
        throw TimeoutError("MemPipe recv timed out with " +
                           std::to_string(out.size() - got) + " bytes outstanding");
      }
    } else {
      cv_.wait(lk, ready);
    }
    if (head_ == buf_.size() && closed_) {
      throw NetError("MemPipe closed with " + std::to_string(out.size() - got) +
                     " bytes outstanding");
    }
    const std::size_t take = std::min(out.size() - got, buf_.size() - head_);
    std::memcpy(out.data() + got, buf_.data() + head_, take);
    got += take;
    head_ += take;
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    }
  }
}

void MemPipe::close() {
  std::lock_guard lk(mu_);
  closed_ = true;
  cv_.notify_all();
}

}  // namespace detail

std::pair<std::unique_ptr<MemChannel>, std::unique_ptr<MemChannel>> MemChannel::make_pair() {
  auto a_to_b = std::make_shared<detail::MemPipe>();
  auto b_to_a = std::make_shared<detail::MemPipe>();
  auto a = std::unique_ptr<MemChannel>(new MemChannel(a_to_b, b_to_a));
  auto b = std::unique_ptr<MemChannel>(new MemChannel(b_to_a, a_to_b));
  return {std::move(a), std::move(b)};
}

void MemChannel::send(std::span<const std::uint8_t> data) {
  out_->write(data);
  MemMetrics::get().bytes_sent.add(data.size());
}

void MemChannel::recv(std::span<std::uint8_t> out) {
  try {
    in_->read(out, timeout_);
  } catch (const TimeoutError&) {
    MemMetrics::get().timeouts.add(1);
    throw;
  }
  MemMetrics::get().bytes_recv.add(out.size());
}

void MemChannel::close() {
  out_->close();
  in_->close();
}

}  // namespace hpm::net
