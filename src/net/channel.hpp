// Layer 1 of the paper's software stack: basic data communication
// utilities. Migration information can be moved over TCP, a shared file
// system, or (for in-process experiments) a memory pipe — all behind one
// blocking byte-stream interface.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>

namespace hpm::net {

/// Blocking, reliable, ordered byte stream between a migration source and
/// destination. Implementations: MemChannel (in-process), FileChannel
/// (shared file system), SocketChannel (TCP).
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;

  /// Send all `data.size()` bytes; throws hpm::NetError on failure, or
  /// hpm::TimeoutError when a deadline is set and the peer stops draining.
  virtual void send(std::span<const std::uint8_t> data) = 0;

  /// Receive exactly `out.size()` bytes; throws hpm::NetError on failure
  /// or premature end of stream, hpm::TimeoutError when a deadline is set
  /// and the bytes do not arrive in time.
  virtual void recv(std::span<std::uint8_t> out) = 0;

  /// Deadline for each subsequent send/recv call (the full call, not per
  /// chunk). Zero — the default — means block without bound.
  virtual void set_timeout(std::chrono::milliseconds timeout) = 0;

  /// Signal end-of-stream to the peer. Idempotent.
  virtual void close() = 0;

  /// Tear the channel down without orderly end-of-stream signalling, as a
  /// crashed host would: the peer observes a broken stream, not a clean
  /// EOF. Defaults to close() where the two are indistinguishable.
  virtual void abort() { close(); }
};

}  // namespace hpm::net
