// Layer 1 of the paper's software stack: basic data communication
// utilities. Migration information can be moved over TCP, a shared file
// system, or (for in-process experiments) a memory pipe — all behind one
// blocking byte-stream interface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace hpm::net {

/// Blocking, reliable, ordered byte stream between a migration source and
/// destination. Implementations: MemChannel (in-process), FileChannel
/// (shared file system), SocketChannel (TCP).
class ByteChannel {
 public:
  virtual ~ByteChannel() = default;

  /// Send all `data.size()` bytes; throws hpm::NetError on failure.
  virtual void send(std::span<const std::uint8_t> data) = 0;

  /// Receive exactly `out.size()` bytes; throws hpm::NetError on failure
  /// or premature end of stream.
  virtual void recv(std::span<std::uint8_t> out) = 0;

  /// Signal end-of-stream to the peer. Idempotent.
  virtual void close() = 0;
};

}  // namespace hpm::net
