// TCP transport (the paper's primary transfer option), loopback-friendly.
//
// SocketListener binds an ephemeral port on 127.0.0.1; connect_to() dials
// it. Both sides then speak the blocking ByteChannel protocol over a real
// kernel socket, so the full systems path (connect, frame, send, recv,
// shutdown) stays exercised even in single-machine experiments.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/channel.hpp"

namespace hpm::net {

/// Connected TCP byte stream.
class SocketChannel final : public ByteChannel {
 public:
  explicit SocketChannel(int fd) noexcept : fd_(fd) {}
  ~SocketChannel() override;

  SocketChannel(const SocketChannel&) = delete;
  SocketChannel& operator=(const SocketChannel&) = delete;

  void send(std::span<const std::uint8_t> data) override;
  void recv(std::span<std::uint8_t> out) override;
  void set_timeout(std::chrono::milliseconds timeout) override { timeout_ = timeout; }
  void close() override;

 private:
  // close() may race a peer thread blocked in send/recv (abort() is the
  // documented cross-thread wake-up), so the fd is never torn down while
  // in use: close() only shutdown()s it — which wakes any poller — and
  // the destructor, which runs after every user is done, close()s it.
  int fd_ = -1;  ///< written only by the constructor
  std::atomic<bool> closed_{false};
  std::chrono::milliseconds timeout_{0};
};

/// Listening endpoint on 127.0.0.1 with a kernel-assigned port.
class SocketListener {
 public:
  SocketListener();
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Port the kernel assigned.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Block until a peer connects; returns the accepted channel.
  std::unique_ptr<SocketChannel> accept();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Dial 127.0.0.1:port.
std::unique_ptr<SocketChannel> connect_to(std::uint16_t port);

}  // namespace hpm::net
