// Deterministic network model for Tx-time accounting.
//
// The paper reports migration time as Collect + Tx + Restore measured on
// 10 Mb/s and 100 Mb/s Ethernet. We cannot reproduce the authors' wires,
// so Tx is modeled: latency + bytes / bandwidth (+ optional per-MTU
// protocol overhead). The model is used two ways: (1) pure accounting for
// benchmark tables, and (2) a ThrottledChannel decorator that delays a
// real channel so end-to-end runs feel the modeled network.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

#include "net/channel.hpp"

namespace hpm::net {

/// Point-to-point link model.
struct SimulatedLink {
  double bandwidth_bps = 100e6;   ///< payload bandwidth, bits/second
  double latency_s = 100e-6;      ///< one-way latency per message
  std::uint32_t mtu = 1500;       ///< frame size for per-frame overhead
  std::uint32_t frame_overhead = 58;  ///< Ethernet+IP+TCP header bytes per frame

  /// Seconds to move `bytes` of payload across the link.
  [[nodiscard]] double transfer_seconds(std::uint64_t bytes) const noexcept;

  /// The paper's two testbeds.
  static SimulatedLink ethernet_10mbps() { return {10e6, 500e-6, 1500, 58}; }
  static SimulatedLink ethernet_100mbps() { return {100e6, 100e-6, 1500, 58}; }
};

/// Decorator that adds modeled delay to an underlying channel, so
/// wall-clock Tx in end-to-end experiments matches the link model.
class ThrottledChannel final : public ByteChannel {
 public:
  ThrottledChannel(std::unique_ptr<ByteChannel> inner, SimulatedLink link)
      : inner_(std::move(inner)), link_(link) {}

  void send(std::span<const std::uint8_t> data) override;
  void recv(std::span<std::uint8_t> out) override;
  void set_timeout(std::chrono::milliseconds timeout) override {
    inner_->set_timeout(timeout);
  }
  void close() override;
  void abort() override { inner_->abort(); }

  [[nodiscard]] double modeled_send_seconds() const noexcept { return modeled_send_s_; }

 private:
  std::unique_ptr<ByteChannel> inner_;
  SimulatedLink link_;
  double modeled_send_s_ = 0;
  /// When the modeled link finishes transmitting everything sent so far;
  /// a send landing before this streams (no extra propagation latency).
  std::chrono::steady_clock::time_point busy_until_{};
};

}  // namespace hpm::net
