#include "net/factory.hpp"

#include "common/error.hpp"
#include "net/file_channel.hpp"
#include "net/mem_channel.hpp"

namespace hpm::net {

const char* transport_name(Transport transport) noexcept {
  switch (transport) {
    case Transport::Memory: return "memory";
    case Transport::Socket: return "socket";
    case Transport::File: return "file";
  }
  return "?";
}

ChannelPair make_channel_pair(Transport transport, const ChannelOptions& options) {
  ChannelPair pair;
  switch (transport) {
    case Transport::Memory: {
      auto [a, b] = MemChannel::make_pair();
      pair.source = std::move(a);
      pair.destination = std::move(b);
      break;
    }
    case Transport::Socket: {
      pair.listener = std::make_unique<SocketListener>();
      // Dial first; the loopback accept queue holds the connection until
      // accept() picks it up, so ordering cannot deadlock.
      pair.source = connect_to(pair.listener->port());
      pair.destination = pair.listener->accept();
      break;
    }
    case Transport::File: {
      pair.source = std::make_unique<FileWriterChannel>(options.spool_path);
      pair.destination = std::make_unique<FileReaderChannel>(options.spool_path);
      pair.duplex_ = false;
      break;
    }
    default:
      throw NetError("make_channel_pair: unknown transport");
  }
  if (options.timeout.count() > 0) {
    pair.source->set_timeout(options.timeout);
    pair.destination->set_timeout(options.timeout);
  }
  return pair;
}

}  // namespace hpm::net
