#include "net/buffer_pool.hpp"

#include "obs/metrics.hpp"

namespace hpm::net {

namespace {

/// `net.pool.*` instruments: reuse ratio = reuses / acquires.
struct PoolMetrics {
  obs::Counter& acquires = obs::Registry::process().counter("net.pool.acquires");
  obs::Counter& reuses = obs::Registry::process().counter("net.pool.reuses");
  obs::Counter& releases = obs::Registry::process().counter("net.pool.releases");

  static PoolMetrics& get() {
    static PoolMetrics m;
    return m;
  }
};

}  // namespace

Bytes BufferPool::acquire(std::size_t size) {
  PoolMetrics& m = PoolMetrics::get();
  m.acquires.add(1);
  Bytes buf;
  {
    std::lock_guard lk(mu_);
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
      m.reuses.add(1);
    }
  }
  buf.resize(size);
  return buf;
}

void BufferPool::release(Bytes&& buf) {
  PoolMetrics::get().releases.add(1);
  std::lock_guard lk(mu_);
  if (free_.size() < kMaxRetained) free_.push_back(std::move(buf));
}

BufferPool& BufferPool::process() {
  static BufferPool pool;
  return pool;
}

}  // namespace hpm::net
