#include "net/file_channel.hpp"

#include <sys/stat.h>

#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace hpm::net {

namespace {

bool file_exists(const std::string& p) {
  struct stat st{};
  return ::stat(p.c_str(), &st) == 0;
}

/// `net.file.*` transport counters, shared by both spool-file endpoints.
struct FileMetrics {
  obs::Counter& bytes_sent = obs::Registry::process().counter("net.file.bytes_sent");
  obs::Counter& bytes_recv = obs::Registry::process().counter("net.file.bytes_recv");
  obs::Counter& timeouts = obs::Registry::process().counter("net.file.timeouts");

  static FileMetrics& get() {
    static FileMetrics m;
    return m;
  }
};

}  // namespace

FileWriterChannel::FileWriterChannel(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) throw NetError("cannot open spool file for writing: " + path_);
}

FileWriterChannel::~FileWriterChannel() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; close() failure is already fatal upstream.
  }
}

void FileWriterChannel::send(std::span<const std::uint8_t> data) {
  if (file_ == nullptr) throw NetError("send on closed FileWriterChannel");
  if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    throw NetError("short write to spool file " + path_);
  }
  if (std::fflush(file_) != 0) throw NetError("fflush failed on " + path_);
  FileMetrics::get().bytes_sent.add(data.size());
}

void FileReaderChannel::send(std::span<const std::uint8_t>) {
  throw NetError("FileReaderChannel is receive-only");
}

void FileWriterChannel::recv(std::span<std::uint8_t>) {
  throw NetError("FileWriterChannel is send-only");
}

void FileWriterChannel::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    std::FILE* done = std::fopen((path_ + ".done").c_str(), "wb");
    if (done == nullptr) throw NetError("cannot create done marker for " + path_);
    std::fclose(done);
  }
}

void FileWriterChannel::abort() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

FileReaderChannel::FileReaderChannel(std::string path) : path_(std::move(path)) {}

FileReaderChannel::~FileReaderChannel() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileReaderChannel::recv(std::span<std::uint8_t> out) {
  using namespace std::chrono_literals;
  const bool bounded = timeout_.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  std::size_t got = 0;
  while (got < out.size()) {
    if (bounded && std::chrono::steady_clock::now() >= deadline) {
      FileMetrics::get().timeouts.add(1);
      if (got > 0) FileMetrics::get().bytes_recv.add(got);
      throw TimeoutError("spool file " + path_ + " recv timed out with " +
                         std::to_string(out.size() - got) + " bytes outstanding");
    }
    if (file_ == nullptr) {
      file_ = std::fopen(path_.c_str(), "rb");
      if (file_ == nullptr) {
        std::this_thread::sleep_for(1ms);
        continue;
      }
    }
    std::fseek(file_, static_cast<long>(pos_), SEEK_SET);
    const std::size_t n = std::fread(out.data() + got, 1, out.size() - got, file_);
    got += n;
    pos_ += n;
    if (got < out.size()) {
      if (file_exists(path_ + ".done")) {
        // Re-check once more: the writer may have appended just before
        // dropping the marker.
        std::fseek(file_, static_cast<long>(pos_), SEEK_SET);
        const std::size_t m = std::fread(out.data() + got, 1, out.size() - got, file_);
        got += m;
        pos_ += m;
        if (got < out.size()) {
          throw NetError("spool file " + path_ + " ended " +
                         std::to_string(out.size() - got) + " bytes short");
        }
        break;
      }
      std::this_thread::sleep_for(1ms);
    }
  }
  FileMetrics::get().bytes_recv.add(got);
}

void FileReaderChannel::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace hpm::net
