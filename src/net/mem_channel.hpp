// In-process byte pipe for thread-to-thread migration experiments.
//
// A MemPipe owns one unidirectional buffer; MemChannel::make_pair() wires
// two endpoints so the migration source thread and destination thread can
// run the real send/recv protocol without a kernel socket.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "net/channel.hpp"

namespace hpm::net {

namespace detail {

/// Thread-safe unidirectional byte queue with blocking reads.
class MemPipe {
 public:
  void write(std::span<const std::uint8_t> data);
  /// Blocks until `out` is filled; a zero timeout blocks without bound,
  /// otherwise throws hpm::TimeoutError once the deadline passes.
  void read(std::span<std::uint8_t> out, std::chrono::milliseconds timeout);
  void close();

 private:
  // Contiguous ring-ish buffer: bytes [head_, buf_.size()) are pending.
  // Reads memcpy whole spans instead of popping a deque byte-by-byte;
  // the buffer is compacted whenever it drains.
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;
  bool closed_ = false;
};

}  // namespace detail

/// One endpoint of an in-process duplex channel.
class MemChannel final : public ByteChannel {
 public:
  /// Create a connected pair: bytes sent on one endpoint are received on
  /// the other.
  static std::pair<std::unique_ptr<MemChannel>, std::unique_ptr<MemChannel>> make_pair();

  void send(std::span<const std::uint8_t> data) override;
  void recv(std::span<std::uint8_t> out) override;
  void set_timeout(std::chrono::milliseconds timeout) override { timeout_ = timeout; }
  void close() override;

 private:
  MemChannel(std::shared_ptr<detail::MemPipe> out, std::shared_ptr<detail::MemPipe> in)
      : out_(std::move(out)), in_(std::move(in)) {}
  std::shared_ptr<detail::MemPipe> out_;
  std::shared_ptr<detail::MemPipe> in_;
  std::chrono::milliseconds timeout_{0};
};

}  // namespace hpm::net
