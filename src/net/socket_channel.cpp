#include "net/socket_channel.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace hpm::net {

namespace {

using Clock = std::chrono::steady_clock;

/// `net.socket.*` transport counters, shared by every SocketChannel.
struct SocketMetrics {
  obs::Counter& bytes_sent = obs::Registry::process().counter("net.socket.bytes_sent");
  obs::Counter& bytes_recv = obs::Registry::process().counter("net.socket.bytes_recv");
  obs::Counter& timeouts = obs::Registry::process().counter("net.socket.timeouts");

  static SocketMetrics& get() {
    static SocketMetrics m;
    return m;
  }
};

[[noreturn]] void fail(const std::string& op) {
  throw NetError(op + ": " + std::strerror(errno));
}

/// Wait until the fd is ready for `events` or the deadline passes.
/// `bounded == false` means wait without bound.
void wait_ready(int fd, short events, bool bounded, Clock::time_point deadline,
                const char* op) {
  for (;;) {
    int wait_ms = -1;
    if (bounded) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
      if (left.count() <= 0) {
        throw TimeoutError(std::string(op) + " timed out on socket");
      }
      wait_ms = static_cast<int>(left.count()) + 1;
    }
    pollfd pfd{fd, events, 0};
    const int n = ::poll(&pfd, 1, wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("poll");
    }
    if (n > 0) return;  // ready (or error/hup — the following I/O call reports it)
    // n == 0: poll timed out; loop re-checks the deadline and throws.
  }
}

}  // namespace

SocketChannel::~SocketChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketChannel::send(std::span<const std::uint8_t> data) {
  if (fd_ < 0 || closed_.load(std::memory_order_acquire)) {
    throw NetError("send on closed SocketChannel");
  }
  const bool bounded = timeout_.count() > 0;
  const auto deadline = Clock::now() + timeout_;
  std::size_t sent = 0;
  try {
    while (sent < data.size()) {
      wait_ready(fd_, POLLOUT, bounded, deadline, "send");
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
        fail("send");
      }
      sent += static_cast<std::size_t>(n);
    }
  } catch (const TimeoutError&) {
    SocketMetrics::get().timeouts.add(1);
    if (sent > 0) SocketMetrics::get().bytes_sent.add(sent);
    throw;
  }
  SocketMetrics::get().bytes_sent.add(sent);
}

void SocketChannel::recv(std::span<std::uint8_t> out) {
  if (fd_ < 0 || closed_.load(std::memory_order_acquire)) {
    throw NetError("recv on closed SocketChannel");
  }
  const bool bounded = timeout_.count() > 0;
  const auto deadline = Clock::now() + timeout_;
  std::size_t got = 0;
  try {
    while (got < out.size()) {
      wait_ready(fd_, POLLIN, bounded, deadline, "recv");
      const ssize_t n = ::recv(fd_, out.data() + got, out.size() - got, MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
        fail("recv");
      }
      if (n == 0) {
        throw NetError("peer closed connection with " + std::to_string(out.size() - got) +
                       " bytes outstanding");
      }
      got += static_cast<std::size_t>(n);
    }
  } catch (const TimeoutError&) {
    SocketMetrics::get().timeouts.add(1);
    if (got > 0) SocketMetrics::get().bytes_recv.add(got);
    throw;
  }
  SocketMetrics::get().bytes_recv.add(got);
}

void SocketChannel::close() {
  // shutdown() only: it wakes a peer thread blocked in poll() on this fd
  // (the cross-thread abort contract), while the fd itself stays valid
  // until the destructor — closing it here would race that thread's I/O
  // and could hand the fd number to an unrelated open().
  if (!closed_.exchange(true, std::memory_order_acq_rel) && fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

SocketListener::SocketListener() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) fail("bind");
  if (::listen(fd_, 1) < 0) fail("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) fail("getsockname");
  port_ = ntohs(addr.sin_port);
}

SocketListener::~SocketListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<SocketChannel> SocketListener::accept() {
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) fail("accept");
  return std::make_unique<SocketChannel>(client);
}

std::unique_ptr<SocketChannel> connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("connect");
  }
  return std::make_unique<SocketChannel>(fd);
}

}  // namespace hpm::net
