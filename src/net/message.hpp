// Length-prefixed message framing over a ByteChannel.
//
// The migration protocol exchanges a handful of discrete messages
// (migration request metadata, the state stream, acknowledgement); framing
// turns the raw byte stream into those messages with an explicit type tag
// so protocol errors are detected instead of mis-parsed.
#pragma once

#include <cstdint>

#include "common/hexdump.hpp"
#include "net/channel.hpp"

namespace hpm::net {

/// Message type tags used by the migration coordinator.
enum class MsgType : std::uint8_t {
  Hello = 1,       ///< destination announces readiness (payload: arch name)
  State = 2,       ///< the migration stream produced by collection
  Ack = 3,         ///< destination confirms successful restoration
  Error = 4,       ///< destination reports a restoration failure (payload: text)
  Shutdown = 5,    ///< orderly teardown without migration
};

struct Message {
  MsgType type;
  Bytes payload;
};

/// Send one framed message: u8 type, u32 length (big-endian), payload.
void send_message(ByteChannel& ch, MsgType type, std::span<const std::uint8_t> payload);

/// Receive one framed message; throws hpm::NetError on malformed frames.
Message recv_message(ByteChannel& ch, std::size_t max_payload = 1ull << 31);

}  // namespace hpm::net
