// Length-prefixed message framing over a ByteChannel.
//
// The migration protocol exchanges a handful of discrete messages
// (migration request metadata, the state stream, acknowledgement); framing
// turns the raw byte stream into those messages with an explicit type tag
// so protocol errors are detected instead of mis-parsed. Every frame
// carries a CRC-32 trailer over header+payload, so a transfer corrupted in
// flight surfaces as a NetError at the frame boundary — and can be nacked
// and retransmitted — instead of being mis-restored into a live process.
#pragma once

#include <cstdint>

#include "common/hexdump.hpp"
#include "net/channel.hpp"

namespace hpm::net {

/// Version of the coordinator's wire protocol, announced in the first
/// byte of the Hello payload. Bumped to 2 when the CRC trailer and Nack
/// were introduced; a mismatch aborts the attempt before any state moves.
inline constexpr std::uint8_t kProtocolVersion = 2;

/// Message type tags used by the migration coordinator.
enum class MsgType : std::uint8_t {
  Hello = 1,       ///< destination announces readiness (payload: version byte + arch name)
  State = 2,       ///< the migration stream produced by collection (monolithic)
  Ack = 3,         ///< destination confirms successful restoration
  Error = 4,       ///< destination reports a restoration failure (payload: text)
  Shutdown = 5,    ///< orderly teardown without migration
  Nack = 6,        ///< destination rejects a damaged frame; sender should retransmit
  StateBegin = 7,  ///< pipelined transfer opens (payload: u32 chunk size)
  StateChunk = 8,  ///< one stream slice (payload: u32 seq + bytes; frame CRC covers it)
  StateEnd = 9,    ///< pipelined transfer closes (u32 chunks, u64 bytes, u32 stream CRC)
};

struct Message {
  MsgType type;
  Bytes payload;
};

/// Send one framed message: u8 type, u32 length (big-endian), payload,
/// u32 CRC-32 (big-endian) over everything preceding it. The frame is
/// assembled in a pooled buffer and shipped with a single channel send.
void send_message(ByteChannel& ch, MsgType type, std::span<const std::uint8_t> payload);

/// Receive one framed message; throws hpm::NetError on malformed frames,
/// oversized length prefixes (checked BEFORE any allocation), or CRC
/// mismatch. The default cap is far below the u32 length field's range so
/// a hostile or corrupted prefix cannot drive a multi-GiB allocation.
Message recv_message(ByteChannel& ch, std::size_t max_payload = 1ull << 28);

/// --- chunked state transfer payloads -------------------------------------
/// StateBegin/StateChunk/StateEnd frame the pipelined stream: each chunk
/// carries a sequence number (gap/reorder detection on top of the frame
/// CRC); StateEnd carries the totals plus a CRC-32 over the *entire*
/// reassembled stream so a dropped chunk boundary cannot go unnoticed.

struct StateEndInfo {
  std::uint32_t chunk_count = 0;
  std::uint64_t total_bytes = 0;
  std::uint32_t total_crc = 0;  ///< CRC-32 of the whole reassembled stream
};

Bytes encode_state_begin(std::uint32_t chunk_bytes);
Bytes encode_state_chunk(std::uint32_t seq, std::span<const std::uint8_t> bytes);
Bytes encode_state_end(const StateEndInfo& info);

/// Decoders throw hpm::NetError on short payloads.
std::uint32_t decode_state_begin(const Bytes& payload);
/// Returns the sequence number; the chunk's bytes are payload[4..].
std::uint32_t decode_state_chunk_seq(const Bytes& payload);
StateEndInfo decode_state_end(const Bytes& payload);

}  // namespace hpm::net
