// Length-prefixed message framing over a ByteChannel.
//
// The migration protocol exchanges a handful of discrete messages
// (migration request metadata, the state stream, acknowledgement); framing
// turns the raw byte stream into those messages with an explicit type tag
// so protocol errors are detected instead of mis-parsed. Every frame
// carries a CRC-32 trailer over header+payload, so a transfer corrupted in
// flight surfaces as a NetError at the frame boundary — and can be nacked
// and retransmitted — instead of being mis-restored into a live process.
#pragma once

#include <cstdint>

#include "common/hexdump.hpp"
#include "net/channel.hpp"

namespace hpm::net {

/// Version of the coordinator's wire protocol, announced in the first
/// byte of the Hello payload. Bumped to 2 when the CRC trailer and Nack
/// were introduced, to 3 for the transactional handoff (chunk acks,
/// resume, Prepare/Commit/Abort, digest-bearing StateEnd), to 4 for
/// session-tagged frame headers (N concurrent migrations multiplexed
/// over one channel), to 5 for destination failover (an incarnation
/// fencing token rides StateBegin, Prepare/Commit/Abort, and
/// PrepareAck; decoders still accept the shorter v4 payloads as
/// incarnation 1); a mismatch aborts the attempt before any state
/// moves.
inline constexpr std::uint8_t kProtocolVersion = 5;

/// Message type tags used by the migration coordinator.
enum class MsgType : std::uint8_t {
  Hello = 1,       ///< destination announces readiness (payload: version byte + arch name)
  State = 2,       ///< the migration stream produced by collection (monolithic)
  Ack = 3,         ///< destination confirms successful restoration
  Error = 4,       ///< destination reports a restoration failure (payload: text)
  Shutdown = 5,    ///< orderly teardown without migration
  Nack = 6,        ///< destination rejects a damaged frame; sender should retransmit
  StateBegin = 7,  ///< pipelined transfer opens (payload: u32 chunk size + u64 txn id)
  StateChunk = 8,  ///< one stream slice (payload: u32 seq + bytes; frame CRC covers it)
  StateEnd = 9,    ///< pipelined transfer closes (u32 chunks, u64 bytes, u64 digest)
  StateAck = 10,   ///< destination acks a chunk watermark (payload: u32 next expected seq)
  Prepare = 11,    ///< source asks: restoration verified? ready to own? (payload: u64 txn)
  PrepareAck = 12, ///< destination votes yes (payload: u64 txn + u64 its stream digest)
  Commit = 13,     ///< source relinquishes ownership — point of no return (u64 txn)
  Abort = 14,      ///< source cancels the handoff after Prepare (u64 txn)
  ResumeHello = 15,///< destination re-announces mid-stream (version + u64 txn + u32 next seq)
  Ping = 16,       ///< liveness probe (payload: u32 seq + u64 opaque echo stamp)
  Pong = 17,       ///< liveness reply: the Ping payload echoed verbatim
  ManifestBegin = 18,  ///< dedup: source announces the chunk address list (u64 txn + totals)
  ManifestChunk = 19,  ///< dedup: one batch of ordered chunk addresses
  ManifestAck = 20,    ///< dedup: destination's codec choice + miss index set
};

/// Highest tag recv_message accepts; anything outside [1, kMaxMsgType]
/// is a malformed frame.
inline constexpr std::uint8_t kMaxMsgType = 20;

struct Message {
  MsgType type;
  Bytes payload;
};

/// Send one framed message: u8 type, u32 length (big-endian), payload,
/// u32 CRC-32 (big-endian) over everything preceding it. The frame is
/// assembled in a pooled buffer and shipped with a single channel send.
void send_message(ByteChannel& ch, MsgType type, std::span<const std::uint8_t> payload);

/// Receive one framed message; throws hpm::NetError on malformed frames,
/// oversized length prefixes (checked BEFORE any allocation), or CRC
/// mismatch. The default cap is far below the u32 length field's range so
/// a hostile or corrupted prefix cannot drive a multi-GiB allocation.
Message recv_message(ByteChannel& ch, std::size_t max_payload = 1ull << 28);

/// --- session-tagged frames (frame header v4) ------------------------------
/// A channel shared by N concurrent migration sessions prefixes each frame
/// with a routing tag so a mig::FrameRouter can demultiplex it:
///
///   u8 0xF5 (magic)  u32 session_id  u16 epoch  u8 type  u32 len
///   payload  u32 CRC-32 over everything preceding it
///
/// The magic byte sits outside the legal MsgType range [1, kMaxMsgType],
/// so a receiver can detect a tagged (v4) frame from its first byte and
/// still accept an untagged v3 frame from a single-session peer — the two
/// layouts share the channel without negotiation. The epoch names one
/// physical binding of the session: a resumed session bumps it, and the
/// router drops frames from a stale epoch instead of splicing two channel
/// lifetimes into one stream.
inline constexpr std::uint8_t kTaggedFrameMagic = 0xF5;

struct TaggedMessage {
  bool tagged = false;         ///< false: a plain v3 frame (session fields are 0)
  std::uint32_t session_id = 0;
  std::uint16_t epoch = 0;
  Message msg;
};

/// Send one session-tagged frame with a single channel send.
void send_tagged_message(ByteChannel& ch, std::uint32_t session_id, std::uint16_t epoch,
                         MsgType type, std::span<const std::uint8_t> payload);

/// Receive one frame, tagged or plain — the router's entry point. Same
/// validation and errors as recv_message.
TaggedMessage recv_any_message(ByteChannel& ch, std::size_t max_payload = 1ull << 28);

/// --- chunked state transfer payloads -------------------------------------
/// StateBegin/StateChunk/StateEnd frame the pipelined stream: each chunk
/// carries a sequence number (gap/reorder detection on top of the frame
/// CRC); StateEnd carries the totals plus the end-to-end digest over the
/// *entire* canonical stream (msrm::StreamDigest), which the destination
/// recomputes and must match before it may vote in the commit phase.

struct StateBeginInfo {
  std::uint32_t chunk_bytes = 0;
  std::uint64_t txn_id = 0;  ///< transaction the journals arbitrate on
  /// Destination incarnation (fencing token): 1 for the primary, k+1 for
  /// the k-th standby a failover re-targeted the stream to. The
  /// destination learns its incarnation here and refuses any later
  /// Prepare/Commit/Abort naming a different one.
  std::uint32_t incarnation = 1;
};

struct StateEndInfo {
  std::uint32_t chunk_count = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t digest = 0;  ///< msrm::StreamDigest of the whole canonical stream
};

Bytes encode_state_begin(const StateBeginInfo& info);
Bytes encode_state_chunk(std::uint32_t seq, std::span<const std::uint8_t> bytes);
Bytes encode_state_end(const StateEndInfo& info);

/// Decoders throw hpm::NetError on short payloads.
StateBeginInfo decode_state_begin(const Bytes& payload);
/// Returns the sequence number; the chunk's bytes are payload[4..].
std::uint32_t decode_state_chunk_seq(const Bytes& payload);
StateEndInfo decode_state_end(const Bytes& payload);

/// --- dedup manifest payloads ----------------------------------------------
/// Content-addressed transfer (DESIGN.md §15): after StateBegin the source
/// sends the ordered address list of every chunk it is about to ship
/// (ManifestBegin totals + ManifestChunk batches), the destination answers
/// with the indices its chunk store cannot satisfy plus its negotiated
/// codec choice (ManifestAck), and StateChunk frames then carry only those
/// misses — each prefixed by a codec tag byte. Cache hits are spliced
/// locally; the StateEnd stream digest still verifies the reassembly.

struct ManifestBeginInfo {
  std::uint64_t txn_id = 0;
  std::uint32_t chunk_count = 0;  ///< total chunks (addresses announced)
  std::uint32_t chunk_bytes = 0;  ///< chunking granularity, mirrors StateBegin
  std::uint8_t codec_caps = 0;    ///< mig::WireCodec capability bits on offer
};

/// One announced chunk address (mirrors mig::ChunkAddr; net stays below mig).
struct ManifestEntry {
  std::uint64_t digest = 0;
  std::uint32_t length = 0;
};

struct ManifestChunkInfo {
  std::uint32_t first_index = 0;  ///< index of entries[0] in the full manifest
  std::vector<ManifestEntry> entries;
};

struct ManifestAckInfo {
  std::uint8_t codec = 0;  ///< mig::WireCodec the destination accepts for misses
  std::vector<std::uint32_t> misses;  ///< ascending chunk indices to transmit
};

/// Address batch size per ManifestChunk frame: 12 bytes/entry keeps the
/// frame well under a page while bounding per-frame overhead to noise.
inline constexpr std::size_t kManifestEntriesPerFrame = 256;

Bytes encode_manifest_begin(const ManifestBeginInfo& info);
Bytes encode_manifest_chunk(std::uint32_t first_index, std::span<const ManifestEntry> entries);
Bytes encode_manifest_ack(const ManifestAckInfo& info);

/// Decoders throw hpm::NetError on payloads whose declared counts
/// disagree with their byte length (hostile or corrupted frames).
ManifestBeginInfo decode_manifest_begin(const Bytes& payload);
ManifestChunkInfo decode_manifest_chunk(const Bytes& payload);
ManifestAckInfo decode_manifest_ack(const Bytes& payload);

/// Dedup-mode StateChunk payload: u32 seq + u8 codec tag + coded body
/// (tag 0 = raw). The plain encode_state_chunk layout (no tag byte) stays
/// the non-dedup wire format; the StateBegin/ManifestBegin exchange tells
/// the destination which layout to expect.
Bytes encode_state_chunk_coded(std::uint32_t seq, std::uint8_t codec_tag,
                               std::span<const std::uint8_t> body);

/// --- liveness payloads ----------------------------------------------------
/// Ping/Pong are control frames a SessionSupervisor multiplexes through
/// the same v4 router as the data stream: the probe carries a sequence
/// number (for miss accounting) and an opaque monotonic-clock stamp the
/// peer echoes verbatim, so the prober computes the RTT without any
/// clock agreement. The protocol state machines never see either frame —
/// the router answers and consumes them at the pump.

struct PingInfo {
  std::uint32_t seq = 0;
  std::uint64_t stamp_ns = 0;  ///< prober's steady-clock send time, echoed back
};
Bytes encode_ping(const PingInfo& info);
PingInfo decode_ping(const Bytes& payload);

/// --- transactional handoff payloads --------------------------------------
/// StateAck carries the destination's receive watermark (the next sequence
/// number it expects); Prepare/Commit/Abort carry the transaction id;
/// PrepareAck adds the destination's own stream digest so the source can
/// cross-check before committing; ResumeHello re-opens a transaction on a
/// fresh channel at the given watermark.

Bytes encode_state_ack(std::uint32_t next_seq);
std::uint32_t decode_state_ack(const Bytes& payload);

Bytes encode_txn(std::uint64_t txn_id);
std::uint64_t decode_txn(const Bytes& payload);

/// Transaction id plus the destination incarnation it addresses — the
/// v5 payload of Prepare/Commit/Abort. A destination whose incarnation
/// differs must refuse the verdict (it was fenced off by a failover);
/// the 8-byte v4 payload decodes as incarnation 1.
struct TxnTokenInfo {
  std::uint64_t txn_id = 0;
  std::uint32_t incarnation = 1;
};
Bytes encode_txn_token(const TxnTokenInfo& info);
TxnTokenInfo decode_txn_token(const Bytes& payload);

struct PrepareAckInfo {
  std::uint64_t txn_id = 0;
  std::uint64_t digest = 0;  ///< destination-computed msrm::StreamDigest
  std::uint32_t incarnation = 1;  ///< echoes the StateBegin fencing token
};
Bytes encode_prepare_ack(const PrepareAckInfo& info);
PrepareAckInfo decode_prepare_ack(const Bytes& payload);

struct ResumeHelloInfo {
  std::uint8_t version = kProtocolVersion;
  std::uint64_t txn_id = 0;
  std::uint32_t next_seq = 0;  ///< first chunk the destination still needs
};
Bytes encode_resume_hello(const ResumeHelloInfo& info);
ResumeHelloInfo decode_resume_hello(const Bytes& payload);

}  // namespace hpm::net
