// Length-prefixed message framing over a ByteChannel.
//
// The migration protocol exchanges a handful of discrete messages
// (migration request metadata, the state stream, acknowledgement); framing
// turns the raw byte stream into those messages with an explicit type tag
// so protocol errors are detected instead of mis-parsed. Every frame
// carries a CRC-32 trailer over header+payload, so a transfer corrupted in
// flight surfaces as a NetError at the frame boundary — and can be nacked
// and retransmitted — instead of being mis-restored into a live process.
#pragma once

#include <cstdint>

#include "common/hexdump.hpp"
#include "net/channel.hpp"

namespace hpm::net {

/// Version of the coordinator's wire protocol, announced in the first
/// byte of the Hello payload. Bumped to 2 when the CRC trailer and Nack
/// were introduced; a mismatch aborts the attempt before any state moves.
inline constexpr std::uint8_t kProtocolVersion = 2;

/// Message type tags used by the migration coordinator.
enum class MsgType : std::uint8_t {
  Hello = 1,       ///< destination announces readiness (payload: version byte + arch name)
  State = 2,       ///< the migration stream produced by collection
  Ack = 3,         ///< destination confirms successful restoration
  Error = 4,       ///< destination reports a restoration failure (payload: text)
  Shutdown = 5,    ///< orderly teardown without migration
  Nack = 6,        ///< destination rejects a damaged frame; sender should retransmit
};

struct Message {
  MsgType type;
  Bytes payload;
};

/// Send one framed message: u8 type, u32 length (big-endian), payload,
/// u32 CRC-32 (big-endian) over everything preceding it.
void send_message(ByteChannel& ch, MsgType type, std::span<const std::uint8_t> payload);

/// Receive one framed message; throws hpm::NetError on malformed frames,
/// oversized length prefixes (checked BEFORE any allocation), or CRC
/// mismatch. The default cap is far below the u32 length field's range so
/// a hostile or corrupted prefix cannot drive a multi-GiB allocation.
Message recv_message(ByteChannel& ch, std::size_t max_payload = 1ull << 28);

}  // namespace hpm::net
