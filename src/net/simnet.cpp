#include "net/simnet.hpp"

#include <cmath>
#include <thread>

namespace hpm::net {

double SimulatedLink::transfer_seconds(std::uint64_t bytes) const noexcept {
  if (bytes == 0) return latency_s;
  const double frames = std::ceil(static_cast<double>(bytes) / static_cast<double>(mtu));
  const double wire_bytes = static_cast<double>(bytes) + frames * frame_overhead;
  return latency_s + wire_bytes * 8.0 / bandwidth_bps;
}

void ThrottledChannel::send(std::span<const std::uint8_t> data) {
  // A frame that starts while the link is still busy streams back-to-back
  // with its predecessor, so its propagation delay overlaps the
  // predecessor's transmission — only an idle link charges latency again.
  // Pacing against the absolute busy-horizon (sleep_until, not a per-call
  // sleep_for) keeps scheduler overshoot from accumulating across the
  // thousands of frames a chunked transfer emits.
  const auto now = std::chrono::steady_clock::now();
  // "Still streaming" tolerates a small scheduler-overshoot window past
  // the horizon: a sender that wakes late from sleep_until must stay on
  // the ideal schedule (and catch up with an immediate-return sleep), or
  // every frame would re-pay latency and re-accumulate the overshoot.
  const auto slack = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(link_.latency_s + 2e-3));
  const bool streaming = now < busy_until_ + slack;
  double dt = link_.transfer_seconds(data.size());
  if (streaming) dt -= link_.latency_s;
  modeled_send_s_ += dt;
  const auto start = streaming ? busy_until_ : now;
  busy_until_ =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(dt));
  std::this_thread::sleep_until(busy_until_);
  inner_->send(data);
}

void ThrottledChannel::recv(std::span<std::uint8_t> out) { inner_->recv(out); }

void ThrottledChannel::close() { inner_->close(); }

}  // namespace hpm::net
