#include "net/simnet.hpp"

#include <cmath>
#include <thread>

namespace hpm::net {

double SimulatedLink::transfer_seconds(std::uint64_t bytes) const noexcept {
  if (bytes == 0) return latency_s;
  const double frames = std::ceil(static_cast<double>(bytes) / static_cast<double>(mtu));
  const double wire_bytes = static_cast<double>(bytes) + frames * frame_overhead;
  return latency_s + wire_bytes * 8.0 / bandwidth_bps;
}

void ThrottledChannel::send(std::span<const std::uint8_t> data) {
  const double dt = link_.transfer_seconds(data.size());
  modeled_send_s_ += dt;
  std::this_thread::sleep_for(std::chrono::duration<double>(dt));
  inner_->send(data);
}

void ThrottledChannel::recv(std::span<std::uint8_t> out) { inner_->recv(out); }

void ThrottledChannel::close() { inner_->close(); }

}  // namespace hpm::net
