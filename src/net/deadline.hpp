// Adaptive IO deadlines from a Jacobson/Karels RTT estimator.
//
// Fixed per-call deadlines force one number to cover both a LAN round
// trip and a loaded peer mid-restore: too tight and healthy transfers
// abort, too loose and a wedged peer pins resources for the whole bound.
// DeadlinePolicy replaces the raw std::chrono::milliseconds threaded
// through the transfer protocol with a policy object: a `fixed` policy
// reproduces the old behavior bit-for-bit, an `adaptive` policy tracks
// the session's measured heartbeat RTT (EWMA mean + mean deviation, the
// TCP retransmission-timer estimator) and derives each call's deadline
// from it, clamped to a configured floor/ceiling so a cold start or a
// pathological sample can never yield an absurd bound.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>

namespace hpm::net {

/// Clamps and scaling for the adaptive deadline.
struct RttConfig {
  /// Smallest deadline the policy will ever hand out (seconds). Generous
  /// by default: the deadline also covers peer compute (restore), not
  /// just wire time.
  double floor_s = 0.25;
  /// Largest deadline — the cold-start value before any RTT sample.
  double ceiling_s = 5.0;
  /// Deadline = clamp(multiplier * rto, floor, ceiling). The RTO itself
  /// is srtt + 4*rttvar; the multiplier buys headroom for peer-side work
  /// between frames.
  double multiplier = 8.0;
};

/// Jacobson/Karels smoothed RTT + mean-deviation estimator (RFC 6298
/// constants: alpha = 1/8, beta = 1/4). A pure unit: feed samples in,
/// read srtt/rttvar/rto out; no clocks, no locks.
class RttEstimator {
 public:
  explicit RttEstimator(RttConfig config = {}) : config_(config) {}

  /// Fold one measured round trip (seconds) into the estimate.
  void sample(double rtt_s) noexcept {
    if (rtt_s < 0) rtt_s = 0;
    if (samples_ == 0) {
      srtt_ = rtt_s;
      rttvar_ = rtt_s / 2;
    } else {
      // Deviation first, against the OLD srtt (RFC 6298 §2).
      const double err = srtt_ - rtt_s;
      rttvar_ += ((err < 0 ? -err : err) - rttvar_) / 4;
      srtt_ += (rtt_s - srtt_) / 8;
    }
    ++samples_;
  }

  [[nodiscard]] bool warm() const noexcept { return samples_ > 0; }
  [[nodiscard]] std::uint64_t sample_count() const noexcept { return samples_; }
  [[nodiscard]] double srtt_s() const noexcept { return srtt_; }
  [[nodiscard]] double rttvar_s() const noexcept { return rttvar_; }

  /// Retransmission-timeout style bound: srtt + 4*rttvar, clamped to
  /// [floor, ceiling]. Cold start (no samples) is the ceiling — the most
  /// conservative guess until the link says otherwise.
  [[nodiscard]] double rto_s() const noexcept {
    if (samples_ == 0) return config_.ceiling_s;
    return clamp(srtt_ + 4 * rttvar_);
  }

  /// The per-call IO deadline: multiplier * the RAW rto (pre-clamp),
  /// then clamped once. Scaling the clamped rto instead would inflate
  /// the effective floor to multiplier * floor_s, so a fast LAN could
  /// never actually reach the configured floor.
  [[nodiscard]] double deadline_s() const noexcept {
    if (samples_ == 0) return config_.ceiling_s;
    return clamp(config_.multiplier * (srtt_ + 4 * rttvar_));
  }

  [[nodiscard]] const RttConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double clamp(double v) const noexcept {
    if (v < config_.floor_s) return config_.floor_s;
    if (v > config_.ceiling_s) return config_.ceiling_s;
    return v;
  }

  RttConfig config_;
  double srtt_ = 0;
  double rttvar_ = 0;
  std::uint64_t samples_ = 0;
};

/// The deadline seam the transfer protocol consults before each blocking
/// operation. Thread-safe: the supervisor feeds RTT samples from its
/// sweep thread while session threads read current(). Shared by both
/// endpoints of an in-process session so source and destination see the
/// same adaptive bound.
class DeadlinePolicy {
 public:
  /// The legacy behavior: every call gets `timeout` (0 = unbounded).
  static std::shared_ptr<DeadlinePolicy> fixed(std::chrono::milliseconds timeout) {
    return std::shared_ptr<DeadlinePolicy>(new DeadlinePolicy(timeout));
  }

  /// RTT-tracking deadlines, starting at the ceiling until warmed up.
  static std::shared_ptr<DeadlinePolicy> adaptive(RttConfig config = {}) {
    return std::shared_ptr<DeadlinePolicy>(new DeadlinePolicy(config));
  }

  /// Deadline for the next blocking send/recv (0 = block without bound,
  /// only ever returned by a fixed(0) policy).
  [[nodiscard]] std::chrono::milliseconds current() const {
    std::lock_guard lk(mu_);
    if (!adaptive_) return fixed_;
    return std::chrono::milliseconds(
        static_cast<long long>(estimator_.deadline_s() * 1000.0 + 0.5));
  }

  /// Fold a measured round trip in (no-op on a fixed policy).
  void observe_rtt(double rtt_s) {
    std::lock_guard lk(mu_);
    if (adaptive_) estimator_.sample(rtt_s);
  }

  [[nodiscard]] bool is_adaptive() const noexcept { return adaptive_; }

  /// Smoothed RTT in milliseconds (0 until the first sample; always 0 on
  /// a fixed policy) — what `hpmtool sessions` shows per session.
  [[nodiscard]] double srtt_ms() const {
    std::lock_guard lk(mu_);
    return adaptive_ && estimator_.warm() ? estimator_.srtt_s() * 1000.0 : 0.0;
  }

 private:
  explicit DeadlinePolicy(std::chrono::milliseconds timeout) : fixed_(timeout) {}
  explicit DeadlinePolicy(RttConfig config) : adaptive_(true), estimator_(config) {}

  mutable std::mutex mu_;
  const bool adaptive_ = false;
  std::chrono::milliseconds fixed_{0};
  RttEstimator estimator_;
};

}  // namespace hpm::net
