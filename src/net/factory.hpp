// One constructor for every transport. The coordinator, tests, and
// benches all need the same thing — a connected source/destination channel
// pair over one of the three transports — and used to hand-wire
// MemChannel::make_pair / SocketListener+connect_to / FileWriter+Reader
// separately. make_channel_pair() is the single copy of that wiring.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "net/channel.hpp"
#include "net/socket_channel.hpp"

namespace hpm::net {

/// How the two hosts exchange the migration stream.
enum class Transport : std::uint8_t {
  Memory,  ///< in-process pipe
  Socket,  ///< TCP over 127.0.0.1
  File,    ///< shared-file-system spool (simplex: source writes, dest reads)
};

const char* transport_name(Transport transport) noexcept;

struct ChannelOptions {
  /// Spool path; Transport::File only.
  std::string spool_path = "/tmp/hpm_spool.bin";

  /// Deadline applied to both endpoints at construction (0 = unbounded).
  std::chrono::milliseconds timeout{0};
};

/// A connected source/destination pair. For Transport::Socket the
/// listener that accepted the destination end rides along so its fd
/// outlives the channels; it is null for the other transports.
struct ChannelPair {
  std::unique_ptr<ByteChannel> source;
  std::unique_ptr<ByteChannel> destination;
  std::unique_ptr<SocketListener> listener;

  /// File transport has no destination->source byte path.
  [[nodiscard]] bool duplex() const noexcept { return duplex_; }

 private:
  friend ChannelPair make_channel_pair(Transport, const ChannelOptions&);
  bool duplex_ = true;
};

/// Build a connected pair over `transport`. Throws hpm::NetError when the
/// transport cannot be brought up (port exhaustion, unwritable spool).
ChannelPair make_channel_pair(Transport transport, const ChannelOptions& options = {});

}  // namespace hpm::net
