// Stable public facade for driving migrations.
//
// This header is the supported surface for embedding hpm: one migration
// (`hpm::run_migration` / `hpm::Coordinator`), a fleet of concurrent
// migrations (`hpm::migrate_many`), and the option/report types they
// exchange. Everything is re-exported into the top-level `hpm` namespace
// so callers never name the internal layers.
//
// Examples, tools, and external embedders should include this (or
// hpm/hpm.hpp, which includes it) instead of reaching into
// mig/coordinator.hpp or sched/cluster.hpp — those internal headers stay
// source-compatible but their layout is NOT a stability boundary; only
// the names re-exported here are.
#pragma once

#include "mig/context.hpp"
#include "mig/coordinator.hpp"
#include "sched/cluster.hpp"

namespace hpm {

/// --- the migratable program's side ---------------------------------------
using mig::MigContext;
using mig::MigrationExit;

/// --- one migration -------------------------------------------------------
using mig::Coordinator;
using mig::MigrationOutcome;
using mig::MigrationReport;
using mig::RunOptions;
using mig::Transport;
using mig::WireCodec;
using mig::outcome_name;
using mig::run_migration;
using mig::run_routed_migration;

/// --- a fleet of migrations ----------------------------------------------
using sched::FleetOptions;
using sched::SessionJob;
using sched::SessionOutcome;
using sched::migrate_many;

}  // namespace hpm
