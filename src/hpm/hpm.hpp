// Umbrella header for the hpm library: heterogeneous process migration
// after Chanchio & Sun, "Data Collection and Restoration for Heterogeneous
// Process Migration" (IPPS 2001).
//
// Layer map (paper §4):
//   1. transport       net/       channels, framing, link models
//   2. XDR             xdr/       canonical encoding, architecture models
//   3. MSRM            msrm/      Save/Restore pointer/variable engines
//      (+ MSR, MSRLT   msr/       blocks, lookup table, graph snapshots
//       + TI table     ti/        types, layouts, leaves)
//   4. application     mig/       annotation macros, contexts, coordinator
//
// Substrates beyond the paper's own stack:
//   memimg/   foreign-architecture memory images (heterogeneity on one box)
//   precc/    declaration parser + unsafe-feature checker + TI generator
//   apps/     the paper's three workloads as migratable programs
//   obs/      telemetry: metrics registry + trace spans (DESIGN.md §9)
#pragma once

#include "ckpt/checkpoint.hpp"
#include "ckpt/incremental.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/hexdump.hpp"
#include "common/rng.hpp"
#include "memimg/image_space.hpp"
#include "mig/annotate.hpp"
#include "mig/chunk_store.hpp"
#include "mig/context.hpp"
#include "hpm/migrate.hpp"
#include "mig/coordinator.hpp"
#include "mig/frame_router.hpp"
#include "mig/journal.hpp"
#include "mig/port.hpp"
#include "mig/session.hpp"
#include "msr/graph.hpp"
#include "msr/host_space.hpp"
#include "msr/msrlt.hpp"
#include "msr/resolve.hpp"
#include "msrm/collect.hpp"
#include "msrm/dump.hpp"
#include "msrm/execstate.hpp"
#include "msrm/restore.hpp"
#include "msrm/stream.hpp"
#include "net/factory.hpp"
#include "net/faulty_channel.hpp"
#include "net/file_channel.hpp"
#include "net/mem_channel.hpp"
#include "net/message.hpp"
#include "net/simnet.hpp"
#include "net/socket_channel.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "precc/codegen.hpp"
#include "precc/parser.hpp"
#include "sched/cluster.hpp"
#include "sched/live.hpp"
#include "ti/describe.hpp"
#include "ti/layout.hpp"
#include "ti/leaf.hpp"
#include "ti/table.hpp"
#include "xdr/arch.hpp"
#include "xdr/value.hpp"
#include "xdr/wire.hpp"
