// ImageSpace: a byte-exact simulation of a foreign architecture's process
// memory.
//
// This is the substitution for the paper's second physical machine: blocks
// live in an arena of raw bytes laid out under an arbitrary
// ArchDescriptor — SPARC big-endian 32-bit, MIPS little-endian, i386 with
// 4-byte double alignment, ... Pointer cells are stored at that
// architecture's pointer width and byte order and hold *image addresses*
// (arena offsets). Restoring a migration stream INTO an image and
// collecting it back OUT therefore exercises every conversion a real
// cross-machine migration exercises — verifiable bit-for-bit on one host.
#pragma once

#include <vector>

#include "msr/space.hpp"

namespace hpm::memimg {

class ImageSpace final : public msr::MemorySpace {
 public:
  ImageSpace(const ti::TypeTable& types, const xdr::ArchDescriptor& arch,
             msr::SearchStrategy strategy = msr::SearchStrategy::OrderedMap)
      : types_(&types),
        arch_(&arch),
        layouts_(types, arch),
        leaves_(types),
        msrlt_(strategy) {}

  const xdr::ArchDescriptor& arch() const noexcept override { return *arch_; }
  const ti::TypeTable& types() const noexcept override { return *types_; }
  const ti::LayoutMap& layouts() const noexcept override { return layouts_; }
  const ti::LeafIndex& leaves() const noexcept override { return leaves_; }
  msr::Msrlt& msrlt() noexcept override { return msrlt_; }
  const msr::Msrlt& msrlt() const noexcept override { return msrlt_; }

  xdr::PrimValue read_prim(msr::Address addr, xdr::PrimKind k) const override;
  void write_prim(msr::Address addr, xdr::PrimKind k, const xdr::PrimValue& v) override;
  msr::Address read_pointer(msr::Address addr) const override;
  void write_pointer(msr::Address addr, msr::Address value) override;

  /// Arena bytes ARE the foreign machine's raw storage; bounds-checked,
  /// declining (nullptr) rather than throwing on a bad range. The
  /// returned pointer is invalidated by the next allocate() — bulk
  /// copies must take it immediately before the memcpy.
  const std::uint8_t* raw_view(msr::Address addr, std::uint64_t len) const noexcept override {
    if (addr < kBase || addr - kBase + len > arena_.size()) return nullptr;
    return arena_.data() + (addr - kBase);
  }
  std::uint8_t* raw_mut(msr::Address addr, std::uint64_t len) noexcept override {
    if (addr < kBase || addr - kBase + len > arena_.size()) return nullptr;
    return arena_.data() + (addr - kBase);
  }

  /// Bump allocation from the arena. Throws hpm::ConversionError when the
  /// image outgrows the architecture's pointer width (a real ILP32
  /// machine would be out of address space too).
  msr::Address allocate(std::uint64_t size) override;

  /// Convenience: allocate + register a block in one step (tests and the
  /// heterogeneity benchmarks create image-resident variables this way).
  msr::BlockId create_block(msr::Segment seg, ti::TypeId type, std::uint32_t count,
                            std::string name);

  /// Read/write one leaf of a block by (id, ordinal) — the verification
  /// interface used to compare images across architectures.
  xdr::PrimValue read_leaf(msr::BlockId id, std::uint64_t ordinal) const;
  void write_leaf(msr::BlockId id, std::uint64_t ordinal, const xdr::PrimValue& v);

  /// Raw bytes of a block (endianness/layout inspection in tests).
  std::vector<std::uint8_t> block_bytes(msr::BlockId id) const;

  [[nodiscard]] std::uint64_t bytes_in_use() const noexcept { return next_ - kBase; }

 private:
  /// Image addresses start above 0 so that 0 stays the null pointer.
  static constexpr msr::Address kBase = 0x1000;

  const std::uint8_t* ptr(msr::Address addr, std::uint64_t need) const;
  std::uint8_t* ptr(msr::Address addr, std::uint64_t need);

  const ti::TypeTable* types_;
  const xdr::ArchDescriptor* arch_;
  ti::LayoutMap layouts_;
  ti::LeafIndex leaves_;
  msr::Msrlt msrlt_;
  std::vector<std::uint8_t> arena_;
  msr::Address next_ = kBase;
};

}  // namespace hpm::memimg
