#include "memimg/image_space.hpp"

#include <utility>
#include "common/error.hpp"
#include "msr/resolve.hpp"

namespace hpm::memimg {

const std::uint8_t* ImageSpace::ptr(msr::Address addr, std::uint64_t need) const {
  if (addr < kBase || addr - kBase + need > arena_.size()) {
    throw MsrError("image address " + std::to_string(addr) + " out of bounds");
  }
  return arena_.data() + (addr - kBase);
}

std::uint8_t* ImageSpace::ptr(msr::Address addr, std::uint64_t need) {
  return const_cast<std::uint8_t*>(std::as_const(*this).ptr(addr, need));
}

xdr::PrimValue ImageSpace::read_prim(msr::Address addr, xdr::PrimKind k) const {
  return xdr::read_raw(ptr(addr, arch_->layout(k).size), *arch_, k);
}

void ImageSpace::write_prim(msr::Address addr, xdr::PrimKind k, const xdr::PrimValue& v) {
  xdr::write_raw(ptr(addr, arch_->layout(k).size), *arch_, k, v);
}

msr::Address ImageSpace::read_pointer(msr::Address addr) const {
  return xdr::read_pointer_cell(ptr(addr, arch_->pointer.size), *arch_);
}

void ImageSpace::write_pointer(msr::Address addr, msr::Address value) {
  xdr::write_pointer_cell(ptr(addr, arch_->pointer.size), *arch_, value);
}

msr::Address ImageSpace::allocate(std::uint64_t size) {
  // Keep every allocation aligned for the widest scalar of the model.
  const msr::Address base = ti::align_up(next_, 16);
  const msr::Address end = base + size;
  if (arch_->pointer.size < 8) {
    const std::uint64_t max_addr = (1ull << (arch_->pointer.size * 8)) - 1;
    if (end > max_addr) {
      throw ConversionError("image for " + arch_->name + " exhausted its " +
                            std::to_string(arch_->pointer.size * 8) +
                            "-bit address space");
    }
  }
  if (end - kBase > arena_.size()) {
    arena_.resize(static_cast<std::size_t>(end - kBase), 0);
  }
  next_ = end;
  return base;
}

msr::BlockId ImageSpace::create_block(msr::Segment seg, ti::TypeId type, std::uint32_t count,
                                      std::string name) {
  const std::uint64_t size = block_size(type, count);
  const msr::Address base = allocate(size);
  return msrlt_.register_block(seg, base, size, type, count, std::move(name));
}

xdr::PrimValue ImageSpace::read_leaf(msr::BlockId id, std::uint64_t ordinal) const {
  const msr::Address addr = msr::address_of(*this, msr::LogicalPointer{id, ordinal});
  const msr::MemoryBlock* block = msrlt_.find_id(id);
  const std::uint64_t per = leaves_.count(block->type);
  const ti::LeafRef ref = ti::leaf_at(leaves_, layouts_, block->type, ordinal % per);
  if (ref.is_pointer) {
    return xdr::PrimValue::of_unsigned(xdr::PrimKind::ULongLong, read_pointer(addr));
  }
  return read_prim(addr, ref.prim);
}

void ImageSpace::write_leaf(msr::BlockId id, std::uint64_t ordinal, const xdr::PrimValue& v) {
  const msr::Address addr = msr::address_of(*this, msr::LogicalPointer{id, ordinal});
  const msr::MemoryBlock* block = msrlt_.find_id(id);
  const std::uint64_t per = leaves_.count(block->type);
  const ti::LeafRef ref = ti::leaf_at(leaves_, layouts_, block->type, ordinal % per);
  if (ref.is_pointer) {
    write_pointer(addr, v.u);
    return;
  }
  write_prim(addr, ref.prim, v);
}

std::vector<std::uint8_t> ImageSpace::block_bytes(msr::BlockId id) const {
  const msr::MemoryBlock* block = msrlt_.find_id(id);
  if (block == nullptr) throw MsrError("block_bytes: unknown block id");
  const std::uint8_t* p = ptr(block->base, block->size);
  return std::vector<std::uint8_t>(p, p + block->size);
}

}  // namespace hpm::memimg
