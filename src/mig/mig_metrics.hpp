// Process-wide mig.* metric singletons, shared by the migration layer's
// split translation units (serial_transfer, source_txn, dest_host,
// coordinator). Each struct resolves its instruments once against the
// obs::Registry; get() hands every caller the same references.
#pragma once

#include "obs/metrics.hpp"

namespace hpm::mig {

/// `mig.coordinator.*` counters for the retry machinery.
struct CoordinatorMetrics {
  obs::Counter& attempts = obs::Registry::process().counter("mig.coordinator.attempts");
  obs::Counter& retries = obs::Registry::process().counter("mig.coordinator.retries");
  obs::Counter& aborts = obs::Registry::process().counter("mig.coordinator.aborts");

  static CoordinatorMetrics& get() {
    static CoordinatorMetrics m;
    return m;
  }
};

/// `mig.pipeline.*` instruments for the chunked transfer.
struct PipelineMetrics {
  obs::Counter& chunks = obs::Registry::process().counter("mig.pipeline.chunks");
  obs::Histogram& chunk_bytes =
      obs::Registry::process().histogram("mig.pipeline.chunk_bytes", obs::Unit::Bytes);
  obs::Gauge& queue_depth = obs::Registry::process().gauge("mig.pipeline.queue_depth");
  obs::Histogram& overlap =
      obs::Registry::process().histogram("mig.pipeline.overlap_ratio", obs::Unit::None);

  static PipelineMetrics& get() {
    static PipelineMetrics m;
    return m;
  }
};

/// `mig.txn.*` counters for the two-phase handoff.
struct TxnMetrics {
  obs::Counter& begins = obs::Registry::process().counter("mig.txn.begins");
  obs::Counter& prepares = obs::Registry::process().counter("mig.txn.prepares");
  obs::Counter& commits = obs::Registry::process().counter("mig.txn.commits");
  obs::Counter& aborts = obs::Registry::process().counter("mig.txn.aborts");
  obs::Counter& indoubt_recoveries =
      obs::Registry::process().counter("mig.txn.indoubt_recoveries");

  static TxnMetrics& get() {
    static TxnMetrics m;
    return m;
  }
};

/// `mig.resume.*` instruments for the watermark/resume machinery.
struct ResumeMetrics {
  obs::Counter& attempts = obs::Registry::process().counter("mig.resume.attempts");
  obs::Counter& chunks_skipped =
      obs::Registry::process().counter("mig.resume.chunks_skipped");
  obs::Gauge& last_acked = obs::Registry::process().gauge("mig.resume.last_acked");

  static ResumeMetrics& get() {
    static ResumeMetrics m;
    return m;
  }
};

}  // namespace hpm::mig
