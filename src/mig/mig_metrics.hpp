// Process-wide mig.* metric singletons, shared by the migration layer's
// split translation units (serial_transfer, source_txn, dest_host,
// coordinator). Each struct resolves its instruments once against the
// obs::Registry; get() hands every caller the same references.
#pragma once

#include "obs/metrics.hpp"

namespace hpm::mig {

/// `mig.coordinator.*` counters for the retry machinery.
struct CoordinatorMetrics {
  obs::Counter& attempts = obs::Registry::process().counter("mig.coordinator.attempts");
  obs::Counter& retries = obs::Registry::process().counter("mig.coordinator.retries");
  obs::Counter& aborts = obs::Registry::process().counter("mig.coordinator.aborts");

  static CoordinatorMetrics& get() {
    static CoordinatorMetrics m;
    return m;
  }
};

/// `mig.pipeline.*` instruments for the chunked transfer.
struct PipelineMetrics {
  obs::Counter& chunks = obs::Registry::process().counter("mig.pipeline.chunks");
  obs::Histogram& chunk_bytes =
      obs::Registry::process().histogram("mig.pipeline.chunk_bytes", obs::Unit::Bytes);
  obs::Gauge& queue_depth = obs::Registry::process().gauge("mig.pipeline.queue_depth");
  obs::Histogram& overlap =
      obs::Registry::process().histogram("mig.pipeline.overlap_ratio", obs::Unit::None);

  static PipelineMetrics& get() {
    static PipelineMetrics m;
    return m;
  }
};

/// `mig.txn.*` counters for the two-phase handoff.
struct TxnMetrics {
  obs::Counter& begins = obs::Registry::process().counter("mig.txn.begins");
  obs::Counter& prepares = obs::Registry::process().counter("mig.txn.prepares");
  obs::Counter& commits = obs::Registry::process().counter("mig.txn.commits");
  obs::Counter& aborts = obs::Registry::process().counter("mig.txn.aborts");
  obs::Counter& indoubt_recoveries =
      obs::Registry::process().counter("mig.txn.indoubt_recoveries");

  static TxnMetrics& get() {
    static TxnMetrics m;
    return m;
  }
};

/// `mig.liveness.*` instruments for the heartbeat/supervision layer
/// (DESIGN.md §13): probe traffic, the RTT estimate feeding adaptive
/// deadlines, and the failure detector's verdicts.
struct LivenessMetrics {
  obs::Counter& pings = obs::Registry::process().counter("mig.liveness.pings");
  obs::Counter& pongs = obs::Registry::process().counter("mig.liveness.pongs");
  obs::Counter& missed =
      obs::Registry::process().counter("mig.liveness.missed_heartbeats");
  obs::Counter& wedged = obs::Registry::process().counter("mig.liveness.sessions_wedged");
  obs::Counter& cancels = obs::Registry::process().counter("mig.liveness.cancels");
  obs::Histogram& rtt =
      obs::Registry::process().histogram("mig.liveness.rtt_seconds", obs::Unit::Seconds);
  obs::Gauge& rtt_srtt_us = obs::Registry::process().gauge("mig.liveness.rtt_srtt_us");
  obs::Gauge& deadline_ms = obs::Registry::process().gauge("mig.liveness.deadline_ms");
  /// Wall time from a wedged session's last sign of life (pong or
  /// progress) to the supervisor declaring it dead.
  obs::Histogram& detection = obs::Registry::process().histogram(
      "mig.liveness.detection_seconds", obs::Unit::Seconds);
  obs::Gauge& live_sessions = obs::Registry::process().gauge("mig.liveness.live_sessions");

  static LivenessMetrics& get() {
    static LivenessMetrics m;
    return m;
  }
};

/// `mig.dedup.*` instruments for the content-addressed transfer
/// (DESIGN.md §15): manifest sizes, the destination's hit/miss split and
/// the bytes splicing saved, and the wire codec's achieved ratio
/// (coded/raw per transmitted miss — below 1.0 means compression paid;
/// raw-fallback chunks record 1.0).
struct DedupMetrics {
  obs::Counter& manifest_chunks =
      obs::Registry::process().counter("mig.dedup.manifest_chunks");
  obs::Counter& hits = obs::Registry::process().counter("mig.dedup.hits");
  obs::Counter& misses = obs::Registry::process().counter("mig.dedup.misses");
  obs::Counter& bytes_saved = obs::Registry::process().counter("mig.dedup.bytes_saved");
  obs::Histogram& codec_ratio =
      obs::Registry::process().histogram("mig.dedup.codec_ratio", obs::Unit::None);

  static DedupMetrics& get() {
    static DedupMetrics m;
    return m;
  }
};

/// `mig.failover.*` instruments for destination failover (DESIGN.md §16):
/// how often a primary was declared dead with standbys armed, the
/// re-targets actually dialed, the dial budget exhaustions, the fencing
/// rejections that kept a stale incarnation from committing, and the
/// availability gap a successful failover cost.
struct FailoverMetrics {
  obs::Counter& triggered = obs::Registry::process().counter("mig.failover.triggered");
  obs::Counter& redirects = obs::Registry::process().counter("mig.failover.redirects");
  obs::Counter& dial_failures =
      obs::Registry::process().counter("mig.failover.dial_failures");
  obs::Counter& fenced = obs::Registry::process().counter("mig.failover.fenced");
  obs::Histogram& downtime = obs::Registry::process().histogram(
      "mig.failover.downtime_seconds", obs::Unit::Seconds);

  static FailoverMetrics& get() {
    static FailoverMetrics m;
    return m;
  }
};

/// `mig.resume.*` instruments for the watermark/resume machinery.
struct ResumeMetrics {
  obs::Counter& attempts = obs::Registry::process().counter("mig.resume.attempts");
  obs::Counter& chunks_skipped =
      obs::Registry::process().counter("mig.resume.chunks_skipped");
  obs::Gauge& last_acked = obs::Registry::process().gauge("mig.resume.last_acked");

  static ResumeMetrics& get() {
    static ResumeMetrics m;
    return m;
  }
};

}  // namespace hpm::mig
