#include "mig/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "mig/chunk_assembler.hpp"
#include "msrm/stream.hpp"
#include "net/message.hpp"
#include "obs/span.hpp"

namespace hpm::mig {

namespace {

using Clock = std::chrono::steady_clock;

/// Deadline applied when fault injection is on but the caller set none:
/// an injected stall/truncation must never hang the run.
constexpr double kFaultInjectionDefaultTimeout = 5.0;

void remove_spool(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".done").c_str());
}

/// Deletes the spool (and its ".done" marker) when the run ends — orderly
/// or not — so no state leaks into the next Transport::File run.
struct SpoolCleanup {
  const RunOptions& options;
  ~SpoolCleanup() {
    if (options.transport == Transport::File) remove_spool(options.spool_path);
  }
};

Bytes hello_payload(const std::string& arch) {
  Bytes payload;
  payload.reserve(1 + arch.size());
  payload.push_back(net::kProtocolVersion);
  payload.insert(payload.end(), arch.begin(), arch.end());
  return payload;
}

std::string exception_text(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

void expect_hello(const net::Message& hello) {
  if (hello.type != net::MsgType::Hello) {
    throw MigrationError("source expected a Hello message");
  }
  if (hello.payload.empty() || hello.payload[0] != net::kProtocolVersion) {
    throw MigrationError("protocol version mismatch: destination speaks v" +
                         std::to_string(hello.payload.empty() ? 0 : hello.payload[0]) +
                         ", source speaks v" + std::to_string(net::kProtocolVersion));
  }
}

/// Run the destination program to completion after begin_restore*(). A
/// MigrationExit here is the stop_after_restore unwind: restoration
/// completed and the metrics are recorded; skipping the tail is the point.
void run_destination_program(const RunOptions& options, MigContext& ctx,
                             MigrationReport& report) {
  try {
    options.program(ctx);
  } catch (const MigrationExit&) {
  }
  report.restore_seconds = ctx.metrics().restore_seconds;
}

/// `mig.coordinator.*` counters for the retry machinery.
struct CoordinatorMetrics {
  obs::Counter& attempts = obs::Registry::process().counter("mig.coordinator.attempts");
  obs::Counter& retries = obs::Registry::process().counter("mig.coordinator.retries");
  obs::Counter& aborts = obs::Registry::process().counter("mig.coordinator.aborts");

  static CoordinatorMetrics& get() {
    static CoordinatorMetrics m;
    return m;
  }
};

/// `mig.pipeline.*` instruments for the chunked transfer.
struct PipelineMetrics {
  obs::Counter& chunks = obs::Registry::process().counter("mig.pipeline.chunks");
  obs::Histogram& chunk_bytes =
      obs::Registry::process().histogram("mig.pipeline.chunk_bytes", obs::Unit::Bytes);
  obs::Gauge& queue_depth = obs::Registry::process().gauge("mig.pipeline.queue_depth");
  obs::Histogram& overlap =
      obs::Registry::process().histogram("mig.pipeline.overlap_ratio", obs::Unit::None);

  static PipelineMetrics& get() {
    static PipelineMetrics m;
    return m;
  }
};

/// Bounded handoff between the collecting thread (producer) and the
/// sender thread. Back-pressure by design: push() blocks while the queue
/// is full, so a slow link throttles collection instead of buffering the
/// heap twice. poison() (sender died, or teardown) turns pushes into
/// drops so collection can finish and unwind normally.
class ChunkQueue {
 public:
  explicit ChunkQueue(std::size_t capacity) : capacity_(capacity) {}

  void push(Bytes chunk) {
    std::unique_lock lk(mu_);
    can_push_.wait(lk, [&] { return q_.size() < capacity_ || poisoned_; });
    if (poisoned_) return;
    q_.push_back(std::move(chunk));
    ++pushed_;
    PipelineMetrics::get().queue_depth.set(static_cast<std::int64_t>(q_.size()));
    can_pop_.notify_one();
  }

  /// False once the queue is closed and drained.
  bool pop(Bytes& out) {
    std::unique_lock lk(mu_);
    can_pop_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    PipelineMetrics::get().queue_depth.set(static_cast<std::int64_t>(q_.size()));
    can_push_.notify_one();
    return true;
  }

  /// Close the producer side; `end` (if set) tells the sender to finish
  /// with a StateEnd frame after draining. First close wins.
  void close(std::optional<net::StateEndInfo> end) {
    std::lock_guard lk(mu_);
    if (closed_) return;
    end_ = end;
    closed_ = true;
    can_pop_.notify_all();
  }

  void poison() {
    std::lock_guard lk(mu_);
    poisoned_ = true;
    can_push_.notify_all();
  }

  [[nodiscard]] std::uint32_t pushed() const {
    std::lock_guard lk(mu_);
    return pushed_;
  }

  [[nodiscard]] std::optional<net::StateEndInfo> end_info() const {
    std::lock_guard lk(mu_);
    return end_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<Bytes> q_;
  std::size_t capacity_;
  std::uint32_t pushed_ = 0;
  bool closed_ = false;
  bool poisoned_ = false;
  std::optional<net::StateEndInfo> end_;
};

/// Queue bound: deep enough to ride out send jitter, small enough that a
/// stalled link stops collection after ~capacity chunks of lookahead.
constexpr std::size_t kChunkQueueCapacity = 8;

/// One transfer attempt: bring up a destination, move the buffered stream,
/// wait for the verdict. Returns true on success; on a recoverable failure
/// returns false with `cause` set. Unrecoverable source-side failures
/// (anything outside the hpm::Error hierarchy) propagate.
bool attempt_transfer(const RunOptions& options, const Bytes& stream,
                      MigrationReport& report,
                      const std::shared_ptr<net::FaultState>& fault_state,
                      const std::shared_ptr<net::FaultState>& dest_fault_state,
                      std::chrono::milliseconds timeout, std::string& cause) {
  const bool duplex = options.transport != Transport::File;
  // A fresh attempt gets a fresh spool; a half-written one from a failed
  // attempt must not satisfy this attempt's reader.
  if (options.transport == Transport::File) remove_spool(options.spool_path);

  net::ChannelPair channels = net::make_channel_pair(
      options.transport, {.spool_path = options.spool_path, .timeout = timeout});
  if (options.fault_plan.enabled()) {
    channels.source = std::make_unique<net::FaultyChannel>(std::move(channels.source),
                                                           options.fault_plan, fault_state);
    if (timeout.count() > 0) channels.source->set_timeout(timeout);
  }
  if (options.throttle) {
    channels.source = std::make_unique<net::ThrottledChannel>(std::move(channels.source),
                                                              options.link);
    if (timeout.count() > 0) channels.source->set_timeout(timeout);
  }
  if (options.dest_fault_plan.enabled()) {
    channels.destination = std::make_unique<net::FaultyChannel>(
        std::move(channels.destination), options.dest_fault_plan, dest_fault_state);
    if (timeout.count() > 0) channels.destination->set_timeout(timeout);
  }

  // --- destination host: invoked first, announces itself, waits (paper §2).
  std::exception_ptr dest_error;
  std::thread destination([&] {
    try {
      ti::TypeTable types;
      options.register_types(types);
      MigContext ctx(types, options.search);
      if (duplex) {
        net::send_message(*channels.destination, net::MsgType::Hello,
                          hello_payload(ctx.space().arch().name));
      }
      ctx.set_stop_after_restore(options.stop_after_restore);
      net::Message msg = net::recv_message(*channels.destination);
      if (msg.type != net::MsgType::State) {
        throw MigrationError("destination expected a State message");
      }
      ctx.begin_restore(std::move(msg.payload));
      run_destination_program(options, ctx, report);
      if (duplex) net::send_message(*channels.destination, net::MsgType::Ack, {});
    } catch (const KilledError&) {
      // A crashed process sends no Nack and runs no teardown protocol;
      // the source observes only the dead channel.
      dest_error = std::current_exception();
      try {
        channels.destination->abort();
      } catch (...) {
      }
    } catch (const NetError& e) {
      // Frame never arrived intact (CRC mismatch, truncation, timeout,
      // disconnect): nack it so the source retransmits instead of trusting
      // a damaged stream.
      dest_error = std::current_exception();
      if (duplex) {
        try {
          const std::string text = e.what();
          net::send_message(*channels.destination, net::MsgType::Nack,
                            Bytes(text.begin(), text.end()));
        } catch (...) {
          // Source will observe the broken channel instead.
        }
      }
    } catch (...) {
      dest_error = std::current_exception();
      if (duplex) {
        try {
          const std::string text = exception_text(dest_error);
          net::send_message(*channels.destination, net::MsgType::Error,
                            Bytes(text.begin(), text.end()));
        } catch (...) {
        }
      }
    }
  });

  // --- source host: validate the peer, replay the buffered stream.
  std::exception_ptr source_error;
  double measured_tx = 0;
  try {
    if (duplex) expect_hello(net::recv_message(*channels.source));
    {
      obs::Span tx_span("mig.tx");
      tx_span.arg("stream_bytes", std::uint64_t{stream.size()});
      tx_span.arg("transport", std::string(net::transport_name(options.transport)));
      net::send_message(*channels.source, net::MsgType::State, stream);
      measured_tx = tx_span.finish();
    }
    if (duplex) {
      const net::Message verdict = net::recv_message(*channels.source);
      const std::string text(verdict.payload.begin(), verdict.payload.end());
      switch (verdict.type) {
        case net::MsgType::Ack:
          break;
        case net::MsgType::Nack:
          throw MigrationError("destination rejected the State frame (Nack): " + text);
        case net::MsgType::Error:
          throw MigrationError("destination restore failed: " + text);
        default:
          throw MigrationError("unexpected verdict message from destination");
      }
    } else {
      channels.source->close();  // drop the .done marker for the reader
    }
  } catch (...) {
    source_error = std::current_exception();
    // Unblock a destination still waiting in recv so the join below cannot
    // deadlock. Tearing down the source end wakes a duplex peer (broken
    // pipe / TCP FIN); the file reader instead sees the .done marker from
    // an orderly close, or falls back on its own recv deadline when the
    // writer can no longer signal (injected disconnect). Only the source
    // end is touched: the destination channel stays owned by its thread.
    try {
      if (duplex) {
        channels.source->abort();
      } else {
        channels.source->close();
      }
    } catch (...) {
    }
  }

  destination.join();
  try {
    channels.source->close();
  } catch (...) {
  }
  try {
    channels.destination->close();
  } catch (...) {
  }

  if (source_error == nullptr && dest_error == nullptr) {
    report.tx_seconds = options.throttle
                            ? measured_tx
                            : options.link.transfer_seconds(stream.size());
    return true;
  }

  // The source's failure is primary: a destination error observed after a
  // source-side failure is usually just the torn-down channel.
  if (source_error != nullptr) {
    try {
      std::rethrow_exception(source_error);
    } catch (const Error& e) {
      cause = e.what();
      return false;
    }
    // Non-hpm exceptions escaped the protocol itself — not retryable.
  }
  cause = exception_text(dest_error);
  return false;
}

/// `mig.txn.*` counters for the two-phase handoff.
struct TxnMetrics {
  obs::Counter& begins = obs::Registry::process().counter("mig.txn.begins");
  obs::Counter& prepares = obs::Registry::process().counter("mig.txn.prepares");
  obs::Counter& commits = obs::Registry::process().counter("mig.txn.commits");
  obs::Counter& aborts = obs::Registry::process().counter("mig.txn.aborts");
  obs::Counter& indoubt_recoveries =
      obs::Registry::process().counter("mig.txn.indoubt_recoveries");

  static TxnMetrics& get() {
    static TxnMetrics m;
    return m;
  }
};

/// `mig.resume.*` instruments for the watermark/resume machinery.
struct ResumeMetrics {
  obs::Counter& attempts = obs::Registry::process().counter("mig.resume.attempts");
  obs::Counter& chunks_skipped =
      obs::Registry::process().counter("mig.resume.chunks_skipped");
  obs::Gauge& last_acked = obs::Registry::process().gauge("mig.resume.last_acked");

  static ResumeMetrics& get() {
    static ResumeMetrics m;
    return m;
  }
};

/// What the source durably decided about `txn`, per its journal. Scans
/// the raw records (rather than recover_from_journals) so an in-doubt
/// destination can distinguish "source aborted" from "source has not
/// decided YET" and poll for the verdict. Last decisive record wins.
enum class SourceDecision : std::uint8_t { Undecided, Commit, Abort };

SourceDecision last_source_decision(const std::string& path, std::uint64_t txn) {
  SourceDecision decision = SourceDecision::Undecided;
  for (const JournalRecord& r : Journal::replay(path)) {
    if (r.txn_id != txn) continue;
    switch (r.type) {
      case JournalRecordType::Commit:
      case JournalRecordType::Done:
        decision = SourceDecision::Commit;
        break;
      case JournalRecordType::Abort:
        decision = SourceDecision::Abort;
        break;
      default:
        break;
    }
  }
  return decision;
}

/// Source-side receive pump for one channel epoch. StateAck watermarks
/// are folded into an atomic as they arrive (the sender never blocks on
/// them); every other message queues for the coordinator thread. An idle
/// TimeoutError on the recv is tolerated — the destination is
/// legitimately silent while it restores — so liveness is enforced by
/// await()'s own deadline, not the channel's.
class ControlInbox {
 public:
  ControlInbox(net::ByteChannel& ch, std::atomic<std::uint32_t>& acked)
      : ch_(ch), acked_(acked), thread_([this] { pump(); }) {}

  ~ControlInbox() { stop(); }

  /// Abort the channel and join the pump. Idempotent; after the first
  /// call the channel reference is never touched again, so the channel
  /// may be destroyed once stop() returns.
  void stop() {
    if (!stopped_.exchange(true)) {
      try {
        ch_.abort();
      } catch (...) {
      }
    }
    if (thread_.joinable()) thread_.join();
  }

  /// Next non-ack message. Throws the pump's terminal error once the
  /// queue drains, or TimeoutError past `deadline` (zero = wait forever).
  net::Message await(std::chrono::milliseconds deadline) {
    std::unique_lock lk(mu_);
    auto ready = [&] { return !q_.empty() || error_ != nullptr; };
    if (deadline.count() > 0) {
      if (!cv_.wait_for(lk, deadline, ready)) {
        throw TimeoutError("timed out waiting for the destination's reply");
      }
    } else {
      cv_.wait(lk, ready);
    }
    if (!q_.empty()) {
      net::Message msg = std::move(q_.front());
      q_.pop_front();
      return msg;
    }
    std::rethrow_exception(error_);
  }

 private:
  void pump() {
    try {
      for (;;) {
        net::Message msg;
        try {
          msg = net::recv_message(ch_);
        } catch (const TimeoutError&) {
          if (stopped_.load()) throw;
          continue;
        }
        if (msg.type == net::MsgType::StateAck) {
          const std::uint32_t seq = net::decode_state_ack(msg.payload);
          std::uint32_t prev = acked_.load(std::memory_order_relaxed);
          while (seq > prev &&
                 !acked_.compare_exchange_weak(prev, seq, std::memory_order_relaxed)) {
          }
          ResumeMetrics::get().last_acked.set(seq);
        } else {
          std::lock_guard lk(mu_);
          q_.push_back(std::move(msg));
          cv_.notify_all();
        }
      }
    } catch (...) {
      std::lock_guard lk(mu_);
      error_ = std::current_exception();
      cv_.notify_all();
    }
  }

  net::ByteChannel& ch_;
  std::atomic<std::uint32_t>& acked_;
  std::atomic<bool> stopped_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<net::Message> q_;
  std::exception_ptr error_;
  std::thread thread_;
};

/// Destination endpoint of the transactional pipelined transfer. Unlike
/// the serial path's per-attempt destination, this host SURVIVES channel
/// failures: its rx loop parks on a channel error and adopts the
/// replacement the source offers, announcing its chunk watermark in
/// ResumeHello — one restoration spanning several physical connections.
/// Restoration is bracketed by the commit gate (Prepare/PrepareAck then
/// Commit/Abort); the gate's decisions are write-ahead journaled, and an
/// in-doubt gate (voted yes, verdict lost) polls the source's journal
/// for the durable decision instead of guessing.
class DestinationHost {
 public:
  DestinationHost(const RunOptions& options, MigrationReport& report, Journal& journal,
                  std::string source_journal_path, std::chrono::milliseconds timeout)
      : options_(options),
        report_(report),
        journal_(journal),
        source_journal_path_(std::move(source_journal_path)),
        timeout_(timeout) {}

  ~DestinationHost() {
    close();
    join();
  }

  void start(std::unique_ptr<net::ByteChannel> ch) {
    ch_ = std::move(ch);
    thread_ = std::thread([this] { run(); });
  }

  /// Offer a replacement channel for a resume attempt. False once the
  /// destination can no longer adopt one (crashed, failed, finished).
  bool offer(std::unique_ptr<net::ByteChannel> ch) {
    std::lock_guard lk(mu_);
    if (dead_ || finished_ || closed_) return false;
    if (timeout_.count() > 0) ch->set_timeout(timeout_);
    offered_ = std::move(ch);
    cv_.notify_all();
    return true;
  }

  /// No further channels will come; a parked rx gives up.
  void close() {
    std::lock_guard lk(mu_);
    closed_ = true;
    cv_.notify_all();
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] bool resumable() const {
    std::lock_guard lk(mu_);
    return !dead_ && !finished_;
  }
  [[nodiscard]] bool finished() const {
    std::lock_guard lk(mu_);
    return finished_;
  }
  [[nodiscard]] bool committed() const {
    std::lock_guard lk(mu_);
    return committed_;
  }

 private:
  net::ByteChannel* current() const {
    std::lock_guard lk(mu_);
    return ch_.get();
  }

  void set_dead(std::exception_ptr error) {
    std::lock_guard lk(mu_);
    dead_ = true;
    if (error_ == nullptr) error_ = std::move(error);
    cv_.notify_all();
  }

  void mark_finished() {
    std::lock_guard lk(mu_);
    finished_ = true;
  }

  /// Park until the source offers a replacement channel (true) or closes
  /// the session (false).
  bool adopt_replacement() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return offered_ != nullptr || closed_; });
    if (offered_ == nullptr) return false;
    ch_ = std::move(offered_);
    return true;
  }

  void run() {
    try {
      ti::TypeTable types;
      options_.register_types(types);
      MigContext ctx(types, options_.search);
      ctx.set_stop_after_restore(options_.stop_after_restore);
      net::send_message(*current(), net::MsgType::Hello,
                        hello_payload(ctx.space().arch().name));
      net::Message first = net::recv_message(*current());
      if (timeout_.count() > 0) current()->set_timeout(timeout_);
      if (first.type == net::MsgType::Shutdown) {
        mark_finished();
        release_channel();
        return;
      }
      if (first.type != net::MsgType::StateBegin) {
        throw MigrationError("destination expected StateBegin or Shutdown");
      }
      const net::StateBeginInfo begin = net::decode_state_begin(first.payload);
      journal_.append({JournalRecordType::Begin, begin.txn_id, 0, "destination up"});
      ChunkAssembler assembler;
      std::thread rx([&] { rx_loop(assembler, begin.txn_id); });
      ctx.set_commit_gate(
          [&](std::uint64_t digest) { commit_gate(begin.txn_id, digest); });
      try {
        ctx.begin_restore_streaming(assembler);
        run_destination_program(options_, ctx, report_);
      } catch (...) {
        // rx drains until StateEnd, a channel failure, or session close —
        // the source guarantees one of them on every path.
        rx.join();
        throw;
      }
      rx.join();
      mark_finished();  // the workload ran; a lost confirmation cannot undo that
      try {
        net::send_message(*current(), net::MsgType::Ack, {});
      } catch (...) {
        // Best-effort: the source merely reports CommittedUnconfirmed.
      }
    } catch (const KilledError&) {
      // A crashed process sends no Nack and journals nothing more.
      set_dead(std::current_exception());
    } catch (const NetError& e) {
      set_dead(std::current_exception());
      if (!killed_.load()) {
        try {
          const std::string text = e.what();
          net::send_message(*current(), net::MsgType::Nack,
                            Bytes(text.begin(), text.end()));
        } catch (...) {
        }
      }
    } catch (...) {
      set_dead(std::current_exception());
      if (!killed_.load()) {
        try {
          const std::string text = exception_text(std::current_exception());
          net::send_message(*current(), net::MsgType::Error,
                            Bytes(text.begin(), text.end()));
        } catch (...) {
        }
      }
    }
    release_channel();
  }

  /// Drop the channel: orderly close on success, abort on failure so a
  /// peer blocked mid-recv wakes instead of waiting out its deadline.
  void release_channel() {
    std::unique_ptr<net::ByteChannel> ch;
    bool failed = false;
    {
      std::lock_guard lk(mu_);
      ch = std::move(ch_);
      failed = dead_;
    }
    if (ch == nullptr) return;
    try {
      if (failed) {
        ch->abort();
      } else {
        ch->close();
      }
    } catch (...) {
    }
  }

  void rx_loop(ChunkAssembler& assembler, std::uint64_t txn) {
    const std::uint32_t ack_every = options_.ack_every_chunks;
    std::uint32_t since_ack = 0;
    for (;;) {
      net::Message msg;
      try {
        msg = net::recv_message(*current());
      } catch (const NetError& e) {
        // The channel died mid-stream, but the stream itself is resumable
        // from the assembler's watermark: park for a replacement channel.
        if (!adopt_replacement()) {
          assembler.fail(std::string("chunk stream abandoned: ") + e.what());
          return;
        }
        try {
          net::send_message(*current(), net::MsgType::ResumeHello,
                            net::encode_resume_hello({net::kProtocolVersion, txn,
                                                      assembler.chunks_received()}));
        } catch (const KilledError&) {
          killed_.store(true);
          assembler.fail("destination crashed");
          return;
        } catch (const NetError&) {
          continue;  // that channel died instantly; park again
        }
        since_ack = 0;
        continue;
      }
      if (msg.type == net::MsgType::StateChunk) {
        try {
          const std::uint32_t seq = net::decode_state_chunk_seq(msg.payload);
          assembler.append(seq, std::span<const std::uint8_t>(msg.payload).subspan(4));
        } catch (const NetError&) {
          // ProtocolError from the assembler (already poisoned with the
          // typed reason) or a short payload: a hostile or buggy peer,
          // not a recoverable link fault.
          assembler.fail("malformed StateChunk payload");
          return;
        }
        if (ack_every != 0 && ++since_ack >= ack_every) {
          since_ack = 0;
          try {
            net::send_message(*current(), net::MsgType::StateAck,
                              net::encode_state_ack(assembler.chunks_received()));
          } catch (const KilledError&) {
            killed_.store(true);
            assembler.fail("destination crashed");
            return;
          } catch (const NetError&) {
            // The ack channel is dying; the next recv parks us.
          }
        }
      } else if (msg.type == net::MsgType::StateEnd) {
        try {
          assembler.finish(net::decode_state_end(msg.payload));
        } catch (const NetError&) {
          assembler.fail("malformed StateEnd payload");
        }
        return;
      } else {
        assembler.fail("unexpected message mid-transfer");
        return;
      }
    }
  }

  /// The voting half of the handoff, run on the restore thread once every
  /// restoration check (including the end-to-end digest) passed. Returns
  /// normally only with Committed journaled; every throw unwinds the
  /// program before the tail runs — the destination must not execute what
  /// it does not own.
  void commit_gate(std::uint64_t txn, std::uint64_t digest) {
    net::ByteChannel& ch = *current();
    net::Message msg;
    try {
      msg = net::recv_message(ch);
    } catch (const NetError& e) {
      // Nothing was promised yet: losing the channel before Prepare is a
      // plain safe abort, not an in-doubt state.
      throw MigrationError(std::string("handoff lost before Prepare: ") + e.what());
    }
    if (msg.type != net::MsgType::Prepare) {
      throw MigrationError("destination expected Prepare after restoring");
    }
    if (net::decode_txn(msg.payload) != txn) {
      throw MigrationError("Prepare names a different transaction");
    }
    journal_.append({JournalRecordType::Prepared, txn, digest, ""});
    TxnMetrics::get().prepares.add(1);
    net::send_message(ch, net::MsgType::PrepareAck,
                      net::encode_prepare_ack({txn, digest}));
    net::Message verdict;
    try {
      verdict = net::recv_message(ch);
    } catch (const NetError& e) {
      resolve_in_doubt(txn, digest, e.what());
      return;
    }
    if (verdict.type == net::MsgType::Commit) {
      if (net::decode_txn(verdict.payload) != txn) {
        throw MigrationError("Commit names a different transaction");
      }
      record_committed(txn, digest, "");
      return;
    }
    if (verdict.type == net::MsgType::Abort) {
      throw MigrationError("source aborted the handoff after Prepare");
    }
    throw MigrationError("unexpected message in the commit phase");
  }

  /// We voted yes and the verdict vanished: only the journals can say who
  /// owns the process. The source always makes its decision durable
  /// before acting on it, so within the grace period a Commit or Abort
  /// record appears — unless the source itself crashed pre-decision,
  /// which resolves to presumed abort.
  void resolve_in_doubt(std::uint64_t txn, std::uint64_t digest, const char* why) {
    if (!journal_.durable()) {
      throw MigrationError(
          std::string("in-doubt handoff with no journal to consult (presumed abort): ") +
          why);
    }
    const auto grace =
        timeout_.count() > 0 ? 4 * timeout_ : std::chrono::milliseconds(2000);
    const auto deadline = Clock::now() + grace;
    for (;;) {
      switch (last_source_decision(source_journal_path_, txn)) {
        case SourceDecision::Commit:
          TxnMetrics::get().indoubt_recoveries.add(1);
          record_committed(txn, digest, "recovered: source journal shows Commit");
          return;
        case SourceDecision::Abort:
          throw MigrationError(
              "in-doubt handoff resolved to the source: its journal shows Abort");
        case SourceDecision::Undecided:
          break;
      }
      if (Clock::now() >= deadline) {
        throw MigrationError(
            "in-doubt handoff: no verdict recorded within the grace period "
            "(presumed abort)");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  void record_committed(std::uint64_t txn, std::uint64_t digest, std::string note) {
    journal_.append({JournalRecordType::Committed, txn, digest, std::move(note)});
    TxnMetrics::get().commits.add(1);
    std::lock_guard lk(mu_);
    committed_ = true;
  }

  const RunOptions& options_;
  MigrationReport& report_;
  Journal& journal_;
  const std::string source_journal_path_;
  const std::chrono::milliseconds timeout_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unique_ptr<net::ByteChannel> ch_;       ///< current endpoint (guarded by mu_)
  std::unique_ptr<net::ByteChannel> offered_;  ///< reconnect candidate from the source
  std::exception_ptr error_;
  bool closed_ = false;
  bool dead_ = false;
  bool committed_ = false;
  bool finished_ = false;
  std::atomic<bool> killed_{false};
  std::thread thread_;
};

enum class CommitResult : std::uint8_t { Confirmed, Unconfirmed };

/// The decision half of the handoff, run by the source after StateEnd.
/// Every pre-Commit failure journals Abort BEFORE rethrowing (so an
/// in-doubt destination resolves consistently); once the Commit record is
/// durable nothing can abort — a lost confirmation merely degrades the
/// result to Unconfirmed. KilledError passes through untouched: a crash
/// journals nothing, the log must hold only real decisions.
CommitResult source_commit_phase(net::ByteChannel& ch, ControlInbox& inbox,
                                 std::chrono::milliseconds timeout, std::uint64_t txn,
                                 std::uint64_t digest, Journal& journal) {
  try {
    net::send_message(ch, net::MsgType::Prepare, net::encode_txn(txn));
    const net::Message reply = inbox.await(timeout);
    const std::string text(reply.payload.begin(), reply.payload.end());
    if (reply.type == net::MsgType::Nack) {
      throw MigrationError("destination rejected the chunked stream (Nack): " + text);
    }
    if (reply.type == net::MsgType::Error) {
      throw MigrationError("destination restore failed: " + text);
    }
    if (reply.type != net::MsgType::PrepareAck) {
      throw MigrationError("unexpected message in the prepare phase");
    }
    const net::PrepareAckInfo vote = net::decode_prepare_ack(reply.payload);
    if (vote.txn_id != txn) {
      throw MigrationError("PrepareAck names a different transaction");
    }
    if (vote.digest != digest) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%016llx vs destination %016llx",
                    static_cast<unsigned long long>(digest),
                    static_cast<unsigned long long>(vote.digest));
      throw MigrationError(std::string("end-to-end digest mismatch at Prepare: source ") +
                           buf);
    }
  } catch (const KilledError&) {
    throw;
  } catch (const Error&) {
    // A destination that vetoes the handoff sends its Error/Nack and then
    // drops the channel; our Prepare can hit the dead pipe before the
    // pump delivers the veto. The frame survives the close in the pipe's
    // buffer, so grace-wait for it and prefer the destination's cause
    // over our own send failure.
    std::exception_ptr cause = std::current_exception();
    try {
      const net::Message pending = inbox.await(std::chrono::milliseconds(50));
      const std::string text(pending.payload.begin(), pending.payload.end());
      if (pending.type == net::MsgType::Error) {
        cause = std::make_exception_ptr(
            MigrationError("destination restore failed: " + text));
      } else if (pending.type == net::MsgType::Nack) {
        cause = std::make_exception_ptr(
            MigrationError("destination rejected the chunked stream (Nack): " + text));
      }
    } catch (...) {
      // Nothing queued; the original failure stands.
    }
    journal.append({JournalRecordType::Abort, txn, digest, "prepare phase failed"});
    TxnMetrics::get().aborts.add(1);
    try {
      net::send_message(ch, net::MsgType::Abort, net::encode_txn(txn));
    } catch (...) {
      // A dead channel cannot carry the Abort; the destination's in-doubt
      // poll reads the journal record instead.
    }
    std::rethrow_exception(cause);
  }
  // --- the decision is Commit: durable before the frame leaves, irrevocable after.
  journal.append({JournalRecordType::Commit, txn, digest, ""});
  TxnMetrics::get().commits.add(1);
  try {
    net::send_message(ch, net::MsgType::Commit, net::encode_txn(txn));
    const net::Message fin = inbox.await(timeout);
    if (fin.type == net::MsgType::Ack) {
      journal.append({JournalRecordType::Done, txn, digest, ""});
      return CommitResult::Confirmed;
    }
  } catch (const KilledError&) {
    throw;  // post-commit source crash: the destination recovers from the journal
  } catch (const Error&) {
  }
  return CommitResult::Unconfirmed;
}

std::unique_ptr<net::ByteChannel> wrap_source_channel(
    std::unique_ptr<net::ByteChannel> ch, const RunOptions& options,
    const std::shared_ptr<net::FaultState>& fault_state,
    std::chrono::milliseconds timeout) {
  if (options.fault_plan.enabled()) {
    ch = std::make_unique<net::FaultyChannel>(std::move(ch), options.fault_plan,
                                              fault_state);
  }
  if (options.throttle) {
    ch = std::make_unique<net::ThrottledChannel>(std::move(ch), options.link);
  }
  if (timeout.count() > 0) ch->set_timeout(timeout);
  return ch;
}

std::unique_ptr<net::ByteChannel> wrap_dest_channel(
    std::unique_ptr<net::ByteChannel> ch, const RunOptions& options,
    const std::shared_ptr<net::FaultState>& dest_fault_state) {
  if (options.dest_fault_plan.enabled()) {
    ch = std::make_unique<net::FaultyChannel>(std::move(ch), options.dest_fault_plan,
                                              dest_fault_state);
  }
  return ch;
}

/// Outcome of the transactional pipelined transfer.
enum class TxnResult : std::uint8_t {
  CompletedLocally,      ///< program finished without migrating
  Migrated,              ///< committed and confirmed
  CommittedUnconfirmed,  ///< committed; the destination's confirmation was lost
  SourceCrashed,         ///< injected source crash; journals arbitrate ownership
  Failed,                ///< retryable; the retained stream may replay serially
};

/// The transactional pipelined transfer: one destination host, one
/// transaction, up to `total_attempts` channel epochs. Attempt 1 streams
/// chunks while the collection DFS is still walking the graph; each
/// further attempt resumes from the destination's acked watermark out of
/// the retained stream. Restoration is bracketed by the two-phase commit.
TxnResult run_pipelined_transaction(const RunOptions& options, MigrationReport& report,
                                    Bytes& stream,
                                    const std::shared_ptr<net::FaultState>& fault_state,
                                    const std::shared_ptr<net::FaultState>& dest_fault_state,
                                    std::chrono::milliseconds timeout, Journal& src_journal,
                                    Journal& dst_journal, std::uint64_t txn,
                                    int total_attempts, int& attempts_used) {
  TxnMetrics::get().begins.add(1);
  report.txn_id = txn;

  // The destination's first recv spans the program's whole pre-trigger
  // phase, so the per-IO deadline is armed only once the transfer begins.
  net::ChannelPair channels = net::make_channel_pair(
      options.transport, {.spool_path = options.spool_path, .timeout = {}});
  std::unique_ptr<net::ByteChannel> src_ch =
      wrap_source_channel(std::move(channels.source), options, fault_state, timeout);

  DestinationHost dest(options, report, dst_journal, src_journal.path(), timeout);
  dest.start(wrap_dest_channel(std::move(channels.destination), options, dest_fault_state));

  CoordinatorMetrics::get().attempts.add(1);
  attempts_used = 1;
  report.attempts = 1;

  const std::size_t cb = std::max<std::size_t>(1, options.chunk_bytes);
  std::atomic<std::uint32_t> acked{0};
  std::unique_ptr<ControlInbox> inbox;

  ChunkQueue queue(kChunkQueueCapacity);
  std::exception_ptr sender_error;
  std::thread sender;
  auto join_sender = [&] {
    if (sender.joinable()) sender.join();
  };
  /// Stop the pump (which aborts the channel) so a blocked peer wakes and
  /// the channel can be replaced or destroyed.
  auto fail_channel = [&] {
    if (inbox != nullptr) {
      inbox->stop();
    } else if (src_ch != nullptr) {
      try {
        src_ch->abort();
      } catch (...) {
      }
    }
  };

  std::exception_ptr source_error;
  /// Set when options.program itself throws (anything but MigrationExit):
  /// a workload failure is the caller's to see, never a retryable
  /// transport fault — rethrown after teardown, matching the serial path.
  std::exception_ptr program_error;
  double measured_tx = 0;
  bool collected = false;
  bool killed = false;
  bool attempt_ok = false;
  bool unconfirmed = false;
  std::uint64_t digest = 0;
  net::StateEndInfo end;
  Clock::time_point pipeline_start{};

  // --- attempt 1: stream while collecting ----------------------------------
  try {
    expect_hello(net::recv_message(*src_ch));
    inbox = std::make_unique<ControlInbox>(*src_ch, acked);

    sender = std::thread([&] {
      try {
        PipelineMetrics& pm = PipelineMetrics::get();
        std::unique_ptr<obs::Span> tx_span;
        Bytes chunk;
        std::uint32_t seq = 0;
        while (queue.pop(chunk)) {
          if (tx_span == nullptr) {
            tx_span = std::make_unique<obs::Span>("mig.tx");
            tx_span->arg("transport",
                         std::string(net::transport_name(options.transport)));
            // Write-ahead: the transaction exists on disk before any
            // frame names it on the wire.
            src_journal.append({JournalRecordType::Begin, txn, 0, "source"});
            net::send_message(*src_ch, net::MsgType::StateBegin,
                              net::encode_state_begin({options.chunk_bytes, txn}));
          }
          net::send_message(*src_ch, net::MsgType::StateChunk,
                            net::encode_state_chunk(seq++, chunk));
          pm.chunks.add(1);
          pm.chunk_bytes.record(static_cast<double>(chunk.size()));
        }
        if (const auto e = queue.end_info()) {
          net::send_message(*src_ch, net::MsgType::StateEnd, net::encode_state_end(*e));
          if (tx_span != nullptr) measured_tx = tx_span->finish();
        }
      } catch (...) {
        sender_error = std::current_exception();
        queue.poison();  // collection must never block on a dead sender
      }
    });

    ti::TypeTable types;
    options.register_types(types);
    MigContext ctx(types, options.search);
    ctx.set_migrate_at_poll(options.migrate_at_poll);
    ctx.set_collect_sink(options.chunk_bytes, [&](std::span<const std::uint8_t> bytes) {
      if (pipeline_start == Clock::time_point{}) pipeline_start = Clock::now();
      queue.push(Bytes(bytes.begin(), bytes.end()));
    });

    std::atomic<bool> program_done{false};
    std::thread scheduler;
    if (options.request_after_seconds > 0) {
      scheduler = std::thread([&ctx, &program_done, delay = options.request_after_seconds] {
        const auto deadline = Clock::now() + std::chrono::duration<double>(delay);
        while (!program_done.load(std::memory_order_relaxed) && Clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (!program_done.load(std::memory_order_relaxed)) ctx.request_migration();
      });
    }
    auto join_scheduler = [&] {
      program_done.store(true, std::memory_order_relaxed);
      if (scheduler.joinable()) scheduler.join();
    };
    try {
      try {
        options.program(ctx);
      } catch (const MigrationExit&) {
        join_scheduler();
        throw;
      } catch (...) {
        join_scheduler();
        program_error = std::current_exception();
        throw;
      }
      join_scheduler();
    } catch (const MigrationExit&) {
      collected = true;
      stream = ctx.stream();  // retained for resumes and serial retries
      digest = ctx.stream_digest();
      report.stream_bytes = stream.size();
      report.collect_seconds = ctx.metrics().collect_seconds;
      report.source_arch = ctx.space().arch().name;
    }
    report.source_polls = ctx.poll_count();

    if (!collected) {
      queue.close(std::nullopt);
      join_sender();
      net::send_message(*src_ch, net::MsgType::Shutdown, {});
    } else {
      // Stream-derived, NOT queue.pushed(): a poisoned queue undercounts
      // (push drops silently after a sender failure), and a resume's
      // StateEnd must describe the whole fixed-size chunking.
      end.chunk_count = static_cast<std::uint32_t>((stream.size() + cb - 1) / cb);
      end.total_bytes = stream.size();
      end.digest = digest;
      queue.close(end);
      join_sender();
      if (sender_error != nullptr) std::rethrow_exception(sender_error);
      const CommitResult r =
          source_commit_phase(*src_ch, *inbox, timeout, txn, digest, src_journal);
      unconfirmed = (r == CommitResult::Unconfirmed);
      attempt_ok = true;
    }
  } catch (...) {
    source_error = std::current_exception();
    queue.poison();
    queue.close(std::nullopt);
    join_sender();
    fail_channel();
  }

  // Classify the attempt-1 failure before deciding whether to resume.
  bool fatal_other = false;  // non-hpm exception: propagate after teardown
  if (source_error != nullptr && program_error == nullptr) {
    try {
      std::rethrow_exception(source_error);
    } catch (const KilledError& e) {
      killed = true;
      if (collected) report.failure_causes.push_back("attempt 1: " + std::string(e.what()));
    } catch (const Error& e) {
      if (collected) report.failure_causes.push_back("attempt 1: " + std::string(e.what()));
    } catch (...) {
      fatal_other = true;
    }
  }

  // --- resume attempts: retransmit only past the acked watermark -----------
  const std::uint64_t total_chunks = collected ? (stream.size() + cb - 1) / cb : 0;
  double backoff = options.retry_backoff_seconds;
  while (collected && !attempt_ok && !unconfirmed && !killed && !fatal_other &&
         program_error == nullptr && attempts_used < total_attempts && dest.resumable()) {
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2, options.retry_backoff_cap_seconds);
    }
    ++attempts_used;
    report.attempts = attempts_used;
    CoordinatorMetrics::get().attempts.add(1);
    CoordinatorMetrics::get().retries.add(1);
    try {
      net::ChannelPair fresh = net::make_channel_pair(
          options.transport, {.spool_path = options.spool_path, .timeout = {}});
      std::unique_ptr<net::ByteChannel> fresh_src =
          wrap_source_channel(std::move(fresh.source), options, fault_state, timeout);
      if (!dest.offer(
              wrap_dest_channel(std::move(fresh.destination), options, dest_fault_state))) {
        report.failure_causes.push_back("attempt " + std::to_string(attempts_used) +
                                        ": destination no longer accepts a resume channel");
        break;
      }
      if (inbox != nullptr) {
        inbox->stop();
        inbox.reset();  // the pump must be gone before its channel is
      }
      src_ch = std::move(fresh_src);
      const net::Message hello = net::recv_message(*src_ch);
      if (hello.type != net::MsgType::ResumeHello) {
        throw MigrationError("source expected ResumeHello on the resume channel");
      }
      const net::ResumeHelloInfo info = net::decode_resume_hello(hello.payload);
      if (info.version != net::kProtocolVersion) {
        throw MigrationError("protocol version mismatch on resume: destination speaks v" +
                             std::to_string(info.version));
      }
      if (info.txn_id != txn) {
        throw MigrationError("ResumeHello names a different transaction");
      }
      if (info.next_seq > total_chunks) {
        throw MigrationError("destination claims more chunks than the stream holds");
      }
      ResumeMetrics::get().attempts.add(1);
      ResumeMetrics::get().chunks_skipped.add(info.next_seq);
      report.resumed_from_seq = static_cast<std::int64_t>(info.next_seq);
      inbox = std::make_unique<ControlInbox>(*src_ch, acked);
      {
        obs::Span tx_span("mig.tx");
        tx_span.arg("transport", std::string(net::transport_name(options.transport)));
        tx_span.arg("resumed_from", std::uint64_t{info.next_seq});
        PipelineMetrics& pm = PipelineMetrics::get();
        for (std::uint64_t seq = info.next_seq; seq < total_chunks; ++seq) {
          const std::size_t off = static_cast<std::size_t>(seq) * cb;
          const std::size_t len = std::min(cb, stream.size() - off);
          net::send_message(
              *src_ch, net::MsgType::StateChunk,
              net::encode_state_chunk(static_cast<std::uint32_t>(seq),
                                      {stream.data() + off, len}));
          pm.chunks.add(1);
          pm.chunk_bytes.record(static_cast<double>(len));
        }
        net::send_message(*src_ch, net::MsgType::StateEnd, net::encode_state_end(end));
        measured_tx += tx_span.finish();
      }
      const CommitResult r =
          source_commit_phase(*src_ch, *inbox, timeout, txn, digest, src_journal);
      unconfirmed = (r == CommitResult::Unconfirmed);
      attempt_ok = true;
    } catch (const KilledError& e) {
      killed = true;
      report.failure_causes.push_back("attempt " + std::to_string(attempts_used) + ": " +
                                      e.what());
      fail_channel();
    } catch (const Error& e) {
      report.failure_causes.push_back("attempt " + std::to_string(attempts_used) + ": " +
                                      e.what());
      fail_channel();
    }
  }
  const Clock::time_point pipeline_end = Clock::now();

  // --- teardown -------------------------------------------------------------
  if (inbox != nullptr) inbox->stop();
  dest.close();
  dest.join();
  try {
    if (src_ch != nullptr) src_ch->close();
  } catch (...) {
  }

  if (program_error != nullptr) std::rethrow_exception(program_error);
  if (fatal_other) std::rethrow_exception(source_error);

  if (!collected) {
    // The workload already finished on the source; a torn-down teardown
    // handshake doesn't change its fate.
    return TxnResult::CompletedLocally;
  }
  if (killed) {
    report.migrated = dest.finished();
    return TxnResult::SourceCrashed;
  }
  if (unconfirmed) {
    report.migrated = dest.finished();
    return TxnResult::CommittedUnconfirmed;
  }
  if (attempt_ok) {
    report.migrated = true;
    report.tx_seconds =
        options.throttle ? measured_tx : options.link.transfer_seconds(stream.size());
    // Overlap: wall-clock from the first chunk leaving collection to the
    // acknowledged restore, vs. the sum of the three phase timings. Fully
    // serial execution gives 0; perfect overlap approaches 1.
    const double wall = std::chrono::duration<double>(pipeline_end - pipeline_start).count();
    const double phases = report.collect_seconds + measured_tx + report.restore_seconds;
    if (wall > 0 && phases > 0) {
      report.overlap_ratio = std::clamp(1.0 - wall / phases, 0.0, 1.0);
    }
    PipelineMetrics::get().overlap.record(report.overlap_ratio);
    return TxnResult::Migrated;
  }
  return TxnResult::Failed;
}

}  // namespace

const char* outcome_name(MigrationOutcome outcome) noexcept {
  switch (outcome) {
    case MigrationOutcome::CompletedLocally: return "completed-locally";
    case MigrationOutcome::Migrated: return "migrated";
    case MigrationOutcome::AbortedContinuedLocally: return "aborted-continued-locally";
    case MigrationOutcome::SourceCrashed: return "source-crashed";
    case MigrationOutcome::CommittedUnconfirmed: return "committed-unconfirmed";
  }
  return "?";
}

static MigrationReport run_migration_impl(const RunOptions& options) {
  if (!options.register_types || !options.program) {
    throw MigrationError("run_migration requires register_types and program");
  }
  // Remove a stale spool from an earlier run, and ours when we leave.
  SpoolCleanup spool_cleanup{options};
  if (options.transport == Transport::File) remove_spool(options.spool_path);

  MigrationReport report;

  const bool faults_armed =
      options.fault_plan.enabled() || options.dest_fault_plan.enabled();
  const double io_s = options.io_timeout_seconds > 0
                          ? options.io_timeout_seconds
                          : (faults_armed ? kFaultInjectionDefaultTimeout : 0);
  const auto timeout =
      std::chrono::milliseconds(static_cast<long long>(std::llround(io_s * 1000.0)));
  auto fault_state = std::make_shared<net::FaultState>();
  auto dest_fault_state = std::make_shared<net::FaultState>();

  Bytes stream;
  bool collected = false;
  int first_serial_attempt = 1;
  const int total_attempts = 1 + std::max(0, options.max_retries);

  // Transaction identity + journals, shared by the pipelined transaction
  // and any serial fallback it degrades into.
  Journal src_journal;
  Journal dst_journal;
  std::uint64_t txn = 0;
  bool txn_ran = false;

  if (options.pipeline && options.transport != Transport::File) {
    // --- pipelined path: one resumable transaction; collect/tx/restore
    // overlapped, further attempts resume from the acked watermark.
    if (!options.journal_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(options.journal_dir, ec);
      src_journal.open(options.journal_dir + "/" + kSourceJournalName);
      dst_journal.open(options.journal_dir + "/" + kDestJournalName);
    }
    txn = options.txn_id != 0
              ? options.txn_id
              : static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count());
    txn_ran = true;
    int attempts_used = 0;
    switch (run_pipelined_transaction(options, report, stream, fault_state,
                                      dest_fault_state, timeout, src_journal, dst_journal,
                                      txn, total_attempts, attempts_used)) {
      case TxnResult::CompletedLocally:
        // Rendezvous happened but no transfer was ever started; the
        // attempt counter follows the serial path's convention.
        report.attempts = 0;
        report.outcome = MigrationOutcome::CompletedLocally;
        return report;
      case TxnResult::Migrated:
        report.outcome = MigrationOutcome::Migrated;
        return report;
      case TxnResult::CommittedUnconfirmed:
        // The Commit record is durable: the destination owns the process
        // whether or not its confirmation survived. No local fallback.
        report.outcome = MigrationOutcome::CommittedUnconfirmed;
        return report;
      case TxnResult::SourceCrashed:
        // The "crashed" source does nothing further — by definition. The
        // journals (Coordinator::recover) arbitrate ownership.
        report.outcome = MigrationOutcome::SourceCrashed;
        return report;
      case TxnResult::Failed:
        collected = true;
        first_serial_attempt = attempts_used + 1;  // retained stream replays serially
        break;
    }
  } else {
    // --- phase 1, source host: run the program until it completes or the
    // migration trigger fires and the state is collected. No channel exists
    // yet — the destination is brought up per transfer attempt, so a dead
    // or damaged link can never take the running workload down with it.
    ti::TypeTable types;
    options.register_types(types);
    MigContext ctx(types, options.search);
    ctx.set_migrate_at_poll(options.migrate_at_poll);
    // The paper's scheduler sends the migration request asynchronously;
    // model it with a timer thread that pokes the context's request flag.
    std::atomic<bool> program_done{false};
    std::thread scheduler;
    if (options.request_after_seconds > 0) {
      scheduler = std::thread([&ctx, &program_done, delay = options.request_after_seconds] {
        const auto deadline =
            Clock::now() + std::chrono::duration<double>(delay);
        while (!program_done.load(std::memory_order_relaxed) && Clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (!program_done.load(std::memory_order_relaxed)) ctx.request_migration();
      });
    }
    auto join_scheduler = [&] {
      program_done.store(true, std::memory_order_relaxed);
      if (scheduler.joinable()) scheduler.join();
    };
    try {
      try {
        options.program(ctx);
      } catch (...) {
        join_scheduler();  // never leave the timer thread joinable
        throw;
      }
      join_scheduler();
      // Ran to completion without migrating.
    } catch (const MigrationExit&) {
      join_scheduler();
      collected = true;
      stream = ctx.stream();  // buffered for replay across attempts
      report.stream_bytes = stream.size();
      report.collect_seconds = ctx.metrics().collect_seconds;
      report.source_arch = ctx.space().arch().name;
    }
    report.source_polls = ctx.poll_count();
    // ctx is discarded here: the migrating process has "terminated", and
    // only the collected stream survives.
  }
  if (!collected) {
    report.outcome = MigrationOutcome::CompletedLocally;
    return report;
  }

  // --- phase 2: serial transfer attempts with capped exponential backoff.
  double backoff = options.retry_backoff_seconds;
  for (int attempt = first_serial_attempt; attempt <= total_attempts; ++attempt) {
    if (attempt > 1 && backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2, options.retry_backoff_cap_seconds);
    }
    CoordinatorMetrics::get().attempts.add(1);
    if (attempt > 1) CoordinatorMetrics::get().retries.add(1);
    report.attempts = attempt;
    std::string cause;
    bool transferred = false;
    try {
      transferred = attempt_transfer(options, stream, report, fault_state,
                                     dest_fault_state, timeout, cause);
    } catch (const Error& e) {
      // Channel setup failed (connection refused, spool unwritable):
      // just as retryable as a failure mid-transfer.
      cause = e.what();
    }
    if (transferred) {
      if (txn_ran) {
        // The transaction's pipelined leg failed but its serial fallback
        // carried the same state across: close the transaction so
        // recovery reads "destination owns, completed".
        const std::uint64_t d = msrm::StreamDigest::of({stream.data(), stream.size()});
        src_journal.append({JournalRecordType::Commit, txn, d, "serial fallback"});
        src_journal.append({JournalRecordType::Done, txn, d, "serial fallback"});
        TxnMetrics::get().commits.add(1);
      }
      report.migrated = true;
      report.outcome = MigrationOutcome::Migrated;
      return report;
    }
    report.failure_causes.push_back("attempt " + std::to_string(attempt) + ": " + cause);
  }

  // --- graceful degradation: abandon migration (the pending request died
  // with the phase-1 context) and finish the computation locally by
  // restoring the buffered stream in-process — the source becomes its own
  // destination, so the final result is identical to a run that never
  // migrated.
  report.outcome = MigrationOutcome::AbortedContinuedLocally;
  CoordinatorMetrics::get().aborts.add(1);
  if (txn_ran) {
    // Durable before the local restore begins: a crash mid-degradation
    // must still arbitrate to the source.
    src_journal.append({JournalRecordType::Abort, txn, 0, "degraded to local completion"});
    TxnMetrics::get().aborts.add(1);
  }
  ti::TypeTable types;
  options.register_types(types);
  MigContext ctx(types, options.search);
  ctx.set_stop_after_restore(options.stop_after_restore);
  ctx.begin_restore(std::move(stream));
  run_destination_program(options, ctx, report);
  return report;
}

MigrationReport run_migration(const RunOptions& options) {
  // The report's metrics member is the registry delta across this run, so
  // concurrent runs in one process would bleed into each other's deltas —
  // the harnesses here run migrations sequentially.
  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  obs::Span run_span("mig.run");
  run_span.arg("transport", std::string(net::transport_name(options.transport)));
  MigrationReport report = run_migration_impl(options);
  run_span.arg("outcome", std::string(outcome_name(report.outcome)));
  run_span.finish();
  report.metrics = obs::Registry::process().snapshot().delta_since(before);
  return report;
}

RecoveryVerdict Coordinator::recover(const std::string& journal_dir) {
  return recover_from_journals(journal_dir + "/" + kSourceJournalName,
                               journal_dir + "/" + kDestJournalName);
}

}  // namespace hpm::mig
