// The Coordinator facade: composes the extracted migration layer —
// SourceSession/DestSession state machines (session.hpp), the serial
// transfer (serial_transfer.hpp), the transactional pipelined transfer
// (source_txn.hpp / dest_host.hpp), ports and wiring (port.hpp), and the
// intent journals — behind the original run_migration() API. The policy
// that lives HERE is only the composition: which path runs, the serial
// retry loop, graceful degradation, and crash recovery.
#include "mig/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <thread>

#include "mig/endpoint_util.hpp"
#include "mig/mig_metrics.hpp"
#include "mig/port.hpp"
#include "mig/serial_transfer.hpp"
#include "mig/source_txn.hpp"
#include "msrm/stream.hpp"
#include "obs/span.hpp"

namespace hpm::mig {

namespace {

using Clock = std::chrono::steady_clock;

/// Wiring for a classic exclusive-channel session: every connect() builds
/// a brand-new physical channel pair, applies the run's fault/throttle
/// wrappers, and hands back DirectPorts. A socket listener rides along as
/// the ports' keepalive so its fd outlives the conversation.
SessionWiring direct_wiring(const RunOptions& options,
                            std::shared_ptr<net::FaultState> fault_state,
                            std::shared_ptr<net::FaultState> dest_fault_state,
                            std::shared_ptr<const net::DeadlinePolicy> deadline) {
  SessionWiring wiring;
  wiring.session_id = 0;
  wiring.connect = [&options, fault_state, dest_fault_state, deadline] {
    // The destination's first recv spans the program's whole pre-trigger
    // phase, so the per-IO deadline is armed only once the transfer
    // begins (DestinationHost sets it after the first frame). The policy
    // is consulted per connect: an adaptive deadline warmed on attempt 1
    // bounds the resume attempts too.
    net::ChannelPair channels = net::make_channel_pair(
        options.transport, {.spool_path = options.spool_path, .timeout = {}});
    std::shared_ptr<void> keep(std::move(channels.listener));
    PortPair pair;
    pair.source = std::make_unique<DirectPort>(
        wrap_source_channel(std::move(channels.source), options, fault_state,
                            deadline->current()),
        keep);
    pair.destination = std::make_unique<DirectPort>(
        wrap_dest_channel(std::move(channels.destination), options, dest_fault_state),
        keep);
    return pair;
  };
  if (options.failover.enabled()) {
    // Each candidate gets its own fault state so a chaos script against
    // standby 1 cannot fire again at standby 2; the SOURCE-side plan
    // shares the primary's state on purpose — a one-shot source crash
    // that already fired must stay fired across the re-dial.
    auto standby_states =
        std::make_shared<std::vector<std::shared_ptr<net::FaultState>>>();
    for (std::size_t i = 0; i < options.failover.standbys.size(); ++i) {
      standby_states->push_back(std::make_shared<net::FaultState>());
    }
    wiring.connect_standby = [&options, fault_state, standby_states,
                              deadline](std::size_t k) {
      const DestinationCandidate& cand = options.failover.standbys.at(k);
      net::ChannelPair channels = net::make_channel_pair(
          options.transport, {.spool_path = options.spool_path, .timeout = {}});
      std::shared_ptr<void> keep(std::move(channels.listener));
      PortPair pair;
      pair.source = std::make_unique<DirectPort>(
          wrap_source_channel(std::move(channels.source), options, fault_state,
                              deadline->current()),
          keep);
      std::unique_ptr<net::ByteChannel> dch = std::move(channels.destination);
      if (cand.dest_fault_plan.enabled()) {
        dch = std::make_unique<net::FaultyChannel>(std::move(dch), cand.dest_fault_plan,
                                                   standby_states->at(k));
      }
      pair.destination = std::make_unique<DirectPort>(std::move(dch), keep);
      return pair;
    };
  }
  return wiring;
}

/// Local completion from the retained stream: the graceful-degradation
/// tail shared by the exclusive and routed paths.
void complete_locally(const RunOptions& options, MigrationReport& report,
                      Bytes stream) {
  report.outcome = MigrationOutcome::AbortedContinuedLocally;
  CoordinatorMetrics::get().aborts.add(1);
  ti::TypeTable types;
  options.register_types(types);
  MigContext ctx(types, options.search);
  ctx.set_stop_after_restore(options.stop_after_restore);
  ctx.begin_restore(std::move(stream));
  run_destination_program(options, ctx, report);
}

std::uint64_t wall_clock_txn() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

MigrationReport run_migration_impl(const RunOptions& options) {
  if (!options.register_types || !options.program) {
    throw MigrationError("run_migration requires register_types and program");
  }
  // Remove a stale spool from an earlier run, and ours when we leave.
  SpoolCleanup spool_cleanup{options};
  if (options.transport == Transport::File) remove_spool(options.spool_path);

  MigrationReport report;

  const bool faults_armed =
      options.fault_plan.enabled() || options.dest_fault_plan.enabled();
  const double io_s = options.io_timeout_seconds > 0
                          ? options.io_timeout_seconds
                          : (faults_armed ? kFaultInjectionDefaultTimeout : 0);
  const auto timeout =
      std::chrono::milliseconds(static_cast<long long>(std::llround(io_s * 1000.0)));
  const std::shared_ptr<net::DeadlinePolicy> deadline =
      options.deadline_policy != nullptr ? options.deadline_policy
                                         : net::DeadlinePolicy::fixed(timeout);
  auto fault_state = std::make_shared<net::FaultState>();
  auto dest_fault_state = std::make_shared<net::FaultState>();

  Bytes stream;
  RetainedStream retained;
  bool collected = false;
  int first_serial_attempt = 1;
  const int total_attempts = 1 + std::max(0, options.max_retries);

  // Transaction identity + journals, shared by the pipelined transaction
  // and any serial fallback it degrades into.
  Journal src_journal;
  Journal dst_journal;
  std::uint64_t txn = 0;
  bool txn_ran = false;

  if (options.pipeline && options.transport != Transport::File) {
    // --- pipelined path: one resumable transaction; collect/tx/restore
    // overlapped, further attempts resume from the acked watermark.
    if (!options.journal_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(options.journal_dir, ec);
      src_journal.open(options.journal_dir + "/" + kSourceJournalName);
      dst_journal.open(options.journal_dir + "/" + kDestJournalName);
    }
    txn = options.txn_id != 0 ? options.txn_id : wall_clock_txn();
    txn_ran = true;
    int attempts_used = 0;
    const SessionWiring wiring =
        direct_wiring(options, fault_state, dest_fault_state, deadline);
    // A failover standby journals into its own incarnation-suffixed file
    // beside dest.journal, so recover() can scan every destination the
    // transaction ever touched.
    std::function<std::string(std::uint32_t)> standby_journal;
    if (!options.journal_dir.empty()) {
      standby_journal = [dir = options.journal_dir](std::uint32_t inc) {
        return dir + "/" + dest_journal_name(inc);
      };
    }
    switch (run_pipelined_transaction(options, report, retained, wiring, *deadline,
                                      src_journal, dst_journal, standby_journal, txn,
                                      total_attempts, attempts_used)) {
      case TxnResult::CompletedLocally:
        // Rendezvous happened but no transfer was ever started; the
        // attempt counter follows the serial path's convention.
        report.attempts = 0;
        report.outcome = MigrationOutcome::CompletedLocally;
        return report;
      case TxnResult::Migrated:
        report.outcome = MigrationOutcome::Migrated;
        return report;
      case TxnResult::CommittedUnconfirmed:
        // The Commit record is durable: the destination owns the process
        // whether or not its confirmation survived. No local fallback.
        report.outcome = MigrationOutcome::CommittedUnconfirmed;
        return report;
      case TxnResult::SourceCrashed:
        // The "crashed" source does nothing further — by definition. The
        // journals (Coordinator::recover) arbitrate ownership.
        report.outcome = MigrationOutcome::SourceCrashed;
        return report;
      case TxnResult::Failed:
        collected = true;
        first_serial_attempt = attempts_used + 1;  // retained stream replays serially
        // The serial path restores from a contiguous buffer; pull the
        // retained stream back out of its (possibly disk-spilled) home.
        stream = retained.materialize();
        retained.release();
        break;
    }
  } else {
    // --- phase 1, source host: run the program until it completes or the
    // migration trigger fires and the state is collected. No channel exists
    // yet — the destination is brought up per transfer attempt, so a dead
    // or damaged link can never take the running workload down with it.
    ti::TypeTable types;
    options.register_types(types);
    MigContext ctx(types, options.search);
    ctx.set_migrate_at_poll(options.migrate_at_poll);
    ctx.set_collect_threads(options.collect_threads);
    // The paper's scheduler sends the migration request asynchronously;
    // model it with a timer thread that pokes the context's request flag.
    std::atomic<bool> program_done{false};
    std::thread scheduler;
    if (options.request_after_seconds > 0) {
      scheduler = std::thread([&ctx, &program_done, delay = options.request_after_seconds] {
        const auto fire_at = Clock::now() + std::chrono::duration<double>(delay);
        while (!program_done.load(std::memory_order_relaxed) && Clock::now() < fire_at) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (!program_done.load(std::memory_order_relaxed)) ctx.request_migration();
      });
    }
    auto join_scheduler = [&] {
      program_done.store(true, std::memory_order_relaxed);
      if (scheduler.joinable()) scheduler.join();
    };
    try {
      try {
        options.program(ctx);
      } catch (...) {
        join_scheduler();  // never leave the timer thread joinable
        throw;
      }
      join_scheduler();
      // Ran to completion without migrating.
    } catch (const MigrationExit&) {
      join_scheduler();
      collected = true;
      stream = ctx.stream();  // buffered for replay across attempts
      report.stream_bytes = stream.size();
      report.collect_seconds = ctx.metrics().collect_seconds;
      report.source_arch = ctx.space().arch().name;
    }
    report.source_polls = ctx.poll_count();
    // ctx is discarded here: the migrating process has "terminated", and
    // only the collected stream survives.
  }
  if (!collected) {
    report.outcome = MigrationOutcome::CompletedLocally;
    return report;
  }

  // --- phase 2: serial transfer attempts with capped exponential backoff.
  double backoff = options.retry_backoff_seconds;
  for (int attempt = first_serial_attempt; attempt <= total_attempts; ++attempt) {
    if (attempt > 1 && backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2, options.retry_backoff_cap_seconds);
    }
    CoordinatorMetrics::get().attempts.add(1);
    if (attempt > 1) CoordinatorMetrics::get().retries.add(1);
    report.attempts = attempt;
    std::string cause;
    bool transferred = false;
    try {
      transferred = attempt_transfer(options, stream, report, fault_state,
                                     dest_fault_state, timeout, cause);
    } catch (const Error& e) {
      // Channel setup failed (connection refused, spool unwritable):
      // just as retryable as a failure mid-transfer.
      cause = e.what();
    }
    if (transferred) {
      if (txn_ran) {
        // The transaction's pipelined leg failed but its serial fallback
        // carried the same state across: close the transaction so
        // recovery reads "destination owns, completed".
        const std::uint64_t d = msrm::StreamDigest::of({stream.data(), stream.size()});
        src_journal.append({JournalRecordType::Commit, txn, d, 1, "serial fallback"});
        src_journal.append({JournalRecordType::Done, txn, d, 1, "serial fallback"});
        TxnMetrics::get().commits.add(1);
      }
      report.migrated = true;
      report.outcome = MigrationOutcome::Migrated;
      return report;
    }
    report.failure_causes.push_back("attempt " + std::to_string(attempt) + ": " + cause);
  }

  // --- graceful degradation: abandon migration (the pending request died
  // with the phase-1 context) and finish the computation locally by
  // restoring the buffered stream in-process — the source becomes its own
  // destination, so the final result is identical to a run that never
  // migrated.
  if (txn_ran) {
    // Durable before the local restore begins: a crash mid-degradation
    // must still arbitrate to the source.
    src_journal.append(
        {JournalRecordType::Abort, txn, 0, 1, "degraded to local completion"});
    TxnMetrics::get().aborts.add(1);
  }
  complete_locally(options, report, std::move(stream));
  return report;
}

}  // namespace

const char* outcome_name(MigrationOutcome outcome) noexcept {
  switch (outcome) {
    case MigrationOutcome::CompletedLocally: return "completed-locally";
    case MigrationOutcome::Migrated: return "migrated";
    case MigrationOutcome::AbortedContinuedLocally: return "aborted-continued-locally";
    case MigrationOutcome::SourceCrashed: return "source-crashed";
    case MigrationOutcome::CommittedUnconfirmed: return "committed-unconfirmed";
  }
  return "?";
}

MigrationReport run_migration(const RunOptions& options) {
  // The report's metrics member is the registry delta across this run, so
  // concurrent runs in one process would bleed into each other's deltas —
  // per-session truth for concurrent sessions lives in the
  // mig.session.<id>.* instruments instead.
  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  obs::Span run_span("mig.run");
  run_span.arg("transport", std::string(net::transport_name(options.transport)));
  MigrationReport report = run_migration_impl(options);
  run_span.arg("outcome", std::string(outcome_name(report.outcome)));
  run_span.finish();
  report.metrics = obs::Registry::process().snapshot().delta_since(before);
  return report;
}

MigrationReport run_routed_migration(const RunOptions& options,
                                     const SessionWiring& wiring) {
  if (!options.register_types || !options.program) {
    throw MigrationError("run_routed_migration requires register_types and program");
  }
  if (!wiring.connect) {
    throw MigrationError("run_routed_migration requires wiring.connect");
  }

  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  obs::Span run_span("mig.session.run");
  run_span.arg("session", std::uint64_t{wiring.session_id});

  MigrationReport report;
  const bool faults_armed =
      options.fault_plan.enabled() || options.dest_fault_plan.enabled();
  const double io_s = options.io_timeout_seconds > 0
                          ? options.io_timeout_seconds
                          : (faults_armed ? kFaultInjectionDefaultTimeout : 0);
  const auto timeout =
      std::chrono::milliseconds(static_cast<long long>(std::llround(io_s * 1000.0)));
  const std::shared_ptr<net::DeadlinePolicy> deadline =
      options.deadline_policy != nullptr ? options.deadline_policy
                                         : net::DeadlinePolicy::fixed(timeout);

  // Concurrent sessions share one journal_dir, so both the journal files
  // and the derived txn are keyed per session: the wall clock alone could
  // collide across sessions started the same instant.
  const std::uint64_t txn =
      options.txn_id != 0
          ? options.txn_id
          : (wall_clock_txn() << 10) | (wiring.session_id & 0x3FFu);
  Journal src_journal;
  Journal dst_journal;
  if (!options.journal_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.journal_dir, ec);
    src_journal.open(options.journal_dir + "/" + keyed_source_journal_name(txn));
    dst_journal.open(options.journal_dir + "/" + keyed_dest_journal_name(txn));
  }

  RetainedStream retained;
  int attempts_used = 0;
  const int total_attempts = 1 + std::max(0, options.max_retries);
  std::function<std::string(std::uint32_t)> standby_journal;
  if (!options.journal_dir.empty()) {
    standby_journal = [dir = options.journal_dir, txn](std::uint32_t inc) {
      return dir + "/" + keyed_dest_journal_name(txn, inc);
    };
  }
  const TxnResult result = run_pipelined_transaction(
      options, report, retained, wiring, *deadline, src_journal, dst_journal,
      standby_journal, txn, total_attempts, attempts_used);
  switch (result) {
    case TxnResult::CompletedLocally:
      report.attempts = 0;
      report.outcome = MigrationOutcome::CompletedLocally;
      break;
    case TxnResult::Migrated:
      report.outcome = MigrationOutcome::Migrated;
      break;
    case TxnResult::CommittedUnconfirmed:
      report.outcome = MigrationOutcome::CommittedUnconfirmed;
      break;
    case TxnResult::SourceCrashed:
      report.outcome = MigrationOutcome::SourceCrashed;
      break;
    case TxnResult::Failed:
      // No serial fallback on a routed channel (untagged v3 frames cannot
      // share the multiplexed wire): degrade straight to local completion.
      src_journal.append(
          {JournalRecordType::Abort, txn, 0, 1, "degraded to local completion"});
      TxnMetrics::get().aborts.add(1);
      complete_locally(options, report, retained.materialize());
      break;
  }

  run_span.arg("outcome", std::string(outcome_name(report.outcome)));
  run_span.finish();
  report.metrics = obs::Registry::process().snapshot().delta_since(before);
  return report;
}

RecoveryVerdict Coordinator::recover(const std::string& journal_dir) {
  // Arbitrate against EVERY destination journal the run left behind — the
  // primary's dest.journal plus any failover incarnation's suffixed file.
  std::vector<std::string> dests = dest_journal_paths(journal_dir, 0);
  if (dests.empty()) dests.push_back(journal_dir + "/" + kDestJournalName);
  return recover_from_journals(journal_dir + "/" + kSourceJournalName, dests);
}

RecoveryVerdict Coordinator::recover(const std::string& journal_dir,
                                     std::uint64_t txn_id) {
  std::vector<std::string> dests = dest_journal_paths(journal_dir, txn_id);
  if (dests.empty()) {
    dests.push_back(journal_dir + "/" + keyed_dest_journal_name(txn_id));
  }
  return recover_from_journals(journal_dir + "/" + keyed_source_journal_name(txn_id),
                               dests);
}

}  // namespace hpm::mig
