#include "mig/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "common/crc32.hpp"
#include "mig/chunk_assembler.hpp"
#include "net/message.hpp"
#include "obs/span.hpp"

namespace hpm::mig {

namespace {

using Clock = std::chrono::steady_clock;

/// Deadline applied when fault injection is on but the caller set none:
/// an injected stall/truncation must never hang the run.
constexpr double kFaultInjectionDefaultTimeout = 5.0;

void remove_spool(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".done").c_str());
}

/// Deletes the spool (and its ".done" marker) when the run ends — orderly
/// or not — so no state leaks into the next Transport::File run.
struct SpoolCleanup {
  const RunOptions& options;
  ~SpoolCleanup() {
    if (options.transport == Transport::File) remove_spool(options.spool_path);
  }
};

Bytes hello_payload(const std::string& arch) {
  Bytes payload;
  payload.reserve(1 + arch.size());
  payload.push_back(net::kProtocolVersion);
  payload.insert(payload.end(), arch.begin(), arch.end());
  return payload;
}

std::string exception_text(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

void expect_hello(const net::Message& hello) {
  if (hello.type != net::MsgType::Hello) {
    throw MigrationError("source expected a Hello message");
  }
  if (hello.payload.empty() || hello.payload[0] != net::kProtocolVersion) {
    throw MigrationError("protocol version mismatch: destination speaks v" +
                         std::to_string(hello.payload.empty() ? 0 : hello.payload[0]) +
                         ", source speaks v" + std::to_string(net::kProtocolVersion));
  }
}

/// Run the destination program to completion after begin_restore*(). A
/// MigrationExit here is the stop_after_restore unwind: restoration
/// completed and the metrics are recorded; skipping the tail is the point.
void run_destination_program(const RunOptions& options, MigContext& ctx,
                             MigrationReport& report) {
  try {
    options.program(ctx);
  } catch (const MigrationExit&) {
  }
  report.restore_seconds = ctx.metrics().restore_seconds;
}

/// `mig.coordinator.*` counters for the retry machinery.
struct CoordinatorMetrics {
  obs::Counter& attempts = obs::Registry::process().counter("mig.coordinator.attempts");
  obs::Counter& retries = obs::Registry::process().counter("mig.coordinator.retries");
  obs::Counter& aborts = obs::Registry::process().counter("mig.coordinator.aborts");

  static CoordinatorMetrics& get() {
    static CoordinatorMetrics m;
    return m;
  }
};

/// `mig.pipeline.*` instruments for the chunked transfer.
struct PipelineMetrics {
  obs::Counter& chunks = obs::Registry::process().counter("mig.pipeline.chunks");
  obs::Histogram& chunk_bytes =
      obs::Registry::process().histogram("mig.pipeline.chunk_bytes", obs::Unit::Bytes);
  obs::Gauge& queue_depth = obs::Registry::process().gauge("mig.pipeline.queue_depth");
  obs::Histogram& overlap =
      obs::Registry::process().histogram("mig.pipeline.overlap_ratio", obs::Unit::None);

  static PipelineMetrics& get() {
    static PipelineMetrics m;
    return m;
  }
};

/// Bounded handoff between the collecting thread (producer) and the
/// sender thread. Back-pressure by design: push() blocks while the queue
/// is full, so a slow link throttles collection instead of buffering the
/// heap twice. poison() (sender died, or teardown) turns pushes into
/// drops so collection can finish and unwind normally.
class ChunkQueue {
 public:
  explicit ChunkQueue(std::size_t capacity) : capacity_(capacity) {}

  void push(Bytes chunk) {
    std::unique_lock lk(mu_);
    can_push_.wait(lk, [&] { return q_.size() < capacity_ || poisoned_; });
    if (poisoned_) return;
    q_.push_back(std::move(chunk));
    ++pushed_;
    PipelineMetrics::get().queue_depth.set(static_cast<std::int64_t>(q_.size()));
    can_pop_.notify_one();
  }

  /// False once the queue is closed and drained.
  bool pop(Bytes& out) {
    std::unique_lock lk(mu_);
    can_pop_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    PipelineMetrics::get().queue_depth.set(static_cast<std::int64_t>(q_.size()));
    can_push_.notify_one();
    return true;
  }

  /// Close the producer side; `end` (if set) tells the sender to finish
  /// with a StateEnd frame after draining. First close wins.
  void close(std::optional<net::StateEndInfo> end) {
    std::lock_guard lk(mu_);
    if (closed_) return;
    end_ = end;
    closed_ = true;
    can_pop_.notify_all();
  }

  void poison() {
    std::lock_guard lk(mu_);
    poisoned_ = true;
    can_push_.notify_all();
  }

  [[nodiscard]] std::uint32_t pushed() const {
    std::lock_guard lk(mu_);
    return pushed_;
  }

  [[nodiscard]] std::optional<net::StateEndInfo> end_info() const {
    std::lock_guard lk(mu_);
    return end_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<Bytes> q_;
  std::size_t capacity_;
  std::uint32_t pushed_ = 0;
  bool closed_ = false;
  bool poisoned_ = false;
  std::optional<net::StateEndInfo> end_;
};

/// Queue bound: deep enough to ride out send jitter, small enough that a
/// stalled link stops collection after ~capacity chunks of lookahead.
constexpr std::size_t kChunkQueueCapacity = 8;

/// One transfer attempt: bring up a destination, move the buffered stream,
/// wait for the verdict. Returns true on success; on a recoverable failure
/// returns false with `cause` set. Unrecoverable source-side failures
/// (anything outside the hpm::Error hierarchy) propagate.
bool attempt_transfer(const RunOptions& options, const Bytes& stream,
                      MigrationReport& report,
                      const std::shared_ptr<net::FaultState>& fault_state,
                      std::chrono::milliseconds timeout, std::string& cause) {
  const bool duplex = options.transport != Transport::File;
  // A fresh attempt gets a fresh spool; a half-written one from a failed
  // attempt must not satisfy this attempt's reader.
  if (options.transport == Transport::File) remove_spool(options.spool_path);

  net::ChannelPair channels = net::make_channel_pair(
      options.transport, {.spool_path = options.spool_path, .timeout = timeout});
  if (options.fault_plan.enabled()) {
    channels.source = std::make_unique<net::FaultyChannel>(std::move(channels.source),
                                                           options.fault_plan, fault_state);
    if (timeout.count() > 0) channels.source->set_timeout(timeout);
  }
  if (options.throttle) {
    channels.source = std::make_unique<net::ThrottledChannel>(std::move(channels.source),
                                                              options.link);
    if (timeout.count() > 0) channels.source->set_timeout(timeout);
  }

  // --- destination host: invoked first, announces itself, waits (paper §2).
  std::exception_ptr dest_error;
  std::thread destination([&] {
    try {
      ti::TypeTable types;
      options.register_types(types);
      MigContext ctx(types, options.search);
      if (duplex) {
        net::send_message(*channels.destination, net::MsgType::Hello,
                          hello_payload(ctx.space().arch().name));
      }
      ctx.set_stop_after_restore(options.stop_after_restore);
      net::Message msg = net::recv_message(*channels.destination);
      if (msg.type != net::MsgType::State) {
        throw MigrationError("destination expected a State message");
      }
      ctx.begin_restore(std::move(msg.payload));
      run_destination_program(options, ctx, report);
      if (duplex) net::send_message(*channels.destination, net::MsgType::Ack, {});
    } catch (const NetError& e) {
      // Frame never arrived intact (CRC mismatch, truncation, timeout,
      // disconnect): nack it so the source retransmits instead of trusting
      // a damaged stream.
      dest_error = std::current_exception();
      if (duplex) {
        try {
          const std::string text = e.what();
          net::send_message(*channels.destination, net::MsgType::Nack,
                            Bytes(text.begin(), text.end()));
        } catch (...) {
          // Source will observe the broken channel instead.
        }
      }
    } catch (...) {
      dest_error = std::current_exception();
      if (duplex) {
        try {
          const std::string text = exception_text(dest_error);
          net::send_message(*channels.destination, net::MsgType::Error,
                            Bytes(text.begin(), text.end()));
        } catch (...) {
        }
      }
    }
  });

  // --- source host: validate the peer, replay the buffered stream.
  std::exception_ptr source_error;
  double measured_tx = 0;
  try {
    if (duplex) expect_hello(net::recv_message(*channels.source));
    {
      obs::Span tx_span("mig.tx");
      tx_span.arg("stream_bytes", std::uint64_t{stream.size()});
      tx_span.arg("transport", std::string(net::transport_name(options.transport)));
      net::send_message(*channels.source, net::MsgType::State, stream);
      measured_tx = tx_span.finish();
    }
    if (duplex) {
      const net::Message verdict = net::recv_message(*channels.source);
      const std::string text(verdict.payload.begin(), verdict.payload.end());
      switch (verdict.type) {
        case net::MsgType::Ack:
          break;
        case net::MsgType::Nack:
          throw MigrationError("destination rejected the State frame (Nack): " + text);
        case net::MsgType::Error:
          throw MigrationError("destination restore failed: " + text);
        default:
          throw MigrationError("unexpected verdict message from destination");
      }
    } else {
      channels.source->close();  // drop the .done marker for the reader
    }
  } catch (...) {
    source_error = std::current_exception();
    // Unblock a destination still waiting in recv so the join below cannot
    // deadlock. Tearing down the source end wakes a duplex peer (broken
    // pipe / TCP FIN); the file reader instead sees the .done marker from
    // an orderly close, or falls back on its own recv deadline when the
    // writer can no longer signal (injected disconnect). Only the source
    // end is touched: the destination channel stays owned by its thread.
    try {
      if (duplex) {
        channels.source->abort();
      } else {
        channels.source->close();
      }
    } catch (...) {
    }
  }

  destination.join();
  try {
    channels.source->close();
  } catch (...) {
  }
  try {
    channels.destination->close();
  } catch (...) {
  }

  if (source_error == nullptr && dest_error == nullptr) {
    report.tx_seconds = options.throttle
                            ? measured_tx
                            : options.link.transfer_seconds(stream.size());
    return true;
  }

  // The source's failure is primary: a destination error observed after a
  // source-side failure is usually just the torn-down channel.
  if (source_error != nullptr) {
    try {
      std::rethrow_exception(source_error);
    } catch (const Error& e) {
      cause = e.what();
      return false;
    }
    // Non-hpm exceptions escaped the protocol itself — not retryable.
  }
  cause = exception_text(dest_error);
  return false;
}

/// Outcome of the single pipelined attempt (always attempt 1).
enum class PipelineOutcome : std::uint8_t {
  CompletedLocally,  ///< program finished without migrating
  Migrated,          ///< chunked transfer restored and acknowledged
  Failed,            ///< retryable; the collected stream is retained for serial retries
};

/// The pipelined first attempt: destination up BEFORE the program runs,
/// collection streaming chunks through a bounded queue while the DFS is
/// still walking the graph, the destination decoding each prefix as it
/// lands. On success the three phases overlap in wall-clock time; on any
/// retryable failure the retained stream falls back to the serial path.
PipelineOutcome attempt_pipelined(const RunOptions& options, MigrationReport& report,
                                  Bytes& stream,
                                  const std::shared_ptr<net::FaultState>& fault_state,
                                  std::chrono::milliseconds timeout, std::string& cause) {
  CoordinatorMetrics::get().attempts.add(1);
  report.attempts = 1;

  // The destination's first recv spans the program's whole pre-trigger
  // phase, so the per-IO deadline is armed only once the transfer begins.
  net::ChannelPair channels = net::make_channel_pair(
      options.transport, {.spool_path = options.spool_path, .timeout = {}});
  if (options.fault_plan.enabled()) {
    channels.source = std::make_unique<net::FaultyChannel>(std::move(channels.source),
                                                           options.fault_plan, fault_state);
  }
  if (options.throttle) {
    channels.source = std::make_unique<net::ThrottledChannel>(std::move(channels.source),
                                                              options.link);
  }
  if (timeout.count() > 0) channels.source->set_timeout(timeout);

  // --- destination host: announces itself, dispatches on the first
  // message (Shutdown = no migration; StateBegin = chunked stream). An rx
  // thread feeds the assembler while this thread restores and re-executes.
  std::exception_ptr dest_error;
  std::thread destination([&] {
    try {
      ti::TypeTable types;
      options.register_types(types);
      MigContext ctx(types, options.search);
      ctx.set_stop_after_restore(options.stop_after_restore);
      net::send_message(*channels.destination, net::MsgType::Hello,
                        hello_payload(ctx.space().arch().name));
      net::Message first = net::recv_message(*channels.destination);
      if (timeout.count() > 0) channels.destination->set_timeout(timeout);
      if (first.type == net::MsgType::Shutdown) return;
      if (first.type != net::MsgType::StateBegin) {
        throw MigrationError("destination expected StateBegin or Shutdown");
      }
      (void)net::decode_state_begin(first.payload);  // validates the frame
      ChunkAssembler assembler;
      std::thread rx([&] {
        try {
          for (;;) {
            net::Message msg = net::recv_message(*channels.destination);
            if (msg.type == net::MsgType::StateChunk) {
              const std::uint32_t seq = net::decode_state_chunk_seq(msg.payload);
              assembler.append(seq,
                               std::span<const std::uint8_t>(msg.payload).subspan(4));
            } else if (msg.type == net::MsgType::StateEnd) {
              assembler.finish(net::decode_state_end(msg.payload));
              return;
            } else {
              assembler.fail("unexpected message mid-transfer");
              return;
            }
          }
        } catch (const std::exception& e) {
          assembler.fail(e.what());
        }
      });
      try {
        ctx.begin_restore_streaming(assembler);
        run_destination_program(options, ctx, report);
      } catch (...) {
        // rx drains until StateEnd or a channel failure, both of which the
        // source guarantees on every path — never an orphan thread.
        rx.join();
        throw;
      }
      rx.join();
      net::send_message(*channels.destination, net::MsgType::Ack, {});
    } catch (const NetError& e) {
      dest_error = std::current_exception();
      try {
        const std::string text = e.what();
        net::send_message(*channels.destination, net::MsgType::Nack,
                          Bytes(text.begin(), text.end()));
      } catch (...) {
      }
      // Unblock a source mid-send (the serial path has no concurrent
      // sender to worry about; this one does).
      try {
        channels.destination->abort();
      } catch (...) {
      }
    } catch (...) {
      dest_error = std::current_exception();
      try {
        const std::string text = exception_text(dest_error);
        net::send_message(*channels.destination, net::MsgType::Error,
                          Bytes(text.begin(), text.end()));
      } catch (...) {
      }
      try {
        channels.destination->abort();
      } catch (...) {
      }
    }
  });

  // --- source host: run the program with a chunk sink; a sender thread
  // drains the queue onto the wire while collection continues.
  ChunkQueue queue(kChunkQueueCapacity);
  std::exception_ptr sender_error;
  std::thread sender;
  auto join_sender = [&] {
    if (sender.joinable()) sender.join();
  };

  std::exception_ptr source_error;
  /// Set when options.program itself throws (anything but MigrationExit):
  /// a workload failure is the caller's to see, never a retryable
  /// transport fault — rethrown after teardown, matching the serial path.
  std::exception_ptr program_error;
  double measured_tx = 0;
  bool collected = false;
  Clock::time_point pipeline_start{};
  try {
    expect_hello(net::recv_message(*channels.source));

    sender = std::thread([&] {
      try {
        PipelineMetrics& pm = PipelineMetrics::get();
        std::unique_ptr<obs::Span> tx_span;
        Bytes chunk;
        std::uint32_t seq = 0;
        while (queue.pop(chunk)) {
          if (tx_span == nullptr) {
            tx_span = std::make_unique<obs::Span>("mig.tx");
            tx_span->arg("transport",
                         std::string(net::transport_name(options.transport)));
            net::send_message(*channels.source, net::MsgType::StateBegin,
                              net::encode_state_begin(options.chunk_bytes));
          }
          net::send_message(*channels.source, net::MsgType::StateChunk,
                            net::encode_state_chunk(seq++, chunk));
          pm.chunks.add(1);
          pm.chunk_bytes.record(static_cast<double>(chunk.size()));
        }
        if (const auto end = queue.end_info()) {
          net::send_message(*channels.source, net::MsgType::StateEnd,
                            net::encode_state_end(*end));
          if (tx_span != nullptr) measured_tx = tx_span->finish();
        }
      } catch (...) {
        sender_error = std::current_exception();
        queue.poison();  // collection must never block on a dead sender
      }
    });

    ti::TypeTable types;
    options.register_types(types);
    MigContext ctx(types, options.search);
    ctx.set_migrate_at_poll(options.migrate_at_poll);
    ctx.set_collect_sink(options.chunk_bytes, [&](std::span<const std::uint8_t> bytes) {
      if (pipeline_start == Clock::time_point{}) pipeline_start = Clock::now();
      queue.push(Bytes(bytes.begin(), bytes.end()));
    });

    std::atomic<bool> program_done{false};
    std::thread scheduler;
    if (options.request_after_seconds > 0) {
      scheduler = std::thread([&ctx, &program_done, delay = options.request_after_seconds] {
        const auto deadline = Clock::now() + std::chrono::duration<double>(delay);
        while (!program_done.load(std::memory_order_relaxed) && Clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (!program_done.load(std::memory_order_relaxed)) ctx.request_migration();
      });
    }
    auto join_scheduler = [&] {
      program_done.store(true, std::memory_order_relaxed);
      if (scheduler.joinable()) scheduler.join();
    };
    try {
      try {
        options.program(ctx);
      } catch (const MigrationExit&) {
        join_scheduler();
        throw;
      } catch (...) {
        join_scheduler();
        program_error = std::current_exception();
        throw;
      }
      join_scheduler();
    } catch (const MigrationExit&) {
      collected = true;
      stream = ctx.stream();  // retained for serial retries
      report.stream_bytes = stream.size();
      report.collect_seconds = ctx.metrics().collect_seconds;
      report.source_arch = ctx.space().arch().name;
    }
    report.source_polls = ctx.poll_count();

    if (!collected) {
      queue.close(std::nullopt);
      join_sender();
      net::send_message(*channels.source, net::MsgType::Shutdown, {});
    } else {
      net::StateEndInfo end;
      end.chunk_count = queue.pushed();
      end.total_bytes = stream.size();
      end.total_crc = Crc32::of(stream.data(), stream.size());
      queue.close(end);
      join_sender();
      if (sender_error != nullptr) std::rethrow_exception(sender_error);
      const net::Message verdict = net::recv_message(*channels.source);
      const std::string text(verdict.payload.begin(), verdict.payload.end());
      switch (verdict.type) {
        case net::MsgType::Ack:
          break;
        case net::MsgType::Nack:
          throw MigrationError("destination rejected the chunked stream (Nack): " + text);
        case net::MsgType::Error:
          throw MigrationError("destination restore failed: " + text);
        default:
          throw MigrationError("unexpected verdict message from destination");
      }
    }
  } catch (...) {
    source_error = std::current_exception();
    queue.poison();
    queue.close(std::nullopt);
    join_sender();
    try {
      channels.source->abort();
    } catch (...) {
    }
  }
  const Clock::time_point pipeline_end = Clock::now();
  destination.join();
  try {
    channels.source->close();
  } catch (...) {
  }
  try {
    channels.destination->close();
  } catch (...) {
  }

  if (program_error != nullptr) std::rethrow_exception(program_error);

  if (source_error == nullptr && dest_error == nullptr) {
    if (!collected) return PipelineOutcome::CompletedLocally;
    report.migrated = true;
    report.tx_seconds = options.throttle
                            ? measured_tx
                            : options.link.transfer_seconds(stream.size());
    // Overlap: wall-clock from the first chunk leaving collection to the
    // acknowledged restore, vs. the sum of the three phase timings. Fully
    // serial execution gives 0; perfect overlap approaches 1.
    const double wall = std::chrono::duration<double>(pipeline_end - pipeline_start).count();
    const double phases = report.collect_seconds + measured_tx + report.restore_seconds;
    if (wall > 0 && phases > 0) {
      report.overlap_ratio = std::clamp(1.0 - wall / phases, 0.0, 1.0);
    }
    PipelineMetrics::get().overlap.record(report.overlap_ratio);
    return PipelineOutcome::Migrated;
  }
  if (!collected) {
    // The workload already finished on the source; a torn-down teardown
    // handshake doesn't change its fate.
    return PipelineOutcome::CompletedLocally;
  }
  if (source_error != nullptr) {
    try {
      std::rethrow_exception(source_error);
    } catch (const Error& e) {
      cause = e.what();
      return PipelineOutcome::Failed;
    }
    // Non-hpm exceptions escaped the protocol itself — not retryable.
  }
  cause = exception_text(dest_error);
  return PipelineOutcome::Failed;
}

}  // namespace

const char* outcome_name(MigrationOutcome outcome) noexcept {
  switch (outcome) {
    case MigrationOutcome::CompletedLocally: return "completed-locally";
    case MigrationOutcome::Migrated: return "migrated";
    case MigrationOutcome::AbortedContinuedLocally: return "aborted-continued-locally";
  }
  return "?";
}

static MigrationReport run_migration_impl(const RunOptions& options) {
  if (!options.register_types || !options.program) {
    throw MigrationError("run_migration requires register_types and program");
  }
  // Remove a stale spool from an earlier run, and ours when we leave.
  SpoolCleanup spool_cleanup{options};
  if (options.transport == Transport::File) remove_spool(options.spool_path);

  MigrationReport report;

  const double io_s = options.io_timeout_seconds > 0
                          ? options.io_timeout_seconds
                          : (options.fault_plan.enabled() ? kFaultInjectionDefaultTimeout : 0);
  const auto timeout =
      std::chrono::milliseconds(static_cast<long long>(std::llround(io_s * 1000.0)));
  auto fault_state = std::make_shared<net::FaultState>();

  Bytes stream;
  bool collected = false;
  int first_serial_attempt = 1;

  if (options.pipeline && options.transport != Transport::File) {
    // --- pipelined path: collect/tx/restore overlapped in one attempt.
    std::string cause;
    switch (attempt_pipelined(options, report, stream, fault_state, timeout, cause)) {
      case PipelineOutcome::CompletedLocally:
        // Rendezvous happened but no transfer was ever started; the
        // attempt counter follows the serial path's convention.
        report.attempts = 0;
        report.outcome = MigrationOutcome::CompletedLocally;
        return report;
      case PipelineOutcome::Migrated:
        report.outcome = MigrationOutcome::Migrated;
        return report;
      case PipelineOutcome::Failed:
        report.failure_causes.push_back("attempt 1: " + cause);
        collected = true;
        first_serial_attempt = 2;  // the retained stream replays serially
        break;
    }
  } else {
    // --- phase 1, source host: run the program until it completes or the
    // migration trigger fires and the state is collected. No channel exists
    // yet — the destination is brought up per transfer attempt, so a dead
    // or damaged link can never take the running workload down with it.
    ti::TypeTable types;
    options.register_types(types);
    MigContext ctx(types, options.search);
    ctx.set_migrate_at_poll(options.migrate_at_poll);
    // The paper's scheduler sends the migration request asynchronously;
    // model it with a timer thread that pokes the context's request flag.
    std::atomic<bool> program_done{false};
    std::thread scheduler;
    if (options.request_after_seconds > 0) {
      scheduler = std::thread([&ctx, &program_done, delay = options.request_after_seconds] {
        const auto deadline =
            Clock::now() + std::chrono::duration<double>(delay);
        while (!program_done.load(std::memory_order_relaxed) && Clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (!program_done.load(std::memory_order_relaxed)) ctx.request_migration();
      });
    }
    auto join_scheduler = [&] {
      program_done.store(true, std::memory_order_relaxed);
      if (scheduler.joinable()) scheduler.join();
    };
    try {
      try {
        options.program(ctx);
      } catch (...) {
        join_scheduler();  // never leave the timer thread joinable
        throw;
      }
      join_scheduler();
      // Ran to completion without migrating.
    } catch (const MigrationExit&) {
      join_scheduler();
      collected = true;
      stream = ctx.stream();  // buffered for replay across attempts
      report.stream_bytes = stream.size();
      report.collect_seconds = ctx.metrics().collect_seconds;
      report.source_arch = ctx.space().arch().name;
    }
    report.source_polls = ctx.poll_count();
    // ctx is discarded here: the migrating process has "terminated", and
    // only the collected stream survives.
  }
  if (!collected) {
    report.outcome = MigrationOutcome::CompletedLocally;
    return report;
  }

  // --- phase 2: serial transfer attempts with capped exponential backoff.
  const int total_attempts = 1 + std::max(0, options.max_retries);
  double backoff = options.retry_backoff_seconds;
  for (int attempt = first_serial_attempt; attempt <= total_attempts; ++attempt) {
    if (attempt > 1 && backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2, options.retry_backoff_cap_seconds);
    }
    CoordinatorMetrics::get().attempts.add(1);
    if (attempt > 1) CoordinatorMetrics::get().retries.add(1);
    report.attempts = attempt;
    std::string cause;
    bool transferred = false;
    try {
      transferred = attempt_transfer(options, stream, report, fault_state, timeout, cause);
    } catch (const Error& e) {
      // Channel setup failed (connection refused, spool unwritable):
      // just as retryable as a failure mid-transfer.
      cause = e.what();
    }
    if (transferred) {
      report.migrated = true;
      report.outcome = MigrationOutcome::Migrated;
      return report;
    }
    report.failure_causes.push_back("attempt " + std::to_string(attempt) + ": " + cause);
  }

  // --- graceful degradation: abandon migration (the pending request died
  // with the phase-1 context) and finish the computation locally by
  // restoring the buffered stream in-process — the source becomes its own
  // destination, so the final result is identical to a run that never
  // migrated.
  report.outcome = MigrationOutcome::AbortedContinuedLocally;
  CoordinatorMetrics::get().aborts.add(1);
  ti::TypeTable types;
  options.register_types(types);
  MigContext ctx(types, options.search);
  ctx.set_stop_after_restore(options.stop_after_restore);
  ctx.begin_restore(std::move(stream));
  run_destination_program(options, ctx, report);
  return report;
}

MigrationReport run_migration(const RunOptions& options) {
  // The report's metrics member is the registry delta across this run, so
  // concurrent runs in one process would bleed into each other's deltas —
  // the harnesses here run migrations sequentially.
  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  obs::Span run_span("mig.run");
  run_span.arg("transport", std::string(net::transport_name(options.transport)));
  MigrationReport report = run_migration_impl(options);
  run_span.arg("outcome", std::string(outcome_name(report.outcome)));
  run_span.finish();
  report.metrics = obs::Registry::process().snapshot().delta_since(before);
  return report;
}

}  // namespace hpm::mig
