#include "mig/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>

#include "net/message.hpp"
#include "obs/span.hpp"

namespace hpm::mig {

namespace {

using Clock = std::chrono::steady_clock;

/// Deadline applied when fault injection is on but the caller set none:
/// an injected stall/truncation must never hang the run.
constexpr double kFaultInjectionDefaultTimeout = 5.0;

void remove_spool(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".done").c_str());
}

/// Deletes the spool (and its ".done" marker) when the run ends — orderly
/// or not — so no state leaks into the next Transport::File run.
struct SpoolCleanup {
  const RunOptions& options;
  ~SpoolCleanup() {
    if (options.transport == Transport::File) remove_spool(options.spool_path);
  }
};

Bytes hello_payload(const std::string& arch) {
  Bytes payload;
  payload.reserve(1 + arch.size());
  payload.push_back(net::kProtocolVersion);
  payload.insert(payload.end(), arch.begin(), arch.end());
  return payload;
}

std::string exception_text(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

/// One transfer attempt: bring up a destination, move the buffered stream,
/// wait for the verdict. Returns true on success; on a recoverable failure
/// returns false with `cause` set. Unrecoverable source-side failures
/// (anything outside the hpm::Error hierarchy) propagate.
bool attempt_transfer(const RunOptions& options, const Bytes& stream,
                      MigrationReport& report,
                      const std::shared_ptr<net::FaultState>& fault_state,
                      std::chrono::milliseconds timeout, std::string& cause) {
  const bool duplex = options.transport != Transport::File;
  // A fresh attempt gets a fresh spool; a half-written one from a failed
  // attempt must not satisfy this attempt's reader.
  if (options.transport == Transport::File) remove_spool(options.spool_path);

  net::ChannelPair channels = net::make_channel_pair(
      options.transport, {.spool_path = options.spool_path, .timeout = timeout});
  if (options.fault_plan.enabled()) {
    channels.source = std::make_unique<net::FaultyChannel>(std::move(channels.source),
                                                           options.fault_plan, fault_state);
    if (timeout.count() > 0) channels.source->set_timeout(timeout);
  }
  if (options.throttle) {
    channels.source = std::make_unique<net::ThrottledChannel>(std::move(channels.source),
                                                              options.link);
    if (timeout.count() > 0) channels.source->set_timeout(timeout);
  }

  // --- destination host: invoked first, announces itself, waits (paper §2).
  std::exception_ptr dest_error;
  std::thread destination([&] {
    try {
      ti::TypeTable types;
      options.register_types(types);
      MigContext ctx(types, options.search);
      if (duplex) {
        net::send_message(*channels.destination, net::MsgType::Hello,
                          hello_payload(ctx.space().arch().name));
      }
      net::Message msg = net::recv_message(*channels.destination);
      if (msg.type != net::MsgType::State) {
        throw MigrationError("destination expected a State message");
      }
      ctx.begin_restore(std::move(msg.payload));
      options.program(ctx);  // restores at the migration point, then finishes
      report.restore_seconds = ctx.metrics().restore_seconds;
      report.restore = ctx.metrics().restore;
      if (duplex) net::send_message(*channels.destination, net::MsgType::Ack, {});
    } catch (const NetError& e) {
      // Frame never arrived intact (CRC mismatch, truncation, timeout,
      // disconnect): nack it so the source retransmits instead of trusting
      // a damaged stream.
      dest_error = std::current_exception();
      if (duplex) {
        try {
          const std::string text = e.what();
          net::send_message(*channels.destination, net::MsgType::Nack,
                            Bytes(text.begin(), text.end()));
        } catch (...) {
          // Source will observe the broken channel instead.
        }
      }
    } catch (...) {
      dest_error = std::current_exception();
      if (duplex) {
        try {
          const std::string text = exception_text(dest_error);
          net::send_message(*channels.destination, net::MsgType::Error,
                            Bytes(text.begin(), text.end()));
        } catch (...) {
        }
      }
    }
  });

  // --- source host: validate the peer, replay the buffered stream.
  std::exception_ptr source_error;
  double measured_tx = 0;
  try {
    if (duplex) {
      const net::Message hello = net::recv_message(*channels.source);
      if (hello.type != net::MsgType::Hello) {
        throw MigrationError("source expected a Hello message");
      }
      if (hello.payload.empty() || hello.payload[0] != net::kProtocolVersion) {
        throw MigrationError(
            "protocol version mismatch: destination speaks v" +
            std::to_string(hello.payload.empty() ? 0 : hello.payload[0]) +
            ", source speaks v" + std::to_string(net::kProtocolVersion));
      }
    }
    {
      obs::Span tx_span("mig.tx");
      tx_span.arg("stream_bytes", std::uint64_t{stream.size()});
      tx_span.arg("transport", std::string(net::transport_name(options.transport)));
      net::send_message(*channels.source, net::MsgType::State, stream);
      measured_tx = tx_span.finish();
    }
    if (duplex) {
      const net::Message verdict = net::recv_message(*channels.source);
      const std::string text(verdict.payload.begin(), verdict.payload.end());
      switch (verdict.type) {
        case net::MsgType::Ack:
          break;
        case net::MsgType::Nack:
          throw MigrationError("destination rejected the State frame (Nack): " + text);
        case net::MsgType::Error:
          throw MigrationError("destination restore failed: " + text);
        default:
          throw MigrationError("unexpected verdict message from destination");
      }
    } else {
      channels.source->close();  // drop the .done marker for the reader
    }
  } catch (...) {
    source_error = std::current_exception();
    // Unblock a destination still waiting in recv so the join below cannot
    // deadlock. Tearing down the source end wakes a duplex peer (broken
    // pipe / TCP FIN); the file reader instead sees the .done marker from
    // an orderly close, or falls back on its own recv deadline when the
    // writer can no longer signal (injected disconnect). Only the source
    // end is touched: the destination channel stays owned by its thread.
    try {
      if (duplex) {
        channels.source->abort();
      } else {
        channels.source->close();
      }
    } catch (...) {
    }
  }

  destination.join();
  try {
    channels.source->close();
  } catch (...) {
  }
  try {
    channels.destination->close();
  } catch (...) {
  }

  if (source_error == nullptr && dest_error == nullptr) {
    report.tx_seconds = options.throttle
                            ? measured_tx
                            : options.link.transfer_seconds(stream.size());
    return true;
  }

  // The source's failure is primary: a destination error observed after a
  // source-side failure is usually just the torn-down channel.
  if (source_error != nullptr) {
    try {
      std::rethrow_exception(source_error);
    } catch (const Error& e) {
      cause = e.what();
      return false;
    }
    // Non-hpm exceptions escaped the protocol itself — not retryable.
  }
  cause = exception_text(dest_error);
  return false;
}

/// `mig.coordinator.*` counters for the retry machinery.
struct CoordinatorMetrics {
  obs::Counter& attempts = obs::Registry::process().counter("mig.coordinator.attempts");
  obs::Counter& retries = obs::Registry::process().counter("mig.coordinator.retries");
  obs::Counter& aborts = obs::Registry::process().counter("mig.coordinator.aborts");

  static CoordinatorMetrics& get() {
    static CoordinatorMetrics m;
    return m;
  }
};

}  // namespace

const char* outcome_name(MigrationOutcome outcome) noexcept {
  switch (outcome) {
    case MigrationOutcome::CompletedLocally: return "completed-locally";
    case MigrationOutcome::Migrated: return "migrated";
    case MigrationOutcome::AbortedContinuedLocally: return "aborted-continued-locally";
  }
  return "?";
}

static MigrationReport run_migration_impl(const RunOptions& options) {
  if (!options.register_types || !options.program) {
    throw MigrationError("run_migration requires register_types and program");
  }
  // Remove a stale spool from an earlier run, and ours when we leave.
  SpoolCleanup spool_cleanup{options};
  if (options.transport == Transport::File) remove_spool(options.spool_path);

  MigrationReport report;

  // --- phase 1, source host: run the program until it completes or the
  // migration trigger fires and the state is collected. No channel exists
  // yet — the destination is brought up per transfer attempt, so a dead
  // or damaged link can never take the running workload down with it.
  Bytes stream;
  bool collected = false;
  {
    ti::TypeTable types;
    options.register_types(types);
    MigContext ctx(types, options.search);
    ctx.set_migrate_at_poll(options.migrate_at_poll);
    // The paper's scheduler sends the migration request asynchronously;
    // model it with a timer thread that pokes the context's request flag.
    std::atomic<bool> program_done{false};
    std::thread scheduler;
    if (options.request_after_seconds > 0) {
      scheduler = std::thread([&ctx, &program_done, delay = options.request_after_seconds] {
        const auto deadline =
            Clock::now() + std::chrono::duration<double>(delay);
        while (!program_done.load(std::memory_order_relaxed) && Clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (!program_done.load(std::memory_order_relaxed)) ctx.request_migration();
      });
    }
    auto join_scheduler = [&] {
      program_done.store(true, std::memory_order_relaxed);
      if (scheduler.joinable()) scheduler.join();
    };
    try {
      try {
        options.program(ctx);
      } catch (...) {
        join_scheduler();  // never leave the timer thread joinable
        throw;
      }
      join_scheduler();
      // Ran to completion without migrating.
    } catch (const MigrationExit&) {
      join_scheduler();
      collected = true;
      stream = ctx.stream();  // buffered for replay across attempts
      report.stream_bytes = stream.size();
      report.collect_seconds = ctx.metrics().collect_seconds;
      report.collect = ctx.metrics().collect;
      report.source_arch = ctx.space().arch().name;
    }
    report.source_polls = ctx.poll_count();
    // ctx is discarded here: the migrating process has "terminated", and
    // only the collected stream survives.
  }
  if (!collected) {
    report.outcome = MigrationOutcome::CompletedLocally;
    return report;
  }

  // --- phase 2: transfer attempts with capped exponential backoff.
  const double io_s = options.io_timeout_seconds > 0
                          ? options.io_timeout_seconds
                          : (options.fault_plan.enabled() ? kFaultInjectionDefaultTimeout : 0);
  const auto timeout =
      std::chrono::milliseconds(static_cast<long long>(std::llround(io_s * 1000.0)));
  auto fault_state = std::make_shared<net::FaultState>();
  const int total_attempts = 1 + std::max(0, options.max_retries);
  double backoff = options.retry_backoff_seconds;
  for (int attempt = 1; attempt <= total_attempts; ++attempt) {
    if (attempt > 1 && backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2, options.retry_backoff_cap_seconds);
    }
    CoordinatorMetrics::get().attempts.add(1);
    if (attempt > 1) CoordinatorMetrics::get().retries.add(1);
    report.attempts = attempt;
    std::string cause;
    bool transferred = false;
    try {
      transferred = attempt_transfer(options, stream, report, fault_state, timeout, cause);
    } catch (const Error& e) {
      // Channel setup failed (connection refused, spool unwritable):
      // just as retryable as a failure mid-transfer.
      cause = e.what();
    }
    if (transferred) {
      report.migrated = true;
      report.outcome = MigrationOutcome::Migrated;
      return report;
    }
    report.failure_causes.push_back("attempt " + std::to_string(attempt) + ": " + cause);
  }

  // --- graceful degradation: abandon migration (the pending request died
  // with the phase-1 context) and finish the computation locally by
  // restoring the buffered stream in-process — the source becomes its own
  // destination, so the final result is identical to a run that never
  // migrated.
  report.outcome = MigrationOutcome::AbortedContinuedLocally;
  CoordinatorMetrics::get().aborts.add(1);
  ti::TypeTable types;
  options.register_types(types);
  MigContext ctx(types, options.search);
  ctx.begin_restore(std::move(stream));
  options.program(ctx);
  report.restore_seconds = ctx.metrics().restore_seconds;
  report.restore = ctx.metrics().restore;
  return report;
}

MigrationReport run_migration(const RunOptions& options) {
  // The report's metrics member is the registry delta across this run, so
  // concurrent runs in one process would bleed into each other's deltas —
  // the harnesses here run migrations sequentially.
  const obs::MetricsSnapshot before = obs::Registry::process().snapshot();
  obs::Span run_span("mig.run");
  run_span.arg("transport", std::string(net::transport_name(options.transport)));
  MigrationReport report = run_migration_impl(options);
  run_span.arg("outcome", std::string(outcome_name(report.outcome)));
  run_span.finish();
  report.metrics = obs::Registry::process().snapshot().delta_since(before);
  return report;
}

}  // namespace hpm::mig
