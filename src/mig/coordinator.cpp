#include "mig/coordinator.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "net/file_channel.hpp"
#include "net/mem_channel.hpp"
#include "net/message.hpp"
#include "net/socket_channel.hpp"

namespace hpm::mig {

namespace {

using Clock = std::chrono::steady_clock;

struct ChannelPair {
  std::unique_ptr<net::ByteChannel> source;
  std::unique_ptr<net::ByteChannel> destination;
};

ChannelPair make_channels(const RunOptions& options,
                          std::unique_ptr<net::SocketListener>& listener) {
  switch (options.transport) {
    case Transport::Memory: {
      auto [a, b] = net::MemChannel::make_pair();
      return {std::move(a), std::move(b)};
    }
    case Transport::Socket: {
      listener = std::make_unique<net::SocketListener>();
      // Destination side accepts lazily inside its thread; here we dial.
      auto source = net::connect_to(listener->port());
      auto destination = listener->accept();
      return {std::move(source), std::move(destination)};
    }
    case Transport::File: {
      auto writer = std::make_unique<net::FileWriterChannel>(options.spool_path);
      auto reader = std::make_unique<net::FileReaderChannel>(options.spool_path);
      return {std::move(writer), std::move(reader)};
    }
  }
  throw MigrationError("unknown transport");
}

}  // namespace

MigrationReport run_migration(const RunOptions& options) {
  if (!options.register_types || !options.program) {
    throw MigrationError("run_migration requires register_types and program");
  }
  // Remove a stale spool from an earlier run.
  if (options.transport == Transport::File) {
    std::remove(options.spool_path.c_str());
    std::remove((options.spool_path + ".done").c_str());
  }

  std::unique_ptr<net::SocketListener> listener;
  ChannelPair channels = make_channels(options, listener);
  if (options.throttle) {
    channels.source = std::make_unique<net::ThrottledChannel>(std::move(channels.source),
                                                              options.link);
  }

  MigrationReport report;
  // The shared-file transport is one-way; acknowledgements only flow on
  // duplex transports. Failures still propagate via dest_error after join.
  const bool duplex = options.transport != Transport::File;

  // --- destination host: invoked first, waits for the states (paper §2).
  std::exception_ptr dest_error;
  std::thread destination([&] {
    try {
      const net::Message msg = net::recv_message(*channels.destination);
      if (msg.type == net::MsgType::Shutdown) return;  // no migration happened
      if (msg.type != net::MsgType::State) {
        throw MigrationError("destination expected a State message");
      }
      ti::TypeTable types;
      options.register_types(types);
      MigContext ctx(types, options.search);
      ctx.begin_restore(msg.payload);
      options.program(ctx);  // restores at the migration point, then finishes
      report.restore_seconds = ctx.metrics().restore_seconds;
      report.restore = ctx.metrics().restore;
      if (duplex) net::send_message(*channels.destination, net::MsgType::Ack, {});
    } catch (...) {
      dest_error = std::current_exception();
      if (duplex) {
        try {
          net::send_message(*channels.destination, net::MsgType::Error, {});
        } catch (...) {
          // Source will observe the broken channel instead.
        }
      }
    }
  });

  // --- source host: run the program until it completes or migrates.
  std::exception_ptr source_error;
  try {
    ti::TypeTable types;
    options.register_types(types);
    MigContext ctx(types, options.search);
    ctx.set_migrate_at_poll(options.migrate_at_poll);
    // The paper's scheduler sends the migration request asynchronously;
    // model it with a timer thread that pokes the context's request flag.
    std::atomic<bool> program_done{false};
    std::thread scheduler;
    if (options.request_after_seconds > 0) {
      scheduler = std::thread([&ctx, &program_done, delay = options.request_after_seconds] {
        const auto deadline =
            Clock::now() + std::chrono::duration<double>(delay);
        while (!program_done.load(std::memory_order_relaxed) && Clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (!program_done.load(std::memory_order_relaxed)) ctx.request_migration();
      });
    }
    auto join_scheduler = [&] {
      program_done.store(true, std::memory_order_relaxed);
      if (scheduler.joinable()) scheduler.join();
    };
    try {
      try {
        options.program(ctx);
      } catch (...) {
        join_scheduler();  // never leave the timer thread joinable
        throw;
      }
      join_scheduler();
      // Ran to completion without migrating.
      net::send_message(*channels.source, net::MsgType::Shutdown, {});
    } catch (const MigrationExit&) {
      join_scheduler();
      report.migrated = true;
      report.stream_bytes = ctx.stream().size();
      report.collect_seconds = ctx.metrics().collect_seconds;
      report.collect = ctx.metrics().collect;
      report.source_arch = ctx.space().arch().name;
      const auto t0 = Clock::now();
      net::send_message(*channels.source, net::MsgType::State, ctx.stream());
      const double measured_tx = std::chrono::duration<double>(Clock::now() - t0).count();
      report.tx_seconds = options.throttle
                              ? measured_tx
                              : options.link.transfer_seconds(report.stream_bytes);
      // The migrating process terminates here (ctx is discarded); wait for
      // the destination's verdict where the transport allows one.
      if (duplex) {
        const net::Message verdict = net::recv_message(*channels.source);
        if (verdict.type != net::MsgType::Ack) {
          throw MigrationError("destination reported a restoration failure");
        }
      } else {
        channels.source->close();  // drop the .done marker for the reader
      }
    }
    report.source_polls = ctx.poll_count();
  } catch (...) {
    source_error = std::current_exception();
    // Unblock a destination still waiting in recv: close our end so its
    // read fails fast instead of deadlocking the join below.
    try {
      channels.source->close();
    } catch (...) {
    }
  }

  destination.join();
  channels.source->close();
  channels.destination->close();
  // The source's failure is primary: a destination error observed after a
  // source crash is usually just the torn-down channel.
  if (source_error) std::rethrow_exception(source_error);
  if (dest_error) std::rethrow_exception(dest_error);
  return report;
}

}  // namespace hpm::mig
