#include "mig/chunk_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "msrm/stream.hpp"

namespace hpm::mig {

namespace {

// Entry record layout, CRC-sealed like a journal record:
//   u32 'HPMC' | u64 digest | u32 length | body | u32 crc32(preceding)
constexpr std::uint32_t kEntryMagic = 0x48504D43;  // "HPMC"
constexpr std::size_t kEntryHeader = 4 + 8 + 4;
constexpr std::size_t kEntryOverhead = kEntryHeader + 4;

void put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>((v >> (8 * (3 - i))) & 0xFFu);
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>((v >> (8 * (7 - i))) & 0xFFu);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | in[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[i];
  return v;
}

/// "<16-hex digest>-<length>.chunk" → address, or false for foreign files
/// (the stats file, editor droppings) which open() must simply ignore.
bool parse_name(const std::string& name, ChunkAddr& addr) {
  if (name.size() < 16 + 1 + 1 + 6 || !name.ends_with(".chunk")) return false;
  std::uint64_t digest = 0;
  for (int i = 0; i < 16; ++i) {
    const char c = name[static_cast<std::size_t>(i)];
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    digest = (digest << 4) | nibble;
  }
  if (name[16] != '-') return false;
  std::uint64_t len = 0;
  const std::size_t len_end = name.size() - 6;  // strlen(".chunk")
  if (len_end <= 17) return false;
  for (std::size_t i = 17; i < len_end; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    len = len * 10 + static_cast<std::uint64_t>(c - '0');
    if (len > 0xFFFFFFFFull) return false;
  }
  addr.digest = digest;
  addr.length = static_cast<std::uint32_t>(len);
  return true;
}

}  // namespace

ChunkStore::ChunkStore(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {}

ChunkStore::~ChunkStore() {
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

bool ChunkStore::lock_dir() {
  if (lock_fd_ < 0) {
    lock_fd_ = ::open((dir_ + "/.lock").c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (lock_fd_ < 0) return false;  // degrade to uncoordinated
  }
  int rc;
  do {
    rc = ::flock(lock_fd_, LOCK_EX);
  } while (rc != 0 && errno == EINTR);
  return rc == 0;
}

void ChunkStore::unlock_dir() {
  if (lock_fd_ >= 0) ::flock(lock_fd_, LOCK_UN);
}

std::string ChunkStore::file_name(const ChunkAddr& addr) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%016llx-%lu.chunk",
                static_cast<unsigned long long>(addr.digest),
                static_cast<unsigned long>(addr.length));
  return buf;
}

ChunkAddr ChunkStore::address_of(std::span<const std::uint8_t> body) {
  ChunkAddr addr;
  addr.digest = msrm::StreamDigest::of(body);
  addr.length = static_cast<std::uint32_t>(body.size());
  return addr;
}

void ChunkStore::open() {
  std::lock_guard lk(mu_);
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw Error("chunk store: cannot create " + dir_ + ": " + ec.message());

  // Hold the cross-process lock for the scan: a concurrent GC unlinking
  // entries mid-iteration would make us index files about to vanish.
  const bool locked = lock_dir();
  struct Unlock {
    ChunkStore* s;
    bool armed;
    ~Unlock() {
      if (armed) s->unlock_dir();
    }
  } unlock{this, locked};

  // Index by file name; a size that disagrees with the name's own length
  // field is a torn write from a crashed run — unlink it, exactly as the
  // journal replay drops a torn tail. Body damage is caught at load().
  struct Found {
    std::string name;
    ChunkAddr addr;
    std::uint64_t file_bytes = 0;
    fs::file_time_type mtime;
  };
  std::vector<Found> found;
  for (const fs::directory_entry& de : fs::directory_iterator(dir_, ec)) {
    if (!de.is_regular_file(ec)) continue;
    Found f;
    f.name = de.path().filename().string();
    if (!parse_name(f.name, f.addr)) continue;
    f.file_bytes = de.file_size(ec);
    if (ec || f.file_bytes != kEntryOverhead + f.addr.length) {
      fs::remove(de.path(), ec);  // torn entry: tolerate by dropping
      continue;
    }
    f.mtime = de.last_write_time(ec);
    found.push_back(std::move(f));
  }
  if (ec) throw Error("chunk store: cannot read " + dir_ + ": " + ec.message());

  // Seed LRU order from mtimes so eviction honours recency across runs.
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.mtime < b.mtime; });
  index_.clear();
  lru_.clear();
  bytes_ = 0;
  for (Found& f : found) {
    lru_.push_front(f.name);
    Entry e;
    e.addr = f.addr;
    e.file_bytes = f.file_bytes;
    e.lru = lru_.begin();
    bytes_ += f.file_bytes;
    index_.emplace(std::move(f.name), e);
  }
}

bool ChunkStore::contains(const ChunkAddr& addr) const {
  std::lock_guard lk(mu_);
  return index_.count(file_name(addr)) != 0;
}

void ChunkStore::touch_locked(Entry& e, const std::string& name) {
  lru_.erase(e.lru);
  lru_.push_front(name);
  e.lru = lru_.begin();
}

void ChunkStore::drop_locked(std::string name, bool unlink_file) {
  auto it = index_.find(name);
  if (it == index_.end()) return;
  bytes_ -= it->second.file_bytes;
  lru_.erase(it->second.lru);
  if (unlink_file) ::unlink((dir_ + "/" + name).c_str());
  index_.erase(it);
}

bool ChunkStore::load(const ChunkAddr& addr, Bytes& out) {
  std::lock_guard lk(mu_);
  const std::string name = file_name(addr);
  auto it = index_.find(name);
  if (it == index_.end()) return false;

  Bytes record(kEntryOverhead + addr.length);
  std::FILE* f = std::fopen((dir_ + "/" + name).c_str(), "rb");
  bool ok = f != nullptr;
  if (ok) {
    ok = std::fread(record.data(), 1, record.size(), f) == record.size() &&
         std::fgetc(f) == EOF;  // exact size: a grown file is damage too
    std::fclose(f);
  }
  if (ok) {
    ok = get_u32(record.data()) == kEntryMagic && get_u64(record.data() + 4) == addr.digest &&
         get_u32(record.data() + 12) == addr.length;
  }
  if (ok) {
    ok = get_u32(record.data() + kEntryHeader + addr.length) ==
         Crc32::of(record.data(), kEntryHeader + addr.length);
  }
  if (ok) {
    // Recompute the body digest: a record whose CRC was forged along with
    // its body (a deliberately poisoned entry) must still miss.
    ok = msrm::StreamDigest::of(std::span<const std::uint8_t>(record)
                                    .subspan(kEntryHeader, addr.length)) == addr.digest;
  }
  if (!ok) {
    drop_locked(name, /*unlink_file=*/true);
    return false;
  }
  out.assign(record.begin() + static_cast<std::ptrdiff_t>(kEntryHeader),
             record.begin() + static_cast<std::ptrdiff_t>(kEntryHeader + addr.length));
  touch_locked(it->second, name);
  return true;
}

void ChunkStore::put(std::span<const std::uint8_t> body) {
  std::lock_guard lk(mu_);
  const ChunkAddr addr = address_of(body);
  const std::string name = file_name(addr);
  auto it = index_.find(name);
  if (it != index_.end()) {
    touch_locked(it->second, name);
    return;
  }

  Bytes record(kEntryOverhead + body.size());
  put_u32(record.data(), kEntryMagic);
  put_u64(record.data() + 4, addr.digest);
  put_u32(record.data() + 12, addr.length);
  if (!body.empty()) std::memcpy(record.data() + kEntryHeader, body.data(), body.size());
  put_u32(record.data() + kEntryHeader + body.size(),
          Crc32::of(record.data(), kEntryHeader + body.size()));

  // Plain POSIX stdio, journal-style: the record must be on disk before
  // put() returns; a torn write is dropped at the next open().
  std::FILE* f = std::fopen((dir_ + "/" + name).c_str(), "wb");
  if (f == nullptr) throw Error("chunk store: cannot write " + dir_ + "/" + name);
  const bool ok = std::fwrite(record.data(), 1, record.size(), f) == record.size() &&
                  std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    ::unlink((dir_ + "/" + name).c_str());
    throw Error("chunk store: short write to " + dir_ + "/" + name);
  }

  lru_.push_front(name);
  Entry e;
  e.addr = addr;
  e.file_bytes = record.size();
  e.lru = lru_.begin();
  bytes_ += e.file_bytes;
  index_.emplace(name, e);
  evict_to_locked(max_bytes_);
}

void ChunkStore::evict_to_locked(std::uint64_t budget) {
  // Never evict the most-recently-used entry: a single over-budget chunk
  // stays cached rather than thrashing.
  while (bytes_ > budget && lru_.size() > 1) drop_locked(lru_.back(), /*unlink_file=*/true);
}

void ChunkStore::sync_dir() {
  std::lock_guard lk(mu_);
  const int dir_fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

std::size_t ChunkStore::gc(std::uint64_t budget) {
  std::size_t evicted = 0;
  {
    std::lock_guard lk(mu_);
    const bool locked = lock_dir();
    while (bytes_ > budget && !lru_.empty()) {
      drop_locked(lru_.back(), /*unlink_file=*/true);
      ++evicted;
    }
    if (locked) unlock_dir();
  }
  sync_dir();
  return evicted;
}

std::size_t ChunkStore::entries() const {
  std::lock_guard lk(mu_);
  return index_.size();
}

std::uint64_t ChunkStore::bytes() const {
  std::lock_guard lk(mu_);
  return bytes_;
}

void ChunkStore::note_run(std::uint64_t manifest_chunks, std::uint64_t hits,
                          std::uint64_t misses) {
  std::lock_guard lk(mu_);
  std::FILE* f = std::fopen((dir_ + "/last-run.stats").c_str(), "wb");
  if (f == nullptr) return;  // stats are advisory; never fail a migration
  std::fprintf(f, "hpm-chunk-cache-v1\nmanifest %llu\nhits %llu\nmisses %llu\n",
               static_cast<unsigned long long>(manifest_chunks),
               static_cast<unsigned long long>(hits),
               static_cast<unsigned long long>(misses));
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
}

ChunkStore::RunStats ChunkStore::read_run_stats(const std::string& dir) {
  RunStats stats;
  std::FILE* f = std::fopen((dir + "/last-run.stats").c_str(), "rb");
  if (f == nullptr) return stats;
  char header[32] = {};
  unsigned long long manifest = 0, hits = 0, misses = 0;
  const bool ok = std::fscanf(f, "%31s manifest %llu hits %llu misses %llu", header, &manifest,
                              &hits, &misses) == 4 &&
                  std::strcmp(header, "hpm-chunk-cache-v1") == 0;
  std::fclose(f);
  if (!ok) return stats;
  stats.valid = true;
  stats.manifest_chunks = manifest;
  stats.hits = hits;
  stats.misses = misses;
  return stats;
}

}  // namespace hpm::mig
