#include "mig/frame_router.hpp"

#include "common/error.hpp"
#include "mig/mig_metrics.hpp"

namespace hpm::mig {

namespace {

/// The routed flavour of MessagePort: every frame out is tagged with the
/// port's (session, epoch); every frame in was queued by the router's
/// pump for exactly that binding.
class RouterPort final : public MessagePort {
 public:
  RouterPort(FrameRouter& router, std::uint32_t session, std::uint16_t epoch)
      : router_(router), session_(session), epoch_(epoch) {}

  ~RouterPort() override { close(); }

  void send(net::MsgType type, std::span<const std::uint8_t> payload) override {
    router_.send_from(session_, epoch_, type, payload);
  }

  net::Message recv() override { return router_.recv_for(session_, epoch_, timeout_); }

  void set_timeout(std::chrono::milliseconds timeout) override { timeout_ = timeout; }

  void close() override { router_.close_port(session_, epoch_); }

 private:
  FrameRouter& router_;
  std::uint32_t session_;
  std::uint16_t epoch_;
  std::chrono::milliseconds timeout_{0};
};

}  // namespace

FrameRouter::FrameRouter(std::unique_ptr<net::ByteChannel> ch,
                         std::shared_ptr<void> keepalive)
    : ch_(std::move(ch)),
      keepalive_(std::move(keepalive)),
      routed_(obs::Registry::process().counter("mig.router.frames_routed")),
      dropped_(obs::Registry::process().counter("mig.router.frames_dropped")),
      reopens_(obs::Registry::process().counter("mig.router.reopens")),
      thread_([this] { pump(); }) {}

FrameRouter::~FrameRouter() { shutdown(); }

std::unique_ptr<MessagePort> FrameRouter::open(std::uint32_t session_id) {
  std::lock_guard lk(mu_);
  if (shutdown_) throw NetError("frame router is shut down");
  Entry& e = sessions_[session_id];
  if (e.poisoned) {
    // A cancelled session is quarantined at the router: no fresh epoch
    // can resurrect it on this shared channel.
    throw CancelledError("session cancelled by its supervisor: " + e.poison_reason);
  }
  if (e.epoch != 0) {
    // A resume: retire the old binding. Frames queued for it are from a
    // superseded conversation; a recv still parked on it must wake and
    // fail like a dropped connection would have.
    reopens_.add(1);
    e.q.clear();
  }
  ++e.epoch;
  e.closed = false;
  cv_.notify_all();
  return std::make_unique<RouterPort>(*this, session_id, e.epoch);
}

void FrameRouter::shutdown() {
  {
    std::lock_guard lk(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      try {
        ch_->abort();  // wake the pump's blocked recv
      } catch (...) {
      }
      cv_.notify_all();
    }
  }
  if (thread_.joinable()) thread_.join();
}

void FrameRouter::pump() {
  try {
    for (;;) {
      net::TaggedMessage frame = net::recv_any_message(*ch_);
      if (!frame.tagged) {
        // Thrown OUTSIDE the lock: the catch below re-acquires mu_.
        throw ProtocolError("untagged (v3) frame on a multiplexed channel");
      }
      if (frame.msg.type == net::MsgType::Ping) {
        // Answer at the pump iff the probed session has a live matching
        // binding HERE; silence lets the prober count the miss. The echo
        // is sent outside mu_ so a slow wire never blocks routing state.
        bool alive = false;
        {
          std::lock_guard lk(mu_);
          if (shutdown_) return;
          auto it = sessions_.find(frame.session_id);
          alive = it != sessions_.end() && frame.epoch == it->second.epoch &&
                  !it->second.closed && !it->second.poisoned;
        }
        if (alive) {
          std::lock_guard tx(tx_mu_);
          net::send_tagged_message(*ch_, frame.session_id, frame.epoch,
                                   net::MsgType::Pong, frame.msg.payload);
          LivenessMetrics::get().pongs.add(1);
        }
        continue;
      }
      if (frame.msg.type == net::MsgType::Pong) {
        PongHandler handler;
        {
          std::lock_guard lk(mu_);
          if (shutdown_) return;
          handler = pong_handler_;
        }
        if (handler != nullptr) {
          try {
            handler(frame.session_id, net::decode_ping(frame.msg.payload));
          } catch (...) {
            // A malformed echo is one dropped probe, not a dead channel.
          }
        }
        continue;
      }
      std::lock_guard lk(mu_);
      if (shutdown_) return;
      auto it = sessions_.find(frame.session_id);
      if (it == sessions_.end() || frame.epoch != it->second.epoch ||
          it->second.closed || it->second.poisoned) {
        // Unknown session, a stale epoch's leftover, a port that already
        // hung up, or a cancelled session: dropping is the correct routed
        // analogue of the bytes dying with a closed exclusive channel.
        dropped_.add(1);
        continue;
      }
      it->second.q.push_back(std::move(frame.msg));
      it->second.delivered += 1;
      routed_.add(1);
      cv_.notify_all();
    }
  } catch (...) {
    std::lock_guard lk(mu_);
    if (error_ == nullptr) error_ = std::current_exception();
    cv_.notify_all();
  }
}

void FrameRouter::send_from(std::uint32_t session, std::uint16_t epoch,
                            net::MsgType type, std::span<const std::uint8_t> payload) {
  {
    std::lock_guard lk(mu_);
    if (shutdown_) throw NetError("frame router is shut down");
    if (error_ != nullptr) std::rethrow_exception(error_);
    auto it = sessions_.find(session);
    if (it != sessions_.end() && it->second.poisoned) {
      throw CancelledError("session cancelled by its supervisor: " +
                           it->second.poison_reason);
    }
    if (it == sessions_.end() || it->second.epoch != epoch) {
      throw NetError("session port superseded by a newer epoch");
    }
  }
  std::lock_guard tx(tx_mu_);
  net::send_tagged_message(*ch_, session, epoch, type, payload);
}

bool FrameRouter::send_ping(std::uint32_t session, const net::PingInfo& info) {
  std::uint16_t epoch = 0;
  {
    std::lock_guard lk(mu_);
    if (shutdown_ || error_ != nullptr) return false;
    auto it = sessions_.find(session);
    if (it == sessions_.end() || it->second.closed || it->second.poisoned ||
        it->second.epoch == 0) {
      return false;
    }
    epoch = it->second.epoch;
  }
  try {
    std::lock_guard tx(tx_mu_);
    net::send_tagged_message(*ch_, session, epoch, net::MsgType::Ping,
                             net::encode_ping(info));
  } catch (...) {
    return false;  // a dead wire answers no probe; the miss says so
  }
  LivenessMetrics::get().pings.add(1);
  return true;
}

void FrameRouter::set_pong_handler(PongHandler handler) {
  std::lock_guard lk(mu_);
  pong_handler_ = std::move(handler);
}

void FrameRouter::poison(std::uint32_t session, std::string reason) {
  std::lock_guard lk(mu_);
  Entry& e = sessions_[session];
  if (e.poisoned) return;
  e.poisoned = true;
  e.poison_reason = std::move(reason);
  e.q.clear();
  cv_.notify_all();
}

std::uint64_t FrameRouter::delivered(std::uint32_t session) const {
  std::lock_guard lk(mu_);
  auto it = sessions_.find(session);
  return it == sessions_.end() ? 0 : it->second.delivered;
}

net::Message FrameRouter::recv_for(std::uint32_t session, std::uint16_t epoch,
                                   std::chrono::milliseconds timeout) {
  std::unique_lock lk(mu_);
  auto ready = [&] {
    if (shutdown_ || error_ != nullptr) return true;
    auto it = sessions_.find(session);
    if (it == sessions_.end() || it->second.epoch != epoch || it->second.closed ||
        it->second.poisoned) {
      return true;  // superseded, closed, or cancelled: wake to fail
    }
    return !it->second.q.empty();
  };
  if (timeout.count() > 0) {
    if (!cv_.wait_for(lk, timeout, ready)) {
      throw TimeoutError("session port recv exceeded its deadline");
    }
  } else {
    cv_.wait(lk, ready);
  }
  auto it = sessions_.find(session);
  if (it != sessions_.end() && it->second.poisoned) {
    throw CancelledError("session cancelled by its supervisor: " +
                         it->second.poison_reason);
  }
  if (it != sessions_.end() && it->second.epoch == epoch && !it->second.q.empty()) {
    net::Message msg = std::move(it->second.q.front());
    it->second.q.pop_front();
    return msg;
  }
  if (shutdown_) throw NetError("frame router is shut down");
  if (it == sessions_.end() || it->second.epoch != epoch) {
    throw NetError("session port superseded by a newer epoch");
  }
  if (it->second.closed) throw NetError("session port closed");
  std::rethrow_exception(error_);
}

void FrameRouter::close_port(std::uint32_t session, std::uint16_t epoch) {
  std::lock_guard lk(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second.epoch != epoch) return;  // already superseded
  it->second.closed = true;
  cv_.notify_all();
}

}  // namespace hpm::mig
