#include "mig/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/hexdump.hpp"

namespace hpm::mig {

namespace {

/// Record wire format (all integers big-endian):
///   u32 magic 'HPMJ' | u8 type | u64 txn | u64 digest |
///   u32 note_len | note bytes | u32 crc32(everything preceding)
constexpr std::uint32_t kJournalMagic = 0x48504D4A;  // "HPMJ"
constexpr std::size_t kFixedHead = 4 + 1 + 8 + 8 + 4;

void put_u32_be(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_u64_be(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

std::uint32_t get_u32_be(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | in[i];
  return v;
}

std::uint64_t get_u64_be(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[i];
  return v;
}

Bytes encode_record(const JournalRecord& record) {
  Bytes out;
  out.reserve(kFixedHead + record.note.size() + 4);
  put_u32_be(out, kJournalMagic);
  out.push_back(static_cast<std::uint8_t>(record.type));
  put_u64_be(out, record.txn_id);
  put_u64_be(out, record.digest);
  put_u32_be(out, static_cast<std::uint32_t>(record.note.size()));
  out.insert(out.end(), record.note.begin(), record.note.end());
  put_u32_be(out, Crc32::of(out.data(), out.size()));
  return out;
}

}  // namespace

const char* journal_record_name(JournalRecordType type) noexcept {
  switch (type) {
    case JournalRecordType::Begin: return "begin";
    case JournalRecordType::Prepared: return "prepared";
    case JournalRecordType::Commit: return "commit";
    case JournalRecordType::Abort: return "abort";
    case JournalRecordType::Committed: return "committed";
    case JournalRecordType::Done: return "done";
  }
  return "?";
}

void Journal::append(const JournalRecord& record) {
  if (path_.empty()) return;  // null journal: nothing durable was promised
  std::lock_guard lk(mu_);
  const Bytes bytes = encode_record(record);
  // Plain POSIX stdio: the record must be on disk (fsync) before the
  // caller acts on the decision it encodes — that IS write-ahead logging.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) throw MigrationError("cannot open intent journal " + path_);
  const bool wrote = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
                     std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!wrote) throw MigrationError("cannot append to intent journal " + path_);
}

std::vector<JournalRecord> Journal::replay(const std::string& path) {
  std::vector<JournalRecord> records;
  std::ifstream in(path, std::ios::binary);
  if (!in) return records;  // missing journal = no recorded intent
  Bytes file((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (file.size() - pos >= kFixedHead + 4) {
    const std::uint8_t* p = file.data() + pos;
    if (get_u32_be(p) != kJournalMagic) break;  // torn/garbage tail
    const auto raw_type = p[4];
    const std::uint32_t note_len = get_u32_be(p + 21);
    const std::size_t total = kFixedHead + note_len + 4;
    if (file.size() - pos < total) break;  // record cut short by a crash
    if (get_u32_be(p + kFixedHead + note_len) != Crc32::of(p, kFixedHead + note_len)) {
      break;  // damaged mid-append; drop it and everything after
    }
    if (raw_type < 1 || raw_type > 6) break;
    JournalRecord record;
    record.type = static_cast<JournalRecordType>(raw_type);
    record.txn_id = get_u64_be(p + 5);
    record.digest = get_u64_be(p + 13);
    record.note.assign(reinterpret_cast<const char*>(p + kFixedHead), note_len);
    records.push_back(std::move(record));
    pos += total;
  }
  return records;
}

std::string keyed_source_journal_name(std::uint64_t txn_id) {
  return "source-" + std::to_string(txn_id) + ".journal";
}

std::string keyed_dest_journal_name(std::uint64_t txn_id) {
  return "dest-" + std::to_string(txn_id) + ".journal";
}

std::vector<std::uint64_t> list_journaled_txns(const std::string& journal_dir) {
  std::vector<std::uint64_t> txns;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(journal_dir, ec)) {
    const std::string name = entry.path().filename().string();
    // Accept "source-<txn>.journal" and "dest-<txn>.journal".
    std::size_t dash = name.find('-');
    if (dash == std::string::npos || !name.ends_with(".journal")) continue;
    const std::string stem = name.substr(0, dash);
    if (stem != "source" && stem != "dest") continue;
    const std::string digits = name.substr(dash + 1, name.size() - dash - 1 - 8);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    txns.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(txns.begin(), txns.end());
  txns.erase(std::unique(txns.begin(), txns.end()), txns.end());
  return txns;
}

std::vector<std::uint64_t> gc_completed_txn_journals(const std::string& journal_dir) {
  std::vector<std::uint64_t> swept;
  for (const std::uint64_t txn : list_journaled_txns(journal_dir)) {
    const std::string src = journal_dir + "/" + keyed_source_journal_name(txn);
    const std::string dst = journal_dir + "/" + keyed_dest_journal_name(txn);
    const RecoveryVerdict verdict = recover_from_journals(src, dst);
    if (!verdict.completed) continue;  // live, in-doubt, or aborted: keep
    std::error_code ec;
    std::filesystem::remove(src, ec);
    std::filesystem::remove(dst, ec);
    swept.push_back(txn);
  }
  if (!swept.empty()) {
    // The unlinks live in the DIRECTORY's data; sync it so the removals
    // are as durable as the appends were. (Without this, a crash can
    // bring a completed transaction's journals back from the dead and
    // recovery would re-arbitrate a handoff that already finished.)
    const int dir_fd = ::open(journal_dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd >= 0) {
      ::fsync(dir_fd);
      ::close(dir_fd);
    }
  }
  return swept;
}

const char* txn_owner_name(TxnOwner owner) noexcept {
  switch (owner) {
    case TxnOwner::None: return "none";
    case TxnOwner::Source: return "source";
    case TxnOwner::Destination: return "destination";
  }
  return "?";
}

RecoveryVerdict recover_from_journals(const std::string& source_path,
                                      const std::string& dest_path) {
  const std::vector<JournalRecord> src = Journal::replay(source_path);
  const std::vector<JournalRecord> dst = Journal::replay(dest_path);

  RecoveryVerdict verdict;
  for (const JournalRecord& r : src) verdict.txn_id = std::max(verdict.txn_id, r.txn_id);
  for (const JournalRecord& r : dst) verdict.txn_id = std::max(verdict.txn_id, r.txn_id);
  if (src.empty() && dst.empty()) {
    verdict.reason = "no transaction recorded in either journal";
    return verdict;
  }

  // The LAST decisive record of the latest transaction wins: an early
  // Abort followed by a committed serial retry ends at Commit/Done.
  bool src_commit = false, src_done = false, dst_committed = false;
  for (const JournalRecord& r : src) {
    if (r.txn_id != verdict.txn_id) continue;
    switch (r.type) {
      case JournalRecordType::Commit: src_commit = true; break;
      case JournalRecordType::Abort: src_commit = false; src_done = false; break;
      case JournalRecordType::Done: src_done = true; break;
      default: break;
    }
  }
  for (const JournalRecord& r : dst) {
    if (r.txn_id == verdict.txn_id && r.type == JournalRecordType::Committed) {
      dst_committed = true;
    }
  }

  if (src_done) {
    verdict.owner = TxnOwner::Destination;
    verdict.completed = true;
    verdict.reason = "source logged Done: the destination confirmed completion";
  } else if (src_commit) {
    verdict.owner = TxnOwner::Destination;
    verdict.reason =
        "source logged Commit: ownership passed; the destination must resume";
  } else if (dst_committed) {
    // Only reachable when the source journal was lost: the protocol never
    // lets the destination commit before the source's Commit is durable.
    verdict.owner = TxnOwner::Destination;
    verdict.reason = "destination logged Committed (source journal silent or lost)";
  } else {
    verdict.owner = TxnOwner::Source;
    verdict.reason = "no commit recorded: presumed abort; the source still owns "
                     "the process";
  }
  return verdict;
}

}  // namespace hpm::mig
