#include "mig/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/hexdump.hpp"

namespace hpm::mig {

namespace {

/// Record wire formats (all integers big-endian).
///
/// v1 ('HPMJ', pre-failover):
///   u32 magic | u8 type | u64 txn | u64 digest |
///   u32 note_len | note bytes | u32 crc32(everything preceding)
/// v2 ('HPMK', adds the destination incarnation fencing token):
///   u32 magic | u8 type | u64 txn | u64 digest | u32 incarnation |
///   u32 note_len | note bytes | u32 crc32(everything preceding)
///
/// append() always writes v2; replay() accepts both (v1 records carry
/// incarnation 1, the primary), so journals written before the failover
/// format still arbitrate.
constexpr std::uint32_t kJournalMagic = 0x48504D4A;    // "HPMJ"
constexpr std::uint32_t kJournalMagicV2 = 0x48504D4B;  // "HPMK"
constexpr std::size_t kFixedHead = 4 + 1 + 8 + 8 + 4;
constexpr std::size_t kFixedHeadV2 = 4 + 1 + 8 + 8 + 4 + 4;

void put_u32_be(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

void put_u64_be(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
}

std::uint32_t get_u32_be(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | in[i];
  return v;
}

std::uint64_t get_u64_be(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[i];
  return v;
}

Bytes encode_record(const JournalRecord& record) {
  Bytes out;
  out.reserve(kFixedHeadV2 + record.note.size() + 4);
  put_u32_be(out, kJournalMagicV2);
  out.push_back(static_cast<std::uint8_t>(record.type));
  put_u64_be(out, record.txn_id);
  put_u64_be(out, record.digest);
  put_u32_be(out, record.incarnation == 0 ? 1 : record.incarnation);
  put_u32_be(out, static_cast<std::uint32_t>(record.note.size()));
  out.insert(out.end(), record.note.begin(), record.note.end());
  put_u32_be(out, Crc32::of(out.data(), out.size()));
  return out;
}

}  // namespace

const char* journal_record_name(JournalRecordType type) noexcept {
  switch (type) {
    case JournalRecordType::Begin: return "begin";
    case JournalRecordType::Prepared: return "prepared";
    case JournalRecordType::Commit: return "commit";
    case JournalRecordType::Abort: return "abort";
    case JournalRecordType::Committed: return "committed";
    case JournalRecordType::Done: return "done";
  }
  return "?";
}

void Journal::append(const JournalRecord& record) {
  if (path_.empty()) return;  // null journal: nothing durable was promised
  std::lock_guard lk(mu_);
  const Bytes bytes = encode_record(record);
  // Plain POSIX stdio: the record must be on disk (fsync) before the
  // caller acts on the decision it encodes — that IS write-ahead logging.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) throw MigrationError("cannot open intent journal " + path_);
  const bool wrote = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
                     std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!wrote) throw MigrationError("cannot append to intent journal " + path_);
}

std::vector<JournalRecord> Journal::replay(const std::string& path) {
  std::vector<JournalRecord> records;
  std::ifstream in(path, std::ios::binary);
  if (!in) return records;  // missing journal = no recorded intent
  Bytes file((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (file.size() - pos >= kFixedHead + 4) {
    const std::uint8_t* p = file.data() + pos;
    const std::uint32_t magic = get_u32_be(p);
    const bool v2 = magic == kJournalMagicV2;
    if (magic != kJournalMagic && !v2) break;  // torn/garbage tail
    const std::size_t head = v2 ? kFixedHeadV2 : kFixedHead;
    if (file.size() - pos < head + 4) break;
    const auto raw_type = p[4];
    const std::uint32_t note_len = get_u32_be(p + head - 4);
    const std::size_t total = head + note_len + 4;
    if (file.size() - pos < total) break;  // record cut short by a crash
    if (get_u32_be(p + head + note_len) != Crc32::of(p, head + note_len)) {
      break;  // damaged mid-append; drop it and everything after
    }
    if (raw_type < 1 || raw_type > 6) break;
    JournalRecord record;
    record.type = static_cast<JournalRecordType>(raw_type);
    record.txn_id = get_u64_be(p + 5);
    record.digest = get_u64_be(p + 13);
    record.incarnation = v2 ? get_u32_be(p + 21) : 1;
    if (record.incarnation == 0) record.incarnation = 1;
    record.note.assign(reinterpret_cast<const char*>(p + head), note_len);
    records.push_back(std::move(record));
    pos += total;
  }
  return records;
}

std::string keyed_source_journal_name(std::uint64_t txn_id) {
  return "source-" + std::to_string(txn_id) + ".journal";
}

std::string keyed_dest_journal_name(std::uint64_t txn_id) {
  return "dest-" + std::to_string(txn_id) + ".journal";
}

std::string dest_journal_name(std::uint32_t incarnation) {
  if (incarnation <= 1) return kDestJournalName;
  return "dest.i" + std::to_string(incarnation) + ".journal";
}

std::string keyed_dest_journal_name(std::uint64_t txn_id, std::uint32_t incarnation) {
  if (incarnation <= 1) return keyed_dest_journal_name(txn_id);
  return "dest-" + std::to_string(txn_id) + ".i" + std::to_string(incarnation) +
         ".journal";
}

namespace {

bool all_digits(const std::string& s) {
  return !s.empty() && s.find_first_not_of("0123456789") == std::string::npos;
}

/// Splits an optional ".i<k>" incarnation suffix off a journal middle
/// part: "1234" → {"1234", 1}; "1234.i3" → {"1234", 3}. Returns false
/// when the suffix is malformed.
bool split_incarnation(std::string middle, std::string& base, std::uint32_t& inc) {
  inc = 1;
  const std::size_t dot = middle.find('.');
  if (dot != std::string::npos) {
    const std::string suffix = middle.substr(dot + 1);
    if (suffix.size() < 2 || suffix[0] != 'i' || !all_digits(suffix.substr(1))) {
      return false;
    }
    inc = static_cast<std::uint32_t>(std::strtoul(suffix.c_str() + 1, nullptr, 10));
    middle.resize(dot);
  }
  base = std::move(middle);
  return true;
}

}  // namespace

std::vector<std::string> dest_journal_paths(const std::string& journal_dir,
                                            std::uint64_t txn_id) {
  // Collect {incarnation, path} for every dest journal naming this
  // transaction (or the exclusive unkeyed names for txn_id 0).
  std::vector<std::pair<std::uint32_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(journal_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.ends_with(".journal")) continue;
    std::uint32_t inc = 1;
    if (txn_id == 0) {
      // Exclusive naming: "dest.journal" / "dest.i<k>.journal".
      if (name == kDestJournalName) {
        inc = 1;
      } else if (name.starts_with("dest.i")) {
        const std::string digits = name.substr(6, name.size() - 6 - 8);
        if (!all_digits(digits)) continue;
        inc = static_cast<std::uint32_t>(std::strtoul(digits.c_str(), nullptr, 10));
      } else {
        continue;
      }
    } else {
      // Keyed naming: "dest-<txn>.journal" / "dest-<txn>.i<k>.journal".
      if (!name.starts_with("dest-")) continue;
      std::string base;
      if (!split_incarnation(name.substr(5, name.size() - 5 - 8), base, inc)) continue;
      if (!all_digits(base) || std::strtoull(base.c_str(), nullptr, 10) != txn_id) {
        continue;
      }
    }
    found.emplace_back(inc, journal_dir + "/" + name);
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [inc, path] : found) paths.push_back(std::move(path));
  return paths;
}

std::vector<std::uint64_t> list_journaled_txns(const std::string& journal_dir,
                                               std::vector<std::string>* skipped) {
  std::vector<std::uint64_t> txns;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(journal_dir, ec)) {
    const std::string name = entry.path().filename().string();
    // The exclusive-run names are journals too — just not keyed ones; a
    // mixed directory should not report them as foreign matter.
    if (name == kSourceJournalName || name == kDestJournalName ||
        (name.starts_with("dest.i") && name.ends_with(".journal"))) {
      continue;
    }
    // Accept "source-<txn>.journal", "dest-<txn>.journal", and the
    // failover variant "dest-<txn>.i<k>.journal". Anything else in the
    // directory — editor droppings, partial copies, unrelated files — is
    // reported (when asked) and stepped over instead of poisoning the
    // scan.
    const std::size_t dash = name.find('-');
    bool keyed = dash != std::string::npos && name.ends_with(".journal");
    std::uint64_t txn = 0;
    if (keyed) {
      const std::string stem = name.substr(0, dash);
      std::string digits;
      std::uint32_t inc = 1;
      keyed = (stem == "source" || stem == "dest") &&
              split_incarnation(name.substr(dash + 1, name.size() - dash - 1 - 8),
                                digits, inc) &&
              all_digits(digits) && (stem == "dest" || inc == 1);
      if (keyed) txn = std::strtoull(digits.c_str(), nullptr, 10);
    }
    if (!keyed) {
      if (skipped != nullptr) skipped->push_back(name + " (unrelated)");
      continue;
    }
    std::error_code size_ec;
    if (std::filesystem::file_size(entry.path(), size_ec) == 0 && !size_ec) {
      // A zero-length journal is a torn creation (crash between open and
      // the first fsync'd record): it holds no intent, so it cannot vote
      // in arbitration — but its transaction may still have records on
      // the other side, so the txn id stays in the scan.
      if (skipped != nullptr) skipped->push_back(name + " (torn: zero length)");
    }
    txns.push_back(txn);
  }
  std::sort(txns.begin(), txns.end());
  txns.erase(std::unique(txns.begin(), txns.end()), txns.end());
  if (skipped != nullptr) std::sort(skipped->begin(), skipped->end());
  return txns;
}

std::vector<std::uint64_t> gc_completed_txn_journals(const std::string& journal_dir) {
  std::vector<std::uint64_t> swept;
  for (const std::uint64_t txn : list_journaled_txns(journal_dir)) {
    const std::string src = journal_dir + "/" + keyed_source_journal_name(txn);
    const std::vector<std::string> dsts = dest_journal_paths(journal_dir, txn);
    const RecoveryVerdict verdict = recover_from_journals(src, dsts);
    if (!verdict.completed) continue;  // live, in-doubt, or aborted: keep
    std::error_code ec;
    std::filesystem::remove(src, ec);
    for (const std::string& dst : dsts) std::filesystem::remove(dst, ec);
    swept.push_back(txn);
  }
  if (!swept.empty()) {
    // The unlinks live in the DIRECTORY's data; sync it so the removals
    // are as durable as the appends were. (Without this, a crash can
    // bring a completed transaction's journals back from the dead and
    // recovery would re-arbitrate a handoff that already finished.)
    const int dir_fd = ::open(journal_dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd >= 0) {
      ::fsync(dir_fd);
      ::close(dir_fd);
    }
  }
  return swept;
}

const char* txn_owner_name(TxnOwner owner) noexcept {
  switch (owner) {
    case TxnOwner::None: return "none";
    case TxnOwner::Source: return "source";
    case TxnOwner::Destination: return "destination";
  }
  return "?";
}

RecoveryVerdict recover_from_journals(const std::string& source_path,
                                      const std::string& dest_path) {
  return recover_from_journals(source_path, std::vector<std::string>{dest_path});
}

RecoveryVerdict recover_from_journals(const std::string& source_path,
                                      const std::vector<std::string>& dest_paths) {
  const std::vector<JournalRecord> src = Journal::replay(source_path);
  std::vector<std::vector<JournalRecord>> dsts;
  dsts.reserve(dest_paths.size());
  for (const std::string& path : dest_paths) dsts.push_back(Journal::replay(path));

  RecoveryVerdict verdict;
  bool any = !src.empty();
  for (const JournalRecord& r : src) verdict.txn_id = std::max(verdict.txn_id, r.txn_id);
  for (const auto& dst : dsts) {
    any = any || !dst.empty();
    for (const JournalRecord& r : dst) verdict.txn_id = std::max(verdict.txn_id, r.txn_id);
  }
  if (!any) {
    verdict.reason = "no transaction recorded in any journal";
    return verdict;
  }

  // The LAST decisive record of the latest transaction wins: an early
  // Abort followed by a committed serial retry ends at Commit/Done, and a
  // failed-over Commit carries the standby's incarnation — the fencing
  // token that disowns every earlier destination.
  bool src_commit = false, src_done = false;
  std::uint32_t commit_inc = 0;
  for (const JournalRecord& r : src) {
    if (r.txn_id != verdict.txn_id) continue;
    switch (r.type) {
      case JournalRecordType::Commit:
        src_commit = true;
        commit_inc = r.incarnation;
        break;
      case JournalRecordType::Abort: src_commit = false; src_done = false; break;
      case JournalRecordType::Done: src_done = true; break;
      default: break;
    }
  }
  std::uint32_t best_committed_inc = 0;
  for (const auto& dst : dsts) {
    std::uint32_t inc = 0;
    for (const JournalRecord& r : dst) {
      if (r.txn_id == verdict.txn_id && r.type == JournalRecordType::Committed) {
        inc = std::max(inc, r.incarnation);
      }
    }
    if (inc != 0) {
      ++verdict.committed_destinations;
      best_committed_inc = std::max(best_committed_inc, inc);
    }
  }

  if (src_done) {
    verdict.owner = TxnOwner::Destination;
    verdict.completed = true;
    verdict.incarnation = commit_inc != 0 ? commit_inc : std::max(best_committed_inc, 1u);
    verdict.reason = "source logged Done: destination incarnation " +
                     std::to_string(verdict.incarnation) + " confirmed completion";
  } else if (src_commit) {
    verdict.owner = TxnOwner::Destination;
    verdict.incarnation = commit_inc;
    verdict.reason = "source logged Commit for incarnation " + std::to_string(commit_inc) +
                     ": ownership passed; that destination must resume" +
                     (verdict.committed_destinations > 1
                          ? " (WARNING: multiple destinations logged Committed)"
                          : "");
  } else if (best_committed_inc != 0) {
    // Only reachable when the source journal was lost: the protocol never
    // lets a destination commit before the source's Commit is durable.
    // The highest committed incarnation is the last one the source fenced
    // everything else in favor of.
    verdict.owner = TxnOwner::Destination;
    verdict.incarnation = best_committed_inc;
    verdict.reason = "destination incarnation " + std::to_string(best_committed_inc) +
                     " logged Committed (source journal silent or lost)";
  } else {
    verdict.owner = TxnOwner::Source;
    verdict.reason = "no commit recorded: presumed abort; the source still owns "
                     "the process";
  }
  return verdict;
}

}  // namespace hpm::mig
