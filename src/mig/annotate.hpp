// Source annotation macros — the artifacts the paper's pre-compiler
// inserts into a migratable C program.
//
// Idiom for a migratable function (mirrors the paper's transformed code):
//
//   void work(mig::MigContext& ctx, int n) {
//     HPM_FUNCTION(ctx);             // open this frame
//     int i = 0;                     // declare locals first...
//     double acc = 0;
//     HPM_LOCAL(ctx, i);             // ...register the live ones
//     HPM_LOCAL(ctx, acc);
//     HPM_BODY(ctx);                 // resume switch starts; label 0 = fresh run
//     for (i = 0; i < n; ++i) {
//       HPM_POLL(ctx, 1);            // poll-point (label 1)
//       acc += step(i);
//     }
//     HPM_BODY_END(ctx);
//   }
//
// Rules (enforced by the runtime where possible):
//  * All locals that must survive migration are registered with HPM_LOCAL
//    before HPM_BODY. They must be trivially constructible (C-style data):
//    the resume switch jumps over initializers.
//  * Every call into another migratable function is wrapped in HPM_CALL
//    with a label unique within the function, so the frame can resume by
//    re-issuing exactly that call.
//  * Poll-point labels and call-site labels share one label space per
//    function and must be unique and nonzero.
//  * Code with side effects outside the MSR model (I/O, untracked
//    allocation) must not sit between HPM_FUNCTION and HPM_BODY: the
//    prologue re-executes during restoration.
#pragma once

#include "mig/context.hpp"

/// Open a migratable frame for the current function.
#define HPM_FUNCTION(ctx) \
  ::hpm::mig::FrameGuard hpm_frame_guard_((ctx), __func__); \
  ::hpm::mig::Frame& hpm_frame_ = hpm_frame_guard_.frame()

/// Register a live local variable (scalar, struct, pointer, or array).
#define HPM_LOCAL(ctx, var) (ctx).local(hpm_frame_, #var, var)

/// Register `count` elements starting at pointer `base` as one live block.
#define HPM_LOCAL_ARRAY(ctx, base, count) (ctx).local_array(hpm_frame_, #base, base, count)

/// Start the resumable body. Everything up to HPM_BODY_END lives inside a
/// switch on the frame's resume label.
#define HPM_BODY(ctx) \
  switch ((ctx).resume_point(hpm_frame_)) { \
    case 0:

/// Close the resumable body.
#define HPM_BODY_END(ctx) \
    break; \
    default: \
      throw ::hpm::MigrationError("unknown resume label in " + \
                                  std::string(hpm_frame_.func)); \
  } \
  do { } while (false)

/// Poll-point with label `id` (unique, nonzero within the function).
#define HPM_POLL(ctx, id) \
  case (id): \
    (ctx).poll(hpm_frame_, (id))

/// Call-site label: `stmt` re-executes when restoring through this frame.
#define HPM_CALL(ctx, id, stmt) \
  case (id): \
    (ctx).at_callsite(hpm_frame_, (id)); \
    stmt

/// Restore-safe argument: during skeleton re-execution the frame's locals
/// hold garbage, so argument expressions that *read* them (node->left,
/// a + k*lda) must be suppressed; the callee's own restored locals supply
/// the real values. Yields a value-initialized dummy while restoring.
#define HPM_ARG(ctx, expr) ((ctx).restoring() ? decltype(expr){} : (expr))

namespace hpm::mig {

/// RAII frame: construction enters, destruction leaves (unregistering the
/// frame's locals) — including during MigrationExit unwinding.
class FrameGuard {
 public:
  FrameGuard(MigContext& ctx, const char* func) : ctx_(ctx), frame_(func) {
    ctx_.enter_frame(frame_);
  }
  ~FrameGuard() { ctx_.leave_frame(frame_); }

  FrameGuard(const FrameGuard&) = delete;
  FrameGuard& operator=(const FrameGuard&) = delete;

  Frame& frame() noexcept { return frame_; }

 private:
  MigContext& ctx_;
  Frame frame_;
};

}  // namespace hpm::mig
