#include "mig/serial_transfer.hpp"

#include <exception>
#include <thread>

#include "mig/endpoint_util.hpp"
#include "obs/span.hpp"

namespace hpm::mig {

namespace {

void expect_hello(const net::Message& hello) {
  if (hello.type != net::MsgType::Hello) {
    throw MigrationError("source expected a Hello message");
  }
  if (hello.payload.empty() || hello.payload[0] != net::kProtocolVersion) {
    throw MigrationError("protocol version mismatch: destination speaks v" +
                         std::to_string(hello.payload.empty() ? 0 : hello.payload[0]) +
                         ", source speaks v" + std::to_string(net::kProtocolVersion));
  }
}

}  // namespace

bool attempt_transfer(const RunOptions& options, const Bytes& stream,
                      MigrationReport& report,
                      const std::shared_ptr<net::FaultState>& fault_state,
                      const std::shared_ptr<net::FaultState>& dest_fault_state,
                      std::chrono::milliseconds timeout, std::string& cause) {
  const bool duplex = options.transport != Transport::File;
  // A fresh attempt gets a fresh spool; a half-written one from a failed
  // attempt must not satisfy this attempt's reader.
  if (options.transport == Transport::File) remove_spool(options.spool_path);

  net::ChannelPair channels = net::make_channel_pair(
      options.transport, {.spool_path = options.spool_path, .timeout = timeout});
  if (options.fault_plan.enabled()) {
    channels.source = std::make_unique<net::FaultyChannel>(std::move(channels.source),
                                                           options.fault_plan, fault_state);
    if (timeout.count() > 0) channels.source->set_timeout(timeout);
  }
  if (options.throttle) {
    channels.source = std::make_unique<net::ThrottledChannel>(std::move(channels.source),
                                                              options.link);
    if (timeout.count() > 0) channels.source->set_timeout(timeout);
  }
  if (options.dest_fault_plan.enabled()) {
    channels.destination = std::make_unique<net::FaultyChannel>(
        std::move(channels.destination), options.dest_fault_plan, dest_fault_state);
    if (timeout.count() > 0) channels.destination->set_timeout(timeout);
  }

  // --- destination host: invoked first, announces itself, waits (paper §2).
  std::exception_ptr dest_error;
  std::thread destination([&] {
    try {
      ti::TypeTable types;
      options.register_types(types);
      MigContext ctx(types, options.search);
      if (duplex) {
        net::send_message(*channels.destination, net::MsgType::Hello,
                          hello_payload(ctx.space().arch().name));
      }
      ctx.set_stop_after_restore(options.stop_after_restore);
      net::Message msg = net::recv_message(*channels.destination);
      if (msg.type != net::MsgType::State) {
        throw MigrationError("destination expected a State message");
      }
      ctx.begin_restore(std::move(msg.payload));
      run_destination_program(options, ctx, report);
      if (duplex) net::send_message(*channels.destination, net::MsgType::Ack, {});
    } catch (const KilledError&) {
      // A crashed process sends no Nack and runs no teardown protocol;
      // the source observes only the dead channel.
      dest_error = std::current_exception();
      try {
        channels.destination->abort();
      } catch (...) {
      }
    } catch (const NetError& e) {
      // Frame never arrived intact (CRC mismatch, truncation, timeout,
      // disconnect): nack it so the source retransmits instead of trusting
      // a damaged stream.
      dest_error = std::current_exception();
      if (duplex) {
        try {
          const std::string text = e.what();
          net::send_message(*channels.destination, net::MsgType::Nack,
                            Bytes(text.begin(), text.end()));
        } catch (...) {
          // Source will observe the broken channel instead.
        }
      }
    } catch (...) {
      dest_error = std::current_exception();
      if (duplex) {
        try {
          const std::string text = exception_text(dest_error);
          net::send_message(*channels.destination, net::MsgType::Error,
                            Bytes(text.begin(), text.end()));
        } catch (...) {
        }
      }
    }
  });

  // --- source host: validate the peer, replay the buffered stream.
  std::exception_ptr source_error;
  double measured_tx = 0;
  try {
    if (duplex) expect_hello(net::recv_message(*channels.source));
    {
      obs::Span tx_span("mig.tx");
      tx_span.arg("stream_bytes", std::uint64_t{stream.size()});
      tx_span.arg("transport", std::string(net::transport_name(options.transport)));
      net::send_message(*channels.source, net::MsgType::State, stream);
      measured_tx = tx_span.finish();
    }
    if (duplex) {
      const net::Message verdict = net::recv_message(*channels.source);
      const std::string text(verdict.payload.begin(), verdict.payload.end());
      switch (verdict.type) {
        case net::MsgType::Ack:
          break;
        case net::MsgType::Nack:
          throw MigrationError("destination rejected the State frame (Nack): " + text);
        case net::MsgType::Error:
          throw MigrationError("destination restore failed: " + text);
        default:
          throw MigrationError("unexpected verdict message from destination");
      }
    } else {
      channels.source->close();  // drop the .done marker for the reader
    }
  } catch (...) {
    source_error = std::current_exception();
    // Unblock a destination still waiting in recv so the join below cannot
    // deadlock. Tearing down the source end wakes a duplex peer (broken
    // pipe / TCP FIN); the file reader instead sees the .done marker from
    // an orderly close, or falls back on its own recv deadline when the
    // writer can no longer signal (injected disconnect). Only the source
    // end is touched: the destination channel stays owned by its thread.
    try {
      if (duplex) {
        channels.source->abort();
      } else {
        channels.source->close();
      }
    } catch (...) {
    }
  }

  destination.join();
  try {
    channels.source->close();
  } catch (...) {
  }
  try {
    channels.destination->close();
  } catch (...) {
  }

  if (source_error == nullptr && dest_error == nullptr) {
    report.tx_seconds = options.throttle
                            ? measured_tx
                            : options.link.transfer_seconds(stream.size());
    return true;
  }

  // The source's failure is primary: a destination error observed after a
  // source-side failure is usually just the torn-down channel.
  if (source_error != nullptr) {
    try {
      std::rethrow_exception(source_error);
    } catch (const Error& e) {
      cause = e.what();
      return false;
    }
    // Non-hpm exceptions escaped the protocol itself — not retryable.
  }
  cause = exception_text(dest_error);
  return false;
}

}  // namespace hpm::mig
