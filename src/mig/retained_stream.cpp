#include "mig/retained_stream.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace hpm::mig {

RetainedStream::~RetainedStream() { release(); }

void RetainedStream::set(Bytes stream) {
  release();
  memory_ = std::move(stream);
  size_ = memory_.size();
}

void RetainedStream::spill(const std::string& path) {
  if (fd_ >= 0 || size_ == 0) return;
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) {
    throw MigrationError("cannot create retained-stream spill file " + path + ": " +
                         std::strerror(errno));
  }
  std::uint64_t off = 0;
  while (off < size_) {
    const ssize_t n = ::pwrite(fd, memory_.data() + off, size_ - off,
                               static_cast<off_t>(off));
    if (n <= 0) {
      ::close(fd);
      ::unlink(path.c_str());
      throw MigrationError("short write spilling retained stream to " + path);
    }
    off += static_cast<std::uint64_t>(n);
  }
  // The spill replaces the heap copy as the ONLY replay source: it must
  // survive anything the journal survives.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    throw MigrationError("cannot fsync retained-stream spill file " + path);
  }
  fd_ = fd;
  path_ = path;
  memory_ = Bytes();  // free, not clear: the point is releasing the memory
}

void RetainedStream::read(std::uint64_t offset, std::span<std::uint8_t> out) const {
  if (offset + out.size() > size_) {
    throw MigrationError("retained-stream read past the end: [" +
                         std::to_string(offset) + ", " +
                         std::to_string(offset + out.size()) + ") of " +
                         std::to_string(size_) + " bytes");
  }
  if (out.empty()) return;
  if (fd_ < 0) {
    std::memcpy(out.data(), memory_.data() + offset, out.size());
    return;
  }
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + got, out.size() - got,
                              static_cast<off_t>(offset + got));
    if (n <= 0) {
      throw MigrationError("retained-stream spill file " + path_ +
                           " truncated or unreadable at offset " +
                           std::to_string(offset + got));
    }
    got += static_cast<std::size_t>(n);
  }
}

Bytes RetainedStream::materialize() const {
  Bytes out(size_);
  read(0, out);
  return out;
}

void RetainedStream::release() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
    fd_ = -1;
    path_.clear();
  }
  memory_ = Bytes();
  size_ = 0;
}

}  // namespace hpm::mig
