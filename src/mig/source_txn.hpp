// Source endpoint of the transactional pipelined transfer.
#pragma once

#include <cstdint>

#include "mig/coordinator.hpp"
#include "mig/port.hpp"
#include "net/deadline.hpp"

namespace hpm::mig {

/// Outcome of the transactional pipelined transfer.
enum class TxnResult : std::uint8_t {
  CompletedLocally,      ///< program finished without migrating
  Migrated,              ///< committed and confirmed
  CommittedUnconfirmed,  ///< committed; the destination's confirmation was lost
  SourceCrashed,         ///< injected source crash; journals arbitrate ownership
  Failed,                ///< retryable; the retained stream may replay serially
};

/// The transactional pipelined transfer: one destination host, one
/// transaction, up to `total_attempts` port epochs obtained from
/// `wiring.connect()`. Attempt 1 streams chunks while the collection DFS
/// is still walking the graph; each further attempt resumes from the
/// destination's acked watermark out of the retained stream. Restoration
/// is bracketed by the two-phase commit. The protocol's legality is
/// enforced by a SourceSession machine on this side and a DestSession
/// machine inside the DestinationHost; `wiring.session_id` names both.
TxnResult run_pipelined_transaction(const RunOptions& options, MigrationReport& report,
                                    Bytes& stream, const SessionWiring& wiring,
                                    const net::DeadlinePolicy& deadline,
                                    Journal& src_journal, Journal& dst_journal,
                                    std::uint64_t txn, int total_attempts,
                                    int& attempts_used);

}  // namespace hpm::mig
