// Source endpoint of the transactional pipelined transfer.
#pragma once

#include <cstdint>
#include <functional>

#include "mig/coordinator.hpp"
#include "mig/port.hpp"
#include "mig/retained_stream.hpp"
#include "net/deadline.hpp"

namespace hpm::mig {

/// Outcome of the transactional pipelined transfer.
enum class TxnResult : std::uint8_t {
  CompletedLocally,      ///< program finished without migrating
  Migrated,              ///< committed and confirmed
  CommittedUnconfirmed,  ///< committed; the destination's confirmation was lost
  SourceCrashed,         ///< injected source crash; journals arbitrate ownership
  Failed,                ///< retryable; the retained stream may replay serially
};

/// The transactional pipelined transfer: one destination host, one
/// transaction, up to `total_attempts` port epochs obtained from
/// `wiring.connect()`. Attempt 1 streams chunks while the collection DFS
/// is still walking the graph; each further attempt resumes from the
/// destination's acked watermark out of the retained stream. Restoration
/// is bracketed by the two-phase commit. The protocol's legality is
/// enforced by a SourceSession machine on this side and a DestSession
/// machine inside the DestinationHost; `wiring.session_id` names both.
///
/// Destination failover (DESIGN.md §16): when the primary destination is
/// declared dead past the resume budget — or its session was cancelled by
/// a supervisor — and both options.failover and wiring.connect_standby
/// are armed, the transaction re-targets each standby candidate in policy
/// order under the next incarnation (fencing token), replaying [0, end)
/// of the retained stream and re-running the commit phase there.
/// `standby_journal_path(incarnation)` names the standby's own intent
/// journal inside the run's journal_dir (null/empty = journaling off).
///
/// On return `stream` holds the retained canonical stream (resident or
/// spilled per options.retain_dir); the caller materializes it for serial
/// fallback or local completion.
TxnResult run_pipelined_transaction(
    const RunOptions& options, MigrationReport& report, RetainedStream& stream,
    const SessionWiring& wiring, const net::DeadlinePolicy& deadline,
    Journal& src_journal, Journal& dst_journal,
    const std::function<std::string(std::uint32_t)>& standby_journal_path,
    std::uint64_t txn, int total_attempts, int& attempts_used);

}  // namespace hpm::mig
