#include "mig/wire_codec.hpp"

#include <cstring>

#include "common/error.hpp"

namespace hpm::mig {

namespace {

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

std::uint64_t read_u64_be(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[i];
  return v;
}

void write_u64_be(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>((v >> (8 * (7 - i))) & 0xFFu);
}

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// A u64 LEB128 varint is at most 10 bytes; a continuation bit past that
/// is hostile, not just wasteful, and a truncated one means the coded
/// body lied about its word count.
std::uint64_t get_varint(std::span<const std::uint8_t> coded, std::size_t& pos) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (pos >= coded.size()) throw NetError("coded chunk: truncated varint");
    const std::uint8_t byte = coded[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7Fu) << (shift < 63 ? shift : 63);
    if ((byte & 0x80u) == 0) {
      if (shift == 63 && (byte & 0x7Eu) != 0) {
        throw NetError("coded chunk: overlong varint");
      }
      return v;
    }
  }
  throw NetError("coded chunk: overlong varint");
}

}  // namespace

std::uint8_t codec_caps_of(WireCodec codec) {
  return codec == WireCodec::VarintDelta ? kCodecCapVarintDelta : 0;
}

WireCodec negotiate_codec(std::uint8_t offered_caps, WireCodec own) {
  if ((offered_caps & kCodecCapVarintDelta) != 0 && own == WireCodec::VarintDelta) {
    return WireCodec::VarintDelta;
  }
  return WireCodec::None;
}

Bytes codec_encode(std::span<const std::uint8_t> body) {
  const std::size_t words = body.size() / 8;
  const std::size_t tail = body.size() % 8;
  Bytes out;
  out.reserve(body.size() + body.size() / 4 + 16);
  std::uint64_t prev = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t word = read_u64_be(body.data() + w * 8);
    put_varint(out, zigzag(static_cast<std::int64_t>(word - prev)));
    prev = word;
  }
  out.insert(out.end(), body.end() - static_cast<std::ptrdiff_t>(tail), body.end());
  return out;
}

Bytes codec_decode(std::span<const std::uint8_t> coded, std::size_t expected_len) {
  const std::size_t words = expected_len / 8;
  const std::size_t tail = expected_len % 8;
  Bytes out(expected_len);
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t delta = get_varint(coded, pos);
    prev += static_cast<std::uint64_t>(unzigzag(delta));
    write_u64_be(out.data() + w * 8, prev);
  }
  if (coded.size() - pos != tail) {
    throw NetError("coded chunk: length mismatch (" + std::to_string(coded.size() - pos) +
                   "-byte tail, expected " + std::to_string(tail) + ")");
  }
  if (tail > 0) std::memcpy(out.data() + words * 8, coded.data() + pos, tail);
  return out;
}

}  // namespace hpm::mig
