// MessagePort: the session-level transport seam.
//
// The protocol endpoints (SourceSession/DestSession drivers) exchange
// whole frames, never raw bytes — so the seam between "one migration on
// its own channel" and "N migrations multiplexed over one channel" is a
// frame-granular port, not a ByteChannel. DirectPort owns a channel
// outright and speaks the classic untagged frame layout; FrameRouter's
// ports (frame_router.hpp) share a channel and tag every frame with
// their session id. The endpoints cannot tell the difference, which is
// exactly the point.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <span>
#include <thread>

#include "common/error.hpp"
#include "mig/cancel_token.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"

namespace hpm::mig {

/// Frame-granular, full-duplex endpoint of one migration session. Like
/// ByteChannel, blocking and thread-compatible for one sender plus one
/// receiver thread; send/recv throw hpm::NetError (TimeoutError past a
/// set_timeout deadline) on failure.
class MessagePort {
 public:
  virtual ~MessagePort() = default;

  virtual void send(net::MsgType type, std::span<const std::uint8_t> payload) = 0;
  virtual net::Message recv() = 0;

  /// Deadline for each subsequent send/recv (0 = block without bound).
  virtual void set_timeout(std::chrono::milliseconds timeout) = 0;

  /// Orderly teardown. Idempotent.
  virtual void close() = 0;

  /// Teardown that wakes a peer blocked mid-recv with an error instead of
  /// a clean end-of-stream.
  virtual void abort() { close(); }
};

/// Exclusive ownership of one ByteChannel: frames go out untagged, which
/// is what a single-session (pre-router) peer expects on the wire.
class DirectPort final : public MessagePort {
 public:
  /// `keepalive` rides along for transport plumbing that must outlive the
  /// conversation (e.g. the socket listener that accepted the channel).
  explicit DirectPort(std::unique_ptr<net::ByteChannel> ch,
                      std::shared_ptr<void> keepalive = nullptr)
      : ch_(std::move(ch)), keepalive_(std::move(keepalive)) {}

  void send(net::MsgType type, std::span<const std::uint8_t> payload) override {
    net::send_message(*ch_, type, payload);
  }
  net::Message recv() override { return net::recv_message(*ch_); }
  void set_timeout(std::chrono::milliseconds timeout) override { ch_->set_timeout(timeout); }
  void close() override { ch_->close(); }
  void abort() override { ch_->abort(); }

 private:
  std::unique_ptr<net::ByteChannel> ch_;
  std::shared_ptr<void> keepalive_;
};

/// Deterministic link-failure injection at the session layer: forwards
/// `frames_before_cut` port operations, then every further send/recv
/// throws hpm::NetError — the frame-granular analogue of a mid-stream
/// disconnect, usable on a routed port where byte-level FaultyChannel
/// wrapping would take every multiplexed session down at once.
class SeveringPort final : public MessagePort {
 public:
  SeveringPort(std::unique_ptr<MessagePort> inner, std::uint32_t frames_before_cut)
      : inner_(std::move(inner)), remaining_(frames_before_cut) {}

  void send(net::MsgType type, std::span<const std::uint8_t> payload) override {
    spend();
    inner_->send(type, payload);
  }
  net::Message recv() override {
    spend();
    return inner_->recv();
  }
  void set_timeout(std::chrono::milliseconds timeout) override {
    inner_->set_timeout(timeout);
  }
  void close() override { inner_->close(); }
  void abort() override { inner_->abort(); }

 private:
  void spend() {
    // fetch_sub walks remaining_ below zero for late callers; any
    // non-positive ticket means the link is already gone.
    if (remaining_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      throw NetError("injected link severance: session port cut mid-stream");
    }
  }

  std::unique_ptr<MessagePort> inner_;
  std::atomic<std::int64_t> remaining_;
};

/// Deterministic WEDGE injection: forwards `ops_before_wedge` port
/// operations, then sends vanish silently and recvs starve — the peer
/// stays alive at the transport layer (the shared channel still pongs)
/// but the session makes no progress. A SeveringPort failure is what a
/// per-call deadline catches; a blackhole is what only a liveness layer
/// (progress watermark) can tell apart from a merely slow peer.
///
/// The starved recv honors the port deadline (TimeoutError), the
/// session's CancelToken (CancelledError once the supervisor cancels
/// it), and abort()/close() (NetError) — a fault fixture must never be
/// the thing that actually hangs the harness.
class BlackholePort final : public MessagePort {
 public:
  BlackholePort(std::unique_ptr<MessagePort> inner, std::uint32_t ops_before_wedge,
                std::shared_ptr<const CancelToken> token = nullptr)
      : inner_(std::move(inner)), remaining_(ops_before_wedge), token_(std::move(token)) {}

  void send(net::MsgType type, std::span<const std::uint8_t> payload) override {
    if (spend()) inner_->send(type, payload);
  }

  net::Message recv() override {
    if (spend()) return inner_->recv();
    const auto started = std::chrono::steady_clock::now();
    for (;;) {
      if (wounded_.load(std::memory_order_acquire)) {
        throw NetError("injected wedge: port aborted while starving a recv");
      }
      if (token_ != nullptr && token_->cancelled()) {
        throw CancelledError("injected wedge cancelled: " + token_->reason());
      }
      const auto timeout = timeout_.load(std::memory_order_relaxed);
      if (timeout > 0 && std::chrono::steady_clock::now() - started >=
                             std::chrono::milliseconds(timeout)) {
        throw TimeoutError("injected wedge: recv starved past its deadline");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  void set_timeout(std::chrono::milliseconds timeout) override {
    timeout_.store(timeout.count(), std::memory_order_relaxed);
    inner_->set_timeout(timeout);
  }

  void close() override {
    wounded_.store(true, std::memory_order_release);
    inner_->close();
  }

  void abort() override {
    wounded_.store(true, std::memory_order_release);
    inner_->abort();
  }

 private:
  bool spend() {
    return remaining_.fetch_sub(1, std::memory_order_relaxed) > 0;
  }

  std::unique_ptr<MessagePort> inner_;
  std::atomic<std::int64_t> remaining_;
  std::shared_ptr<const CancelToken> token_;
  std::atomic<long long> timeout_{0};
  std::atomic<bool> wounded_{false};
};

/// A connected source/destination port pair for one session epoch.
struct PortPair {
  std::unique_ptr<MessagePort> source;
  std::unique_ptr<MessagePort> destination;
};

/// How a session reaches its peer. Every connect() call yields a fresh
/// pair — a brand-new physical channel for a direct session, a fresh
/// routed epoch of the shared channel for a multiplexed one — so the
/// resume machinery is identical in both worlds.
struct SessionWiring {
  std::uint32_t session_id = 0;
  std::function<PortPair()> connect;

  /// Failover dial: a fresh port pair to standby candidate `k` (an index
  /// into FailoverPolicy::standbys), under whatever isolation this wiring
  /// can give it — a brand-new physical channel for a direct session, a
  /// fresh routed binding (escaping a poisoned primary id) for a
  /// multiplexed one. Null = the wiring cannot reach standbys, so
  /// destination failover is disabled regardless of policy.
  std::function<PortPair(std::size_t)> connect_standby;
};

}  // namespace hpm::mig
