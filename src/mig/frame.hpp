// Execution-state model: live frames and their registered variables.
//
// The wire-side records (SavedVar / SavedFrame / ExecutionState) live in
// msrm/execstate.hpp because they are part of the stream format; this
// header adds the live-side model the annotation macros maintain while
// the program runs, and re-exports the wire types under hpm::mig for
// convenience.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "msr/block.hpp"
#include "msrm/execstate.hpp"
#include "ti/type.hpp"

namespace hpm::mig {

using msrm::ExecutionState;
using msrm::SavedFrame;
using msrm::SavedVar;

/// One registered live variable of a running frame (or a global).
struct LocalVar {
  std::string name;
  msr::Address addr = 0;
  msr::BlockId block = msr::kInvalidBlock;
  ti::TypeId type = ti::kInvalidType;
  std::uint32_t count = 1;
};

/// A live frame, owned by the HPM_FUNCTION guard on the real call stack.
struct Frame {
  explicit Frame(const char* func_name) : func(func_name) {}
  const char* func;
  std::uint32_t current_point = 0;  ///< last poll-point / call-site label passed
  std::vector<LocalVar> locals;
  const SavedFrame* restore_from = nullptr;  ///< non-null while restoring
  std::size_t next_restore_var = 0;          ///< cursor into restore_from->vars
};

}  // namespace hpm::mig
