#include "mig/session.hpp"

#include <cstdio>

#include "mig/mig_metrics.hpp"

namespace hpm::mig {

namespace {

std::string payload_text(const net::Message& frame) {
  return {frame.payload.begin(), frame.payload.end()};
}

}  // namespace

const char* session_state_name(SessionState state) noexcept {
  switch (state) {
    case SessionState::Idle: return "idle";
    case SessionState::Hello: return "hello";
    case SessionState::Streaming: return "streaming";
    case SessionState::Resuming: return "resuming";
    case SessionState::Prepared: return "prepared";
    case SessionState::Committed: return "committed";
    case SessionState::Aborted: return "aborted";
    case SessionState::Redirecting: return "redirecting";
  }
  return "?";
}

namespace {

const char* msg_type_name(net::MsgType type) noexcept {
  switch (type) {
    case net::MsgType::Hello: return "Hello";
    case net::MsgType::State: return "State";
    case net::MsgType::Ack: return "Ack";
    case net::MsgType::Error: return "Error";
    case net::MsgType::Shutdown: return "Shutdown";
    case net::MsgType::Nack: return "Nack";
    case net::MsgType::StateBegin: return "StateBegin";
    case net::MsgType::StateChunk: return "StateChunk";
    case net::MsgType::StateEnd: return "StateEnd";
    case net::MsgType::StateAck: return "StateAck";
    case net::MsgType::Prepare: return "Prepare";
    case net::MsgType::PrepareAck: return "PrepareAck";
    case net::MsgType::Commit: return "Commit";
    case net::MsgType::Abort: return "Abort";
    case net::MsgType::ResumeHello: return "ResumeHello";
    case net::MsgType::Ping: return "Ping";
    case net::MsgType::Pong: return "Pong";
    case net::MsgType::ManifestBegin: return "ManifestBegin";
    case net::MsgType::ManifestChunk: return "ManifestChunk";
    case net::MsgType::ManifestAck: return "ManifestAck";
  }
  return "?";
}

std::string session_metric(std::uint32_t id, const char* role, const char* leaf) {
  return "mig.session." + std::to_string(id) + "." + role + "." + leaf;
}

}  // namespace

SessionMachine::SessionMachine(const char* role, std::uint32_t session_id)
    : role_(role),
      id_(session_id),
      frames_(obs::Registry::process().counter(
          session_metric(session_id, role, "frames"))),
      transitions_(obs::Registry::process().counter(
          session_metric(session_id, role, "transitions"))),
      state_gauge_(obs::Registry::process().gauge(
          session_metric(session_id, role, "state"))) {
  state_gauge_.set(static_cast<std::int64_t>(state_));
}

SessionState SessionMachine::state() const {
  std::lock_guard lk(mu_);
  return state_;
}

bool SessionMachine::terminal() const {
  std::lock_guard lk(mu_);
  return state_ == SessionState::Committed || state_ == SessionState::Aborted;
}

std::string SessionMachine::abort_reason() const {
  std::lock_guard lk(mu_);
  return abort_reason_;
}

void SessionMachine::transition_locked(SessionState next) {
  if (next == state_) return;
  state_ = next;
  transitions_.add(1);
  state_gauge_.set(static_cast<std::int64_t>(next));
}

void SessionMachine::illegal_locked(net::MsgType type) {
  std::string why = std::string(role_) + " session " + std::to_string(id_) +
                    ": illegal frame " + msg_type_name(type) + " in state " +
                    session_state_name(state_);
  abort_reason_ = why;
  transition_locked(SessionState::Aborted);
  throw ProtocolError(why);
}

void SessionMachine::illegal_event_locked(const char* event) {
  std::string why = std::string(role_) + " session " + std::to_string(id_) +
                    ": event " + event + " is illegal in state " +
                    session_state_name(state_);
  abort_reason_ = why;
  transition_locked(SessionState::Aborted);
  throw ProtocolError(why);
}

void SessionMachine::reject_locked(std::string why) {
  abort_reason_ = why;
  transition_locked(SessionState::Aborted);
  throw MigrationError(why);
}

/// ---- SourceSession --------------------------------------------------------
///
/// Transition table (frames the DESTINATION sends):
///
///   state       │ Hello  ResumeHello  StateAck  PrepareAck  Ack  Nack/Error
///   ────────────┼──────────────────────────────────────────────────────────
///   Idle        │ Hello¹ ·            ·         ·           ·    ·
///   Hello       │ ·      ·            ·         ·           ·    Aborted²
///   Streaming   │ ·      ·            fold      ·           ·    Aborted²
///   Resuming    │ ·      Streaming¹   fold      ·           ·    Aborted²
///   Prepared    │ ·      ·            fold      Prepared¹   ·    Aborted²
///   Redirecting │ Hello¹ ·            no-op     ·           ·    no-op³
///   Committed   │ ·      ·            no-op     ·           keep ·
///   Aborted     │ ·      ·            no-op     ·           ·    ·
///
///   · = illegal → Aborted + ProtocolError
///   ¹ = semantic checks (version / txn / digest / watermark bound) may
///       still reject → Aborted + MigrationError
///   ² = protocol-legal failure report → Aborted + MigrationError
///   ³ = stragglers from the fenced-off destination are dropped, not
///       poison: the redirect already presumed that endpoint dead
///
///   Dedup extension: ManifestAck is legal exactly once per destination
///   incarnation, in Streaming (redirect_decided re-arms it for the
///   standby's own negotiation). PrepareAck must echo the incarnation the
///   redirect handed out, or the vote is rejected as stale.

SourceSession::SourceSession(std::uint32_t session_id, std::uint64_t txn_id)
    : SessionMachine("source", session_id), txn_(txn_id) {}

SessionState SourceSession::on_frame(const net::Message& frame) {
  std::lock_guard lk(mu_);
  frames_.add(1);
  switch (frame.type) {
    case net::MsgType::Hello:
      // Idle: the primary announcing. Redirecting: the standby a failover
      // re-targeted the stream to — the machine re-enters the handshake.
      if (state_ != SessionState::Idle && state_ != SessionState::Redirecting) {
        illegal_locked(frame.type);
      }
      if (frame.payload.empty() || frame.payload[0] != net::kProtocolVersion) {
        reject_locked("protocol version mismatch: destination speaks v" +
                      std::to_string(frame.payload.empty() ? 0 : frame.payload[0]) +
                      ", source speaks v" + std::to_string(net::kProtocolVersion));
      }
      transition_locked(SessionState::Hello);
      break;

    case net::MsgType::ResumeHello: {
      if (state_ != SessionState::Resuming) illegal_locked(frame.type);
      const net::ResumeHelloInfo info = net::decode_resume_hello(frame.payload);
      if (info.version != net::kProtocolVersion) {
        reject_locked("protocol version mismatch on resume: destination speaks v" +
                      std::to_string(info.version));
      }
      if (info.txn_id != txn_) {
        reject_locked("ResumeHello names a different transaction");
      }
      if (stream_known_ && info.next_seq > total_chunks_) {
        reject_locked("destination claims more chunks than the stream holds");
      }
      resume_next_seq_ = info.next_seq;
      transition_locked(SessionState::Streaming);
      break;
    }

    case net::MsgType::StateAck: {
      // Legal while live (fold the watermark) and as a straggler after the
      // verdict (no-op); only the pre-stream states reject it.
      if (state_ == SessionState::Idle || state_ == SessionState::Hello) {
        illegal_locked(frame.type);
      }
      const std::uint32_t seq = net::decode_state_ack(frame.payload);
      if (state_ != SessionState::Committed && state_ != SessionState::Aborted &&
          state_ != SessionState::Redirecting && seq > acked_) {
        acked_ = seq;
      }
      break;
    }

    case net::MsgType::ManifestAck: {
      // The destination's miss set for a dedup'd transfer: legal exactly
      // once, while streaming, before the commit gate opens.
      if (state_ != SessionState::Streaming || manifest_acked_) illegal_locked(frame.type);
      manifest_acked_ = true;
      break;
    }

    case net::MsgType::PrepareAck: {
      if (state_ != SessionState::Prepared) illegal_locked(frame.type);
      const net::PrepareAckInfo vote = net::decode_prepare_ack(frame.payload);
      if (vote.txn_id != txn_) {
        reject_locked("PrepareAck names a different transaction");
      }
      if (vote.incarnation != incarnation_) {
        FailoverMetrics::get().fenced.add(1);
        reject_locked("PrepareAck echoes destination incarnation " +
                      std::to_string(vote.incarnation) + " but the stream addresses " +
                      std::to_string(incarnation_) + " — a fenced-off vote");
      }
      if (stream_known_ && vote.digest != digest_) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%016llx vs destination %016llx",
                      static_cast<unsigned long long>(digest_),
                      static_cast<unsigned long long>(vote.digest));
        reject_locked(std::string("end-to-end digest mismatch at Prepare: source ") + buf);
      }
      break;  // stays Prepared; commit_decided() is the source's own move
    }

    case net::MsgType::Ack:
      // The destination's post-Commit confirmation.
      if (state_ != SessionState::Committed) illegal_locked(frame.type);
      break;

    case net::MsgType::Nack:
      if (terminal_locked()) illegal_locked(frame.type);
      if (state_ == SessionState::Redirecting) break;  // fenced straggler
      reject_locked("destination rejected the chunked stream (Nack): " +
                    payload_text(frame));

    case net::MsgType::Error:
      if (terminal_locked()) illegal_locked(frame.type);
      if (state_ == SessionState::Redirecting) break;  // fenced straggler
      reject_locked("destination restore failed: " + payload_text(frame));

    default:
      illegal_locked(frame.type);
  }
  return state_;
}

void SourceSession::begin_streaming() {
  std::lock_guard lk(mu_);
  if (state_ != SessionState::Hello) illegal_event_locked("begin_streaming");
  transition_locked(SessionState::Streaming);
}

void SourceSession::link_lost() {
  std::lock_guard lk(mu_);
  if (state_ != SessionState::Streaming && state_ != SessionState::Prepared &&
      state_ != SessionState::Resuming) {
    illegal_event_locked("link_lost");
  }
  transition_locked(SessionState::Resuming);
}

void SourceSession::prepare_sent() {
  std::lock_guard lk(mu_);
  if (state_ != SessionState::Streaming) illegal_event_locked("prepare_sent");
  transition_locked(SessionState::Prepared);
}

void SourceSession::commit_decided() {
  std::lock_guard lk(mu_);
  if (state_ != SessionState::Prepared) illegal_event_locked("commit_decided");
  transition_locked(SessionState::Committed);
}

void SourceSession::abort_decided(std::string why) {
  std::lock_guard lk(mu_);
  if (state_ == SessionState::Committed) illegal_event_locked("abort_decided");
  abort_reason_ = std::move(why);
  transition_locked(SessionState::Aborted);
}

void SourceSession::redirect_decided(std::uint32_t next_incarnation) {
  std::lock_guard lk(mu_);
  // Idle is legal too: a primary that dies before its Hello ever arrives
  // leaves the machine unopened, and the failover hands the (already
  // collected) stream to a standby exactly as it would mid-protocol.
  // Redirecting likewise: a STANDBY that dies before its own Hello parks
  // the machine here, and moving on to the next candidate is the same
  // decision again under the next incarnation.
  if (state_ != SessionState::Idle && state_ != SessionState::Streaming &&
      state_ != SessionState::Prepared && state_ != SessionState::Resuming &&
      state_ != SessionState::Redirecting) {
    illegal_event_locked("redirect_decided");
  }
  if (next_incarnation <= incarnation_) illegal_event_locked("redirect_decided");
  incarnation_ = next_incarnation;
  // The standby starts from nothing: no acked watermark, no manifest
  // negotiation, no resume point. The stream totals (set_stream) survive —
  // the retained stream itself is what gets replayed.
  acked_ = 0;
  manifest_acked_ = false;
  resume_next_seq_ = 0;
  transition_locked(SessionState::Redirecting);
}

void SourceSession::set_stream(std::uint64_t total_chunks, std::uint64_t digest) {
  std::lock_guard lk(mu_);
  total_chunks_ = total_chunks;
  digest_ = digest;
  stream_known_ = true;
}

std::uint32_t SourceSession::acked_watermark() const {
  std::lock_guard lk(mu_);
  return acked_;
}

std::uint32_t SourceSession::resume_next_seq() const {
  std::lock_guard lk(mu_);
  return resume_next_seq_;
}

std::uint32_t SourceSession::incarnation() const {
  std::lock_guard lk(mu_);
  return incarnation_;
}

/// ---- DestSession ----------------------------------------------------------
///
/// Transition table (frames the SOURCE sends):
///
///   state      │ StateBegin  Shutdown  StateChunk  StateEnd  Prepare    Commit     Abort
///   ───────────┼───────────────────────────────────────────────────────────────────────
///   Idle       │ ·           ·         ·           ·         ·          ·          ·
///   Hello      │ Streaming   Aborted³  ·           ·         ·          ·          ·
///   Streaming  │ ·           ·         count       mark done Prepared¹⁴ ·          ·
///   Resuming   │ ·           ·         ·           ·         ·          ·          ·
///   Prepared   │ ·           ·         ·           ·         ·          Committed¹ Aborted²
///   Committed  │ ·           ·         ·           ·         ·          ·          ·
///   Aborted    │ ·           ·         ·           ·         ·          ·          ·
///
///   · = illegal → Aborted + ProtocolError        ³ = orderly, no throw
///   ¹ = txn check may reject → MigrationError    ⁴ = only after StateEnd
///
///   Dedup extension: ManifestBegin is legal once in Streaming before any
///   chunk (txn-checked); ManifestChunk batches must then arrive densely
///   in order within the announced total.
///   ² = "source aborted the handoff after Prepare" → MigrationError
///
///   Fencing (v5): StateBegin teaches this destination its incarnation;
///   a Prepare or Commit naming any OTHER incarnation is refused with a
///   MigrationError — a failover already moved ownership to a newer
///   incarnation and this (revived, presumed-dead) endpoint may not
///   commit a stale restore.

DestSession::DestSession(std::uint32_t session_id)
    : SessionMachine("destination", session_id) {}

SessionState DestSession::on_frame(const net::Message& frame) {
  std::lock_guard lk(mu_);
  frames_.add(1);
  switch (frame.type) {
    case net::MsgType::StateBegin:
      if (state_ != SessionState::Hello) illegal_locked(frame.type);
      begin_ = net::decode_state_begin(frame.payload);
      txn_ = begin_.txn_id;
      transition_locked(SessionState::Streaming);
      break;

    case net::MsgType::Shutdown:
      if (state_ != SessionState::Hello) illegal_locked(frame.type);
      orderly_ = true;
      abort_reason_ = "orderly shutdown: the source never migrated";
      transition_locked(SessionState::Aborted);
      break;

    case net::MsgType::StateChunk:
      if (state_ != SessionState::Streaming || stream_complete_) {
        illegal_locked(frame.type);
      }
      ++chunks_;
      break;

    case net::MsgType::ManifestBegin: {
      // Dedup address-list announcement: right after StateBegin, before
      // any chunk, at most once per transfer.
      if (state_ != SessionState::Streaming || stream_complete_ || chunks_ != 0 ||
          manifest_total_ != 0) {
        illegal_locked(frame.type);
      }
      const net::ManifestBeginInfo info = net::decode_manifest_begin(frame.payload);
      if (info.txn_id != txn_) {
        reject_locked("ManifestBegin names a different transaction");
      }
      manifest_total_ = info.chunk_count;
      manifest_announced_ = true;
      break;
    }

    case net::MsgType::ManifestChunk: {
      if (state_ != SessionState::Streaming || !manifest_announced_) {
        illegal_locked(frame.type);
      }
      const net::ManifestChunkInfo batch = net::decode_manifest_chunk(frame.payload);
      // Batches must arrive densely in order and never overrun the
      // announced total — a peer that violates either is hostile or
      // buggy, the same taxonomy as a chunk sequence gap.
      if (batch.first_index != manifest_seen_ ||
          batch.entries.size() > manifest_total_ - manifest_seen_) {
        const std::string why = std::string(role_) + " session " + std::to_string(id_) +
                                ": ManifestChunk batch at index " +
                                std::to_string(batch.first_index) + " (" +
                                std::to_string(batch.entries.size()) + " entries) out of " +
                                std::to_string(manifest_total_) + " does not follow index " +
                                std::to_string(manifest_seen_);
        abort_reason_ = why;
        transition_locked(SessionState::Aborted);
        throw ProtocolError(why);
      }
      manifest_seen_ += static_cast<std::uint32_t>(batch.entries.size());
      break;
    }

    case net::MsgType::StateEnd:
      if (state_ != SessionState::Streaming || stream_complete_) {
        illegal_locked(frame.type);
      }
      stream_complete_ = true;
      break;

    case net::MsgType::Prepare: {
      if (state_ != SessionState::Streaming || !stream_complete_) {
        illegal_locked(frame.type);
      }
      const net::TxnTokenInfo token = net::decode_txn_token(frame.payload);
      if (token.txn_id != txn_) {
        reject_locked("Prepare names a different transaction");
      }
      if (token.incarnation != begin_.incarnation) {
        FailoverMetrics::get().fenced.add(1);
        reject_locked("fenced: Prepare addresses destination incarnation " +
                      std::to_string(token.incarnation) + " but this destination is " +
                      std::to_string(begin_.incarnation));
      }
      transition_locked(SessionState::Prepared);
      break;
    }

    case net::MsgType::Commit: {
      if (state_ != SessionState::Prepared) illegal_locked(frame.type);
      const net::TxnTokenInfo token = net::decode_txn_token(frame.payload);
      if (token.txn_id != txn_) {
        reject_locked("Commit names a different transaction");
      }
      if (token.incarnation != begin_.incarnation) {
        FailoverMetrics::get().fenced.add(1);
        reject_locked("fenced: Commit addresses destination incarnation " +
                      std::to_string(token.incarnation) + " but this destination is " +
                      std::to_string(begin_.incarnation) +
                      " — a stale incarnation may not own the process");
      }
      transition_locked(SessionState::Committed);
      break;
    }

    case net::MsgType::Abort:
      if (state_ != SessionState::Prepared) illegal_locked(frame.type);
      reject_locked("source aborted the handoff after Prepare");

    default:
      illegal_locked(frame.type);
  }
  return state_;
}

void DestSession::announce() {
  std::lock_guard lk(mu_);
  if (state_ != SessionState::Idle) illegal_event_locked("announce");
  transition_locked(SessionState::Hello);
}

void DestSession::park() {
  std::lock_guard lk(mu_);
  if (state_ != SessionState::Streaming) illegal_event_locked("park");
  transition_locked(SessionState::Resuming);
}

void DestSession::resume_announced() {
  std::lock_guard lk(mu_);
  if (state_ != SessionState::Resuming) illegal_event_locked("resume_announced");
  transition_locked(SessionState::Streaming);
}

void DestSession::commit_recovered() {
  std::lock_guard lk(mu_);
  if (state_ != SessionState::Prepared) illegal_event_locked("commit_recovered");
  transition_locked(SessionState::Committed);
}

void DestSession::abort_decided(std::string why) {
  std::lock_guard lk(mu_);
  if (state_ == SessionState::Committed) illegal_event_locked("abort_decided");
  abort_reason_ = std::move(why);
  transition_locked(SessionState::Aborted);
}

bool DestSession::orderly_shutdown() const {
  std::lock_guard lk(mu_);
  return orderly_;
}

std::uint64_t DestSession::txn_id() const {
  std::lock_guard lk(mu_);
  return txn_;
}

std::uint32_t DestSession::chunks_seen() const {
  std::lock_guard lk(mu_);
  return chunks_;
}

net::StateBeginInfo DestSession::begin_info() const {
  std::lock_guard lk(mu_);
  return begin_;
}

std::uint32_t DestSession::incarnation() const {
  std::lock_guard lk(mu_);
  return begin_.incarnation;
}

}  // namespace hpm::mig
