// Destination endpoint of the transactional pipelined transfer.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "mig/chunk_assembler.hpp"
#include "mig/coordinator.hpp"
#include "mig/port.hpp"
#include "mig/session.hpp"
#include "net/deadline.hpp"

namespace hpm::mig {

/// Unlike the serial path's per-attempt destination, this host SURVIVES
/// link failures: its rx loop parks on a port error and adopts the
/// replacement the source offers, announcing its chunk watermark in
/// ResumeHello — one restoration spanning several physical bindings.
/// Restoration is bracketed by the commit gate (Prepare/PrepareAck then
/// Commit/Abort); the gate's decisions are write-ahead journaled, and an
/// in-doubt gate (voted yes, verdict lost) polls the source's journal
/// for the durable decision instead of guessing.
///
/// Every inbound frame is validated by the DestSession machine before it
/// is acted on, so an out-of-order or hostile peer surfaces as a typed
/// ProtocolError at the exact frame that broke the protocol.
class DestinationHost {
 public:
  /// `deadline` must outlive the host (the caller owns the policy; the
  /// transaction driver and this host consult the same instance, so an
  /// adaptive policy keeps both ends' deadlines in step).
  DestinationHost(const RunOptions& options, MigrationReport& report, Journal& journal,
                  std::string source_journal_path, const net::DeadlinePolicy& deadline,
                  std::uint32_t session_id);

  ~DestinationHost();

  void start(std::unique_ptr<MessagePort> port);

  /// Offer a replacement port for a resume attempt. False once the
  /// destination can no longer adopt one (crashed, failed, finished).
  bool offer(std::unique_ptr<MessagePort> port);

  /// No further ports will come; a parked rx gives up.
  void close();

  void join();

  [[nodiscard]] bool resumable() const;
  [[nodiscard]] bool finished() const;
  [[nodiscard]] bool committed() const;

  /// The protocol machine, for observers (tests, migrate_many reporting).
  [[nodiscard]] const DestSession& session() const noexcept { return session_; }

 private:
  MessagePort* current() const;
  void set_dead(std::exception_ptr error);
  void mark_finished();
  bool adopt_replacement();
  void run();
  void release_port();
  /// `store` is non-null when this host is configured with a chunk cache
  /// (RunOptions::chunk_cache_dir): the rx loop then answers a source
  /// manifest with its miss set and splices hits locally (DESIGN.md §15).
  void rx_loop(ChunkAssembler& assembler, std::uint64_t txn, ChunkStore* store);
  void commit_gate(std::uint64_t txn, std::uint64_t digest);
  void resolve_in_doubt(std::uint64_t txn, std::uint64_t digest, const char* why);
  void record_committed(std::uint64_t txn, std::uint64_t digest, std::string note);

  const RunOptions& options_;
  MigrationReport& report_;
  Journal& journal_;
  const std::string source_journal_path_;
  const net::DeadlinePolicy& deadline_;
  DestSession session_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unique_ptr<MessagePort> port_;     ///< current endpoint (guarded by mu_)
  std::unique_ptr<MessagePort> offered_;  ///< reconnect candidate from the source
  std::exception_ptr error_;
  bool closed_ = false;
  bool dead_ = false;
  bool committed_ = false;
  bool finished_ = false;
  std::atomic<bool> killed_{false};
  std::thread thread_;
};

}  // namespace hpm::mig
