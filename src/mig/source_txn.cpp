#include "mig/source_txn.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>

#include "mig/chunk_queue.hpp"
#include "mig/chunk_store.hpp"
#include "mig/control_inbox.hpp"
#include "mig/dest_host.hpp"
#include "mig/endpoint_util.hpp"
#include "mig/mig_metrics.hpp"
#include "mig/session.hpp"
#include "mig/wire_codec.hpp"
#include "obs/span.hpp"

namespace hpm::mig {

namespace {

using Clock = std::chrono::steady_clock;

enum class CommitResult : std::uint8_t { Confirmed, Unconfirmed };

/// The commit-phase waits cover peer *compute* (restore, digest verify),
/// not a single wire hop, so the per-call IO deadline — which an adaptive
/// policy derives from heartbeat RTTs — is the wrong bound for them. Use
/// the same 4x grace the destination's in-doubt poll applies; a fixed(0)
/// unbounded policy stays unbounded.
std::chrono::milliseconds commit_grace(std::chrono::milliseconds t) {
  return t.count() > 0 ? 4 * t : t;
}

/// The decision half of the handoff, run by the source after StateEnd.
/// Every pre-Commit failure journals Abort BEFORE rethrowing (so an
/// in-doubt destination resolves consistently); once the Commit record is
/// durable nothing can abort — a lost confirmation merely degrades the
/// result to Unconfirmed. KilledError passes through untouched: a crash
/// journals nothing, the log must hold only real decisions.
///
/// The inbound half is validated by the machine: await() feeds each reply
/// through session.on_frame(), which raises the typed rejection (Nack,
/// Error, wrong txn, digest mismatch) or ProtocolError itself.
CommitResult source_commit_phase(MessagePort& port, ControlInbox& inbox,
                                 SourceSession& session,
                                 const net::DeadlinePolicy& deadline, std::uint64_t txn,
                                 std::uint64_t digest, Journal& journal) {
  try {
    session.prepare_sent();
    port.send(net::MsgType::Prepare, net::encode_txn(txn));
    // The policy is consulted per blocking call, so an adaptive deadline
    // warmed by heartbeat RTTs can tighten mid-handoff.
    const net::Message reply = inbox.await(commit_grace(deadline.current()));
    if (reply.type != net::MsgType::PrepareAck) {
      // on_frame already vetted it; anything it let through that is not
      // the vote is a protocol breach.
      throw ProtocolError("unexpected message in the prepare phase");
    }
  } catch (const KilledError&) {
    throw;
  } catch (const Error&) {
    // A destination that vetoes the handoff sends its Error/Nack and then
    // drops the channel; our Prepare can hit the dead pipe before the
    // pump delivers the veto. The frame survives the close in the pipe's
    // buffer, so grace-wait for it and prefer the destination's cause
    // over our own send failure.
    std::exception_ptr cause = std::current_exception();
    try {
      inbox.await(std::chrono::milliseconds(50));
    } catch (const MigrationError& veto) {
      // on_frame turned the pending Error/Nack into its typed rejection.
      cause = std::make_exception_ptr(veto);
    } catch (...) {
      // Nothing queued; the original failure stands.
    }
    journal.append({JournalRecordType::Abort, txn, digest, "prepare phase failed"});
    TxnMetrics::get().aborts.add(1);
    if (!session.terminal()) session.abort_decided("prepare phase failed");
    try {
      port.send(net::MsgType::Abort, net::encode_txn(txn));
    } catch (...) {
      // A dead port cannot carry the Abort; the destination's in-doubt
      // poll reads the journal record instead.
    }
    std::rethrow_exception(cause);
  }
  // --- the decision is Commit: durable before the frame leaves, irrevocable after.
  journal.append({JournalRecordType::Commit, txn, digest, ""});
  TxnMetrics::get().commits.add(1);
  session.commit_decided();
  try {
    port.send(net::MsgType::Commit, net::encode_txn(txn));
    const net::Message fin = inbox.await(commit_grace(deadline.current()));
    if (fin.type == net::MsgType::Ack) {
      journal.append({JournalRecordType::Done, txn, digest, ""});
      return CommitResult::Confirmed;
    }
  } catch (const KilledError&) {
    throw;  // post-commit source crash: the destination recovers from the journal
  } catch (const Error&) {
  }
  return CommitResult::Unconfirmed;
}

}  // namespace

TxnResult run_pipelined_transaction(const RunOptions& options, MigrationReport& report,
                                    Bytes& stream, const SessionWiring& wiring,
                                    const net::DeadlinePolicy& deadline,
                                    Journal& src_journal, Journal& dst_journal,
                                    std::uint64_t txn, int total_attempts,
                                    int& attempts_used) {
  TxnMetrics::get().begins.add(1);
  report.txn_id = txn;

  SourceSession session(wiring.session_id, txn);

  PortPair ports = wiring.connect();
  std::unique_ptr<MessagePort> src_port = std::move(ports.source);
  src_port->set_timeout(deadline.current());

  DestinationHost dest(options, report, dst_journal, src_journal.path(), deadline,
                       wiring.session_id);
  dest.start(std::move(ports.destination));

  CoordinatorMetrics::get().attempts.add(1);
  attempts_used = 1;
  report.attempts = 1;

  const std::size_t cb = std::max<std::size_t>(1, options.chunk_bytes);
  // Dedup'd transfer (DESIGN.md §15): the manifest needs every chunk
  // address up front, so the stream is collected in full before anything
  // but StateBegin goes out — no sender thread, no collect sink.
  const bool dedup = !options.chunk_cache_dir.empty();
  std::unique_ptr<ControlInbox> inbox;

  ChunkQueue queue(kChunkQueueCapacity);
  std::exception_ptr sender_error;
  std::thread sender;
  auto join_sender = [&] {
    if (sender.joinable()) sender.join();
  };
  /// Stop the pump (which aborts the port) so a blocked peer wakes and
  /// the port can be replaced or destroyed.
  auto fail_channel = [&] {
    if (inbox != nullptr) {
      inbox->stop();
    } else if (src_port != nullptr) {
      try {
        src_port->abort();
      } catch (...) {
      }
    }
  };
  /// Record a lost physical binding in the machine — from the states where
  /// a binding can be lost. (A rejected frame already landed in Aborted.)
  auto note_link_lost = [&] {
    const SessionState s = session.state();
    if (s == SessionState::Streaming || s == SessionState::Prepared ||
        s == SessionState::Resuming) {
      session.link_lost();
    }
  };

  std::exception_ptr source_error;
  /// Set when options.program itself throws (anything but MigrationExit):
  /// a workload failure is the caller's to see, never a retryable
  /// transport fault — rethrown after teardown, matching the serial path.
  std::exception_ptr program_error;
  double measured_tx = 0;
  bool collected = false;
  bool killed = false;
  bool attempt_ok = false;
  bool unconfirmed = false;
  std::uint64_t digest = 0;
  net::StateEndInfo end;
  Clock::time_point pipeline_start{};

  // --- attempt 1: stream while collecting ----------------------------------
  try {
    session.on_frame(src_port->recv());  // Hello: version-checked by the machine
    session.begin_streaming();
    inbox = std::make_unique<ControlInbox>(*src_port, session);

    if (!dedup) sender = std::thread([&] {
      try {
        PipelineMetrics& pm = PipelineMetrics::get();
        std::unique_ptr<obs::Span> tx_span;
        Bytes chunk;
        std::uint32_t seq = 0;
        while (queue.pop(chunk)) {
          if (tx_span == nullptr) {
            tx_span = std::make_unique<obs::Span>("mig.tx");
            tx_span->arg("transport",
                         std::string(net::transport_name(options.transport)));
            // Write-ahead: the transaction exists on disk before any
            // frame names it on the wire.
            src_journal.append({JournalRecordType::Begin, txn, 0, "source"});
            src_port->send(net::MsgType::StateBegin,
                           net::encode_state_begin({options.chunk_bytes, txn}));
          }
          src_port->send(net::MsgType::StateChunk, net::encode_state_chunk(seq++, chunk));
          pm.chunks.add(1);
          pm.chunk_bytes.record(static_cast<double>(chunk.size()));
        }
        if (const auto e = queue.end_info()) {
          src_port->send(net::MsgType::StateEnd, net::encode_state_end(*e));
          if (tx_span != nullptr) measured_tx = tx_span->finish();
        }
      } catch (...) {
        sender_error = std::current_exception();
        queue.poison();  // collection must never block on a dead sender
      }
    });

    ti::TypeTable types;
    options.register_types(types);
    MigContext ctx(types, options.search);
    ctx.set_migrate_at_poll(options.migrate_at_poll);
    ctx.set_collect_threads(options.collect_threads);
    if (!dedup) {
      ctx.set_collect_sink(options.chunk_bytes, [&](std::span<const std::uint8_t> bytes) {
        if (pipeline_start == Clock::time_point{}) pipeline_start = Clock::now();
        queue.push(Bytes(bytes.begin(), bytes.end()));
      });
    }

    std::atomic<bool> program_done{false};
    std::thread scheduler;
    if (options.request_after_seconds > 0) {
      scheduler = std::thread([&ctx, &program_done, delay = options.request_after_seconds] {
        const auto deadline = Clock::now() + std::chrono::duration<double>(delay);
        while (!program_done.load(std::memory_order_relaxed) && Clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (!program_done.load(std::memory_order_relaxed)) ctx.request_migration();
      });
    }
    auto join_scheduler = [&] {
      program_done.store(true, std::memory_order_relaxed);
      if (scheduler.joinable()) scheduler.join();
    };
    try {
      try {
        options.program(ctx);
      } catch (const MigrationExit&) {
        join_scheduler();
        throw;
      } catch (...) {
        join_scheduler();
        program_error = std::current_exception();
        throw;
      }
      join_scheduler();
    } catch (const MigrationExit&) {
      collected = true;
      stream = ctx.stream();  // retained for resumes and serial retries
      digest = ctx.stream_digest();
      report.stream_digest = digest;
      report.stream_bytes = stream.size();
      report.collect_seconds = ctx.metrics().collect_seconds;
      report.source_arch = ctx.space().arch().name;
    }
    report.source_polls = ctx.poll_count();

    if (!collected) {
      queue.close(std::nullopt);
      join_sender();
      src_port->send(net::MsgType::Shutdown, {});
      session.abort_decided("no migration was triggered");
    } else {
      // Stream-derived, NOT queue.pushed(): a poisoned queue undercounts
      // (push drops silently after a sender failure), and a resume's
      // StateEnd must describe the whole fixed-size chunking.
      end.chunk_count = static_cast<std::uint32_t>((stream.size() + cb - 1) / cb);
      end.total_bytes = stream.size();
      end.digest = digest;
      session.set_stream(end.chunk_count, digest);
      if (!dedup) {
        queue.close(end);
        join_sender();
        if (sender_error != nullptr) std::rethrow_exception(sender_error);
      } else {
        // --- dedup: announce addresses, learn the miss set, ship only it ---
        obs::Span tx_span("mig.tx");
        tx_span.arg("transport", std::string(net::transport_name(options.transport)));
        tx_span.arg("dedup", std::uint64_t{1});
        pipeline_start = Clock::now();
        src_journal.append({JournalRecordType::Begin, txn, 0, "source"});
        src_port->send(net::MsgType::StateBegin,
                       net::encode_state_begin({options.chunk_bytes, txn}));
        DedupMetrics& dm = DedupMetrics::get();
        const std::uint32_t nchunks = end.chunk_count;
        const std::uint8_t caps = codec_caps_of(options.wire_codec);
        std::uint64_t wire = 0;
        {
          const Bytes payload =
              net::encode_manifest_begin({txn, nchunks, options.chunk_bytes, caps});
          wire += payload.size();
          src_port->send(net::MsgType::ManifestBegin, payload);
        }
        std::vector<net::ManifestEntry> batch;
        batch.reserve(net::kManifestEntriesPerFrame);
        std::uint32_t batch_first = 0;
        for (std::uint32_t i = 0; i < nchunks; ++i) {
          const std::size_t off = static_cast<std::size_t>(i) * cb;
          const std::size_t len = std::min(cb, stream.size() - off);
          const ChunkAddr addr = ChunkStore::address_of({stream.data() + off, len});
          batch.push_back({addr.digest, addr.length});
          if (batch.size() == net::kManifestEntriesPerFrame || i + 1 == nchunks) {
            const Bytes payload = net::encode_manifest_chunk(batch_first, batch);
            wire += payload.size();
            src_port->send(net::MsgType::ManifestChunk, payload);
            batch_first = i + 1;
            batch.clear();
          }
        }
        dm.manifest_chunks.add(nchunks);
        report.dedup_manifest_chunks = nchunks;

        // The destination loads (and digest-verifies) every candidate hit
        // before answering, so the wait is compute-bounded like a vote.
        const net::Message ackmsg = inbox->await(commit_grace(deadline.current()));
        if (ackmsg.type != net::MsgType::ManifestAck) {
          throw ProtocolError("expected ManifestAck during manifest negotiation");
        }
        const net::ManifestAckInfo ack = net::decode_manifest_ack(ackmsg.payload);
        if (ack.codec > static_cast<std::uint8_t>(WireCodec::VarintDelta) ||
            (ack.codec != 0 && (caps & kCodecCapVarintDelta) == 0)) {
          throw ProtocolError("destination chose a codec the source never offered");
        }
        const WireCodec codec = static_cast<WireCodec>(ack.codec);
        std::int64_t prev_idx = -1;
        for (const std::uint32_t idx : ack.misses) {
          if (idx >= nchunks || static_cast<std::int64_t>(idx) <= prev_idx) {
            throw ProtocolError("ManifestAck miss set is out of range or unsorted");
          }
          prev_idx = idx;
        }

        PipelineMetrics& pm = PipelineMetrics::get();
        for (const std::uint32_t idx : ack.misses) {
          const std::size_t off = static_cast<std::size_t>(idx) * cb;
          const std::size_t len = std::min(cb, stream.size() - off);
          const std::span<const std::uint8_t> body{stream.data() + off, len};
          Bytes payload;
          if (codec == WireCodec::VarintDelta) {
            Bytes coded = codec_encode(body);
            if (coded.size() < body.size()) {
              dm.codec_ratio.record(static_cast<double>(coded.size()) /
                                    static_cast<double>(body.size()));
              payload = net::encode_state_chunk_coded(
                  idx, static_cast<std::uint8_t>(WireCodec::VarintDelta), coded);
            } else {
              dm.codec_ratio.record(1.0);  // raw fallback: encoding did not pay
            }
          }
          if (payload.empty()) payload = net::encode_state_chunk_coded(idx, 0, body);
          wire += payload.size();
          src_port->send(net::MsgType::StateChunk, payload);
          pm.chunks.add(1);
          pm.chunk_bytes.record(static_cast<double>(payload.size() - 5));
        }
        {
          const Bytes payload = net::encode_state_end(end);
          wire += payload.size();
          src_port->send(net::MsgType::StateEnd, payload);
        }
        measured_tx = tx_span.finish();
        report.dedup_miss_chunks = ack.misses.size();
        report.dedup_hit_chunks = nchunks - ack.misses.size();
        report.dedup_wire_bytes = wire;
      }
      const CommitResult r =
          source_commit_phase(*src_port, *inbox, session, deadline, txn, digest,
                              src_journal);
      unconfirmed = (r == CommitResult::Unconfirmed);
      attempt_ok = true;
    }
  } catch (...) {
    source_error = std::current_exception();
    queue.poison();
    queue.close(std::nullopt);
    join_sender();
    fail_channel();
  }

  // Classify the attempt-1 failure before deciding whether to resume.
  bool fatal_other = false;  // non-hpm exception: propagate after teardown
  if (source_error != nullptr && program_error == nullptr) {
    try {
      std::rethrow_exception(source_error);
    } catch (const KilledError& e) {
      killed = true;
      if (collected) report.failure_causes.push_back("attempt 1: " + std::string(e.what()));
    } catch (const Error& e) {
      if (collected) report.failure_causes.push_back("attempt 1: " + std::string(e.what()));
    } catch (...) {
      fatal_other = true;
    }
  }

  // --- resume attempts: retransmit only past the acked watermark -----------
  const std::uint64_t total_chunks = collected ? (stream.size() + cb - 1) / cb : 0;
  double backoff = options.retry_backoff_seconds;
  while (collected && !attempt_ok && !unconfirmed && !killed && !fatal_other &&
         program_error == nullptr && attempts_used < total_attempts &&
         !session.terminal() && dest.resumable()) {
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2, options.retry_backoff_cap_seconds);
    }
    ++attempts_used;
    report.attempts = attempts_used;
    CoordinatorMetrics::get().attempts.add(1);
    CoordinatorMetrics::get().retries.add(1);
    try {
      note_link_lost();  // the machine must be Resuming to accept ResumeHello
      PortPair fresh = wiring.connect();
      if (!dest.offer(std::move(fresh.destination))) {
        report.failure_causes.push_back("attempt " + std::to_string(attempts_used) +
                                        ": destination no longer accepts a resume channel");
        break;
      }
      if (inbox != nullptr) {
        inbox->stop();
        inbox.reset();  // the pump must be gone before its port is
      }
      src_port = std::move(fresh.source);
      src_port->set_timeout(deadline.current());
      session.on_frame(src_port->recv());  // ResumeHello: version/txn/bound-checked
      const std::uint32_t next_seq = session.resume_next_seq();
      ResumeMetrics::get().attempts.add(1);
      ResumeMetrics::get().chunks_skipped.add(next_seq);
      report.resumed_from_seq = static_cast<std::int64_t>(next_seq);
      inbox = std::make_unique<ControlInbox>(*src_port, session);
      {
        obs::Span tx_span("mig.tx");
        tx_span.arg("transport", std::string(net::transport_name(options.transport)));
        tx_span.arg("resumed_from", std::uint64_t{next_seq});
        PipelineMetrics& pm = PipelineMetrics::get();
        for (std::uint64_t seq = next_seq; seq < total_chunks; ++seq) {
          const std::size_t off = static_cast<std::size_t>(seq) * cb;
          const std::size_t len = std::min(cb, stream.size() - off);
          const std::span<const std::uint8_t> body{stream.data() + off, len};
          // A dedup stream's chunk payloads carry a codec tag byte; resume
          // retransmits everything raw (tag 0) — former cache hits included,
          // since the destination stopped splicing when the link dropped.
          src_port->send(net::MsgType::StateChunk,
                         dedup ? net::encode_state_chunk_coded(
                                     static_cast<std::uint32_t>(seq), 0, body)
                               : net::encode_state_chunk(
                                     static_cast<std::uint32_t>(seq), body));
          pm.chunks.add(1);
          pm.chunk_bytes.record(static_cast<double>(len));
        }
        src_port->send(net::MsgType::StateEnd, net::encode_state_end(end));
        measured_tx += tx_span.finish();
      }
      const CommitResult r =
          source_commit_phase(*src_port, *inbox, session, deadline, txn, digest,
                              src_journal);
      unconfirmed = (r == CommitResult::Unconfirmed);
      attempt_ok = true;
    } catch (const KilledError& e) {
      killed = true;
      report.failure_causes.push_back("attempt " + std::to_string(attempts_used) + ": " +
                                      e.what());
      fail_channel();
    } catch (const Error& e) {
      report.failure_causes.push_back("attempt " + std::to_string(attempts_used) + ": " +
                                      e.what());
      fail_channel();
    }
  }
  const Clock::time_point pipeline_end = Clock::now();

  // --- teardown -------------------------------------------------------------
  if (inbox != nullptr) inbox->stop();
  dest.close();
  dest.join();
  try {
    if (src_port != nullptr) src_port->close();
  } catch (...) {
  }

  if (program_error != nullptr) std::rethrow_exception(program_error);
  if (fatal_other) std::rethrow_exception(source_error);

  if (!collected) {
    // The workload already finished on the source; a torn-down teardown
    // handshake doesn't change its fate.
    return TxnResult::CompletedLocally;
  }
  if (killed) {
    report.migrated = dest.finished();
    return TxnResult::SourceCrashed;
  }
  if (unconfirmed) {
    report.migrated = dest.finished();
    return TxnResult::CommittedUnconfirmed;
  }
  if (attempt_ok) {
    report.migrated = true;
    report.tx_seconds =
        options.throttle ? measured_tx : options.link.transfer_seconds(stream.size());
    // Overlap: wall-clock from the first chunk leaving collection to the
    // acknowledged restore, vs. the sum of the three phase timings. Fully
    // serial execution gives 0; perfect overlap approaches 1.
    const double wall = std::chrono::duration<double>(pipeline_end - pipeline_start).count();
    const double phases = report.collect_seconds + measured_tx + report.restore_seconds;
    if (wall > 0 && phases > 0) {
      report.overlap_ratio = std::clamp(1.0 - wall / phases, 0.0, 1.0);
    }
    PipelineMetrics::get().overlap.record(report.overlap_ratio);
    return TxnResult::Migrated;
  }
  return TxnResult::Failed;
}

}  // namespace hpm::mig
