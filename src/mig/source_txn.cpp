#include "mig/source_txn.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <memory>
#include <thread>

#include "mig/chunk_queue.hpp"
#include "mig/chunk_store.hpp"
#include "mig/control_inbox.hpp"
#include "mig/dest_host.hpp"
#include "mig/endpoint_util.hpp"
#include "mig/mig_metrics.hpp"
#include "mig/session.hpp"
#include "mig/wire_codec.hpp"
#include "obs/span.hpp"

namespace hpm::mig {

namespace {

using Clock = std::chrono::steady_clock;

enum class CommitResult : std::uint8_t { Confirmed, Unconfirmed };

/// The commit-phase waits cover peer *compute* (restore, digest verify),
/// not a single wire hop, so the per-call IO deadline — which an adaptive
/// policy derives from heartbeat RTTs — is the wrong bound for them. Use
/// the same 4x grace the destination's in-doubt poll applies; a fixed(0)
/// unbounded policy stays unbounded.
std::chrono::milliseconds commit_grace(std::chrono::milliseconds t) {
  return t.count() > 0 ? 4 * t : t;
}

/// The decision half of the handoff, run by the source after StateEnd.
/// Every pre-Commit failure journals Abort BEFORE rethrowing (so an
/// in-doubt destination resolves consistently); once the Commit record is
/// durable nothing can abort — a lost confirmation merely degrades the
/// result to Unconfirmed. KilledError passes through untouched: a crash
/// journals nothing, the log must hold only real decisions.
///
/// Every transaction frame carries the destination incarnation the stream
/// currently addresses (the fencing token): the journal records name it,
/// so post-crash arbitration knows WHICH destination the source committed
/// to, and the wire token lets a standby's machine refuse a stale frame.
///
/// The inbound half is validated by the machine: await() feeds each reply
/// through session.on_frame(), which raises the typed rejection (Nack,
/// Error, wrong txn, fenced vote, digest mismatch) or ProtocolError itself.
CommitResult source_commit_phase(MessagePort& port, ControlInbox& inbox,
                                 SourceSession& session,
                                 const net::DeadlinePolicy& deadline, std::uint64_t txn,
                                 std::uint64_t digest, Journal& journal) {
  const std::uint32_t inc = session.incarnation();
  try {
    session.prepare_sent();
    port.send(net::MsgType::Prepare, net::encode_txn_token({txn, inc}));
    // The policy is consulted per blocking call, so an adaptive deadline
    // warmed by heartbeat RTTs can tighten mid-handoff.
    const net::Message reply = inbox.await(commit_grace(deadline.current()));
    if (reply.type != net::MsgType::PrepareAck) {
      // on_frame already vetted it; anything it let through that is not
      // the vote is a protocol breach.
      throw ProtocolError("unexpected message in the prepare phase");
    }
  } catch (const KilledError&) {
    throw;
  } catch (const Error&) {
    // A destination that vetoes the handoff sends its Error/Nack and then
    // drops the channel; our Prepare can hit the dead pipe before the
    // pump delivers the veto. The frame survives the close in the pipe's
    // buffer, so grace-wait for it and prefer the destination's cause
    // over our own send failure.
    std::exception_ptr cause = std::current_exception();
    bool vetoed = session.terminal();  // on_frame already rejected the vote
    if (!vetoed) {
      try {
        inbox.await(std::chrono::milliseconds(50));
      } catch (const MigrationError& veto) {
        // on_frame turned the pending Error/Nack into its typed rejection.
        cause = std::make_exception_ptr(veto);
        vetoed = true;
      } catch (...) {
        // Nothing queued; the original failure stands.
      }
    }
    journal.append({JournalRecordType::Abort, txn, digest, inc, "prepare phase failed"});
    TxnMetrics::get().aborts.add(1);
    // Only a VETO is a protocol decision that ends the session. A
    // transport death here means the destination never voted: the machine
    // stays Prepared (link_lost and redirect_decided are both legal from
    // it), so the caller may still resume against a surviving destination
    // or fail over to a standby. The Abort record above fences this
    // incarnation either way — a revived primary's in-doubt poll reads it
    // and aborts instead of completing a handoff the source gave up on.
    if (vetoed && !session.terminal()) session.abort_decided("prepare phase failed");
    try {
      port.send(net::MsgType::Abort, net::encode_txn_token({txn, inc}));
    } catch (...) {
      // A dead port cannot carry the Abort; the destination's in-doubt
      // poll reads the journal record instead.
    }
    std::rethrow_exception(cause);
  }
  // --- the decision is Commit: durable before the frame leaves, irrevocable after.
  journal.append({JournalRecordType::Commit, txn, digest, inc, ""});
  TxnMetrics::get().commits.add(1);
  session.commit_decided();
  try {
    port.send(net::MsgType::Commit, net::encode_txn_token({txn, inc}));
    const net::Message fin = inbox.await(commit_grace(deadline.current()));
    if (fin.type == net::MsgType::Ack) {
      journal.append({JournalRecordType::Done, txn, digest, inc, ""});
      return CommitResult::Confirmed;
    }
  } catch (const KilledError&) {
    throw;  // post-commit source crash: the destination recovers from the journal
  } catch (const Error&) {
  }
  return CommitResult::Unconfirmed;
}

}  // namespace

TxnResult run_pipelined_transaction(
    const RunOptions& options, MigrationReport& report, RetainedStream& stream,
    const SessionWiring& wiring, const net::DeadlinePolicy& deadline,
    Journal& src_journal, Journal& dst_journal,
    const std::function<std::string(std::uint32_t)>& standby_journal_path,
    std::uint64_t txn, int total_attempts, int& attempts_used) {
  TxnMetrics::get().begins.add(1);
  report.txn_id = txn;

  SourceSession session(wiring.session_id, txn);

  PortPair ports = wiring.connect();
  std::unique_ptr<MessagePort> src_port = std::move(ports.source);
  src_port->set_timeout(deadline.current());

  DestinationHost dest(options, report, dst_journal, src_journal.path(), deadline,
                       wiring.session_id);
  dest.start(std::move(ports.destination));

  CoordinatorMetrics::get().attempts.add(1);
  attempts_used = 1;
  report.attempts = 1;

  const std::size_t cb = std::max<std::size_t>(1, options.chunk_bytes);
  // Dedup'd transfer (DESIGN.md §15): the manifest needs every chunk
  // address up front, so the stream is collected in full before anything
  // but StateBegin goes out — no sender thread, no collect sink.
  const bool dedup = !options.chunk_cache_dir.empty();
  std::unique_ptr<ControlInbox> inbox;

  ChunkQueue queue(kChunkQueueCapacity);
  std::exception_ptr sender_error;
  std::thread sender;
  auto join_sender = [&] {
    if (sender.joinable()) sender.join();
  };
  /// Stop the pump (which aborts the port) so a blocked peer wakes and
  /// the port can be replaced or destroyed.
  auto fail_channel = [&] {
    if (inbox != nullptr) {
      inbox->stop();
    } else if (src_port != nullptr) {
      try {
        src_port->abort();
      } catch (...) {
      }
    }
  };
  /// Record a lost physical binding in the machine — from the states where
  /// a binding can be lost. (A rejected frame already landed in Aborted.)
  auto note_link_lost = [&] {
    const SessionState s = session.state();
    if (s == SessionState::Streaming || s == SessionState::Prepared ||
        s == SessionState::Resuming) {
      session.link_lost();
    }
  };

  std::exception_ptr source_error;
  /// Set when options.program itself throws (anything but MigrationExit):
  /// a workload failure is the caller's to see, never a retryable
  /// transport fault — rethrown after teardown, matching the serial path.
  std::exception_ptr program_error;
  double measured_tx = 0;
  bool collected = false;
  /// False when the primary died before its Hello ever arrived: attempt 1
  /// then runs the program sink-less (full in-memory collection) and the
  /// failover block replays the retained stream at a standby — without
  /// standbys the Hello failure stays fatal for the attempt, as before.
  bool rendezvoused = false;
  bool killed = false;
  bool attempt_ok = false;
  bool unconfirmed = false;
  std::uint64_t digest = 0;
  net::StateEndInfo end;
  Clock::time_point pipeline_start{};

  // Chunk reads go through the retained stream so memory-resident and
  // disk-spilled streams replay identically; the buffer is reused by the
  // strictly sequential send loops.
  Bytes chunk_buf;
  auto read_chunk = [&](std::uint64_t seq) -> std::span<const std::uint8_t> {
    const std::uint64_t off = seq * cb;
    const auto len = static_cast<std::size_t>(
        std::min<std::uint64_t>(cb, stream.size() - off));
    chunk_buf.resize(len);
    stream.read(off, chunk_buf);
    return {chunk_buf.data(), len};
  };

  /// Dedup negotiation + residual transfer on the CURRENT port/inbox:
  /// announce the manifest, learn the destination's miss set, ship only
  /// the misses (codec-compressed when it pays), then StateEnd. Used by
  /// attempt 1 against the primary and by a failover replay against a
  /// warm standby — the standby answers with its OWN store's misses, so a
  /// warm cache turns the full [0, end) replay into a trickle.
  auto negotiate_and_send = [&] {
    DedupMetrics& dm = DedupMetrics::get();
    const std::uint32_t nchunks = end.chunk_count;
    const std::uint8_t caps = codec_caps_of(options.wire_codec);
    std::uint64_t wire = 0;
    {
      const Bytes payload =
          net::encode_manifest_begin({txn, nchunks, options.chunk_bytes, caps});
      wire += payload.size();
      src_port->send(net::MsgType::ManifestBegin, payload);
    }
    std::vector<net::ManifestEntry> batch;
    batch.reserve(net::kManifestEntriesPerFrame);
    std::uint32_t batch_first = 0;
    for (std::uint32_t i = 0; i < nchunks; ++i) {
      const ChunkAddr addr = ChunkStore::address_of(read_chunk(i));
      batch.push_back({addr.digest, addr.length});
      if (batch.size() == net::kManifestEntriesPerFrame || i + 1 == nchunks) {
        const Bytes payload = net::encode_manifest_chunk(batch_first, batch);
        wire += payload.size();
        src_port->send(net::MsgType::ManifestChunk, payload);
        batch_first = i + 1;
        batch.clear();
      }
    }
    dm.manifest_chunks.add(nchunks);
    report.dedup_manifest_chunks = nchunks;

    // The destination loads (and digest-verifies) every candidate hit
    // before answering, so the wait is compute-bounded like a vote.
    const net::Message ackmsg = inbox->await(commit_grace(deadline.current()));
    if (ackmsg.type != net::MsgType::ManifestAck) {
      throw ProtocolError("expected ManifestAck during manifest negotiation");
    }
    const net::ManifestAckInfo ack = net::decode_manifest_ack(ackmsg.payload);
    if (ack.codec > static_cast<std::uint8_t>(WireCodec::VarintDelta) ||
        (ack.codec != 0 && (caps & kCodecCapVarintDelta) == 0)) {
      throw ProtocolError("destination chose a codec the source never offered");
    }
    const WireCodec codec = static_cast<WireCodec>(ack.codec);
    std::int64_t prev_idx = -1;
    for (const std::uint32_t idx : ack.misses) {
      if (idx >= nchunks || static_cast<std::int64_t>(idx) <= prev_idx) {
        throw ProtocolError("ManifestAck miss set is out of range or unsorted");
      }
      prev_idx = idx;
    }

    PipelineMetrics& pm = PipelineMetrics::get();
    for (const std::uint32_t idx : ack.misses) {
      const std::span<const std::uint8_t> body = read_chunk(idx);
      Bytes payload;
      if (codec == WireCodec::VarintDelta) {
        Bytes coded = codec_encode(body);
        if (coded.size() < body.size()) {
          dm.codec_ratio.record(static_cast<double>(coded.size()) /
                                static_cast<double>(body.size()));
          payload = net::encode_state_chunk_coded(
              idx, static_cast<std::uint8_t>(WireCodec::VarintDelta), coded);
        } else {
          dm.codec_ratio.record(1.0);  // raw fallback: encoding did not pay
        }
      }
      if (payload.empty()) payload = net::encode_state_chunk_coded(idx, 0, body);
      wire += payload.size();
      src_port->send(net::MsgType::StateChunk, payload);
      pm.chunks.add(1);
      pm.chunk_bytes.record(static_cast<double>(payload.size() - 5));
    }
    {
      const Bytes payload = net::encode_state_end(end);
      wire += payload.size();
      src_port->send(net::MsgType::StateEnd, payload);
    }
    report.dedup_miss_chunks = ack.misses.size();
    report.dedup_hit_chunks = nchunks - ack.misses.size();
    report.dedup_wire_bytes = wire;
  };

  // --- attempt 1: stream while collecting ----------------------------------
  try {
    try {
      session.on_frame(src_port->recv());  // Hello: version-checked by the machine
      rendezvoused = true;
    } catch (const KilledError&) {
      throw;  // an injected SOURCE death is a crash, never a dead primary
    } catch (const Error& e) {
      if (!options.failover.enabled() || wiring.connect_standby == nullptr) throw;
      report.failure_causes.push_back("attempt 1: " + std::string(e.what()));
    }
    if (rendezvoused) {
      session.begin_streaming();
      inbox = std::make_unique<ControlInbox>(*src_port, session);
    }

    if (!dedup && rendezvoused) sender = std::thread([&] {
      try {
        PipelineMetrics& pm = PipelineMetrics::get();
        std::unique_ptr<obs::Span> tx_span;
        Bytes chunk;
        std::uint32_t seq = 0;
        while (queue.pop(chunk)) {
          if (tx_span == nullptr) {
            tx_span = std::make_unique<obs::Span>("mig.tx");
            tx_span->arg("transport",
                         std::string(net::transport_name(options.transport)));
            // Write-ahead: the transaction exists on disk before any
            // frame names it on the wire.
            src_journal.append({JournalRecordType::Begin, txn, 0, 1, "source"});
            src_port->send(net::MsgType::StateBegin,
                           net::encode_state_begin({options.chunk_bytes, txn, 1}));
          }
          src_port->send(net::MsgType::StateChunk, net::encode_state_chunk(seq++, chunk));
          pm.chunks.add(1);
          pm.chunk_bytes.record(static_cast<double>(chunk.size()));
        }
        if (const auto e = queue.end_info()) {
          src_port->send(net::MsgType::StateEnd, net::encode_state_end(*e));
          if (tx_span != nullptr) measured_tx = tx_span->finish();
        }
      } catch (...) {
        sender_error = std::current_exception();
        queue.poison();  // collection must never block on a dead sender
      }
    });

    ti::TypeTable types;
    options.register_types(types);
    MigContext ctx(types, options.search);
    ctx.set_migrate_at_poll(options.migrate_at_poll);
    ctx.set_collect_threads(options.collect_threads);
    if (!dedup && rendezvoused) {
      // No sink without a live primary: the sender thread never started,
      // so a bounded queue would block collection at capacity.
      ctx.set_collect_sink(options.chunk_bytes, [&](std::span<const std::uint8_t> bytes) {
        if (pipeline_start == Clock::time_point{}) pipeline_start = Clock::now();
        queue.push(Bytes(bytes.begin(), bytes.end()));
      });
    }

    std::atomic<bool> program_done{false};
    std::thread scheduler;
    if (options.request_after_seconds > 0) {
      scheduler = std::thread([&ctx, &program_done, delay = options.request_after_seconds] {
        const auto fire_at = Clock::now() + std::chrono::duration<double>(delay);
        while (!program_done.load(std::memory_order_relaxed) && Clock::now() < fire_at) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        if (!program_done.load(std::memory_order_relaxed)) ctx.request_migration();
      });
    }
    auto join_scheduler = [&] {
      program_done.store(true, std::memory_order_relaxed);
      if (scheduler.joinable()) scheduler.join();
    };
    try {
      try {
        options.program(ctx);
      } catch (const MigrationExit&) {
        join_scheduler();
        throw;
      } catch (...) {
        join_scheduler();
        program_error = std::current_exception();
        throw;
      }
      join_scheduler();
    } catch (const MigrationExit&) {
      collected = true;
      stream.set(ctx.stream());  // retained for resumes, failover, serial retries
      digest = ctx.stream_digest();
      report.stream_digest = digest;
      report.stream_bytes = stream.size();
      report.collect_seconds = ctx.metrics().collect_seconds;
      report.source_arch = ctx.space().arch().name;
      if (!options.retain_dir.empty()) {
        // The spill is the transaction's ONLY replay source once it
        // lands; it must exist before the heap copy is freed.
        std::error_code ec;
        std::filesystem::create_directories(options.retain_dir, ec);
        stream.spill(options.retain_dir + "/retained-" + std::to_string(txn) +
                     ".stream");
      }
    }
    report.source_polls = ctx.poll_count();

    if (!collected) {
      queue.close(std::nullopt);
      join_sender();
      if (rendezvoused) src_port->send(net::MsgType::Shutdown, {});
      session.abort_decided("no migration was triggered");
    } else {
      // Stream-derived, NOT queue.pushed(): a poisoned queue undercounts
      // (push drops silently after a sender failure), and a resume's
      // StateEnd must describe the whole fixed-size chunking.
      end.chunk_count = static_cast<std::uint32_t>((stream.size() + cb - 1) / cb);
      end.total_bytes = stream.size();
      end.digest = digest;
      session.set_stream(end.chunk_count, digest);
      if (!rendezvoused) {
        // Nothing to send the dead primary: attempt 1 is over (its Hello
        // failure is already recorded) and the failover block replays the
        // retained stream at a standby.
        queue.close(std::nullopt);
        join_sender();
      } else if (!dedup) {
        queue.close(end);
        join_sender();
        if (sender_error != nullptr) std::rethrow_exception(sender_error);
      } else {
        // --- dedup: announce addresses, learn the miss set, ship only it ---
        obs::Span tx_span("mig.tx");
        tx_span.arg("transport", std::string(net::transport_name(options.transport)));
        tx_span.arg("dedup", std::uint64_t{1});
        pipeline_start = Clock::now();
        src_journal.append({JournalRecordType::Begin, txn, 0, 1, "source"});
        src_port->send(net::MsgType::StateBegin,
                       net::encode_state_begin({options.chunk_bytes, txn, 1}));
        negotiate_and_send();
        measured_tx = tx_span.finish();
      }
      if (rendezvoused) {
        const CommitResult r =
            source_commit_phase(*src_port, *inbox, session, deadline, txn, digest,
                                src_journal);
        unconfirmed = (r == CommitResult::Unconfirmed);
        attempt_ok = true;
      }
    }
  } catch (...) {
    source_error = std::current_exception();
    queue.poison();
    queue.close(std::nullopt);
    join_sender();
    fail_channel();
  }

  // Classify the attempt-1 failure before deciding whether to resume.
  bool fatal_other = false;  // non-hpm exception: propagate after teardown
  if (source_error != nullptr && program_error == nullptr) {
    try {
      std::rethrow_exception(source_error);
    } catch (const KilledError& e) {
      killed = true;
      if (collected) report.failure_causes.push_back("attempt 1: " + std::string(e.what()));
    } catch (const Error& e) {
      if (collected) report.failure_causes.push_back("attempt 1: " + std::string(e.what()));
    } catch (...) {
      fatal_other = true;
    }
  }

  // --- resume attempts: retransmit only past the acked watermark -----------
  const std::uint64_t total_chunks = collected ? (stream.size() + cb - 1) / cb : 0;
  double backoff = options.retry_backoff_seconds;
  while (rendezvoused && collected && !attempt_ok && !unconfirmed && !killed &&
         !fatal_other && program_error == nullptr && attempts_used < total_attempts &&
         !session.terminal() && dest.resumable()) {
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2, options.retry_backoff_cap_seconds);
    }
    ++attempts_used;
    report.attempts = attempts_used;
    CoordinatorMetrics::get().attempts.add(1);
    CoordinatorMetrics::get().retries.add(1);
    try {
      note_link_lost();  // the machine must be Resuming to accept ResumeHello
      PortPair fresh = wiring.connect();
      if (!dest.offer(std::move(fresh.destination))) {
        report.failure_causes.push_back("attempt " + std::to_string(attempts_used) +
                                        ": destination no longer accepts a resume channel");
        break;
      }
      if (inbox != nullptr) {
        inbox->stop();
        inbox.reset();  // the pump must be gone before its port is
      }
      src_port = std::move(fresh.source);
      src_port->set_timeout(deadline.current());
      session.on_frame(src_port->recv());  // ResumeHello: version/txn/bound-checked
      const std::uint32_t next_seq = session.resume_next_seq();
      ResumeMetrics::get().attempts.add(1);
      ResumeMetrics::get().chunks_skipped.add(next_seq);
      report.resumed_from_seq = static_cast<std::int64_t>(next_seq);
      inbox = std::make_unique<ControlInbox>(*src_port, session);
      {
        obs::Span tx_span("mig.tx");
        tx_span.arg("transport", std::string(net::transport_name(options.transport)));
        tx_span.arg("resumed_from", std::uint64_t{next_seq});
        PipelineMetrics& pm = PipelineMetrics::get();
        for (std::uint64_t seq = next_seq; seq < total_chunks; ++seq) {
          const std::span<const std::uint8_t> body = read_chunk(seq);
          // A dedup stream's chunk payloads carry a codec tag byte; resume
          // retransmits everything raw (tag 0) — former cache hits included,
          // since the destination stopped splicing when the link dropped.
          src_port->send(net::MsgType::StateChunk,
                         dedup ? net::encode_state_chunk_coded(
                                     static_cast<std::uint32_t>(seq), 0, body)
                               : net::encode_state_chunk(
                                     static_cast<std::uint32_t>(seq), body));
          pm.chunks.add(1);
          pm.chunk_bytes.record(static_cast<double>(body.size()));
        }
        src_port->send(net::MsgType::StateEnd, net::encode_state_end(end));
        measured_tx += tx_span.finish();
      }
      const CommitResult r =
          source_commit_phase(*src_port, *inbox, session, deadline, txn, digest,
                              src_journal);
      unconfirmed = (r == CommitResult::Unconfirmed);
      attempt_ok = true;
    } catch (const KilledError& e) {
      killed = true;
      report.failure_causes.push_back("attempt " + std::to_string(attempts_used) + ": " +
                                      e.what());
      fail_channel();
    } catch (const Error& e) {
      report.failure_causes.push_back("attempt " + std::to_string(attempts_used) + ": " +
                                      e.what());
      fail_channel();
    }
  }

  // --- destination failover: re-target the stream at a standby --------------
  // The primary is now presumed dead (resume budget exhausted, host
  // crashed, or the session was supervisor-cancelled). A terminal session
  // is excluded on purpose: a destination that REJECTED the handoff
  // (Nack, digest mismatch) made a protocol decision, and re-playing the
  // same stream at a standby would just re-earn it.
  bool standby_finished = false;
  if (collected && !attempt_ok && !unconfirmed && !killed && !fatal_other &&
      program_error == nullptr && !session.terminal() &&
      options.failover.enabled() && wiring.connect_standby != nullptr) {
    const Clock::time_point declared_dead = Clock::now();
    FailoverMetrics::get().triggered.add(1);
    // Tear the primary endpoint down completely before any standby frame
    // can race its stragglers.
    if (inbox != nullptr) {
      inbox->stop();
      inbox.reset();
    }
    dest.close();
    dest.join();
    try {
      if (src_port != nullptr) src_port->close();
    } catch (...) {
    }
    src_port.reset();

    const FailoverPolicy& fo = options.failover;
    for (std::size_t k = 0; k < fo.standbys.size() && !session.terminal(); ++k) {
      const DestinationCandidate& cand = fo.standbys[k];
      const std::string label =
          cand.name.empty() ? "standby-" + std::to_string(k + 1) : cand.name;
      const auto inc = static_cast<std::uint32_t>(k + 2);

      // Dial under the policy's per-candidate budget.
      PortPair fresh;
      bool dialed = false;
      std::string dial_cause = "dial budget is zero";
      double dial_backoff = fo.dial_backoff_seconds;
      for (int d = 0; d < std::max(1, fo.dial_attempts); ++d) {
        if (d > 0 && dial_backoff > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(dial_backoff));
          dial_backoff = std::min(dial_backoff * 2, fo.dial_backoff_cap_seconds);
        }
        try {
          fresh = wiring.connect_standby(k);
          dialed = true;
          break;
        } catch (const Error& e) {
          dial_cause = e.what();
        }
      }
      if (!dialed) {
        FailoverMetrics::get().dial_failures.add(1);
        report.failure_causes.push_back("failover to " + label + ": " + dial_cause);
        continue;
      }

      ++attempts_used;
      report.attempts = attempts_used;
      CoordinatorMetrics::get().attempts.add(1);
      FailoverMetrics::get().redirects.add(1);
      ++report.failovers;
      session.redirect_decided(inc);

      // The candidate runs under its own destination config (its own
      // chunk store, its own chaos script) and its own intent journal —
      // the incarnation-suffixed file arbitration scans alongside the
      // primary's.
      RunOptions cand_options = options;
      cand_options.chunk_cache_dir = cand.chunk_cache_dir;
      cand_options.dest_fault_plan = cand.dest_fault_plan;
      Journal cand_journal;
      if (standby_journal_path) {
        const std::string path = standby_journal_path(inc);
        if (!path.empty()) cand_journal.open(path);
      }
      DestinationHost standby(cand_options, report, cand_journal, src_journal.path(),
                              deadline, wiring.session_id);
      standby.start(std::move(fresh.destination));
      src_port = std::move(fresh.source);
      src_port->set_timeout(deadline.current());
      try {
        session.on_frame(src_port->recv());  // the standby's own Hello
        session.begin_streaming();
        inbox = std::make_unique<ControlInbox>(*src_port, session);
        // Write-ahead: the redirect exists on disk before any frame names
        // the new incarnation on the wire.
        src_journal.append(
            {JournalRecordType::Begin, txn, 0, inc, "failover to " + label});
        src_port->send(net::MsgType::StateBegin,
                       net::encode_state_begin({options.chunk_bytes, txn, inc}));
        obs::Span tx_span("mig.tx");
        tx_span.arg("transport", std::string(net::transport_name(options.transport)));
        tx_span.arg("failover_incarnation", std::uint64_t{inc});
        if (!cand.chunk_cache_dir.empty()) {
          // Warm standby: negotiate against ITS store; only misses travel.
          negotiate_and_send();
        } else {
          PipelineMetrics& pm = PipelineMetrics::get();
          for (std::uint64_t seq = 0; seq < total_chunks; ++seq) {
            const std::span<const std::uint8_t> body = read_chunk(seq);
            src_port->send(net::MsgType::StateChunk,
                           net::encode_state_chunk(static_cast<std::uint32_t>(seq),
                                                   body));
            pm.chunks.add(1);
            pm.chunk_bytes.record(static_cast<double>(body.size()));
          }
          src_port->send(net::MsgType::StateEnd, net::encode_state_end(end));
        }
        measured_tx += tx_span.finish();
        const CommitResult r =
            source_commit_phase(*src_port, *inbox, session, deadline, txn, digest,
                                src_journal);
        unconfirmed = (r == CommitResult::Unconfirmed);
        attempt_ok = true;
      } catch (const KilledError& e) {
        killed = true;
        report.failure_causes.push_back("failover to " + label + ": " + e.what());
        fail_channel();
      } catch (const Error& e) {
        report.failure_causes.push_back("failover to " + label + ": " + e.what());
        fail_channel();
      }
      if (inbox != nullptr) {
        inbox->stop();
        inbox.reset();
      }
      standby.close();
      standby.join();
      try {
        if (src_port != nullptr) src_port->close();
      } catch (...) {
      }
      src_port.reset();
      if (attempt_ok || unconfirmed || killed) {
        standby_finished = standby.finished();
        if (attempt_ok || unconfirmed) {
          const double downtime =
              std::chrono::duration<double>(Clock::now() - declared_dead).count();
          report.failover_downtime_seconds = downtime;
          FailoverMetrics::get().downtime.record(downtime);
        }
        break;
      }
    }
  }
  const Clock::time_point pipeline_end = Clock::now();

  // --- teardown -------------------------------------------------------------
  if (inbox != nullptr) inbox->stop();
  dest.close();
  dest.join();
  try {
    if (src_port != nullptr) src_port->close();
  } catch (...) {
  }

  if (program_error != nullptr) std::rethrow_exception(program_error);
  if (fatal_other) std::rethrow_exception(source_error);

  if (!collected) {
    // The workload already finished on the source; a torn-down teardown
    // handshake doesn't change its fate.
    return TxnResult::CompletedLocally;
  }
  report.dest_incarnation = session.incarnation();
  const bool dest_finished = dest.finished() || standby_finished;
  if (killed) {
    report.migrated = dest_finished;
    return TxnResult::SourceCrashed;
  }
  if (unconfirmed) {
    report.migrated = dest_finished;
    return TxnResult::CommittedUnconfirmed;
  }
  if (attempt_ok) {
    report.migrated = true;
    report.tx_seconds =
        options.throttle ? measured_tx : options.link.transfer_seconds(stream.size());
    // Overlap: wall-clock from the first chunk leaving collection to the
    // acknowledged restore, vs. the sum of the three phase timings. Fully
    // serial execution gives 0; perfect overlap approaches 1.
    const double wall = std::chrono::duration<double>(pipeline_end - pipeline_start).count();
    const double phases = report.collect_seconds + measured_tx + report.restore_seconds;
    if (wall > 0 && phases > 0) {
      report.overlap_ratio = std::clamp(1.0 - wall / phases, 0.0, 1.0);
    }
    PipelineMetrics::get().overlap.record(report.overlap_ratio);
    return TxnResult::Migrated;
  }
  return TxnResult::Failed;
}

}  // namespace hpm::mig
